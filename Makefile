# Development targets for the sma reproduction. Everything is standard
# library only; `make check` is the full pre-merge gate CI runs.

GO ?= go

.PHONY: all build test check vet smavet smavet-baseline race fuzz-smoke fmt serve-smoke chaos-smoke bench-smoke pyramid-smoke scaling-smoke cluster-smoke recovery-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the full gate: formatting, go vet, the project-specific smavet
# static-analysis suite, and the unit tests under the race detector.
check:
	./scripts/check.sh

vet:
	$(GO) vet ./...

# smavet: the project-specific static analyzers (cmd/smavet). Exits
# non-zero on any gating finding; see docs/STATIC_ANALYSIS.md.
smavet:
	$(GO) run ./cmd/smavet ./...

# smavet-baseline: refreeze the warn-severity debt into .smavet-baseline
# (the ratchet file `make smavet` gates against). Error findings are
# never frozen — the target fails if any exist. Commit the result.
smavet-baseline:
	$(GO) run ./cmd/smavet -write-baseline ./...

race:
	$(GO) test -race ./...

# fuzz-smoke: a short -fuzz pass over the binary-format readers and the
# streaming scheduler, enough to catch regressions in the parsers'
# bounds handling and the pipeline's ordering/caching invariants without
# tying up CI. Corpus finds are kept under the packages' testdata.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzReadPGM -fuzztime=$(FUZZTIME) ./internal/grid
	$(GO) test -run=^$$ -fuzz=FuzzReadArea -fuzztime=$(FUZZTIME) ./internal/ingest
	$(GO) test -run=^$$ -fuzz=FuzzPipelineScheduling -fuzztime=$(FUZZTIME) ./internal/stream
	$(GO) test -run=^$$ -fuzz=FuzzTileScheduling -fuzztime=$(FUZZTIME) ./internal/core

# serve-smoke: end-to-end smoke of the HTTP serving layer — real
# smaserve process on a random port, verified concurrent load via
# smaload, metrics scrape, graceful SIGTERM drain (docs/SERVER.md).
serve-smoke:
	sh scripts/serve_smoke.sh

# chaos-smoke: end-to-end chaos test of the fault-tolerant serving path —
# real smaserve process driven through seeded fault schedules by
# smachaos, asserting the degraded-mode contract (docs/ROBUSTNESS.md).
chaos-smoke:
	sh scripts/chaos_smoke.sh

# bench-smoke: short-form kernel microbenchmarks plus the tracking
# throughput experiment (smabench -only track), gated on bit-identity
# and a >= 2x serial speedup over the naive reference kernel
# (docs/PERFORMANCE.md).
bench-smoke:
	sh scripts/bench_smoke.sh

# pyramid-smoke: the coarse-to-fine search experiment (smabench -only
# pyramid), gated on full-radius bit-identity, a >= 3x hypothesis-work
# speedup at NZS=10, and <= 0.1 grid-unit drift at the fixture tracers
# (docs/PERFORMANCE.md §9).
pyramid-smoke:
	sh scripts/pyramid_smoke.sh

# scaling-smoke: the strong/weak scaling study of the tile-scheduled
# parallel driver (smabench -only scaling), gated on bit-identity,
# 1-worker scheduler overhead, and — on hosts with >= 4 cores —
# parallel beating serial at >= 4 workers (docs/PERFORMANCE.md §8).
scaling-smoke:
	sh scripts/scaling_smoke.sh

# cluster-smoke: end-to-end smoke of the distributed job plane — a real
# coordinator over two worker processes, multi-node load, injected
# node-fault rounds with exact Expect accounting, a SIGKILL-worker
# drill, and the process-mode scaling ladder gated on bit-identity and
# (on >= 4 cores) the widest rung's speedup (docs/CLUSTER.md).
cluster-smoke:
	sh scripts/cluster_smoke.sh

# recovery-smoke: end-to-end smoke of the durable job plane — a real
# smaserve killed dead (exit 137) mid-job and restarted over the same
# -data-dir, plus the SIGKILL-coordinator drill (smachaos -recover) —
# every resumed job byte-identical to an uninterrupted run
# (docs/ROBUSTNESS.md).
recovery-smoke:
	sh scripts/recovery_smoke.sh

fmt:
	gofmt -w .
