// Package sma's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation section. Each bench runs the scaled
// functional experiment on the host and attaches the full-scale modeled
// MP-2 / SGI metrics (seconds, speedups) via b.ReportMetric, so a single
//
//	go test -bench=. -benchmem
//
// regenerates the quantitative content of Tables 1–4 and Figures 3, 4
// and 6. EXPERIMENTS.md records a captured run against the paper's
// numbers.
package sma

import (
	"fmt"
	"testing"

	"sma/internal/core"
	"sma/internal/coupled"
	"sma/internal/eval"
	"sma/internal/flow"
	"sma/internal/grid"
	"sma/internal/maspar"
	"sma/internal/model"
	"sma/internal/postproc"
	"sma/internal/stereo"
	"sma/internal/synth"
)

// BenchmarkTable2Frederic runs the scaled Frederic experiment (semi-fluid
// stereo tracking on the simulated MP-2) and reports the full-scale
// modeled stage times and speedup of Table 2.
func BenchmarkTable2Frederic(b *testing.B) {
	scene := synth.Hurricane(48, 48, 3)
	i0, i1 := scene.Frame(0), scene.Frame(1)
	pair := core.Pair{I0: i0, I1: i1, Z0: scene.Height(i0), Z1: scene.Height(i1)}
	p := core.ScaledParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := maspar.MustNew(maspar.ScaledConfig(8, 8))
		if _, err := core.TrackMasPar(m, pair, p, core.Options{}, maspar.RasterReadout); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	t, err := eval.Table2()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(t.ModeledTotal.Seconds(), "mp2-total-s")
	b.ReportMetric(t.SeqModeled.Hours()/24, "sgi-days")
	b.ReportMetric(t.SpeedupModel, "speedup")
}

// BenchmarkTable4GOES9 runs the scaled GOES-9 experiment (continuous
// model, monocular) and reports Table 4's full-scale modeled metrics.
func BenchmarkTable4GOES9(b *testing.B) {
	scene := synth.Thunderstorm(48, 48, 5)
	pair := core.Monocular(scene.Frame(0), scene.Frame(1))
	p := core.Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := maspar.MustNew(maspar.ScaledConfig(8, 8))
		if _, err := core.TrackMasPar(m, pair, p, core.Options{}, maspar.RasterReadout); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	t, err := eval.Table4()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(t.ModeledTotal.Minutes(), "mp2-total-min")
	b.ReportMetric(t.SeqModeled.Hours(), "sgi-hours")
	b.ReportMetric(t.SpeedupModel, "speedup")
}

// BenchmarkLuisPair models §5's Hurricane Luis throughput (490 frames at
// ≈6 min/pair, speedup > 150) while measuring one scaled pair on the host.
func BenchmarkLuisPair(b *testing.B) {
	scene := synth.Hurricane(48, 48, 7)
	pair := core.Monocular(scene.Frame(0), scene.Frame(1))
	p := core.Params{NS: 2, NZS: 2, NZT: 2, NST: 2, NSS: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TrackSequential(pair, p, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	l, err := eval.Luis()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(l.PerPairModel.Minutes(), "mp2-pair-min")
	b.ReportMetric(l.SpeedupModel, "speedup")
}

// BenchmarkFigure4Template measures the per-correspondence cost for the
// paper's z-template sweep (Figure 4), one sub-benchmark per window size.
func BenchmarkFigure4Template(b *testing.B) {
	sgi := model.DefaultSGI()
	for _, wsize := range []int{11, 31, 51, 71, 91, 111, 131} {
		b.Run(fmt.Sprintf("T%dx%d", wsize, wsize), func(b *testing.B) {
			p := core.FredericParams()
			p.NZT = wsize / 2
			size := wsize + 16
			scene := synth.Hurricane(size, size, 7)
			prep, err := core.Prepare(core.Monocular(scene.Frame(0), scene.Frame(1)), p)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.ScoreOnce(prep, size/2, size/2)
			}
			b.StopTimer()
			oc := core.CountOps(p, 2)
			perCorr := float64(sgi.PixelTime(oc)) / float64(p.Hypotheses())
			b.ReportMetric(perCorr/1e6, "sgi-ms/corr")
		})
	}
}

// BenchmarkFigure6Step measures one timestep of the GOES-9 thunderstorm
// tracking that Figure 6 visualizes.
func BenchmarkFigure6Step(b *testing.B) {
	scene := synth.Thunderstorm(64, 64, 9)
	pair := core.Monocular(scene.Frame(0), scene.Frame(1))
	p := core.Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TrackSequential(pair, p, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWindBarbPipeline measures the full §5.1 pipeline: stereo
// synthesis, ASA surface recovery and semi-fluid tracking, reporting the
// achieved barb accuracy (paper: RMSE < 1 px).
func BenchmarkWindBarbPipeline(b *testing.B) {
	b.ReportAllocs()
	var last *eval.BarbResult
	for i := 0; i < b.N; i++ {
		r, err := eval.WindBarbExperiment(64, 5)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.StopTimer()
	if last != nil {
		b.ReportMetric(last.RMSE, "barb-rmse-px")
	}
}

// BenchmarkReadout compares the two §4.2 neighborhood read-out schemes
// with real data movement on the simulator (Figure 3's snake vs the
// raster-scan scheme the paper adopted).
func BenchmarkReadout(b *testing.B) {
	for _, scheme := range []maspar.FetchScheme{maspar.SnakeReadout, maspar.RasterReadout} {
		b.Run(scheme.String(), func(b *testing.B) {
			m := maspar.MustNew(maspar.ScaledConfig(8, 8))
			g := grid.New(32, 32)
			for i := range g.Data {
				g.Data[i] = float32(i)
			}
			mp, err := maspar.NewHierarchical(m, 32, 32)
			if err != nil {
				b.Fatal(err)
			}
			img, err := maspar.Distribute(m, mp, g)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if scheme == maspar.SnakeReadout {
					maspar.GatherSnake(img, 3)
				} else {
					maspar.GatherRaster(img, 3)
				}
			}
			b.StopTimer()
			full := maspar.MustNew(maspar.DefaultConfig())
			fullMap, err := maspar.NewHierarchical(full, 512, 512)
			if err != nil {
				b.Fatal(err)
			}
			c, err := maspar.FetchCost(fullMap, 60, scheme)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(full.Cfg.Time(c).Seconds(), "mp2-fetch-s")
		})
	}
}

// BenchmarkDataMapping compares the 2-D hierarchical folding against
// cut-and-stack (§3.2) by modeled communication time of a Frederic
// template fetch.
func BenchmarkDataMapping(b *testing.B) {
	cfg := maspar.DefaultConfig()
	m := maspar.MustNew(cfg)
	hier, err := maspar.NewHierarchical(m, 512, 512)
	if err != nil {
		b.Fatal(err)
	}
	cut, err := maspar.NewCutStack(m, 512, 512)
	if err != nil {
		b.Fatal(err)
	}
	maps := map[string]maspar.Mapping{
		"hierarchical": hier,
		"cutstack":     cut,
	}
	for name, mp := range maps {
		b.Run(name, func(b *testing.B) {
			var c maspar.Cost
			for i := 0; i < b.N; i++ {
				var err error
				if c, err = maspar.FetchCost(mp, 60, maspar.RasterReadout); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cfg.Time(c).Seconds(), "mp2-fetch-s")
			b.ReportMetric(float64(c.XNetShifts), "xnet-shifts")
		})
	}
}

// BenchmarkSegmentation models §4.3's memory/recompute trade-off: the
// Frederic run under shrinking PE memory budgets.
func BenchmarkSegmentation(b *testing.B) {
	for _, kb := range []int{64, 8} {
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				cfg := maspar.DefaultConfig()
				cfg.MemPerPE = kb * 1024
				m := maspar.MustNew(cfg)
				st, _, err := core.ModelRun(m, 512, 512, core.FredericParams(), 4, maspar.RasterReadout)
				if err != nil {
					b.Fatal(err)
				}
				total = st.Total().Seconds()
			}
			b.ReportMetric(total, "mp2-total-s")
		})
	}
}

// BenchmarkBaselines measures the comparison estimators on the multilayer
// scene: Horn–Schunck (related work [2]) and rigid block matching.
func BenchmarkBaselines(b *testing.B) {
	ml := synth.NewMultiLayer(64, 64, 21)
	f0, f1 := ml.Frame(0), ml.Frame(1)
	b.Run("hornschunck", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := flow.HornSchunck(f0, f1, flow.DefaultHSConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blockmatch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := flow.BlockMatch(f0, f1, flow.DefaultBMConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkASAStereo measures the Automatic Stereo Analysis substrate.
func BenchmarkASAStereo(b *testing.B) {
	scene := synth.Hurricane(96, 96, 11)
	left := scene.Frame(0)
	z := left.GaussianBlur(3)
	z.Apply(func(v float32) float32 { return v * 0.02 })
	right := synth.StereoPair(left, z)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stereo.Estimate(left, right, stereo.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSemiMapBuild isolates the semi-fluid template-mapping
// precompute of §4.1.
func BenchmarkSemiMapBuild(b *testing.B) {
	scene := synth.Hurricane(48, 48, 13)
	prep, err := core.Prepare(core.Monocular(scene.Frame(0), scene.Frame(1)), core.ScaledParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.BuildSemiMap(prep)
	}
}

// BenchmarkPyramidVsFlat compares the hierarchical coarse-to-fine
// extension against a flat search with equivalent displacement reach
// (§6 future work: adaptive hierarchical windows).
func BenchmarkPyramidVsFlat(b *testing.B) {
	scene := synth.Hurricane(64, 64, 15)
	pair := core.Monocular(scene.Frame(0), scene.Frame(1))
	b.Run("pyramid3xNZS2", func(b *testing.B) {
		p := core.Params{NS: 2, NZS: 2, NZT: 3}
		for i := 0; i < b.N; i++ {
			if _, err := core.TrackPyramid(pair, p, 3, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("flatNZS8", func(b *testing.B) {
		p := core.Params{NS: 2, NZS: 8, NZT: 3}
		for i := 0; i < b.N; i++ {
			if _, err := core.TrackSequential(pair, p, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRectangularSearch compares a ±4×±1 rectangular search against
// the ±4 square covering the same x-reach (§2.2's rectangular windows).
func BenchmarkRectangularSearch(b *testing.B) {
	scene := synth.Hurricane(48, 48, 17)
	pair := core.Monocular(scene.Frame(0), scene.Frame(1))
	b.Run("square", func(b *testing.B) {
		p := core.Params{NS: 2, NZS: 4, NZT: 3}
		for i := 0; i < b.N; i++ {
			if _, err := core.TrackSequential(pair, p, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rect4x1", func(b *testing.B) {
		p := core.Params{NS: 2, NZS: 4, NZT: 3, NZSX: 4, NZSY: 1}
		for i := 0; i < b.N; i++ {
			if _, err := core.TrackSequential(pair, p, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkHostParallel measures the worker-goroutine driver (results are
// bit-identical to sequential; wall-clock scales with host cores).
func BenchmarkHostParallel(b *testing.B) {
	scene := synth.Hurricane(48, 48, 19)
	pair := core.Monocular(scene.Frame(0), scene.Frame(1))
	p := core.ScaledParams()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.TrackParallel(pair, p, core.Options{}, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPostproc measures the §6 post-processing passes.
func BenchmarkPostproc(b *testing.B) {
	scene := synth.Hurricane(64, 64, 23)
	i0, i1 := scene.Frame(0), scene.Frame(1)
	p := core.Params{NS: 2, NZS: 3, NZT: 3}
	res, err := core.TrackSequential(core.Monocular(i0, i1), p, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("median", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res.Flow.Median3()
		}
	})
	b.Run("relax", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := postproc.Relax(res.Flow, i0, i1, postproc.DefaultRelaxConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("confidence", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := postproc.ConfidenceSmooth(res.Flow, res.Err, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCoupledTrack measures one coupled stereo–motion iteration
// (§6: "coupling stereo and motion estimation").
func BenchmarkCoupledTrack(b *testing.B) {
	scene := synth.Hurricane(40, 40, 25)
	i0, i1 := scene.Frame(0), scene.Frame(1)
	height := func(img *grid.Grid) *grid.Grid {
		z := img.GaussianBlur(2)
		z.Apply(func(v float32) float32 { return v * 0.05 })
		return z
	}
	pair := core.Pair{I0: i0, I1: i1, Z0: height(i0), Z1: height(i1)}
	p := core.Params{NS: 2, NZS: 2, NZT: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coupled.Track(pair, p, core.Options{}, 0.5, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrackSIMD measures the pure-SIMD data path (surfaces fitted on
// the machine, all operands moved by X-net gathers).
func BenchmarkTrackSIMD(b *testing.B) {
	scene := synth.Hurricane(32, 32, 27)
	pair := core.Monocular(scene.Frame(0), scene.Frame(1))
	p := core.Params{NS: 2, NZS: 2, NZT: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := maspar.MustNew(maspar.ScaledConfig(8, 8))
		if _, err := core.TrackSIMDContinuous(m, pair, p, maspar.RasterReadout); err != nil {
			b.Fatal(err)
		}
	}
}
