// Command smabench regenerates every table and figure of the paper's
// evaluation section from this repository's implementations and prints
// them side by side with the numbers the paper reports.
//
// Usage:
//
//	smabench                     # run everything
//	smabench -only table2,fig4   # run a subset
//	smabench -size 96            # scale of the functional experiments
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"sma/internal/eval"
)

// experiments registers every -only key with a one-line description; the
// order here is the order -list prints and roughly the order a full run
// executes.
var experiments = []struct{ Key, Desc string }{
	{"table1", "neighborhood sizes, Hurricane Frederic (paper Table 1)"},
	{"table2", "modeled MP-2 stage times vs the paper's (Table 2)"},
	{"table3", "neighborhood sizes, GOES-9 (Table 3)"},
	{"table4", "modeled GOES-9 stage times (Table 4)"},
	{"luis", "Hurricane Luis 490-frame sequence cost model (§5)"},
	{"fig4", "time per pixel correspondence vs z-template size (Figure 4)"},
	{"fig6", "GOES-9 thunderstorm tracking sequence (Figure 6)"},
	{"barbs", "wind-barb accuracy vs ground truth (§5.1)"},
	{"baselines", "estimator comparison on a two-layer cloud deck"},
	{"postproc", "motion-field post-processing extensions (§6)"},
	{"domains", "ocean/biology/ice application-domain scenes (§1)"},
	{"sweep", "template-size accuracy vs modeled cost trade-off"},
	{"track", "hoisted vs naive tracking kernel (BENCH_track.json)"},
	{"pyramid", "coarse-to-fine pyramid vs exhaustive search (BENCH_pyramid.json)"},
	{"scaling", "strong/weak scaling of the tiled parallel driver (BENCH_scaling.json)"},
	{"stream", "multi-frame streaming throughput (BENCH_stream.json)"},
	{"serve", "smaserve HTTP throughput under load (BENCH_serve.json)"},
	{"chaos", "degraded-mode streaming under seeded faults (BENCH_chaos.json)"},
	{"cluster", "coordinator/worker job-plane scaling (BENCH_cluster.json)"},
	{"recovery", "coordinator crash-recovery drill (BENCH_recovery.json)"},
	{"ablation", "neighborhood fetch and PE-memory segmentation ablations"},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("smabench: ")
	var (
		list     = flag.Bool("list", false, "list the registered experiments and exit")
		only     = flag.String("only", "", "comma-separated subset of the experiment keys (-list enumerates them)")
		size     = flag.Int("size", 64, "image size for the functional (non-modeled) experiments")
		seed     = flag.Int64("seed", 5, "scene seed for the functional experiments")
		report   = flag.String("report", "", "write the full experiment record as markdown to this file and exit")
		frames   = flag.Int("frames", 6, "sequence length for the stream throughput benchmark")
		workers  = flag.Int("workers", 0, "pair-tracking workers for the stream benchmark (0 = GOMAXPROCS)")
		benchOut = flag.String("bench-out", "BENCH_stream.json", "where the stream benchmark writes its frames/sec trajectory point")
		requests = flag.Int("requests", 24, "request count for the serve benchmark")
		clients  = flag.Int("clients", 8, "concurrent clients for the serve benchmark")
		serveOut = flag.String("serve-out", "BENCH_serve.json", "where the serve benchmark writes its latency trajectory point")
		chaosOut = flag.String("chaos-out", "BENCH_chaos.json", "where the chaos experiment writes its robustness trajectory point")
		trackOut = flag.String("track-out", "BENCH_track.json", "where the track benchmark writes its kernel-throughput trajectory point")
		pyrOut   = flag.String("pyramid-out", "BENCH_pyramid.json", "where the pyramid benchmark writes its coarse-to-fine trajectory point")
		scaleOut = flag.String("scaling-out", "BENCH_scaling.json", "where the scaling study writes its strong/weak trajectory point")
		ladder   = flag.String("scaling-workers", "1,2,4,8", "comma-separated worker ladder for the scaling study")

		clusterOut    = flag.String("cluster-out", "BENCH_cluster.json", "where the cluster experiment writes its distributed-throughput trajectory point")
		clusterLadder = flag.String("cluster-workers", "1,2,4", "comma-separated worker-node ladder for the cluster experiment")
		clusterBin    = flag.String("cluster-bin", "", "smaserve binary for process-mode cluster workers (empty = in-process)")
		clusterJobs   = flag.Int("cluster-jobs", 3, "jobs per cluster rung")
		clusterFrames = flag.Int("cluster-frames", 17, "frames per cluster job")

		recoveryOut = flag.String("recovery-out", "BENCH_recovery.json", "where the recovery drill writes its durability trajectory point")
		recoveryBin = flag.String("recovery-bin", "", "smaserve binary for the crash-recovery drill (empty = skip the drill)")
	)
	flag.Parse()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-10s %s\n", e.Key, e.Desc)
		}
		return
	}
	known := map[string]bool{}
	for _, e := range experiments {
		known[e.Key] = true
	}
	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if !known[k] {
				log.Fatalf("unknown experiment %q (run smabench -list)", k)
			}
			want[k] = true
		}
	}
	run := func(key string) bool { return len(want) == 0 || want[key] }
	if *report != "" {
		f, err := os.Create(*report)
		if err != nil {
			log.Fatal(err)
		}
		if err := eval.WriteReport(f, *size, *seed); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *report)
		return
	}

	if run("table1") {
		fmt.Println("Table 1 — Neighborhood sizes, Hurricane Frederic (512×512)")
		for _, r := range eval.Table1() {
			fmt.Printf("  %-22s %-10s %s\n", r.Name, r.Variable, r.Window)
		}
		fmt.Println()
	}
	if run("table2") {
		t, err := eval.Table2()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Format())
	}
	if run("table3") {
		fmt.Println("Table 3 — Neighborhood sizes, GOES-9 (512×512)")
		for _, r := range eval.Table3() {
			fmt.Printf("  %-22s %-10s %s\n", r.Name, r.Variable, r.Window)
		}
		fmt.Println()
	}
	if run("table4") {
		t, err := eval.Table4()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(t.Format())
	}
	if run("luis") {
		l, err := eval.Luis()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Hurricane Luis (§5) — 490 frames, continuous model")
		fmt.Printf("  per image pair:  modeled %v   paper ≈%v\n", l.PerPairModel, l.PerPairPaper)
		fmt.Printf("  whole sequence:  modeled %v (+ %v MPDA I/O)\n", l.TotalModel, l.SequenceIO)
		fmt.Printf("  speedup:         modeled %.0f   paper >%.0f\n\n", l.SpeedupModel, l.SpeedupPaper)
	}
	if run("fig4") {
		pts, err := eval.Figure4(nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Figure 4 — time per pixel correspondence vs z-template size")
		fmt.Printf("  %-10s %15s %15s\n", "template", "modeled (SGI)", "measured (host)")
		for _, p := range pts {
			fmt.Printf("  %3dx%-6d %15v %15v\n", p.Window, p.Window, p.Modeled, p.Measured)
		}
		fmt.Println()
	}
	if run("barbs") {
		r, err := eval.WindBarbExperiment(*size, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("§5.1 — Hurricane Frederic wind-barb accuracy (scaled)")
		fmt.Printf("  %d tracers on a %d×%d stereo scene\n", len(r.Barbs), r.Size, r.Size)
		fmt.Printf("  barb RMSE vs reference: %.3f px   (paper: < 1 px)\n", r.RMSE)
		fmt.Printf("  dense interior RMSE:    %.3f px\n", r.DenseRMSE)
		fmt.Printf("  ASA disparity RMSE:     %.3f px\n", r.StereoRMSE)
		fmt.Printf("  parallel == sequential: %v   (paper: identical results)\n\n", r.ParallelEqual)
	}
	if run("fig6") {
		steps, err := eval.Figure6(*size, 4, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Figure 6 — GOES-9 thunderstorm tracking (scaled, 4 timesteps)")
		for _, s := range steps {
			fmt.Printf("  t=%d  RMSE=%.3f px  mean flow=(%.2f, %.2f)\n", s.T, s.RMSE, s.MeanU, s.MeanV)
			fmt.Println(indent(s.Quiver, "    "))
		}
	}
	if run("baselines") {
		rows, err := eval.BaselineComparison(*size, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Baseline comparison — two-layer cloud deck (per-layer ground truth)")
		fmt.Printf("  %-26s %10s %10s %10s\n", "estimator", "RMSE px", "AAE deg", "exact %")
		for _, r := range rows {
			fmt.Printf("  %-26s %10.3f %10.2f %9.1f%%\n", r.Name, r.RMSE, r.AAE, r.ExactPct)
		}
		fmt.Println()
	}
	if run("postproc") {
		rows, err := eval.PostprocExperiment(*size, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("§6 extensions — motion-field post-processing (hurricane scene)")
		for _, r := range rows {
			fmt.Printf("  %-24s RMSE %.3f px\n", r.Name, r.RMSE)
		}
		fmt.Println()
	}
	if run("domains") {
		fmt.Println("Application domains (paper §1: oceans, biology)")
		if r, err := eval.EddiesExperiment(*size, *seed); err == nil {
			fmt.Printf("  %-16s RMSE %.3f px, near-exact %.1f%%\n", r.Name, r.RMSE, r.ExactPct)
		} else {
			log.Fatal(err)
		}
		if r, err := eval.FissionExperiment(*size, *seed); err == nil {
			fmt.Printf("  %-16s RMSE %.3f px, near-exact %.1f%% (daughter bodies)\n", r.Name, r.RMSE, r.ExactPct)
		} else {
			log.Fatal(err)
		}
		if r, err := eval.IceFloesExperiment(*size, *seed); err == nil {
			fmt.Printf("  %-16s RMSE %.3f px, near-exact %.1f%% (floe pixels)\n", r.Name, r.RMSE, r.ExactPct)
		} else {
			log.Fatal(err)
		}
		if rows, err := eval.PlumeRobustness(*size, *seed, nil); err == nil {
			for _, r := range rows {
				fmt.Printf("  %-22s RMSE %.3f px, near-exact %.1f%% (plume pixels)\n", r.Name, r.RMSE, r.ExactPct)
			}
		} else {
			log.Fatal(err)
		}
		fmt.Println()
	}
	if run("sweep") {
		pts, err := eval.TemplateAccuracySweep(*size, *seed, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Template-size trade-off — accuracy vs modeled sequential cost")
		fmt.Printf("  %-10s %12s %18s\n", "template", "barb RMSE", "SGI time/pixel")
		for _, p := range pts {
			fmt.Printf("  %3dx%-6d %9.3f px %18v\n", p.Window, p.Window, p.RMSE, p.PerPixel)
		}
		fmt.Println()
	}
	if run("track") {
		r, err := eval.TrackThroughputExperiment(*size, *workers, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Tracking kernel — hoisted vs naive per-hypothesis evaluation")
		fmt.Printf("  %d×%d semi-fluid pair, %d hypotheses × %d template pixels per tracked pixel\n",
			r.Size, r.Size, r.Hypotheses, r.TemplatePixels)
		fmt.Printf("  reference: %.3fs (%.0f px/s, %.0f ns/hyp)\n",
			r.ReferenceSec, r.PixelsPerSecRef, r.NsPerHypothesisRef)
		fmt.Printf("  optimized: %.3fs (%.0f px/s, %.0f ns/hyp)   speedup %.2fx\n",
			r.OptimizedSec, r.PixelsPerSec, r.NsPerHypothesis, r.SpeedupVsReference)
		fmt.Printf("  parallel (%d workers): %.3fs (%.0f px/s)   speedup %.2fx\n",
			r.Workers, r.ParallelSec, r.PixelsPerSecParallel, r.SpeedupParallel)
		fmt.Printf("  bit-identical to reference kernel: %v\n", r.BitIdentical)
		f, err := os.Create(*trackOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s\n\n", *trackOut)
	}
	if run("pyramid") {
		r, err := eval.PyramidExperiment(context.Background(), *size, *workers, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Coarse-to-fine pyramid — multiresolution hypothesis search vs exhaustive sweep")
		fmt.Printf("  %d×%d continuous-model hurricane pair, %d workers\n", r.Size, r.Size, r.Workers)
		fmt.Printf("  %-6s %-7s %12s %12s %9s %10s %11s %9s\n",
			"NZS", "levels", "exh hyp/px", "pyr hyp/px", "speedup", "RMSE px", "agreement", "fallback")
		for _, pt := range r.Points {
			fmt.Printf("  %-6d %-7d %12d %12.1f %8.2fx %10.4f %10.1f%% %8.1f%%\n",
				pt.NZS, pt.Levels, pt.ExhaustiveHyp, pt.HypPerPixel,
				pt.Speedup, pt.RMSE, 100*pt.Agreement, 100*pt.FallbackFrac)
		}
		fmt.Printf("  full-radius bit-identical to exhaustive: %v\n", r.BitIdentical)
		fmt.Printf("  fixture RMSE vs exhaustive: fig5 %.4f px, fig6 %.4f px\n", r.Fig5RMSE, r.Fig6RMSE)
		f, err := os.Create(*pyrOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s\n\n", *pyrOut)
	}
	if run("scaling") {
		var counts []int
		for _, s := range strings.Split(*ladder, ",") {
			var w int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &w); err != nil || w < 1 {
				log.Fatalf("bad -scaling-workers entry %q", s)
			}
			counts = append(counts, w)
		}
		r, err := eval.ScalingExperiment(*size, counts, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Scaling study — tile-scheduled parallel driver (strong and weak)")
		fmt.Printf("  base %d×%d semi-fluid pair, GOMAXPROCS %d\n", r.BaseSize, r.BaseSize, r.GoMaxProcs)
		fmt.Printf("  serial: reference %.3fs, optimized %.3fs (%.2fx)\n",
			r.ReferenceSec, r.SerialSec, r.SpeedupVsRef)
		fmt.Println("  strong (fixed input):")
		for _, pt := range r.Strong {
			fmt.Printf("    %2d workers: %.3fs  speedup %.2fx  efficiency %.2f\n",
				pt.Workers, pt.Sec, pt.Speedup, pt.Efficiency)
		}
		fmt.Println("  weak (pixels ∝ workers):")
		for _, pt := range r.Weak {
			fmt.Printf("    %2d workers @ %3d×%-3d: %.3fs  efficiency %.2f\n",
				pt.Workers, pt.Size, pt.Size, pt.Sec, pt.Efficiency)
		}
		fmt.Printf("  parallel beats serial (≥4 workers): %v   bit-identical: %v\n",
			r.ParallelBeatsSerial, r.BitIdentical)
		f, err := os.Create(*scaleOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s\n\n", *scaleOut)
	}
	if run("stream") {
		r, err := eval.StreamThroughputExperiment(*size, *frames, *workers, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Streaming pipeline — multi-frame throughput with prepared-surface caching")
		fmt.Printf("  %d frames at %d×%d, %d workers, LRU capacity %d\n",
			r.Frames, r.Size, r.Size, r.Workers, r.CacheSize)
		fmt.Printf("  surface fits: %d computed, %d reused (pairwise mode would fit %d)\n",
			r.FitsComputed, r.FitsReused, 2*(r.Frames-1))
		fmt.Printf("  pairwise baseline: %.3fs   streamed: %.3fs   speedup %.2fx\n",
			r.PairwiseSec, r.StreamSec, r.Speedup)
		fmt.Printf("  throughput: %.2f frames/s (%.2f pairs/s), bit-identical: %v\n",
			r.FramesPerSec, r.PairsPerSec, r.BitIdentical)
		f, err := os.Create(*benchOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s\n\n", *benchOut)
	}
	if run("serve") {
		r, err := eval.ServeThroughputExperiment(context.Background(), *size/2, *requests, *clients, *workers, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("HTTP serving — smaserve under concurrent load, bit-identity verified")
		fmt.Printf("  %d requests at concurrency %d, %d×%d frames\n",
			r.Requests, r.Concurrency, r.Size, r.Size)
		fmt.Printf("  errors: %d   backpressure retries: %d   rejected: %d   mismatches: %d\n",
			r.Errors, r.Retries, r.Rejected, r.Mismatches)
		fmt.Printf("  %.1f req/s   latency p50 %.0fms  p90 %.0fms  p99 %.0fms  max %.0fms\n",
			r.ReqPerSec, r.P50Ms, r.P90Ms, r.P99Ms, r.MaxMs)
		fmt.Printf("  bit-identical to sequential tracker: %v\n", r.BitIdentical)
		f, err := os.Create(*serveOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s\n\n", *serveOut)
	}
	if run("chaos") {
		frames := *frames
		if frames < 8 {
			frames = 8
		}
		r, err := eval.FaultToleranceExperiment(*size, frames, *seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Fault tolerance — degraded-mode streaming under a seeded fault schedule")
		fmt.Printf("  %d frames at %d×%d: %d fail, %d flaky, %d damaged (seed %d)\n",
			r.Frames, r.Size, r.Size, r.FailFrames, r.FlakyFrames, r.DamageFrames, r.Seed)
		fmt.Printf("  retries %d, frames skipped %d, pairs skipped %d, gaps %d — counters exact: %v\n",
			r.Retries, r.FramesSkipped, r.PairsSkipped, r.Gaps, r.CountersExact)
		fmt.Printf("  %d surviving pairs bit-identical to the undamaged run: %v\n",
			r.SurvivingPairs, r.BitIdentical)
		fmt.Printf("  clean %.3fs   degraded %.3fs   overhead %.1f%%\n",
			r.CleanSec, r.DegradedSec, r.OverheadPct)
		f, err := os.Create(*chaosOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s\n\n", *chaosOut)
	}
	if run("cluster") {
		var counts []int
		for _, s := range strings.Split(*clusterLadder, ",") {
			var w int
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &w); err != nil || w < 1 {
				log.Fatalf("bad -cluster-workers entry %q", s)
			}
			counts = append(counts, w)
		}
		r, err := eval.ClusterScalingExperiment(context.Background(), eval.ClusterScalingOptions{
			Size:    *size / 2,
			Frames:  *clusterFrames,
			Jobs:    *clusterJobs,
			Workers: counts,
			Seed:    *seed,
			Bin:     *clusterBin,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("Distributed job plane — coordinator/worker sharding up a node ladder")
		fmt.Printf("  %d jobs per rung, %d frames at %d×%d, %d pairs/shard, %s workers, %d cores\n",
			r.Jobs, r.Frames, r.Size, r.Size, r.ShardPairs, r.Mode, r.Cores)
		for _, rung := range r.Rungs {
			fmt.Printf("  %2d workers: %.2f jobs/s (%.1f pairs/s)  job p50 %.2fs max %.2fs  retries %d\n",
				rung.Workers, rung.JobsPerSec, rung.PairsPerSec, rung.JobP50Sec, rung.JobMaxSec, rung.DispatchRetries)
		}
		fmt.Printf("  speedup at widest rung: %.2fx   bit-identical to offline tracker: %v\n",
			r.SpeedupAtMax, r.BitIdentical)
		f, err := os.Create(*clusterOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  wrote %s\n\n", *clusterOut)
	}
	if run("recovery") {
		fmt.Println("Durable job plane — SIGKILL-coordinator crash-recovery drill")
		if *recoveryBin == "" {
			fmt.Print("  skipped: the drill kills a real process; point -recovery-bin at a smaserve binary\n\n")
		} else {
			r, err := eval.RecoveryExperiment(context.Background(), eval.RecoveryOptions{
				Bin:  *recoveryBin,
				Seed: *seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %d workers, %d frames at %d×%d, %d shards of %d pairs\n",
				r.Workers, r.Frames, r.Size, r.Size, r.Shards, r.ShardPairs)
			fmt.Printf("  coordinator exit %d after %d checkpoints; resumed=%v, %d shards restored\n",
				r.CoordinatorExit, r.CrashAfterShards, r.Resumed, r.ShardsRestored)
			fmt.Printf("  %d pairs verified bit-identical: %v   crash %.2fs resume %.2fs\n",
				r.PairsVerified, r.BitIdentical, r.CrashPhaseSec, r.ResumeSec)
			for _, v := range r.Violations {
				fmt.Printf("  VIOLATION: %s\n", v)
			}
			f, err := os.Create(*recoveryOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := r.WriteJSON(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  wrote %s\n\n", *recoveryOut)
		}
	}
	if run("ablation") {
		fmt.Println("Ablation — neighborhood fetch design (§3.2/§4.2), 121×121 template at paper scale")
		abl, err := eval.ReadoutAblation(60)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range abl {
			fmt.Printf("  %-42s xnet=%-9d mem=%-9d time=%v\n", r.Name, r.XNet, r.Mem, r.Time)
		}
		fmt.Println("\nAblation — PE memory vs segmentation (§4.3), Frederic configuration")
		for _, r := range eval.SegmentationAblation(nil) {
			if r.Err != "" {
				fmt.Printf("  %6d B/PE: infeasible (%s)\n", r.MemPerPE, r.Err)
			} else {
				fmt.Printf("  %6d B/PE: %d segment(s), modeled total %v\n", r.MemPerPE, r.Segments, r.Total)
			}
		}
	}
}

func indent(s, pre string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = pre + lines[i]
	}
	return strings.Join(lines, "\n")
}
