// Command smachaos is the chaos harness for smaserve: it drives a live
// server through deterministic seeded fault schedules and asserts the
// degraded-mode contract — jobs finish with per-pair statuses, retry/
// skip/gap counters match each schedule's exact expectation, surviving
// pairs are bit-identical to an undamaged job, the server's degraded
// Prometheus counters advance by exactly the injected amounts, and the
// goroutine count settles back to its baseline.
//
// Usage:
//
//	smachaos -url http://127.0.0.1:8080
//	smachaos -url http://127.0.0.1:8080 -rounds 5 -frames 12 -seed 42
//	smachaos -url http://127.0.0.1:8080 -fail 2 -flaky 2 -damage 3 -out chaos.json
//
// With -cluster the same harness drills a coordinator instead: injected
// node-level fault plans (dead nodes, flaky shards) must produce exactly
// the dispatch/reassignment counters fault.ClusterPlan.Expect predicts,
// every job must stay bit-identical to a clean reference, and
// -kill-worker SIGKILLs a real worker process mid-drill to prove a dead
// node is reassigned with the same exact accounting:
//
//	smachaos -cluster -url http://127.0.0.1:8080
//	smachaos -cluster -url http://127.0.0.1:8080 -kill-worker $PID -kill-node 1
//
// With -recover the harness runs the crash-recovery drill instead: it
// spawns its own worker and coordinator processes from -bin, arms the
// coordinator to SIGKILL itself (exit 137) right after a durable shard
// checkpoint, restarts it on the same -data-dir, and asserts the job is
// resumed from checkpoints — only unfinished shards re-dispatched and
// the final stream byte-identical to an uninterrupted single-node run
// (docs/ROBUSTNESS.md):
//
//	smachaos -recover -bin ./bin/smaserve
//	smachaos -recover -bin ./bin/smaserve -frames 13 -crash-after 2 -out recovery.json
//
// The run assumes a quiet server: counter-delta checks are not
// meaningful under concurrent foreign traffic. Exit status is non-zero
// if any invariant was violated.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"syscall"
	"time"

	"sma/internal/cluster"
	"sma/internal/eval"
	"sma/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smachaos: ")
	var (
		url     = flag.String("url", "http://127.0.0.1:8080", "smaserve base URL")
		scene   = flag.String("scene", "hurricane", "synthetic scene: hurricane|thunderstorm|shear")
		size    = flag.Int("size", 48, "synthetic frame edge in pixels")
		seed    = flag.Int64("seed", 7, "base schedule seed; round r uses seed+r")
		frames  = flag.Int("frames", 10, "sequence length per job")
		rounds  = flag.Int("rounds", 3, "fault-injected jobs to run")
		fail    = flag.Int("fail", 1, "persistently failing frames per round")
		flaky   = flag.Int("flaky", 1, "transiently failing (retry-recoverable) frames per round")
		damage  = flag.Int("damage", 1, "NaN/dead-scanline damaged frames per round")
		timeout = flag.Duration("timeout", 5*time.Minute, "overall run deadline")
		out     = flag.String("out", "", "write the chaos result as JSON to this file")

		clusterMode = flag.Bool("cluster", false, "drill a cluster coordinator instead of a single server")
		deadNodes   = flag.Int("dead-nodes", 1, "cluster: injected dead nodes per round")
		flakyShards = flag.Int("flaky-shards", 2, "cluster: injected flaky shards per round")
		killWorker  = flag.Int("kill-worker", 0, "cluster: SIGKILL this worker PID for the real-kill round (0 = skip)")
		killNode    = flag.Int("kill-node", -1, "cluster: registry index of the killed worker (required with -kill-worker)")
		killMidJob  = flag.Bool("kill-mid-job", false, "cluster: kill after job submission (bounded assertions) instead of before")

		recoverMode = flag.Bool("recover", false, "run the SIGKILL-coordinator crash-recovery drill (spawns its own processes from -bin)")
		bin         = flag.String("bin", "", "recover: smaserve binary to spawn workers and the crashing coordinator from")
		workersN    = flag.Int("recover-workers", 2, "recover: worker processes to spawn")
		shardPairsN = flag.Int("recover-shard-pairs", 2, "recover: pairs per shard")
		crashAfter  = flag.Int("crash-after", 2, "recover: durable shard checkpoints before the coordinator self-SIGKILLs")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *recoverMode {
		runRecovery(ctx, eval.RecoveryOptions{
			Bin: *bin, Size: *size, Frames: *frames, Workers: *workersN,
			ShardPairs: *shardPairsN, Seed: *seed, CrashAfterShards: *crashAfter,
		}, *out)
		return
	}
	if *clusterMode {
		runCluster(ctx, clusterArgs{
			url: strings.TrimRight(*url, "/"), scene: *scene, size: *size,
			seed: *seed, frames: *frames, rounds: *rounds,
			deadNodes: *deadNodes, flakyShards: *flakyShards,
			killPID: *killWorker, killNode: *killNode, killMidJob: *killMidJob,
			out: *out,
		})
		return
	}
	res, err := server.RunChaos(ctx, server.ChaosOptions{
		URL:          strings.TrimRight(*url, "/"),
		Scene:        *scene,
		Size:         *size,
		Seed:         *seed,
		Frames:       *frames,
		Rounds:       *rounds,
		FailFrames:   *fail,
		FlakyFrames:  *flaky,
		DamageFrames: *damage,
	})
	if err != nil {
		log.Fatalf("chaos run: %v", err)
	}

	fmt.Printf("rounds          %d (%d frames each)\n", res.Rounds, res.Frames)
	fmt.Printf("pairs verified  %d bit-identical to the undamaged job\n", res.PairsVerified)
	fmt.Printf("pairs skipped   %d\n", res.PairsSkipped)
	fmt.Printf("frame retries   %d\n", res.Retries)
	fmt.Printf("goroutines      %d before, %d after\n", res.GoroutinesBefore, res.GoroutinesAfter)

	if *out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatalf("encoding result: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}

	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			log.Printf("VIOLATION: %s", v)
		}
		os.Exit(1)
	}
	log.Printf("degraded-mode contract upheld")
}

type clusterArgs struct {
	url, scene             string
	size, frames, rounds   int
	seed                   int64
	deadNodes, flakyShards int
	killPID, killNode      int
	killMidJob             bool
	out                    string
}

// runCluster executes the coordinator drill and exits non-zero on any
// contract violation.
func runCluster(ctx context.Context, a clusterArgs) {
	opt := cluster.ChaosOptions{
		URL:         a.url,
		Scene:       a.scene,
		Size:        a.size,
		Seed:        a.seed,
		Frames:      a.frames,
		Rounds:      a.rounds,
		DeadNodes:   a.deadNodes,
		FlakyShards: a.flakyShards,
		KillMidJob:  a.killMidJob,
	}
	if a.killPID > 0 {
		if a.killNode < 0 {
			log.Fatalf("-kill-worker needs -kill-node (the worker's index in -worker-urls order)")
		}
		opt.KillWorker = func() (int, error) {
			log.Printf("SIGKILL worker pid %d (node %d)", a.killPID, a.killNode)
			if err := syscall.Kill(a.killPID, syscall.SIGKILL); err != nil {
				return 0, fmt.Errorf("kill pid %d: %w", a.killPID, err)
			}
			return a.killNode, nil
		}
	}

	res, err := cluster.RunChaos(ctx, opt)
	if err != nil {
		log.Fatalf("cluster chaos run: %v", err)
	}

	fmt.Printf("cluster          %d workers, %d shards/job\n", res.Workers, res.Shards)
	fmt.Printf("rounds           %d (%d frames each)\n", res.Rounds, res.Frames)
	fmt.Printf("pairs verified   %d bit-identical to the clean reference\n", res.PairsVerified)
	fmt.Printf("dispatch retries %d\n", res.DispatchRetries)
	fmt.Printf("reassigned       %d shards\n", res.Reassigned)
	fmt.Printf("nodes lost       %d\n", res.NodesLost)
	if res.KilledNode >= 0 {
		fmt.Printf("killed node      %d\n", res.KilledNode)
	}
	fmt.Printf("goroutines       %d before, %d after\n", res.GoroutinesBefore, res.GoroutinesAfter)

	if a.out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatalf("encoding result: %v", err)
		}
		if err := os.WriteFile(a.out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", a.out, err)
		}
		log.Printf("wrote %s", a.out)
	}

	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			log.Printf("VIOLATION: %s", v)
		}
		os.Exit(1)
	}
	log.Printf("cluster contract upheld")
}

// runRecovery executes the SIGKILL-coordinator crash-recovery drill and
// exits non-zero on any durability-contract violation.
func runRecovery(ctx context.Context, opt eval.RecoveryOptions, out string) {
	if opt.Bin == "" {
		log.Fatalf("-recover needs -bin (the smaserve binary to spawn)")
	}
	res, err := eval.RecoveryExperiment(ctx, opt)
	if err != nil {
		log.Fatalf("recovery drill: %v", err)
	}

	fmt.Printf("cluster          %d workers, %d shards (%d pairs each)\n", res.Workers, res.Shards, res.ShardPairs)
	fmt.Printf("crash            after %d checkpoints, coordinator exit %d\n", res.CrashAfterShards, res.CoordinatorExit)
	fmt.Printf("resume           recovered=%v, %d shards served from checkpoints\n", res.Resumed, res.ShardsRestored)
	fmt.Printf("pairs verified   %d bit-identical to the uninterrupted run\n", res.PairsVerified)
	fmt.Printf("timing           crash phase %.2fs, resume %.2fs\n", res.CrashPhaseSec, res.ResumeSec)

	if out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatalf("encoding result: %v", err)
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", out, err)
		}
		log.Printf("wrote %s", out)
	}

	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			log.Printf("VIOLATION: %s", v)
		}
		os.Exit(1)
	}
	log.Printf("durability contract upheld")
}
