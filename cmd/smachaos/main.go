// Command smachaos is the chaos harness for smaserve: it drives a live
// server through deterministic seeded fault schedules and asserts the
// degraded-mode contract — jobs finish with per-pair statuses, retry/
// skip/gap counters match each schedule's exact expectation, surviving
// pairs are bit-identical to an undamaged job, the server's degraded
// Prometheus counters advance by exactly the injected amounts, and the
// goroutine count settles back to its baseline.
//
// Usage:
//
//	smachaos -url http://127.0.0.1:8080
//	smachaos -url http://127.0.0.1:8080 -rounds 5 -frames 12 -seed 42
//	smachaos -url http://127.0.0.1:8080 -fail 2 -flaky 2 -damage 3 -out chaos.json
//
// The run assumes a quiet server: counter-delta checks are not
// meaningful under concurrent foreign traffic. Exit status is non-zero
// if any invariant was violated.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"sma/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smachaos: ")
	var (
		url     = flag.String("url", "http://127.0.0.1:8080", "smaserve base URL")
		scene   = flag.String("scene", "hurricane", "synthetic scene: hurricane|thunderstorm|shear")
		size    = flag.Int("size", 48, "synthetic frame edge in pixels")
		seed    = flag.Int64("seed", 7, "base schedule seed; round r uses seed+r")
		frames  = flag.Int("frames", 10, "sequence length per job")
		rounds  = flag.Int("rounds", 3, "fault-injected jobs to run")
		fail    = flag.Int("fail", 1, "persistently failing frames per round")
		flaky   = flag.Int("flaky", 1, "transiently failing (retry-recoverable) frames per round")
		damage  = flag.Int("damage", 1, "NaN/dead-scanline damaged frames per round")
		timeout = flag.Duration("timeout", 5*time.Minute, "overall run deadline")
		out     = flag.String("out", "", "write the chaos result as JSON to this file")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := server.RunChaos(ctx, server.ChaosOptions{
		URL:          strings.TrimRight(*url, "/"),
		Scene:        *scene,
		Size:         *size,
		Seed:         *seed,
		Frames:       *frames,
		Rounds:       *rounds,
		FailFrames:   *fail,
		FlakyFrames:  *flaky,
		DamageFrames: *damage,
	})
	if err != nil {
		log.Fatalf("chaos run: %v", err)
	}

	fmt.Printf("rounds          %d (%d frames each)\n", res.Rounds, res.Frames)
	fmt.Printf("pairs verified  %d bit-identical to the undamaged job\n", res.PairsVerified)
	fmt.Printf("pairs skipped   %d\n", res.PairsSkipped)
	fmt.Printf("frame retries   %d\n", res.Retries)
	fmt.Printf("goroutines      %d before, %d after\n", res.GoroutinesBefore, res.GoroutinesAfter)

	if *out != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatalf("encoding result: %v", err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *out, err)
		}
		log.Printf("wrote %s", *out)
	}

	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			log.Printf("VIOLATION: %s", v)
		}
		os.Exit(1)
	}
	log.Printf("degraded-mode contract upheld")
}
