// Command smagen generates synthetic GOES-like cloud image sequences —
// the stand-in for the paper's Hurricane Frederic / GOES-9 satellite
// datasets — as PGM files, optionally with rectified stereo right views.
//
// Usage:
//
//	smagen -scene hurricane -size 256 -frames 4 -stereo -out data/
//
// Files written to -out: frame_NNN.pgm (left intensity), right_NNN.pgm
// (when -stereo), and scene.txt describing the generation parameters and
// ground-truth motion statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sma/internal/grid"
	"sma/internal/ingest"
	"sma/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smagen: ")
	var (
		sceneName = flag.String("scene", "hurricane", "scene type: hurricane|thunderstorm|shear|multilayer|eddies|fission|icefloes")
		size      = flag.Int("size", 256, "image edge length in pixels")
		frames    = flag.Int("frames", 4, "number of frames to render")
		seed      = flag.Int64("seed", 1, "generator seed")
		stereo    = flag.Bool("stereo", false, "also write rectified right views from the height field")
		format    = flag.String("format", "pgm", "output format: pgm|area (McIDAS AREA)")
		outDir    = flag.String("out", ".", "output directory")
	)
	flag.Parse()
	if *size < 16 || *frames < 1 {
		log.Fatalf("invalid size %d or frames %d", *size, *frames)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	var frame func(t float64) *grid.Grid
	var truth func(dt float64) *grid.VectorField
	switch *sceneName {
	case "hurricane":
		s := synth.Hurricane(*size, *size, *seed)
		frame, truth = s.Frame, s.Truth
	case "thunderstorm":
		s := synth.Thunderstorm(*size, *size, *seed)
		frame, truth = s.Frame, s.Truth
	case "shear":
		s := synth.ShearScene(*size, *size, *seed)
		frame, truth = s.Frame, s.Truth
	case "multilayer":
		m := synth.NewMultiLayer(*size, *size, *seed)
		frame = m.Frame
		truth = func(dt float64) *grid.VectorField { return m.Truth(0, dt) }
	case "eddies":
		s := synth.Eddies(*size, *size, *seed)
		frame, truth = s.Frame, s.Truth
	case "icefloes":
		a, b, tr := synth.IceFloes(*size, *size, *seed)
		pair := []*grid.Grid{a, b}
		frame = func(t float64) *grid.Grid {
			i := int(t)
			if i > 1 {
				i = 1
			}
			return pair[i]
		}
		truth = func(dt float64) *grid.VectorField { return tr }
	case "fission":
		imgs, truths := synth.FissionFrames(*size, *size, *frames, *seed)
		frame = func(t float64) *grid.Grid { return imgs[int(t)] }
		truth = func(dt float64) *grid.VectorField { return truths[0] }
	default:
		log.Fatalf("unknown scene %q", *sceneName)
	}

	write := func(img *grid.Grid, name string, t int) error {
		switch *format {
		case "pgm":
			return img.WritePGMFile(filepath.Join(*outDir, fmt.Sprintf("%s_%03d.pgm", name, t)))
		case "area":
			dir := ingest.Directory{SensorID: 180, Date: 95183, Time: 180000 + int32(t)*100}
			return ingest.WriteAreaFile(filepath.Join(*outDir, fmt.Sprintf("%s_%03d.area", name, t)), dir, img)
		default:
			return fmt.Errorf("unknown format %q", *format)
		}
	}
	for t := 0; t < *frames; t++ {
		img := frame(float64(t))
		if err := write(img, "frame", t); err != nil {
			log.Fatal(err)
		}
		if *stereo {
			z := img.GaussianBlur(3)
			z.Apply(func(v float32) float32 { return v * 0.02 })
			right := synth.StereoPair(img, z)
			if err := write(right, "right", t); err != nil {
				log.Fatal(err)
			}
		}
	}

	tf := truth(1)
	meta := fmt.Sprintf(
		"scene=%s size=%d frames=%d seed=%d stereo=%v\n"+
			"ground-truth motion (t -> t+1): mean |d| = %.3f px\n",
		*sceneName, *size, *frames, *seed, *stereo, tf.MeanMagnitude())
	if err := os.WriteFile(filepath.Join(*outDir, "scene.txt"), []byte(meta), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d frame(s) of %q to %s\n", *frames, *sceneName, *outDir)
}
