// Command smaload is the load generator for smaserve: it fires concurrent
// POST /v1/track requests with synthetic PGM frame pairs and reports
// latency percentiles, throughput, and error/rejection counts. With
// -verify it also tracks the same pair locally and requires every
// response to be bit-identical to the offline tracker.
//
// Usage:
//
//	smaload -url http://127.0.0.1:8080 -n 64 -c 8
//	smaload -url http://127.0.0.1:8080 -n 32 -c 8 -size 48 -verify -check-metrics
//	smaload -url http://127.0.0.1:8080 -bench-out BENCH_serve.json
//	smaload -nodes http://127.0.0.1:8081,http://127.0.0.1:8082 -n 64 -c 8
//
// With -nodes the run fans requests round-robin over several servers
// (the workers of a cluster, or coordinators) and reports per-node
// latency percentiles and retry/rejection splits alongside the
// aggregate.
//
// Exit status is non-zero if any request errored or any verified response
// mismatched; backpressure rejections (429/503) are reported separately
// and are not errors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"sma/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smaload: ")
	var (
		url          = flag.String("url", "http://127.0.0.1:8080", "smaserve base URL")
		nodes        = flag.String("nodes", "", "comma-separated base URLs for multi-node mode (overrides -url)")
		n            = flag.Int("n", 32, "total requests")
		c            = flag.Int("c", 8, "concurrent clients")
		scene        = flag.String("scene", "hurricane", "synthetic scene: hurricane|thunderstorm|shear")
		size         = flag.Int("size", 64, "synthetic frame edge in pixels")
		seed         = flag.Int64("seed", 7, "synthetic scene seed")
		binary       = flag.Bool("binary", false, "request the binary motion-field framing")
		verify       = flag.Bool("verify", false, "verify every response is bit-identical to a local sequential track")
		robust       = flag.Bool("robust", false, "enable Huber-robust motion solve")
		timeout      = flag.Duration("timeout", 5*time.Minute, "overall run deadline")
		checkMetrics = flag.Bool("check-metrics", false, "scrape /metrics afterwards and require request counters")
		benchOut     = flag.String("bench-out", "", "write the load result as JSON to this file")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}

	var nodeURLs []string
	for _, u := range strings.Split(*nodes, ",") {
		if u = strings.TrimRight(strings.TrimSpace(u), "/"); u != "" {
			nodeURLs = append(nodeURLs, u)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := server.RunLoad(ctx, server.LoadOptions{
		URL:         strings.TrimRight(*url, "/"),
		Nodes:       nodeURLs,
		Requests:    *n,
		Concurrency: *c,
		Scene:       *scene,
		Size:        *size,
		Seed:        *seed,
		Binary:      *binary,
		Verify:      *verify,
		Robust:      *robust,
	})
	if err != nil {
		log.Fatalf("load run: %v", err)
	}

	fmt.Printf("requests     %d (concurrency %d)\n", res.Requests, res.Concurrency)
	fmt.Printf("errors       %d\n", res.Errors)
	fmt.Printf("retried      %d (backpressure 429/503, retried after Retry-After)\n", res.Retries)
	fmt.Printf("rejected     %d (gave up while still pushed back)\n", res.Rejected)
	if *verify {
		fmt.Printf("mismatches   %d (bit-identity vs local track)\n", res.Mismatches)
	}
	fmt.Printf("elapsed      %.2fs (%.1f req/s)\n", res.ElapsedSec, res.Throughput)
	fmt.Printf("latency      p50 %v  p90 %v  p99 %v  max %v\n", res.P50, res.P90, res.P99, res.MaxLatency)
	for _, nl := range res.PerNode {
		fmt.Printf("node %-28s %d req (%d ok, %d err, %d retried, %d rejected)  p50 %.1fms  p90 %.1fms  p99 %.1fms  %.1f req/s\n",
			nl.URL, nl.Requests, nl.Completed, nl.Errors, nl.Retries, nl.Rejected,
			nl.P50Ms, nl.P90Ms, nl.P99Ms, nl.Throughput)
	}
	for _, e := range res.ErrorSample {
		fmt.Printf("error sample %s\n", e)
	}

	if *benchOut != "" {
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			log.Fatalf("encoding result: %v", err)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("writing %s: %v", *benchOut, err)
		}
		log.Printf("wrote %s", *benchOut)
	}

	if *checkMetrics {
		if err := checkMetricsScrape(ctx, strings.TrimRight(*url, "/")); err != nil {
			log.Fatalf("metrics check: %v", err)
		}
		log.Printf("metrics scrape ok")
	}

	if res.Errors > 0 || res.Mismatches > 0 {
		os.Exit(1)
	}
}

// checkMetricsScrape asserts /metrics is parseable text exposition that
// counted our traffic.
func checkMetricsScrape(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	text := string(body)
	for _, family := range []string{
		"smaserve_http_requests_total",
		`route="/v1/track"`,
		"smaserve_pairs_tracked_total",
		"smaserve_worker_pool_size",
	} {
		if !strings.Contains(text, family) {
			return fmt.Errorf("scrape missing %s", family)
		}
	}
	return nil
}
