// Command smaserve runs the SMA motion-tracking HTTP service: synchronous
// pair tracking (POST /v1/track), asynchronous multi-frame jobs on the
// streaming pipeline (POST /v1/jobs), SVG rendering of stored results,
// and the operational endpoints /healthz, /readyz and /metrics.
//
// Usage:
//
//	smaserve -addr :8080
//	smaserve -addr 127.0.0.1:0 -port-file /tmp/smaserve.port -workers 4
//
// The server drains gracefully on SIGINT/SIGTERM: readiness flips to 503,
// listeners close, queued and in-flight tracking work runs to completion
// (bounded by -drain-timeout), then the process exits 0. See
// docs/SERVER.md for the API and serving model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"sma/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smaserve: ")
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		portFile     = flag.String("port-file", "", "write the bound port to this file once listening (for scripts)")
		workers      = flag.Int("workers", 0, "tracking worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 0, "admission queue bound (0 = 2×workers)")
		maxBody      = flag.Int64("max-body-bytes", 0, "request body cap in bytes (0 = 32 MiB)")
		trackTimeout = flag.Duration("track-timeout", 0, "synchronous track deadline (0 = 60s)")
		jobTimeout   = flag.Duration("job-timeout", 0, "asynchronous job deadline (0 = 10m)")
		resultTTL    = flag.Duration("result-ttl", 0, "how long finished results stay retrievable (0 = 15m)")
		maxFrames    = flag.Int("max-frames", 0, "job sequence length cap (0 = 512)")
		maxPixels    = flag.Int("max-pixels", 0, "frame area cap in pixels (0 = 2048²)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain bound")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = disabled)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}

	srv := server.New(server.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		MaxBodyBytes: *maxBody,
		TrackTimeout: *trackTimeout,
		JobTimeout:   *jobTimeout,
		ResultTTL:    *resultTTL,
		MaxFrames:    *maxFrames,
		MaxPixels:    *maxPixels,
		Logf:         log.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	if *portFile != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		if err := os.WriteFile(*portFile, []byte(fmt.Sprintf("%d\n", port)), 0o644); err != nil {
			log.Fatalf("writing port file: %v", err)
		}
	}
	log.Printf("listening on %s", ln.Addr())

	// Profiling is opt-in and served on its own listener so the debug
	// surface never shares a port with the public API. The import above
	// registers the /debug/pprof/* handlers on http.DefaultServeMux; the
	// main handler uses its own mux and is unaffected.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listen %s: %v", *pprofAddr, err)
		}
		log.Printf("pprof listening on %s", pln.Addr())
		//smavet:allow goleak -- debug server is process-lifetime by design; Serve only returns at exit
		go func() {
			psrv := &http.Server{ReadHeaderTimeout: 10 * time.Second}
			if err := psrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof serve: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %s; draining", s)
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain exceeded %v; in-flight work aborted: %v", *drainTimeout, err)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Printf("drained; bye")
}
