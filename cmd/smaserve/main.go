// Command smaserve runs the SMA motion-tracking HTTP service: synchronous
// pair tracking (POST /v1/track), asynchronous multi-frame jobs on the
// streaming pipeline (POST /v1/jobs), SVG rendering of stored results,
// and the operational endpoints /healthz, /readyz and /metrics.
//
// Usage:
//
//	smaserve -addr :8080
//	smaserve -addr 127.0.0.1:0 -port-file /tmp/smaserve.port -workers 4
//
// The same binary also runs the distributed job plane (docs/CLUSTER.md):
//
//	smaserve -worker -addr :8081                 # worker: full API + shard endpoint
//	smaserve -coordinator -worker-urls http://h1:8081,http://h2:8081
//
// A coordinator accepts the identical /v1/jobs API, splits each job into
// contiguous pair-range shards, dispatches them to the workers, and
// merges the per-pair streams bit-identically to a single node.
//
// With -data-dir the job plane is durable: job state goes through a
// write-ahead journal and result bytes live on disk, and a restart over
// the same directory restores finished jobs and resumes interrupted ones
// from their last checkpoint — bit-identical to an uninterrupted run
// (docs/ROBUSTNESS.md):
//
//	smaserve -data-dir /var/lib/smaserve
//	smaserve -coordinator -worker-urls ... -data-dir /var/lib/smaserve
//
// The server drains gracefully on SIGINT/SIGTERM: readiness flips to 503,
// listeners close, queued and in-flight tracking work runs to completion
// (bounded by -drain-timeout), then the process exits 0. Jobs still
// queued when a durable server drains are checkpointed pending and
// resume on the next start. See docs/SERVER.md for the API and serving
// model.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sma/internal/cluster"
	"sma/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smaserve: ")
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		portFile     = flag.String("port-file", "", "write the bound port to this file once listening (for scripts)")
		workers      = flag.Int("workers", 0, "tracking worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 0, "admission queue bound (0 = 2×workers)")
		maxBody      = flag.Int64("max-body-bytes", 0, "request body cap in bytes (0 = 32 MiB)")
		trackTimeout = flag.Duration("track-timeout", 0, "synchronous track deadline (0 = 60s)")
		jobTimeout   = flag.Duration("job-timeout", 0, "asynchronous job deadline (0 = 10m)")
		resultTTL    = flag.Duration("result-ttl", 0, "how long finished results stay retrievable (0 = 15m)")
		maxFrames    = flag.Int("max-frames", 0, "job sequence length cap (0 = 512)")
		maxPixels    = flag.Int("max-pixels", 0, "frame area cap in pixels (0 = 2048²)")
		rowWorkers   = flag.Int("row-workers", 0, "per-pair row parallelism (0 = GOMAXPROCS; pin to 1 for scaling studies)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain bound")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = disabled)")
		dataDir      = flag.String("data-dir", "", "durable job plane directory: journal job state and result bytes here, and resume interrupted jobs on restart (empty = in-memory only)")

		coordinator    = flag.Bool("coordinator", false, "run as a cluster coordinator (requires -worker-urls)")
		workerMode     = flag.Bool("worker", false, "run as a cluster worker: full API plus the internal shard endpoint")
		workerURLs     = flag.String("worker-urls", "", "comma-separated worker base URLs for -coordinator")
		shardPairs     = flag.Int("shard-pairs", 0, "pairs per shard when sharding jobs (0 = 8)")
		healthInterval = flag.Duration("health-interval", 0, "worker heartbeat probe interval (0 = 1s)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("unexpected arguments: %v", flag.Args())
	}
	if *coordinator && *workerMode {
		log.Fatalf("-coordinator and -worker are mutually exclusive")
	}

	var (
		handler  http.Handler
		shutdown func(context.Context) error
	)
	if *coordinator {
		urls := splitURLs(*workerURLs)
		if len(urls) == 0 {
			log.Fatalf("-coordinator needs -worker-urls")
		}
		co, err := cluster.New(cluster.Config{
			Workers:        urls,
			ShardPairs:     *shardPairs,
			JobTimeout:     *jobTimeout,
			ResultTTL:      *resultTTL,
			MaxFrames:      *maxFrames,
			MaxPixels:      *maxPixels,
			HealthInterval: *healthInterval,
			DataDir:        *dataDir,
			Logf:           log.Printf,
		})
		if err != nil {
			log.Fatalf("coordinator: %v", err)
		}
		coCtx, coCancel := context.WithCancel(context.Background())
		defer coCancel()
		if *dataDir != "" {
			rs, err := co.Recover(coCtx)
			if err != nil {
				log.Fatalf("coordinator recovery: %v", err)
			}
			log.Printf("recovered %s: %d restored, %d resumed, %d orphan dirs swept (journal: %d records, %d bytes repaired)",
				*dataDir, rs.Restored, rs.Resumed, rs.OrphanDirs, rs.Journal.Records, rs.Journal.TruncatedBytes)
		}
		co.Start(coCtx)
		log.Printf("coordinator over %d workers: %s", len(urls), strings.Join(urls, ", "))
		handler = co.Handler()
		shutdown = co.Shutdown
	} else {
		srv, err := server.Open(server.Config{
			Workers:      *workers,
			QueueDepth:   *queueDepth,
			MaxBodyBytes: *maxBody,
			TrackTimeout: *trackTimeout,
			JobTimeout:   *jobTimeout,
			ResultTTL:    *resultTTL,
			MaxFrames:    *maxFrames,
			MaxPixels:    *maxPixels,
			RowWorkers:   *rowWorkers,
			DataDir:      *dataDir,
			Logf:         log.Printf,
		})
		if err != nil {
			log.Fatalf("server: %v", err)
		}
		if *dataDir != "" {
			rs, err := srv.Recover(context.Background())
			if err != nil {
				log.Fatalf("recovery: %v", err)
			}
			log.Printf("recovered %s: %d restored, %d resumed, %d orphan dirs swept (journal: %d records, %d bytes repaired)",
				*dataDir, rs.Restored, rs.Resumed, rs.OrphanDirs, rs.Journal.Records, rs.Journal.TruncatedBytes)
		}
		handler = srv.Handler()
		shutdown = srv.Shutdown
		if *workerMode {
			wk := cluster.NewWorker(cluster.WorkerConfig{
				Concurrency: *workers,
				RowWorkers:  *rowWorkers,
				MaxPixels:   *maxPixels,
				Logf:        log.Printf,
			})
			mux := http.NewServeMux()
			mux.Handle("POST "+cluster.ShardPath, wk)
			mux.Handle("/", handler)
			handler = mux
			log.Printf("worker mode: shard endpoint mounted at %s", cluster.ShardPath)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen %s: %v", *addr, err)
	}
	if *portFile != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		if err := os.WriteFile(*portFile, []byte(fmt.Sprintf("%d\n", port)), 0o644); err != nil {
			log.Fatalf("writing port file: %v", err)
		}
	}
	log.Printf("listening on %s", ln.Addr())

	// Profiling is opt-in and served on its own listener so the debug
	// surface never shares a port with the public API. The import above
	// registers the /debug/pprof/* handlers on http.DefaultServeMux; the
	// main handler uses its own mux and is unaffected.
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("pprof listen %s: %v", *pprofAddr, err)
		}
		log.Printf("pprof listening on %s", pln.Addr())
		//smavet:allow goleak -- debug server is process-lifetime by design; Serve only returns at exit
		go func() {
			psrv := &http.Server{ReadHeaderTimeout: 10 * time.Second}
			if err := psrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof serve: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %s; draining", s)
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := shutdown(ctx); err != nil {
		log.Printf("drain exceeded %v; in-flight work aborted: %v", *drainTimeout, err)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	log.Printf("drained; bye")
}

// splitURLs parses a comma-separated URL list, trimming blanks and
// trailing slashes.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}
