// Command smastereo runs the Automatic Stereo Analysis (ASA) substrate on
// a rectified PGM stereo pair, producing the dense disparity map as a PGM
// image plus summary statistics — the cloud-top-surface stage that feeds
// the SMA tracker in the paper's stereo pipeline.
//
// Usage:
//
//	smastereo -left l.pgm -right r.pgm -out disparity.pgm
package main

import (
	"flag"
	"fmt"
	"log"

	"sma/internal/grid"
	"sma/internal/stereo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smastereo: ")
	var (
		leftPath  = flag.String("left", "", "left image (PGM, required)")
		rightPath = flag.String("right", "", "right image (PGM, required)")
		outPath   = flag.String("out", "", "write disparity as PGM (optional)")
		levels    = flag.Int("levels", 4, "pyramid levels")
		template  = flag.Int("template", 3, "correlation template radius")
		search    = flag.Int("search", 3, "per-level search radius, pixels")
		subpixel  = flag.Bool("subpixel", true, "parabolic sub-pixel refinement")
		gain      = flag.Float64("height-gain", 0, "also report heights = gain × disparity")
	)
	flag.Parse()
	if *leftPath == "" || *rightPath == "" {
		log.Fatal("-left and -right are required")
	}
	left, err := grid.ReadPGMFile(*leftPath)
	if err != nil {
		log.Fatal(err)
	}
	right, err := grid.ReadPGMFile(*rightPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := stereo.Config{
		Levels:         *levels,
		TemplateRadius: *template,
		SearchRadius:   *search,
		Subpixel:       *subpixel,
		SmoothSigma:    1.0,
	}
	disp, err := stereo.Estimate(left, right, cfg)
	if err != nil {
		log.Fatal(err)
	}
	min, max := disp.MinMax()
	fmt.Printf("disparity %dx%d: range [%.2f, %.2f] px, mean %.3f px\n",
		disp.W, disp.H, min, max, disp.Mean())
	if *gain > 0 {
		g := float32(*gain)
		z := stereo.ToHeight(disp, g)
		zmin, zmax := z.MinMax()
		fmt.Printf("heights: range [%.2f, %.2f], mean %.3f\n", zmin, zmax, z.Mean())
	}
	if *outPath != "" {
		if err := disp.WritePGMFile(*outPath); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *outPath)
	}
}
