// Command smatrack runs the Semi-fluid Motion Analysis algorithm on a
// pair of PGM images and reports the dense motion field: summary
// statistics, an ASCII quiver rendering, and optionally the U/V components
// as PGM images.
//
// Usage:
//
//	smatrack -i0 frame_000.pgm -i1 frame_001.pgm -nzs 3 -nzt 4 -nss 1
//	smatrack -i0 a.pgm -i1 b.pgm -driver maspar -pe 16 -scheme raster
//	smatrack -stream f0.pgm,f1.pgm,f2.pgm,f3.pgm -stream-workers 4
//
// With -z0/-z1 the given surface (height/disparity) maps drive the normal
// computation, as in the paper's stereo runs; otherwise the intensity
// images are treated as digital surfaces (the paper's monocular mode).
//
// -stream switches to the multi-frame pipeline (docs/PIPELINE.md): every
// consecutive pair of the listed frames is tracked, each frame's surface
// fit computed once and reused across its two pairs, with results
// bit-identical to running the pairs one at a time.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"sma/internal/core"
	"sma/internal/eval"
	"sma/internal/grid"
	"sma/internal/ingest"
	"sma/internal/maspar"
	"sma/internal/quality"
	"sma/internal/sequence"
	"sma/internal/stream"
	"sma/internal/viz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("smatrack: ")
	var (
		i0Path = flag.String("i0", "", "intensity image at t (PGM, required)")
		i1Path = flag.String("i1", "", "intensity image at t+1 (PGM, required)")
		z0Path = flag.String("z0", "", "surface map at t (PGM, optional)")
		z1Path = flag.String("z1", "", "surface map at t+1 (PGM, optional)")
		ns     = flag.Int("ns", 2, "surface-fit radius (window 2·ns+1)")
		nzs    = flag.Int("nzs", 3, "search radius")
		nzt    = flag.Int("nzt", 4, "template radius")
		nst    = flag.Int("nst", 2, "semi-fluid template radius")
		nss    = flag.Int("nss", 1, "semi-fluid search radius (0 = continuous model)")
		robust = flag.Bool("robust", false, "enable Huber-robust motion solve")

		pyramid   = flag.Int("pyramid", 0, "coarse-to-fine pyramid levels (0/1 = exhaustive search; continuous model only)")
		pyrRefine = flag.Int("pyramid-refine", 0, "pyramid refinement radius around each upsampled prior (0 = default)")

		driver = flag.String("driver", "seq", "driver: seq|maspar")
		pe     = flag.Int("pe", 16, "PE mesh edge for the maspar driver")
		scheme = flag.String("scheme", "raster", "neighborhood read-out: raster|snake")
		uOut   = flag.String("u-out", "", "write U component as PGM")
		vOut   = flag.String("v-out", "", "write V component as PGM")
		svgOut = flag.String("svg-out", "", "write a wind-vector SVG over the input image")
		quiver = flag.Bool("quiver", true, "print an ASCII quiver of the flow")
		step   = flag.Int("quiver-step", 8, "quiver sampling stride")
		kmPx   = flag.Float64("km-per-pixel", 0, "ground sample distance; with -dt-seconds, report winds in m/s")
		dtSec  = flag.Float64("dt-seconds", 0, "frame interval in seconds")

		streamPaths   = flag.String("stream", "", "comma-separated frame paths (PGM/AREA): stream mode, tracking every consecutive pair")
		streamWorkers = flag.Int("stream-workers", 0, "pair-tracking workers in stream mode (0 = GOMAXPROCS)")
		streamCache   = flag.Int("stream-cache", 0, "prepared-frame LRU capacity in stream mode (0 = default)")
		verbose       = flag.Bool("v", false, "verbose: print the pipeline's full work counters in stream mode")
	)
	flag.Parse()
	params0 := core.Params{NS: *ns, NZS: *nzs, NZT: *nzt, NST: *nst, NSS: *nss}
	pyrOpt := core.PyramidOptions{Levels: *pyramid, RefineRadius: *pyrRefine}
	if pyrOpt.Enabled() && params0.SemiFluid() {
		log.Fatal("-pyramid requires the continuous model (-nss 0)")
	}
	if *streamPaths != "" {
		geo := sequence.Geometry{KmPerPixel: *kmPx, SecondsPerDt: *dtSec}
		runStream(strings.Split(*streamPaths, ","), params0, core.Options{Robust: *robust, Pyramid: pyrOpt},
			*streamWorkers, *streamCache, geo, *verbose)
		return
	}
	if *i0Path == "" || *i1Path == "" {
		log.Fatal("-i0 and -i1 are required (or use -stream)")
	}
	i0, err := readImage(*i0Path)
	if err != nil {
		log.Fatal(err)
	}
	i1, err := readImage(*i1Path)
	if err != nil {
		log.Fatal(err)
	}
	pair := core.Monocular(i0, i1)
	if *z0Path != "" || *z1Path != "" {
		if *z0Path == "" || *z1Path == "" {
			log.Fatal("-z0 and -z1 must be given together")
		}
		z0, err := readImage(*z0Path)
		if err != nil {
			log.Fatal(err)
		}
		z1, err := readImage(*z1Path)
		if err != nil {
			log.Fatal(err)
		}
		pair = core.Pair{I0: i0, I1: i1, Z0: z0, Z1: z1}
	}

	params := params0
	opt := core.Options{Robust: *robust}

	var flow *grid.VectorField
	var epsField *grid.Grid
	switch *driver {
	case "seq":
		if pyrOpt.Enabled() {
			prep, err := core.PreparePyramid(pair, params, pyrOpt.Levels)
			if err != nil {
				log.Fatal(err)
			}
			res, st, err := core.TrackPyramidPreparedCtx(nil, prep, core.Options{Robust: *robust, Pyramid: pyrOpt}, 0)
			if err != nil {
				log.Fatal(err)
			}
			flow = res.Flow
			epsField = res.Err
			fmt.Printf("pyramid: %d levels, %.1f hyp/px (exhaustive %d), fallback %.1f%% (%d edge, %d residual)\n",
				st.Levels, st.HypPerPixel, st.ExhaustivePerPixel,
				100*st.FallbackFrac, st.EdgeFallbacks, st.ResidualFallbacks)
			break
		}
		res, err := core.TrackSequential(pair, params, opt)
		if err != nil {
			log.Fatal(err)
		}
		flow = res.Flow
		epsField = res.Err
	case "maspar":
		if pyrOpt.Enabled() {
			log.Fatal("-pyramid is only supported by the seq driver")
		}
		fs := maspar.RasterReadout
		if *scheme == "snake" {
			fs = maspar.SnakeReadout
		} else if *scheme != "raster" {
			log.Fatalf("unknown scheme %q", *scheme)
		}
		m, err := maspar.New(maspar.ScaledConfig(*pe, *pe))
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.TrackMasPar(m, pair, params, opt, fs)
		if err != nil {
			log.Fatal(err)
		}
		flow = res.Flow
		epsField = res.Err
		fmt.Printf("modeled MP-2 stage times (%dx%d PEs, %d layers, %d segment(s)):\n",
			*pe, *pe, res.Layers, res.Plan.Segments)
		fmt.Printf("  surface fit: %v\n  geometric variables: %v\n  semi-fluid mapping: %v\n  hypothesis matching: %v\n  total: %v\n",
			res.Stages.SurfaceFit, res.Stages.GeomVars, res.Stages.SemiMap,
			res.Stages.HypMatch, res.Stages.Total())
	default:
		log.Fatalf("unknown driver %q", *driver)
	}

	fmt.Printf("image %dx%d, model=%s, mean |d| = %.3f px\n",
		i0.W, i0.H, modelName(params), flow.MeanMagnitude())
	if rep, err := quality.Assess(flow, i0, i1, epsField); err == nil {
		fmt.Println("quality:", rep)
	}
	if *kmPx > 0 && *dtSec > 0 {
		geo := sequence.Geometry{KmPerPixel: *kmPx, SecondsPerDt: *dtSec}
		speed, _ := geo.WindField(flow)
		min, max := speed.MinMax()
		fmt.Printf("wind speed: %.1f–%.1f m/s (mean %.1f)\n", min, max, speed.Mean())
	}
	if *quiver {
		fmt.Print(eval.Quiver(flow, *step))
	}
	if *uOut != "" {
		if err := flow.U.WritePGMFile(*uOut); err != nil {
			log.Fatal(err)
		}
	}
	if *vOut != "" {
		if err := flow.V.WritePGMFile(*vOut); err != nil {
			log.Fatal(err)
		}
	}
	if *svgOut != "" {
		opt := viz.QuiverOptions{Step: *step, Background: i0}
		if err := viz.WriteQuiverSVGFile(*svgOut, flow, opt); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *svgOut)
	}
}

// runStream tracks every consecutive pair of a monocular frame sequence
// through the streaming pipeline, printing one summary line per pair as
// it is delivered (in order) and the pipeline's work counters at the end.
// Verbose mode dumps the full stream.Stats — frames in, fits
// computed/reused/evicted, pairs tracked — so cache behavior on real
// sequences is observable without instrumenting the binary.
func runStream(paths []string, params core.Params, opt core.Options, workers, cache int, geo sequence.Geometry, verbose bool) {
	for i := range paths {
		paths[i] = strings.TrimSpace(paths[i])
	}
	src := stream.Paths(paths, readImage)
	cfg := stream.Config{Params: params, Options: opt, Workers: workers, CacheSize: cache}
	start := time.Now()
	st, err := stream.Stream(src, cfg, func(i int, res *core.Result) error {
		line := fmt.Sprintf("pair %03d→%03d: mean |d| = %.3f px", i, i+1, res.Flow.MeanMagnitude())
		if geo.KmPerPixel > 0 && geo.SecondsPerDt > 0 {
			speed, _ := geo.WindField(res.Flow)
			line += fmt.Sprintf(", mean wind %.1f m/s", speed.Mean())
		}
		fmt.Println(line)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("stream: %d frames, %d pairs, %d fits computed, %d reused, %.2f frames/s (%v total)\n",
		st.FramesIn, st.PairsTracked, st.FitsComputed, st.FitsReused,
		float64(st.FramesIn)/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	if verbose {
		fmt.Printf("stream counters:\n")
		fmt.Printf("  frames in:       %d\n", st.FramesIn)
		fmt.Printf("  fits computed:   %d\n", st.FitsComputed)
		fmt.Printf("  fits reused:     %d\n", st.FitsReused)
		fmt.Printf("  fits evicted:    %d\n", st.Evictions)
		fmt.Printf("  pairs tracked:   %d\n", st.PairsTracked)
		fmt.Printf("  pairwise mode would fit %d frames; caching saved %d fits\n",
			2*st.PairsTracked, 2*st.PairsTracked-st.FitsComputed)
	}
}

// readImage loads a PGM or McIDAS AREA image, chosen by file extension.
func readImage(path string) (*grid.Grid, error) {
	if strings.HasSuffix(path, ".area") {
		_, g, err := ingest.ReadAreaFile(path)
		return g, err
	}
	return grid.ReadPGMFile(path)
}

func modelName(p core.Params) string {
	if p.SemiFluid() {
		return "semi-fluid"
	}
	return "continuous"
}
