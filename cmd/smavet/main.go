// Command smavet runs the project-specific static-analysis suite over
// the SMA pipeline sources. It needs only the Go standard library: the
// module's packages are parsed and type-checked in-process, then
// analyzed in parallel (one worker per package up to -parallel).
//
// Usage:
//
//	go run ./cmd/smavet ./...
//	go run ./cmd/smavet -checks lockscope,goleak ./internal/server
//	go run ./cmd/smavet -json ./... > smavet.json
//	go run ./cmd/smavet -write-baseline ./...
//
// Findings print as file:line: [check] message. Error-severity findings
// always gate; warn-severity findings gate only when absent from the
// committed .smavet-baseline ratchet file (new debt fails, frozen debt
// passes, entries that stop matching are reported stale). Individual
// sites are suppressed with //smavet:allow <check> [-- reason] on the
// same or previous line; the concurrency & determinism checks require
// the reason. See docs/STATIC_ANALYSIS.md.
//
// Exit status: 0 clean, 1 gating findings, 2 load/type/usage error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"sma/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	kernels := flag.String("kernels", "", "extra comma-separated kernel function names for hotalloc")
	sinks := flag.String("sinks", "", "extra comma-separated approved narrowing sinks for floatnarrow")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON report on stdout")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
	baselinePath := flag.String("baseline", "", "baseline file (default <module root>/.smavet-baseline)")
	writeBaseline := flag.Bool("write-baseline", false, "freeze current warn findings into the baseline file and exit")
	noBaseline := flag.Bool("no-baseline", false, "ignore the baseline: every finding gates")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max packages analyzed concurrently")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: smavet [flags] ./... | dir ...")
		os.Exit(2)
	}
	if *jsonOut && *sarifOut {
		fatalf("-json and -sarif are mutually exclusive")
	}

	analyzers := analysis.All()
	if *checks != "" {
		want := map[string]bool{}
		for _, c := range strings.Split(*checks, ",") {
			want[strings.TrimSpace(c)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for unknown := range want {
			fatalf("unknown check %q (try -list)", unknown)
		}
		analyzers = sel
	}

	cfg := analysis.DefaultConfig()
	addNames(cfg.KernelFuncs, *kernels)
	addNames(cfg.NarrowSinks, *sinks)

	root, err := moduleRoot()
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatalf("%v", err)
	}

	dirs, err := expandPatterns(root, flag.Args())
	if err != nil {
		fatalf("%v", err)
	}

	// Load serially — the loader caches package type-checks and is not
	// concurrent-safe — then analyze in parallel: each package's pass is
	// independent and findings are merged in sorted-dir order, so the
	// output is identical at any -parallel value.
	pkgs := make([]*analysis.Package, len(dirs))
	for i, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fatalf("%v", err)
		}
		pkgs[i] = pkg
	}
	perPkg := make([][]analysis.Finding, len(pkgs))
	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *analysis.Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			perPkg[i] = analysis.Run(cfg, pkg, analyzers)
		}(i, pkg)
	}
	wg.Wait()
	var all []analysis.Finding
	for _, fs := range perPkg {
		all = append(all, fs...)
	}

	bpath := *baselinePath
	if bpath == "" {
		bpath = filepath.Join(root, ".smavet-baseline")
	}
	if *writeBaseline {
		errs := 0
		for _, f := range all {
			if f.Severity == analysis.SevError {
				errs++
			}
		}
		if err := analysis.WriteBaseline(bpath, root, all); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "smavet: baseline written to %s (%d warn finding(s) frozen; %d error(s) NOT frozen — fix those)\n",
			bpath, len(all)-errs, errs)
		if errs > 0 {
			os.Exit(1)
		}
		return
	}

	base := &analysis.Baseline{}
	if !*noBaseline {
		base, err = analysis.ReadBaseline(bpath)
		if err != nil {
			fatalf("%v", err)
		}
	}
	gating, baselined, stale := base.Filter(root, all)

	switch {
	case *jsonOut:
		if err := analysis.WriteJSON(os.Stdout, root, gating, baselined, stale); err != nil {
			fatalf("%v", err)
		}
	case *sarifOut:
		if err := analysis.WriteSARIF(os.Stdout, root, analyzers, gating, baselined); err != nil {
			fatalf("%v", err)
		}
	default:
		for _, f := range gating {
			fmt.Printf("%s:%d: [%s:%s] %s\n", relTo(root, f.Pos.Filename), f.Pos.Line, f.Check, f.Severity, f.Message)
		}
	}
	analysis.WriteStale(os.Stderr, stale)
	if n := len(baselined); n > 0 {
		fmt.Fprintf(os.Stderr, "smavet: %d baselined warn finding(s) suppressed by %s\n", n, relTo(root, bpath))
	}
	if len(gating) > 0 {
		fmt.Fprintf(os.Stderr, "smavet: %d finding(s)\n", len(gating))
		os.Exit(1)
	}
}

func relTo(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}

func addNames(dst map[string]bool, csv string) {
	for _, n := range strings.Split(csv, ",") {
		if n = strings.TrimSpace(n); n != "" {
			dst[n] = true
		}
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above the working directory")
		}
		dir = parent
	}
}

// expandPatterns resolves ./...-style patterns and plain directories to
// the set of package directories to analyze. Recursive walks skip
// testdata, vendor and hidden directories — but a pattern rooted inside
// testdata analyzes it explicitly (this is how the analyzer fixtures are
// exercised end to end).
func expandPatterns(root string, args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range args {
		base, recursive := arg, false
		if strings.HasSuffix(arg, "/...") {
			base, recursive = strings.TrimSuffix(arg, "/..."), true
		} else if arg == "..." {
			base, recursive = ".", true
		}
		if base == "" {
			base = "."
		}
		abs := base
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(root, base)
		}
		if !recursive {
			if hasGoFiles(abs) {
				add(abs)
			} else {
				return nil, fmt.Errorf("no Go files in %s", base)
			}
			continue
		}
		inTestdata := strings.Contains(abs, string(filepath.Separator)+"testdata")
		err := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || (name == "testdata" && !inTestdata)) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "smavet: "+format+"\n", args...)
	os.Exit(2)
}
