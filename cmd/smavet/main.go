// Command smavet runs the project-specific static-analysis suite over
// the SMA pipeline sources. It needs only the Go standard library: the
// module's packages are parsed and type-checked in-process.
//
// Usage:
//
//	go run ./cmd/smavet ./...
//	go run ./cmd/smavet -checks panicfree,hotalloc ./internal/core
//
// Findings print as file:line: [check] message and make the exit status
// non-zero. Individual sites are suppressed with a
// //smavet:allow <check> [-- reason] comment on the same or previous
// line; see docs/STATIC_ANALYSIS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sma/internal/analysis"
)

func main() {
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	kernels := flag.String("kernels", "", "extra comma-separated kernel function names for hotalloc")
	sinks := flag.String("sinks", "", "extra comma-separated approved narrowing sinks for floatnarrow")
	list := flag.Bool("list", false, "list available checks and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: smavet [flags] ./... | dir ...")
		os.Exit(2)
	}

	analyzers := analysis.All()
	if *checks != "" {
		want := map[string]bool{}
		for _, c := range strings.Split(*checks, ",") {
			want[strings.TrimSpace(c)] = true
		}
		var sel []*analysis.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for unknown := range want {
			fatalf("unknown check %q (try -list)", unknown)
		}
		analyzers = sel
	}

	cfg := analysis.DefaultConfig()
	addNames(cfg.KernelFuncs, *kernels)
	addNames(cfg.NarrowSinks, *sinks)

	root, err := moduleRoot()
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatalf("%v", err)
	}

	dirs, err := expandPatterns(root, flag.Args())
	if err != nil {
		fatalf("%v", err)
	}
	found := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fatalf("%v", err)
		}
		for _, f := range analysis.Run(cfg, pkg, analyzers) {
			rel, err := filepath.Rel(root, f.Pos.Filename)
			if err != nil || strings.HasPrefix(rel, "..") {
				rel = f.Pos.Filename
			}
			fmt.Printf("%s:%d: [%s] %s\n", rel, f.Pos.Line, f.Check, f.Message)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "smavet: %d finding(s)\n", found)
		os.Exit(1)
	}
}

func addNames(dst map[string]bool, csv string) {
	for _, n := range strings.Split(csv, ",") {
		if n = strings.TrimSpace(n); n != "" {
			dst[n] = true
		}
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("smavet: no go.mod above the working directory")
		}
		dir = parent
	}
}

// expandPatterns resolves ./...-style patterns and plain directories to
// the set of package directories to analyze. Recursive walks skip
// testdata, vendor and hidden directories — but a pattern rooted inside
// testdata analyzes it explicitly (this is how the analyzer fixtures are
// exercised end to end).
func expandPatterns(root string, args []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range args {
		base, recursive := arg, false
		if strings.HasSuffix(arg, "/...") {
			base, recursive = strings.TrimSuffix(arg, "/..."), true
		} else if arg == "..." {
			base, recursive = ".", true
		}
		if base == "" {
			base = "."
		}
		abs := base
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(root, base)
		}
		if !recursive {
			if hasGoFiles(abs) {
				add(abs)
			} else {
				return nil, fmt.Errorf("smavet: no Go files in %s", base)
			}
			continue
		}
		inTestdata := strings.Contains(abs, string(filepath.Separator)+"testdata")
		err := filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != abs && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "vendor" || (name == "testdata" && !inTestdata)) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "smavet: "+format+"\n", args...)
	os.Exit(2)
}
