// Hurricane: the full Frederic-style stereo pipeline of §5.1 at laptop
// scale — synthesize a stereoscopic hurricane sequence, recover cloud-top
// surfaces with the multiresolution ASA matcher, track the semi-fluid
// motion on the simulated MasPar MP-2, and validate against ground truth
// and the sequential implementation.
package main

import (
	"flag"
	"fmt"
	"log"

	"sma/internal/core"
	"sma/internal/eval"
	"sma/internal/grid"
	"sma/internal/maspar"
	"sma/internal/stereo"
	"sma/internal/synth"
)

func main() {
	size := flag.Int("size", 96, "image edge length")
	seed := flag.Int64("seed", 7, "scene seed")
	flag.Parse()

	// Stereoscopic scene: left views plus right views displaced by a
	// smooth cloud-top height field.
	scene := synth.Hurricane(*size, *size, *seed)
	i0 := scene.Frame(0)
	i1 := scene.Frame(1)
	height := func(img *grid.Grid) *grid.Grid {
		z := img.GaussianBlur(3)
		z.Apply(func(v float32) float32 { return v * 0.02 })
		return z
	}
	r0 := synth.StereoPair(i0, height(i0))
	r1 := synth.StereoPair(i1, height(i1))

	// Automatic Stereo Analysis: coarse-to-fine correlation matching.
	scfg := stereo.DefaultConfig()
	z0, err := stereo.Estimate(i0, r0, scfg)
	if err != nil {
		log.Fatal(err)
	}
	z1, err := stereo.Estimate(i1, r1, scfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ASA disparity recovered, RMS error %.3f px\n",
		z0.Crop(8, 8, *size-16, *size-16).RMSDiff(height(i0).Crop(8, 8, *size-16, *size-16)))

	// Semi-fluid tracking on the simulated MP-2.
	params := core.ScaledParams()
	params.NZS = 3
	pair := core.Pair{I0: i0, I1: i1, Z0: z0, Z1: z1}
	m, err := maspar.New(maspar.ScaledConfig(16, 16))
	if err != nil {
		log.Fatal(err)
	}
	par, err := core.TrackMasPar(m, pair, params, core.Options{}, maspar.RasterReadout)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("modeled MP-2 stages: fit=%v geom=%v semi=%v match=%v total=%v\n",
		par.Stages.SurfaceFit, par.Stages.GeomVars, par.Stages.SemiMap,
		par.Stages.HypMatch, par.Stages.Total())

	// Paper validations: parallel == sequential, barb RMSE < 1 px.
	seq, err := core.TrackSequential(pair, params, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel == sequential: %v\n", par.Flow.Equal(seq.Flow))
	truth := scene.Truth(1)
	barbs := synth.Barbs(i0, 32, *size/8, 4)
	fmt.Printf("wind-barb RMSE vs truth: %.3f px (paper: < 1 px)\n",
		par.Flow.RMSEAt(truth, barbs))
	fmt.Println(eval.Quiver(par.Flow, *size/12))
}
