// Luis: the §5 dense-sequence processing mode at laptop scale — a long
// rapid-scan hurricane sequence tracked pairwise with the continuous
// model (as the paper did for Hurricane Luis's 490 frames), followed by
// the wind products the paper's abstract motivates: tracer trajectories
// through the flow fields and a physical wind-speed field from the
// satellite geometry.
package main

import (
	"flag"
	"fmt"
	"log"

	"sma/internal/core"
	"sma/internal/grid"
	"sma/internal/sequence"
	"sma/internal/synth"
)

func main() {
	size := flag.Int("size", 64, "image edge length")
	frames := flag.Int("frames", 6, "sequence length")
	seed := flag.Int64("seed", 31, "scene seed")
	flag.Parse()

	scene := synth.Hurricane(*size, *size, *seed)
	imgs := make([]*grid.Grid, *frames)
	for i := range imgs {
		imgs[i] = scene.Frame(float64(i))
	}

	// Luis used Fcont with an 11×11 template and 9×9 search; scale down.
	p := core.Params{NS: 2, NZS: 3, NZT: 3}
	flows, err := sequence.Track(imgs, p, core.Options{}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tracked %d pairs of a %d-frame sequence\n", len(flows), *frames)

	// Follow 8 tracers through the storm.
	seeds := synth.Barbs(imgs[0], 8, *size/8, 6)
	paths := sequence.Trajectories(flows, seeds)
	for i, path := range paths {
		start := path[0]
		end := path[len(path)-1]
		fmt.Printf("tracer %d: (%.0f,%.0f) → (%.1f,%.1f) over %d frames\n",
			i, start.X, start.Y, end.X, end.Y, len(path)-1)
	}

	// Physical winds: Luis rapid-scan was ~1.5-minute intervals at ~1 km
	// resolution.
	geo := sequence.Geometry{KmPerPixel: 1, SecondsPerDt: 90}
	speed, _ := geo.WindField(flows[0])
	min, max := speed.MinMax()
	fmt.Printf("wind speed over the first pair: %.1f–%.1f m/s (mean %.1f)\n",
		min, max, speed.Mean())
}
