// Multilayer: the motivating scenario for the semi-fluid model — a broken
// upper cloud deck drifting over a lower deck with a different wind.
// Compares four estimators against the per-layer ground truth: the
// semi-fluid SMA, the continuous SMA, Horn–Schunck optical flow (the
// standard global-smoothness baseline, MP-2 implementation [2] of the
// paper's related work) and rigid block matching.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"sma/internal/core"
	"sma/internal/flow"
	"sma/internal/grid"
	"sma/internal/synth"
)

func main() {
	size := flag.Int("size", 64, "image edge length")
	seed := flag.Int64("seed", 21, "scene seed")
	flag.Parse()

	ml := synth.NewMultiLayer(*size, *size, *seed)
	ml.Upper.Flow = synth.Uniform{U: 2, V: 0}
	ml.Lower.Flow = synth.Uniform{U: -1, V: -1}
	f0 := ml.Frame(0)
	f1 := ml.Frame(1)
	truth := ml.Truth(0, 1)
	pair := core.Monocular(f0, f1)

	score := func(name string, f *grid.VectorField) {
		margin := *size / 8
		var s float64
		n, exact := 0, 0
		for y := margin; y < *size-margin; y++ {
			for x := margin; x < *size-margin; x++ {
				u, v := f.At(x, y)
				tu, tv := truth.At(x, y)
				du := float64(u - tu)
				dv := float64(v - tv)
				s += du*du + dv*dv
				if du == 0 && dv == 0 {
					exact++
				}
				n++
			}
		}
		fmt.Printf("  %-22s RMSE %.3f px, exact %4.1f%%\n",
			name, math.Sqrt(s/float64(n)), 100*float64(exact)/float64(n))
	}

	semi := core.ScaledParams()
	cont := semi
	cont.NSS = 0
	resSemi, err := core.TrackSequential(pair, semi, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	resCont, err := core.TrackSequential(pair, cont, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	hs, err := flow.HornSchunck(f0, f1, flow.DefaultHSConfig())
	if err != nil {
		log.Fatal(err)
	}
	bm, err := flow.BlockMatch(f0, f1, flow.DefaultBMConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("two-layer scene %dx%d: upper deck (2,0), lower deck (-1,-1)\n", *size, *size)
	score("SMA semi-fluid", resSemi.Flow)
	score("SMA semi-fluid+median", resSemi.Flow.Median3())
	score("SMA continuous", resCont.Flow)
	score("Horn-Schunck", hs)
	score("block matching", bm)
}
