// Pipeline: the complete operational chain at laptop scale — synthesize a
// GOES-like stereo scene, write/read McIDAS AREA files (the era's
// interchange format), recover cloud-top surfaces with ASA plus the
// geostationary parallax geometry, track semi-fluid motion through the
// streaming multi-frame pipeline, classify clouds, post-process the wind
// field, and emit an SVG wind-vector product. Every substrate in the
// repository appears once.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"sma/internal/classify"
	"sma/internal/core"
	"sma/internal/geom"
	"sma/internal/grid"
	"sma/internal/ingest"
	"sma/internal/postproc"
	"sma/internal/sequence"
	"sma/internal/stereo"
	"sma/internal/stream"
	"sma/internal/synth"
	"sma/internal/viz"
)

func main() {
	size := flag.Int("size", 72, "image edge length")
	seed := flag.Int64("seed", 11, "scene seed")
	outDir := flag.String("out", os.TempDir(), "artifact directory")
	flag.Parse()

	// 1. Synthesize a hurricane with ground truth and a stereo right view
	//    from Frederic's 135°-baseline geometry.
	scene := synth.Hurricane(*size, *size, *seed)
	i0 := scene.Frame(0)
	i1 := scene.Frame(1)
	stGeom := geom.Frederic()
	dpk, err := stGeom.DisparityPerKm()
	if err != nil {
		log.Fatal(err)
	}
	heightKm := func(img *grid.Grid) *grid.Grid {
		z := img.GaussianBlur(3)
		z.Apply(func(v float32) float32 { return v * 0.004 }) // km (≈1 km tops → ≈8 px disparity)
		return z
	}
	z0km := heightKm(i0)
	disp0 := z0km.Clone()
	pxPerKm := float32(dpk)
	disp0.Apply(func(v float32) float32 { return v * pxPerKm })
	r0 := synth.StereoPair(i0, disp0)

	// 2. Round-trip through AREA files, as the ingest system would.
	dir := ingest.Directory{SensorID: 70, Date: 79255, Time: 170000}
	leftPath := filepath.Join(*outDir, "left.area")
	if err := ingest.WriteAreaFile(leftPath, dir, i0); err != nil {
		log.Fatal(err)
	}
	_, i0Read, err := ingest.ReadAreaFile(leftPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AREA round trip: %dx%d, sensor %d\n", i0Read.W, i0Read.H, dir.SensorID)

	// 3. ASA stereo + parallax geometry → cloud-top heights (km).
	dispEst, err := stereo.Estimate(i0, r0, stereo.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	zEst, err := stereo.ToHeightGeom(dispEst, stGeom)
	if err != nil {
		log.Fatal(err)
	}
	in := *size - *size/4
	fmt.Printf("cloud-top heights: RMS error %.3f km vs truth\n",
		zEst.Crop(*size/8, *size/8, in, in).RMSDiff(z0km.Crop(*size/8, *size/8, in, in)))

	// 4. Semi-fluid tracking through the streaming pipeline: three frames,
	//    two pairs, the shared middle frame surface-fitted exactly once
	//    (docs/PIPELINE.md). Results are bit-identical to pairwise
	//    sequential tracking.
	p := core.ScaledParams()
	p.NZS = 3
	i2 := scene.Frame(2)
	results, st, err := stream.Run(stream.Grids([]*grid.Grid{i0, i1, i2}),
		stream.Config{Params: p, Workers: 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d frames: %d surface fits computed, %d reused, %d pairs tracked\n",
		st.FramesIn, st.FitsComputed, st.FitsReused, st.PairsTracked)
	res := results[0]

	// 5. Cloud classification, post-processing, physical winds.
	mask := classify.CloudMask(i0)
	flow, err := postproc.ConfidenceSmooth(res.Flow, res.Err, 1)
	if err != nil {
		log.Fatal(err)
	}
	flow = classify.MaskFlow(flow, mask)
	wind := sequence.Geometry{KmPerPixel: 1, SecondsPerDt: 450}
	speed, _ := wind.WindField(flow)
	_, vmax := speed.MinMax()
	fmt.Printf("cloud-masked wind product: peak %.1f m/s\n", vmax)
	truth := scene.Truth(1)
	barbs := synth.Barbs(i0, 32, *size/8, 4)
	fmt.Printf("barb RMSE vs truth: %.3f px (paper: < 1 px)\n", res.Flow.RMSEAt(truth, barbs))

	// 6. SVG wind-vector product.
	svgPath := filepath.Join(*outDir, "winds.svg")
	if err := viz.WriteQuiverSVGFile(svgPath, flow, viz.QuiverOptions{Step: *size / 12, Background: i0}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", svgPath)
}
