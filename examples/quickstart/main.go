// Quickstart: estimate a dense non-rigid motion field between two frames
// of a synthetic cloud scene with the semi-fluid motion model, and check
// it against the scene's exact ground truth.
package main

import (
	"fmt"
	"log"

	"sma/internal/core"
	"sma/internal/eval"
	"sma/internal/synth"
)

func main() {
	// 1. A hurricane-like scene with analytically known motion.
	scene := synth.Hurricane(64, 64, 42)
	frame0 := scene.Frame(0)
	frame1 := scene.Frame(1)

	// 2. Track every pixel: monocular input (intensity as digital
	//    surface), semi-fluid model, laptop-scale windows.
	params := core.ScaledParams() // 5×5 fit, 5×5 search, 9×9 template, 3×3 semi-fluid
	params.NZS = 3                // cover the scene's peak wind speed
	res, err := core.TrackSequential(core.Monocular(frame0, frame1), params, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compare with ground truth at 32 trackable "wind barb" pixels,
	//    as the paper does against manual expert estimates.
	truth := scene.Truth(1)
	barbs := synth.Barbs(frame0, 32, 8, 4)
	fmt.Printf("mean displacement:  %.3f px\n", res.Flow.MeanMagnitude())
	fmt.Printf("barb RMSE vs truth: %.3f px (paper reports < 1 px)\n",
		res.Flow.RMSEAt(truth, barbs))
	fmt.Println(eval.Quiver(res.Flow, 8))
}
