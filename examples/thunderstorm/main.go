// Thunderstorm: the GOES-9 Florida rapid-scan experiment of §5.2 at
// laptop scale — a monocular convective scene tracked with the continuous
// model Fcont over four timesteps, with the intensity data treated as a
// digital surface (no stereo available, as in the paper).
package main

import (
	"flag"
	"fmt"
	"log"

	"sma/internal/core"
	"sma/internal/eval"
	"sma/internal/synth"
)

func main() {
	size := flag.Int("size", 96, "image edge length")
	steps := flag.Int("steps", 4, "timesteps to track")
	seed := flag.Int64("seed", 9, "scene seed")
	flag.Parse()

	scene := synth.Thunderstorm(*size, *size, *seed)
	params := core.Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 0} // continuous
	truth := scene.Truth(1)

	for t := 0; t < *steps; t++ {
		f0 := scene.Frame(float64(t))
		f1 := scene.Frame(float64(t + 1))
		res, err := core.TrackSequential(core.Monocular(f0, f1), params, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		margin := *size / 8
		var rmse float64
		{
			var s float64
			n := 0
			for y := margin; y < *size-margin; y++ {
				for x := margin; x < *size-margin; x++ {
					u, v := res.Flow.At(x, y)
					tu, tv := truth.At(x, y)
					s += float64(u-tu)*float64(u-tu) + float64(v-tv)*float64(v-tv)
					n++
				}
			}
			rmse = s / float64(n)
		}
		fmt.Printf("t=%d → t=%d: mean |d| = %.3f px, interior MSE vs truth = %.3f px²\n",
			t, t+1, res.Flow.MeanMagnitude(), rmse)
		fmt.Println(eval.Quiver(res.Flow, *size/12))
	}
}
