// Package analysis is the smavet static-analysis suite: project-specific
// checks for the SMA pipeline, built on go/ast and go/types only.
//
// The checks encode invariants the paper's algorithm and this
// reproduction's conventions depend on but the compiler cannot enforce:
// data-parallel goroutines must key shared writes by a per-worker variable
// (goroutinecapture), float64 accumulation may narrow to float32 only at
// approved storage sinks (floatnarrow), library packages must return
// errors rather than panic (panicfree), per-pixel kernels must not
// allocate (hotalloc), and errors must not be silently discarded or
// wrapped unwrappably (errdiscard).
//
// A finding may be suppressed at the site with a directive comment on the
// same line or the line directly above:
//
//	//smavet:allow <check>[,<check>...] [-- reason]
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the finding in the file:line: [check] message form the
// smavet driver prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Message)
}

// Analyzer is one smavet check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer and collects findings.
type Pass struct {
	Cfg      *Config
	Pkg      *Package
	check    string
	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.check,
		Message: fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer in the suite.
func All() []*Analyzer {
	return []*Analyzer{
		GoroutineCapture,
		FloatNarrow,
		PanicFree,
		HotAlloc,
		ErrDiscard,
	}
}

// Run applies the analyzers to one loaded package and returns the
// findings that survive //smavet:allow suppression, sorted by position.
func Run(cfg *Config, pkg *Package, analyzers []*Analyzer) []Finding {
	allow := collectAllows(pkg)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{Cfg: cfg, Pkg: pkg, check: a.Name}
		a.Run(pass)
		for _, f := range pass.findings {
			if allow.ok(f.Pos.Filename, f.Pos.Line, f.Check) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Check < b.Check
	})
	return out
}

// allowSet records //smavet:allow directives: file → line → check names.
type allowSet map[string]map[int]map[string]bool

// ok reports whether a finding of check at file:line is suppressed by a
// directive on the same line or the line directly above.
func (s allowSet) ok(file string, line int, check string) bool {
	lines := s[file]
	if lines == nil {
		return false
	}
	return lines[line][check] || lines[line-1][check]
}

func collectAllows(pkg *Package) allowSet {
	s := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "smavet:allow") {
					continue
				}
				text = strings.TrimPrefix(text, "smavet:allow")
				if reason := strings.Index(text, "--"); reason >= 0 {
					text = text[:reason]
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := s[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					s[pos.Filename] = lines
				}
				checks := lines[pos.Line]
				if checks == nil {
					checks = map[string]bool{}
					lines[pos.Line] = checks
				}
				for _, name := range strings.Split(text, ",") {
					if name = strings.TrimSpace(name); name != "" {
						checks[name] = true
					}
				}
			}
		}
	}
	return s
}

// funcDecls walks every function declaration of the package, handing the
// visitor the declaration (nil for file-scope initializers is never
// produced; package-level var initializers are visited separately by the
// analyzers that care).
func funcDecls(pkg *Package, visit func(*ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				visit(fd)
			}
		}
	}
}
