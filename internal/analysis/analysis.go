// Package analysis is the smavet static-analysis suite: project-specific
// checks for the SMA pipeline, built on go/ast and go/types only.
//
// The checks encode invariants the paper's algorithm and this
// reproduction's conventions depend on but the compiler cannot enforce:
// data-parallel goroutines must key shared writes by a per-worker variable
// (goroutinecapture), float64 accumulation may narrow to float32 only at
// approved storage sinks (floatnarrow), library packages must return
// errors rather than panic (panicfree), per-pixel kernels must not
// allocate (hotalloc), and errors must not be silently discarded or
// wrapped unwrappably (errdiscard).
//
// The concurrency & determinism suite extends that floor to the paper's
// schedule-independence contract: locks must not be copied, leaked past a
// return, or held across blocking operations (lockscope); a received
// context.Context must be threaded, not re-minted or stored (ctxflow);
// a field touched by sync/atomic anywhere must be atomic everywhere
// (atomicmix); results must not depend on map iteration order, unseeded
// randomness or wall-clock reads in kernel packages (detrange); and every
// goroutine needs a join — WaitGroup pairing or a drained channel
// (goleak).
//
// A finding may be suppressed at the site with a directive comment on the
// same line or the line directly above:
//
//	//smavet:allow <check>[,<check>...] [-- reason]
//
// Checks listed in Config.ReasonRequired reject directives without a
// "-- reason": the suppression is re-reported as an error until the why
// is written down.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding severities. Errors always gate; warnings gate only when they
// are not recorded in the committed baseline (the ratchet: existing debt
// is frozen, new debt fails).
const (
	SevError = "error"
	SevWarn  = "warn"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	Pos      token.Position
	Check    string
	Severity string
	Message  string
}

// String renders the finding in the file:line: [check] message form the
// smavet driver prints.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Message)
}

// Analyzer is one smavet check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer and collects findings.
type Pass struct {
	Cfg      *Config
	Pkg      *Package
	check    string
	findings []Finding
}

// Reportf records an error-severity finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.reportSev(SevError, pos, format, args...)
}

// Warnf records a warn-severity finding at pos: real debt, but eligible
// for the baseline ratchet instead of failing the build outright.
func (p *Pass) Warnf(pos token.Pos, format string, args ...any) {
	p.reportSev(SevWarn, pos, format, args...)
}

func (p *Pass) reportSev(sev string, pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Check:    p.check,
		Severity: sev,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer in the suite.
func All() []*Analyzer {
	return []*Analyzer{
		GoroutineCapture,
		FloatNarrow,
		PanicFree,
		HotAlloc,
		ErrDiscard,
		LockScope,
		CtxFlow,
		AtomicMix,
		DetRange,
		GoLeak,
	}
}

// sortFindings orders findings deterministically: file, line, column,
// check, message. The same order falls out of any analysis schedule,
// which is what lets the driver run packages in parallel.
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// Run applies the analyzers to one loaded package and returns the
// findings that survive //smavet:allow suppression, sorted by position.
// A reason-less allow directive does not suppress checks in
// Config.ReasonRequired; the finding comes back as an error telling the
// author to write the reason down.
func Run(cfg *Config, pkg *Package, analyzers []*Analyzer) []Finding {
	allow := collectAllows(pkg)
	var out []Finding
	for _, a := range analyzers {
		pass := &Pass{Cfg: cfg, Pkg: pkg, check: a.Name}
		a.Run(pass)
		for _, f := range pass.findings {
			switch allow.status(f.Pos.Filename, f.Pos.Line, f.Check) {
			case allowReasoned:
				continue
			case allowBare:
				if !cfg.ReasonRequired[f.Check] {
					continue
				}
				f.Severity = SevError
				f.Message += fmt.Sprintf(" (reason-less suppression: write //smavet:allow %s -- <why>)", f.Check)
			}
			out = append(out, f)
		}
	}
	sortFindings(out)
	return out
}

// Allow-directive match states, strongest first.
const (
	allowNone = iota
	allowBare
	allowReasoned
)

// allowSet records //smavet:allow directives: file → line → check name →
// whether the directive carried a "-- reason".
type allowSet map[string]map[int]map[string]bool

// status reports how a finding of check at file:line is suppressed by a
// directive on the same line or the line directly above. When both lines
// carry a directive for the check, a reasoned one wins.
func (s allowSet) status(file string, line int, check string) int {
	lines := s[file]
	if lines == nil {
		return allowNone
	}
	st := allowNone
	for _, l := range []int{line, line - 1} {
		if reasoned, ok := lines[l][check]; ok {
			if reasoned {
				return allowReasoned
			}
			st = allowBare
		}
	}
	return st
}

// ok reports whether the finding is suppressed at all (reasoned or not).
func (s allowSet) ok(file string, line int, check string) bool {
	return s.status(file, line, check) != allowNone
}

func collectAllows(pkg *Package) allowSet {
	s := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "smavet:allow") {
					continue
				}
				text = strings.TrimPrefix(text, "smavet:allow")
				reasoned := false
				if cut := strings.Index(text, "--"); cut >= 0 {
					reasoned = strings.TrimSpace(text[cut+2:]) != ""
					text = text[:cut]
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := s[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					s[pos.Filename] = lines
				}
				checks := lines[pos.Line]
				if checks == nil {
					checks = map[string]bool{}
					lines[pos.Line] = checks
				}
				for _, name := range strings.Split(text, ",") {
					if name = strings.TrimSpace(name); name != "" {
						// A reasoned directive is never downgraded by a
						// bare duplicate.
						checks[name] = checks[name] || reasoned
					}
				}
			}
		}
	}
	return s
}

// funcDecls walks every function declaration of the package, handing the
// visitor the declaration (nil for file-scope initializers is never
// produced; package-level var initializers are visited separately by the
// analyzers that care).
func funcDecls(pkg *Package, visit func(*ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				visit(fd)
			}
		}
	}
}
