package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader caches type-checked packages (including the standard
// library, which the source importer loads once) across all subtests.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func fixture(t *testing.T, name string) *Package {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = NewLoader(filepath.Join("..", ".."))
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	pkg, err := loaderVal.LoadDir(filepath.Join("internal", "analysis", "testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// wantLines scans the fixture directory for "// want <check>" markers and
// returns the expected finding sites as "file.go:line" strings.
func wantLines(t *testing.T, dir, check string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			if strings.Contains(sc.Text(), "// want "+check) {
				want = append(want, fmt.Sprintf("%s:%d", e.Name(), line))
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	sort.Strings(want)
	return want
}

// TestAnalyzersAgainstFixtures runs each analyzer on its fixture package
// and checks the findings exactly match the // want markers: every
// marked line flagged (positives), no unmarked line flagged (negatives).
func TestAnalyzersAgainstFixtures(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			pkg := fixture(t, a.Name)
			var got []string
			for _, f := range Run(DefaultConfig(), pkg, []*Analyzer{a}) {
				if f.Check != a.Name {
					t.Errorf("finding from unexpected check %q", f.Check)
				}
				got = append(got, fmt.Sprintf("%s:%d", filepath.Base(f.Pos.Filename), f.Pos.Line))
			}
			sort.Strings(got)
			want := wantLines(t, pkg.Dir, a.Name)
			if len(want) == 0 {
				t.Fatalf("fixture for %s has no positive cases", a.Name)
			}
			if strings.Join(got, " ") != strings.Join(want, " ") {
				t.Errorf("findings mismatch\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

// TestSuppressionDirectives verifies //smavet:allow works on the same
// line and the preceding line: the panicfree fixture contains two
// suppressed panics that must stay unflagged (covered by the exact-match
// test above) and Run must still flag them when suppression context is
// absent — i.e. the directives are what hides them, not the analyzer.
func TestSuppressionDirectives(t *testing.T) {
	pkg := fixture(t, "panicfree")
	pass := &Pass{Cfg: DefaultConfig(), Pkg: pkg, check: "panicfree"}
	PanicFree.Run(pass)
	suppressed := 0
	allow := collectAllows(pkg)
	for _, f := range pass.findings {
		if allow.ok(f.Pos.Filename, f.Pos.Line, f.Check) {
			suppressed++
		}
	}
	if suppressed != 2 {
		t.Fatalf("suppressed %d findings, want 2 (previous-line and same-line directives)", suppressed)
	}
}

// TestFindingString pins the file:line: [check] message output format the
// Makefile and CI grep for.
func TestFindingString(t *testing.T) {
	pkg := fixture(t, "hotalloc")
	fs := Run(DefaultConfig(), pkg, []*Analyzer{HotAlloc})
	if len(fs) == 0 {
		t.Fatal("no findings")
	}
	s := fs[0].String()
	if !strings.Contains(s, "hotalloc.go:") || !strings.Contains(s, "[hotalloc]") {
		t.Fatalf("unexpected format %q", s)
	}
}

// TestLoaderResolvesModuleImports checks the loader type-checks a
// fixture that imports a module-internal package (sma/internal/grid)
// without any go/packages machinery.
func TestLoaderResolvesModuleImports(t *testing.T) {
	pkg := fixture(t, "goroutinecapture")
	found := false
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "sma/internal/grid" {
			found = true
		}
	}
	if !found {
		t.Fatal("sma/internal/grid not among fixture imports")
	}
}

// TestLoaderHonorsBuildConstraints loads internal/core, which holds a
// mutually exclusive build-tagged pair (kernel_default.go !smaref,
// kernel_smaref.go smaref). Without constraint evaluation both files
// type-check together and useReferenceKernel is a duplicate declaration.
func TestLoaderHonorsBuildConstraints(t *testing.T) {
	loaderOnce.Do(func() {
		loaderVal, loaderErr = NewLoader(filepath.Join("..", ".."))
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	pkg, err := loaderVal.LoadDir(filepath.Join("internal", "core"))
	if err != nil {
		t.Fatalf("LoadDir(internal/core): %v", err)
	}
	if obj := pkg.Types.Scope().Lookup("useReferenceKernel"); obj == nil {
		t.Fatal("useReferenceKernel not declared in loaded package")
	}
	for _, f := range pkg.Files {
		name := filepath.Base(loaderVal.Fset.Position(f.Pos()).Filename)
		if name == "kernel_smaref.go" {
			t.Fatal("smaref-tagged file loaded under default build config")
		}
	}
}

// TestBuildTagDefaults pins the tag evaluation: host platform and release
// tags satisfied, custom tags not.
func TestBuildTagDefaults(t *testing.T) {
	for _, tag := range []string{"gc", "go1", "go1.21"} {
		if !defaultBuildTag(tag) {
			t.Errorf("tag %q should be satisfied", tag)
		}
	}
	for _, tag := range []string{"smaref", "gofuzz", "go2something", "tinygo"} {
		if defaultBuildTag(tag) {
			t.Errorf("tag %q should not be satisfied", tag)
		}
	}
}

// TestLoaderRejectsOutsideModule pins the module boundary.
func TestLoaderRejectsOutsideModule(t *testing.T) {
	loaderOnce.Do(func() {
		loaderVal, loaderErr = NewLoader(filepath.Join("..", ".."))
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	if _, err := loaderVal.LoadDir("/"); err == nil {
		t.Fatal("directory outside the module accepted")
	}
}

// TestRunSortsFindings checks deterministic ordering across analyzers.
func TestRunSortsFindings(t *testing.T) {
	pkg := fixture(t, "errdiscard")
	fs := Run(DefaultConfig(), pkg, All())
	for i := 1; i < len(fs); i++ {
		a, b := fs[i-1], fs[i]
		if a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line {
			t.Fatalf("findings out of order: %v before %v", a, b)
		}
	}
}
