package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces all-or-nothing atomicity: a variable or struct field
// accessed through sync/atomic anywhere in the package must be accessed
// atomically everywhere. One plain load next to an atomic.AddInt64 is a
// data race the memory model gives no guarantees about — it can read torn
// values on 32-bit hosts and stale values on any host — and it reproduces
// only under load, which is exactly where the Stats counters and the
// Prometheus registry live.
//
// The analyzer resolves the address argument of every sync/atomic call
// (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&flag), ...) to its
// types.Object and then flags every other read or write of the same
// object that is not itself inside a sync/atomic argument. The typed
// wrappers (atomic.Int64, atomic.Bool, ...) need no analysis — the type
// system already makes plain access impossible; preferring them is the
// approved fix.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic must be accessed atomically everywhere",
	Run:  runAtomicMix,
}

func runAtomicMix(p *Pass) {
	info := p.Pkg.Info

	// Pass 1: objects whose address goes into a sync/atomic call, plus
	// the source ranges of those calls' arguments (the atomic accesses
	// themselves must not self-flag in pass 2).
	type span struct{ lo, hi token.Pos }
	atomicObjs := map[types.Object]bool{}
	var atomicArgSpans []span
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				atomicArgSpans = append(atomicArgSpans, span{arg.Pos(), arg.End()})
				if obj := addressedObject(info, arg); obj != nil {
					atomicObjs[obj] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}
	insideAtomic := func(pos token.Pos) bool {
		for _, s := range atomicArgSpans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	// Pass 2: plain accesses of those objects anywhere else.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil || !atomicObjs[obj] || insideAtomic(id.Pos()) {
				return true
			}
			p.Reportf(id.Pos(), "%s is accessed with sync/atomic elsewhere; this plain access races — use the atomic API (or an atomic.%s field) here too",
				id.Name, suggestedAtomicType(obj))
			return true
		})
	}
}

// isAtomicCall reports whether call is a function of package sync/atomic.
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// addressedObject resolves &expr to the object of expr's base selector or
// identifier.
func addressedObject(info *types.Info, arg ast.Expr) types.Object {
	u, ok := arg.(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	switch x := u.X.(type) {
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	case *ast.Ident:
		return info.Uses[x]
	}
	return nil
}

// suggestedAtomicType names the typed sync/atomic wrapper for obj's type.
func suggestedAtomicType(obj types.Object) string {
	if basic, ok := obj.Type().Underlying().(*types.Basic); ok {
		switch basic.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64, types.Int:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64, types.Uint, types.Uintptr:
			return "Uint64"
		case types.Bool:
			return "Bool"
		}
	}
	return "Value"
}
