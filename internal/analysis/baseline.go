package analysis

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is the warn-severity ratchet. The committed .smavet-baseline
// file freezes the warn findings that existed when a check landed; a warn
// finding present in the baseline does not gate, a new one does, and a
// baseline entry with no matching finding is reported stale so the file
// only ever shrinks.
//
// Entries are a multiset keyed by (check, file, message) — deliberately
// without line numbers, so unrelated edits that shift code up or down do
// not churn the file or un-freeze debt. Error-severity findings never
// consult the baseline: they always gate.
type Baseline struct {
	counts map[string]int
}

// baselineKey builds the line-number-free identity of a finding, with the
// file path made module-relative so the baseline is checkout-independent.
func baselineKey(root string, f Finding) string {
	return f.Check + "\t" + relPath(root, f.Pos.Filename) + "\t" + f.Message
}

// relPath renders path relative to root with forward slashes; outside the
// root it falls back to the cleaned absolute path.
func relPath(root, path string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filepath.Clean(path))
}

// ReadBaseline loads path. A missing file is an empty baseline, not an
// error — a repo without debt needs no file.
func ReadBaseline(path string) (*Baseline, error) {
	b := &Baseline{counts: map[string]int{}}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") != 2 {
			return nil, fmt.Errorf("analysis: malformed baseline line %q (want check<TAB>file<TAB>message)", line)
		}
		b.counts[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// WriteBaseline freezes the warn-severity findings into path, sorted.
// Error findings are never written: they must be fixed, not frozen.
func WriteBaseline(path, root string, findings []Finding) error {
	var lines []string
	for _, f := range findings {
		if f.Severity == SevWarn {
			lines = append(lines, baselineKey(root, f))
		}
	}
	sort.Strings(lines)
	var sb strings.Builder
	sb.WriteString("# smavet warn-severity baseline: frozen debt, keyed check<TAB>file<TAB>message.\n")
	sb.WriteString("# New warn findings fail the build; entries here only warn when stale.\n")
	sb.WriteString("# Regenerate with `make smavet-baseline` after paying debt down.\n")
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// Filter splits findings against the baseline: gating findings (all
// errors, plus warns not in the baseline), baselined warns, and the
// stale baseline keys that matched nothing this run.
func (b *Baseline) Filter(root string, findings []Finding) (gating, baselined []Finding, stale []string) {
	remaining := make(map[string]int, len(b.counts))
	for k, v := range b.counts {
		remaining[k] = v
	}
	for _, f := range findings {
		if f.Severity == SevWarn {
			key := baselineKey(root, f)
			if remaining[key] > 0 {
				remaining[key]--
				baselined = append(baselined, f)
				continue
			}
		}
		gating = append(gating, f)
	}
	for k, v := range remaining {
		for i := 0; i < v; i++ {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return gating, baselined, stale
}

// Len reports the number of baseline entries (counting duplicates).
func (b *Baseline) Len() int {
	n := 0
	for _, v := range b.counts {
		n += v
	}
	return n
}

// WriteStale renders the stale entries human-readably.
func WriteStale(w io.Writer, stale []string) {
	for _, s := range stale {
		fmt.Fprintf(w, "smavet: stale baseline entry (finding no longer produced): %s\n", strings.ReplaceAll(s, "\t", " | "))
	}
}
