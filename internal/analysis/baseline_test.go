package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkFinding(file string, line int, check, sev, msg string) Finding {
	return Finding{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Check:    check,
		Severity: sev,
		Message:  msg,
	}
}

// TestBaselineRoundTrip writes a baseline from findings and reads it
// back: only warns are frozen, keys drop line numbers, and the file is
// sorted.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ".smavet-baseline")
	root := "/repo"
	findings := []Finding{
		mkFinding("/repo/b.go", 9, "goleak", SevWarn, "no join"),
		mkFinding("/repo/a.go", 3, "ctxflow", SevWarn, "minted root"),
		mkFinding("/repo/a.go", 5, "lockscope", SevError, "held across send"),
	}
	if err := WriteBaseline(path, root, findings); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "lockscope") {
		t.Fatal("error-severity finding frozen into the baseline")
	}
	if strings.Contains(string(data), ":3") || strings.Contains(string(data), ":9") {
		t.Fatal("baseline keys must not contain line numbers")
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("baseline has %d entries, want 2", b.Len())
	}
}

// TestBaselineFilter pins the ratchet semantics: errors always gate,
// baselined warns are consumed as a multiset, new warns gate, leftovers
// are stale.
func TestBaselineFilter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ".smavet-baseline")
	root := "/repo"
	frozen := []Finding{
		mkFinding("/repo/a.go", 3, "ctxflow", SevWarn, "minted root"),
		mkFinding("/repo/a.go", 8, "ctxflow", SevWarn, "minted root"), // duplicate message: multiset
		mkFinding("/repo/b.go", 1, "goleak", SevWarn, "gone soon"),
	}
	if err := WriteBaseline(path, root, frozen); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	now := []Finding{
		// Lines moved — still baselined (keys have no line numbers).
		mkFinding("/repo/a.go", 13, "ctxflow", SevWarn, "minted root"),
		mkFinding("/repo/a.go", 18, "ctxflow", SevWarn, "minted root"),
		// Third identical warn exceeds the frozen count of 2: gates.
		mkFinding("/repo/a.go", 30, "ctxflow", SevWarn, "minted root"),
		// New warn not in the baseline: gates.
		mkFinding("/repo/c.go", 2, "detrange", SevWarn, "rand"),
		// Errors gate regardless of the baseline.
		mkFinding("/repo/a.go", 40, "lockscope", SevError, "held"),
	}
	gating, baselined, stale := b.Filter(root, now)
	if len(gating) != 3 {
		t.Fatalf("gating = %d findings %v, want 3", len(gating), gating)
	}
	if len(baselined) != 2 {
		t.Fatalf("baselined = %d findings, want 2", len(baselined))
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "gone soon") {
		t.Fatalf("stale = %v, want the one b.go entry", stale)
	}
}

// TestBaselineMissingAndMalformed: a missing file is an empty baseline;
// a malformed line is a load error, not silently ignored.
func TestBaselineMissingAndMalformed(t *testing.T) {
	b, err := ReadBaseline(filepath.Join(t.TempDir(), "nope"))
	if err != nil {
		t.Fatalf("missing baseline must read as empty, got %v", err)
	}
	if b.Len() != 0 {
		t.Fatalf("missing baseline has %d entries", b.Len())
	}
	bad := filepath.Join(t.TempDir(), ".smavet-baseline")
	if err := os.WriteFile(bad, []byte("# comment ok\nonly-one-field\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(bad); err == nil {
		t.Fatal("malformed baseline line accepted")
	}
}

// TestDetRangeKernelPackages checks the det-package upgrade path: with
// the fixture's path added to DetPkgSuffixes, shared-source randomness
// becomes an error and time.Now is a finding at all.
func TestDetRangeKernelPackages(t *testing.T) {
	pkg := fixture(t, "detrangekernel")
	cfg := DefaultConfig()

	// Outside the det set: rand warns, time.Now is silent.
	var warns, errors int
	for _, f := range Run(cfg, pkg, []*Analyzer{DetRange}) {
		switch f.Severity {
		case SevWarn:
			warns++
		case SevError:
			errors++
		}
	}
	if warns != 1 || errors != 0 {
		t.Fatalf("non-det pass: %d warns %d errors, want 1/0", warns, errors)
	}

	cfg.DetPkgSuffixes = append(cfg.DetPkgSuffixes, "testdata/src/detrangekernel")
	findings := Run(cfg, pkg, []*Analyzer{DetRange})
	if len(findings) != 2 {
		t.Fatalf("det pass: %d findings %v, want 2", len(findings), findings)
	}
	for _, f := range findings {
		if f.Severity != SevError {
			t.Errorf("det-package finding has severity %q, want error: %v", f.Severity, f)
		}
	}
}

// TestOutputFormats sanity-checks the -json and -sarif documents: valid
// JSON, module-relative paths, severity → SARIF level mapping.
func TestOutputFormats(t *testing.T) {
	root := "/repo"
	gating := []Finding{
		mkFinding("/repo/a.go", 3, "lockscope", SevError, "held"),
		mkFinding("/repo/b.go", 7, "ctxflow", SevWarn, "minted"),
	}
	baselined := []Finding{
		mkFinding("/repo/c.go", 1, "goleak", SevWarn, "no join"),
	}

	var jbuf bytes.Buffer
	if err := WriteJSON(&jbuf, root, gating, baselined, []string{"stale\tkey\there"}); err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(jbuf.Bytes(), &rep); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	if rep.Version != 1 || len(rep.Findings) != 3 || len(rep.Stale) != 1 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	if rep.Findings[0].File != "a.go" || rep.Findings[0].Baselined {
		t.Fatalf("first finding should be gating a.go: %+v", rep.Findings[0])
	}
	if !rep.Findings[2].Baselined {
		t.Fatalf("baselined finding not marked: %+v", rep.Findings[2])
	}

	var sbuf bytes.Buffer
	if err := WriteSARIF(&sbuf, root, All(), gating, baselined); err != nil {
		t.Fatal(err)
	}
	var sarif struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(sbuf.Bytes(), &sarif); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v", err)
	}
	if sarif.Version != "2.1.0" || len(sarif.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: version %q, %d runs", sarif.Version, len(sarif.Runs))
	}
	run := sarif.Runs[0]
	if run.Tool.Driver.Name != "smavet" || len(run.Tool.Driver.Rules) != len(All()) {
		t.Fatalf("driver %q with %d rules, want smavet with %d", run.Tool.Driver.Name, len(run.Tool.Driver.Rules), len(All()))
	}
	wantLevels := []string{"error", "warning", "note"}
	if len(run.Results) != 3 {
		t.Fatalf("%d SARIF results, want 3", len(run.Results))
	}
	for i, r := range run.Results {
		if r.Level != wantLevels[i] {
			t.Errorf("result %d level %q, want %q", i, r.Level, wantLevels[i])
		}
	}
}
