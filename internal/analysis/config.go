package analysis

import "strings"

// Config carries the project-specific knobs of the smavet analyzers.
// DefaultConfig encodes this repository's conventions; cmd/smavet exposes
// flags that extend the name sets for out-of-tree use.
type Config struct {
	// KernelFuncs names the per-pixel kernel functions that must stay
	// allocation-free (hotalloc). The SMA inner loop runs one of these per
	// template pixel per hypothesis — ~10⁹ calls at paper scale — so a
	// single make/append inside them dominates the host profile.
	KernelFuncs map[string]bool

	// NarrowSinks names the functions and methods whose arguments are
	// approved float64→float32 narrowing points (floatnarrow). These are
	// the storage boundaries where the pipeline deliberately drops to the
	// MP-2's 32-bit plural floats; narrowing anywhere else risks doing
	// intermediate arithmetic at reduced precision.
	NarrowSinks map[string]bool

	// MutatorNames names the methods that mutate a grid or vector field
	// in place (goroutinecapture). A call to one of these on shared state
	// from inside a `go func` literal must be indexed by a per-worker
	// variable or the workers race.
	MutatorNames map[string]bool

	// GridPkgSuffix identifies the package whose types goroutinecapture
	// treats as shared pixel state.
	GridPkgSuffix string

	// DetPkgSuffixes are the import-path suffixes of the deterministic
	// kernel packages (detrange). Inside them, wall-clock reads
	// (time.Now) and any unseeded randomness are errors: the paper's
	// "parallel == sequential" validation and the golden fixtures both
	// require that every computed value be a pure function of the
	// inputs, never of the schedule or the clock.
	DetPkgSuffixes []string

	// CtxStructAllow names the struct types approved to store a
	// context.Context (ctxflow). Storing a ctx normally detaches it from
	// the call chain and defeats cancellation; the approved types are
	// deliberate roots (e.g. server.Pool's drain-escalation context,
	// which must outlive every request by design).
	CtxStructAllow map[string]bool

	// ReasonRequired lists the checks whose //smavet:allow directives
	// must carry a "-- reason". A bare allow for these checks does not
	// suppress; the finding is re-reported until the why is written
	// down. The concurrency & determinism suite starts reason-required;
	// the PR-1 checks keep their historical directives grandfathered.
	ReasonRequired map[string]bool
}

// DefaultConfig returns the smavet configuration for this repository.
func DefaultConfig() *Config {
	return &Config{
		KernelFuncs: set(
			// core tracker inner loop
			"trackPixel", "trackPixelFrom", "score",
			"preparePixel", "scoreHyp",
			"accumulateA", "accumulateB",
			"residualSum", "residualSumBounded", "rowResiduals",
			"residualSumBoundedReassoc",
			"solveMotion", "factorMotion", "solveFactored",
			"symmetrize", "robustRefine",
			// batch (multi-hypothesis) kernel — batch.go
			"trackPixelBatchFrom", "scoreHypLanes", "scoreLanes",
			"copyLaneRHS", "rowResidualsLane",
			"residualSumBoundedLane", "residualSumBoundedLaneReassoc",
			"solveFactoredLanes",
			// build-tagged reference kernel (same hot-path discipline)
			"scoreReference", "trackPixelFromReference",
			// surface fit per-pixel path
			"Fit",
			// linear algebra per-elimination path
			"Solve6", "Cholesky6", "AccumulateNormal",
			"Factor6", "SolveFactored6", "SolveFactored6Lanes",
		),
		NarrowSinks: set(
			"Set", "Fill", "SetScalar", "AddScalar", "MulScalar", "Broadcast",
		),
		MutatorNames: set(
			"Set", "Fill", "Apply", "ApplyXY", "AddScaled", "Normalize",
		),
		GridPkgSuffix: "internal/grid",
		DetPkgSuffixes: []string{
			"internal/core", "internal/la", "internal/grid",
			"internal/surface", "internal/flow", "internal/maspar",
		},
		CtxStructAllow: set(
			// Pool.forceCtx is the shutdown drain-escalation root: it must
			// outlive every request and is cancelled only by Shutdown.
			"Pool",
		),
		ReasonRequired: set(
			"lockscope", "ctxflow", "atomicmix", "detrange", "goleak",
		),
	}
}

// detPkg reports whether pkgPath is one of the deterministic kernel
// packages.
func (c *Config) detPkg(pkgPath string) bool {
	for _, suf := range c.DetPkgSuffixes {
		if strings.HasSuffix(pkgPath, suf) {
			return true
		}
	}
	return false
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}
