package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow protects the cancellation chain the serving layer depends on
// (request deadline → stream.RunCtx → core.TrackPreparedParallelCtx row
// loops). Three rules:
//
//   - a function that receives a context.Context must thread it into
//     every callee that accepts one — a call whose context-typed
//     parameter gets no context argument silently detaches the callee
//     from the caller's deadline;
//   - context.Background()/context.TODO() must not be minted in library
//     packages. With a ctx already in scope it is an error (derive with
//     context.WithTimeout/WithoutCancel instead); without one it is a
//     warning — either the function should accept a ctx or the site is a
//     deliberate root and says so with a reasoned //smavet:allow;
//   - a context must not be stored in a struct field outside the
//     approved types (Config.CtxStructAllow): stored contexts outlive
//     their cancellation scope and resurrect exactly the leaks the chain
//     exists to prevent.
//
// Package main is exempt from the minting rules — main is where roots
// belong.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "contexts must be threaded, not re-minted or stored in structs",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	info := p.Pkg.Info
	isMain := p.Pkg.Types.Name() == "main"

	// Struct fields of type context.Context outside the approved set.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || p.Cfg.CtxStructAllow[ts.Name.Name] {
				return true
			}
			for _, field := range st.Fields.List {
				if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
					p.Reportf(field.Pos(), "struct %s stores a context.Context; pass it per call or add the type to the approved roots", ts.Name.Name)
				}
			}
			return true
		})
	}

	funcDecls(p.Pkg, func(fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		hasCtx := false
		for _, field := range fd.Type.Params.List {
			if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
				hasCtx = true
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := contextMint(info, call); name != "" && !isMain {
				switch {
				case name == "TODO":
					p.Reportf(call.Pos(), "context.TODO() in library code; thread a real Context from the caller")
				case hasCtx:
					p.Reportf(call.Pos(), "context.Background() minted with a ctx already in scope; derive via context.WithTimeout/WithoutCancel so cancellation still chains")
				default:
					p.Warnf(call.Pos(), "context.Background() minted in library code; accept a ctx from the caller or mark this as a deliberate root")
				}
				return true
			}
			if hasCtx && dropsContext(info, call) {
				p.Reportf(call.Pos(), "call to %s accepts a context.Context but none is passed; thread the caller's ctx", callName(call))
			}
			return true
		})
	})
}

// contextMint matches context.Background()/context.TODO() calls and
// returns the function name, or "".
func contextMint(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return ""
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return obj.Name()
	}
	return ""
}

// dropsContext reports whether call's callee declares a context.Context
// parameter but no argument of context type is being passed.
func dropsContext(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	wantsCtx := false
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			wantsCtx = true
			break
		}
	}
	if !wantsCtx {
		return false
	}
	for _, arg := range call.Args {
		if atv, ok := info.Types[arg]; ok && isContextType(atv.Type) {
			return false
		}
	}
	return true
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

func callName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return exprName(fn.X) + "." + fn.Sel.Name
	}
	return "function"
}
