package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetRange guards the paper's schedule-independence contract: the golden
// fixtures and the "parallel == sequential" equivalence matrix both
// require that every computed value be a pure function of the inputs —
// never of Go's randomized map iteration order, the shared math/rand
// source, or the wall clock. Three rule families:
//
//   - results fed from a range over a map: a float compound-assignment to
//     a variable declared outside the loop accumulates in map order
//     (float addition is not associative, so the sum differs run to
//     run); appends to an outer slice build an arbitrarily-ordered list
//     (exempt when the slice is later passed to sort/slices in the same
//     function — the append-then-sort idiom is the approved fix); and a
//     write/encode call inside the body emits bytes in map order;
//   - package-level math/rand (and math/rand/v2) functions draw from the
//     shared, unseeded source: a warning anywhere, an error inside the
//     deterministic kernel packages (Config.DetPkgSuffixes). Methods on
//     an explicitly-seeded *rand.Rand are always fine;
//   - time.Now() inside a deterministic kernel package leaks the clock
//     into computed values.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc:  "results must not depend on map order, unseeded randomness, or the clock",
	Run:  runDetRange,
}

func runDetRange(p *Pass) {
	info := p.Pkg.Info
	det := p.Cfg.detPkg(p.Pkg.Path)

	funcDecls(p.Pkg, func(fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		sorted := sortedObjects(info, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						checkMapRangeBody(p, info, n, sorted)
					}
				}
			case *ast.CallExpr:
				checkDetCall(p, info, det, n)
			}
			return true
		})
	})
}

// checkMapRangeBody flags order-dependent work inside the body of a range
// over a map.
func checkMapRangeBody(p *Pass, info *types.Info, rs *ast.RangeStmt, sorted map[types.Object]bool) {
	outer := func(e ast.Expr) types.Object {
		obj := lhsObject(info, e)
		if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()) {
			return nil
		}
		return obj
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range reports for itself.
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return false
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				obj := outer(n.Lhs[0])
				if obj == nil || !isFloatType(obj.Type()) {
					return true
				}
				p.Reportf(n.Pos(), "float accumulation into %s inside range over a map: the sum depends on iteration order; iterate sorted keys", obj.Name())
			case token.ASSIGN:
				if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) {
					return true
				}
				obj := outer(n.Lhs[0])
				if obj == nil || sorted[obj] {
					return true
				}
				p.Reportf(n.Pos(), "append to %s inside range over a map builds an arbitrarily-ordered slice; sort it before use or iterate sorted keys", obj.Name())
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && writerMethods[sel.Sel.Name] {
				p.Reportf(n.Pos(), "%s inside range over a map emits output in map iteration order; iterate sorted keys", callName(n))
			}
		}
		return true
	})
}

// writerMethods are the output-emitting call names that make map-order
// iteration observable in bytes on the wire or on disk.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteField": true, "Encode": true,
	"Fprintf": true, "Fprint": true, "Fprintln": true,
	"Printf": true, "Print": true, "Println": true,
}

// checkDetCall flags unseeded randomness and, in deterministic kernel
// packages, wall-clock reads.
func checkDetCall(p *Pass, info *types.Info, det bool, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() != nil {
			return // methods on an explicitly-constructed *rand.Rand
		}
		switch fn.Name() {
		case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
			return
		}
		if det {
			p.Reportf(call.Pos(), "package-level %s.%s in a deterministic kernel package draws from the shared unseeded source; thread a seeded *rand.Rand from the caller", fn.Pkg().Name(), fn.Name())
		} else {
			p.Warnf(call.Pos(), "package-level %s.%s draws from the shared unseeded source; use a seeded *rand.Rand so runs reproduce", fn.Pkg().Name(), fn.Name())
		}
	case "time":
		if fn.Name() == "Now" && det {
			p.Reportf(call.Pos(), "time.Now() in a deterministic kernel package; computed values must be pure functions of the inputs")
		}
	}
}

// sortedObjects collects every object that appears in the arguments of a
// sort or slices call anywhere in body — the append-then-sort exemption.
func sortedObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := info.Uses[sel.Sel]
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		switch obj.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok {
					if o := info.Uses[id]; o != nil {
						out[o] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// lhsObject resolves the variable or field an assignment target denotes.
func lhsObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if o := info.Uses[e]; o != nil {
			return o
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		return lhsObject(info, e.X)
	case *ast.StarExpr:
		return lhsObject(info, e.X)
	case *ast.ParenExpr:
		return lhsObject(info, e.X)
	}
	return nil
}

func isFloatType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isBuiltinAppend matches a call to the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
