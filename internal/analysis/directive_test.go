package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseDirective builds a one-file Package (no type info — collectAllows
// only reads comments) from source.
func parseDirective(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "allow.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Fset: fset, Files: []*ast.File{f}}
}

// TestAllowDirectiveEdgeCases pins the //smavet:allow grammar: multiple
// comma-separated checks, same-line and line-above placement, reason
// parsing, and the reasoned-beats-bare merge rule.
func TestAllowDirectiveEdgeCases(t *testing.T) {
	src := `package p

//smavet:allow alpha,beta -- shared reason for both checks
var a = 1

var b = 2 //smavet:allow gamma

//smavet:allow delta --
var c = 3

//smavet:allow epsilon
var d = 4 //smavet:allow epsilon -- the reasoned duplicate wins

//smavet:allow zeta--reason without surrounding spaces
var e = 5
`
	s := collectAllows(parseDirective(t, src))

	cases := []struct {
		line  int
		check string
		want  int
	}{
		{4, "alpha", allowReasoned},         // line-above, multi-check
		{4, "beta", allowReasoned},          // second check of the list
		{4, "gamma", allowNone},             // unlisted check unaffected
		{6, "gamma", allowBare},             // same-line, no reason
		{9, "delta", allowBare},             // "--" with empty reason is bare
		{12, "epsilon", allowReasoned},      // bare line-above + reasoned same-line
		{13, "epsilon", allowReasoned},      // a directive also covers the line below it
		{15, "zeta", allowReasoned},         // "--" splits without surrounding spaces
		{4, "alpha-is-not-here", allowNone}, // exact names, no substring matching
	}
	for _, c := range cases {
		if got := s.status("allow.go", c.line, c.check); got != c.want {
			t.Errorf("status(line %d, %q) = %d, want %d", c.line, c.check, got, c.want)
		}
	}
}

// TestReasonRequiredSuppression checks Run's handling of reason-less
// directives on reason-required checks: the ctxflow fixture carries one
// bare allow (bareAllowedRoot) that must be re-reported as an error with
// the how-to-fix suffix, and one reasoned allow (allowedRoot) that must
// suppress cleanly — the generic fixture test pins the exact lines.
func TestReasonRequiredSuppression(t *testing.T) {
	pkg := fixture(t, "ctxflow")
	findings := Run(DefaultConfig(), pkg, []*Analyzer{CtxFlow})
	bare := 0
	for _, f := range findings {
		if strings.Contains(f.Message, "reason-less suppression") {
			bare++
			if f.Severity != SevError {
				t.Errorf("re-reported bare allow has severity %q, want error", f.Severity)
			}
			if !strings.Contains(f.Message, "//smavet:allow ctxflow -- <why>") {
				t.Errorf("re-report does not say how to fix: %q", f.Message)
			}
		}
	}
	if bare != 1 {
		t.Fatalf("re-reported %d bare allows, want 1", bare)
	}
}
