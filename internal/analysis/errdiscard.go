package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrDiscard flags two ways errors get lost:
//
//   - assignments that discard an error into blank identifiers only
//     (`_ = f()`, `_, _ = g()`) — the error vanishes without a trace;
//   - fmt.Errorf calls that interpolate an error value without %w —
//     the cause survives as text but errors.Is/As can no longer see it.
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "no silently discarded or unwrappably wrapped errors",
	Run:  runErrDiscard,
}

func runErrDiscard(p *Pass) {
	info := p.Pkg.Info
	errType := types.Universe.Lookup("error").Type()
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkBlankDiscard(p, info, errType, n)
			case *ast.CallExpr:
				checkErrorfWrap(p, info, errType, n)
			}
			return true
		})
	}
}

func checkBlankDiscard(p *Pass, info *types.Info, errType types.Type, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return // some result is kept; not a silent discard
		}
	}
	// All-blank assignment: flag if any discarded component is an error.
	for _, rhs := range as.Rhs {
		tv, ok := info.Types[rhs]
		if !ok {
			continue
		}
		switch t := tv.Type.(type) {
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				if types.Identical(t.At(i).Type(), errType) {
					p.Reportf(as.Pos(), "error discarded into blank identifier; handle it or document why it is safe to drop")
					return
				}
			}
		default:
			if types.Identical(tv.Type, errType) {
				p.Reportf(as.Pos(), "error discarded into blank identifier; handle it or document why it is safe to drop")
				return
			}
		}
	}
}

func checkErrorfWrap(p *Pass, info *types.Info, errType types.Type, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" || obj.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return // non-constant format; out of scope
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, a := range call.Args[1:] {
		tv, ok := info.Types[a]
		if !ok {
			continue
		}
		if types.Implements(tv.Type, errType.Underlying().(*types.Interface)) && !isBasicKind(tv.Type, types.String) {
			p.Reportf(call.Pos(), "fmt.Errorf interpolates an error without %%w; the cause becomes unwrappable")
			return
		}
	}
}
