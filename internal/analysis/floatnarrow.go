package analysis

import (
	"go/ast"
	"go/types"
)

// FloatNarrow flags float64→float32 conversions whose result feeds
// further computation instead of going straight into storage. The
// reproduction's convention, matching the paper's numerics, is: all
// accumulation (normal equations, residual sums, surface fits) runs in
// float64; values drop to the MP-2's 32-bit plural floats only at the
// storage boundary. A conversion buried inside a larger expression does
// intermediate arithmetic at reduced precision, which is exactly the
// class of bug that silently degrades the ε ordering the hypothesis
// search depends on.
//
// Approved contexts for a conversion (the whole converted value is
// stored, returned or handed to an approved sink):
//
//   - the right-hand side of an assignment or var declaration
//   - a return value
//   - a composite-literal element
//   - a direct argument to an approved sink (Config.NarrowSinks,
//     e.g. grid Set/Fill)
var FloatNarrow = &Analyzer{
	Name: "floatnarrow",
	Doc:  "float64→float32 conversions only at storage sinks",
	Run:  runFloatNarrow,
}

func runFloatNarrow(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		// Walk with an explicit parent so each conversion's immediate
		// context is known. Parentheses are transparent: children of a
		// ParenExpr see the paren's own parent.
		var visit func(parent, n ast.Node)
		visit = func(parent, n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok && isNarrowConv(info, call) && !narrowAllowed(p, parent, call) {
				p.Reportf(call.Pos(), "float64 narrowed to float32 mid-expression; convert at the storage sink instead")
			}
			eff := n
			if _, ok := n.(*ast.ParenExpr); ok {
				eff = parent
			}
			for _, c := range childNodes(n) {
				visit(eff, c)
			}
		}
		visit(nil, f)
	}
}

// isNarrowConv reports whether call is a conversion of a float64 value to
// a float32 type.
func isNarrowConv(info *types.Info, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return false
	}
	if !isBasicKind(tv.Type, types.Float32) {
		return false
	}
	atv, ok := info.Types[call.Args[0]]
	return ok && isBasicKind(atv.Type, types.Float64)
}

func isBasicKind(t types.Type, k types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == k
}

// narrowAllowed reports whether the conversion sits in an approved
// context given its immediate parent node.
func narrowAllowed(p *Pass, parent ast.Node, conv *ast.CallExpr) bool {
	switch pn := parent.(type) {
	case *ast.AssignStmt, *ast.ValueSpec, *ast.ReturnStmt,
		*ast.CompositeLit, *ast.KeyValueExpr:
		return true
	case *ast.CallExpr:
		// Direct argument to an approved sink.
		for _, a := range pn.Args {
			if a == conv {
				return isSinkCall(p, pn)
			}
		}
	}
	return false
}

func isSinkCall(p *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return p.Cfg.NarrowSinks[fun.Name]
	case *ast.SelectorExpr:
		return p.Cfg.NarrowSinks[fun.Sel.Name]
	}
	return false
}

// childNodes returns n's direct AST children in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
