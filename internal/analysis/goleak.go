package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak requires every goroutine launched from a function literal to
// have a join the enclosing function can see:
//
//   - a goroutine that calls wg.Done needs a wg.Add somewhere in the
//     enclosing function — Done without Add panics the counter negative
//     or lets Wait return before the work finishes;
//   - a send on a function-local unbuffered channel that nothing in the
//     enclosing function receives blocks forever: the goroutine leaks
//     and holds its captures alive. Channels that escape (passed to a
//     call, returned, stored) are joined elsewhere and skipped;
//   - a goroutine body with no join signal at all — no WaitGroup.Done,
//     no channel send, close, or receive, no select — is fire-and-forget.
//     That is a warning, not an error: some detached work is deliberate
//     (sweepers with their own cancellation), but it should be explicit.
//
// `go f(x)` with a named callee is skipped: the join lives inside f,
// beyond function-local analysis.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines need a join: WaitGroup pairing or a drained channel",
	Run:  runGoLeak,
}

func runGoLeak(p *Pass) {
	info := p.Pkg.Info
	funcDecls(p.Pkg, func(fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		adds := waitGroupAdds(info, fd.Body)
		chans := localChannels(info, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				checkGoLitJoin(p, info, gs, lit, adds, chans)
			}
			return true
		})
	})
}

// chanInfo is what goleak knows about a channel made in the enclosing
// function.
type chanInfo struct {
	unbuffered bool
	escapes    bool // passed to a call, returned: drained elsewhere
	received   bool // <-ch, range ch, or a select recv case in the function
}

// waitGroupAdds collects the WaitGroup objects with an Add call anywhere
// in body.
func waitGroupAdds(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := waitGroupMethodRecv(info, call, "Add"); obj != nil {
			out[obj] = true
		}
		return true
	})
	return out
}

// waitGroupMethodRecv matches call as wg.<method>() on a sync.WaitGroup
// and returns the receiver's object.
func waitGroupMethodRecv(info *types.Info, call *ast.CallExpr, method string) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	recv := rootObject(info, sel.X)
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if tv, ok := info.Types[sel.X]; ok {
		t = tv.Type
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if named.Obj().Pkg().Path() != "sync" || named.Obj().Name() != "WaitGroup" {
		return nil
	}
	return recv
}

// localChannels maps each channel made in body to what goleak knows
// about it.
func localChannels(info *types.Info, body *ast.BlockStmt) map[types.Object]*chanInfo {
	out := map[types.Object]*chanInfo{}

	// Declarations: ch := make(chan T[, n]).
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				continue
			}
			if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
				continue
			}
			if tv, ok := info.Types[call.Args[0]]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
					continue
				}
			}
			lhs, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := info.Defs[lhs]; obj != nil {
				out[obj] = &chanInfo{unbuffered: len(call.Args) == 1}
			}
		}
		return true
	})
	if len(out) == 0 {
		return out
	}

	mark := func(e ast.Expr, f func(*chanInfo)) {
		if id, ok := e.(*ast.Ident); ok {
			if ci := out[info.Uses[id]]; ci != nil {
				f(ci)
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				mark(n.X, func(ci *chanInfo) { ci.received = true })
			}
		case *ast.RangeStmt:
			mark(n.X, func(ci *chanInfo) { ci.received = true })
		case *ast.CallExpr:
			name := ""
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					name = b.Name()
				}
			}
			if name == "make" || name == "close" || name == "len" || name == "cap" {
				return true
			}
			for _, arg := range n.Args {
				mark(arg, func(ci *chanInfo) { ci.escapes = true })
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				mark(r, func(ci *chanInfo) { ci.escapes = true })
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				for _, r := range n.Rhs {
					mark(r, func(ci *chanInfo) { ci.escapes = true })
				}
			}
		}
		return true
	})
	return out
}

// checkGoLitJoin inspects one `go func(){...}()` body for its join.
func checkGoLitJoin(p *Pass, info *types.Info, gs *ast.GoStmt, lit *ast.FuncLit, adds map[types.Object]bool, chans map[types.Object]*chanInfo) {
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := waitGroupMethodRecv(info, n, "Done"); obj != nil {
				joined = true
				if !adds[obj] {
					p.Reportf(gs.Pos(), "goroutine calls %s.Done but %s.Add is never called in this function; Add before the go statement or Wait returns early", obj.Name(), obj.Name())
				}
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
					joined = true
				}
			}
		case *ast.SendStmt:
			joined = true
			if id, ok := n.Chan.(*ast.Ident); ok {
				if ci := chans[info.Uses[id]]; ci != nil && ci.unbuffered && !ci.escapes && !ci.received {
					p.Reportf(n.Pos(), "goroutine sends on unbuffered %s but nothing in this function receives; the send blocks forever and the goroutine leaks", id.Name)
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				joined = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		case *ast.SelectStmt:
			joined = true
		}
		return true
	})
	if !joined {
		p.Warnf(gs.Pos(), "goroutine has no visible join: no WaitGroup.Done, channel operation, or cancellation receive; make the lifetime explicit or mark a deliberate fire-and-forget")
	}
}
