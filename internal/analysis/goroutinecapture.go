package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineCapture flags writes to captured shared pixel state from
// inside `go func` literals unless the write is indexed by a per-worker
// variable. The SMA data-parallel drivers (TrackParallel, TrackMasPar)
// rely on a partitioning discipline: every worker goroutine may write
// res.Flow/res.Err only at coordinates derived from its own work
// assignment — a value received from the work channel or passed as a
// literal parameter. A write indexed by anything else is either a race
// or a partitioning bug; both reproduce only under load and -race.
//
// "Keyed" variables are the literal's parameters, variables bound by
// channel receives (`for y := range rows`, `v := <-ch`), and anything
// transitively computed from those. The analyzer flags:
//
//   - calls to mutating grid methods (Config.MutatorNames) on captured
//     *grid.Grid / *grid.VectorField values with no keyed argument;
//   - index-assignments into captured slices with no keyed index.
var GoroutineCapture = &Analyzer{
	Name: "goroutinecapture",
	Doc:  "goroutine writes to captured state must be keyed per-worker",
	Run:  runGoroutineCapture,
}

func runGoroutineCapture(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				checkGoLit(p, lit)
			}
			return true
		})
	}
}

func checkGoLit(p *Pass, lit *ast.FuncLit) {
	info := p.Pkg.Info

	// Objects declared inside the literal (captured = everything else).
	declared := map[types.Object]bool{}
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				declared[obj] = true
			}
		}
		return true
	})

	// Keyed objects: parameters, channel receives, and their transitive
	// assignments (fixed point).
	keyed := map[types.Object]bool{}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				keyed[obj] = true
			}
		}
	}
	mentionsKeyed := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && keyed[info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	hasReceive := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				found = true
			}
			return !found
		})
		return found
	}
	markLHS := func(lhs []ast.Expr) bool {
		changed := false
		for _, l := range lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil && !keyed[obj] {
				keyed[obj] = true
				changed = true
			}
		}
		return changed
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if tv, ok := info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && n.Key != nil {
						if markLHS([]ast.Expr{n.Key}) {
							changed = true
						}
					}
				}
			case *ast.AssignStmt:
				carry := false
				for _, r := range n.Rhs {
					if hasReceive(r) || mentionsKeyed(r) {
						carry = true
						break
					}
				}
				if carry && markLHS(n.Lhs) {
					changed = true
				}
			}
			return true
		})
	}

	// Flag unkeyed writes to captured state.
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || !p.Cfg.MutatorNames[sel.Sel.Name] {
				return true
			}
			root := rootObject(info, sel.X)
			if root == nil || declared[root] || !isGridType(p, info, sel.X) {
				return true
			}
			for _, a := range n.Args {
				if mentionsKeyed(a) {
					return true
				}
			}
			p.Reportf(n.Pos(), "goroutine calls %s.%s on captured shared state with no per-worker index; key the write by a channel-received or parameter value", exprName(sel.X), sel.Sel.Name)
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				ix, ok := l.(*ast.IndexExpr)
				if !ok {
					continue
				}
				root := rootObject(info, ix.X)
				if root == nil || declared[root] {
					continue
				}
				if tv, ok := info.Types[ix.X]; ok {
					if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
						continue
					}
				}
				if mentionsKeyed(ix.Index) {
					continue
				}
				p.Reportf(ix.Pos(), "goroutine writes captured slice %s at an unkeyed index; key the write by a channel-received or parameter value", exprName(ix.X))
			}
		}
		return true
	})
}

// rootObject unwraps selector/index chains to the base identifier's object.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isGridType reports whether e's type (through pointers) is a named type
// of the shared pixel-state package.
func isGridType(p *Pass, info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), p.Cfg.GridPkgSuffix)
}

func exprName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprName(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprName(x.X) + "[...]"
	case *ast.ParenExpr:
		return exprName(x.X)
	}
	return "expr"
}
