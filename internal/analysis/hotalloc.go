package analysis

import (
	"go/ast"
	"go/types"
)

// HotAlloc flags make/new/append inside the per-pixel kernel functions.
// One SMA timestep at paper scale evaluates the hypothesis kernel ~10⁹
// times (512² pixels × up to 81 hypotheses × template pixels); an
// allocation inside that path turns into GC pressure that dwarfs the
// arithmetic. Scratch space must be allocated once at tracker
// construction (see core.newTracker) and reused.
//
// The kernel set is Config.KernelFuncs; cmd/smavet's -kernels flag
// extends it.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no make/new/append in per-pixel kernel functions",
	Run:  runHotAlloc,
}

func runHotAlloc(p *Pass) {
	funcDecls(p.Pkg, func(fd *ast.FuncDecl) {
		if !p.Cfg.KernelFuncs[fd.Name.Name] || fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			if b, ok := p.Pkg.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "make", "new", "append":
					p.Reportf(call.Pos(), "%s in per-pixel kernel %s; pre-allocate scratch at construction", b.Name(), fd.Name.Name)
				}
			}
			return true
		})
	})
}
