package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one fully type-checked package of the module under analysis.
type Package struct {
	Path  string // import path, e.g. sma/internal/core
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using only
// the standard library: module-internal imports are resolved from the
// module directory and cached; everything else (the standard library)
// goes through the source importer. Test files are never loaded.
type Loader struct {
	ModulePath string
	ModuleDir  string
	Fset       *token.FileSet

	std   types.Importer
	cache map[string]*Package
}

// NewLoader builds a loader rooted at moduleDir, reading the module path
// from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: module root: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	return &Loader{
		ModulePath: modPath,
		ModuleDir:  abs,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		cache:      map[string]*Package{},
	}, nil
}

// LoadDir loads the package in dir (absolute or relative to the module
// root).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs := dir
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(l.ModuleDir, dir)
	}
	abs = filepath.Clean(abs)
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", path)
		}
		return pkg, nil
	}
	l.cache[path] = nil // cycle marker

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		include, err := buildConstraintSatisfied(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		if !include {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

// buildConstraintSatisfied reports whether the file's //go:build line (if
// any) is satisfied under the default build configuration: host GOOS/GOARCH,
// the gc compiler, and all go1.x release tags true; custom tags (such as the
// smaref reference-kernel tag) false. Files whose constraint fails are
// skipped, exactly as `go build` would skip them, so mutually exclusive
// build-tagged file pairs no longer type-check as duplicate declarations.
// Only the header before the package clause is scanned, matching the
// constraint placement rules the go tool enforces.
func buildConstraintSatisfied(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "package ") {
			break
		}
		if !constraint.IsGoBuild(line) {
			continue
		}
		expr, err := constraint.Parse(line)
		if err != nil {
			return false, fmt.Errorf("analysis: %s: %w", path, err)
		}
		return expr.Eval(defaultBuildTag), nil
	}
	return true, sc.Err()
}

// defaultBuildTag evaluates a single build tag under the default
// configuration (no custom -tags).
func defaultBuildTag(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc", "unix":
		return true
	}
	if rest, ok := strings.CutPrefix(tag, "go1"); ok {
		return rest == "" || strings.HasPrefix(rest, ".")
	}
	return false
}

// moduleImporter routes module-internal import paths to the loader and
// everything else to the shared source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.load(path, filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
