package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockScope checks the three mutex-misuse shapes that turn the server
// queue, TTL store and metrics registry into deadlocks or silent races:
//
//   - a sync.Mutex/RWMutex (or a struct containing one) copied by value —
//     a value receiver, a by-value parameter, an assignment from an
//     existing value, or a by-value range — forks the lock state, so two
//     goroutines each lock their own copy and race on the shared data;
//   - a Lock with a return path that skips the Unlock (no deferred
//     unlock): the next contender blocks forever;
//   - a lock held across a blocking operation — channel send/receive,
//     select without default, sync.WaitGroup.Wait, time.Sleep, or an
//     HTTP/network round trip. Any goroutine that needs the same mutex
//     to make the blocking operation complete is a deadlock; at best the
//     critical section stretches over I/O latencies.
//
// The path analysis is function-local: statements are walked in order
// with branch bodies explored under a copy of the lock state, which
// catches the early-return and blocking shapes without a full CFG.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "mutexes must not be copied, leaked past a return, or held across blocking ops",
	Run:  runLockScope,
}

func runLockScope(p *Pass) {
	info := p.Pkg.Info
	funcDecls(p.Pkg, func(fd *ast.FuncDecl) {
		// Mutex copies via value receivers and by-value parameters.
		if fd.Recv != nil {
			for _, field := range fd.Recv.List {
				checkLockParam(p, field)
			}
		}
		for _, field := range fd.Type.Params.List {
			checkLockParam(p, field)
		}
		if fd.Body != nil {
			ls := &lockState{p: p, info: info}
			ls.block(fd.Body.List, map[string]token.Pos{})
		}
	})

	// Mutex copies via assignment and range, anywhere in the package.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					if !copiesLockValue(info, rhs) {
						continue
					}
					p.Reportf(n.Pos(), "assignment copies %s, which contains a sync lock; share it by pointer", typeName(info, rhs))
				}
			case *ast.RangeStmt:
				if n.Value == nil {
					return true
				}
				// A := range value lives in Defs; an assigned one in Types.
				var vt types.Type
				if tv, ok := info.Types[n.Value]; ok {
					vt = tv.Type
				} else if id, ok := n.Value.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						vt = obj.Type()
					}
				}
				if vt != nil && containsLock(vt) {
					p.Reportf(n.Value.Pos(), "range copies %s values, which contain a sync lock; range over indices or pointers", shortTypeName(vt))
				}
			}
			return true
		})
	}
}

func checkLockParam(p *Pass, field *ast.Field) {
	tv, ok := p.Pkg.Info.Types[field.Type]
	if !ok || !containsLock(tv.Type) {
		return
	}
	p.Reportf(field.Pos(), "%s passes a sync lock by value; use a pointer", typeName(p.Pkg.Info, field.Type))
}

// copiesLockValue reports whether evaluating rhs copies an existing
// lock-containing value. Fresh composite literals and address-taking are
// initialization, not copies.
func copiesLockValue(info *types.Info, rhs ast.Expr) bool {
	switch rhs.(type) {
	case *ast.CompositeLit, *ast.UnaryExpr, *ast.CallExpr, *ast.FuncLit:
		return false
	}
	tv, ok := info.Types[rhs]
	if !ok {
		return false
	}
	return containsLock(tv.Type)
}

// containsLock reports whether t (not through pointers) is or embeds a
// sync.Mutex, RWMutex, WaitGroup, Once or Cond.
func containsLock(t types.Type) bool {
	return containsLockDepth(t, 0)
}

func containsLockDepth(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
				return true
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLockDepth(u.Elem(), depth+1)
	}
	return false
}

// typeName renders e's type compactly for diagnostics.
func typeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok {
		return "value"
	}
	return shortTypeName(tv.Type)
}

func shortTypeName(t types.Type) string {
	s := t.String()
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// lockState walks a statement list tracking which mutexes are locked.
// Keys are the textual form of the receiver expression ("s.mu"), which is
// exact enough function-locally.
type lockState struct {
	p    *Pass
	info *types.Info
}

// block analyzes stmts under the held set (key → Lock position) and
// returns the held set at the end of the list. deferred unlocks clear
// their key immediately: the lock is guaranteed released on every path.
func (ls *lockState) block(stmts []ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	for _, s := range stmts {
		held = ls.stmt(s, held)
	}
	return held
}

func (ls *lockState) stmt(s ast.Stmt, held map[string]token.Pos) map[string]token.Pos {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lockCall(ls.info, s.X); ok {
			switch op {
			case "Lock", "RLock":
				held = cloneHeld(held)
				held[key] = s.Pos()
			case "Unlock", "RUnlock":
				held = cloneHeld(held)
				delete(held, key)
			}
			return held
		}
		ls.checkBlocking(s.X, held)
	case *ast.DeferStmt:
		if key, op, ok := lockCall(ls.info, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			held = cloneHeld(held)
			delete(held, key)
			return held
		}
	case *ast.ReturnStmt:
		for _, key := range heldKeys(held) {
			ls.p.Reportf(s.Pos(), "return with %s.Lock still held and no deferred unlock; the next contender deadlocks", key)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			held = ls.stmt(s.Init, held)
		}
		ls.block(s.Body.List, cloneHeld(held))
		if s.Else != nil {
			ls.stmt(s.Else, cloneHeld(held))
		}
	case *ast.BlockStmt:
		held = ls.block(s.List, held)
	case *ast.ForStmt:
		ls.checkBlockingCond(s.Cond, held)
		ls.block(s.Body.List, cloneHeld(held))
	case *ast.RangeStmt:
		if tv, ok := ls.info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				ls.reportBlocking(s.Pos(), "receives from channel "+exprName(s.X), held)
			}
		}
		ls.block(s.Body.List, cloneHeld(held))
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.block(cc.Body, cloneHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.block(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			ls.reportBlocking(s.Pos(), "blocks in select", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				ls.block(cc.Body, cloneHeld(held))
			}
		}
	case *ast.SendStmt:
		ls.reportBlocking(s.Pos(), "sends on channel "+exprName(s.Chan), held)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			ls.checkBlocking(r, held)
		}
	case *ast.GoStmt:
		// The goroutine body runs under its own schedule; not this lock.
	case *ast.LabeledStmt:
		held = ls.stmt(s.Stmt, held)
	}
	return held
}

// checkBlocking flags blocking expressions evaluated while a lock is
// held: channel receives and known-blocking calls.
func (ls *lockState) checkBlocking(e ast.Expr, held map[string]token.Pos) {
	if len(held) == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ls.reportBlocking(n.Pos(), "receives from channel "+exprName(n.X), held)
			}
		case *ast.CallExpr:
			if desc := blockingCallDesc(ls.info, n); desc != "" {
				ls.reportBlocking(n.Pos(), desc, held)
			}
		case *ast.FuncLit:
			return false
		}
		return true
	})
}

func (ls *lockState) checkBlockingCond(e ast.Expr, held map[string]token.Pos) {
	if e != nil {
		ls.checkBlocking(e, held)
	}
}

func (ls *lockState) reportBlocking(pos token.Pos, what string, held map[string]token.Pos) {
	for _, key := range heldKeys(held) {
		ls.p.Reportf(pos, "%s while holding %s; move the blocking operation outside the critical section", what, key)
	}
}

// heldKeys returns the held mutex names in sorted order so findings come
// out deterministically regardless of map iteration.
func heldKeys(held map[string]token.Pos) []string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cloneHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// lockCall matches e as a Lock/Unlock/RLock/RUnlock call on a sync mutex
// and returns the receiver's textual key and the method name.
func lockCall(info *types.Info, e ast.Expr) (key, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if !isMutexExpr(info, sel.X) {
		return "", "", false
	}
	return exprName(sel.X), sel.Sel.Name, true
}

// isMutexExpr reports whether e's type (through one pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// blockingCallDesc classifies call as a known-blocking operation and
// describes it, or returns "".
func blockingCallDesc(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Sleep" {
			return "calls time.Sleep"
		}
	case "sync":
		if obj.Name() == "Wait" {
			return "calls " + exprName(sel.X) + ".Wait"
		}
	case "net/http", "net":
		// Client.Do, Get, Post, Dial, ... — any network round trip.
		return "calls " + obj.Pkg().Name() + "." + obj.Name() + " (network round trip)"
	}
	// Method Wait on a sync type reached through a named wrapper.
	if sel.Sel.Name == "Wait" {
		if fn, isFn := obj.(*types.Func); isFn {
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				if containsLock(recv.Type()) || strings.Contains(recv.Type().String(), "sync.") {
					return "calls " + exprName(sel.X) + ".Wait"
				}
			}
		}
	}
	return ""
}
