package analysis

import (
	"encoding/json"
	"io"
)

// JSONFinding is the machine-readable finding shape emitted by
// `smavet -json`. Paths are module-relative so CI artifacts diff cleanly
// across runners.
type JSONFinding struct {
	File      string `json:"file"`
	Line      int    `json:"line"`
	Column    int    `json:"column"`
	Check     string `json:"check"`
	Severity  string `json:"severity"`
	Message   string `json:"message"`
	Baselined bool   `json:"baselined,omitempty"`
}

// JSONReport is the top-level `smavet -json` document.
type JSONReport struct {
	Version  int           `json:"version"`
	Findings []JSONFinding `json:"findings"`
	Stale    []string      `json:"stale_baseline,omitempty"`
}

// WriteJSON renders findings (gating first, then baselined, each already
// sorted) as one indented JSON document.
func WriteJSON(w io.Writer, root string, gating, baselined []Finding, stale []string) error {
	rep := JSONReport{Version: 1, Findings: []JSONFinding{}, Stale: stale}
	add := func(fs []Finding, base bool) {
		for _, f := range fs {
			rep.Findings = append(rep.Findings, JSONFinding{
				File:      relPath(root, f.Pos.Filename),
				Line:      f.Pos.Line,
				Column:    f.Pos.Column,
				Check:     f.Check,
				Severity:  f.Severity,
				Message:   f.Message,
				Baselined: base,
			})
		}
	}
	add(gating, false)
	add(baselined, true)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// SARIF 2.1.0 document shapes — the minimal subset code-scanning UIs
// consume. Hand-rolled structs keep the output deterministic.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID   string `json:"id"`
	Desc struct {
		Text string `json:"text"`
	} `json:"shortDescription"`
}

type sarifResult struct {
	RuleID  string `json:"ruleId"`
	Level   string `json:"level"`
	Message struct {
		Text string `json:"text"`
	} `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	Physical struct {
		Artifact struct {
			URI string `json:"uri"`
		} `json:"artifactLocation"`
		Region struct {
			StartLine   int `json:"startLine"`
			StartColumn int `json:"startColumn,omitempty"`
		} `json:"region"`
	} `json:"physicalLocation"`
}

// WriteSARIF renders the gating findings as a SARIF 2.1.0 log. Baselined
// findings are downgraded to "note" so scanners show them without
// failing anything.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, gating, baselined []Finding) error {
	driver := sarifDriver{Name: "smavet"}
	for _, a := range analyzers {
		r := sarifRule{ID: a.Name}
		r.Desc.Text = a.Doc
		driver.Rules = append(driver.Rules, r)
	}
	results := []sarifResult{}
	add := func(fs []Finding, level func(Finding) string) {
		for _, f := range fs {
			res := sarifResult{RuleID: f.Check, Level: level(f)}
			res.Message.Text = f.Message
			var loc sarifLocation
			loc.Physical.Artifact.URI = relPath(root, f.Pos.Filename)
			loc.Physical.Region.StartLine = f.Pos.Line
			loc.Physical.Region.StartColumn = f.Pos.Column
			res.Locations = []sarifLocation{loc}
			results = append(results, res)
		}
	}
	add(gating, func(f Finding) string {
		if f.Severity == SevWarn {
			return "warning"
		}
		return "error"
	})
	add(baselined, func(Finding) string { return "note" })
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
