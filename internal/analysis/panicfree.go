package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicFree flags panic, os.Exit and log.Fatal* in internal library
// packages. The pipeline's entry points return errors all the way up —
// a panic in internal/... either kills a data-parallel worker goroutine
// (taking the process with it mid-run) or escapes through API boundaries
// the callers handle with error values.
//
// Functions named Must*/must* are exempt: they are the documented
// panicking wrappers of error-returning constructors, for call sites
// whose inputs are correct by construction.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "no panic/os.Exit/log.Fatal in internal library code",
	Run:  runPanicFree,
}

func runPanicFree(p *Pass) {
	if !strings.Contains(p.Pkg.Path+"/", "/internal/") {
		return
	}
	funcDecls(p.Pkg, func(fd *ast.FuncDecl) {
		name := fd.Name.Name
		if strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must") {
			return
		}
		if fd.Body == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if obj, ok := p.Pkg.Info.Uses[fun].(*types.Builtin); ok && obj.Name() == "panic" {
					p.Reportf(call.Pos(), "panic in library function %s; return an error or use a Must* wrapper", name)
				}
			case *ast.SelectorExpr:
				obj, ok := p.Pkg.Info.Uses[fun.Sel].(*types.Func)
				if !ok || obj.Pkg() == nil {
					return true
				}
				switch {
				case obj.Pkg().Path() == "os" && obj.Name() == "Exit":
					p.Reportf(call.Pos(), "os.Exit in library function %s; return an error", name)
				case obj.Pkg().Path() == "log" && strings.HasPrefix(obj.Name(), "Fatal"):
					p.Reportf(call.Pos(), "log.%s in library function %s; return an error", obj.Name(), name)
				}
			}
			return true
		})
	})
}
