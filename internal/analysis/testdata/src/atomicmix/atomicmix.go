// Fixture for the atomicmix analyzer: fields touched by sync/atomic
// anywhere must be touched atomically everywhere.
package atomicmix

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
}

func (s *stats) inc() {
	atomic.AddInt64(&s.hits, 1)
}

func (s *stats) plainRead() int64 {
	return s.hits // want atomicmix
}

func (s *stats) plainWrite() {
	s.hits = 0 // want atomicmix
	atomic.AddInt64(&s.misses, 1)
}

func (s *stats) goodAtomicRead() int64 {
	return atomic.LoadInt64(&s.misses)
}

var ready uint32

func setReady() {
	atomic.StoreUint32(&ready, 1)
}

func badReadyCheck() bool {
	return ready == 1 // want atomicmix
}

func goodReadyCheck() bool {
	return atomic.LoadUint32(&ready) == 1
}

type plain struct {
	n int64
}

func (p *plain) inc() {
	p.n++
}

func (p *plain) read() int64 {
	return p.n
}
