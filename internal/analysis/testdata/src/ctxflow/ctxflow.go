// Fixture for the ctxflow analyzer: contexts stored in structs, dropped
// instead of threaded, and minted in library code.
package ctxflow

import (
	"context"
	"time"
)

type holder struct {
	ctx context.Context // want ctxflow
	n   int
}

// Pool is in Config.CtxStructAllow: an approved deliberate root.
type Pool struct {
	ctx context.Context
}

func callee(ctx context.Context, n int) {}

func noCtx(n int) {}

func drops(ctx context.Context) {
	callee(nil, 1) // want ctxflow
	callee(ctx, 2)
	noCtx(3)
}

func goodDerive(ctx context.Context) {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	callee(tctx, 1)
}

func mintWithCtxInScope(ctx context.Context) {
	callee(context.Background(), 1) // want ctxflow
}

func mintTODO() {
	callee(context.TODO(), 1) // want ctxflow
}

func mintRoot() context.Context {
	return context.Background() // want ctxflow
}

func allowedRoot() context.Context {
	//smavet:allow ctxflow -- fixture: a deliberate root with its reason written down
	return context.Background()
}

func bareAllowedRoot() context.Context {
	//smavet:allow ctxflow
	return context.Background() // want ctxflow
}
