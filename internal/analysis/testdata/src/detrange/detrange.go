// Fixture for the detrange analyzer: map-order-dependent accumulation,
// appends, and output writes, plus shared-source randomness.
package detrange

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
)

func badFloatSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want detrange
	}
	return total
}

func goodIntSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want detrange
	}
	return keys
}

func goodSortedAppend(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func badWrite(w io.Writer, m map[string]string) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%s\n", k, v) // want detrange
	}
}

func goodSortedWrite(w io.Writer, m map[string]string) {
	for _, k := range goodSortedAppendStrings(m) {
		fmt.Fprintf(w, "%s=%s\n", k, m[k])
	}
}

func goodSortedAppendStrings(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodLocalAccumulation(m map[string][]float64) int {
	count := 0
	for _, vs := range m {
		var s float64
		for _, v := range vs {
			s += v
		}
		if s > 1 {
			count++
		}
	}
	return count
}

func badSharedRand() int {
	return rand.Intn(10) // want detrange
}

func goodSeededRand(r *rand.Rand) int {
	return r.Intn(10)
}
