// Fixture for detrange's deterministic-kernel-package mode: the test
// extends Config.DetPkgSuffixes with this package's path, which upgrades
// shared-source randomness to an error and makes wall-clock reads
// findings at all.
package detrangekernel

import (
	"math/rand"
	"time"
)

func Jitter() int64 {
	return rand.Int63() // error in a det package
}

func Stamp() time.Time {
	return time.Now() // error in a det package
}

func GoodSeeded(r *rand.Rand) float64 {
	return r.Float64()
}
