// Package errdiscard is a smavet analyzer fixture. Lines marked
// "want-marked errdiscard" must be flagged; everything else must not.
package errdiscard

import (
	"errors"
	"fmt"
)

func mayFail() error { return errors.New("x") }

func two() (int, error) { return 0, errors.New("x") }

func badDiscard() {
	_ = mayFail() // want errdiscard
}

func badDoubleDiscard() {
	_, _ = two() // want errdiscard
}

func badWrap(err error) error {
	return fmt.Errorf("context: %v", err) // want errdiscard
}

func goodKeepValue() int {
	v, _ := two()
	return v
}

func goodWrap(err error) error {
	return fmt.Errorf("context: %w", err)
}

func goodNonError() {
	_ = len("x")
}

func goodNoErrorArgs(n int) error {
	return fmt.Errorf("bad count %d", n)
}
