// Package floatnarrow is a smavet analyzer fixture. Lines marked
// "want-marked floatnarrow" must be flagged; everything else must not.
package floatnarrow

type img struct{}

func (img) Set(x, y int, v float32) {}

func consume(f float32) float64 { return float64(f) }

func badMidExpression(v float64) float32 {
	w := float32(v) * 2 // want floatnarrow
	return w
}

func badNonSinkArg(v float64) float64 {
	return consume(float32(v)) // want floatnarrow
}

func badParenthesized(v float64) float32 {
	w := (float32(v)) + 1 // want floatnarrow
	return w
}

func goodAssign(v float64) float32 {
	w := float32(v)
	return w
}

func goodReturn(v float64) float32 {
	return float32(v)
}

func goodSink(v float64) {
	var g img
	g.Set(0, 0, float32(v))
}

func goodComposite(v float64) []float32 {
	return []float32{float32(v)}
}

func goodVar(v float64) float32 {
	var w float32 = float32(v)
	return w
}

func goodIntConversion(n int) float32 {
	return float32(n) * 2 // int source: not a float64 narrowing
}
