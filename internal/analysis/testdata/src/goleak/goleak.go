// Fixture for the goleak analyzer: goroutines without a join the
// enclosing function can see.
package goleak

import "sync"

func badDoneWithoutAdd() {
	var wg sync.WaitGroup
	go func() { // want goleak
		defer wg.Done()
	}()
	wg.Wait()
}

func goodAddDonePair(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func badUndrainedSend() {
	ch := make(chan int)
	go func() {
		ch <- 1 // want goleak
	}()
}

func goodDrainedSend() int {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	return <-ch
}

func goodBufferedSend() {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
}

func goodEscapingSend(use func(chan int)) {
	ch := make(chan int)
	use(ch)
	go func() {
		ch <- 1
	}()
}

func badFireAndForget(f func()) {
	go func() { // want goleak
		f()
	}()
}

func goodNamedCallee(f func()) {
	go f()
}

func goodCancellationLoop(done chan struct{}, tick func()) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				tick()
			}
		}
	}()
}

func goodCloseSignal() chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	return done
}
