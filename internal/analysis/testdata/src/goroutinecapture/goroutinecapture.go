// Package goroutinecapture is a smavet analyzer fixture. Lines marked
// "want-marked goroutinecapture" must be flagged; everything else must not.
package goroutinecapture

import (
	"sync"

	"sma/internal/grid"
)

func badUnkeyedWrite(g *grid.Grid) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Set(0, 0, 1) // want goroutinecapture
	}()
	wg.Wait()
}

func badUnkeyedSlice(out []float64) {
	done := make(chan struct{})
	go func() {
		out[0] = 1 // want goroutinecapture
		close(done)
	}()
	<-done
}

func badLoopNotKeyed(g *grid.Grid) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// x and y are goroutine-local but derive from nothing the
		// scheduler handed this worker — every worker would write the
		// same pixels.
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				g.Set(x, y, 1) // want goroutinecapture
			}
		}
	}()
	wg.Wait()
}

func goodChannelKeyed(g *grid.Grid, rows chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for y := range rows {
			for x := 0; x < g.W; x++ {
				g.Set(x, y, 1)
			}
		}
	}()
	wg.Wait()
}

func goodParamKeyed(g *grid.Grid) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func(lo, hi int) {
		defer wg.Done()
		for y := lo; y < hi; y++ {
			g.Set(0, y, 1)
		}
	}(0, 4)
	wg.Wait()
}

func goodReceiveKeyed(out []float64, work chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := <-work
		out[i] = 1
	}()
	wg.Wait()
}

func goodDerivedKey(f *grid.VectorField, work chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for pe := range work {
			x := pe % 8
			y := pe / 8
			f.Set(x, y, 1, 2)
		}
	}()
	wg.Wait()
}

func goodLocalState() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		local := grid.New(4, 4)
		local.Set(0, 0, 1) // local is goroutine-owned, not captured
	}()
	wg.Wait()
}
