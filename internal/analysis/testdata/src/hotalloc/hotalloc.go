// Package hotalloc is a smavet analyzer fixture. Lines marked
// "want-marked hotalloc" must be flagged; everything else must not.
// score and trackPixel are in the default kernel set; setup is not.
package hotalloc

func score(n int) []float64 {
	buf := make([]float64, n) // want hotalloc
	return buf
}

func trackPixel(buf []float64) []float64 {
	buf = append(buf, 1) // want hotalloc
	p := new(float64)    // want hotalloc
	_ = p
	return buf
}

func setup(n int) []float64 {
	return make([]float64, n)
}

func residualSum(buf []float64) float64 {
	var s float64
	for _, v := range buf {
		s += v
	}
	return s
}
