// Fixture for the lockscope analyzer: lock copies, a Lock with a return
// path that skips the Unlock, and blocking operations inside critical
// sections.
package lockscope

import (
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func (c counter) valueReceiver() int { // want lockscope
	return c.n
}

func takeByValue(mu sync.Mutex) { // want lockscope
	mu.Lock()
	mu.Unlock()
}

func waitGroupByValue(wg sync.WaitGroup) { // want lockscope
	wg.Wait()
}

func assignCopy(c *counter) {
	cp := *c // want lockscope
	cp.n++
}

func rangeCopy(cs []counter) {
	for _, c := range cs { // want lockscope
		c.n++
	}
}

func returnHeld(c *counter) int {
	c.mu.Lock()
	if c.n > 0 {
		return c.n // want lockscope
	}
	c.mu.Unlock()
	return 0
}

func goodDeferUnlock(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func goodBalanced(c *counter) int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

func sendHeld(c *counter, ch chan int) {
	c.mu.Lock()
	ch <- c.n // want lockscope
	c.mu.Unlock()
}

func sleepHeld(c *counter) {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want lockscope
	c.mu.Unlock()
}

func recvHeld(c *counter, ch chan int) {
	c.mu.Lock()
	c.n = <-ch // want lockscope
	c.mu.Unlock()
}

func goodSelectDefault(c *counter, ch chan int) {
	c.mu.Lock()
	select {
	case ch <- c.n:
	default:
	}
	c.mu.Unlock()
}

func goodBlockingOutside(c *counter, ch chan int) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	ch <- n
}

func goodPointerUse(c *counter, mu *sync.Mutex) {
	mu.Lock()
	c.n++
	mu.Unlock()
}
