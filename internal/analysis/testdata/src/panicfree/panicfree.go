// Package panicfree is a smavet analyzer fixture. Lines marked
// "want-marked panicfree" must be flagged; everything else must not.
package panicfree

import (
	"errors"
	"fmt"
	"log"
	"os"
)

func Bad(n int) {
	if n < 0 {
		panic("negative") // want panicfree
	}
}

func BadFatal(err error) {
	if err != nil {
		log.Fatal(err) // want panicfree
	}
}

func BadFatalf(err error) {
	if err != nil {
		log.Fatalf("boom: %v", err) // want panicfree
	}
}

func BadExit() {
	os.Exit(1) // want panicfree
}

func Good(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}

func MustGood(n int) {
	if err := Good(n); err != nil {
		panic(err)
	}
}

func mustLower(n int) {
	if n < 0 {
		panic("lower-case must prefix is exempt too")
	}
}

func Allowed(n int) {
	if n < 0 {
		//smavet:allow panicfree -- fixture: suppression on previous line
		panic(fmt.Sprintf("n = %d", n))
	}
}

func AllowedSameLine(n int) {
	if n < 0 {
		panic("same-line suppression") //smavet:allow panicfree
	}
}
