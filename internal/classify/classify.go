// Package classify provides the cloud classification the paper's §6
// proposes for motion-field post-processing: separating cloudy from clear
// pixels (so wind vectors are only reported over clouds, as Figure 6
// does: "over cloudy regions") and splitting cloudy pixels into height
// layers, the structure the semi-fluid model exploits for multi-layer
// decks.
package classify

import (
	"fmt"
	"math"

	"sma/internal/grid"
)

// CloudMask thresholds an intensity image into cloudy (bright) and clear
// pixels using Otsu's criterion on a 256-bin histogram.
func CloudMask(img *grid.Grid) []bool {
	min, max := img.MinMax()
	span := max - min
	if span == 0 {
		return make([]bool, len(img.Data))
	}
	var hist [256]int
	for _, v := range img.Data {
		b := int((v - min) / span * 255)
		hist[b]++
	}
	t := otsu(hist[:], len(img.Data))
	thresh := min + float32(t)/255*span
	mask := make([]bool, len(img.Data))
	for i, v := range img.Data {
		mask[i] = v > thresh
	}
	return mask
}

// otsu returns the bin index maximizing between-class variance.
func otsu(hist []int, total int) int {
	var sum float64
	for i, c := range hist {
		sum += float64(i) * float64(c)
	}
	var sumB, wB float64
	best := 0
	bestVar := -1.0
	for t, c := range hist {
		wB += float64(c)
		if wB == 0 {
			continue
		}
		wF := float64(total) - wB
		if wF == 0 {
			break
		}
		sumB += float64(t) * float64(c)
		mB := sumB / wB
		mF := (sum - sumB) / wF
		v := wB * wF * (mB - mF) * (mB - mF)
		if v > bestVar {
			bestVar = v
			best = t
		}
	}
	return best
}

// Layers clusters the heights of masked (cloudy) pixels into k layers by
// 1-D k-means and returns a per-pixel layer index (−1 for clear pixels)
// and the sorted layer-mean heights (layer 0 is the lowest).
func Layers(z *grid.Grid, mask []bool, k int) ([]int, []float64, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("classify: k = %d, need >= 1", k)
	}
	if len(mask) != len(z.Data) {
		return nil, nil, fmt.Errorf("classify: mask length %d != %d pixels", len(mask), len(z.Data))
	}
	var vals []float64
	for i, v := range z.Data {
		if mask[i] {
			vals = append(vals, float64(v))
		}
	}
	labels := make([]int, len(z.Data))
	for i := range labels {
		labels[i] = -1
	}
	if len(vals) == 0 {
		return labels, nil, nil
	}
	if len(vals) < k {
		k = len(vals)
	}
	// Initialize centers at evenly spaced quantiles of the value range.
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	centers := make([]float64, k)
	for i := range centers {
		centers[i] = lo + (hi-lo)*(float64(i)+0.5)/float64(k)
	}
	assign := make([]int, len(vals))
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, v := range vals {
			best := 0
			bd := math.Abs(v - centers[0])
			for c := 1; c < k; c++ {
				if d := math.Abs(v - centers[c]); d < bd {
					bd = d
					best = c
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, v := range vals {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for c := range centers {
			if counts[c] > 0 {
				centers[c] = sums[c] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	// Sort layers by height (selection sort on k entries) and remap.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if centers[order[j]] < centers[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	rank := make([]int, k)
	sorted := make([]float64, k)
	for r, c := range order {
		rank[c] = r
		sorted[r] = centers[c]
	}
	vi := 0
	for i := range z.Data {
		if mask[i] {
			labels[i] = rank[assign[vi]]
			vi++
		}
	}
	return labels, sorted, nil
}

// MaskFlow zeroes the motion field outside the mask — the Figure 6
// presentation convention (vectors shown only over cloudy regions).
func MaskFlow(flow *grid.VectorField, mask []bool) *grid.VectorField {
	out := flow.Clone()
	for i, m := range mask {
		if !m {
			out.U.Data[i] = 0
			out.V.Data[i] = 0
		}
	}
	return out
}
