package classify

import (
	"testing"

	"sma/internal/grid"
	"sma/internal/synth"
)

func TestCloudMaskBimodal(t *testing.T) {
	// Dark background (20) with a bright square (200): the mask must be
	// exactly the square.
	g := grid.New(32, 32)
	g.Fill(20)
	for y := 8; y < 24; y++ {
		for x := 8; x < 24; x++ {
			g.Set(x, y, 200)
		}
	}
	mask := CloudMask(g)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			in := x >= 8 && x < 24 && y >= 8 && y < 24
			if mask[y*32+x] != in {
				t.Fatalf("mask(%d,%d) = %v, want %v", x, y, mask[y*32+x], in)
			}
		}
	}
}

func TestCloudMaskConstantImage(t *testing.T) {
	g := grid.New(8, 8)
	g.Fill(5)
	for _, m := range CloudMask(g) {
		if m {
			t.Fatal("constant image produced cloudy pixels")
		}
	}
}

func TestLayersSeparatesTwoDecks(t *testing.T) {
	// Heights: half the cloudy pixels at ~2 km, half at ~8 km.
	z := grid.New(16, 16)
	mask := make([]bool, 256)
	for i := range z.Data {
		mask[i] = true
		if i%2 == 0 {
			z.Data[i] = 2 + float32(i%5)*0.01
		} else {
			z.Data[i] = 8 + float32(i%7)*0.01
		}
	}
	labels, centers, err := Layers(z, mask, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 2 || centers[0] > centers[1] {
		t.Fatalf("centers = %v, want two ascending", centers)
	}
	if centers[0] < 1.5 || centers[0] > 2.5 || centers[1] < 7.5 || centers[1] > 8.5 {
		t.Fatalf("centers = %v, want ≈[2 8]", centers)
	}
	for i, l := range labels {
		wantLayer := 0
		if i%2 == 1 {
			wantLayer = 1
		}
		if l != wantLayer {
			t.Fatalf("pixel %d labeled %d, want %d", i, l, wantLayer)
		}
	}
}

func TestLayersClearPixelsUnlabeled(t *testing.T) {
	z := grid.New(4, 4)
	mask := make([]bool, 16)
	mask[5] = true
	z.Data[5] = 3
	labels, centers, err := Layers(z, mask, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range labels {
		if i == 5 {
			if l < 0 {
				t.Fatal("cloudy pixel unlabeled")
			}
		} else if l != -1 {
			t.Fatalf("clear pixel %d labeled %d", i, l)
		}
	}
	if len(centers) != 1 { // k reduced to the available sample count
		t.Fatalf("centers = %v", centers)
	}
}

func TestLayersValidation(t *testing.T) {
	z := grid.New(4, 4)
	if _, _, err := Layers(z, make([]bool, 16), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := Layers(z, make([]bool, 5), 2); err == nil {
		t.Fatal("bad mask length accepted")
	}
}

func TestLayersEmptyMask(t *testing.T) {
	z := grid.New(4, 4)
	labels, centers, err := Layers(z, make([]bool, 16), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(centers) != 0 {
		t.Fatalf("centers = %v for empty mask", centers)
	}
	for _, l := range labels {
		if l != -1 {
			t.Fatal("label assigned with empty mask")
		}
	}
}

func TestMaskFlowZeroesClearPixels(t *testing.T) {
	f := grid.NewVectorField(4, 4)
	f.U.Fill(3)
	mask := make([]bool, 16)
	mask[0] = true
	out := MaskFlow(f, mask)
	if u, _ := out.At(0, 0); u != 3 {
		t.Fatal("cloudy pixel lost its flow")
	}
	if u, _ := out.At(1, 1); u != 0 {
		t.Fatal("clear pixel kept its flow")
	}
	if u, _ := f.At(1, 1); u != 3 {
		t.Fatal("MaskFlow mutated its input")
	}
}

func TestCloudMaskOnMultiLayerScene(t *testing.T) {
	// The synthetic multilayer scene's compositing makes the upper deck
	// brighter; the Otsu mask should broadly agree with the generator's
	// own opacity mask.
	ml := synth.NewMultiLayer(48, 48, 13)
	img := ml.Frame(0)
	got := CloudMask(img)
	want := ml.Mask(0)
	agree := 0
	for i := range got {
		if got[i] == want[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(got)); frac < 0.8 {
		t.Fatalf("mask agreement %.2f below 0.8", frac)
	}
}
