package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sma/internal/fault"
	"sma/internal/server"
)

// ChaosOptions configures one cluster chaos run against a live
// coordinator: a clean reference job, rounds of node-level injected
// faults asserted exactly against fault.ClusterPlan.Expect, and
// optionally a real worker kill.
type ChaosOptions struct {
	URL   string // coordinator base URL, no trailing slash
	Scene string // synthetic scene name (default hurricane)
	Size  int    // frame edge in pixels (default 48)
	Seed  int64  // base seed; round r uses Seed+r (default 7)

	Frames int // sequence length per job (default 17 → 16 pairs)
	Rounds int // injected-fault jobs to run (default 3)

	// Per-round injected schedule sizing (defaults: 1 dead node when the
	// cluster has >1 worker, 2 flaky shards).
	DeadNodes   int
	FlakyShards int

	// KillWorker, when set, runs the real-kill round: the hook SIGKILLs
	// one worker process and returns its registry index. The drill waits
	// for the heartbeat to observe the death, then asserts the next job's
	// counters exactly equal the dead-on-arrival plan for that node —
	// process death before dispatch is indistinguishable from an injected
	// dead node, which is what makes the accounting exact. With
	// KillMidJob the hook fires after submission instead and the
	// assertions are bounded (done, every pair ok, bit-identical result),
	// since which shards the death touches then depends on timing.
	KillWorker func() (node int, err error)
	KillMidJob bool

	// PollInterval paces job-status polling (default 50ms).
	PollInterval time.Duration

	// GoroutineSlack is how many extra goroutines the coordinator may
	// hold after the run before the leak check fails (default 8).
	GoroutineSlack int
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Scene == "" {
		o.Scene = "hurricane"
	}
	if o.Size <= 0 {
		o.Size = 48
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	if o.Frames <= 0 {
		o.Frames = 17
	}
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	if o.DeadNodes == 0 && o.FlakyShards == 0 {
		o.DeadNodes, o.FlakyShards = 1, 2
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.GoroutineSlack <= 0 {
		o.GoroutineSlack = 8
	}
	return o
}

// ChaosResult is a cluster chaos run's verdict. An empty Violations list
// means the cluster upheld its contract: exact Expect accounting under
// injected faults, bit-identical results under reassignment, no
// coordinator goroutine leak.
type ChaosResult struct {
	Rounds           int      `json:"rounds"`
	Frames           int      `json:"frames"`
	Workers          int      `json:"workers"`
	Shards           int      `json:"shards_per_job"`
	PairsVerified    int      `json:"pairs_verified"`
	DispatchRetries  int64    `json:"dispatch_retries"`
	Reassigned       int64    `json:"shards_reassigned"`
	NodesLost        int64    `json:"nodes_lost"`
	KilledNode       int      `json:"killed_node"` // -1 when no kill round ran
	GoroutinesBefore int      `json:"goroutines_before"`
	GoroutinesAfter  int      `json:"goroutines_after"`
	Violations       []string `json:"violations,omitempty"`
}

// RunChaos drives a live coordinator through node-level fault schedules
// and asserts the cluster contract: injected dead nodes and shard flakes
// produce exactly the counters fault.ClusterPlan.Expect predicts, every
// job still delivers every pair bit-identically to the clean reference,
// a really-killed worker is accounted like an injected dead node, and
// the coordinator's goroutine count settles back to baseline. Assumes a
// quiet coordinator. Returns an error only for harness failures;
// contract violations land in Violations.
func RunChaos(ctx context.Context, opt ChaosOptions) (ChaosResult, error) {
	opt = opt.withDefaults()
	res := ChaosResult{Rounds: opt.Rounds, Frames: opt.Frames, KilledNode: -1}
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	topo, err := fetchClusterView(ctx, opt.URL)
	if err != nil {
		return res, fmt.Errorf("chaos: cluster topology: %w", err)
	}
	workers := len(topo.Workers)
	if workers == 0 {
		return res, fmt.Errorf("chaos: coordinator reports no workers")
	}
	res.Workers = workers
	shards := len(makeShards(opt.Frames-1, topo.ShardPairs))
	res.Shards = shards

	before, err := scrapeChaosCounters(ctx, opt.URL)
	if err != nil {
		return res, fmt.Errorf("chaos: baseline metrics scrape: %w", err)
	}
	res.GoroutinesBefore = int(before["smaserve_goroutines"])

	ref := &server.SyntheticRef{Scene: opt.Scene, Size: opt.Size, Seed: opt.Seed, Frames: opt.Frames}
	cleanReq := JobRequest{}
	cleanReq.Synthetic = ref
	clean, err := runClusterChaosJob(ctx, opt, cleanReq)
	if err != nil {
		return res, fmt.Errorf("chaos: clean reference job: %w", err)
	}
	if clean.Status != server.JobDone {
		return res, fmt.Errorf("chaos: clean job finished %q: %s", clean.Status, clean.Error)
	}
	cleanBytes, err := fetchResultBytes(ctx, opt.URL, clean.ID)
	if err != nil {
		return res, fmt.Errorf("chaos: clean result stream: %w", err)
	}

	deadPerRound := opt.DeadNodes
	if deadPerRound >= workers {
		deadPerRound = workers - 1
	}
	for round := 0; round < opt.Rounds; round++ {
		seed := opt.Seed + int64(round)
		plan := fault.RandomClusterPlan(seed, shards, workers,
			fault.RandomClusterConfig{DeadNodes: deadPerRound, FlakyShards: opt.FlakyShards})
		want := plan.Expect(shards, workers)

		req := JobRequest{ClusterFault: specFromPlan(plan)}
		req.Synthetic = ref
		view, err := runClusterChaosJob(ctx, opt, req)
		if err != nil {
			return res, fmt.Errorf("chaos: round %d: %w", round, err)
		}
		if view.Status != server.JobDone {
			violate("round %d (seed %d): job finished %q, want done (%s)", round, seed, view.Status, view.Error)
			continue
		}
		checkExpect(violate, fmt.Sprintf("round %d (seed %d)", round, seed), view.Cluster, want)
		res.PairsVerified += verifyClusterResult(ctx, violate,
			fmt.Sprintf("round %d (seed %d)", round, seed), opt, view, cleanBytes)
		res.DispatchRetries += view.Cluster.DispatchRetries
		res.Reassigned += view.Cluster.Reassigned
		res.NodesLost += view.Cluster.NodesLost
	}

	if opt.KillWorker != nil {
		if err := runKillRound(ctx, opt, &res, violate, shards, workers, ref, cleanBytes); err != nil {
			return res, err
		}
	}

	after, err := scrapeChaosCounters(ctx, opt.URL)
	if err != nil {
		return res, fmt.Errorf("chaos: final metrics scrape: %w", err)
	}
	res.GoroutinesAfter = int(after["smaserve_goroutines"])
	deadline := time.Now().Add(3 * time.Second)
	for {
		if res.GoroutinesAfter <= res.GoroutinesBefore+opt.GoroutineSlack {
			break
		}
		if time.Now().After(deadline) {
			violate("coordinator goroutines grew from %d to %d (slack %d): dispatch leak",
				res.GoroutinesBefore, res.GoroutinesAfter, opt.GoroutineSlack)
			break
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return res, ctx.Err()
		}
		if after, err = scrapeChaosCounters(ctx, opt.URL); err == nil {
			res.GoroutinesAfter = int(after["smaserve_goroutines"])
		}
	}
	return res, nil
}

// runKillRound executes the real-worker-kill drill.
func runKillRound(ctx context.Context, opt ChaosOptions, res *ChaosResult,
	violate func(string, ...any), shards, workers int,
	ref *server.SyntheticRef, cleanBytes []byte) error {
	if workers < 2 {
		violate("kill round needs at least 2 workers, cluster has %d", workers)
		return nil
	}
	req := JobRequest{}
	req.Synthetic = ref

	if opt.KillMidJob {
		// Timing-dependent: submit, then kill. Bounded assertions only —
		// the job must still finish done with every pair bit-identical.
		id, err := submitClusterJob(ctx, opt, req)
		if err != nil {
			return fmt.Errorf("chaos: kill round submit: %w", err)
		}
		node, err := opt.KillWorker()
		if err != nil {
			return fmt.Errorf("chaos: kill hook: %w", err)
		}
		res.KilledNode = node
		view, err := awaitClusterJob(ctx, opt, id)
		if err != nil {
			return fmt.Errorf("chaos: kill round: %w", err)
		}
		if view.Status != server.JobDone {
			violate("mid-job kill of node %d: job finished %q, want done (%s)", node, view.Status, view.Error)
			return nil
		}
		res.PairsVerified += verifyClusterResult(ctx, violate,
			fmt.Sprintf("mid-job kill of node %d", node), opt, view, cleanBytes)
		res.DispatchRetries += view.Cluster.DispatchRetries
		res.Reassigned += view.Cluster.Reassigned
		res.NodesLost += view.Cluster.NodesLost
		return nil
	}

	// Kill first, wait for the heartbeat to mark the node dead, then run
	// a job: a dead process is dead on arrival for every dispatch, so the
	// accounting must exactly match the equivalent injected plan.
	node, err := opt.KillWorker()
	if err != nil {
		return fmt.Errorf("chaos: kill hook: %w", err)
	}
	res.KilledNode = node
	deadline := time.Now().Add(15 * time.Second)
	for {
		topo, err := fetchClusterView(ctx, opt.URL)
		if err != nil {
			return fmt.Errorf("chaos: polling topology after kill: %w", err)
		}
		if node < 0 || node >= len(topo.Workers) {
			return fmt.Errorf("chaos: kill hook returned node %d outside [0,%d)", node, len(topo.Workers))
		}
		if !topo.Workers[node].Alive {
			break
		}
		if time.Now().After(deadline) {
			violate("heartbeat never marked killed node %d dead", node)
			return nil
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	want := fault.NewClusterPlan(0, []int{node}).Expect(shards, workers)
	view, err := runClusterChaosJob(ctx, opt, req)
	if err != nil {
		return fmt.Errorf("chaos: kill round: %w", err)
	}
	if view.Status != server.JobDone {
		violate("kill of node %d: job finished %q, want done (%s)", node, view.Status, view.Error)
		return nil
	}
	checkExpect(violate, fmt.Sprintf("killed node %d", node), view.Cluster, want)
	res.PairsVerified += verifyClusterResult(ctx, violate,
		fmt.Sprintf("killed node %d", node), opt, view, cleanBytes)
	res.DispatchRetries += view.Cluster.DispatchRetries
	res.Reassigned += view.Cluster.Reassigned
	res.NodesLost += view.Cluster.NodesLost
	return nil
}

// checkExpect asserts a job's cluster accounting exactly equals the
// plan's prediction, placement included.
func checkExpect(violate func(string, ...any), label string, got ClusterInfo, want fault.ClusterExpectation) {
	if got.DispatchRetries != want.DispatchRetries {
		violate("%s: dispatch retries %d, want exactly %d", label, got.DispatchRetries, want.DispatchRetries)
	}
	if got.Reassigned != want.Reassigned {
		violate("%s: shards reassigned %d, want exactly %d", label, got.Reassigned, want.Reassigned)
	}
	if got.NodesLost != want.NodesLost {
		violate("%s: nodes lost %d, want exactly %d", label, got.NodesLost, want.NodesLost)
	}
	if len(got.Placement) != len(want.Placement) {
		violate("%s: placement %v, want %v", label, got.Placement, want.Placement)
		return
	}
	for k := range want.Placement {
		if got.Placement[k] != want.Placement[k] {
			violate("%s: shard %d completed on node %d, want %d", label, k, got.Placement[k], want.Placement[k])
		}
	}
}

// verifyClusterResult checks a faulted job delivered every pair and its
// merged SMP1 stream is byte-identical to the clean reference. Returns
// the number of pairs verified.
func verifyClusterResult(ctx context.Context, violate func(string, ...any),
	label string, opt ChaosOptions, view JobView, cleanBytes []byte) int {
	if len(view.Pairs) != opt.Frames-1 {
		violate("%s: %d pairs reported, want %d", label, len(view.Pairs), opt.Frames-1)
		return 0
	}
	for _, p := range view.Pairs {
		if p.Status != server.PairOK {
			violate("%s: pair %d is %s: %s", label, p.Pair, p.Status, p.Error)
			return 0
		}
	}
	got, err := fetchResultBytes(ctx, opt.URL, view.ID)
	if err != nil {
		violate("%s: result stream: %v", label, err)
		return 0
	}
	if !bytes.Equal(got, cleanBytes) {
		violate("%s: merged result (%d bytes) differs from the clean reference (%d bytes)",
			label, len(got), len(cleanBytes))
		return 0
	}
	return opt.Frames - 1
}

// specFromPlan converts a fault plan to its wire form.
func specFromPlan(p *fault.ClusterPlan) *FaultSpec {
	spec := &FaultSpec{Seed: p.Seed, DeadNodes: append([]int(nil), p.DeadNodes...)}
	for _, f := range p.Flaky {
		spec.Flaky = append(spec.Flaky, FlakySpec{Shard: f.Shard, Attempts: f.Attempts})
	}
	return spec
}

// submitClusterJob posts one job and returns its ID without waiting.
func submitClusterJob(ctx context.Context, opt ChaosOptions, req JobRequest) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, opt.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return "", err
	}
	var view JobView
	if err := decodeChaosBody(resp, http.StatusAccepted, &view); err != nil {
		return "", err
	}
	return view.ID, nil
}

// awaitClusterJob polls a job to a terminal status.
func awaitClusterJob(ctx context.Context, opt ChaosOptions, id string) (JobView, error) {
	var view JobView
	for {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, opt.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			return view, err
		}
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			return view, err
		}
		if err := decodeChaosBody(resp, http.StatusOK, &view); err != nil {
			return view, err
		}
		switch view.Status {
		case server.JobDone, server.JobFailed, server.JobCancelled:
			return view, nil
		}
		select {
		case <-time.After(opt.PollInterval):
		case <-ctx.Done():
			return view, ctx.Err()
		}
	}
}

// runClusterChaosJob submits one job and polls it to a terminal status.
func runClusterChaosJob(ctx context.Context, opt ChaosOptions, req JobRequest) (JobView, error) {
	id, err := submitClusterJob(ctx, opt, req)
	if err != nil {
		return JobView{}, err
	}
	return awaitClusterJob(ctx, opt, id)
}

// fetchResultBytes downloads a finished job's merged SMP1 stream.
func fetchResultBytes(ctx context.Context, url, id string) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //smavet:allow errdiscard -- error-path diagnostics only
		return nil, fmt.Errorf("result stream: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return io.ReadAll(resp.Body)
}

// fetchClusterView reads GET /v1/cluster.
func fetchClusterView(ctx context.Context, url string) (ClusterView, error) {
	var view ClusterView
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/cluster", nil)
	if err != nil {
		return view, err
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return view, err
	}
	err = decodeChaosBody(resp, http.StatusOK, &view)
	return view, err
}

func decodeChaosBody(resp *http.Response, wantCode int, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //smavet:allow errdiscard -- error-path diagnostics only
		return fmt.Errorf("HTTP %d (want %d): %s", resp.StatusCode, wantCode, bytes.TrimSpace(b))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// scrapeChaosCounters fetches /metrics and parses every single-value
// smaserve_* family (labeled families and histograms skipped).
func scrapeChaosCounters(ctx context.Context, url string) (map[string]int64, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics scrape: HTTP %d", resp.StatusCode)
	}
	out := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "smaserve_") || strings.ContainsRune(line, '{') {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if n, err := strconv.ParseFloat(strings.TrimSpace(val), 64); err == nil {
			out[name] = int64(n)
		}
	}
	return out, sc.Err()
}
