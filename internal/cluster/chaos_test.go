package cluster

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRunChaos drives the full cluster chaos drill — clean reference,
// injected dead-node/flaky-shard rounds with exact Expect assertions,
// and a real kill round (the worker's listener closed, which is what a
// SIGKILLed process looks like from the coordinator) — against an
// in-process 3-worker cluster, and requires zero violations.
func TestRunChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill runs many jobs")
	}
	workers := []*httptest.Server{testWorkerNode(t), testWorkerNode(t), testWorkerNode(t)}
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.URL
	}
	_, cts := testCoordinator(t, urls, 2)

	const victim = 2
	res, err := RunChaos(context.Background(), ChaosOptions{
		URL:    cts.URL,
		Size:   32,
		Frames: 9,
		Rounds: 2,
		KillWorker: func() (int, error) {
			workers[victim].CloseClientConnections()
			workers[victim].Close()
			return victim, nil
		},
		PollInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.KilledNode != victim {
		t.Fatalf("killed node %d, want %d", res.KilledNode, victim)
	}
	if res.Workers != 3 || res.Shards != 4 {
		t.Fatalf("topology %d workers / %d shards, want 3/4", res.Workers, res.Shards)
	}
	// 2 injected rounds + 1 kill round, 8 pairs each, all bit-verified.
	if res.PairsVerified != 3*8 {
		t.Fatalf("verified %d pairs, want %d", res.PairsVerified, 3*8)
	}
	if res.DispatchRetries == 0 || res.Reassigned == 0 || res.NodesLost == 0 {
		t.Fatalf("fault rounds produced no accounting: %+v", res)
	}
}
