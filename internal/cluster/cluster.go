// Package cluster is the distributed job plane of smaserve: a
// coordinator that accepts the existing /v1/jobs API unchanged, shards a
// multi-frame tracking job into contiguous pair ranges, dispatches the
// shards to N smaserve worker processes over HTTP (SMF1 motion fields
// streamed between nodes in the SMP1 pair-record framing), and merges
// the per-pair results in order — byte-identical to what a single
// smaserve would have produced for the same job.
//
// This is the modern analog of the paper's 2-D hierarchical data folding
// onto a 16K-PE array, applied one level up: instead of folding pixels
// onto processor elements, the coordinator folds frame pairs onto worker
// nodes. Shards are contiguous pair ranges placed by affinity (shard k
// homes on node k mod W), so consecutive pairs land on the node whose
// prepared-surface LRU already holds the shared frame — each interior
// frame is fitted once per node, and only shard-boundary frames are
// fitted twice cluster-wide.
//
// Fault tolerance reuses internal/fault's exact-accounting contract at
// the node level: a fault.ClusterPlan drives dead-node and flaky-shard
// injection at deterministic dispatch points, and the coordinator's
// placement loop mirrors ClusterPlan.Expect hop for hop, so chaos drills
// assert reassignment and retry counters exactly. A genuinely killed
// worker (SIGKILL) takes the same path via the health registry: its
// shards are reassigned cyclically to the next alive node and the job
// completes degraded-never-wrong. See docs/CLUSTER.md.
package cluster

import (
	"fmt"

	"sma/internal/fault"
	"sma/internal/server"
)

// ShardRequest is the body of POST /internal/v1/shard: one contiguous
// pair range of a coordinator job. The worker renders frames
// [PairLo, PairHi] from the synthetic reference (a shard covering pairs
// [lo, hi) needs frames lo..hi inclusive) and streams back SMP1 records
// carrying global pair indices, closed by a stream.Stats JSON trailer.
type ShardRequest struct {
	JobID     string              `json:"job_id"`
	Shard     int                 `json:"shard"`
	Synthetic server.SyntheticRef `json:"synthetic"`
	Params    server.ParamsSpec   `json:"params"`
	Robust    bool                `json:"robust,omitempty"`
	// Pyramid forwards the job's coarse-to-fine search spec; workers
	// resolve it with the same server.PyramidSpec rules the coordinator
	// validated it under, so both roles honor or reject it identically.
	Pyramid *server.PyramidSpec `json:"pyramid,omitempty"`
	// PairLo/PairHi bound the shard's global pair range [PairLo, PairHi).
	PairLo int `json:"pair_lo"`
	PairHi int `json:"pair_hi"`
}

// Validate rejects malformed shard ranges before any frame is rendered.
func (r ShardRequest) Validate() error {
	if r.PairLo < 0 || r.PairHi <= r.PairLo {
		return fmt.Errorf("cluster: empty shard pair range [%d, %d)", r.PairLo, r.PairHi)
	}
	return nil
}

// Frames returns how many frames the shard consumes.
func (r ShardRequest) Frames() int { return r.PairHi - r.PairLo + 1 }

// FaultSpec is the wire form of a node-level fault plan, the knob
// cluster chaos drills turn. It maps 1:1 onto fault.ClusterPlan so the
// driver computes expectations from the identical schedule the
// coordinator injects.
type FaultSpec struct {
	Seed      int64       `json:"seed"`
	DeadNodes []int       `json:"dead_nodes,omitempty"`
	Flaky     []FlakySpec `json:"flaky,omitempty"`
}

// FlakySpec makes one shard's dispatch fail transiently.
type FlakySpec struct {
	Shard    int `json:"shard"`
	Attempts int `json:"attempts"`
}

// Plan materializes the spec.
func (s *FaultSpec) Plan() *fault.ClusterPlan {
	if s == nil {
		return nil
	}
	flaky := make([]fault.ShardFlake, 0, len(s.Flaky))
	for _, f := range s.Flaky {
		a := f.Attempts
		if a <= 0 {
			a = 1
		}
		flaky = append(flaky, fault.ShardFlake{Shard: f.Shard, Attempts: a})
	}
	return fault.NewClusterPlan(s.Seed, append([]int(nil), s.DeadNodes...), flaky...)
}

// JobRequest is the coordinator's job creation body: the single-node
// JobRequest plus an optional node-level fault plan. Frame-level fault
// specs are rejected on cluster jobs — a frame fault at a shard boundary
// would be observed by two shards and break the exact single-plan
// accounting, so chaos at the cluster tier is node-level only.
type JobRequest struct {
	server.JobRequest
	ClusterFault *FaultSpec `json:"cluster_fault,omitempty"`
}

// shardRange is one contiguous pair range [Lo, Hi).
type shardRange struct {
	Lo, Hi int
}

// makeShards cuts P pairs into ceil(P/size) contiguous ranges. The last
// shard absorbs the remainder, so every shard but the last has exactly
// `size` pairs — the placement arithmetic chaos expectations rely on.
func makeShards(pairs, size int) []shardRange {
	if size <= 0 {
		size = 8
	}
	var out []shardRange
	for lo := 0; lo < pairs; lo += size {
		hi := lo + size
		if hi > pairs {
			hi = pairs
		}
		out = append(out, shardRange{Lo: lo, Hi: hi})
	}
	return out
}
