package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sma/internal/core"
	"sma/internal/fault"
	"sma/internal/server"
)

// testWorkerNode spins a minimal worker process stand-in: the shard
// endpoint plus /readyz, the two routes the coordinator talks to.
func testWorkerNode(t *testing.T) *httptest.Server {
	t.Helper()
	wk := NewWorker(WorkerConfig{Concurrency: 4, RowWorkers: 1, Logf: func(string, ...any) {}})
	mux := http.NewServeMux()
	mux.Handle("POST "+ShardPath, wk)
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ready")
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// testCoordinator builds and starts a coordinator over the given worker
// URLs, returning its HTTP server.
func testCoordinator(t *testing.T, urls []string, shardPairs int) (*Coordinator, *httptest.Server) {
	t.Helper()
	c, err := New(Config{
		Workers:        urls,
		ShardPairs:     shardPairs,
		HealthInterval: 100 * time.Millisecond,
		RetryDelay:     5 * time.Millisecond,
		Logf:           func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.Start(ctx)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		if err := c.Shutdown(sctx); err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
		cancel()
	})
	return c, ts
}

func createClusterJob(t *testing.T, url string, req JobRequest) JobView {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("job create status %d: %s", resp.StatusCode, body)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func waitClusterJob(t *testing.T, url, id string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if view.Status == server.JobDone || view.Status == server.JobFailed || view.Status == server.JobCancelled {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, view.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func fetchResult(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("result status %d: %s", resp.StatusCode, body)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestClusterBitIdentity is the tentpole acceptance test: the merged
// SMP1 stream of a 3-worker cluster job must be byte-identical to the
// single-node smaserve result stream for the same job, and each decoded
// field must be byte-identical to the offline sequential tracker.
func TestClusterBitIdentity(t *testing.T) {
	urls := []string{testWorkerNode(t).URL, testWorkerNode(t).URL, testWorkerNode(t).URL}
	_, cts := testCoordinator(t, urls, 2)

	const frames = 9
	ref := server.SyntheticRef{Scene: "hurricane", Size: 32, Seed: 17, Frames: frames}
	req := JobRequest{}
	req.Synthetic = &ref

	view := createClusterJob(t, cts.URL, req)
	done := waitClusterJob(t, cts.URL, view.ID, 60*time.Second)
	if done.Status != server.JobDone {
		t.Fatalf("cluster job finished %s: %s", done.Status, done.Error)
	}
	if done.Stats.PairsTracked != frames-1 {
		t.Fatalf("cluster tracked %d pairs, want %d", done.Stats.PairsTracked, frames-1)
	}
	if done.Cluster.Shards != 4 || done.Cluster.Reassigned != 0 || done.Cluster.DispatchRetries != 0 {
		t.Fatalf("clean run accounting %+v, want 4 shards and zero faults", done.Cluster)
	}
	clusterBytes := fetchResult(t, cts.URL, view.ID)

	// Single-node reference: the same job on a plain smaserve with retain.
	srv := server.New(server.Config{Workers: 1})
	sts := httptest.NewServer(srv.Handler())
	defer func() {
		sts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
	}()
	sbody, _ := json.Marshal(server.JobRequest{Synthetic: &ref, Retain: true})
	resp, err := http.Post(sts.URL+"/v1/jobs", "application/json", bytes.NewReader(sbody))
	if err != nil {
		t.Fatal(err)
	}
	var sview server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&sview); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(60 * time.Second)
	for {
		r2, err := http.Get(sts.URL + "/v1/jobs/" + sview.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v server.JobView
		if err := json.NewDecoder(r2.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if v.Status == server.JobDone {
			break
		}
		if v.Status == server.JobFailed || time.Now().After(deadline) {
			t.Fatalf("single-node job %s: %s", v.Status, v.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
	singleBytes := fetchResult(t, sts.URL, sview.ID)

	if !bytes.Equal(clusterBytes, singleBytes) {
		t.Fatalf("cluster result (%d bytes) differs from single-node result (%d bytes)",
			len(clusterBytes), len(singleBytes))
	}

	// And both match the offline tracker pair by pair.
	scene, err := ref.SceneOf()
	if err != nil {
		t.Fatal(err)
	}
	pr := server.NewPairStreamReader(bytes.NewReader(clusterBytes))
	n := 0
	for {
		rec, err := pr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("decoding merged record %d: %v", n, err)
		}
		want, err := core.TrackSequential(core.Monocular(
			scene.Frame(float64(rec.Pair)), scene.Frame(float64(rec.Pair+1))),
			core.ScaledParams(), core.Options{})
		if err != nil {
			t.Fatalf("offline pair %d: %v", rec.Pair, err)
		}
		var wantBuf bytes.Buffer
		if err := server.NewMotionField("", want).WriteBinary(&wantBuf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rec.Field, wantBuf.Bytes()) {
			t.Fatalf("merged pair %d differs from the offline tracker", rec.Pair)
		}
		n++
	}
	if n != frames-1 {
		t.Fatalf("merged stream carried %d pairs, want %d", n, frames-1)
	}
}

// TestClusterDispatchMatchesExpect locks the coordinator's placement
// loop to fault.ClusterPlan.Expect: an injected dead node plus shard
// flakes must produce exactly the predicted retries, reassignments,
// node losses, and final placement — and the job must still deliver
// every pair bit-identically.
func TestClusterDispatchMatchesExpect(t *testing.T) {
	urls := []string{testWorkerNode(t).URL, testWorkerNode(t).URL, testWorkerNode(t).URL}
	_, cts := testCoordinator(t, urls, 2)

	const frames = 13 // 12 pairs → 6 shards over 3 nodes
	spec := &FaultSpec{
		Seed:      5,
		DeadNodes: []int{1},
		Flaky:     []FlakySpec{{Shard: 0, Attempts: 2}, {Shard: 5, Attempts: 1}},
	}
	plan := spec.Plan()
	shards := (frames - 1 + 1) / 2
	want := plan.Expect(shards, len(urls))

	req := JobRequest{ClusterFault: spec}
	req.Synthetic = &server.SyntheticRef{Scene: "shear", Size: 32, Seed: 3, Frames: frames}
	view := createClusterJob(t, cts.URL, req)
	done := waitClusterJob(t, cts.URL, view.ID, 60*time.Second)
	if done.Status != server.JobDone {
		t.Fatalf("job finished %s: %s", done.Status, done.Error)
	}
	got := done.Cluster
	if got.DispatchRetries != want.DispatchRetries {
		t.Fatalf("DispatchRetries = %d, want %d", got.DispatchRetries, want.DispatchRetries)
	}
	if got.Reassigned != want.Reassigned {
		t.Fatalf("Reassigned = %d, want %d", got.Reassigned, want.Reassigned)
	}
	if got.NodesLost != want.NodesLost {
		t.Fatalf("NodesLost = %d, want %d", got.NodesLost, want.NodesLost)
	}
	if len(got.Placement) != len(want.Placement) {
		t.Fatalf("placement %v, want %v", got.Placement, want.Placement)
	}
	for k := range want.Placement {
		if got.Placement[k] != want.Placement[k] {
			t.Fatalf("shard %d placed on node %d, want %d (placement %v)", k, got.Placement[k], want.Placement[k], got.Placement)
		}
	}
	// Degraded-never-wrong: every pair still delivered and ok.
	if done.Stats.PairsTracked != frames-1 {
		t.Fatalf("tracked %d pairs under faults, want %d", done.Stats.PairsTracked, frames-1)
	}
	for _, p := range done.Pairs {
		if p.Status != server.PairOK {
			t.Fatalf("pair %d is %s after reassignment: %s", p.Pair, p.Status, p.Error)
		}
	}
}

// TestClusterRealDeadWorker kills a worker process (its listener, which
// is what a SIGKILLed process looks like to the coordinator) before the
// job: the synchronous first heartbeat sees it dead, and the accounting
// matches the equivalent injected plan exactly.
func TestClusterRealDeadWorker(t *testing.T) {
	w0, w1 := testWorkerNode(t), testWorkerNode(t)
	dead := testWorkerNode(t)
	deadURL := dead.URL
	dead.Close() // node 1 of 3 is gone before the coordinator starts

	_, cts := testCoordinator(t, []string{w0.URL, deadURL, w1.URL}, 2)

	const frames = 9 // 8 pairs → 4 shards
	plan := fault.NewClusterPlan(0, []int{1})
	want := plan.Expect(4, 3)

	req := JobRequest{}
	req.Synthetic = &server.SyntheticRef{Scene: "hurricane", Size: 32, Seed: 7, Frames: frames}
	view := createClusterJob(t, cts.URL, req)
	done := waitClusterJob(t, cts.URL, view.ID, 60*time.Second)
	if done.Status != server.JobDone {
		t.Fatalf("job finished %s: %s", done.Status, done.Error)
	}
	got := done.Cluster
	if got.DispatchRetries != want.DispatchRetries || got.Reassigned != want.Reassigned || got.NodesLost != want.NodesLost {
		t.Fatalf("dead-worker accounting %+v, want %+v", got, want)
	}
	if done.Stats.PairsTracked != frames-1 {
		t.Fatalf("tracked %d pairs, want %d", done.Stats.PairsTracked, frames-1)
	}
}

// TestRegistryRevival: a worker that comes back (a restart) passes its
// next heartbeat and rejoins dispatch.
func TestRegistryRevival(t *testing.T) {
	ready := true
	var mux http.ServeMux
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	ts := httptest.NewServer(&mux)
	defer ts.Close()

	reg := NewRegistry([]string{ts.URL}, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg.Start(ctx, 30*time.Millisecond)
	defer reg.Stop()

	if !reg.Alive(0) {
		t.Fatal("healthy worker marked dead by first probe")
	}
	ready = false
	deadline := time.Now().Add(5 * time.Second)
	for reg.Alive(0) {
		if time.Now().After(deadline) {
			t.Fatal("failing worker never marked dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ready = true
	deadline = time.Now().Add(5 * time.Second)
	for !reg.Alive(0) {
		if time.Now().After(deadline) {
			t.Fatal("recovered worker never revived")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if reg.Snapshot()[0].Failures == 0 {
		t.Fatal("health failures not counted")
	}
}

// TestClusterRejectsFrameFaults: frame-level fault specs are a 400 on
// cluster jobs (boundary frames would double-count across shards).
func TestClusterRejectsFrameFaults(t *testing.T) {
	_, cts := testCoordinator(t, []string{testWorkerNode(t).URL}, 2)
	body := `{"synthetic":{"size":32,"frames":4},"fault":{"seed":1,"fail_frames":1}}`
	resp, err := http.Post(cts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("frame-fault cluster job status %d, want 400", resp.StatusCode)
	}
	// A plan that kills every node is rejected too.
	body = `{"synthetic":{"size":32,"frames":4},"cluster_fault":{"dead_nodes":[0]}}`
	resp, err = http.Post(cts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("all-dead cluster plan status %d, want 400", resp.StatusCode)
	}
}

// TestClusterViewAndReadyz: the topology endpoint reports liveness, and
// readiness requires at least one alive worker.
func TestClusterViewAndReadyz(t *testing.T) {
	w0 := testWorkerNode(t)
	_, cts := testCoordinator(t, []string{w0.URL}, 2)

	resp, err := http.Get(cts.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var view ClusterView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(view.Workers) != 1 || view.Alive != 1 || view.ShardPairs != 2 {
		t.Fatalf("cluster view %+v", view)
	}

	r2, err := http.Get(cts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d with an alive worker", r2.StatusCode)
	}
}

// TestShardRangeMath locks the shard cutter.
func TestShardRangeMath(t *testing.T) {
	got := makeShards(8, 3)
	want := []shardRange{{0, 3}, {3, 6}, {6, 8}}
	if len(got) != len(want) {
		t.Fatalf("shards %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shards %v, want %v", got, want)
		}
	}
	if n := len(makeShards(1, 8)); n != 1 {
		t.Fatalf("1 pair cut into %d shards", n)
	}
}
