package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sma/internal/core"
	"sma/internal/server"
)

// Config sizes the coordinator. Zero values take the documented defaults.
type Config struct {
	// Workers are the worker base URLs (required, ≥ 1).
	Workers []string
	// ShardPairs is the contiguous pair range per shard (0 = 8). Larger
	// shards amortize more prepared-surface reuse per node; smaller shards
	// spread a short job across more nodes.
	ShardPairs int
	// MaxJobs bounds concurrently running cluster jobs (0 = 4); beyond it
	// job creation answers 503 + Retry-After.
	MaxJobs int
	// MaxFrames caps a job's sequence length (0 = 512).
	MaxFrames int
	// MaxPixels caps synthetic frame area (0 = 1<<22).
	MaxPixels int
	// JobTimeout bounds one job's wall clock (0 = 10 min).
	JobTimeout time.Duration
	// ResultTTL is how long finished jobs stay retrievable (0 = 15 min).
	ResultTTL time.Duration
	// MaxStoredResults / MaxStoredBytes size the result store's caps
	// (0 = the store defaults).
	MaxStoredResults int
	MaxStoredBytes   int64
	// DataDir, when set, makes the coordinator durable: job state is
	// write-ahead journaled and merged shard fields persist on disk, so a
	// crashed or killed coordinator resumes interrupted jobs on restart —
	// re-dispatching only their unfinished shards. Call Recover after New.
	DataDir string
	// HealthInterval paces worker heartbeats (0 = 1s).
	HealthInterval time.Duration
	// RetryDelay spaces same-node transient retries (0 = 50ms).
	RetryDelay time.Duration
	// DefaultParams seeds request parameter resolution (zero value =
	// core.ScaledParams).
	DefaultParams core.Params
	// Client is the HTTP client for shard dispatch and heartbeats
	// (nil = a client with a 2s dial posture and no overall timeout —
	// shard responses stream for as long as tracking takes).
	Client *http.Client
	// Logf receives coordinator events (nil = log.Printf).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ShardPairs <= 0 {
		c.ShardPairs = 8
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4
	}
	if c.MaxFrames <= 0 {
		c.MaxFrames = 512
	}
	if c.MaxPixels <= 0 {
		c.MaxPixels = 1 << 22
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = 15 * time.Minute
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 50 * time.Millisecond
	}
	if (c.DefaultParams == core.Params{}) {
		c.DefaultParams = core.ScaledParams()
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Coordinator is the cluster's HTTP face: the /v1/jobs API of a single
// smaserve, executed by sharding across the configured workers.
type Coordinator struct {
	cfg     Config
	reg     *Registry
	store   server.ResultStore
	jl      *server.JobLog
	fstore  *server.FileStore
	metrics *Metrics
	mux     *http.ServeMux
	client  *http.Client

	retryDelay time.Duration

	jobSlots chan struct{}
	wg       sync.WaitGroup
	ready    atomic.Bool
	draining atomic.Bool
	rr       atomic.Uint64 // round-robin cursor for the track proxy
}

// New builds the coordinator. Call Start to begin heartbeats and
// Shutdown to drain.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: a coordinator needs at least one worker URL")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	c := &Coordinator{
		cfg:        cfg,
		reg:        NewRegistry(cfg.Workers, nil),
		metrics:    NewMetrics(),
		client:     client,
		retryDelay: cfg.RetryDelay,
		jobSlots:   make(chan struct{}, cfg.MaxJobs),
	}
	mcfg := server.MemStoreConfig{
		TTL:        cfg.ResultTTL,
		MaxEntries: cfg.MaxStoredResults,
		MaxBytes:   cfg.MaxStoredBytes,
	}
	if cfg.DataDir != "" {
		jl, err := server.OpenJobLog(cfg.DataDir, cfg.Logf)
		if err != nil {
			return nil, err
		}
		// A job evicted or deleted from the store must not resurrect on the
		// next restart.
		mcfg.OnRemove = jl.Delete
		fstore, err := server.NewFileStore(server.FileStoreConfig{
			MemStoreConfig: mcfg,
			Dir:            cfg.DataDir,
			Logf:           cfg.Logf,
		})
		if err != nil {
			jl.Close() //smavet:allow errdiscard -- error-path teardown
			return nil, err
		}
		c.jl, c.fstore, c.store = jl, fstore, fstore
	} else {
		c.store = server.NewMemStore(mcfg)
	}
	c.metrics.workers = c.reg.Len
	c.metrics.aliveCount = c.reg.AliveCount

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleJobCreate)
	mux.HandleFunc("GET /v1/jobs", c.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleJobResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleJobCancel)
	mux.HandleFunc("POST /v1/track", c.handleTrackProxy)
	mux.HandleFunc("GET /v1/cluster", c.handleCluster)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux = mux
	return c, nil
}

// Start launches the worker heartbeat loop; the first probe round runs
// before Start returns, so readiness reflects real worker liveness.
func (c *Coordinator) Start(ctx context.Context) {
	c.reg.Start(ctx, c.cfg.HealthInterval)
	c.ready.Store(true)
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Registry exposes the worker registry (the chaos harness reads it).
func (c *Coordinator) Registry() *Registry { return c.reg }

// Shutdown drains: readiness flips immediately, running jobs finish (or
// are cancelled when ctx expires), heartbeats stop, and the store closes.
// With a durable plane attached, jobs the drain cuts short are journaled
// pending — Recover resumes them on the next start instead of losing the
// work the way a plain SIGTERM used to.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.draining.Store(true)
	c.ready.Store(false)
	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		// Cancel what is still running; the dispatch loops abort on their
		// cancelled contexts, so the jobs settle (and journal their pending
		// markers) promptly.
		c.store.Range(func(id string, v any) bool {
			if job, ok := v.(*clusterJob); ok {
				job.Cancel()
			}
			return true
		})
		<-done
	}
	c.reg.Stop()
	c.store.Close()
	if c.jl != nil {
		// Closed after the drain so abandoned jobs' pending markers land.
		if cerr := c.jl.Close(); cerr != nil {
			c.cfg.Logf("smaserve: closing cluster journal: %v", cerr)
		}
	}
	return err
}

func (c *Coordinator) httpError(w http.ResponseWriter, code int, msg string) {
	httpError(w, code, msg)
}

func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("cluster: id generation: %w", err)
	}
	return hex.EncodeToString(b[:]), nil
}

func (c *Coordinator) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		c.httpError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON body: %v", err))
		return
	}
	if req.Fault != nil {
		// A frame fault at a shard boundary would fire in two shards and
		// break single-plan accounting; cluster chaos is node-level.
		c.httpError(w, http.StatusBadRequest, "frame-level fault specs are not supported on cluster jobs; use cluster_fault")
		return
	}
	if req.Synthetic == nil {
		c.httpError(w, http.StatusBadRequest, "jobs need a synthetic dataset reference")
		return
	}
	frames := req.Synthetic.Frames
	if frames < 2 {
		c.httpError(w, http.StatusBadRequest, fmt.Sprintf("need at least 2 frames, got %d", frames))
		return
	}
	if frames > c.cfg.MaxFrames {
		c.httpError(w, http.StatusBadRequest, fmt.Sprintf("%d frames exceeds the serving cap %d", frames, c.cfg.MaxFrames))
		return
	}
	if _, err := req.Synthetic.SceneOf(); err != nil {
		c.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if px := req.Synthetic.Size * req.Synthetic.Size; px > c.cfg.MaxPixels {
		c.httpError(w, http.StatusBadRequest, fmt.Sprintf("frame area %d px exceeds the serving cap %d", px, c.cfg.MaxPixels))
		return
	}
	params, err := c.resolveParams(req.Params)
	if err != nil {
		c.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Validate the pyramid spec at admission with the same rules the
	// workers apply at execution, so a bad spec is rejected up front
	// instead of failing every shard dispatch as a permanent 4xx.
	if _, err := req.Pyramid.Resolve(params); err != nil {
		c.httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	plan := req.ClusterFault.Plan()
	if plan != nil {
		if err := plan.Validate(c.reg.Len()); err != nil {
			c.httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	if c.draining.Load() {
		c.rejectSaturated(w)
		return
	}
	select {
	case c.jobSlots <- struct{}{}:
	default:
		c.rejectSaturated(w)
		return
	}
	release := func() { <-c.jobSlots }

	id, err := newJobID()
	if err != nil {
		release()
		c.httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Like single-node jobs, a cluster job outlives the submitting
	// request; DELETE /v1/jobs/{id} is the cancellation surface.
	jobCtx, jobCancel := context.WithCancel(context.WithoutCancel(r.Context()))
	job := newClusterJob(id, frames, jobCancel)
	if c.jl != nil {
		// The spec must be durable before the job is acknowledged: a crash
		// after the 202 must find the job in the journal. The injected
		// cluster_fault plan is deliberately not journaled — a resumed job
		// re-dispatches under real liveness only (docs/ROBUSTNESS.md).
		if err := c.jl.Spec(id, &req.JobRequest, frames, job.created); err != nil {
			jobCancel()
			release()
			c.httpError(w, http.StatusInternalServerError, fmt.Sprintf("journaling job spec: %v", err))
			return
		}
	}
	c.store.Put(id, job)
	c.metrics.JobTransition("created")
	c.wg.Add(1)
	go c.runJob(jobCtx, job, req, plan, nil, release)

	w.Header().Set("Location", "/v1/jobs/"+id)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	if err := json.NewEncoder(w).Encode(job.View()); err != nil {
		c.cfg.Logf("smaserve: writing cluster job response: %v", err)
	}
}

func (c *Coordinator) rejectSaturated(w http.ResponseWriter) {
	c.metrics.Rejected()
	w.Header().Set("Retry-After", "1")
	c.httpError(w, http.StatusServiceUnavailable, "coordinator job slots full; retry later")
}

func (c *Coordinator) getJob(w http.ResponseWriter, r *http.Request) *clusterJob {
	v, ok := c.store.Get(r.PathValue("id"))
	job, isJob := v.(*clusterJob)
	if !ok || !isJob {
		c.httpError(w, http.StatusNotFound, "unknown or expired job id")
		return nil
	}
	return job
}

// handleJobList mirrors the single-node GET /v1/jobs rows so operators
// point one dashboard at either role — and see what recovery brought
// back after a coordinator restart.
func (c *Coordinator) handleJobList(w http.ResponseWriter, r *http.Request) {
	view := server.JobListView{Jobs: []server.JobListEntry{}}
	now := time.Now()
	c.store.Range(func(id string, v any) bool {
		job, isJob := v.(*clusterJob)
		if !isJob {
			return true
		}
		jv := job.View()
		view.Jobs = append(view.Jobs, server.JobListEntry{
			ID:         jv.ID,
			Status:     jv.Status,
			Frames:     jv.Frames,
			PairsDone:  len(jv.Pairs),
			PairsTotal: jv.Frames - 1,
			AgeSec:     now.Sub(jv.Created).Seconds(),
			Recovered:  jv.Recovered,
		})
		return true
	})
	sort.Slice(view.Jobs, func(i, k int) bool {
		if view.Jobs[i].AgeSec != view.Jobs[k].AgeSec {
			return view.Jobs[i].AgeSec < view.Jobs[k].AgeSec
		}
		return view.Jobs[i].ID < view.Jobs[k].ID
	})
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(view); err != nil {
		c.cfg.Logf("smaserve: writing cluster job list: %v", err)
	}
}

func (c *Coordinator) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job := c.getJob(w, r)
	if job == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(job.View()); err != nil {
		c.cfg.Logf("smaserve: writing cluster job view: %v", err)
	}
}

// handleJobResult streams the merged SMP1 output — the byte-identity
// surface compared against a single-node smaserve's result stream.
func (c *Coordinator) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job := c.getJob(w, r)
	if job == nil {
		return
	}
	status, fields, dropped := job.resultSnapshot()
	if status != server.JobDone && status != server.JobFailed {
		c.httpError(w, http.StatusConflict, fmt.Sprintf("job is %s; result stream available once finished", status))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := server.WritePairStream(w, fields, dropped); err != nil {
		c.cfg.Logf("smaserve: streaming cluster job result %s: %v", job.ID, err)
	}
}

func (c *Coordinator) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job := c.getJob(w, r)
	if job == nil {
		return
	}
	if !job.Cancel() {
		c.httpError(w, http.StatusConflict, fmt.Sprintf("job is %s; nothing to cancel", job.View().Status))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(job.View()); err != nil {
		c.cfg.Logf("smaserve: writing cluster job view: %v", err)
	}
}

// handleTrackProxy forwards a synchronous track to the next alive worker
// round-robin: the coordinator serves the whole single-node API surface,
// so clients point at one URL for both request shapes.
func (c *Coordinator) handleTrackProxy(w http.ResponseWriter, r *http.Request) {
	n := c.reg.Len()
	start := int(c.rr.Add(1))
	for i := 0; i < n; i++ {
		node := (start + i) % n
		if !c.reg.Alive(node) {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, c.reg.URL(node)+"/v1/track", r.Body)
		if err != nil {
			c.httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
		resp, err := c.client.Do(req)
		if err != nil {
			// The body may be consumed; a retry elsewhere would replay a
			// half-read request, so mark the node and report upstream.
			c.reg.MarkDead(node)
			c.httpError(w, http.StatusBadGateway, fmt.Sprintf("worker %d unreachable: %v", node, err))
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		if _, err := io.Copy(w, resp.Body); err != nil {
			c.cfg.Logf("smaserve: track proxy copy: %v", err)
		}
		return
	}
	c.httpError(w, http.StatusServiceUnavailable, "no alive worker to serve the track")
}

// ClusterView is GET /v1/cluster: topology and liveness.
type ClusterView struct {
	Workers    []NodeState `json:"workers"`
	Alive      int         `json:"alive"`
	ShardPairs int         `json:"shard_pairs"`
}

func (c *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	view := ClusterView{
		Workers:    c.reg.Snapshot(),
		Alive:      c.reg.AliveCount(),
		ShardPairs: c.cfg.ShardPairs,
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(view); err != nil {
		c.cfg.Logf("smaserve: writing cluster view: %v", err)
	}
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz: ready means accepting jobs AND at least one worker alive
// — a coordinator with no live workers can only fail what it admits.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !c.ready.Load() || c.draining.Load() {
		c.httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if c.reg.AliveCount() == 0 {
		c.httpError(w, http.StatusServiceUnavailable, "no alive workers")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if _, err := c.metrics.WriteTo(w); err != nil {
		c.cfg.Logf("smaserve: cluster metrics scrape: %v", err)
	}
}
