package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"sma/internal/core"
	"sma/internal/fault"
	"sma/internal/server"
	"sma/internal/stream"
)

// sameNodeRetries bounds transient retries against one node before the
// failure is promoted to a node failure and the walk moves on.
const sameNodeRetries = 2

// runJob executes one sharded job: cut the pair range, dispatch every
// shard (at most one in-flight dispatch per configured node), and settle
// the terminal status from what survived. skip names shards already
// satisfied from recovery checkpoints (nil on fresh jobs). jobDone
// releases the admission slot.
func (c *Coordinator) runJob(ctx context.Context, job *clusterJob, req JobRequest, plan *fault.ClusterPlan, skip map[int]bool, jobDone func()) {
	defer c.wg.Done()
	defer jobDone()
	shards := makeShards(job.frames-1, c.cfg.ShardPairs)
	job.start(len(shards))
	c.metrics.JobTransition(string(server.JobRunning))

	runCtx, cancel := context.WithTimeout(ctx, c.cfg.JobTimeout)
	defer cancel()

	sem := make(chan struct{}, c.reg.Len())
	var wg sync.WaitGroup
	for k := range shards {
		if skip[k] {
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(k int) {
			defer wg.Done()
			defer func() { <-sem }()
			c.dispatchShard(runCtx, job, req, plan, k, shards[k])
		}(k)
	}
	wg.Wait()

	status := job.finish(runCtx)
	view := job.View()
	if c.jl != nil {
		if status == server.JobCancelled && c.draining.Load() {
			// The drain cut the job short: checkpoint it resumable instead of
			// losing the queued work the way pre-durability SIGTERM did.
			c.jl.Pending(job.ID)
			c.metrics.JobTransition("pending")
		} else {
			c.jl.End(job.ID, status, view.Error, view.Stats)
		}
	}
	c.metrics.JobTransition(string(status))
	c.metrics.AddJob(view.Cluster, view.Stats.PairsTracked)
	c.cfg.Logf("smaserve: cluster job %s %s: %d shards, %d retries, %d reassigned, %d nodes lost, %d restored",
		job.ID, status, view.Cluster.Shards, view.Cluster.DispatchRetries,
		view.Cluster.Reassigned, view.Cluster.NodesLost, view.Cluster.ShardsRestored)
}

// dispatchShard places and executes one shard, mirroring
// fault.ClusterPlan.Expect hop for hop: affinity home k mod W, a counted
// retry per dead node the walk crosses, counted same-node retries for
// transient failures, cyclic reassignment until an alive node completes
// the shard or the walk exhausts the ring.
func (c *Coordinator) dispatchShard(ctx context.Context, job *clusterJob, req JobRequest, plan *fault.ClusterPlan, k int, sh shardRange) {
	w := c.reg.Len()
	home := k % w
	node := home
	hops := 0
	flakes := plan.FlakeAttempts(k)
	transients := 0
	for {
		if err := ctx.Err(); err != nil {
			job.failShard(sh, fmt.Sprintf("dispatch aborted: %v", err))
			return
		}
		if hops >= w {
			job.failShard(sh, "no alive worker could complete the shard")
			return
		}
		if plan.NodeDead(node) || !c.reg.Alive(node) {
			job.dispatchRetry()
			job.lost(node)
			node = (node + 1) % w
			hops++
			transients = 0
			continue
		}
		if flakes > 0 {
			// Injected transient failure: counted like a real connection cut,
			// retried on the same node.
			flakes--
			job.dispatchRetry()
			continue
		}
		recs, st, err := c.callShard(ctx, c.reg.URL(node), job.ID, k, sh, req)
		if err == nil {
			c.reg.Dispatched(node)
			job.place(k, node, home)
			job.merge(recs, st)
			c.checkpointShard(job, k, node, sh, recs, st)
			fault.Crash("cluster.shard")
			return
		}
		var pe *permanentShardError
		if errors.As(err, &pe) {
			job.failShard(sh, pe.Error())
			return
		}
		if stream.Transient(err) && transients < sameNodeRetries {
			transients++
			job.dispatchRetry()
			c.cfg.Logf("smaserve: shard %s/%d transient on node %d (attempt %d): %v", job.ID, k, node, transients, err)
			time.Sleep(c.retryDelay)
			continue
		}
		// Node failure: the process is gone or persistently unable to answer.
		// Mark it dead so later shards (and the next heartbeat revival) see
		// it, and walk on.
		c.cfg.Logf("smaserve: shard %s/%d lost node %d: %v", job.ID, k, node, err)
		c.reg.MarkDead(node)
		job.dispatchRetry()
		job.lost(node)
		node = (node + 1) % w
		hops++
		transients = 0
	}
}

// checkpointShard makes one merged shard durable: field bytes first, the
// pair events next, and the shard-done record last — so a replayed shard
// event certifies that everything it covers is already on disk. Any
// persistence failure abandons the checkpoint (logged); the shard simply
// re-runs on recovery, degrading durability but never correctness.
func (c *Coordinator) checkpointShard(job *clusterJob, k, node int, sh shardRange, recs []server.PairRecord, st stream.Stats) {
	if c.jl == nil {
		return
	}
	for _, rec := range recs {
		if rec.Status != server.PairOK {
			continue
		}
		if err := c.fstore.PutField(job.ID, rec.Pair, rec.Field); err != nil {
			c.cfg.Logf("smaserve: persisting field %s/%d: %v (shard %d will re-run on recovery)", job.ID, rec.Pair, err, k)
			return
		}
	}
	for _, rec := range recs {
		sum := server.PairSummary{Pair: rec.Pair, Status: rec.Status, Error: rec.Cause}
		if rec.Status == server.PairOK {
			sum.MeanMag = rec.MeanMag()
		}
		c.jl.Pair(job.ID, sum)
	}
	c.jl.ShardDone(job.ID, k, server.ShardCheckpoint{Node: c.reg.URL(node), Lo: sh.Lo, Hi: sh.Hi, Stats: st})
}

// permanentShardError marks a shard the cluster must not retry: the
// worker understood the request and rejected it (4xx), so every node
// would reject it the same way.
type permanentShardError struct{ msg string }

func (e *permanentShardError) Error() string { return e.msg }

// callShard posts one shard to a worker and decodes the full SMP1
// response. Errors are classified for the placement loop: transient
// (truncated stream, worker saturation, timeouts) via stream.Transient,
// permanent rejections via permanentShardError, anything else a node
// failure.
func (c *Coordinator) callShard(ctx context.Context, base, jobID string, k int, sh shardRange, req JobRequest) ([]server.PairRecord, stream.Stats, error) {
	var st stream.Stats
	sreq := ShardRequest{
		JobID:     jobID,
		Shard:     k,
		Synthetic: *req.Synthetic,
		Params:    req.Params,
		Robust:    req.Robust,
		Pyramid:   req.Pyramid,
		PairLo:    sh.Lo,
		PairHi:    sh.Hi,
	}
	body, err := json.Marshal(sreq)
	if err != nil {
		return nil, st, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+ShardPath, bytes.NewReader(body))
	if err != nil {
		return nil, st, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(hreq)
	if err != nil {
		return nil, st, fmt.Errorf("cluster: shard dispatch: %w", err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusServiceUnavailable:
		io.Copy(io.Discard, resp.Body)
		return nil, st, fmt.Errorf("cluster: worker saturated: %w", stream.ErrTransient)
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, st, &permanentShardError{msg: fmt.Sprintf("worker rejected shard (%d): %s", resp.StatusCode, bytes.TrimSpace(msg))}
	default:
		io.Copy(io.Discard, resp.Body)
		return nil, st, fmt.Errorf("cluster: worker answered %d", resp.StatusCode)
	}

	pr := server.NewPairStreamReader(resp.Body)
	var recs []server.PairRecord
	for {
		rec, err := pr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			// Mid-stream cut: ingest.ErrTruncated, classified transient.
			return nil, st, err
		}
		if rec.Pair < sh.Lo || rec.Pair >= sh.Hi {
			return nil, st, &permanentShardError{msg: fmt.Sprintf("worker returned pair %d outside shard [%d,%d)", rec.Pair, sh.Lo, sh.Hi)}
		}
		recs = append(recs, rec)
	}
	if trailer := pr.Trailer(); len(trailer) > 0 {
		if err := json.Unmarshal(trailer, &st); err != nil {
			return nil, st, fmt.Errorf("cluster: bad stats trailer: %w", err)
		}
	}
	if len(recs) != sh.Hi-sh.Lo {
		return nil, st, fmt.Errorf("cluster: worker delivered %d records for a %d-pair shard: %w",
			len(recs), sh.Hi-sh.Lo, stream.ErrTransient)
	}
	return recs, st, nil
}

// resolveParams applies the coordinator's defaults to a request spec.
func (c *Coordinator) resolveParams(spec server.ParamsSpec) (core.Params, error) {
	return spec.Resolve(c.cfg.DefaultParams)
}
