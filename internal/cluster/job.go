package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"sma/internal/server"
	"sma/internal/stream"
)

// clusterJob is one sharded job's state on the coordinator. It mirrors
// the single-node Job shape (same statuses, same per-pair summaries, the
// same JSON view) plus the dispatch accounting the chaos drills assert.
type clusterJob struct {
	ID string

	mu       sync.Mutex
	status   server.JobStatus
	created  time.Time
	started  time.Time
	finished time.Time
	frames   int
	stats    stream.Stats
	pairs    []server.PairSummary
	fields   [][]byte
	errMsg   string
	cancel   context.CancelFunc

	// Dispatch accounting, kept exactly alongside the work so a finished
	// job's counters equal fault.ClusterPlan.Expect for injected plans.
	shards          int
	dispatchRetries int64
	reassigned      int64
	lostNodes       map[int]bool
	placement       []int

	// Recovery provenance: "" normally, "restored" for a terminal job
	// rebuilt from the journal, "resumed" for an interrupted job finishing
	// its remaining shards. shardsRestored counts shards whose results
	// came from checkpoints instead of this run's dispatch (their
	// placement entries stay -1).
	recovered      string
	shardsRestored int64
}

// ClusterInfo is the dispatch accounting a job view carries.
type ClusterInfo struct {
	Shards          int   `json:"shards"`
	DispatchRetries int64 `json:"dispatch_retries"`
	Reassigned      int64 `json:"shards_reassigned"`
	NodesLost       int64 `json:"nodes_lost"`
	Placement       []int `json:"placement,omitempty"`
	// ShardsRestored counts shards recovered from checkpoints rather than
	// dispatched by this process (crash-recovery resumes).
	ShardsRestored int64 `json:"shards_restored,omitempty"`
}

// JobView is the coordinator's job snapshot: the single-node view plus
// cluster accounting.
type JobView struct {
	server.JobView
	Cluster ClusterInfo `json:"cluster"`
}

func newClusterJob(id string, frames int, cancel context.CancelFunc) *clusterJob {
	return &clusterJob{
		ID:        id,
		status:    server.JobQueued,
		created:   time.Now(),
		frames:    frames,
		fields:    make([][]byte, frames-1),
		cancel:    cancel,
		lostNodes: make(map[int]bool),
	}
}

// View snapshots the job under its lock, pairs sorted by index.
func (j *clusterJob) View() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	pairs := append([]server.PairSummary(nil), j.pairs...)
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].Pair < pairs[b].Pair })
	v := JobView{
		JobView: server.JobView{
			ID:        j.ID,
			Status:    j.status,
			Frames:    j.frames,
			Created:   j.created,
			Stats:     j.stats,
			Pairs:     pairs,
			Error:     j.errMsg,
			Recovered: j.recovered,
		},
		Cluster: ClusterInfo{
			Shards:          j.shards,
			DispatchRetries: j.dispatchRetries,
			Reassigned:      j.reassigned,
			NodesLost:       int64(len(j.lostNodes)),
			Placement:       append([]int(nil), j.placement...),
			ShardsRestored:  j.shardsRestored,
		},
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
		end := j.finished
		if end.IsZero() {
			end = time.Now()
		}
		v.ElapsedSec = end.Sub(j.started).Seconds()
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// Cancel requests cancellation; reports whether the job was cancellable.
func (j *clusterJob) Cancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != server.JobQueued && j.status != server.JobRunning {
		return false
	}
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// SizeBytes lets the result store's byte cap account for retained fields.
func (j *clusterJob) SizeBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	var n int64 = 512
	n += int64(len(j.pairs)) * 64
	for _, f := range j.fields {
		n += int64(len(f))
	}
	return n
}

// start flips the job running and sizes its placement table.
func (j *clusterJob) start(shards int) {
	j.mu.Lock()
	j.status = server.JobRunning
	j.started = time.Now()
	j.shards = shards
	j.placement = make([]int, shards)
	for i := range j.placement {
		j.placement[i] = -1
	}
	j.mu.Unlock()
}

// dispatchRetry counts one failed dispatch attempt (dead-node hop or
// transient flake) — the coordinator's mirror of Expect.DispatchRetries.
func (j *clusterJob) dispatchRetry() {
	j.mu.Lock()
	j.dispatchRetries++
	j.mu.Unlock()
}

// lost records that a placement walk touched dead node w.
func (j *clusterJob) lost(w int) {
	j.mu.Lock()
	j.lostNodes[w] = true
	j.mu.Unlock()
}

// place records shard k's final node and whether it was reassigned off
// its affinity home.
func (j *clusterJob) place(k, node, home int) {
	j.mu.Lock()
	if k >= 0 && k < len(j.placement) {
		j.placement[k] = node
	}
	if node != home {
		j.reassigned++
	}
	j.mu.Unlock()
}

// merge folds one shard's decoded records and stats into the job.
func (j *clusterJob) merge(recs []server.PairRecord, st stream.Stats) {
	j.mu.Lock()
	for _, rec := range recs {
		if rec.Pair < 0 || rec.Pair >= len(j.fields) {
			continue
		}
		sum := server.PairSummary{Pair: rec.Pair, Status: rec.Status, Error: rec.Cause}
		if rec.Status == server.PairOK {
			j.fields[rec.Pair] = rec.Field
			sum.MeanMag = rec.MeanMag()
		}
		j.pairs = append(j.pairs, sum)
	}
	addStats(&j.stats, st)
	j.mu.Unlock()
}

// addStats folds one shard's stats trailer into a running total.
func addStats(dst *stream.Stats, st stream.Stats) {
	dst.FramesIn += st.FramesIn
	dst.FitsComputed += st.FitsComputed
	dst.FitsReused += st.FitsReused
	dst.Evictions += st.Evictions
	dst.PairsTracked += st.PairsTracked
	dst.Retries += st.Retries
	dst.FramesSkipped += st.FramesSkipped
	dst.PairsSkipped += st.PairsSkipped
	dst.PairsFailed += st.PairsFailed
	dst.Gaps += st.Gaps
}

// restoreShard re-seats one checkpointed shard's pairs, fields, and stats
// on a resumed job, before its remaining shards dispatch.
func (j *clusterJob) restoreShard(pairs []server.PairSummary, fields map[int][]byte, st stream.Stats) {
	j.mu.Lock()
	j.pairs = append(j.pairs, pairs...)
	for p, b := range fields {
		if p >= 0 && p < len(j.fields) {
			j.fields[p] = b
		}
	}
	addStats(&j.stats, st)
	j.shardsRestored++
	j.mu.Unlock()
}

// failShard marks every pair of an undeliverable shard failed.
func (j *clusterJob) failShard(sh shardRange, cause string) {
	j.mu.Lock()
	for p := sh.Lo; p < sh.Hi; p++ {
		j.pairs = append(j.pairs, server.PairSummary{Pair: p, Status: server.PairFailed, Error: cause})
		j.stats.PairsFailed++
	}
	j.mu.Unlock()
}

// finish computes the terminal status from what survived.
func (j *clusterJob) finish(ctx context.Context) server.JobStatus {
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case ctx.Err() == context.Canceled:
		j.status = server.JobCancelled
	case ctx.Err() == context.DeadlineExceeded:
		j.status = server.JobFailed
		j.errMsg = "job exceeded its deadline"
	case j.stats.PairsTracked == 0:
		j.status = server.JobFailed
		j.errMsg = "degraded run delivered no pairs"
	default:
		j.status = server.JobDone
	}
	st := j.status
	j.mu.Unlock()
	return st
}

// resultSnapshot copies what the result stream needs.
func (j *clusterJob) resultSnapshot() (server.JobStatus, [][]byte, []server.PairSummary) {
	j.mu.Lock()
	defer j.mu.Unlock()
	fields := make([][]byte, len(j.fields))
	copy(fields, j.fields)
	return j.status, fields, append([]server.PairSummary(nil), j.pairs...)
}
