package cluster

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Metrics is the coordinator's hand-rolled Prometheus registry, the same
// stdlib-only text-exposition approach as internal/server. The unlabeled
// smaserve_cluster_* families are the surface the cluster chaos drill
// scrapes for its exact-counter and goroutine-leak assertions;
// smaserve_goroutines keeps the same family name as the single-node
// server so one canary check covers both roles.
type Metrics struct {
	mu      sync.Mutex
	started time.Time
	jobs    map[string]uint64

	shards          uint64
	dispatchRetries uint64
	reassigned      uint64
	nodesLost       uint64
	pairsMerged     uint64
	rejected        uint64

	// Read at scrape time from the registry.
	workers    func() int
	aliveCount func() int
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{started: time.Now(), jobs: make(map[string]uint64)}
}

// JobTransition counts a job lifecycle event.
func (m *Metrics) JobTransition(status string) {
	m.mu.Lock()
	m.jobs[status]++
	m.mu.Unlock()
}

// Rejected counts one admission rejection.
func (m *Metrics) Rejected() {
	m.mu.Lock()
	m.rejected++
	m.mu.Unlock()
}

// AddJob folds a finished job's dispatch accounting into the totals.
func (m *Metrics) AddJob(info ClusterInfo, pairsMerged int64) {
	m.mu.Lock()
	m.shards += uint64(info.Shards)
	m.dispatchRetries += uint64(info.DispatchRetries)
	m.reassigned += uint64(info.Reassigned)
	m.nodesLost += uint64(info.NodesLost)
	m.pairsMerged += uint64(pairsMerged)
	m.mu.Unlock()
}

func header(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteTo renders the registry in Prometheus text exposition format.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b counting
	b.w = w

	header(&b, "smaserve_cluster_jobs_total", "Coordinator job lifecycle transitions by status.", "counter")
	keys := make([]string, 0, len(m.jobs))
	for k := range m.jobs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "smaserve_cluster_jobs_total{status=%q} %d\n", k, m.jobs[k])
	}

	header(&b, "smaserve_cluster_shards_total", "Shards dispatched across all finished jobs.", "counter")
	fmt.Fprintf(&b, "smaserve_cluster_shards_total %d\n", m.shards)
	header(&b, "smaserve_cluster_dispatch_retries_total", "Failed shard dispatch attempts (dead-node hops plus transient retries).", "counter")
	fmt.Fprintf(&b, "smaserve_cluster_dispatch_retries_total %d\n", m.dispatchRetries)
	header(&b, "smaserve_cluster_shards_reassigned_total", "Shards completed on a node other than their affinity home.", "counter")
	fmt.Fprintf(&b, "smaserve_cluster_shards_reassigned_total %d\n", m.reassigned)
	header(&b, "smaserve_cluster_nodes_lost_total", "Dead nodes encountered by placement walks, summed per job.", "counter")
	fmt.Fprintf(&b, "smaserve_cluster_nodes_lost_total %d\n", m.nodesLost)
	header(&b, "smaserve_cluster_pairs_merged_total", "Per-pair records merged from worker shard streams.", "counter")
	fmt.Fprintf(&b, "smaserve_cluster_pairs_merged_total %d\n", m.pairsMerged)
	header(&b, "smaserve_cluster_rejected_total", "Jobs rejected because the coordinator's admission slots were full.", "counter")
	fmt.Fprintf(&b, "smaserve_cluster_rejected_total %d\n", m.rejected)

	if m.workers != nil {
		header(&b, "smaserve_cluster_workers", "Configured worker nodes.", "gauge")
		fmt.Fprintf(&b, "smaserve_cluster_workers %d\n", m.workers())
	}
	if m.aliveCount != nil {
		header(&b, "smaserve_cluster_workers_alive", "Worker nodes currently passing health checks.", "gauge")
		fmt.Fprintf(&b, "smaserve_cluster_workers_alive %d\n", m.aliveCount())
	}

	header(&b, "smaserve_goroutines", "Live goroutines in the coordinator process (leak canary for the chaos harness).", "gauge")
	fmt.Fprintf(&b, "smaserve_goroutines %d\n", runtime.NumGoroutine())

	header(&b, "smaserve_cluster_uptime_seconds", "Seconds since the coordinator started.", "gauge")
	fmt.Fprintf(&b, "smaserve_cluster_uptime_seconds %g\n", time.Since(m.started).Seconds())
	return b.n, b.err
}

type counting struct {
	w   io.Writer
	n   int64
	err error
}

func (c *counting) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}
