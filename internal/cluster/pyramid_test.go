package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sma/internal/server"
)

// TestClusterPyramidBitIdentity: a cluster job carrying a pyramid spec
// must merge to the byte-identical SMP1 stream a single smaserve
// produces for the same job, proving both roles honor the spec the same
// way rather than one silently falling back to the exhaustive search.
func TestClusterPyramidBitIdentity(t *testing.T) {
	urls := []string{testWorkerNode(t).URL, testWorkerNode(t).URL}
	_, cts := testCoordinator(t, urls, 2)

	nss := 0
	const frames = 5
	ref := server.SyntheticRef{Scene: "hurricane", Size: 32, Seed: 17, Frames: frames}
	req := JobRequest{}
	req.Synthetic = &ref
	req.Params = server.ParamsSpec{NZS: 3, NZT: 3, NSS: &nss}
	req.Pyramid = &server.PyramidSpec{Levels: 2}

	view := createClusterJob(t, cts.URL, req)
	done := waitClusterJob(t, cts.URL, view.ID, 60*time.Second)
	if done.Status != server.JobDone {
		t.Fatalf("cluster pyramid job finished %s: %s", done.Status, done.Error)
	}
	if done.Stats.PairsTracked != frames-1 {
		t.Fatalf("cluster tracked %d pairs, want %d", done.Stats.PairsTracked, frames-1)
	}
	clusterBytes := fetchResult(t, cts.URL, view.ID)

	srv := server.New(server.Config{Workers: 1})
	sts := httptest.NewServer(srv.Handler())
	defer func() {
		sts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("server shutdown: %v", err)
		}
	}()
	sbody, _ := json.Marshal(server.JobRequest{
		Synthetic: &ref,
		Params:    req.Params,
		Pyramid:   req.Pyramid,
		Retain:    true,
	})
	resp, err := http.Post(sts.URL+"/v1/jobs", "application/json", bytes.NewReader(sbody))
	if err != nil {
		t.Fatal(err)
	}
	var sview server.JobView
	if err := json.NewDecoder(resp.Body).Decode(&sview); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(60 * time.Second)
	for {
		r2, err := http.Get(sts.URL + "/v1/jobs/" + sview.ID)
		if err != nil {
			t.Fatal(err)
		}
		var v server.JobView
		if err := json.NewDecoder(r2.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if v.Status == server.JobDone {
			break
		}
		if v.Status == server.JobFailed || time.Now().After(deadline) {
			t.Fatalf("single-node pyramid job %s: %s", v.Status, v.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
	singleBytes := fetchResult(t, sts.URL, sview.ID)

	if !bytes.Equal(clusterBytes, singleBytes) {
		t.Fatalf("cluster pyramid result (%d bytes) differs from single-node result (%d bytes)",
			len(clusterBytes), len(singleBytes))
	}
}

// TestClusterPyramidRejection: the coordinator rejects an invalid
// pyramid spec at admission with the same rules the workers enforce, so
// a bad job never reaches shard dispatch.
func TestClusterPyramidRejection(t *testing.T) {
	urls := []string{testWorkerNode(t).URL}
	_, cts := testCoordinator(t, urls, 2)
	for _, body := range []string{
		// Pyramid over the semi-fluid default params.
		`{"synthetic":{"size":32,"frames":3},"pyramid":{"levels":2}}`,
		// Out-of-range levels.
		`{"synthetic":{"size":32,"frames":3},"params":{"nss":0},"pyramid":{"levels":99}}`,
	} {
		resp, err := http.Post(cts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
}
