package cluster

import (
	"context"
	"fmt"

	"sma/internal/server"
)

// Recover replays the coordinator's journal, restores terminal jobs into
// the store, resumes interrupted jobs by re-dispatching only their
// unfinished shards, sweeps orphaned field directories, and compacts the
// journal. Call once, after New and before serving traffic (workers need
// not be alive yet — resumed dispatches walk the registry like any
// other). A no-op without Config.DataDir.
func (c *Coordinator) Recover(ctx context.Context) (server.RecoveryStats, error) {
	var rs server.RecoveryStats
	if c.jl == nil {
		return rs, nil
	}
	recs, jst, err := c.jl.Replay()
	rs.Journal = jst
	if err != nil {
		return rs, err
	}
	// Compact before resubmitting: resumed jobs append new checkpoints
	// concurrently, and Compact must not race them.
	if err := c.jl.Compact(recs); err != nil {
		return rs, err
	}

	live := map[string]bool{}
	var resume []*server.RecoveredJob
	for _, r := range recs {
		live[r.ID] = true
		if r.Ended {
			c.restoreJob(r)
			rs.Restored++
			continue
		}
		resume = append(resume, r)
	}
	n, err := c.fstore.SweepOrphans(func(id string) bool { return live[id] })
	rs.OrphanDirs = n
	if err != nil {
		c.cfg.Logf("smaserve: cluster recovery orphan sweep: %v", err)
	}
	for _, r := range resume {
		if err := c.resumeJob(ctx, r); err != nil {
			c.cfg.Logf("smaserve: resuming cluster job %s: %v", r.ID, err)
			continue
		}
		rs.Resumed++
	}
	return rs, nil
}

// restoreJob rebuilds a terminal cluster job from its journal state and
// persisted fields and puts it back in the store.
func (c *Coordinator) restoreJob(r *server.RecoveredJob) {
	if r.Frames < 2 {
		c.cfg.Logf("smaserve: cluster job %s unrestorable (frames=%d)", r.ID, r.Frames)
		return
	}
	job := newClusterJob(r.ID, r.Frames, nil)
	job.status = r.Status
	job.created, job.started, job.finished = r.Created, r.Created, r.Created
	job.stats = r.Stats
	job.errMsg = r.ErrMsg
	job.pairs = append([]server.PairSummary(nil), r.Pairs...)
	job.shards = len(r.Shards)
	job.recovered = "restored"
	for _, ps := range r.Pairs {
		if ps.Status != server.PairOK || ps.Pair < 0 || ps.Pair >= len(job.fields) {
			continue
		}
		b, ok, err := c.fstore.Field(r.ID, ps.Pair)
		if err != nil || !ok {
			// The checkpoint said this field was durable; its absence means
			// disk damage outside the journal's control. Surface loudly.
			c.cfg.Logf("smaserve: cluster job %s pair %d: checkpointed field missing (ok=%v err=%v)", r.ID, ps.Pair, ok, err)
			continue
		}
		job.fields[ps.Pair] = b
	}
	c.store.Put(r.ID, job)
	c.metrics.JobTransition("restored")
}

// resumeJob resubmits an interrupted cluster job: shards whose
// checkpoints verify (same geometry, every pair event present, every ok
// field readable) are re-seated from disk, everything else re-dispatches.
// The merged output is byte-identical to an uninterrupted run because
// shard checkpoints are only written after their fields are durable and
// each pair's bytes are position-independent.
func (c *Coordinator) resumeJob(ctx context.Context, r *server.RecoveredJob) error {
	if r.Frames < 2 || r.Req.Synthetic == nil {
		return fmt.Errorf("unresumable spec (frames=%d)", r.Frames)
	}
	if _, err := c.resolveParams(r.Req.Params); err != nil {
		return err
	}
	shards := makeShards(r.Frames-1, c.cfg.ShardPairs)
	byPair := map[int]server.PairSummary{}
	for _, ps := range r.Pairs {
		byPair[ps.Pair] = ps
	}

	jobCtx, jobCancel := context.WithCancel(context.WithoutCancel(ctx))
	job := newClusterJob(r.ID, r.Frames, jobCancel)
	job.created = r.Created
	job.recovered = "resumed"
	skip := map[int]bool{}
	for k, cp := range r.Shards {
		if k < 0 || k >= len(shards) || shards[k].Lo != cp.Lo || shards[k].Hi != cp.Hi {
			// ShardPairs changed across the restart: the checkpointed range no
			// longer matches shard k's cut, so re-run it under the new geometry.
			continue
		}
		pairs := make([]server.PairSummary, 0, cp.Hi-cp.Lo)
		fields := map[int][]byte{}
		complete := true
		for p := cp.Lo; p < cp.Hi; p++ {
			ps, have := byPair[p]
			if !have {
				complete = false
				break
			}
			if ps.Status == server.PairOK {
				b, ok, err := c.fstore.Field(r.ID, p)
				if err != nil || !ok {
					c.cfg.Logf("smaserve: cluster job %s pair %d: checkpointed field missing (ok=%v err=%v); re-running shard %d", r.ID, p, ok, err, k)
					complete = false
					break
				}
				fields[p] = b
			}
			pairs = append(pairs, ps)
		}
		if !complete {
			continue
		}
		skip[k] = true
		job.restoreShard(pairs, fields, cp.Stats)
	}

	c.store.Put(r.ID, job)
	c.metrics.JobTransition("resumed")
	req := JobRequest{JobRequest: r.Req}
	c.wg.Add(1)
	go func() {
		// Blocking admission: resumed jobs respect MaxJobs like fresh ones,
		// queueing behind each other when recovery brings back more than fit.
		c.jobSlots <- struct{}{}
		c.runJob(jobCtx, job, req, nil, skip, func() { <-c.jobSlots })
	}()
	return nil
}
