package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sma/internal/core"
	"sma/internal/server"
	"sma/internal/stream"
)

// openDurableCoordinator builds a coordinator over dir, runs recovery,
// starts heartbeats, and serves it. The caller shuts it down.
func openDurableCoordinator(t *testing.T, urls []string, shardPairs int, dir string) (*Coordinator, *httptest.Server, server.RecoveryStats) {
	t.Helper()
	c, err := New(Config{
		Workers:        urls,
		ShardPairs:     shardPairs,
		DataDir:        dir,
		HealthInterval: 100 * time.Millisecond,
		RetryDelay:     5 * time.Millisecond,
		Logf:           func(string, ...any) {},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rs, err := c.Recover(context.Background())
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	c.Start(context.Background())
	return c, httptest.NewServer(c.Handler()), rs
}

func shutdownCoordinator(t *testing.T, c *Coordinator, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Shutdown(ctx); err != nil {
		t.Errorf("coordinator shutdown: %v", err)
	}
}

// offlineField renders the sequential tracker's SMF1 bytes for one pair —
// the byte-identity oracle recovered cluster jobs are held to.
func offlineField(t *testing.T, ref server.SyntheticRef, pair int) []byte {
	t.Helper()
	scene, err := ref.SceneOf()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.TrackSequential(core.Monocular(
		scene.Frame(float64(ref.T0+pair)), scene.Frame(float64(ref.T0+pair+1))),
		core.ScaledParams(), core.Options{})
	if err != nil {
		t.Fatalf("offline track of pair %d: %v", pair, err)
	}
	var buf bytes.Buffer
	if err := server.NewMotionField("", res).WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func assertClusterResult(t *testing.T, ref server.SyntheticRef, data []byte) {
	t.Helper()
	pr := server.NewPairStreamReader(bytes.NewReader(data))
	n := 0
	for {
		rec, err := pr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("decoding record %d: %v", n, err)
		}
		if rec.Pair != n || rec.Status != server.PairOK {
			t.Fatalf("record %d = pair %d status %s, want ok in order", n, rec.Pair, rec.Status)
		}
		if !bytes.Equal(rec.Field, offlineField(t, ref, rec.Pair)) {
			t.Fatalf("pair %d differs from the offline tracker", rec.Pair)
		}
		n++
	}
	if n != ref.Frames-1 {
		t.Fatalf("stream carried %d pairs, want %d", n, ref.Frames-1)
	}
}

// TestClusterDurableRestoreAcrossRestart: a finished cluster job survives
// a coordinator restart with its merged result bytes intact.
func TestClusterDurableRestoreAcrossRestart(t *testing.T) {
	urls := []string{testWorkerNode(t).URL, testWorkerNode(t).URL}
	dir := t.TempDir()
	c1, ts1, _ := openDurableCoordinator(t, urls, 2, dir)
	ref := server.SyntheticRef{Scene: "hurricane", Size: 32, Seed: 23, Frames: 7}
	req := JobRequest{}
	req.Synthetic = &ref
	view := createClusterJob(t, ts1.URL, req)
	done := waitClusterJob(t, ts1.URL, view.ID, 60*time.Second)
	if done.Status != server.JobDone {
		t.Fatalf("job finished %s: %s", done.Status, done.Error)
	}
	before := fetchResult(t, ts1.URL, view.ID)
	shutdownCoordinator(t, c1, ts1)

	c2, ts2, rs := openDurableCoordinator(t, urls, 2, dir)
	defer shutdownCoordinator(t, c2, ts2)
	if rs.Restored != 1 || rs.Resumed != 0 {
		t.Fatalf("recovery stats = %+v, want one restored job", rs)
	}
	after := fetchResult(t, ts2.URL, view.ID)
	if !bytes.Equal(before, after) {
		t.Fatal("restored cluster result differs from the pre-restart bytes")
	}
	assertClusterResult(t, ref, after)
	got := waitClusterJob(t, ts2.URL, view.ID, time.Second)
	if got.Recovered != "restored" || got.Status != server.JobDone {
		t.Fatalf("restored view: status %s recovered %q", got.Status, got.Recovered)
	}

	var list server.JobListView
	resp, err := http.Get(ts2.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != view.ID || list.Jobs[0].Recovered != "restored" {
		t.Fatalf("job list = %+v, want the restored job", list.Jobs)
	}
}

// TestClusterResumeSkipsDoneShards crafts a journal describing a
// coordinator that died with one shard checkpointed, then recovers it:
// only the unfinished shards re-dispatch, and the merged output is
// byte-identical to an uninterrupted run.
func TestClusterResumeSkipsDoneShards(t *testing.T) {
	dir := t.TempDir()
	const frames = 9 // 8 pairs → 4 shards of 2
	ref := server.SyntheticRef{Scene: "hurricane", Size: 32, Seed: 29, Frames: frames}
	const id = "feedface00000001"

	jl, err := server.OpenJobLog(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := server.NewFileStore(server.FileStoreConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.Spec(id, &server.JobRequest{Synthetic: &ref}, frames, time.Now().Add(-time.Minute)); err != nil {
		t.Fatal(err)
	}
	// Shard 1 (pairs 2,3) completed before the crash — out of order is
	// fine, cluster resume keys on shards, not a contiguous pair prefix.
	for p := 2; p < 4; p++ {
		if err := fs.PutField(id, p, offlineField(t, ref, p)); err != nil {
			t.Fatal(err)
		}
		jl.Pair(id, server.PairSummary{Pair: p, Status: server.PairOK, MeanMag: 1})
	}
	jl.ShardDone(id, 1, server.ShardCheckpoint{
		Node: "http://crashed-run", Lo: 2, Hi: 4,
		Stats: stream.Stats{FramesIn: 3, PairsTracked: 2},
	})
	// Shard 2's pair events never landed (simulated append loss): its
	// checkpoint is incomplete and the shard must re-run.
	jl.ShardDone(id, 2, server.ShardCheckpoint{Node: "http://crashed-run", Lo: 4, Hi: 6})
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	urls := []string{testWorkerNode(t).URL, testWorkerNode(t).URL}
	c, ts, rs := openDurableCoordinator(t, urls, 2, dir)
	defer shutdownCoordinator(t, c, ts)
	if rs.Resumed != 1 || rs.Restored != 0 {
		t.Fatalf("recovery stats = %+v, want one resumed job", rs)
	}
	done := waitClusterJob(t, ts.URL, id, 60*time.Second)
	if done.Status != server.JobDone {
		t.Fatalf("resumed job finished %s: %s", done.Status, done.Error)
	}
	if done.Recovered != "resumed" {
		t.Fatalf("recovered = %q, want resumed", done.Recovered)
	}
	if done.Cluster.ShardsRestored != 1 {
		t.Fatalf("ShardsRestored = %d, want 1 (the complete checkpoint only)", done.Cluster.ShardsRestored)
	}
	if done.Stats.PairsTracked != frames-1 {
		t.Fatalf("tracked %d pairs after resume, want %d", done.Stats.PairsTracked, frames-1)
	}
	assertClusterResult(t, ref, fetchResult(t, ts.URL, id))
}

// TestClusterDrainPendingResume: a forced coordinator drain checkpoints
// a running job pending, and a restart finishes it against live workers.
func TestClusterDrainPendingResume(t *testing.T) {
	// A worker whose shard endpoint blocks until the request dies: the
	// job is guaranteed mid-flight when the drain hits.
	var mux http.ServeMux
	mux.HandleFunc("POST "+ShardPath, func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so net/http's background read is armed — without
		// it the request context never notices the client disconnect and
		// this handler (and the test's deferred Close) would hang forever.
		io.Copy(io.Discard, r.Body) //smavet:allow errdiscard -- test stub
		<-r.Context().Done()
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ready")
	})
	stuck := httptest.NewServer(&mux)
	defer stuck.Close()

	dir := t.TempDir()
	c1, ts1, _ := openDurableCoordinator(t, []string{stuck.URL}, 2, dir)
	ref := server.SyntheticRef{Scene: "shear", Size: 32, Seed: 31, Frames: 4}
	req := JobRequest{}
	req.Synthetic = &ref
	view := createClusterJob(t, ts1.URL, req)
	ts1.Close()
	expired, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if err := c1.Shutdown(expired); err == nil {
		t.Fatal("forced drain reported clean shutdown")
	}

	c2, ts2, rs := openDurableCoordinator(t, []string{testWorkerNode(t).URL}, 2, dir)
	defer shutdownCoordinator(t, c2, ts2)
	if rs.Resumed != 1 {
		t.Fatalf("recovery stats = %+v, want the drained job resumed", rs)
	}
	done := waitClusterJob(t, ts2.URL, view.ID, 60*time.Second)
	if done.Status != server.JobDone {
		t.Fatalf("resumed job finished %s: %s", done.Status, done.Error)
	}
	if done.Recovered != "resumed" {
		t.Fatalf("recovered = %q, want resumed", done.Recovered)
	}
	assertClusterResult(t, ref, fetchResult(t, ts2.URL, view.ID))
}
