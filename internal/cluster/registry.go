package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// NodeState is one worker's view in the registry.
type NodeState struct {
	Index      int       `json:"index"`
	URL        string    `json:"url"`
	Alive      bool      `json:"alive"`
	LastSeen   time.Time `json:"last_seen,omitempty"`
	Failures   int64     `json:"health_failures"`
	Dispatches int64     `json:"dispatches"`
}

// Registry tracks worker liveness: a fixed node list (cluster membership
// is configuration, not discovery), a background heartbeat loop probing
// each worker's /readyz, and dispatch-path death marks — a connection
// that dies mid-shard flips the node dead immediately instead of waiting
// for the next heartbeat. A node that starts answering its heartbeat
// again is revived, which is how a restarted worker rejoins.
type Registry struct {
	client *http.Client

	mu    sync.Mutex
	nodes []NodeState

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewRegistry builds a registry over the worker base URLs. All nodes
// start alive; the first heartbeat corrects optimism within one interval.
func NewRegistry(urls []string, client *http.Client) *Registry {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	r := &Registry{
		client: client,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i, u := range urls {
		r.nodes = append(r.nodes, NodeState{Index: i, URL: u, Alive: true})
	}
	return r
}

// Start runs the heartbeat loop until Stop (or ctx cancellation). The
// first probe round runs synchronously so callers observe real liveness
// as soon as Start returns.
func (r *Registry) Start(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	r.probeAll(ctx)
	go func() {
		defer close(r.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.probeAll(ctx)
			case <-r.stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Stop ends the heartbeat loop and joins it.
func (r *Registry) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}

// probeAll heartbeats every node once.
func (r *Registry) probeAll(ctx context.Context) {
	r.mu.Lock()
	targets := make([]NodeState, len(r.nodes))
	copy(targets, r.nodes)
	r.mu.Unlock()
	for _, n := range targets {
		alive := r.probe(ctx, n.URL)
		r.mu.Lock()
		node := &r.nodes[n.Index]
		node.Alive = alive
		if alive {
			node.LastSeen = time.Now()
		} else {
			node.Failures++
		}
		r.mu.Unlock()
	}
}

// probe reports whether the worker's /readyz answers 200.
func (r *Registry) probe(ctx context.Context, base string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// Len returns the configured node count.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.nodes)
}

// Alive reports node w's liveness.
func (r *Registry) Alive(w int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w < 0 || w >= len(r.nodes) {
		return false
	}
	return r.nodes[w].Alive
}

// AliveCount returns how many nodes are currently alive.
func (r *Registry) AliveCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, node := range r.nodes {
		if node.Alive {
			n++
		}
	}
	return n
}

// URL returns node w's base URL.
func (r *Registry) URL(w int) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nodes[w].URL
}

// MarkDead flips node w dead from the dispatch path.
func (r *Registry) MarkDead(w int) {
	r.mu.Lock()
	if w >= 0 && w < len(r.nodes) {
		r.nodes[w].Alive = false
		r.nodes[w].Failures++
	}
	r.mu.Unlock()
}

// Dispatched counts one shard dispatch attempt against node w.
func (r *Registry) Dispatched(w int) {
	r.mu.Lock()
	if w >= 0 && w < len(r.nodes) {
		r.nodes[w].Dispatches++
	}
	r.mu.Unlock()
}

// Snapshot returns the node states in index order.
func (r *Registry) Snapshot() []NodeState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NodeState, len(r.nodes))
	copy(out, r.nodes)
	return out
}
