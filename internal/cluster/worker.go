package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"time"

	"sma/internal/core"
	"sma/internal/server"
	"sma/internal/stream"
)

// ShardPath is the internal shard-execution endpoint workers mount next
// to the ordinary smaserve routes.
const ShardPath = "/internal/v1/shard"

// WorkerConfig sizes a worker's shard executor. Zero values take the
// documented defaults.
type WorkerConfig struct {
	// Concurrency bounds simultaneous shard executions (0 = 2). Excess
	// shards are rejected 503 + Retry-After, the same backpressure shape
	// as the admission queue.
	Concurrency int
	// RowWorkers stripes each pair's row loop (0 = GOMAXPROCS).
	RowWorkers int
	// ShardTimeout bounds one shard execution (0 = 5 min).
	ShardTimeout time.Duration
	// MaxPixels caps rendered frame area (0 = 1<<22).
	MaxPixels int
	// MaxShardPairs caps one shard's pair count (0 = 256).
	MaxShardPairs int
	// DefaultParams seeds parameter resolution (zero = core.ScaledParams).
	DefaultParams core.Params
	// Logf receives execution events (nil = log.Printf).
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.RowWorkers <= 0 {
		c.RowWorkers = runtime.GOMAXPROCS(0)
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 5 * time.Minute
	}
	if c.MaxPixels <= 0 {
		c.MaxPixels = 1 << 22
	}
	if c.MaxShardPairs <= 0 {
		c.MaxShardPairs = 256
	}
	if (c.DefaultParams == core.Params{}) {
		c.DefaultParams = core.ScaledParams()
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// Worker executes shard requests on the local tracking pipeline.
type Worker struct {
	cfg WorkerConfig
	sem chan struct{}
}

// NewWorker builds the shard executor.
func NewWorker(cfg WorkerConfig) *Worker {
	cfg = cfg.withDefaults()
	return &Worker{cfg: cfg, sem: make(chan struct{}, cfg.Concurrency)}
}

// ServeHTTP handles POST /internal/v1/shard: render the shard's frame
// window, run the streaming pipeline over it, and stream SMP1 records
// with global pair indices as pairs complete — chunked transfer, so the
// coordinator overlaps decode with tracking. The trailer carries the
// shard's stream.Stats.
func (wk *Worker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	select {
	case wk.sem <- struct{}{}:
		defer func() { <-wk.sem }()
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "worker shard slots saturated; retry later")
		return
	}
	var req ShardRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad shard request: %v", err))
		return
	}
	if err := req.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if n := req.PairHi - req.PairLo; n > wk.cfg.MaxShardPairs {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("shard spans %d pairs, cap is %d", n, wk.cfg.MaxShardPairs))
		return
	}
	scene, err := req.Synthetic.SceneOf()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if px := req.Synthetic.Size * req.Synthetic.Size; px > wk.cfg.MaxPixels {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("frame area %d px exceeds the worker cap %d", px, wk.cfg.MaxPixels))
		return
	}
	params, err := req.Params.Resolve(wk.cfg.DefaultParams)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Resolve the forwarded pyramid spec under the same rules the
	// coordinator accepted it with; a 400 here is permanent, so a spec
	// the coordinator rejects is never half-honored by a worker.
	pyr, err := req.Pyramid.Resolve(params)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), wk.cfg.ShardTimeout)
	defer cancel()

	// The shard's frame window: global frames PairLo..PairHi inclusive,
	// rendered lazily exactly like the single-node job source so the
	// pixels — and therefore the tracked fields — are bit-identical.
	frames := req.Frames()
	src := stream.Func(frames, func(i int) (core.Frame, error) {
		return core.MonocularFrame(scene.Frame(float64(req.Synthetic.T0 + req.PairLo + i))), nil
	})

	w.Header().Set("Content-Type", "application/octet-stream")
	flusher, _ := w.(http.Flusher)
	pw := server.NewPairStreamWriter(w)
	var streamErr error
	st, runErr := stream.StreamCtx(ctx, src, stream.Config{
		Params:     params,
		Options:    core.Options{Robust: req.Robust, Pyramid: pyr},
		Workers:    1, // the shard slot is the unit of concurrency
		RowWorkers: wk.cfg.RowWorkers,
		// Mirror the single-node job pipeline's degraded-mode posture so a
		// shard degrades exactly like the same pairs would have in-process.
		Retry:        stream.RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond},
		Skip:         stream.SkipPolicy{MaxSkips: -1},
		Gate:         &core.QualityGate{MaxBadFrac: 0, MaxDeadLineFrac: 1},
		IsolatePairs: true,
		OnPairDrop: func(pair int, cause error) {
			if streamErr != nil {
				return
			}
			status := server.PairFailed
			var fe *stream.FrameError
			if errors.As(cause, &fe) {
				status = server.PairSkipped
			}
			streamErr = pw.WriteDropped(req.PairLo+pair, status, cause.Error())
		},
	}, func(pair int, res *core.Result) error {
		if streamErr != nil {
			return streamErr
		}
		var buf bytes.Buffer
		if err := server.NewMotionField("", res).WriteBinary(&buf); err != nil {
			return err
		}
		if streamErr = pw.WriteOK(req.PairLo+pair, buf.Bytes()); streamErr != nil {
			return streamErr
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if runErr != nil || streamErr != nil {
		// Headers are sent; cut the stream without the sentinel so the
		// coordinator sees a truncation (transient) rather than a silently
		// short result.
		wk.cfg.Logf("smaserve: shard %s/%d aborted: run=%v stream=%v", req.JobID, req.Shard, runErr, streamErr)
		return
	}
	trailer, err := json.Marshal(st)
	if err != nil {
		wk.cfg.Logf("smaserve: shard %s/%d stats trailer: %v", req.JobID, req.Shard, err)
		return
	}
	if err := pw.WriteEnd(trailer); err != nil {
		wk.cfg.Logf("smaserve: shard %s/%d sentinel: %v", req.JobID, req.Shard, err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	resp, _ := json.Marshal(map[string]string{"error": msg})
	w.Write(append(resp, '\n'))
}
