package core

import (
	"math"

	"sma/internal/la"
)

// This file is the cache-blocked multi-hypothesis batch kernel: instead of
// one b-pass over the cached template invariants per hypothesis (scoreHyp),
// trackPixelBatchFrom scores up to la.BatchLanes hypotheses per pass. The
// hypothesis-invariant slots of the scratch buffer (zx, zy, |n0|, 1/E,
// 1/G) are loaded ONCE per template pixel and feed every lane; the
// right-hand sides accumulate into structure-of-arrays lane stripes
// ([6][la.BatchLanes]float64, lane index contiguous) so the inner lane
// loops are stride-1; and the factored normal-equation matrix is replayed
// for all lanes in one la.SolveFactored6Lanes call that reads each LU
// element once per batch.
//
// Bit-exactness contract: within a lane, the b accumulation visits
// template pixels in exactly scoreHyp's order and performs accumulateB's
// operation sequence, the substitution replays SolveFactored6, and the
// residual sum runs residualSumBounded's arithmetic against the live
// incumbent ε — lanes are scored left to right, each seeing the incumbent
// updated by its predecessors, which is precisely the sequential search.
// Batching therefore changes memory traffic only, never arithmetic, and
// TrackPrepared output is bit-identical to TrackPreparedReference at
// every batch width (kernel_equiv_test.go, the golden fixtures).
//
// The only mode that trades exactness for speed is Options.Reassoc, which
// reorders the ε summation (residualSumBoundedReassoc) and is off
// everywhere by default; its error bound is derived in
// docs/PERFORMANCE.md §6.3 and enforced by TestReassocToleranceBounds.

// laneRHSStride is the per-template-pixel stride of the lane rhs scratch:
// three residual rows, each a contiguous la.BatchLanes stripe.
const laneRHSStride = 3 * la.BatchLanes

// trackPixelBatchFrom is trackPixelFrom with the search loop feeding
// hypotheses to the batch scorer in groups of t.nlanes. Visit order,
// tie-breaking and early-exit semantics are identical to the scalar loop.
func (t *tracker) trackPixelBatchFrom(x, y, bx, by int) (hx, hy int, eps float64, theta la.Vec6) {
	p := t.prep.P
	srx := p.SearchRX()
	sry := p.SearchRY()
	t.preparePixel(x, y)
	hx, hy = bx, by
	eps, theta, _ = t.scoreHyp(x, y, bx, by, math.Inf(1))
	var lhx, lhy [la.BatchLanes]int
	n := 0
	for dy := -sry; dy <= sry; dy++ {
		for dx := -srx; dx <= srx; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			lhx[n], lhy[n] = bx+dx, by+dy
			n++
			if n == t.nlanes {
				hx, hy, eps, theta = t.scoreHypLanes(x, y, lhx[:n], lhy[:n], hx, hy, eps, theta)
				n = 0
			}
		}
	}
	if n > 0 {
		hx, hy, eps, theta = t.scoreHypLanes(x, y, lhx[:n], lhy[:n], hx, hy, eps, theta)
	}
	if t.sm != nil {
		dx, dy := t.sm.Delta(x, y, hx, hy)
		hx += dx
		hy += dy
	}
	return hx, hy, eps, theta
}

// scoreHypLanes scores the hypotheses (lhx[l], lhy[l]) in one pass over
// the cached template invariants and folds them into the incumbent
// (bhx, bhy, beps, btheta), which it returns updated. preparePixel(x, y)
// must have run for the same pixel. Lanes are folded in slice order with
// the incumbent live between lanes, so acceptance decisions replay the
// sequential search exactly.
func (t *tracker) scoreHypLanes(x, y int, lhx, lhy []int, bhx, bhy int, beps float64, btheta la.Vec6) (int, int, float64, la.Vec6) {
	p := t.prep.P
	rx := p.TemplateRX()
	ry := p.TemplateRY()
	n := (2*rx + 1) * (2*ry + 1)
	buf := t.buf[:n*bufStride]
	rhs := t.laneRHS[:n*laneRHSStride]
	L := len(lhx)

	g1 := t.prep.G1
	gw, gh := g1.Ni.W, g1.Ni.H
	niD, njD, nkD := g1.Ni.Data, g1.Nj.Data, g1.Nk.Data

	// Per-lane hoists, mirroring scoreHyp: the semi-fluid hypothesis index
	// and the interior-fast-path test depend only on the lane's (hx, hy).
	// smIdx[l] < 0 encodes "no semi-map lookup for this lane" (sm nil or
	// offset outside the precomputed window, matching Delta's δ = 0).
	var smIdx [la.BatchLanes]int
	var interior [la.BatchLanes]bool
	var smDX, smDY []int8
	var smW, smStride int
	if t.sm != nil {
		smDX, smDY = t.sm.DX, t.sm.DY
		smW = t.sm.W
		smStride = t.sm.hyps()
	}
	tmplIn := x-rx >= 0 && x+rx < t.prep.W && y-ry >= 0 && y+ry < t.prep.H
	for l := 0; l < L; l++ {
		hx, hy := lhx[l], lhy[l]
		smIdx[l] = -1
		margin := 0
		if t.sm != nil && hx >= -t.sm.RX && hx <= t.sm.RX && hy >= -t.sm.RY && hy <= t.sm.RY {
			smIdx[l] = t.sm.hypIndex(hx, hy)
			margin = t.sm.NSS
		}
		interior[l] = tmplIn &&
			x+hx-rx-margin >= 0 && x+hx+rx+margin < gw &&
			y+hy-ry-margin >= 0 && y+hy+ry+margin < gh
	}

	// Joint b-pass: one sweep over the template; the invariant slots are
	// loaded once per pixel and feed every lane. Within a lane the
	// accumulation order over pixels — and accumulateB's operation order
	// within a pixel — is exactly scoreHyp's.
	var bb la.Vec6Lanes
	k := 0
	r := 0
	for dy := -ry; dy <= ry; dy++ {
		py := y + dy
		for dx := -rx; dx <= rx; dx++ {
			px := x + dx
			pxIn := px >= 0 && px < t.prep.W && py >= 0 && py < t.prep.H
			zx := buf[k+bufZx]
			zy := buf[k+bufZy]
			scale := buf[k+bufScale]
			w0 := buf[k+bufW0]
			w1 := buf[k+bufW1]
			for l := 0; l < L; l++ {
				qx := px + lhx[l]
				qy := py + lhy[l]
				if smIdx[l] >= 0 && pxIn {
					i := (py*smW+px)*smStride + smIdx[l]
					qx += int(smDX[i])
					qy += int(smDY[i])
				}
				var ni, nj, nk float64
				if interior[l] {
					qi := qy*gw + qx
					ni = float64(niD[qi])
					nj = float64(njD[qi])
					nk = float64(nkD[qi])
				} else {
					ni, nj, nk = g1.NormalAt(qx, qy)
				}
				rhs0 := scale*ni + zx
				rhs1 := scale*nj + zy
				rhs2 := scale*nk - 1
				// accumulateB's operation order, one lane stripe per row.
				bb[2][l] += w0 * zy * rhs0
				bb[3][l] += w0 * -zx * rhs0
				bb[4][l] += w0 * -rhs0
				bb[0][l] += w1 * -zy * rhs1
				bb[1][l] += w1 * zx * rhs1
				bb[5][l] += w1 * -rhs1
				bb[0][l] += rhs2
				bb[3][l] += rhs2
				rhs[r+l] = rhs0
				rhs[r+la.BatchLanes+l] = rhs1
				rhs[r+2*la.BatchLanes+l] = rhs2
			}
			k += bufStride
			r += laneRHSStride
		}
	}

	thetas := t.mf.solveFactoredLanes(&bb, L)

	// Fold lanes into the incumbent in order. The bound each lane prunes
	// against is the incumbent AFTER its predecessors — the sequential
	// search's bound exactly — so pruned/accepted decisions, the winning
	// (hx, hy, ε, θ) and all tie-breaks are bit-identical to the scalar
	// loop.
	for l := 0; l < L; l++ {
		theta := thetas.Vec(l)
		if t.opt.Robust {
			t.copyLaneRHS(buf, rhs, l)
			theta = robustRefine(buf, theta, t.opt.HuberK)
		}
		bound := beps
		if t.noEarlyExit {
			bound = math.Inf(1)
		}
		var e float64
		var pruned bool
		switch {
		case t.opt.Robust && t.opt.Reassoc:
			e, pruned = residualSumBoundedReassoc(buf, &theta, bound)
		case t.opt.Robust:
			e, pruned = residualSumBounded(buf, &theta, bound)
		case t.opt.Reassoc:
			e, pruned = residualSumBoundedLaneReassoc(buf, rhs, l, &theta, bound)
		default:
			e, pruned = residualSumBoundedLane(buf, rhs, l, &theta, bound)
		}
		if !pruned && e < beps {
			beps = e
			bhx, bhy = lhx[l], lhy[l]
			btheta = theta
		}
	}
	return bhx, bhy, beps, btheta
}

// copyLaneRHS materializes lane l's right-hand sides into the scratch
// buffer's rhs slots, so the Huber refinement (which reads bufR0..bufR2)
// runs unchanged on the batch path. The stores are the same three values
// per pixel scoreHyp would have written.
func (t *tracker) copyLaneRHS(buf, rhs []float64, l int) {
	r := 0
	for k := 0; k < len(buf); k += bufStride {
		buf[k+bufR0] = rhs[r+l]
		buf[k+bufR1] = rhs[r+la.BatchLanes+l]
		buf[k+bufR2] = rhs[r+2*la.BatchLanes+l]
		r += laneRHSStride
	}
}

// rowResidualsLane is rowResiduals with the right-hand sides read from
// lane l of the structure-of-arrays scratch instead of the buffer's rhs
// slots. Same arithmetic, different loads.
func rowResidualsLane(buf, rhs []float64, k, r, l int, th *la.Vec6) (r0w, r1w, r2w float64) {
	zx := buf[k+bufZx]
	zy := buf[k+bufZy]
	l0 := zy*th[2] - zx*th[3] - th[4]
	l1 := -zy*th[0] + zx*th[1] - th[5]
	l2 := th[0] + th[3]
	r0 := rhs[r+l] - l0
	r1 := rhs[r+la.BatchLanes+l] - l1
	r2 := rhs[r+2*la.BatchLanes+l] - l2
	return buf[k+bufW0] * r0 * r0, buf[k+bufW1] * r1 * r1, r2 * r2
}

// residualSumBoundedLane is residualSumBounded reading lane l's rhs from
// the structure-of-arrays scratch: identical accumulation order, so an
// unpruned result is bit-identical to the scalar kernel's.
func residualSumBoundedLane(buf, rhs []float64, l int, th *la.Vec6, bound float64) (eps float64, pruned bool) {
	r := 0
	for k := 0; k < len(buf); k += bufStride {
		r0, r1, r2 := rowResidualsLane(buf, rhs, k, r, l, th)
		eps += r0 + r1 + r2
		if eps >= bound {
			return eps, true
		}
		r += laneRHSStride
	}
	return eps, false
}

// residualSumBoundedLaneReassoc is the lane-rhs form of the
// tolerance-checked reassociated sum (Options.Reassoc): identical
// reassociation pattern to residualSumBoundedReassoc, so both paths of
// the tolerance mode compute the same value.
func residualSumBoundedLaneReassoc(buf, rhs []float64, l int, th *la.Vec6, bound float64) (eps float64, pruned bool) {
	var s0, s1, s2, s3 float64
	k := 0
	r := 0
	for ; k+4*bufStride <= len(buf); k, r = k+4*bufStride, r+4*laneRHSStride {
		r0, r1, r2 := rowResidualsLane(buf, rhs, k, r, l, th)
		s0 += r0 + r1 + r2
		r0, r1, r2 = rowResidualsLane(buf, rhs, k+bufStride, r+laneRHSStride, l, th)
		s1 += r0 + r1 + r2
		r0, r1, r2 = rowResidualsLane(buf, rhs, k+2*bufStride, r+2*laneRHSStride, l, th)
		s2 += r0 + r1 + r2
		r0, r1, r2 = rowResidualsLane(buf, rhs, k+3*bufStride, r+3*laneRHSStride, l, th)
		s3 += r0 + r1 + r2
		if eps = ((s0 + s1) + s2) + s3; eps >= bound {
			return eps, true
		}
	}
	for ; k < len(buf); k, r = k+bufStride, r+laneRHSStride {
		r0, r1, r2 := rowResidualsLane(buf, rhs, k, r, l, th)
		s0 += r0 + r1 + r2
	}
	return ((s0 + s1) + s2) + s3, false
}

// solveFactoredLanes solves the first n lanes of bs against the stored
// factorization(s), mirroring solveFactored's branch structure: every
// lane is bit-identical to a scalar solveFactored of that lane's b.
func (mf *motionFactor) solveFactoredLanes(bs *la.Vec6Lanes, n int) la.Vec6Lanes {
	if mf.ok {
		return la.SolveFactored6Lanes(&mf.fac, bs, n)
	}
	if mf.ridgeOK {
		return la.SolveFactored6Lanes(&mf.ridge, bs, n)
	}
	return la.Vec6Lanes{}
}
