package core

import (
	"fmt"
	"math"
	"testing"

	"sma/internal/synth"
)

// The batch-kernel equivalence wall: every batch width and every tile
// shape must reproduce TrackPreparedReference bit for bit in exact mode.
// This file extends kernel_equiv_test.go's contract to the
// multi-hypothesis kernel (batch.go) and the pixel-tile parallel driver
// (tiles.go); run it under -race to also exercise the scheduler for data
// races (race_equiv_test.go does).

// batchWidths are the widths the wall pins: scalar fallback, partial
// batches, the power-of-two sweet spots, and the full lane count.
var batchWidths = []int{1, 2, 4, 8}

// TestBatchKernelMatchesReference runs the full raster search at every
// batch width across scenes × {continuous, semi-fluid} ×
// {least-squares, robust} and demands bit-identical flow, ε, and motion
// parameters against the retained naive kernel.
func TestBatchKernelMatchesReference(t *testing.T) {
	scenes := []struct {
		name  string
		frame func(w, h int, seed int64) *synth.Scene
	}{
		{"hurricane", synth.Hurricane},
		{"thunderstorm", synth.Thunderstorm},
	}
	for _, sc := range scenes {
		for _, semi := range []bool{false, true} {
			for _, robust := range []bool{false, true} {
				p := contParams()
				if semi {
					p = testParams()
				}
				s := sc.frame(20, 20, 137)
				prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), p)
				if err != nil {
					t.Fatal(err)
				}
				sm := BuildSemiMap(prep)
				ref := TrackPreparedReference(prep, sm, Options{Robust: robust, KeepMotion: true})
				for _, bw := range batchWidths {
					name := fmt.Sprintf("%s/semi=%v/robust=%v/batch=%d", sc.name, semi, robust, bw)
					t.Run(name, func(t *testing.T) {
						got := TrackPrepared(prep, sm, Options{Robust: robust, KeepMotion: true, BatchHyps: bw})
						if !got.Flow.Equal(ref.Flow) {
							t.Fatal("flow differs from reference kernel")
						}
						if !got.Err.Equal(ref.Err) {
							t.Fatal("ε differs from reference kernel")
						}
						for i := range ref.Motion {
							if !got.Motion[i].Equal(ref.Motion[i]) {
								t.Fatalf("motion grid %d differs from reference kernel", i)
							}
						}
					})
				}
			}
		}
	}
}

// TestBatchEarlyExitBitIdentical is TestEarlyExitBitIdentical for the
// batch path: per-lane incumbent bounds with the ε early exit on must
// reproduce the exhaustive (no-exit) sweep exactly at every width.
func TestBatchEarlyExitBitIdentical(t *testing.T) {
	for _, bw := range batchWidths {
		for _, semi := range []bool{false, true} {
			t.Run(fmt.Sprintf("batch=%d/semi=%v", bw, semi), func(t *testing.T) {
				p := contParams()
				if semi {
					p = testParams()
				}
				s := synth.Thunderstorm(18, 18, 44)
				prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), p)
				if err != nil {
					t.Fatal(err)
				}
				sm := BuildSemiMap(prep)
				opt := Options{BatchHyps: bw}
				on := newTracker(prep, sm, opt)
				off := newTracker(prep, sm, opt)
				off.noEarlyExit = true
				for y := 0; y < prep.H; y++ {
					for x := 0; x < prep.W; x++ {
						hx1, hy1, e1, th1 := on.trackPixelFrom(x, y, 0, 0)
						hx2, hy2, e2, th2 := off.trackPixelFrom(x, y, 0, 0)
						if hx1 != hx2 || hy1 != hy2 {
							t.Fatalf("(%d,%d): argmin (%d,%d) with exit, (%d,%d) without",
								x, y, hx1, hy1, hx2, hy2)
						}
						if math.Float64bits(e1) != math.Float64bits(e2) {
							t.Fatalf("(%d,%d): ε %v with exit, %v without", x, y, e1, e2)
						}
						if th1 != th2 {
							t.Fatalf("(%d,%d): θ differs: %v vs %v", x, y, th1, th2)
						}
					}
				}
			})
		}
	}
}

// TestTileParallelBitIdentical sweeps tile shapes × worker counts over
// the tile-scheduled parallel driver and demands the bits of the serial
// batch kernel — the scheduling layer must be invisible in the output.
func TestTileParallelBitIdentical(t *testing.T) {
	p := testParams()
	s := synth.Hurricane(22, 22, 93)
	prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), p)
	if err != nil {
		t.Fatal(err)
	}
	sm := BuildSemiMap(prep)
	want := TrackPrepared(prep, sm, Options{KeepMotion: true})
	tiles := []struct{ tw, th int }{
		{0, 0},   // chooseTileSize default
		{1, 1},   // degenerate: one pixel per tile
		{5, 3},   // non-square, non-divisor of 22
		{22, 1},  // row strips (the old fan-out shape)
		{64, 64}, // single tile larger than the image
	}
	for _, tl := range tiles {
		for _, workers := range []int{1, 2, 3, 8} {
			name := fmt.Sprintf("tile=%dx%d/workers=%d", tl.tw, tl.th, workers)
			t.Run(name, func(t *testing.T) {
				opt := Options{KeepMotion: true, TileW: tl.tw, TileH: tl.th}
				got := TrackPreparedParallel(prep, sm, opt, workers)
				if !got.Flow.Equal(want.Flow) {
					t.Fatal("flow differs from serial kernel")
				}
				if !got.Err.Equal(want.Err) {
					t.Fatal("ε differs from serial kernel")
				}
				for i := range want.Motion {
					if !got.Motion[i].Equal(want.Motion[i]) {
						t.Fatalf("motion grid %d differs from serial kernel", i)
					}
				}
			})
		}
	}
}

// TestBatchWidthClamped pins effectiveBatch's clamping: 0 means the full
// lane count, negatives and overwide requests clamp into [1, BatchLanes],
// and every clamped width still matches the reference (spot check).
func TestBatchWidthClamped(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 8}, {-3, 1}, {1, 1}, {5, 5}, {8, 8}, {9, 8}, {100, 8},
	}
	for _, c := range cases {
		if got := effectiveBatch(Options{BatchHyps: c.in}); got != c.want {
			t.Fatalf("effectiveBatch(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	s := synth.Hurricane(16, 16, 7)
	prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), contParams())
	if err != nil {
		t.Fatal(err)
	}
	ref := TrackPreparedReference(prep, nil, Options{})
	for _, bw := range []int{-1, 3, 100} {
		got := TrackPrepared(prep, nil, Options{BatchHyps: bw})
		if !got.Flow.Equal(ref.Flow) || !got.Err.Equal(ref.Err) {
			t.Fatalf("BatchHyps=%d: output differs from reference", bw)
		}
	}
}
