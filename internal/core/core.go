// Package core implements the paper's primary contribution: the Semi-fluid
// Motion Analysis (SMA) algorithm for dense non-rigid motion estimation on
// time-varying intensity and surface imagery.
//
// For every tracked pixel the algorithm evaluates a (2·NZS+1)² search
// neighborhood of correspondence hypotheses. Each hypothesis is scored by
// fitting the six local affine motion parameters {ai, bi, aj, bj, ak, bk}
// (paper eq. 6) that best explain the observed change of surface normals
// over a (2·NZT+1)² template — a 6×6 Gaussian elimination per hypothesis —
// and taking the minimized normal-residual error ε (eqs. 3–5). The
// hypothesis with the smallest ε wins.
//
// Under the continuous model Fcont the template moves as one patch; under
// the semi-fluid model Fsemi every template pixel first re-matches
// independently inside a small (2·NSS+1)² window by comparing local
// intensity-surface discriminants (eqs. 9–11), which relaxes the local
// continuity constraint and handles fluid and multi-layer cloud motion.
//
// Two drivers produce bit-identical motion fields: TrackSequential (the
// paper's correctness baseline) and TrackMasPar (the SIMD implementation
// on the simulated MasPar MP-2, with full communication and memory-
// segmentation cost accounting).
package core

import (
	"fmt"

	"sma/internal/grid"
)

// Params holds the neighborhood radii of the SMA algorithm. Window sizes
// in the paper are quoted as edge lengths (2·radius + 1).
type Params struct {
	// NS is the surface-fitting radius: quadratic patches use a
	// (2·NS+1)² neighborhood (paper: 5×5 → NS = 2).
	NS int
	// NZS is the z-search radius: hypotheses span (2·NZS+1)²
	// (Frederic: 13×13 → NZS = 6).
	NZS int
	// NZT is the z-template radius: the error sum runs over (2·NZT+1)²
	// pixels (Frederic: 121×121 → NZT = 60).
	NZT int
	// NST is the semi-fluid template radius: discriminant patches of
	// (2·NST+1)² pixels are compared (paper: 5×5 → NST = 2; §4.3 sets
	// NST = NS).
	NST int
	// NSS is the semi-fluid search radius: each template pixel re-matches
	// within (2·NSS+1)² (paper: 3×3 → NSS = 1). NSS = 0 reduces Fsemi to
	// the continuous mapping Fcont (paper §2.3).
	NSS int

	// Rectangular-window overrides (§2.2: "rectangular areas can also be
	// used and may lead to improved motion correspondence results"; §6
	// lists adaptive non-square windows as future work). A zero value
	// falls back to the square radius above.
	NZTX, NZTY int // template radii per axis (0 → NZT)
	NZSX, NZSY int // search radii per axis (0 → NZS)
}

// TemplateRX returns the effective template radius along x.
func (p Params) TemplateRX() int { return defaultRadius(p.NZTX, p.NZT) }

// TemplateRY returns the effective template radius along y.
func (p Params) TemplateRY() int { return defaultRadius(p.NZTY, p.NZT) }

// SearchRX returns the effective search radius along x.
func (p Params) SearchRX() int { return defaultRadius(p.NZSX, p.NZS) }

// SearchRY returns the effective search radius along y.
func (p Params) SearchRY() int { return defaultRadius(p.NZSY, p.NZS) }

func defaultRadius(override, base int) int {
	if override > 0 {
		return override
	}
	return base
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.NS < 1:
		return fmt.Errorf("core: NS = %d, need >= 1 for quadratic fitting", p.NS)
	case p.NZS < 1:
		return fmt.Errorf("core: NZS = %d, need >= 1", p.NZS)
	case p.NZT < 1:
		return fmt.Errorf("core: NZT = %d, need >= 1", p.NZT)
	case p.NSS < 0:
		return fmt.Errorf("core: NSS = %d, need >= 0", p.NSS)
	case p.NSS > 0 && p.NST < 1:
		return fmt.Errorf("core: NST = %d, need >= 1 when the semi-fluid model is enabled", p.NST)
	case p.NZTX < 0 || p.NZTY < 0 || p.NZSX < 0 || p.NZSY < 0:
		return fmt.Errorf("core: rectangular window overrides must be non-negative")
	}
	return nil
}

// SemiFluid reports whether the semi-fluid mapping Fsemi is active
// (NSS > 0); otherwise the continuous mapping Fcont is used.
func (p Params) SemiFluid() bool { return p.NSS > 0 }

// SearchWidth returns the search-window edge 2·NZS+1 (x-axis edge when a
// rectangular override is set).
func (p Params) SearchWidth() int { return 2*p.SearchRX() + 1 }

// TemplateWidth returns the template edge 2·NZT+1 (x-axis edge when a
// rectangular override is set).
func (p Params) TemplateWidth() int { return 2*p.TemplateRX() + 1 }

// TemplatePixels returns the template area in pixels.
func (p Params) TemplatePixels() int {
	return (2*p.TemplateRX() + 1) * (2*p.TemplateRY() + 1)
}

// Hypotheses returns the number of correspondence hypotheses per pixel —
// also the number of 6×6 Gaussian eliminations the motion solve performs
// per pixel (169 for the Frederic configuration).
func (p Params) Hypotheses() int {
	return (2*p.SearchRX() + 1) * (2*p.SearchRY() + 1)
}

// FredericParams returns Table 1 of the paper: the Hurricane Frederic
// stereo configuration (surface fit 5×5, z-search 13×13, z-template
// 121×121, semi-fluid template 5×5 with a 3×3 semi-fluid search).
func FredericParams() Params {
	return Params{NS: 2, NZS: 6, NZT: 60, NST: 2, NSS: 1}
}

// GOES9Params returns Table 3: the GOES-9 Florida thunderstorm
// configuration (search 15×15, template 15×15, surface patch 5×5) using
// the continuous model.
func GOES9Params() Params {
	return Params{NS: 2, NZS: 7, NZT: 7, NST: 2, NSS: 0}
}

// LuisParams returns the Hurricane Luis configuration of §5: continuous
// model with an 11×11 z-template and 9×9 z-search.
func LuisParams() Params {
	return Params{NS: 2, NZS: 4, NZT: 5, NST: 2, NSS: 0}
}

// ScaledParams returns a reduced configuration with the same structure as
// FredericParams for tests and laptop-scale experiments.
func ScaledParams() Params {
	return Params{NS: 2, NZS: 2, NZT: 4, NST: 2, NSS: 1}
}

// Pair is one timestep of tracking input: intensity and surface images at
// t and t+1. For monocular sequences the intensity data is "treated as a
// digital surface" (paper §2): pass the intensity images as Z0/Z1.
type Pair struct {
	I0, I1 *grid.Grid // left-view intensity at t and t+1
	Z0, Z1 *grid.Grid // surface (cloud-top height or digital surface)
	// Extra holds additional spectral channels (paper §6: "using
	// multispectral information"). The semi-fluid discriminant matching
	// sums patch differences across the primary intensity channel and all
	// extra channels; the surface model is unaffected.
	Extra []Channel
}

// Channel is one additional spectral band of a multispectral sequence.
type Channel struct {
	I0, I1 *grid.Grid
}

// Monocular builds a Pair from a single-satellite intensity sequence, with
// the intensity images standing in for the surfaces.
func Monocular(i0, i1 *grid.Grid) Pair { return Pair{I0: i0, I1: i1, Z0: i0, Z1: i1} }

// Validate checks presence and dimension agreement of all four images.
func (p Pair) Validate() error {
	if p.I0 == nil || p.I1 == nil || p.Z0 == nil || p.Z1 == nil {
		return fmt.Errorf("core: pair has nil images")
	}
	w, h := p.I0.W, p.I0.H
	for _, g := range []*grid.Grid{p.I1, p.Z0, p.Z1} {
		if g.W != w || g.H != h {
			return fmt.Errorf("core: pair image sizes differ: %dx%d vs %dx%d", w, h, g.W, g.H)
		}
	}
	for i, c := range p.Extra {
		if c.I0 == nil || c.I1 == nil {
			return fmt.Errorf("core: extra channel %d has nil images", i)
		}
		if c.I0.W != w || c.I0.H != h || c.I1.W != w || c.I1.H != h {
			return fmt.Errorf("core: extra channel %d size differs from primary", i)
		}
	}
	return nil
}

// Result is a dense tracking outcome.
type Result struct {
	// Flow holds the winning integer correspondence offset per pixel.
	Flow *grid.VectorField
	// Err holds the minimized residual ε of the winning hypothesis.
	Err *grid.Grid
	// Motion optionally holds the six fitted affine motion parameters of
	// the winning hypothesis per pixel (nil unless requested).
	Motion []*grid.Grid
}
