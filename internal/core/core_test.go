package core

import (
	"math"
	"math/rand"
	"testing"

	"sma/internal/grid"
	"sma/internal/la"
	"sma/internal/synth"
)

// testParams is a laptop-scale Frederic-like configuration.
func testParams() Params { return Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 1} }

// contParams is the continuous-model variant.
func contParams() Params { return Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 0} }

func translationScene(w, h int, seed int64, u, v float64) *synth.Scene {
	return &synth.Scene{W: w, H: h, Flow: synth.Uniform{U: u, V: v},
		Tex: synth.Hurricane(w, h, seed).Tex}
}

// --- Params ------------------------------------------------------------------

func TestParamsValidate(t *testing.T) {
	cases := []Params{
		{NS: 0, NZS: 1, NZT: 1},
		{NS: 1, NZS: 0, NZT: 1},
		{NS: 1, NZS: 1, NZT: 0},
		{NS: 1, NZS: 1, NZT: 1, NSS: -1},
		{NS: 1, NZS: 1, NZT: 1, NSS: 1, NST: 0},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v) passed validation", i, p)
		}
	}
	if err := testParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFredericParamsMatchTable1(t *testing.T) {
	p := FredericParams()
	if w := 2*p.NS + 1; w != 5 {
		t.Errorf("surface-fit window %d, want 5", w)
	}
	if w := p.SearchWidth(); w != 13 {
		t.Errorf("z-search window %d, want 13", w)
	}
	if w := p.TemplateWidth(); w != 121 {
		t.Errorf("z-template window %d, want 121", w)
	}
	if w := 2*p.NST + 1; w != 5 {
		t.Errorf("semi-fluid template window %d, want 5", w)
	}
	// "13×13 = 169 Gaussian-eliminations are performed to solve for the
	// motion parameters".
	if h := p.Hypotheses(); h != 169 {
		t.Errorf("hypotheses = %d, want 169", h)
	}
	if !p.SemiFluid() {
		t.Error("Frederic configuration must use the semi-fluid model")
	}
}

func TestGOES9ParamsMatchTable3(t *testing.T) {
	p := GOES9Params()
	if p.SearchWidth() != 15 || p.TemplateWidth() != 15 || 2*p.NS+1 != 5 {
		t.Fatalf("GOES-9 windows %d/%d/%d, want 15/15/5",
			p.SearchWidth(), p.TemplateWidth(), 2*p.NS+1)
	}
	if p.SemiFluid() {
		t.Fatal("GOES-9 run uses the continuous model")
	}
}

func TestLuisParams(t *testing.T) {
	p := LuisParams()
	if p.TemplateWidth() != 11 || p.SearchWidth() != 9 || p.SemiFluid() {
		t.Fatalf("Luis params %+v, want 11×11 template, 9×9 search, continuous", p)
	}
}

func TestPairValidate(t *testing.T) {
	g := grid.New(8, 8)
	if err := (Pair{I0: g, I1: g, Z0: g}).Validate(); err == nil {
		t.Fatal("nil Z1 accepted")
	}
	if err := (Pair{I0: g, I1: grid.New(9, 8), Z0: g, Z1: g}).Validate(); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if err := Monocular(g, g.Clone()).Validate(); err != nil {
		t.Fatal(err)
	}
}

// --- Prepare -----------------------------------------------------------------

func TestPrepareSharesMonocularDiscriminant(t *testing.T) {
	g0 := translationScene(16, 16, 1, 0, 0).Frame(0)
	g1 := g0.Clone()
	prep, err := Prepare(Monocular(g0, g1), testParams())
	if err != nil {
		t.Fatal(err)
	}
	if prep.D0 != prep.G0.D || prep.D1 != prep.G1.D {
		t.Fatal("monocular prepare should reuse the surface discriminant")
	}
	if FitPasses(Monocular(g0, g1), testParams()) != 2 {
		t.Fatal("monocular semi-fluid should need 2 fit passes")
	}
}

func TestPrepareStereoUsesFourPasses(t *testing.T) {
	s := translationScene(16, 16, 2, 1, 0)
	i0, i1 := s.Frame(0), s.Frame(1)
	z0, z1 := s.Height(i0), s.Height(i1)
	pair := Pair{I0: i0, I1: i1, Z0: z0, Z1: z1}
	if FitPasses(pair, testParams()) != 4 {
		t.Fatal("stereo semi-fluid should need 4 fit passes")
	}
	prep, err := Prepare(pair, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if prep.D0 == prep.G0.D {
		t.Fatal("stereo prepare must fit the intensity image separately")
	}
}

func TestPrepareContinuousSkipsDiscriminant(t *testing.T) {
	g := translationScene(16, 16, 3, 0, 0).Frame(0)
	prep, err := Prepare(Monocular(g, g.Clone()), contParams())
	if err != nil {
		t.Fatal(err)
	}
	if prep.D0 != nil || prep.D1 != nil {
		t.Fatal("continuous model should not compute discriminants")
	}
}

func TestPrepareRejectsBadInput(t *testing.T) {
	g := grid.New(8, 8)
	if _, err := Prepare(Pair{}, testParams()); err == nil {
		t.Fatal("empty pair accepted")
	}
	bad := testParams()
	bad.NS = 0
	if _, err := Prepare(Monocular(g, g), bad); err == nil {
		t.Fatal("invalid params accepted")
	}
}

// --- SemiMap -----------------------------------------------------------------

func TestBuildSemiMapNilForContinuous(t *testing.T) {
	g := translationScene(16, 16, 4, 0, 0).Frame(0)
	prep, err := Prepare(Monocular(g, g.Clone()), contParams())
	if err != nil {
		t.Fatal(err)
	}
	if sm := BuildSemiMap(prep); sm != nil {
		t.Fatal("continuous model produced a semi-map")
	}
}

func TestSemiMapZeroForExactHypothesis(t *testing.T) {
	// With pure translation (2, 1), the hypothesis h = (2, 1) aligns
	// discriminant patches exactly, so δ must be 0 for interior pixels.
	s := translationScene(24, 24, 5, 2, 1)
	prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), testParams())
	if err != nil {
		t.Fatal(err)
	}
	sm := BuildSemiMap(prep)
	for y := 8; y < 16; y++ {
		for x := 8; x < 16; x++ {
			dx, dy := sm.Delta(x, y, 2, 1)
			if dx != 0 || dy != 0 {
				t.Fatalf("δ(%d,%d; 2,1) = (%d,%d), want (0,0)", x, y, dx, dy)
			}
		}
	}
}

func TestSemiMapCorrectsOffByOneHypothesis(t *testing.T) {
	// Under hypothesis (1, 1) for true motion (2, 1), the best semi-fluid
	// adjustment within ±1 is δ = (1, 0) for well-textured pixels.
	s := translationScene(24, 24, 6, 2, 1)
	prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), testParams())
	if err != nil {
		t.Fatal(err)
	}
	sm := BuildSemiMap(prep)
	good, tot := 0, 0
	for y := 8; y < 16; y++ {
		for x := 8; x < 16; x++ {
			dx, dy := sm.Delta(x, y, 1, 1)
			tot++
			if dx == 1 && dy == 0 {
				good++
			}
		}
	}
	if good*2 < tot {
		t.Fatalf("only %d/%d pixels corrected the off-by-one hypothesis", good, tot)
	}
}

func TestSemiMapDeltaBounds(t *testing.T) {
	s := synth.Thunderstorm(20, 20, 7)
	prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), testParams())
	if err != nil {
		t.Fatal(err)
	}
	sm := BuildSemiMap(prep)
	for _, d := range sm.DX {
		if int(d) < -1 || int(d) > 1 {
			t.Fatalf("δx = %d outside ±NSS", d)
		}
	}
	for _, d := range sm.DY {
		if int(d) < -1 || int(d) > 1 {
			t.Fatalf("δy = %d outside ±NSS", d)
		}
	}
}

// --- Tracking accuracy ---------------------------------------------------------

func TestTranslationRecoveredExactly(t *testing.T) {
	s := translationScene(32, 32, 8, 2, 1)
	res, err := TrackSequential(Monocular(s.Frame(0), s.Frame(1)), contParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for y := 8; y < 24; y++ {
		for x := 8; x < 24; x++ {
			u, v := res.Flow.At(x, y)
			if u != 2 || v != 1 {
				t.Fatalf("flow(%d,%d) = (%v,%v), want (2,1)", x, y, u, v)
			}
		}
	}
}

func TestZeroMotionGivesZeroFlowAndError(t *testing.T) {
	g := translationScene(24, 24, 9, 0, 0).Frame(0)
	res, err := TrackSequential(Monocular(g, g.Clone()), contParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 24; y++ {
		for x := 0; x < 24; x++ {
			u, v := res.Flow.At(x, y)
			if u != 0 || v != 0 {
				t.Fatalf("flow(%d,%d) = (%v,%v) on identical frames", x, y, u, v)
			}
		}
	}
	if _, max := res.Err.MinMax(); max > 1e-6 {
		t.Fatalf("nonzero ε %v on identical frames", max)
	}
}

func TestVortexFlowWithinOnePixelRMSE(t *testing.T) {
	// The paper's accuracy claim: RMSE < 1 pixel against the (manual barb)
	// reference. Integer correspondences quantize, so sub-pixel truth
	// costs up to ~0.5 px/axis; the interior RMSE must stay below 1 px.
	s := synth.Hurricane(48, 48, 10)
	f0, f1 := s.Frame(0), s.Frame(1)
	res, err := TrackSequential(Monocular(f0, f1), testParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth := s.Truth(1)
	var pts []grid.Point
	for _, p := range synth.Barbs(f0, 32, 8, 3) {
		pts = append(pts, p)
	}
	if rmse := res.Flow.RMSEAt(truth, pts); rmse >= 1.0 {
		t.Fatalf("barb RMSE = %v px, want < 1 (paper's accuracy bound)", rmse)
	}
}

// correctCount counts interior pixels whose integer flow matches truth.
func correctCount(f, truth *grid.VectorField, lo, hi int) (correct, total int) {
	for y := lo; y < hi; y++ {
		for x := lo; x < hi; x++ {
			u, v := f.At(x, y)
			tu, tv := truth.At(x, y)
			total++
			if u == tu && v == tv {
				correct++
			}
		}
	}
	return correct, total
}

// tilePair builds a "fluid" scene: every tile×tile block moves with its
// own displacement (base (1,0) plus jitter in {−1,0,1}²) — sub-template-
// scale incoherent motion, the regime the semi-fluid model is built for.
func tilePair(w, h, tile int, seed int64) (Pair, *grid.VectorField) {
	n := synth.NewNoise(seed)
	tex := func(x, y float64) float64 { return n.Octaves(x/6, y/6, 4, 0.5) }
	f0 := grid.New(w, h)
	f0.ApplyXY(func(x, y int, _ float32) float32 {
		return float32(255 * tex(float64(x), float64(y)))
	})
	rng := rand.New(rand.NewSource(seed))
	tilesX := (w + tile - 1) / tile
	tilesY := (h + tile - 1) / tile
	du := make([]int, tilesX*tilesY)
	dv := make([]int, tilesX*tilesY)
	for i := range du {
		du[i] = 1 + rng.Intn(3) - 1
		dv[i] = rng.Intn(3) - 1
	}
	f1 := grid.New(w, h)
	truth := grid.NewVectorField(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ti := (y/tile)*tilesX + x/tile
			f1.Set(x, y, float32(255*tex(float64(x-du[ti]), float64(y-dv[ti]))))
			truth.Set(x, y, float32(du[ti]), float32(dv[ti]))
		}
	}
	return Monocular(f0, f1), truth
}

func TestSemiFluidBeatsContinuousOnFluidMotion(t *testing.T) {
	// On sub-template-scale incoherent ("fluid") motion the per-pixel
	// re-matching of Fsemi recovers substantially more exact
	// correspondences than the continuous model, whose single affine
	// patch must compromise across tiles.
	pair, truth := tilePair(40, 40, 4, 99)
	cont, err := TrackSequential(pair, contParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	semi, err := TrackSequential(pair, testParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cc, tot := correctCount(cont.Flow, truth, 8, 32)
	sc, _ := correctCount(semi.Flow, truth, 8, 32)
	if float64(sc) < 1.15*float64(cc) {
		t.Fatalf("semi-fluid correct %d/%d not >= 1.15× continuous %d/%d", sc, tot, cc, tot)
	}
	// And with the paper's suggested median post-filter, the semi-fluid
	// RMSE is at least as good too.
	se := semi.Flow.Median3().RMSE(truth)
	ce := cont.Flow.Median3().RMSE(truth)
	if se > ce*1.02 {
		t.Fatalf("median-filtered semi-fluid RMSE %v worse than continuous %v", se, ce)
	}
}

func TestSemiFluidBeatsContinuousOnMultiLayer(t *testing.T) {
	// The motivating case for Fsemi: a broken upper deck over a lower
	// deck moving differently. The semi-fluid mapping lets contaminated
	// template pixels re-match toward their own layer's motion, raising
	// the exact-correspondence rate.
	ml := synth.NewMultiLayer(40, 40, 11)
	ml.Upper.Flow = synth.Uniform{U: 2, V: 0}
	ml.Lower.Flow = synth.Uniform{U: -1, V: -1}
	pair := Monocular(ml.Frame(0), ml.Frame(1))
	truth := ml.Truth(0, 1)

	cont, err := TrackSequential(pair, contParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	semi, err := TrackSequential(pair, testParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cc, tot := correctCount(cont.Flow, truth, 8, 32)
	sc, _ := correctCount(semi.Flow, truth, 8, 32)
	if sc <= cc {
		t.Fatalf("semi-fluid correct %d/%d not above continuous %d/%d", sc, tot, cc, tot)
	}
}

func TestStereoPipelineTracksHeights(t *testing.T) {
	// Full pipeline shape: heights from the scene act as z-surfaces while
	// intensity drives the semi-fluid mapping, as in the Frederic run.
	s := translationScene(32, 32, 12, 1, 2)
	i0, i1 := s.Frame(0), s.Frame(1)
	pair := Pair{I0: i0, I1: i1, Z0: s.Height(i0), Z1: s.Height(i1)}
	res, err := TrackSequential(pair, testParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	good, tot := 0, 0
	for y := 8; y < 24; y++ {
		for x := 8; x < 24; x++ {
			u, v := res.Flow.At(x, y)
			tot++
			if u == 1 && v == 2 {
				good++
			}
		}
	}
	if good*10 < tot*8 {
		t.Fatalf("stereo pipeline recovered only %d/%d pixels", good, tot)
	}
}

func TestKeepMotionParamsNearZeroForPureTranslation(t *testing.T) {
	// Pure translation has no deformation: the fitted affine parameters at
	// the winning hypothesis must be ≈ 0.
	s := translationScene(28, 28, 13, 1, 0)
	res, err := TrackSequential(Monocular(s.Frame(0), s.Frame(1)), contParams(), Options{KeepMotion: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Motion == nil {
		t.Fatal("KeepMotion did not populate Motion")
	}
	for i, g := range res.Motion {
		v := math.Abs(float64(g.At(14, 14)))
		if v > 0.05 {
			t.Fatalf("motion parameter %d = %v at center, want ≈0", i, v)
		}
	}
}

func TestTrackPixelsMatchesDense(t *testing.T) {
	s := synth.Thunderstorm(28, 28, 14)
	prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), testParams())
	if err != nil {
		t.Fatal(err)
	}
	sm := BuildSemiMap(prep)
	dense := TrackPrepared(prep, sm, Options{})
	pts := []grid.Point{{X: 10, Y: 10}, {X: 14, Y: 17}, {X: 20, Y: 8}}
	sparse := TrackPixels(prep, sm, Options{}, pts)
	for i, p := range pts {
		u, v := dense.Flow.At(p.X, p.Y)
		if float64(u) != sparse[i][0] || float64(v) != sparse[i][1] {
			t.Fatalf("sparse/dense mismatch at %v: (%v,%v) vs (%v,%v)",
				p, sparse[i][0], sparse[i][1], u, v)
		}
	}
}

func TestRobustRefineDownweightsOutliers(t *testing.T) {
	// White-box: buffered observations generated from a known parameter
	// vector θ*, with 10% gross outliers. The Huber-reweighted solve must
	// land closer to θ* than the plain least-squares solution it refines.
	rng := rand.New(rand.NewSource(77))
	thetaStar := la.Vec6{0.02, -0.01, 0.03, 0.01, -0.02, 0.015}
	const n = 200
	buf := make([]float64, n*bufStride)
	var a la.Mat6
	var b la.Vec6
	for i := 0; i < n; i++ {
		zx := rng.NormFloat64()
		zy := rng.NormFloat64()
		// rhs = L·θ* per row (no noise), then corrupt some entries.
		r0 := zy*thetaStar[2] - zx*thetaStar[3] - thetaStar[4]
		r1 := -zy*thetaStar[0] + zx*thetaStar[1] - thetaStar[5]
		r2 := thetaStar[0] + thetaStar[3]
		if i%10 == 0 {
			r0 += 5 // gross outlier
			r1 -= 3
		}
		k := i * bufStride
		buf[k+bufZx] = zx
		buf[k+bufZy] = zy
		buf[k+bufR0] = r0
		buf[k+bufR1] = r1
		buf[k+bufR2] = r2
		buf[k+bufW0] = 1
		buf[k+bufW1] = 1
		accumulateA(&a, zx, zy, 1, 1)
		accumulateB(&b, zx, zy, r0, r1, r2, 1, 1)
	}
	symmetrize(&a)
	plain := solveMotion(&a, &b)
	robust := robustRefine(buf, plain, 1.5)
	dist := func(th la.Vec6) float64 {
		var s float64
		for i := range th {
			d := th[i] - thetaStar[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	if dist(robust) >= dist(plain) {
		t.Fatalf("robust ‖θ−θ*‖ = %v not below plain %v", dist(robust), dist(plain))
	}
}

func TestRobustTrackingNonInferior(t *testing.T) {
	// End-to-end non-inferiority: on a clean scene the robust option must
	// stay exactly correct, and under impulse corruption (which
	// contaminates most templates through the surface fit, hurting every
	// estimator) it must stay within 10% of the plain solve.
	s := translationScene(32, 32, 15, 2, 0)
	f0 := s.Frame(0)
	clean := s.Frame(1)

	cleanRobust, err := TrackSequential(Monocular(f0, clean), contParams(), Options{Robust: true})
	if err != nil {
		t.Fatal(err)
	}
	good, tot := 0, 0
	for y := 10; y < 22; y++ {
		for x := 10; x < 22; x++ {
			u, v := cleanRobust.Flow.At(x, y)
			tot++
			if u == 2 && v == 0 {
				good++
			}
		}
	}
	if good != tot {
		t.Fatalf("clean-scene robust tracking correct on only %d/%d", good, tot)
	}

	dirty := clean.Clone()
	for i, p := range []grid.Point{{X: 12, Y: 12}, {X: 18, Y: 15}, {X: 15, Y: 20}} {
		dirty.Set(p.X, p.Y, float32(255*(i%2)))
	}
	count := func(opt Options) int {
		res, err := TrackSequential(Monocular(f0, dirty), contParams(), opt)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for y := 10; y < 22; y++ {
			for x := 10; x < 22; x++ {
				u, v := res.Flow.At(x, y)
				if u == 2 && v == 0 {
					n++
				}
			}
		}
		return n
	}
	plain := count(Options{})
	robust := count(Options{Robust: true})
	if float64(robust) < 0.9*float64(plain) {
		t.Fatalf("robust correct count %d below 90%% of plain %d", robust, plain)
	}
}

func TestTrackingDeterministic(t *testing.T) {
	s := synth.Thunderstorm(24, 24, 16)
	pair := Monocular(s.Frame(0), s.Frame(1))
	a, err := TrackSequential(pair, testParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrackSequential(pair, testParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Flow.Equal(b.Flow) || !a.Err.Equal(b.Err) {
		t.Fatal("sequential tracking not deterministic")
	}
}

// --- OpCounts ------------------------------------------------------------------

func TestCountOpsFredericInventory(t *testing.T) {
	oc := CountOps(FredericParams(), 4)
	if oc.HypGauss != 169 {
		t.Fatalf("HypGauss = %d, want 169 per pixel", oc.HypGauss)
	}
	// "169 error terms are evaluated ... each error term sums 121×121 =
	// 14641 terms".
	if oc.TemplateFetch != 169*14641 {
		t.Fatalf("TemplateFetch = %d, want 169·14641", oc.TemplateFetch)
	}
	// "9 error terms ... 25 parameters each" per semi-fluid mapping.
	if oc.SemiMapFlops != 169*9*25*24 {
		t.Fatalf("SemiMapFlops = %d", oc.SemiMapFlops)
	}
}

func TestCountOpsContinuousHasNoSemiMap(t *testing.T) {
	oc := CountOps(GOES9Params(), 2)
	if oc.SemiMapFlops != 0 {
		t.Fatalf("continuous model charged %d semi-map flops", oc.SemiMapFlops)
	}
}
