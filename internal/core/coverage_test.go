package core

import (
	"math"
	"testing"

	"sma/internal/grid"
	"sma/internal/la"
	"sma/internal/maspar"
	"sma/internal/synth"
)

// --- Solver fallback paths ----------------------------------------------------

func TestSolveMotionRidgeFallback(t *testing.T) {
	// A rank-deficient system (flat surface: only rows touching {0,3,4,5}
	// have support) must not blow up: the ridge fallback yields finite θ.
	var a la.Mat6
	var b la.Vec6
	// Accumulate flat-surface rows: zx = zy = 0.
	accumulateA(&a, 0, 0, 1, 1)
	accumulateB(&b, 0, 0, 0.1, -0.1, 0.05, 1, 1)
	symmetrize(&a)
	theta := solveMotion(&a, &b)
	for i, v := range theta {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("theta[%d] = %v", i, v)
		}
	}
}

func TestSolveMotionZeroSystem(t *testing.T) {
	var a la.Mat6
	var b la.Vec6
	theta := solveMotion(&a, &b)
	for i, v := range theta {
		if v != 0 {
			t.Fatalf("zero system produced theta[%d] = %v", i, v)
		}
	}
}

// --- Option paths ----------------------------------------------------------------

func TestRobustWithCustomHuberK(t *testing.T) {
	s := synth.Thunderstorm(20, 20, 121)
	pair := Monocular(s.Frame(0), s.Frame(1))
	a, err := TrackSequential(pair, contParams(), Options{Robust: true, HuberK: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrackSequential(pair, contParams(), Options{Robust: true, HuberK: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Different thresholds are at least both valid fields; determinism per
	// configuration is separately guaranteed.
	if a.Flow == nil || b.Flow == nil {
		t.Fatal("robust tracking returned nil flow")
	}
}

func TestPyramidKeepMotion(t *testing.T) {
	s := synth.Hurricane(32, 32, 123)
	pair := Monocular(s.Frame(0), s.Frame(1))
	res, err := TrackPyramid(pair, contParams(), 2, Options{KeepMotion: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Motion) != 6 {
		t.Fatalf("pyramid KeepMotion produced %d grids", len(res.Motion))
	}
}

func TestTrackGuidedNilPriorMatchesSequential(t *testing.T) {
	s := synth.Thunderstorm(24, 24, 125)
	pair := Monocular(s.Frame(0), s.Frame(1))
	a, err := TrackSequential(pair, contParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrackGuided(pair, contParams(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Flow.Equal(b.Flow) {
		t.Fatal("nil-prior guided tracking differs from sequential")
	}
}

func TestTrackGuidedRejectsMismatchedPrior(t *testing.T) {
	s := synth.Thunderstorm(16, 16, 127)
	pair := Monocular(s.Frame(0), s.Frame(1))
	if _, err := TrackGuided(pair, contParams(), grid.NewVectorField(8, 8), Options{}); err == nil {
		t.Fatal("mismatched prior accepted")
	}
}

// --- ScoreOnce and sparse tracking ------------------------------------------------

func TestScoreOnceZeroForIdenticalFrames(t *testing.T) {
	s := synth.Hurricane(24, 24, 129)
	f := s.Frame(0)
	prep, err := Prepare(Monocular(f, f.Clone()), contParams())
	if err != nil {
		t.Fatal(err)
	}
	if eps := ScoreOnce(prep, 12, 12); eps > 1e-9 {
		t.Fatalf("identical frames ε = %v", eps)
	}
}

func TestTrackPixelsEmptyList(t *testing.T) {
	s := synth.Thunderstorm(16, 16, 131)
	prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), contParams())
	if err != nil {
		t.Fatal(err)
	}
	if out := TrackPixels(prep, nil, Options{}, nil); len(out) != 0 {
		t.Fatalf("empty point list produced %d results", len(out))
	}
}

// --- ModelRun standalone -----------------------------------------------------------

func TestModelRunRejectsInvalidParams(t *testing.T) {
	m := maspar.MustNew(maspar.ScaledConfig(4, 4))
	if _, _, err := ModelRun(m, 64, 64, Params{}, 2, maspar.RasterReadout); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestModelRunSemiFluidSlowerThanContinuous(t *testing.T) {
	mc := maspar.MustNew(maspar.DefaultConfig())
	stC, _, err := ModelRun(mc, 512, 512, Params{NS: 2, NZS: 6, NZT: 60}, 4, maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	ms := maspar.MustNew(maspar.DefaultConfig())
	stS, _, err := ModelRun(ms, 512, 512, FredericParams(), 4, maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	if stS.Total() <= stC.Total() {
		t.Fatalf("semi-fluid model %v not above continuous %v (extra mapping stage)",
			stS.Total(), stC.Total())
	}
	if stS.HypMatch != stC.HypMatch {
		t.Fatal("hypothesis-matching stage should be identical for equal windows")
	}
}

// --- CountOps rectangular consistency ----------------------------------------------

func TestCountOpsRectangular(t *testing.T) {
	square := Params{NS: 2, NZS: 2, NZT: 3}
	rect := Params{NS: 2, NZS: 2, NZT: 3, NZSX: 4, NZSY: 1}
	ocS := CountOps(square, 2)
	ocR := CountOps(rect, 2)
	if ocR.HypGauss != 9*3 {
		t.Fatalf("rect HypGauss = %d, want 27", ocR.HypGauss)
	}
	if ocS.HypGauss != 25 {
		t.Fatalf("square HypGauss = %d, want 25", ocS.HypGauss)
	}
	if ocR.HypFlops <= ocS.HypFlops {
		t.Fatal("9×3 search should cost more than 5×5")
	}
}
