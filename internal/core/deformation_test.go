package core

import (
	"math"
	"testing"

	"sma/internal/synth"
)

// These tests validate the SEMANTICS of the six fitted motion parameters
// {ai, bi, aj, bj, ak, bk} (paper eq. 6): for known analytic deformations
// the recovered first-order parameters must match the flow's Jacobian.
//
// x′ = x + (ai·x + bi·y + x0) etc., so for a displacement field d(x, y),
// ai ≈ ∂dx/∂x, bi ≈ ∂dx/∂y, aj ≈ ∂dy/∂x, bj ≈ ∂dy/∂y.

// TestRotationRecoveredInMotionParams: solid-body rotation with angular
// velocity ω has Jacobian [[0, −ω], [ω, 0]]: bi ≈ −ω, aj ≈ ω, ai ≈ bj ≈ 0.
func TestRotationRecoveredInMotionParams(t *testing.T) {
	const omega = 0.08 // rad/frame
	size := 48
	// A Vortex with r ≤ RMax has speed = VMax·r/RMax = ω·r: solid-body
	// rotation inside the core. Keep RMax beyond the tracked region.
	s := &synth.Scene{
		W: size, H: size,
		Flow: synth.Vortex{CX: float64(size) / 2, CY: float64(size) / 2,
			RMax: float64(size), VMax: omega * float64(size)},
		Tex: synth.Hurricane(size, size, 91).Tex,
	}
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := Params{NS: 2, NZS: 2, NZT: 4}
	res, err := TrackSequential(pair, p, Options{KeepMotion: true})
	if err != nil {
		t.Fatal(err)
	}
	// Average the fitted parameters over a central block (individual
	// pixels are noisy; the Jacobian is global here).
	var ai, bi, aj, bj float64
	n := 0
	for y := size/2 - 6; y <= size/2+6; y += 2 {
		for x := size/2 - 6; x <= size/2+6; x += 2 {
			ai += float64(res.Motion[0].At(x, y))
			bi += float64(res.Motion[1].At(x, y))
			aj += float64(res.Motion[2].At(x, y))
			bj += float64(res.Motion[3].At(x, y))
			n++
		}
	}
	ai /= float64(n)
	bi /= float64(n)
	aj /= float64(n)
	bj /= float64(n)
	// The synthetic vortex is counterclockwise in math coords; in image
	// coords (y down) the velocity is (u, v) = (−ω·dy, ω·dx) with
	// dy measured downward, so ∂u/∂y = −ω and ∂v/∂x = ω.
	tol := omega * 0.5
	if math.Abs(bi-(-omega)) > tol {
		t.Fatalf("bi = %v, want ≈ %v (−ω)", bi, -omega)
	}
	if math.Abs(aj-omega) > tol {
		t.Fatalf("aj = %v, want ≈ %v (ω)", aj, omega)
	}
	if math.Abs(ai) > tol || math.Abs(bj) > tol {
		t.Fatalf("diagonal terms ai=%v bj=%v, want ≈ 0", ai, bj)
	}
	// And rotation dominates divergence.
	curl := aj - bi // ≈ 2ω
	div := ai + bj
	if math.Abs(curl-2*omega) > 2*tol || math.Abs(div) > math.Abs(curl)/2 {
		t.Fatalf("curl=%v (want ≈%v), div=%v", curl, 2*omega, div)
	}
}

// TestDivergenceRecoveredInMotionParams: a radial outflow d = κ·(dx, dy)
// has Jacobian κ·I, so the fitted ai and bj must be positive and
// proportional to κ, with negligible curl.
//
// Unlike rotation, divergence is systematically attenuated by roughly ½
// under the continuous template mapping: the mapping pairs template pixel
// p with p+h, but an expansion actually sends p's material to
// c + (1+κ)(p−c), so the observed normal is sampled a distance
// κ·(p−c) away from the true partner. A first-order (integration by
// parts) analysis of the least-squares projection gives an expected
// recovery factor of about (1 − ½) = ½; rotation escapes this because
// its positional error is orthogonal to the slope gradient on average.
// The test therefore asserts sign, proportionality and the curl/div
// separation rather than exact magnitude.
func TestDivergenceRecoveredInMotionParams(t *testing.T) {
	const kappa = 0.06
	size := 48
	noise := synth.NewNoise(93)
	s := &synth.Scene{
		W: size, H: size,
		Flow: radialFlow{cx: float64(size) / 2, cy: float64(size) / 2, k: kappa},
		Tex:  func(x, y float64) float64 { return noise.Octaves(x/25, y/25, 3, 0.5) },
	}
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := Params{NS: 2, NZS: 2, NZT: 4}
	res, err := TrackSequential(pair, p, Options{KeepMotion: true})
	if err != nil {
		t.Fatal(err)
	}
	var ai, bi, aj, bj float64
	n := 0
	for y := size/2 - 6; y <= size/2+6; y += 2 {
		for x := size/2 - 6; x <= size/2+6; x += 2 {
			ai += float64(res.Motion[0].At(x, y))
			bi += float64(res.Motion[1].At(x, y))
			aj += float64(res.Motion[2].At(x, y))
			bj += float64(res.Motion[3].At(x, y))
			n++
		}
	}
	ai /= float64(n)
	bi /= float64(n)
	aj /= float64(n)
	bj /= float64(n)
	if ai <= 0 || bj <= 0 {
		t.Fatalf("ai=%v bj=%v, want positive (expansion)", ai, bj)
	}
	div := ai + bj
	curl := aj - bi
	// Attenuated recovery: between 25% and 120% of the true 2κ.
	if div < 0.25*2*kappa || div > 1.2*2*kappa {
		t.Fatalf("div=%v outside the attenuated-recovery band around %v", div, 2*kappa)
	}
	if math.Abs(curl) > div {
		t.Fatalf("spurious curl %v exceeds recovered div %v", curl, div)
	}
}

// radialFlow is a pure expansion: d(x, y) = k·(x−cx, y−cy).
type radialFlow struct{ cx, cy, k float64 }

func (f radialFlow) Vel(x, y float64) (u, v float64) {
	return f.k * (x - f.cx), f.k * (y - f.cy)
}
