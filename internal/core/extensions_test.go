package core

import (
	"testing"

	"sma/internal/grid"
	"sma/internal/synth"
)

// --- Rectangular windows -------------------------------------------------------

func TestRectangularRadiiDefaults(t *testing.T) {
	p := Params{NS: 2, NZS: 3, NZT: 4}
	if p.SearchRX() != 3 || p.SearchRY() != 3 || p.TemplateRX() != 4 || p.TemplateRY() != 4 {
		t.Fatalf("square defaults broken: %d %d %d %d",
			p.SearchRX(), p.SearchRY(), p.TemplateRX(), p.TemplateRY())
	}
	p.NZSX = 5
	p.NZTY = 2
	if p.SearchRX() != 5 || p.SearchRY() != 3 || p.TemplateRX() != 4 || p.TemplateRY() != 2 {
		t.Fatalf("overrides broken: %d %d %d %d",
			p.SearchRX(), p.SearchRY(), p.TemplateRX(), p.TemplateRY())
	}
	if p.Hypotheses() != 11*7 {
		t.Fatalf("Hypotheses = %d, want 77", p.Hypotheses())
	}
	if p.TemplatePixels() != 9*5 {
		t.Fatalf("TemplatePixels = %d, want 45", p.TemplatePixels())
	}
}

func TestRectangularValidation(t *testing.T) {
	p := Params{NS: 2, NZS: 2, NZT: 3, NZSX: -1}
	if err := p.Validate(); err == nil {
		t.Fatal("negative rectangular override accepted")
	}
}

func TestRectangularSearchRecoversWideMotion(t *testing.T) {
	// Motion (4, 0): a square ±2 search misses it; a rectangular ±4×±1
	// search with fewer hypotheses than a ±4 square catches it.
	s := &synth.Scene{W: 40, H: 40, Flow: synth.Uniform{U: 4, V: 0},
		Tex: synth.Hurricane(40, 40, 31).Tex}
	pair := Monocular(s.Frame(0), s.Frame(1))

	square := Params{NS: 2, NZS: 2, NZT: 3}
	rect := Params{NS: 2, NZS: 2, NZT: 3, NZSX: 4, NZSY: 1}
	if rect.Hypotheses() >= 81 { // a ±4 square would cost 81
		t.Fatalf("rect hypotheses %d not cheaper than square ±4", rect.Hypotheses())
	}
	sq, err := TrackSequential(pair, square, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := TrackSequential(pair, rect, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sqGood, tot := 0, 0
	rcGood := 0
	for y := 10; y < 30; y++ {
		for x := 10; x < 30; x++ {
			tot++
			if u, v := sq.Flow.At(x, y); u == 4 && v == 0 {
				sqGood++
			}
			if u, v := rc.Flow.At(x, y); u == 4 && v == 0 {
				rcGood++
			}
		}
	}
	if sqGood > 0 {
		t.Fatalf("±2 square search recovered %d pixels of a 4-px motion", sqGood)
	}
	if rcGood*10 < tot*9 {
		t.Fatalf("rectangular search recovered only %d/%d", rcGood, tot)
	}
}

func TestRectangularTemplateMatchesSquareWhenEqual(t *testing.T) {
	s := synth.Thunderstorm(24, 24, 33)
	pair := Monocular(s.Frame(0), s.Frame(1))
	square := Params{NS: 2, NZS: 2, NZT: 3}
	rect := Params{NS: 2, NZS: 2, NZT: 3, NZTX: 3, NZTY: 3, NZSX: 2, NZSY: 2}
	a, err := TrackSequential(pair, square, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrackSequential(pair, rect, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Flow.Equal(b.Flow) {
		t.Fatal("explicit square overrides changed the result")
	}
}

// --- Pyramid (coarse-to-fine) ---------------------------------------------------

func TestPyramidRecoversLargeMotion(t *testing.T) {
	// A 6-px translation with a ±2 per-level search: unreachable flat,
	// reachable through 3 levels (2·2^2 = 8 ≥ 6).
	s := &synth.Scene{W: 64, H: 64, Flow: synth.Uniform{U: 6, V: 0},
		Tex: synth.Hurricane(64, 64, 35).Tex}
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := Params{NS: 2, NZS: 2, NZT: 3}
	res, err := TrackPyramid(pair, p, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	good, tot := 0, 0
	for y := 16; y < 48; y++ {
		for x := 16; x < 48; x++ {
			tot++
			if u, v := res.Flow.At(x, y); u == 6 && v == 0 {
				good++
			}
		}
	}
	if good*10 < tot*8 {
		t.Fatalf("pyramid recovered only %d/%d of the 6-px motion", good, tot)
	}
}

func TestPyramidSingleLevelMatchesSequential(t *testing.T) {
	s := synth.Thunderstorm(24, 24, 37)
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := contParams()
	a, err := TrackSequential(pair, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrackPyramid(pair, p, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Flow.Equal(b.Flow) {
		t.Fatal("single-level pyramid differs from sequential")
	}
}

func TestPyramidRejectsSemiFluid(t *testing.T) {
	s := synth.Thunderstorm(16, 16, 39)
	pair := Monocular(s.Frame(0), s.Frame(1))
	if _, err := TrackPyramid(pair, testParams(), 2, Options{}); err == nil {
		t.Fatal("semi-fluid pyramid accepted")
	}
}

func TestPyramidRejectsBadLevels(t *testing.T) {
	s := synth.Thunderstorm(16, 16, 41)
	pair := Monocular(s.Frame(0), s.Frame(1))
	if _, err := TrackPyramid(pair, contParams(), 0, Options{}); err == nil {
		t.Fatal("zero levels accepted")
	}
}

// --- Host parallelism -------------------------------------------------------------

func TestTrackParallelMatchesSequential(t *testing.T) {
	s := synth.Hurricane(28, 28, 43)
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := testParams()
	seq, err := TrackSequential(pair, p, Options{KeepMotion: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		par, err := TrackParallel(pair, p, Options{KeepMotion: true}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !par.Flow.Equal(seq.Flow) || !par.Err.Equal(seq.Err) {
			t.Fatalf("workers=%d: parallel differs from sequential", workers)
		}
		for i := range par.Motion {
			if !par.Motion[i].Equal(seq.Motion[i]) {
				t.Fatalf("workers=%d: motion parameter %d differs", workers, i)
			}
		}
	}
}

func TestTrackParallelRejectsNegativeWorkers(t *testing.T) {
	s := synth.Thunderstorm(16, 16, 47)
	if _, err := TrackParallel(Monocular(s.Frame(0), s.Frame(1)), contParams(), Options{}, -1); err == nil {
		t.Fatal("negative workers accepted")
	}
}

// --- Multispectral -----------------------------------------------------------------

func TestMultispectralValidation(t *testing.T) {
	g := grid.New(8, 8)
	p := Pair{I0: g, I1: g, Z0: g, Z1: g, Extra: []Channel{{I0: g, I1: nil}}}
	if err := p.Validate(); err == nil {
		t.Fatal("nil extra channel accepted")
	}
	p.Extra = []Channel{{I0: g, I1: grid.New(9, 8)}}
	if err := p.Validate(); err == nil {
		t.Fatal("mismatched extra channel accepted")
	}
}

func TestMultispectralFitPasses(t *testing.T) {
	s := synth.Hurricane(16, 16, 49)
	f0, f1 := s.Frame(0), s.Frame(1)
	pair := Monocular(f0, f1)
	pair.Extra = []Channel{{I0: f0.Clone(), I1: f1.Clone()}}
	if got := FitPasses(pair, testParams()); got != 4 {
		t.Fatalf("FitPasses = %d, want 4 (2 surface + 2 extra-channel)", got)
	}
	// Continuous model ignores channels (no discriminants needed).
	if got := FitPasses(pair, contParams()); got != 2 {
		t.Fatalf("continuous FitPasses = %d, want 2", got)
	}
}

func TestMultispectralDisambiguatesSemiMap(t *testing.T) {
	// Channel 1 is a pure linear ramp: its discriminant is identically
	// zero, so the semi-fluid matching has no signal and keeps δ = 0.
	// Adding a textured second channel recovers the true δ.
	w, h := 28, 28
	ramp := func(t float64) *grid.Grid {
		g := grid.New(w, h)
		g.ApplyXY(func(x, y int, _ float32) float32 { return float32(x) })
		return g
	}
	texScene := &synth.Scene{W: w, H: h, Flow: synth.Uniform{U: 2, V: 0},
		Tex: synth.Hurricane(w, h, 51).Tex}
	p := testParams()

	mono := Pair{I0: ramp(0), I1: ramp(1), Z0: texScene.Frame(0), Z1: texScene.Frame(1)}
	prepMono, err := Prepare(mono, p)
	if err != nil {
		t.Fatal(err)
	}
	smMono := BuildSemiMap(prepMono)

	multi := mono
	multi.Extra = []Channel{{I0: texScene.Frame(0), I1: texScene.Frame(1)}}
	prepMulti, err := Prepare(multi, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(prepMulti.Extra) != 1 {
		t.Fatalf("prepared %d extra channels", len(prepMulti.Extra))
	}
	smMulti := BuildSemiMap(prepMulti)

	// Under hypothesis (1, 0) for true motion (2, 0): the ramp channel
	// alone keeps δ = (0,0); the textured channel should pull δ to (1,0).
	monoCorrect, multiCorrect, tot := 0, 0, 0
	for y := 10; y < 18; y++ {
		for x := 10; x < 18; x++ {
			tot++
			if dx, dy := smMono.Delta(x, y, 1, 0); dx == 1 && dy == 0 {
				monoCorrect++
			}
			if dx, dy := smMulti.Delta(x, y, 1, 0); dx == 1 && dy == 0 {
				multiCorrect++
			}
		}
	}
	if monoCorrect != 0 {
		t.Fatalf("ramp-only semi-map somehow corrected %d/%d pixels", monoCorrect, tot)
	}
	if multiCorrect*2 < tot {
		t.Fatalf("multispectral semi-map corrected only %d/%d pixels", multiCorrect, tot)
	}
}

// --- Prior-guided search ------------------------------------------------------------

func TestTrackPixelFromOffsetsSearch(t *testing.T) {
	// With a prior of (4,0) and true motion (4,0), even a ±1 search finds
	// the exact correspondence.
	s := &synth.Scene{W: 32, H: 32, Flow: synth.Uniform{U: 4, V: 0},
		Tex: synth.Hurricane(32, 32, 53).Tex}
	prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), Params{NS: 2, NZS: 1, NZT: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(prep, nil, Options{})
	hx, hy, _, _ := tr.trackPixelFrom(16, 16, 4, 0)
	if hx != 4 || hy != 0 {
		t.Fatalf("prior-guided search found (%d,%d), want (4,0)", hx, hy)
	}
}
