package core

import (
	"fmt"

	"sma/internal/grid"
)

// QualityGate is the frame admission policy of a degraded-mode run: how
// much pixel damage (NaN/Inf samples, dead scanlines) a frame may carry
// before it is rejected rather than allowed to poison the surface fits.
// Real feeds (dropped GOES scan lines, calibration glitches) make damaged
// frames the normal case; the gate turns them into explicit, skippable
// errors at the pipeline's edge instead of silent NaN propagation through
// a million Gaussian eliminations.
//
// The zero value is the strictest gate: any non-finite sample or dead
// scanline rejects the frame. Raise the thresholds to tolerate a damage
// budget; set a fraction to 1 (or more) to disable that check entirely.
type QualityGate struct {
	// MaxBadFrac is the tolerated fraction of NaN/Inf samples per image.
	MaxBadFrac float64
	// MaxDeadLineFrac is the tolerated fraction of dead (constant) rows.
	MaxDeadLineFrac float64
}

// DamageError reports why a frame failed the gate. It wraps the per-image
// damage reports so callers (and operators reading job errors) see what
// was wrong, not just that something was.
type DamageError struct {
	Image  string // which image failed: "intensity", "surface", "channel N"
	Report grid.DamageReport
	Gate   QualityGate
}

func (e *DamageError) Error() string {
	return fmt.Sprintf("core: damaged %s image: %d/%d non-finite samples, %d/%d dead scanlines (gate: %.3g, %.3g)",
		e.Image, e.Report.BadPixels, e.Report.Pixels, e.Report.DeadLines, e.Report.Lines,
		e.Gate.MaxBadFrac, e.Gate.MaxDeadLineFrac)
}

// Check scans every image of the frame against the gate, returning a
// *DamageError for the first image over threshold and nil for acceptable
// frames. The surface image is scanned only when it is distinct from the
// intensity image (monocular frames alias the two).
func (g QualityGate) Check(f Frame) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if err := g.checkImage("intensity", f.I); err != nil {
		return err
	}
	if z := f.Surface(); z != f.I {
		if err := g.checkImage("surface", z); err != nil {
			return err
		}
	}
	for i, c := range f.Extra {
		if err := g.checkImage(fmt.Sprintf("channel %d", i), c); err != nil {
			return err
		}
	}
	return nil
}

func (g QualityGate) checkImage(name string, img *grid.Grid) error {
	r := grid.ScanDamage(img)
	if r.BadFrac() > g.MaxBadFrac || r.DeadLineFrac() > g.MaxDeadLineFrac {
		return &DamageError{Image: name, Report: r, Gate: g}
	}
	return nil
}
