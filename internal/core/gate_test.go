package core

import (
	"errors"
	"math"
	"testing"

	"sma/internal/grid"
	"sma/internal/synth"
)

func damagedGrid(size int, nan int, deadLines int) *grid.Grid {
	g := synth.Hurricane(size, size, 11).Frame(0)
	for i := 0; i < nan; i++ {
		g.Data[i*7%len(g.Data)] = float32(math.NaN())
	}
	for l := 0; l < deadLines; l++ {
		row := g.Row(2 + l)
		for x := range row {
			row[x] = 42
		}
	}
	return g
}

func TestScanDamageClean(t *testing.T) {
	r := grid.ScanDamage(synth.Hurricane(32, 32, 3).Frame(0))
	if r.Damaged() {
		t.Fatalf("clean synthetic frame reported damage: %+v", r)
	}
}

func TestScanDamageCounts(t *testing.T) {
	g := damagedGrid(32, 5, 3)
	r := grid.ScanDamage(g)
	if r.BadPixels != 5 {
		t.Errorf("BadPixels = %d, want 5", r.BadPixels)
	}
	if r.DeadLines != 3 {
		t.Errorf("DeadLines = %d, want 3", r.DeadLines)
	}
	if r.Pixels != 32*32 || r.Lines != 32 {
		t.Errorf("totals %d px %d lines, want %d/%d", r.Pixels, r.Lines, 32*32, 32)
	}
}

func TestScanDamageInfAndNaNRow(t *testing.T) {
	g := grid.New(8, 4)
	g.Row(1)[3] = float32(math.Inf(1))
	nanRow := g.Row(2)
	for x := range nanRow {
		nanRow[x] = float32(math.NaN())
	}
	r := grid.ScanDamage(g)
	if r.BadPixels != 1+8 {
		t.Errorf("BadPixels = %d, want 9", r.BadPixels)
	}
	// The all-NaN row is bad pixels, not a dead line; rows 0 and 3 are
	// constant-zero and count as dead.
	if r.DeadLines != 2 {
		t.Errorf("DeadLines = %d, want 2 (the constant-zero rows)", r.DeadLines)
	}
}

func TestQualityGateStrictZeroValue(t *testing.T) {
	var gate QualityGate
	if err := gate.Check(MonocularFrame(synth.Hurricane(24, 24, 5).Frame(0))); err != nil {
		t.Fatalf("strict gate rejected a clean frame: %v", err)
	}
	err := gate.Check(MonocularFrame(damagedGrid(24, 1, 0)))
	var de *DamageError
	if !errors.As(err, &de) {
		t.Fatalf("gate error = %v, want *DamageError", err)
	}
	if de.Report.BadPixels != 1 {
		t.Errorf("DamageError reports %d bad pixels, want 1", de.Report.BadPixels)
	}
}

func TestQualityGateThresholds(t *testing.T) {
	g := damagedGrid(32, 4, 2) // 4/1024 bad, 2/32 dead
	lenient := QualityGate{MaxBadFrac: 0.01, MaxDeadLineFrac: 0.1}
	if err := lenient.Check(MonocularFrame(g)); err != nil {
		t.Errorf("lenient gate rejected within-budget damage: %v", err)
	}
	strictPixels := QualityGate{MaxBadFrac: 0.001, MaxDeadLineFrac: 1}
	if err := strictPixels.Check(MonocularFrame(g)); err == nil {
		t.Error("pixel-strict gate accepted over-budget NaN damage")
	}
	strictLines := QualityGate{MaxBadFrac: 1, MaxDeadLineFrac: 0.01}
	if err := strictLines.Check(MonocularFrame(g)); err == nil {
		t.Error("line-strict gate accepted over-budget dead scanlines")
	}
	disabled := QualityGate{MaxBadFrac: 1, MaxDeadLineFrac: 1}
	if err := disabled.Check(MonocularFrame(g)); err != nil {
		t.Errorf("disabled gate rejected a frame: %v", err)
	}
}

func TestQualityGateChecksSurfaceAndChannels(t *testing.T) {
	var gate QualityGate
	clean := synth.Hurricane(16, 16, 9).Frame(0)
	bad := damagedGrid(16, 2, 0)

	if err := gate.Check(Frame{I: clean, Z: bad}); err == nil {
		t.Error("gate missed damage in the surface image")
	}
	if err := gate.Check(Frame{I: clean, Z: clean, Extra: []*grid.Grid{bad}}); err == nil {
		t.Error("gate missed damage in an extra channel")
	}
}
