package core

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"sma/internal/synth"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden motion-field fixtures under testdata/")

// goldenCases are the committed bit-exact regressions: small scenes, one
// per model family, tracked by the sequential baseline. Any PR that
// changes these bytes has changed the numerics of the tracker — the
// golden files make that an explicit, reviewable event (`go test
// ./internal/core -run Golden -update`) instead of a silent drift.
var goldenCases = []struct {
	name  string
	scene func() *synth.Scene
	p     Params
	opt   Options
}{
	{
		name:  "hurricane", // semi-fluid model, SemiMap path
		scene: func() *synth.Scene { return synth.Hurricane(24, 24, 61) },
		p:     Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 1},
	},
	{
		name:  "thunderstorm", // continuous model Fcont
		scene: func() *synth.Scene { return synth.Thunderstorm(24, 24, 9) },
		p:     Params{NS: 2, NZS: 2, NZT: 3},
	},
	{
		name:  "hurricane_robust", // Huber-reweighted solve
		scene: func() *synth.Scene { return synth.Hurricane(24, 24, 17) },
		p:     Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 1},
		opt:   Options{Robust: true},
	},
}

// goldenMagic versions the fixture layout: magic, GOARCH tag, dimensions,
// then U, V and ε rasters as little-endian float32.
const goldenMagic = "SMAGOLD1"

func encodeGolden(res *Result) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(goldenMagic)
	arch := runtime.GOARCH
	if err := binary.Write(&buf, binary.LittleEndian, uint32(len(arch))); err != nil {
		return nil, err
	}
	buf.WriteString(arch)
	w, h := res.Flow.Bounds()
	if err := binary.Write(&buf, binary.LittleEndian, [2]uint32{uint32(w), uint32(h)}); err != nil {
		return nil, err
	}
	for _, g := range []*[]float32{&res.Flow.U.Data, &res.Flow.V.Data, &res.Err.Data} {
		if err := binary.Write(&buf, binary.LittleEndian, *g); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// goldenArch extracts the GOARCH tag a fixture was generated on.
func goldenArch(data []byte) (string, error) {
	if len(data) < len(goldenMagic)+4 || string(data[:len(goldenMagic)]) != goldenMagic {
		return "", fmt.Errorf("bad golden header")
	}
	n := binary.LittleEndian.Uint32(data[len(goldenMagic):])
	off := len(goldenMagic) + 4
	if int(n) > len(data)-off {
		return "", fmt.Errorf("truncated golden header")
	}
	return string(data[off : off+int(n)]), nil
}

// TestGoldenMotionFields locks the tracker's numerics to committed
// fixtures, bit for bit. Future performance PRs (SIMD kernels, caching,
// reordering) must reproduce these bytes exactly or regenerate them with
// -update and justify the change.
func TestGoldenMotionFields(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			scene := tc.scene()
			pair := Monocular(scene.Frame(0), scene.Frame(1))
			res, err := TrackSequential(pair, tc.p, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := encodeGolden(res)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden_"+tc.name+".bin")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update to create): %v", err)
			}
			arch, err := goldenArch(want)
			if err != nil {
				t.Fatal(err)
			}
			if arch != runtime.GOARCH {
				// Go may contract floating-point expressions (FMA) on some
				// architectures, so bit-exactness only holds within one.
				t.Skipf("fixture generated on %s, running on %s", arch, runtime.GOARCH)
			}
			if !bytes.Equal(got, want) {
				off := 0
				for off < len(got) && off < len(want) && got[off] == want[off] {
					off++
				}
				t.Fatalf("golden %s differs from committed fixture (lengths %d vs %d, first difference at byte %d): the tracker's numerics changed",
					tc.name, len(got), len(want), off)
			}
		})
	}
}

// TestGoldenStreamMatchesFixture closes the loop between the golden
// fixtures and the streaming refactor: the per-frame Prepare split must
// reproduce the committed pairwise bytes exactly.
func TestGoldenStreamMatchesFixture(t *testing.T) {
	tc := goldenCases[0]
	scene := tc.scene()
	f0 := MonocularFrame(scene.Frame(0))
	f1 := MonocularFrame(scene.Frame(1))
	p0, err := PrepareFrame(f0, tc.p)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := PrepareFrame(f1, tc.p)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := AssemblePair(p0, p1)
	if err != nil {
		t.Fatal(err)
	}
	res := TrackPrepared(prep, BuildSemiMap(prep), tc.opt)
	got, err := encodeGolden(res)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_"+tc.name+".bin")
	want, err := os.ReadFile(path)
	if err != nil {
		if *updateGolden {
			t.Skip("fixtures being regenerated")
		}
		t.Fatal(err)
	}
	if arch, err := goldenArch(want); err != nil {
		t.Fatal(err)
	} else if arch != runtime.GOARCH {
		t.Skipf("fixture generated on %s, running on %s", arch, runtime.GOARCH)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("per-frame Prepare split diverges from the committed pairwise fixture")
	}
}
