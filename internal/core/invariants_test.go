package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sma/internal/grid"
	"sma/internal/synth"
)

// mirrorX flips a grid left-right.
func mirrorX(g *grid.Grid) *grid.Grid {
	out := grid.New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			out.Set(x, y, g.AtUnchecked(g.W-1-x, y))
		}
	}
	return out
}

// TestMirrorSymmetry: tracking a left-right mirrored scene must produce
// the mirrored flow with negated u. This exercises the entire pipeline
// (fitting, normals, hypothesis search) for direction biases.
func TestMirrorSymmetry(t *testing.T) {
	s := synth.Thunderstorm(28, 28, 57)
	f0 := s.Frame(0)
	f1 := s.Frame(1)
	p := contParams()
	res, err := TrackSequential(Monocular(f0, f1), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resM, err := TrackSequential(Monocular(mirrorX(f0), mirrorX(f1)), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare on the interior; the argmin tie-break is scan-ordered, so
	// only assert where the original search had a strict winner (ε of the
	// winner clearly below the zero hypothesis) — in practice textured
	// pixels, which is most of them.
	mismatches, checked := 0, 0
	for y := 6; y < 22; y++ {
		for x := 6; x < 22; x++ {
			u, v := res.Flow.At(x, y)
			mu, mv := resM.Flow.At(28-1-x, y)
			checked++
			if mu != -u || mv != v {
				mismatches++
			}
		}
	}
	if mismatches*20 > checked {
		t.Fatalf("mirror symmetry broken at %d/%d interior pixels", mismatches, checked)
	}
}

// TestFlowBoundedBySearchReach: the integer flow can never exceed the
// search radius plus the semi-fluid adjustment reach.
func TestFlowBoundedBySearchReach(t *testing.T) {
	f := func(seed int64) bool {
		s := synth.Thunderstorm(20, 20, seed%100)
		p := testParams() // NZS = 2, NSS = 1 → reach 3
		res, err := TrackSequential(Monocular(s.Frame(0), s.Frame(1)), p, Options{})
		if err != nil {
			return false
		}
		reach := float32(p.NZS + p.NSS)
		for i := range res.Flow.U.Data {
			u := res.Flow.U.Data[i]
			v := res.Flow.V.Data[i]
			if u > reach || u < -reach || v > reach || v < -reach {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestEpsilonNonNegative: ε is a weighted sum of squares.
func TestEpsilonNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g0 := grid.New(20, 20)
	g1 := grid.New(20, 20)
	for i := range g0.Data {
		g0.Data[i] = rng.Float32() * 255
		g1.Data[i] = rng.Float32() * 255
	}
	res, err := TrackSequential(Monocular(g0, g1), contParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if min, _ := res.Err.MinMax(); min < 0 {
		t.Fatalf("negative ε %v", min)
	}
}

// TestPureNoiseStillDeterministic: even on structureless inputs the
// tracker must produce a reproducible field (no map iteration, no
// uninitialized state).
func TestPureNoiseStillDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	g0 := grid.New(16, 16)
	g1 := grid.New(16, 16)
	for i := range g0.Data {
		g0.Data[i] = rng.Float32()
		g1.Data[i] = rng.Float32()
	}
	pair := Monocular(g0, g1)
	a, err := TrackSequential(pair, testParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrackSequential(pair, testParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Flow.Equal(b.Flow) {
		t.Fatal("noise tracking not deterministic")
	}
}

// TestConstantImagePrefersZeroHypothesis: with no structure anywhere all
// hypotheses tie and the deterministic tie-break must keep (0, 0).
func TestConstantImagePrefersZeroHypothesis(t *testing.T) {
	g := grid.New(16, 16)
	g.Fill(100)
	res, err := TrackSequential(Monocular(g, g.Clone()), testParams(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Flow.U.Data {
		if res.Flow.U.Data[i] != 0 || res.Flow.V.Data[i] != 0 {
			t.Fatal("constant image produced nonzero flow")
		}
	}
}

// TestScoreInsensitiveToGlobalHeightOffset: adding a constant to both
// surfaces leaves slopes, normals and therefore ε unchanged.
func TestScoreInsensitiveToGlobalHeightOffset(t *testing.T) {
	s := synth.Hurricane(24, 24, 67)
	z0 := s.Frame(0)
	z1 := s.Frame(1)
	p := contParams()
	a, err := TrackSequential(Monocular(z0, z1), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	z0b := z0.Clone()
	z1b := z1.Clone()
	z0b.Apply(func(v float32) float32 { return v + 500 })
	z1b.Apply(func(v float32) float32 { return v + 500 })
	b, err := TrackSequential(Monocular(z0b, z1b), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Flow.Equal(b.Flow) {
		t.Fatal("global height offset changed the flow")
	}
}

// TestTransposeSymmetry: transposing the scene swaps the flow components.
func TestTransposeSymmetry(t *testing.T) {
	transpose := func(g *grid.Grid) *grid.Grid {
		out := grid.New(g.H, g.W)
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				out.Set(y, x, g.AtUnchecked(x, y))
			}
		}
		return out
	}
	s := synth.Thunderstorm(26, 26, 69)
	f0 := s.Frame(0)
	f1 := s.Frame(1)
	p := contParams()
	res, err := TrackSequential(Monocular(f0, f1), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resT, err := TrackSequential(Monocular(transpose(f0), transpose(f1)), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mismatches, checked := 0, 0
	for y := 6; y < 20; y++ {
		for x := 6; x < 20; x++ {
			u, v := res.Flow.At(x, y)
			tu, tv := resT.Flow.At(y, x)
			checked++
			if tu != v || tv != u {
				mismatches++
			}
		}
	}
	if mismatches*20 > checked {
		t.Fatalf("transpose symmetry broken at %d/%d pixels", mismatches, checked)
	}
}
