package core

import (
	"fmt"
	"math"
	"testing"

	"sma/internal/synth"
)

// Kernel microbenchmarks: optimized (hoisted) vs reference (naive) paths.
// The eval.TrackThroughputExperiment measures the same contrast end to end
// and records it in BENCH_track.json; these isolate the per-call costs.

func benchPrep(b *testing.B, p Params) (*Prepared, *SemiMap) {
	b.Helper()
	s := synth.Hurricane(32, 32, 77)
	prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), p)
	if err != nil {
		b.Fatal(err)
	}
	return prep, BuildSemiMap(prep)
}

func BenchmarkScoreHyp(b *testing.B) {
	prep, sm := benchPrep(b, testParams())
	tr := newTracker(prep, sm, Options{})
	tr.preparePixel(16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.scoreHyp(16, 16, 1, 1, 1e300)
	}
}

func BenchmarkScoreReference(b *testing.B) {
	prep, sm := benchPrep(b, testParams())
	tr := newTracker(prep, sm, Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.scoreReference(16, 16, 1, 1)
	}
}

func BenchmarkPreparePixel(b *testing.B) {
	prep, sm := benchPrep(b, testParams())
	tr := newTracker(prep, sm, Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.preparePixel(16, 16)
	}
}

func BenchmarkTrackPixel(b *testing.B) {
	run := func(b *testing.B, p Params, opt Options) {
		prep, sm := benchPrep(b, p)
		tr := newTracker(prep, sm, opt)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.trackPixel(16, 16)
		}
	}
	b.Run("continuous", func(b *testing.B) { run(b, contParams(), Options{}) })
	b.Run("semifluid", func(b *testing.B) { run(b, testParams(), Options{}) })
	b.Run("semifluid-robust", func(b *testing.B) { run(b, testParams(), Options{Robust: true}) })
	b.Run("reference", func(b *testing.B) {
		prep, sm := benchPrep(b, testParams())
		tr := newTracker(prep, sm, Options{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.trackPixelFromReference(16, 16, 0, 0)
		}
	})
}

// BenchmarkScoreHypLanes isolates the batched b-pass against width-many
// scalar scoreHyp calls: the contrast is the invariant-load amortization
// the batch kernel exists for.
func BenchmarkScoreHypLanes(b *testing.B) {
	prep, sm := benchPrep(b, testParams())
	for _, bw := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("width%d", bw), func(b *testing.B) {
			tr := newTracker(prep, sm, Options{BatchHyps: bw})
			tr.preparePixel(16, 16)
			lhx := make([]int, bw)
			lhy := make([]int, bw)
			for l := 0; l < bw; l++ {
				lhx[l] = l%3 - 1
				lhy[l] = l/3 - 1
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.scoreHypLanes(16, 16, lhx, lhy, 0, 0, math.Inf(1), [6]float64{})
			}
		})
	}
}

// BenchmarkTrackPixelBatch sweeps the batch width over the full
// per-pixel search (prepare + scalar base hypothesis + batched sweep).
func BenchmarkTrackPixelBatch(b *testing.B) {
	prep, sm := benchPrep(b, testParams())
	for _, bw := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("width%d", bw), func(b *testing.B) {
			tr := newTracker(prep, sm, Options{BatchHyps: bw})
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.trackPixel(16, 16)
			}
		})
	}
}

func BenchmarkTrackPrepared(b *testing.B) {
	prep, sm := benchPrep(b, testParams())
	b.Run("optimized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			TrackPrepared(prep, sm, Options{})
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			TrackPreparedReference(prep, sm, Options{})
		}
	})
}
