package core

import (
	"testing"

	"sma/internal/synth"
)

// Kernel microbenchmarks: optimized (hoisted) vs reference (naive) paths.
// The eval.TrackThroughputExperiment measures the same contrast end to end
// and records it in BENCH_track.json; these isolate the per-call costs.

func benchPrep(b *testing.B, p Params) (*Prepared, *SemiMap) {
	b.Helper()
	s := synth.Hurricane(32, 32, 77)
	prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), p)
	if err != nil {
		b.Fatal(err)
	}
	return prep, BuildSemiMap(prep)
}

func BenchmarkScoreHyp(b *testing.B) {
	prep, sm := benchPrep(b, testParams())
	tr := newTracker(prep, sm, Options{})
	tr.preparePixel(16, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.scoreHyp(16, 16, 1, 1, 1e300)
	}
}

func BenchmarkScoreReference(b *testing.B) {
	prep, sm := benchPrep(b, testParams())
	tr := newTracker(prep, sm, Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.scoreReference(16, 16, 1, 1)
	}
}

func BenchmarkPreparePixel(b *testing.B) {
	prep, sm := benchPrep(b, testParams())
	tr := newTracker(prep, sm, Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.preparePixel(16, 16)
	}
}

func BenchmarkTrackPixel(b *testing.B) {
	run := func(b *testing.B, p Params, opt Options) {
		prep, sm := benchPrep(b, p)
		tr := newTracker(prep, sm, opt)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.trackPixel(16, 16)
		}
	}
	b.Run("continuous", func(b *testing.B) { run(b, contParams(), Options{}) })
	b.Run("semifluid", func(b *testing.B) { run(b, testParams(), Options{}) })
	b.Run("semifluid-robust", func(b *testing.B) { run(b, testParams(), Options{Robust: true}) })
	b.Run("reference", func(b *testing.B) {
		prep, sm := benchPrep(b, testParams())
		tr := newTracker(prep, sm, Options{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.trackPixelFromReference(16, 16, 0, 0)
		}
	})
}

func BenchmarkTrackPrepared(b *testing.B) {
	prep, sm := benchPrep(b, testParams())
	b.Run("optimized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			TrackPrepared(prep, sm, Options{})
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			TrackPreparedReference(prep, sm, Options{})
		}
	})
}
