//go:build !smaref

package core

// useReferenceKernel routes the tracker through the retained naive kernel
// (reference.go) when the smaref build tag is set. The default build uses
// the hoisted kernel; results are bit-identical either way (see
// docs/PERFORMANCE.md).
const useReferenceKernel = false
