package core

import (
	"fmt"
	"math"
	"testing"

	"sma/internal/la"
	"sma/internal/synth"
)

// This file locks the hoisted kernel (preparePixel + scoreHyp + factored
// solves + ε early exit) to the retained naive kernel in reference.go.
// Every comparison is bitwise: the optimization contract is exact
// equivalence, not numerical closeness.

// TestOptimizedKernelMatchesReference runs the full raster search with
// both kernels across synthetic scenes × {continuous, semi-fluid} ×
// {least-squares, robust} and demands bit-identical flow, ε, and motion
// parameters.
func TestOptimizedKernelMatchesReference(t *testing.T) {
	scenes := []struct {
		name  string
		frame func(w, h int, seed int64) *synth.Scene
	}{
		{"hurricane", synth.Hurricane},
		{"thunderstorm", synth.Thunderstorm},
	}
	for _, sc := range scenes {
		for _, semi := range []bool{false, true} {
			for _, robust := range []bool{false, true} {
				name := fmt.Sprintf("%s/semi=%v/robust=%v", sc.name, semi, robust)
				t.Run(name, func(t *testing.T) {
					p := contParams()
					if semi {
						p = testParams()
					}
					s := sc.frame(20, 20, 211)
					prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), p)
					if err != nil {
						t.Fatal(err)
					}
					sm := BuildSemiMap(prep)
					opt := Options{Robust: robust, KeepMotion: true}
					ref := TrackPreparedReference(prep, sm, opt)
					got := TrackPrepared(prep, sm, opt)
					if !got.Flow.Equal(ref.Flow) {
						t.Fatal("flow differs from reference kernel")
					}
					if !got.Err.Equal(ref.Err) {
						t.Fatal("ε differs from reference kernel")
					}
					for i := range ref.Motion {
						if !got.Motion[i].Equal(ref.Motion[i]) {
							t.Fatalf("motion grid %d differs from reference kernel", i)
						}
					}
				})
			}
		}
	}
}

// TestEarlyExitBitIdentical sweeps every pixel with the ε early exit on
// and off: the argmin (hx, hy, ε, θ) must be bit-identical, because a
// pruned hypothesis provably cannot beat the incumbent under the strict
// ε < best acceptance.
func TestEarlyExitBitIdentical(t *testing.T) {
	for _, seed := range []int64{31, 32, 33} {
		for _, semi := range []bool{false, true} {
			for _, robust := range []bool{false, true} {
				name := fmt.Sprintf("seed=%d/semi=%v/robust=%v", seed, semi, robust)
				t.Run(name, func(t *testing.T) {
					p := contParams()
					if semi {
						p = testParams()
					}
					s := synth.Hurricane(18, 18, seed)
					prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), p)
					if err != nil {
						t.Fatal(err)
					}
					sm := BuildSemiMap(prep)
					opt := Options{Robust: robust}
					on := newTracker(prep, sm, opt)
					off := newTracker(prep, sm, opt)
					off.noEarlyExit = true
					for y := 0; y < prep.H; y++ {
						for x := 0; x < prep.W; x++ {
							hx1, hy1, e1, th1 := on.trackPixelFrom(x, y, 0, 0)
							hx2, hy2, e2, th2 := off.trackPixelFrom(x, y, 0, 0)
							if hx1 != hx2 || hy1 != hy2 {
								t.Fatalf("(%d,%d): argmin (%d,%d) with exit, (%d,%d) without",
									x, y, hx1, hy1, hx2, hy2)
							}
							if math.Float64bits(e1) != math.Float64bits(e2) {
								t.Fatalf("(%d,%d): ε %v with exit, %v without", x, y, e1, e2)
							}
							if th1 != th2 {
								t.Fatalf("(%d,%d): θ differs: %v vs %v", x, y, th1, th2)
							}
						}
					}
				})
			}
		}
	}
}

// TestMotionFactorMatchesSolveMotion pins the hoisted factor-once path to
// solveMotion on both branches: the plain elimination and the ridge
// fallback for rank-deficient A.
func TestMotionFactorMatchesSolveMotion(t *testing.T) {
	check := func(t *testing.T, a *la.Mat6, rhs []la.Vec6) {
		t.Helper()
		var mf motionFactor
		fa := *a
		mf.factorMotion(&fa)
		for i, b := range rhs {
			ba, bb := b, b
			aa := *a
			want := solveMotion(&aa, &ba)
			got := mf.solveFactored(&bb)
			for j := range want {
				if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
					t.Fatalf("rhs %d, θ[%d]: factored %v != solveMotion %v", i, j, got[j], want[j])
				}
			}
		}
	}
	someRHS := func(base float64) []la.Vec6 {
		out := make([]la.Vec6, 5)
		for i := range out {
			for j := range out[i] {
				out[i][j] = base + float64(i)*0.7 - float64(j)*0.3
			}
		}
		return out
	}

	t.Run("well-conditioned", func(t *testing.T) {
		var a la.Mat6
		for k := 0; k < 9; k++ {
			zx := 0.2*float64(k) - 0.8
			zy := 0.5 - 0.1*float64(k)
			accumulateA(&a, zx, zy, 1.1, 0.9)
		}
		symmetrize(&a)
		check(t, &a, someRHS(0.25))
	})
	t.Run("ridge-fallback", func(t *testing.T) {
		// A flat surface (zx = zy = 0) leaves the normal equations rank
		// deficient; solveMotion falls back to a ridge derived from tr(A),
		// which is hypothesis-invariant, so factorMotion hoists it too.
		var a la.Mat6
		for k := 0; k < 9; k++ {
			accumulateA(&a, 0, 0, 1, 1)
		}
		symmetrize(&a)
		if _, ok := la.Factor6(&a); ok {
			t.Fatal("flat-surface system unexpectedly factorable; test needs a harder case")
		}
		check(t, &a, someRHS(0.05))
	})
	t.Run("zero-system", func(t *testing.T) {
		var a la.Mat6
		check(t, &a, someRHS(0.4))
	})
}

// TestResidualSumBoundedExact pins the pruning contract: with an infinite
// bound the bounded sum equals residualSum bitwise, and a pruned
// evaluation implies the true ε is at least the bound.
func TestResidualSumBoundedExact(t *testing.T) {
	s := synth.Hurricane(16, 16, 51)
	prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), contParams())
	if err != nil {
		t.Fatal(err)
	}
	tr := newTracker(prep, nil, Options{})
	for y := 3; y < 13; y += 3 {
		for x := 3; x < 13; x += 3 {
			tr.preparePixel(x, y)
			full, th, _ := tr.scoreHyp(x, y, 1, 0, math.Inf(1))
			if got, _ := residualSumBounded(tr.buf, &th, math.Inf(1)); math.Float64bits(got) != math.Float64bits(full) {
				t.Fatalf("(%d,%d): unbounded residualSumBounded %v != scoreHyp ε %v", x, y, got, full)
			}
			for _, frac := range []float64{0.1, 0.5, 0.9} {
				bound := full * frac
				eps, pruned := residualSumBounded(tr.buf, &th, bound)
				if !pruned {
					t.Fatalf("(%d,%d): bound %v below ε %v not pruned", x, y, bound, full)
				}
				if eps < bound {
					t.Fatalf("(%d,%d): pruned with partial sum %v below bound %v", x, y, eps, bound)
				}
			}
		}
	}
}
