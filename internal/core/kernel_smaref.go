//go:build smaref

package core

// useReferenceKernel: this build (-tags smaref) routes the tracker through
// the retained naive kernel in reference.go — every hypothesis rebuilds
// and eliminates the full normal equations, with no early exit. Useful for
// re-deriving the BENCH_track.json baseline or bisecting a suspected
// kernel divergence; results are bit-identical to the default build.
const useReferenceKernel = true
