package core

import (
	"fmt"
	"sync"
	"time"

	"sma/internal/grid"
	"sma/internal/maspar"
)

// StageTimes is the Table 2 / Table 4 breakdown: modeled MP-2 execution
// time of each subroutine of the parallel SMA implementation.
type StageTimes struct {
	SurfaceFit time.Duration // quadratic patch fitting (incl. fetches)
	GeomVars   time.Duration // normals, E, G, discriminant
	SemiMap    time.Duration // semi-fluid template mapping (0 for Fcont)
	HypMatch   time.Duration // hypothesis matching (dominant stage)
}

// Total sums the stages.
func (s StageTimes) Total() time.Duration {
	return s.SurfaceFit + s.GeomVars + s.SemiMap + s.HypMatch
}

// MasParResult bundles the motion field with the simulation's cost
// accounting.
type MasParResult struct {
	*Result
	Stages StageTimes
	Cost   maspar.Cost
	Plan   maspar.SegmentPlan
	Layers int
}

// ModelRun charges one SMA timestep's full operation inventory — plural
// instruction issues, X-net neighborhood fetches under the chosen read-out
// scheme, per-PE memory allocation and hypothesis-row segmentation — to
// the machine without executing the per-pixel arithmetic. It returns the
// per-stage modeled MP-2 times. TrackMasPar uses it for its accounting;
// the experiment harness calls it directly to model paper-scale runs
// (512×512 on the full 16,384-PE machine) that would be impractical to
// execute functionally.
func ModelRun(m *maspar.Machine, w, h int, p Params, fitPasses int, scheme maspar.FetchScheme) (StageTimes, maspar.SegmentPlan, error) {
	var st StageTimes
	if err := p.Validate(); err != nil {
		return st, maspar.SegmentPlan{}, err
	}
	mp, err := maspar.NewHierarchical(m, w, h)
	if err != nil {
		return st, maspar.SegmentPlan{}, err
	}
	layers := mp.Layers()
	oc := CountOps(p, fitPasses)

	// Resident plural data: the four input images and the fitted geometric
	// variables (15 image fields in this implementation).
	if err := m.Alloc("sma.fields", 15*4*layers); err != nil {
		return st, maspar.SegmentPlan{}, fmt.Errorf("core: resident fields do not fit PE memory: %w", err)
	}
	defer m.Free("sma.fields")

	plan := maspar.SegmentPlan{Z: p.SearchWidth(), Segments: 1}
	if p.SemiFluid() {
		sp := maspar.SegmentParams{NZS: p.NZS, NZT: p.NZT, NS: p.NS, Layers: layers, FloatSize: 4}
		// PlanSegments budgets the resident fields itself; release ours
		// while planning to avoid double counting.
		m.Free("sma.fields")
		var err error
		plan, err = maspar.PlanSegments(m, sp)
		if aerr := m.Alloc("sma.fields", 15*4*layers); aerr != nil {
			return st, plan, aerr
		}
		if err != nil {
			return st, plan, fmt.Errorf("core: %w", err)
		}
		if err := m.Alloc("sma.mappings", plan.Z*(2*p.NZS+1)*2*4*layers); err != nil {
			return st, plan, fmt.Errorf("core: segmented mapping store does not fit: %w", err)
		}
		defer m.Free("sma.mappings")
	}

	prev := m.Cost
	stage := func() time.Duration {
		cur := m.Cost
		delta := maspar.Cost{
			PluralFlops:   cur.PluralFlops - prev.PluralFlops,
			MemDirect:     cur.MemDirect - prev.MemDirect,
			MemIndirect:   cur.MemIndirect - prev.MemIndirect,
			XNetShifts:    cur.XNetShifts - prev.XNetShifts,
			RouterSends:   cur.RouterSends - prev.RouterSends,
			ScalarOps:     cur.ScalarOps - prev.ScalarOps,
			GaussianElims: cur.GaussianElims - prev.GaussianElims,
		}
		prev = cur
		return m.Cfg.Time(delta)
	}

	// --- Stage 1: surface fitting ---------------------------------------
	m.ChargeMem(int64(4 * layers)) // distribute the four input images
	fitFC, err := maspar.FetchCost(mp, p.NS, scheme)
	if err != nil {
		return st, plan, err
	}
	for pass := 0; pass < fitPasses; pass++ {
		m.Cost.Add(fitFC)
		for l := 0; l < layers; l++ {
			m.ChargeFlops(oc.SurfaceFlops)
			m.ChargeGauss6()
		}
	}
	st.SurfaceFit = stage()

	// --- Stage 2: geometric variables ------------------------------------
	for pass := 0; pass < fitPasses; pass++ {
		for l := 0; l < layers; l++ {
			m.ChargeFlops(oc.GeomFlops)
		}
	}
	st.GeomVars = stage()

	// --- Stage 3: semi-fluid template mapping -----------------------------
	if p.SemiFluid() {
		perSegment := oc.SemiMapFlops / int64(plan.Segments)
		fetchR := p.NZS + p.NSS + p.NST
		segFC, err := maspar.FetchCost(mp, fetchR, scheme)
		if err != nil {
			return st, plan, err
		}
		for seg := 0; seg < plan.Segments; seg++ {
			// Each segment re-fetches the discriminant neighborhoods it
			// needs, computes its hypothesis rows, and is discarded once
			// its error terms are produced (paper §4.1/§4.3).
			m.Cost.Add(segFC)
			for l := 0; l < layers; l++ {
				m.ChargeFlops(perSegment)
			}
		}
		st.SemiMap = stage()
	}

	// --- Stage 4: hypothesis matching -------------------------------------
	// Per segment: fetch the geometry fields needed across the template
	// radius (zx, zy, E, G plus the two stored template-mapping floats),
	// then accumulate and eliminate per hypothesis.
	const fetchFields = 6
	hypPerSegment := oc.HypFlops / int64(plan.Segments)
	gaussPerSegment := oc.HypGauss / int64(plan.Segments)
	hypFC, err := maspar.FetchCost(mp, p.NZT, scheme)
	if err != nil {
		return st, plan, err
	}
	for seg := 0; seg < plan.Segments; seg++ {
		fc := hypFC
		for i := 0; i < fetchFields; i++ {
			m.Cost.Add(fc)
		}
		for l := 0; l < layers; l++ {
			m.ChargeFlops(hypPerSegment)
			for g := int64(0); g < gaussPerSegment; g++ {
				m.ChargeGauss6()
			}
		}
	}
	st.HypMatch = stage()
	return st, plan, nil
}

// TrackMasPar executes one SMA timestep on the simulated MasPar MP-2: the
// images are folded onto the PE array with the 2-D hierarchical mapping,
// all pixels of each memory layer are tracked in parallel ("track all
// pixels in the mem-th memory layer in parallel and then repeat the
// process for each layer"), neighborhood traffic uses X-net mesh fetches
// under the chosen read-out scheme, and the template-mapping store is
// segmented by hypothesis rows when it exceeds PE memory.
//
// The returned motion field is bit-identical to TrackSequential — the
// equivalence the paper validates ("the parallel algorithm obtained the
// same result as the sequential implementation").
func TrackMasPar(m *maspar.Machine, pair Pair, p Params, opt Options, scheme maspar.FetchScheme) (*MasParResult, error) {
	prep, err := Prepare(pair, p)
	if err != nil {
		return nil, err
	}
	st, plan, err := ModelRun(m, prep.W, prep.H, p, FitPasses(pair, p), scheme)
	if err != nil {
		return nil, err
	}
	mp, err := maspar.NewHierarchical(m, prep.W, prep.H)
	if err != nil {
		return nil, err
	}
	layers := mp.Layers()

	// Functional execution, organized layer by layer exactly as the SIMD
	// machine schedules it. Per-pixel arithmetic is shared with the
	// sequential driver, so results match it bit for bit. HostWorkers
	// splits each layer's PE sweep across goroutines (pixels are
	// independent, so the worker count cannot change results).
	sm := BuildSemiMap(prep)
	res := &Result{Flow: grid.NewVectorField(prep.W, prep.H), Err: grid.New(prep.W, prep.H)}
	if opt.KeepMotion {
		res.Motion = make([]*grid.Grid, 6)
		for i := range res.Motion {
			res.Motion[i] = grid.New(prep.W, prep.H)
		}
	}
	nproc := m.Cfg.NProc()
	workers := opt.HostWorkers
	if workers < 1 {
		workers = 1
	}
	peSpan := (nproc + workers - 1) / workers
	for l := 0; l < layers; l++ {
		var wg sync.WaitGroup
		for w0 := 0; w0 < nproc; w0 += peSpan {
			w1 := w0 + peSpan
			if w1 > nproc {
				w1 = nproc
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				t := newTracker(prep, sm, opt)
				for pe := lo; pe < hi; pe++ {
					x, y := mp.Invert(pe, l)
					if x >= prep.W || y >= prep.H {
						continue
					}
					hx, hy, eps, theta := t.trackPixel(x, y)
					res.Flow.Set(x, y, float32(hx), float32(hy))
					res.Err.Set(x, y, float32(eps))
					if opt.KeepMotion {
						for i := range res.Motion {
							res.Motion[i].Set(x, y, float32(theta[i]))
						}
					}
				}
			}(w0, w1)
		}
		wg.Wait()
	}
	return &MasParResult{Result: res, Stages: st, Cost: m.Cost, Plan: plan, Layers: layers}, nil
}
