package core

import (
	"testing"

	"sma/internal/maspar"
	"sma/internal/synth"
)

func TestMasParMatchesSequentialExactly(t *testing.T) {
	// The paper's §4 validation: "The parallel algorithm obtained the same
	// result as the sequential implementation."
	s := synth.Hurricane(32, 32, 71)
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := testParams()

	seq, err := TrackSequential(pair, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := maspar.MustNew(maspar.ScaledConfig(8, 8)) // 32×32 image → 4×4 px/PE
	par, err := TrackMasPar(m, pair, p, Options{}, maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	if !par.Flow.Equal(seq.Flow) {
		t.Fatal("parallel flow differs from sequential")
	}
	if !par.Err.Equal(seq.Err) {
		t.Fatal("parallel ε differs from sequential")
	}
}

func TestMasParEquivalenceUnderSnakeReadout(t *testing.T) {
	// The read-out scheme changes cost, never results.
	s := synth.Thunderstorm(24, 24, 73)
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := contParams()
	m1 := maspar.MustNew(maspar.ScaledConfig(8, 8))
	m2 := maspar.MustNew(maspar.ScaledConfig(8, 8))
	a, err := TrackMasPar(m1, pair, p, Options{}, maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrackMasPar(m2, pair, p, Options{}, maspar.SnakeReadout)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Flow.Equal(b.Flow) {
		t.Fatal("read-out scheme changed results")
	}
	if m2.Cost.XNetShifts <= m1.Cost.XNetShifts {
		t.Fatalf("snake xnet %d not above raster %d at these sizes",
			m2.Cost.XNetShifts, m1.Cost.XNetShifts)
	}
}

func TestMasParStageBreakdownShape(t *testing.T) {
	// Table 2's qualitative shape: hypothesis matching dominates the
	// total; the semi-fluid mapping is next; surface fitting and
	// geometric variables are comparatively negligible.
	s := synth.Hurricane(32, 32, 79)
	pair := Monocular(s.Frame(0), s.Frame(1))
	m := maspar.MustNew(maspar.ScaledConfig(8, 8))
	res, err := TrackMasPar(m, pair, testParams(), Options{}, maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stages
	if st.HypMatch <= st.SemiMap {
		t.Fatalf("hypothesis matching %v not above semi-fluid mapping %v", st.HypMatch, st.SemiMap)
	}
	if st.SemiMap <= st.GeomVars {
		t.Fatalf("semi-fluid mapping %v not above geometric variables %v", st.SemiMap, st.GeomVars)
	}
	if st.Total() <= 0 {
		t.Fatal("zero total stage time")
	}
}

func TestMasParContinuousSkipsSemiMapStage(t *testing.T) {
	s := synth.Hurricane(24, 24, 83)
	pair := Monocular(s.Frame(0), s.Frame(1))
	m := maspar.MustNew(maspar.ScaledConfig(8, 8))
	res, err := TrackMasPar(m, pair, contParams(), Options{}, maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages.SemiMap != 0 {
		t.Fatalf("continuous model spent %v in semi-fluid mapping", res.Stages.SemiMap)
	}
	if res.Plan.Segments != 1 {
		t.Fatalf("continuous model planned %d segments", res.Plan.Segments)
	}
}

func TestMasParGaussCountMatchesInventory(t *testing.T) {
	// Ledger eliminations = fitPasses·layers (surface fit) +
	// hypotheses·layers (motion solve).
	s := synth.Hurricane(16, 16, 89)
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := contParams()
	m := maspar.MustNew(maspar.ScaledConfig(4, 4)) // 16 layers
	res, err := TrackMasPar(m, pair, p, Options{}, maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	layers := int64(res.Layers)
	want := 2*layers + int64(p.Hypotheses())*layers
	if m.Cost.GaussianElims != want {
		t.Fatalf("GaussianElims = %d, want %d", m.Cost.GaussianElims, want)
	}
}

func TestMasParMemoryInfeasibleConfig(t *testing.T) {
	// A machine with tiny PE memory must reject the run rather than
	// silently overflow.
	cfg := maspar.ScaledConfig(4, 4)
	cfg.MemPerPE = 512
	m := maspar.MustNew(cfg)
	s := synth.Hurricane(16, 16, 97)
	pair := Monocular(s.Frame(0), s.Frame(1))
	if _, err := TrackMasPar(m, pair, testParams(), Options{}, maspar.RasterReadout); err == nil {
		t.Fatal("infeasible memory configuration accepted")
	}
}

func TestMasParSegmentedRunStillCorrect(t *testing.T) {
	// Squeeze PE memory so the template-mapping store must be segmented;
	// results must not change.
	s := synth.Hurricane(24, 24, 101)
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := testParams()

	big := maspar.MustNew(maspar.ScaledConfig(8, 8))
	a, err := TrackMasPar(big, pair, p, Options{}, maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan.Segments != 1 {
		t.Fatalf("baseline run unexpectedly segmented: %+v", a.Plan)
	}

	cfg := maspar.ScaledConfig(8, 8)
	cfg.MemPerPE = 1600 // forces Z < full search width
	small := maspar.MustNew(cfg)
	b, err := TrackMasPar(small, pair, p, Options{}, maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	if b.Plan.Segments < 2 {
		t.Fatalf("squeezed run not segmented: %+v", b.Plan)
	}
	if !a.Flow.Equal(b.Flow) {
		t.Fatal("segmentation changed tracking results")
	}
	if b.Stages.Total() <= a.Stages.Total() {
		t.Fatalf("segmented run %v not slower than unsegmented %v",
			b.Stages.Total(), a.Stages.Total())
	}
}

func TestMasParKeepMotion(t *testing.T) {
	s := synth.Hurricane(16, 16, 103)
	pair := Monocular(s.Frame(0), s.Frame(1))
	m := maspar.MustNew(maspar.ScaledConfig(4, 4))
	res, err := TrackMasPar(m, pair, contParams(), Options{KeepMotion: true}, maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Motion) != 6 {
		t.Fatalf("Motion has %d grids, want 6", len(res.Motion))
	}
}

func TestMasParHostWorkersEquivalence(t *testing.T) {
	s := synth.Hurricane(24, 24, 107)
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := testParams()
	m1 := maspar.MustNew(maspar.ScaledConfig(8, 8))
	m2 := maspar.MustNew(maspar.ScaledConfig(8, 8))
	serial, err := TrackMasPar(m1, pair, p, Options{}, maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	par, err := TrackMasPar(m2, pair, p, Options{HostWorkers: 4}, maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Flow.Equal(par.Flow) || !serial.Err.Equal(par.Err) {
		t.Fatal("host worker count changed results")
	}
	// The modeled machine ledger is identical: host parallelism is an
	// execution detail, not a machine behavior.
	if m1.Cost != m2.Cost {
		t.Fatalf("ledger differs: %+v vs %+v", m1.Cost, m2.Cost)
	}
}
