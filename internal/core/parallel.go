package core

import (
	"context"
	"fmt"
	"runtime"

	"sma/internal/grid"
)

// TrackParallel runs the same tracking computation as TrackSequential
// using host worker goroutines — the modern shared-memory analog of the
// paper's data-parallel execution. Every pixel's computation is
// independent (the precomputed geometry and semi-fluid mapping are
// read-only), so the result is bit-identical to the sequential driver
// regardless of the worker count.
func TrackParallel(pair Pair, p Params, opt Options, workers int) (*Result, error) {
	if workers < 0 {
		return nil, fmt.Errorf("core: negative worker count %d", workers)
	}
	prep, err := Prepare(pair, p)
	if err != nil {
		return nil, err
	}
	sm := BuildSemiMap(prep)
	return TrackPreparedParallel(prep, sm, opt, workers), nil
}

// TrackPreparedParallel runs the hypothesis search on already-prepared
// geometry with worker goroutines claiming pixel tiles off a
// work-stealing index (0 workers = GOMAXPROCS; tile size from
// chooseTileSize unless Options.TileW/TileH override it). Tiles are
// disjoint and the inputs read-only, so the result is bit-identical to
// TrackPrepared at every worker count and tile size — the property the
// streaming pipeline's parallel mode relies on.
func TrackPreparedParallel(prep *Prepared, sm *SemiMap, opt Options, workers int) *Result {
	//smavet:allow errdiscard,ctxflow -- non-ctx compatibility wrapper: a deliberate uncancellable root, so the error is impossible
	res, _ := TrackPreparedParallelCtx(context.Background(), prep, sm, opt, workers)
	return res
}

// TrackPreparedParallelCtx is TrackPreparedParallel with cooperative
// cancellation: when ctx is cancelled mid-search no further tile rows
// start, workers finish at most their current row each (forEachTileRow
// polls ctx before every row), and the call returns (nil, ctx.Err()).
// Completed runs are bit-identical to TrackPrepared at every worker
// count and tile size — this is the cancellation point a serving
// deadline threads down to.
func TrackPreparedParallelCtx(ctx context.Context, prep *Prepared, sm *SemiMap, opt Options, workers int) (*Result, error) {
	if ctx == nil {
		ctx = context.Background() //smavet:allow ctxflow -- nil-guard: a nil ctx documents "never cancel", and there is nothing to derive from
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opt.Pyramid.Enabled() {
		// Coarse-to-fine accelerated search (pyramid.go). Continuous
		// model only; sm is always nil there. Requests without prepared
		// coarse levels degrade to the exhaustive sweep inside the
		// driver.
		if sm != nil || prep.P.SemiFluid() {
			return nil, fmt.Errorf("core: pyramid search requires the continuous model (NSS = 0)")
		}
		res, _, err := trackPyramidCtx(ctx, prep, opt, workers, false)
		return res, err
	}
	w, h := prep.W, prep.H
	res := &Result{Flow: grid.NewVectorField(w, h), Err: grid.New(w, h)}
	if opt.KeepMotion {
		res.Motion = make([]*grid.Grid, 6)
		for i := range res.Motion {
			res.Motion[i] = grid.New(w, h)
		}
	}
	tw, th := opt.TileW, opt.TileH
	if side := chooseTileSize(prep.P, w, h, workers); tw <= 0 {
		tw = side
		if th <= 0 {
			th = side
		}
	} else if th <= 0 {
		th = tw
	}
	g := newTileGrid(w, h, tw, th)
	err := forEachTileRow(ctx, g, workers, func() func(t tileRect, y int) {
		// Each worker owns a tracker (scratch buffers are not shared);
		// pixels are written to disjoint result cells, so any
		// pixel→worker assignment yields the same bits.
		t := newTracker(prep, sm, opt)
		return func(tile tileRect, y int) {
			for x := tile.X0; x < tile.X1; x++ {
				hx, hy, eps, theta := t.trackPixel(x, y)
				res.Flow.Set(x, y, float32(hx), float32(hy))
				res.Err.Set(x, y, float32(eps))
				if opt.KeepMotion {
					for i := range res.Motion {
						res.Motion[i].Set(x, y, float32(theta[i]))
					}
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
