package core

import (
	"fmt"

	"sma/internal/grid"
	"sma/internal/surface"
)

// Prepared holds the per-image differential geometry the tracker consumes:
// fitted surface geometry (normals, slopes, E, G) of the z-surfaces at
// both timesteps and the intensity-surface discriminant fields the
// semi-fluid mapping matches on. This is the paper's "Surface fit" +
// "Compute geometric variables" stage (Tables 2 and 4).
type Prepared struct {
	P      Params
	W, H   int
	G0, G1 *surface.Field // geometry of Z0 and Z1
	D0, D1 *grid.Grid     // intensity discriminants at t and t+1
	// Extra holds discriminant fields of additional spectral channels
	// (multispectral extension; empty unless the pair carries channels
	// and the semi-fluid model is active).
	Extra []ExtraChannel
	// Coarse holds the prepared geometry of successively box-filtered
	// 2× reductions of the pair — Coarse[0] is half resolution — built by
	// PreparePyramid for the coarse-to-fine hypothesis search. Empty for
	// plain Prepare output; the pyramid driver then degrades gracefully
	// to the exhaustive search.
	Coarse []*Prepared
}

// ExtraChannel is one prepared multispectral band: the discriminant fields
// the semi-fluid matcher compares.
type ExtraChannel struct {
	D0, D1 *grid.Grid
}

// Frame is one timestep of a tracked sequence: the intensity image and,
// for stereo runs, the surface (height/disparity) image driving the
// normal computation. Z == nil (or Z == I) marks the monocular mode where
// the intensity image is "treated as a digital surface" (paper §2).
// Frames are the unit of preparation in streaming multi-frame runs: frame
// t's surface fits are shared by the pairs (t−1, t) and (t, t+1).
type Frame struct {
	I *grid.Grid // intensity
	Z *grid.Grid // surface; nil falls back to I
	// Extra holds additional spectral channels (paper §6 multispectral
	// extension); order must agree across the frames of a sequence.
	Extra []*grid.Grid
}

// MonocularFrame wraps a single intensity image as a Frame, the intensity
// data standing in for the surface.
func MonocularFrame(i *grid.Grid) Frame { return Frame{I: i, Z: i} }

// Surface returns the grid driving the normal computation: Z, or I for
// monocular frames.
func (f Frame) Surface() *grid.Grid {
	if f.Z != nil {
		return f.Z
	}
	return f.I
}

// Validate checks presence and dimension agreement of the frame's images.
func (f Frame) Validate() error {
	if f.I == nil {
		return fmt.Errorf("core: frame has nil intensity image")
	}
	w, h := f.I.W, f.I.H
	if z := f.Z; z != nil && (z.W != w || z.H != h) {
		return fmt.Errorf("core: frame surface size %dx%d differs from intensity %dx%d", z.W, z.H, w, h)
	}
	for i, c := range f.Extra {
		if c == nil {
			return fmt.Errorf("core: frame extra channel %d is nil", i)
		}
		if c.W != w || c.H != h {
			return fmt.Errorf("core: frame extra channel %d size differs from primary", i)
		}
	}
	return nil
}

// Frames splits the pair into its two per-frame halves, the inputs of
// PrepareFrame.
func (p Pair) Frames() (f0, f1 Frame) {
	f0 = Frame{I: p.I0, Z: p.Z0}
	f1 = Frame{I: p.I1, Z: p.Z1}
	if len(p.Extra) > 0 {
		f0.Extra = make([]*grid.Grid, len(p.Extra))
		f1.Extra = make([]*grid.Grid, len(p.Extra))
		for i, c := range p.Extra {
			f0.Extra[i] = c.I0
			f1.Extra[i] = c.I1
		}
	}
	return f0, f1
}

// FramePrep is the per-frame half of Prepare: the fitted surface geometry
// of one timestep and, when the semi-fluid model is active, its intensity
// discriminant fields. In a streaming run each frame is prepared exactly
// once and its FramePrep reused by both pairs it participates in.
type FramePrep struct {
	P    Params
	W, H int
	G    *surface.Field
	D    *grid.Grid // nil when the continuous model is active
	// Extra holds per-channel discriminants, aligned with Frame.Extra.
	Extra []*grid.Grid
	// Coarse holds prepared 2× box-filtered reductions of this frame
	// (Coarse[0] is half resolution), built by PrepareFramePyramid. The
	// frames of a pair must carry the same number of coarse levels for
	// AssemblePair to accept them.
	Coarse []*FramePrep
}

// PrepareFrame fits quadratic patches at every pixel of one frame: the
// surface image (radius NS) and, when the semi-fluid model is active, the
// intensity image (radius NST) plus any extra spectral channels. Preparing
// the two frames of a pair and assembling them is bit-identical to the
// fused Prepare.
func PrepareFrame(f Frame, p Params) (*FramePrep, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	zf, err := surface.NewFitter(p.NS)
	if err != nil {
		return nil, err
	}
	z := f.Surface()
	out := &FramePrep{P: p, W: f.I.W, H: f.I.H}
	out.G = zf.FitAll(z)
	if p.SemiFluid() {
		imf := zf
		if p.NST != p.NS {
			if imf, err = surface.NewFitter(p.NST); err != nil {
				return nil, err
			}
		}
		if f.I == z && p.NST == p.NS {
			out.D = out.G.D
		} else {
			out.D = imf.FitAll(f.I).D
		}
		for _, c := range f.Extra {
			out.Extra = append(out.Extra, imf.FitAll(c).D)
		}
	}
	return out, nil
}

// AssemblePair combines two prepared frames into the pair-level geometry
// the tracker consumes. The preparations must come from PrepareFrame runs
// with identical parameters, image sizes and channel counts.
func AssemblePair(f0, f1 *FramePrep) (*Prepared, error) {
	if f0 == nil || f1 == nil {
		return nil, fmt.Errorf("core: nil frame preparation")
	}
	if f0.P != f1.P {
		return nil, fmt.Errorf("core: frame preparations use different parameters: %+v vs %+v", f0.P, f1.P)
	}
	if f0.W != f1.W || f0.H != f1.H {
		return nil, fmt.Errorf("core: frame sizes differ: %dx%d vs %dx%d", f0.W, f0.H, f1.W, f1.H)
	}
	if len(f0.Extra) != len(f1.Extra) {
		return nil, fmt.Errorf("core: extra channel counts differ: %d vs %d", len(f0.Extra), len(f1.Extra))
	}
	out := &Prepared{
		P: f0.P, W: f0.W, H: f0.H,
		G0: f0.G, G1: f1.G,
		D0: f0.D, D1: f1.D,
	}
	for i := range f0.Extra {
		out.Extra = append(out.Extra, ExtraChannel{D0: f0.Extra[i], D1: f1.Extra[i]})
	}
	if len(f0.Coarse) != len(f1.Coarse) {
		return nil, fmt.Errorf("core: coarse level counts differ: %d vs %d", len(f0.Coarse), len(f1.Coarse))
	}
	for i := range f0.Coarse {
		cp, err := AssemblePair(f0.Coarse[i], f1.Coarse[i])
		if err != nil {
			return nil, fmt.Errorf("core: coarse level %d: %w", i+1, err)
		}
		out.Coarse = append(out.Coarse, cp)
	}
	return out, nil
}

// Prepare fits quadratic patches at every pixel of the surface images
// (radius NS) and, when the semi-fluid model is active, of the intensity
// images (radius NST) to obtain discriminant fields. Four full-image fit
// passes, exactly as the paper counts them: "local surface patches are fit
// for each pixel in both the intensity and surface images at both time
// steps ... over one million separate Gaussian-eliminations" at 512².
//
// Prepare is the fused pair-at-a-time form; streaming callers use
// PrepareFrame once per frame and AssemblePair per adjacent pair, which
// yields bit-identical geometry while fitting shared frames only once.
func Prepare(pair Pair, p Params) (*Prepared, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	f0, f1 := pair.Frames()
	p0, err := PrepareFrame(f0, p)
	if err != nil {
		return nil, err
	}
	p1, err := PrepareFrame(f1, p)
	if err != nil {
		return nil, err
	}
	return AssemblePair(p0, p1)
}

// pyramidMinSide stops coarse-level construction before the grids become
// too small for a meaningful surface fit (matching the ASA pyramid's
// 8-pixel floor).
const pyramidMinSide = 8

// PrepareFramePyramid is PrepareFrame plus coarse levels for the
// multiresolution hypothesis search: levels−1 successive 2× box-filter
// reductions of the intensity (and, for stereo frames, surface) images,
// each prepared with the same parameters and chained into
// FramePrep.Coarse. Construction stops early when a reduction would drop
// below pyramidMinSide on either axis; the tracking driver clamps its
// level count to what was built. Continuous model only — the semi-fluid
// precompute is tied to a fixed global search window, which prior-guided
// search invalidates.
func PrepareFramePyramid(f Frame, p Params, levels int) (*FramePrep, error) {
	if levels < 1 {
		return nil, fmt.Errorf("core: need at least one pyramid level, got %d", levels)
	}
	if levels > 1 && p.SemiFluid() {
		return nil, fmt.Errorf("core: pyramid preparation requires the continuous model (NSS = 0)")
	}
	fp, err := PrepareFrame(f, p)
	if err != nil {
		return nil, err
	}
	cur := Frame{I: f.I, Z: f.Surface()}
	for l := 1; l < levels; l++ {
		if cur.I.W < 2*pyramidMinSide || cur.I.H < 2*pyramidMinSide {
			break
		}
		ci := cur.I.DownsampleBox2()
		cz := ci
		if cur.Z != cur.I {
			cz = cur.Z.DownsampleBox2()
		}
		cur = Frame{I: ci, Z: cz}
		cfp, err := PrepareFrame(cur, p)
		if err != nil {
			return nil, err
		}
		fp.Coarse = append(fp.Coarse, cfp)
	}
	return fp, nil
}

// PreparePyramid is Prepare plus coarse levels on both frames — the input
// of the coarse-to-fine tracking driver (Options.Pyramid). Bit-identical
// to Prepare at level 0; the coarse chain only adds prior-guidance
// geometry.
func PreparePyramid(pair Pair, p Params, levels int) (*Prepared, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	f0, f1 := pair.Frames()
	p0, err := PrepareFramePyramid(f0, p, levels)
	if err != nil {
		return nil, err
	}
	p1, err := PrepareFramePyramid(f1, p, levels)
	if err != nil {
		return nil, err
	}
	return AssemblePair(p0, p1)
}

// FitPasses reports how many full-image surface-fit passes Prepare runs
// for these parameters (used by the cost models).
func FitPasses(pair Pair, p Params) int {
	n := 2 // Z0, Z1
	if p.SemiFluid() {
		if !(pair.I0 == pair.Z0 && p.NST == p.NS) {
			n++
		}
		if !(pair.I1 == pair.Z1 && p.NST == p.NS) {
			n++
		}
		n += 2 * len(pair.Extra) // multispectral discriminant fits
	}
	return n
}

// FrameFitPasses reports how many full-image fit passes PrepareFrame runs
// for one frame — the per-frame share of FitPasses.
func FrameFitPasses(f Frame, p Params) int {
	n := 1 // surface
	if p.SemiFluid() {
		if !(f.I == f.Surface() && p.NST == p.NS) {
			n++
		}
		n += len(f.Extra)
	}
	return n
}
