package core

import (
	"sma/internal/grid"
	"sma/internal/surface"
)

// Prepared holds the per-image differential geometry the tracker consumes:
// fitted surface geometry (normals, slopes, E, G) of the z-surfaces at
// both timesteps and the intensity-surface discriminant fields the
// semi-fluid mapping matches on. This is the paper's "Surface fit" +
// "Compute geometric variables" stage (Tables 2 and 4).
type Prepared struct {
	P      Params
	W, H   int
	G0, G1 *surface.Field // geometry of Z0 and Z1
	D0, D1 *grid.Grid     // intensity discriminants at t and t+1
	// Extra holds discriminant fields of additional spectral channels
	// (multispectral extension; empty unless the pair carries channels
	// and the semi-fluid model is active).
	Extra []ExtraChannel
}

// ExtraChannel is one prepared multispectral band: the discriminant fields
// the semi-fluid matcher compares.
type ExtraChannel struct {
	D0, D1 *grid.Grid
}

// Prepare fits quadratic patches at every pixel of the surface images
// (radius NS) and, when the semi-fluid model is active, of the intensity
// images (radius NST) to obtain discriminant fields. Four full-image fit
// passes, exactly as the paper counts them: "local surface patches are fit
// for each pixel in both the intensity and surface images at both time
// steps ... over one million separate Gaussian-eliminations" at 512².
func Prepare(pair Pair, p Params) (*Prepared, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	zf, err := surface.NewFitter(p.NS)
	if err != nil {
		return nil, err
	}
	out := &Prepared{P: p, W: pair.I0.W, H: pair.I0.H}
	out.G0 = zf.FitAll(pair.Z0)
	out.G1 = zf.FitAll(pair.Z1)
	if p.SemiFluid() {
		imf := zf
		if p.NST != p.NS {
			if imf, err = surface.NewFitter(p.NST); err != nil {
				return nil, err
			}
		}
		if pair.I0 == pair.Z0 && p.NST == p.NS {
			out.D0 = out.G0.D
		} else {
			out.D0 = imf.FitAll(pair.I0).D
		}
		if pair.I1 == pair.Z1 && p.NST == p.NS {
			out.D1 = out.G1.D
		} else {
			out.D1 = imf.FitAll(pair.I1).D
		}
		for _, c := range pair.Extra {
			out.Extra = append(out.Extra, ExtraChannel{
				D0: imf.FitAll(c.I0).D,
				D1: imf.FitAll(c.I1).D,
			})
		}
	}
	return out, nil
}

// FitPasses reports how many full-image surface-fit passes Prepare runs
// for these parameters (used by the cost models).
func FitPasses(pair Pair, p Params) int {
	n := 2 // Z0, Z1
	if p.SemiFluid() {
		if !(pair.I0 == pair.Z0 && p.NST == p.NS) {
			n++
		}
		if !(pair.I1 == pair.Z1 && p.NST == p.NS) {
			n++
		}
		n += 2 * len(pair.Extra) // multispectral discriminant fits
	}
	return n
}
