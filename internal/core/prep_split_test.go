package core

import (
	"strings"
	"testing"

	"sma/internal/grid"
	"sma/internal/synth"
)

// TestPrepareFrameMatchesFusedPrepare verifies the refactor that enables
// streaming: preparing each frame separately and assembling the pair is
// field-for-field bit-identical to the fused pair-level Prepare, for the
// monocular, stereo and multispectral input shapes.
func TestPrepareFrameMatchesFusedPrepare(t *testing.T) {
	s := synth.Hurricane(18, 18, 31)
	i0, i1 := s.Frame(0), s.Frame(1)
	z0, z1 := s.Height(i0), s.Height(i1)
	extra0 := i0.GaussianBlur(1)
	extra1 := i1.GaussianBlur(1)

	cases := []struct {
		name string
		pair Pair
		p    Params
	}{
		{"monocular_semifluid", Monocular(i0, i1), Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 1}},
		{"monocular_continuous", Monocular(i0, i1), Params{NS: 2, NZS: 2, NZT: 3}},
		{"stereo", Pair{I0: i0, I1: i1, Z0: z0, Z1: z1}, Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 1}},
		{"distinct_nst", Monocular(i0, i1), Params{NS: 2, NZS: 2, NZT: 3, NST: 1, NSS: 1}},
		{"multispectral", Pair{I0: i0, I1: i1, Z0: z0, Z1: z1,
			Extra: []Channel{{I0: extra0, I1: extra1}}}, Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fused, err := Prepare(tc.pair, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			f0, f1 := tc.pair.Frames()
			p0, err := PrepareFrame(f0, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			p1, err := PrepareFrame(f1, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			split, err := AssemblePair(p0, p1)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range []struct {
				name      string
				got, want *grid.Grid
				optional  bool
			}{
				{"G0.D", split.G0.D, fused.G0.D, false},
				{"G1.D", split.G1.D, fused.G1.D, false},
				{"G0.Zx", split.G0.Zx, fused.G0.Zx, false},
				{"G1.Zy", split.G1.Zy, fused.G1.Zy, false},
				{"G0.E", split.G0.E, fused.G0.E, false},
				{"G1.G", split.G1.G, fused.G1.G, false},
				{"D0", split.D0, fused.D0, true},
				{"D1", split.D1, fused.D1, true},
			} {
				if g.optional && g.got == nil && g.want == nil {
					continue
				}
				if g.got == nil || g.want == nil {
					t.Fatalf("%s: nil mismatch (split %v, fused %v)", g.name, g.got == nil, g.want == nil)
				}
				if !g.got.Equal(g.want) {
					t.Fatalf("%s differs between split and fused preparation", g.name)
				}
			}
			if len(split.Extra) != len(fused.Extra) {
				t.Fatalf("extra channels: %d vs %d", len(split.Extra), len(fused.Extra))
			}
			for i := range split.Extra {
				if !split.Extra[i].D0.Equal(fused.Extra[i].D0) || !split.Extra[i].D1.Equal(fused.Extra[i].D1) {
					t.Fatalf("extra channel %d discriminants differ", i)
				}
			}
			// The split path must also produce bit-identical tracking.
			sm := BuildSemiMap(split)
			got := TrackPrepared(split, sm, Options{})
			want, err := TrackSequential(tc.pair, tc.p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Flow.Equal(want.Flow) || !got.Err.Equal(want.Err) {
				t.Fatal("tracking on split-prepared geometry differs from TrackSequential")
			}
		})
	}
}

// TestPrepareFrameSharesDiscriminant pins the monocular aliasing rule: the
// intensity discriminant is the surface fit's discriminant when the same
// grid serves both roles and NST == NS — one fit pass, not two.
func TestPrepareFrameSharesDiscriminant(t *testing.T) {
	s := synth.Hurricane(16, 16, 3)
	f := MonocularFrame(s.Frame(0))
	p := Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 1}
	fp, err := PrepareFrame(f, p)
	if err != nil {
		t.Fatal(err)
	}
	if fp.D != fp.G.D {
		t.Fatal("monocular frame with NST == NS did not share the surface discriminant")
	}
	if got, want := FrameFitPasses(f, p), 1; got != want {
		t.Fatalf("FrameFitPasses = %d, want %d", got, want)
	}
	// Distinct NST forces a second fit pass and a distinct field.
	p2 := p
	p2.NST = 1
	fp2, err := PrepareFrame(f, p2)
	if err != nil {
		t.Fatal(err)
	}
	if fp2.D == fp2.G.D {
		t.Fatal("NST != NS still shared the surface discriminant")
	}
	if got, want := FrameFitPasses(f, p2), 2; got != want {
		t.Fatalf("FrameFitPasses = %d, want %d", got, want)
	}
	// Continuous model computes no discriminant at all.
	p3 := Params{NS: 2, NZS: 2, NZT: 3}
	fp3, err := PrepareFrame(f, p3)
	if err != nil {
		t.Fatal(err)
	}
	if fp3.D != nil {
		t.Fatal("continuous model produced a discriminant field")
	}
}

// TestFrameFitPassesConsistentWithPair checks the per-frame cost split
// sums to the pair-level inventory the cost models use.
func TestFrameFitPassesConsistentWithPair(t *testing.T) {
	s := synth.Hurricane(16, 16, 5)
	i0, i1 := s.Frame(0), s.Frame(1)
	z0, z1 := s.Height(i0), s.Height(i1)
	for _, tc := range []struct {
		pair Pair
		p    Params
	}{
		{Monocular(i0, i1), Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 1}},
		{Pair{I0: i0, I1: i1, Z0: z0, Z1: z1}, Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 1}},
		{Pair{I0: i0, I1: i1, Z0: z0, Z1: z1, Extra: []Channel{{I0: i0, I1: i1}}},
			Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 1}},
		{Monocular(i0, i1), Params{NS: 2, NZS: 2, NZT: 3}},
	} {
		f0, f1 := tc.pair.Frames()
		split := FrameFitPasses(f0, tc.p) + FrameFitPasses(f1, tc.p)
		if fused := FitPasses(tc.pair, tc.p); split != fused {
			t.Fatalf("per-frame fit passes %d != pair fit passes %d", split, fused)
		}
	}
}

func TestAssemblePairValidation(t *testing.T) {
	s := synth.Hurricane(16, 16, 7)
	p := Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 1}
	a, err := PrepareFrame(MonocularFrame(s.Frame(0)), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssemblePair(a, nil); err == nil {
		t.Fatal("nil frame preparation accepted")
	}
	p2 := p
	p2.NZS = 3
	b, err := PrepareFrame(MonocularFrame(s.Frame(1)), p2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssemblePair(a, b); err == nil || !strings.Contains(err.Error(), "parameters") {
		t.Fatalf("parameter mismatch not rejected: %v", err)
	}
	small, err := PrepareFrame(MonocularFrame(grid.New(8, 8)), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssemblePair(a, small); err == nil || !strings.Contains(err.Error(), "sizes") {
		t.Fatalf("size mismatch not rejected: %v", err)
	}
	withExtra, err := PrepareFrame(Frame{I: s.Frame(1), Z: s.Frame(1),
		Extra: []*grid.Grid{s.Frame(1)}}, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssemblePair(a, withExtra); err == nil || !strings.Contains(err.Error(), "channel") {
		t.Fatalf("extra-channel mismatch not rejected: %v", err)
	}
}

func TestFrameValidate(t *testing.T) {
	g := grid.New(8, 8)
	if err := (Frame{}).Validate(); err == nil {
		t.Fatal("nil intensity accepted")
	}
	if err := (Frame{I: g, Z: grid.New(4, 4)}).Validate(); err == nil {
		t.Fatal("mismatched surface accepted")
	}
	if err := (Frame{I: g, Extra: []*grid.Grid{nil}}).Validate(); err == nil {
		t.Fatal("nil extra channel accepted")
	}
	if err := (Frame{I: g, Extra: []*grid.Grid{grid.New(4, 4)}}).Validate(); err == nil {
		t.Fatal("mismatched extra channel accepted")
	}
	if err := (Frame{I: g}).Validate(); err != nil {
		t.Fatalf("monocular frame rejected: %v", err)
	}
	if (Frame{I: g}).Surface() != g {
		t.Fatal("nil Z did not fall back to I")
	}
	if _, err := PrepareFrame(Frame{}, Params{NS: 2, NZS: 2, NZT: 3}); err == nil {
		t.Fatal("PrepareFrame accepted an invalid frame")
	}
	if _, err := PrepareFrame(MonocularFrame(g), Params{}); err == nil {
		t.Fatal("PrepareFrame accepted invalid params")
	}
}
