package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"

	"sma/internal/grid"
	"sma/internal/la"
)

// Coarse-to-fine multiresolution hypothesis search (ROADMAP item 3,
// docs/ALGORITHM.md, cost model in docs/PERFORMANCE.md §9). The paper's
// search is a brute-force argmin over (2·NZS+1)² shift hypotheses per
// pixel; the pyramid driver replaces it with an exhaustive sweep at a
// box-filtered coarse level (where the search radius shrinks by 2 per
// level) followed by small refinement windows seeded from the upsampled
// coarser flow, turning O(NZS²) hypothesis work into ~O(log NZS).
//
// Two per-pixel fallbacks keep the quality gate honest: a winner pinned
// to an interior refinement-window edge (the prior steered the window
// away from the true minimum) and a residual far above the frame median
// (coarse guidance found no plausible match, e.g. under aliasing) both
// re-run the pixel through today's exhaustive kernel, so poor guidance
// degrades to the exact answer instead of a wrong one.
//
// Only the continuous model is supported: the semi-fluid precompute is
// tied to a fixed global search window, which prior-guided search
// invalidates.

// PyramidOptions configures the coarse-to-fine search. The zero value
// disables it (Levels <= 1), preserving the bit-exact exhaustive default.
type PyramidOptions struct {
	// Levels is the number of resolution levels including full
	// resolution; values above the prepared coarse chain (or above what
	// the image size allows) are clamped, so requesting more levels than
	// exist degrades gracefully toward the exhaustive search.
	Levels int
	// RefineRadius is the half-width of the per-pixel refinement window
	// searched around the upsampled coarser estimate (0 selects the
	// default of DefaultRefineRadius). A radius covering the full search
	// window (>= 2·NZS) makes the level-0 sweep enumerate exactly the
	// exhaustive hypothesis set, bit-identically.
	RefineRadius int
	// FallbackFactor triggers the per-pixel exhaustive fallback when a
	// pixel's residual exceeds this multiple of the frame's median
	// residual (0 selects DefaultFallbackFactor; negative disables the
	// residual trigger, leaving only the window-edge trigger).
	FallbackFactor float64
}

const (
	// DefaultRefineRadius is the refinement half-width when
	// PyramidOptions.RefineRadius is zero: ±2 tolerates one pixel of
	// prior rounding error plus one pixel of coarse-estimate error.
	DefaultRefineRadius = 2
	// DefaultFallbackFactor is the residual-trigger multiple when
	// PyramidOptions.FallbackFactor is zero.
	DefaultFallbackFactor = 8
	// fallbackResidualFloor keeps the residual trigger meaningful on
	// synthetic scenes whose median residual is at the noise floor: the
	// threshold never drops below this absolute value.
	fallbackResidualFloor = 1e-12
)

// Enabled reports whether the options request the coarse-to-fine search.
func (po PyramidOptions) Enabled() bool { return po.Levels > 1 }

func (po PyramidOptions) refineRadius() int {
	if po.RefineRadius <= 0 {
		return DefaultRefineRadius
	}
	return po.RefineRadius
}

// PyramidStats reports what the coarse-to-fine driver actually did — the
// observable side of the §9 cost model. All counters are deterministic:
// they are sums over per-pixel quantities that do not depend on worker
// scheduling.
type PyramidStats struct {
	// Levels is the level count actually run (after clamping to the
	// prepared coarse chain).
	Levels int `json:"levels"`
	// RefineRadius is the resolved refinement half-width.
	RefineRadius int `json:"refine_radius"`
	// Pixels is the full-resolution pixel count.
	Pixels int64 `json:"pixels"`
	// Hypotheses counts every hypothesis evaluation across all levels
	// and the fallback pass.
	Hypotheses int64 `json:"hypotheses"`
	// HypPerPixel is Hypotheses / Pixels — the number the §9 cost model
	// predicts.
	HypPerPixel float64 `json:"hyp_per_pixel"`
	// ExhaustivePerPixel is the (2·NZS+1)² hypothesis count the
	// exhaustive search would evaluate per pixel.
	ExhaustivePerPixel int `json:"exhaustive_per_pixel"`
	// FallbackPixels counts level-0 pixels re-run through the exhaustive
	// kernel; EdgeFallbacks and ResidualFallbacks split them by trigger
	// (a pixel tripping both counts under the edge trigger).
	FallbackPixels    int64   `json:"fallback_pixels"`
	FallbackFrac      float64 `json:"fallback_frac"`
	EdgeFallbacks     int64   `json:"edge_fallbacks"`
	ResidualFallbacks int64   `json:"residual_fallbacks"`
}

// TrackPyramid is the hierarchical coarse-to-fine extension the paper's
// §6 lists as future work ("adaptive hierarchical non-square template and
// search windows"), mirroring the multiresolution strategy its ASA stereo
// substrate already uses: the pair is tracked at a coarse resolution
// first, and each finer level searches a small window centered on the
// upsampled coarser estimate. This entry point runs in extended-reach
// mode — refinement centers are not clamped to the full-resolution search
// window, so the reachable displacement grows toward NZS·2^(levels−1)
// while per-level cost stays fixed. For the in-window accelerator whose
// output is always a member of the exhaustive hypothesis set (with
// exhaustive fallback), set Options.Pyramid and use the parallel driver
// or TrackPyramidPreparedCtx.
func TrackPyramid(pair Pair, p Params, levels int, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.SemiFluid() {
		return nil, fmt.Errorf("core: TrackPyramid requires the continuous model (NSS = 0)")
	}
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	if levels < 1 {
		return nil, fmt.Errorf("core: need at least one pyramid level, got %d", levels)
	}
	prep, err := PreparePyramid(pair, p, levels)
	if err != nil {
		return nil, err
	}
	o := opt
	o.Pyramid.Levels = levels
	workers := opt.HostWorkers
	if workers < 1 {
		workers = 1
	}
	//smavet:allow ctxflow -- non-ctx compatibility entry point: a deliberate uncancellable root
	res, _, err := trackPyramidCtx(context.Background(), prep, o, workers, true)
	return res, err
}

// TrackPyramidPreparedCtx runs the coarse-to-fine accelerated search on
// pyramid-prepared geometry (PreparePyramid) and reports its cost
// statistics. Unlike TrackPyramid it stays inside the exhaustive search
// window: every reported displacement is a member of the (2·NZS+1)²
// hypothesis set, refinement windows are clamped into the per-level
// window, and the per-pixel fallback re-runs suspect pixels through the
// exhaustive kernel. With RefineRadius >= 2·NZS the result is
// bit-identical to TrackPrepared. Results are bit-identical at every
// worker count.
func TrackPyramidPreparedCtx(ctx context.Context, prep *Prepared, opt Options, workers int) (*Result, *PyramidStats, error) {
	return trackPyramidCtx(ctx, prep, opt, workers, false)
}

// scaledRadius is the search radius at pyramid level l: the full-
// resolution radius shrinks by 2 per level, never below 1.
func scaledRadius(r, l int) int {
	s := (r + (1 << l) - 1) >> l // ceil(r / 2^l)
	if s < 1 {
		s = 1
	}
	return s
}

// trackPyramidCtx is the shared coarse-to-fine driver. extend selects the
// legacy extended-reach behavior of TrackPyramid (full ±NZS sweep at the
// coarsest level, unclamped refinement centers, no fallback); otherwise
// it runs the in-window accelerator with exhaustive fallback.
func trackPyramidCtx(ctx context.Context, prep *Prepared, opt Options, workers int, extend bool) (*Result, *PyramidStats, error) {
	if ctx == nil {
		ctx = context.Background() //smavet:allow ctxflow -- nil-guard: a nil ctx documents "never cancel", and there is nothing to derive from
	}
	p := prep.P
	if p.SemiFluid() {
		return nil, nil, fmt.Errorf("core: pyramid search requires the continuous model (NSS = 0)")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	levels := opt.Pyramid.Levels
	if levels < 1 {
		levels = 1
	}
	if built := 1 + len(prep.Coarse); levels > built {
		levels = built
	}
	refine := opt.Pyramid.refineRadius()
	srx, sry := p.SearchRX(), p.SearchRY()
	st := &PyramidStats{
		Levels:             levels,
		RefineRadius:       refine,
		Pixels:             int64(prep.W) * int64(prep.H),
		ExhaustivePerPixel: p.Hypotheses(),
	}

	preps := make([]*Prepared, 0, levels)
	preps = append(preps, prep)
	preps = append(preps, prep.Coarse[:levels-1]...)

	var prior *grid.VectorField
	var res *Result
	var edge []bool
	for l := levels - 1; l >= 0; l-- {
		lp := preps[l]
		if prior != nil {
			// Promote the coarser flow: double the displacements and
			// resample to this level's dimensions.
			u := prior.U.Upsample2(lp.W, lp.H, 2)
			v := prior.V.Upsample2(lp.W, lp.H, 2)
			prior = &grid.VectorField{U: u, V: v}
		}
		// Per-level window geometry: baseR is the exhaustive radius used
		// when no prior exists (the coarsest level); capR clamps
		// refinement centers and window edges. In extend mode centers
		// roam freely and the coarsest sweep uses the full radius.
		baseRX, baseRY := scaledRadius(srx, l), scaledRadius(sry, l)
		capX, capY := baseRX, baseRY
		refX, refY := refine, refine
		if extend {
			// Legacy reach: every level re-searches the full ±NZS window
			// around the promoted prior, and centers roam freely.
			baseRX, baseRY = srx, sry
			capX, capY = math.MaxInt32/2, math.MaxInt32/2
			refX, refY = maxInt(refine, srx), maxInt(refine, sry)
		}
		// The window-edge fallback trigger only applies at full
		// resolution in accelerator mode, and only when a prior guided
		// the window.
		if l == 0 && !extend && levels > 1 {
			edge = make([]bool, lp.W*lp.H)
		}
		keep := opt.KeepMotion && l == 0
		var err error
		res, err = pyramidLevel(ctx, lp, opt, workers, prior,
			baseRX, baseRY, capX, capY, refX, refY, keep, edge, &st.Hypotheses)
		if err != nil {
			return nil, nil, err
		}
		prior = res.Flow
	}
	if !extend && levels > 1 {
		if err := pyramidFallback(ctx, prep, opt, workers, res, edge, st); err != nil {
			return nil, nil, err
		}
	}
	st.HypPerPixel = float64(st.Hypotheses) / float64(st.Pixels)
	if st.FallbackPixels > 0 {
		st.FallbackFrac = float64(st.FallbackPixels) / float64(st.Pixels)
	}
	return res, st, nil
}

// pyramidLevel runs one level's windowed hypothesis sweep with the
// work-stealing tile scheduler. prior == nil sweeps ±baseR exhaustively
// (the coarsest level); otherwise each pixel searches a ±refine window
// around its prior, with center and window clamped into ±capR. edge, when
// non-nil, records pixels whose winner sat on an interior window edge —
// the prior-misguidance fallback trigger. hyps accumulates hypothesis
// evaluations (atomically, once per row, so the sum is deterministic).
func pyramidLevel(ctx context.Context, lp *Prepared, opt Options, workers int, prior *grid.VectorField,
	baseRX, baseRY, capX, capY, refX, refY int, keepMotion bool, edge []bool, hyps *int64) (*Result, error) {
	w, h := lp.W, lp.H
	res := &Result{Flow: grid.NewVectorField(w, h), Err: grid.New(w, h)}
	if keepMotion {
		res.Motion = make([]*grid.Grid, 6)
		for i := range res.Motion {
			res.Motion[i] = grid.New(w, h)
		}
	}
	tw, th := pyramidTileSize(lp.P, opt, w, h, workers)
	g := newTileGrid(w, h, tw, th)
	err := forEachTileRow(ctx, g, workers, func() func(t tileRect, y int) {
		t := newTracker(lp, nil, opt)
		return func(tile tileRect, y int) {
			var rowHyps int64
			for x := tile.X0; x < tile.X1; x++ {
				lox, hix := -baseRX, baseRX
				loy, hiy := -baseRY, baseRY
				if prior != nil {
					u, v := prior.At(x, y)
					cx := clampInt(int(math.Round(float64(u))), -capX, capX)
					cy := clampInt(int(math.Round(float64(v))), -capY, capY)
					lox, hix = maxInt(cx-refX, -capX), minInt(cx+refX, capX)
					loy, hiy = maxInt(cy-refY, -capY), minInt(cy+refY, capY)
				}
				hx, hy, eps, theta := t.trackPixelWindow(x, y, lox, hix, loy, hiy)
				res.Flow.Set(x, y, float32(hx), float32(hy))
				res.Err.Set(x, y, float32(eps))
				if keepMotion {
					for i := range res.Motion {
						res.Motion[i].Set(x, y, float32(theta[i]))
					}
				}
				if edge != nil {
					edge[y*w+x] = (lox > -capX && hx == lox) || (hix < capX && hx == hix) ||
						(loy > -capY && hy == loy) || (hiy < capY && hy == hiy)
				}
				rowHyps += int64(hix-lox+1) * int64(hiy-loy+1)
			}
			atomic.AddInt64(hyps, rowHyps)
		}
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// pyramidFallback re-runs suspect level-0 pixels through the exhaustive
// kernel: pixels flagged by the window-edge trigger plus pixels whose
// residual exceeds FallbackFactor × the frame's median residual. Both
// triggers read only completed level-0 output, so the pixel set — and
// therefore the result — is deterministic at every worker count.
func pyramidFallback(ctx context.Context, prep *Prepared, opt Options, workers int, res *Result, edge []bool, st *PyramidStats) error {
	w, h := prep.W, prep.H
	need := edge
	if need == nil {
		need = make([]bool, w*h)
	}
	for _, f := range need {
		if f {
			st.EdgeFallbacks++
		}
	}
	factor := opt.Pyramid.FallbackFactor
	if factor == 0 {
		factor = DefaultFallbackFactor
	}
	if factor > 0 {
		thr := factor * medianFloat32(res.Err.Data)
		if thr < fallbackResidualFloor {
			thr = fallbackResidualFloor
		}
		for i, e := range res.Err.Data {
			if float64(e) > thr && !need[i] {
				need[i] = true
				st.ResidualFallbacks++
			}
		}
	}
	st.FallbackPixels = st.EdgeFallbacks + st.ResidualFallbacks
	if st.FallbackPixels == 0 {
		return nil
	}
	perPixel := int64(prep.P.Hypotheses())
	tw, th := pyramidTileSize(prep.P, opt, w, h, workers)
	g := newTileGrid(w, h, tw, th)
	var extra int64
	err := forEachTileRow(ctx, g, workers, func() func(t tileRect, y int) {
		t := newTracker(prep, nil, opt)
		return func(tile tileRect, y int) {
			var rowHyps int64
			for x := tile.X0; x < tile.X1; x++ {
				if !need[y*w+x] {
					continue
				}
				hx, hy, eps, theta := t.trackPixel(x, y)
				res.Flow.Set(x, y, float32(hx), float32(hy))
				res.Err.Set(x, y, float32(eps))
				if res.Motion != nil {
					for i := range res.Motion {
						res.Motion[i].Set(x, y, float32(theta[i]))
					}
				}
				rowHyps += perPixel
			}
			if rowHyps > 0 {
				atomic.AddInt64(&extra, rowHyps)
			}
		}
	})
	if err != nil {
		return err
	}
	st.Hypotheses += atomic.LoadInt64(&extra)
	return nil
}

// pyramidTileSize resolves the tile shape for a level, honoring the
// TileW/TileH overrides like the parallel driver does.
func pyramidTileSize(p Params, opt Options, w, h, workers int) (int, int) {
	tw, th := opt.TileW, opt.TileH
	if side := chooseTileSize(p, w, h, workers); tw <= 0 {
		tw = side
		if th <= 0 {
			th = side
		}
	} else if th <= 0 {
		th = tw
	}
	return tw, th
}

// trackPixelWindow is trackPixelFrom over an explicit rectangular
// hypothesis window [lox,hix]×[loy,hiy]. The anchor hypothesis — zero
// displacement clamped into the window — is scored first at an infinite
// bound, then the window is swept in raster order with the same strict-<
// acceptance; when the window equals the full ±NZS search window this
// enumerates exactly trackPixelFrom(x, y, 0, 0)'s sequence, which is what
// makes the full-radius pyramid configuration bit-identical to the
// exhaustive search. Batched widths feed the same order through
// scoreHypLanes in groups of nlanes, mirroring trackPixelBatchFrom.
func (t *tracker) trackPixelWindow(x, y, lox, hix, loy, hiy int) (hx, hy int, eps float64, theta la.Vec6) {
	ax := clampInt(0, lox, hix)
	ay := clampInt(0, loy, hiy)
	if useReferenceKernel {
		hx, hy = ax, ay
		eps, theta = t.scoreReference(x, y, ax, ay)
		for dy := loy; dy <= hiy; dy++ {
			for dx := lox; dx <= hix; dx++ {
				if dx == ax && dy == ay {
					continue
				}
				e, th := t.scoreReference(x, y, dx, dy)
				if e < eps {
					eps = e
					hx, hy = dx, dy
					theta = th
				}
			}
		}
		return hx, hy, eps, theta
	}
	t.preparePixel(x, y)
	hx, hy = ax, ay
	eps, theta, _ = t.scoreHyp(x, y, ax, ay, math.Inf(1))
	if t.nlanes > 1 {
		var lhx, lhy [la.BatchLanes]int
		n := 0
		for dy := loy; dy <= hiy; dy++ {
			for dx := lox; dx <= hix; dx++ {
				if dx == ax && dy == ay {
					continue
				}
				lhx[n], lhy[n] = dx, dy
				n++
				if n == t.nlanes {
					hx, hy, eps, theta = t.scoreHypLanes(x, y, lhx[:n], lhy[:n], hx, hy, eps, theta)
					n = 0
				}
			}
		}
		if n > 0 {
			hx, hy, eps, theta = t.scoreHypLanes(x, y, lhx[:n], lhy[:n], hx, hy, eps, theta)
		}
		return hx, hy, eps, theta
	}
	for dy := loy; dy <= hiy; dy++ {
		for dx := lox; dx <= hix; dx++ {
			if dx == ax && dy == ay {
				continue
			}
			e, th, pruned := t.scoreHyp(x, y, dx, dy, eps)
			if !pruned && e < eps {
				eps = e
				hx, hy = dx, dy
				theta = th
			}
		}
	}
	return hx, hy, eps, theta
}

// medianFloat32 is the lower median of vs (deterministic for even
// lengths), computed in float64.
func medianFloat32(vs []float32) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := make([]float64, len(vs))
	for i, v := range vs {
		s[i] = float64(v)
	}
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TrackGuided runs one continuous-model tracking pass with per-pixel
// search centers taken from a prior displacement field (for example the
// previous frame pair's flow — temporal coherence — or a coarser pyramid
// level). The search window covers prior ± NZS per axis.
func TrackGuided(pair Pair, p Params, prior *grid.VectorField, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.SemiFluid() {
		return nil, fmt.Errorf("core: TrackGuided requires the continuous model (NSS = 0)")
	}
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	if prior != nil {
		if pw, ph := prior.Bounds(); pw != pair.I0.W || ph != pair.I0.H {
			return nil, fmt.Errorf("core: prior field %dx%d does not match image %dx%d",
				pw, ph, pair.I0.W, pair.I0.H)
		}
	}
	prep, err := Prepare(pair, p)
	if err != nil {
		return nil, err
	}
	return trackWithPrior(prep, prior, opt), nil
}

// trackWithPrior runs the hypothesis search with per-pixel search centers
// taken from a prior flow field (nil means zero centers everywhere).
func trackWithPrior(prep *Prepared, prior *grid.VectorField, opt Options) *Result {
	w, h := prep.W, prep.H
	res := &Result{Flow: grid.NewVectorField(w, h), Err: grid.New(w, h)}
	if opt.KeepMotion {
		res.Motion = make([]*grid.Grid, 6)
		for i := range res.Motion {
			res.Motion[i] = grid.New(w, h)
		}
	}
	t := newTracker(prep, nil, opt)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			bx, by := 0, 0
			if prior != nil {
				u, v := prior.At(x, y)
				bx = int(math.Round(float64(u)))
				by = int(math.Round(float64(v)))
			}
			hx, hy, eps, theta := t.trackPixelFrom(x, y, bx, by)
			res.Flow.Set(x, y, float32(hx), float32(hy))
			res.Err.Set(x, y, float32(eps))
			if opt.KeepMotion {
				for i := range res.Motion {
					res.Motion[i].Set(x, y, float32(theta[i]))
				}
			}
		}
	}
	return res
}
