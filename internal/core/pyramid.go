package core

import (
	"fmt"
	"math"

	"sma/internal/grid"
)

// TrackPyramid is the hierarchical coarse-to-fine extension the paper's
// §6 lists as future work ("adaptive hierarchical non-square template and
// search windows"), mirroring the multiresolution strategy its ASA stereo
// substrate already uses: the sequence pair is tracked at a coarse
// resolution first, and each finer level searches a small window centered
// on the upsampled coarser estimate. The reachable displacement grows as
// NZS·2^(levels−1) while per-level cost stays fixed.
//
// Only the continuous model is supported: the semi-fluid precompute is
// tied to a fixed global search window, which prior-guided search
// invalidates.
func TrackPyramid(pair Pair, p Params, levels int, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.SemiFluid() {
		return nil, fmt.Errorf("core: TrackPyramid requires the continuous model (NSS = 0)")
	}
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	if levels < 1 {
		return nil, fmt.Errorf("core: need at least one pyramid level, got %d", levels)
	}

	// Build image pyramids, sharing levels when surfaces alias intensity.
	ip0 := grid.NewPyramid(pair.I0, levels)
	ip1 := grid.NewPyramid(pair.I1, levels)
	zp0 := ip0
	zp1 := ip1
	if pair.Z0 != pair.I0 {
		zp0 = grid.NewPyramid(pair.Z0, levels)
	}
	if pair.Z1 != pair.I1 {
		zp1 = grid.NewPyramid(pair.Z1, levels)
	}
	n := len(ip0.Levels)

	var prior *grid.VectorField
	var res *Result
	for l := n - 1; l >= 0; l-- {
		lp := Pair{I0: ip0.Levels[l], I1: ip1.Levels[l], Z0: zp0.Levels[l], Z1: zp1.Levels[l]}
		prep, err := Prepare(lp, p)
		if err != nil {
			return nil, err
		}
		if prior != nil {
			// Promote the coarser flow: double the displacements and
			// resample to this level's dimensions.
			u := prior.U.Upsample2(prep.W, prep.H, 2)
			v := prior.V.Upsample2(prep.W, prep.H, 2)
			prior = &grid.VectorField{U: u, V: v}
		}
		res = trackWithPrior(prep, prior, opt)
		prior = res.Flow
	}
	return res, nil
}

// trackWithPrior runs the hypothesis search with per-pixel search centers
// taken from a prior flow field (nil means zero centers everywhere).
func trackWithPrior(prep *Prepared, prior *grid.VectorField, opt Options) *Result {
	w, h := prep.W, prep.H
	res := &Result{Flow: grid.NewVectorField(w, h), Err: grid.New(w, h)}
	if opt.KeepMotion {
		res.Motion = make([]*grid.Grid, 6)
		for i := range res.Motion {
			res.Motion[i] = grid.New(w, h)
		}
	}
	t := newTracker(prep, nil, opt)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			bx, by := 0, 0
			if prior != nil {
				u, v := prior.At(x, y)
				bx = int(math.Round(float64(u)))
				by = int(math.Round(float64(v)))
			}
			hx, hy, eps, theta := t.trackPixelFrom(x, y, bx, by)
			res.Flow.Set(x, y, float32(hx), float32(hy))
			res.Err.Set(x, y, float32(eps))
			if opt.KeepMotion {
				for i := range res.Motion {
					res.Motion[i].Set(x, y, float32(theta[i]))
				}
			}
		}
	}
	return res
}

// TrackGuided runs one continuous-model tracking pass with per-pixel
// search centers taken from a prior displacement field (for example the
// previous frame pair's flow — temporal coherence — or a coarser pyramid
// level). The search window covers prior ± NZS per axis.
func TrackGuided(pair Pair, p Params, prior *grid.VectorField, opt Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.SemiFluid() {
		return nil, fmt.Errorf("core: TrackGuided requires the continuous model (NSS = 0)")
	}
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	if prior != nil {
		if pw, ph := prior.Bounds(); pw != pair.I0.W || ph != pair.I0.H {
			return nil, fmt.Errorf("core: prior field %dx%d does not match image %dx%d",
				pw, ph, pair.I0.W, pair.I0.H)
		}
	}
	prep, err := Prepare(pair, p)
	if err != nil {
		return nil, err
	}
	return trackWithPrior(prep, prior, opt), nil
}
