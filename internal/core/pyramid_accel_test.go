package core

import (
	"context"
	"math"
	"testing"

	"sma/internal/grid"
	"sma/internal/synth"
)

// Tests of the in-window coarse-to-fine accelerator (Options.Pyramid):
// the full-radius bit-identity property, RMSE/argmin agreement vs the
// exhaustive search on the Figure 5/6 fixtures, the exhaustive fallback
// on an aliasing scene, and scheduling determinism.

// exhaustiveAgreement returns the fraction of pixels whose displacement
// matches exactly, plus the RMSE between the two fields.
func exhaustiveAgreement(a, b *grid.VectorField) (agree float64, rmse float64) {
	w, h := a.Bounds()
	same, tot := 0, 0
	var s float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			au, av := a.At(x, y)
			bu, bv := b.At(x, y)
			if au == bu && av == bv {
				same++
			}
			du := float64(au - bu)
			dv := float64(av - bv)
			s += du*du + dv*dv
			tot++
		}
	}
	return float64(same) / float64(tot), math.Sqrt(s / float64(tot))
}

// TestPyramidFullRadiusBitIdentical is the property test the smoke gate
// re-checks end to end: a RefineRadius covering the full search window
// makes the level-0 sweep enumerate the exhaustive hypothesis set in the
// exhaustive order, so the result must be bit-identical to TrackPrepared
// — at every batch width and worker count.
func TestPyramidFullRadiusBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Params
	}{
		{"nzs2", Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 0}},
		{"nzs4", Params{NS: 2, NZS: 4, NZT: 2}},
	} {
		s := synth.Hurricane(48, 48, 91)
		pair := Monocular(s.Frame(0), s.Frame(1))
		prep, err := PreparePyramid(pair, tc.p, 3)
		if err != nil {
			t.Fatal(err)
		}
		want := TrackPrepared(prep, nil, Options{})
		for _, batch := range []int{0, 1, 3} {
			for _, workers := range []int{1, 4} {
				opt := Options{BatchHyps: batch, Pyramid: PyramidOptions{
					Levels: 3, RefineRadius: 2 * tc.p.SearchRX(),
				}}
				got, st, err := TrackPyramidPreparedCtx(context.Background(), prep, opt, workers)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Flow.Equal(want.Flow) || !got.Err.Equal(want.Err) {
					t.Fatalf("%s batch=%d workers=%d: full-radius pyramid differs from exhaustive",
						tc.name, batch, workers)
				}
				if st.Levels != 3 {
					t.Fatalf("%s: ran %d levels, want 3", tc.name, st.Levels)
				}
			}
		}
	}
}

// TestPyramidAccuracyVsExhaustiveOnFixtures runs the accelerator on the
// Figure 5 (hurricane wind-barb) and Figure 6 (thunderstorm) fixtures and
// holds it to the acceptance bound: RMSE vs the exhaustive argmin ≤ 0.1
// grid units at the wind-barb tracers, with high exact-argmin agreement
// over the full field — while evaluating far fewer hypotheses per pixel.
func TestPyramidAccuracyVsExhaustiveOnFixtures(t *testing.T) {
	type fixture struct {
		name  string
		scene *synth.Scene
		p     Params
	}
	fig5 := fixture{"fig5-hurricane", synth.Hurricane(64, 64, 7), Params{NS: 2, NZS: 3, NZT: 3, NST: 2, NSS: 0}}
	fig6 := fixture{"fig6-thunderstorm", synth.Thunderstorm(64, 64, 11), Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 0}}
	for _, fx := range []fixture{fig5, fig6} {
		i0, i1 := fx.scene.Frame(0), fx.scene.Frame(1)
		pair := Monocular(i0, i1)
		prep, err := PreparePyramid(pair, fx.p, 3)
		if err != nil {
			t.Fatal(err)
		}
		exh := TrackPrepared(prep, nil, Options{})
		opt := Options{Pyramid: PyramidOptions{Levels: 3}}
		pyr, st, err := TrackPyramidPreparedCtx(context.Background(), prep, opt, 0)
		if err != nil {
			t.Fatal(err)
		}
		barbs := synth.Barbs(i0, 32, 8, 4)
		if rmse := pyr.Flow.RMSEAt(exh.Flow, barbs); rmse > 0.1 {
			t.Fatalf("%s: barb RMSE vs exhaustive %.3f > 0.1", fx.name, rmse)
		}
		agree, rmse := exhaustiveAgreement(pyr.Flow, exh.Flow)
		if agree < 0.9 {
			t.Fatalf("%s: argmin agreement %.3f < 0.9 (dense RMSE %.3f)", fx.name, agree, rmse)
		}
		// Hypothesis savings only materialize once the exhaustive window
		// outgrows the refinement windows (NZS ≥ 3 here); at NZS = 2 the
		// pyramid honestly costs slightly more, which BENCH_pyramid.json
		// reports as-is.
		if fx.p.NZS >= 3 && st.HypPerPixel >= float64(st.ExhaustivePerPixel) {
			t.Fatalf("%s: pyramid evaluated %.1f hyp/px, exhaustive needs only %d",
				fx.name, st.HypPerPixel, st.ExhaustivePerPixel)
		}
	}
}

// aliasingPair builds the scene that defeats coarse guidance: a strong
// static low-frequency ramp plus a fine high-frequency texture translating
// by (3, 0). Box downsampling averages the fine texture away, so coarse
// levels lock onto the static ramp and steer the refinement windows to
// zero — only the window-edge/residual fallback can recover the exhaustive
// answer at full resolution.
func aliasingPair(w, h int) Pair {
	n := synth.NewNoise(123)
	mk := func(shift float64) *grid.Grid {
		g := grid.New(w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				low := 40 * math.Sin(2*math.Pi*float64(x)/float64(w))
				fine := 30 * n.Value(4*(float64(x)-shift), 4*float64(y))
				g.Set(x, y, float32(128+low+fine))
			}
		}
		return g
	}
	return Monocular(mk(0), mk(3))
}

// TestPyramidFallbackTriggersOnAliasing forces the exhaustive path: the
// aliasing scene's coarse levels are misleading, so without the fallback
// the ±1 refinement windows around a zero prior could never reach the
// true 3-pixel shift. The drivers must detect this (window-edge pins,
// outlier residuals), re-run those pixels exhaustively, and land close to
// the exhaustive answer.
func TestPyramidFallbackTriggersOnAliasing(t *testing.T) {
	p := Params{NS: 2, NZS: 4, NZT: 3}
	pair := aliasingPair(64, 64)
	prep, err := PreparePyramid(pair, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	exh := TrackPrepared(prep, nil, Options{})
	opt := Options{Pyramid: PyramidOptions{Levels: 3, RefineRadius: 1}}
	pyr, st, err := TrackPyramidPreparedCtx(context.Background(), prep, opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.FallbackPixels == 0 {
		t.Fatal("aliasing scene triggered no exhaustive fallback")
	}
	agree, _ := exhaustiveAgreement(pyr.Flow, exh.Flow)
	if agree < 0.7 {
		t.Fatalf("with fallback, agreement vs exhaustive %.3f < 0.7 (fallback frac %.3f)",
			agree, st.FallbackFrac)
	}
}

// TestPyramidWorkerDeterminism pins the scheduling-independence contract:
// the accelerator's passes are barrier-separated and every fallback
// trigger reads only completed per-pixel data, so worker count must not
// change a single bit.
func TestPyramidWorkerDeterminism(t *testing.T) {
	s := synth.Thunderstorm(48, 48, 17)
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := contParams()
	prep, err := PreparePyramid(pair, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Pyramid: PyramidOptions{Levels: 3}}
	base, stBase, err := TrackPyramidPreparedCtx(context.Background(), prep, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, st, err := TrackPyramidPreparedCtx(context.Background(), prep, opt, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Flow.Equal(base.Flow) || !got.Err.Equal(base.Err) {
			t.Fatalf("workers=%d: pyramid result differs from serial", workers)
		}
		if st.Hypotheses != stBase.Hypotheses || st.FallbackPixels != stBase.FallbackPixels {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", workers, st, stBase)
		}
	}
	// The parallel driver must route Options.Pyramid to the same result.
	via := TrackPreparedParallel(prep, nil, opt, 4)
	if !via.Flow.Equal(base.Flow) {
		t.Fatal("TrackPreparedParallel(Options.Pyramid) differs from TrackPyramidPreparedCtx")
	}
}

// TestPreparePyramidChain pins the coarse-chain construction: halving
// dimensions, early stop at the 8-pixel floor, level clamping in the
// driver, and AssemblePair's mismatch rejection.
func TestPreparePyramidChain(t *testing.T) {
	s := synth.Hurricane(64, 64, 23)
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := contParams()
	prep, err := PreparePyramid(pair, p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.Coarse) != 3 {
		t.Fatalf("64px, 4 levels: got %d coarse levels, want 3", len(prep.Coarse))
	}
	for i, c := range prep.Coarse {
		want := 64 >> (i + 1)
		if c.W != want || c.H != want {
			t.Fatalf("coarse[%d] is %dx%d, want %dx%d", i, c.W, c.H, want, want)
		}
	}
	// Requesting more levels than the size allows stops at the floor
	// (8 px), and the driver clamps to what was built.
	deep, err := PreparePyramid(pair, p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if last := deep.Coarse[len(deep.Coarse)-1]; last.W < pyramidMinSide {
		t.Fatalf("coarse chain went below the %d-px floor: %d", pyramidMinSide, last.W)
	}
	res, st, err := TrackPyramidPreparedCtx(context.Background(), deep,
		Options{Pyramid: PyramidOptions{Levels: 10}}, 0)
	if err != nil || res == nil {
		t.Fatalf("clamped deep pyramid failed: %v", err)
	}
	if st.Levels != 1+len(deep.Coarse) {
		t.Fatalf("driver ran %d levels, want clamp to %d", st.Levels, 1+len(deep.Coarse))
	}

	// Mismatched coarse chains must be rejected at assembly.
	f0, f1 := pair.Frames()
	a, err := PrepareFramePyramid(f0, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PrepareFramePyramid(f1, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AssemblePair(a, b); err == nil {
		t.Fatal("mismatched coarse chains accepted")
	}

	// Semi-fluid preparation is rejected, as is a bad level count.
	if _, err := PrepareFramePyramid(f0, testParams(), 2); err == nil {
		t.Fatal("semi-fluid pyramid preparation accepted")
	}
	if _, err := PrepareFramePyramid(f0, p, 0); err == nil {
		t.Fatal("zero-level preparation accepted")
	}

	// Plain prepared geometry (no coarse chain) degrades to exhaustive.
	flat, err := Prepare(pair, p)
	if err != nil {
		t.Fatal(err)
	}
	got, st2, err := TrackPyramidPreparedCtx(context.Background(), flat,
		Options{Pyramid: PyramidOptions{Levels: 3}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Levels != 1 {
		t.Fatalf("flat prep ran %d levels, want 1", st2.Levels)
	}
	if want := TrackPrepared(flat, nil, Options{}); !got.Flow.Equal(want.Flow) {
		t.Fatal("flat-prep pyramid differs from exhaustive")
	}
}
