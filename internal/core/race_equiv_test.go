package core

import (
	"runtime"
	"testing"

	"sma/internal/maspar"
	"sma/internal/synth"
)

// TestParallelDriversBitIdenticalUnderRace is the enforcement half of the
// paper's equivalence claim ("the parallel algorithm obtained the same
// result as the sequential implementation"): both goroutine drivers —
// TrackParallel's tile-stealing workers and TrackMasPar's per-layer
// PE-span workers — must be bit-identical to TrackSequential for every
// worker count, including GOMAXPROCS. The suite runs under `make race`, so any
// unsynchronized write the smavet goroutinecapture check missed is also
// caught dynamically here.
func TestParallelDriversBitIdenticalUnderRace(t *testing.T) {
	s := synth.Hurricane(24, 24, 61)
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := testParams() // semi-fluid: exercises the SemiMap path too
	seq, err := TrackSequential(pair, p, Options{KeepMotion: true})
	if err != nil {
		t.Fatal(err)
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, workers := range workerCounts {
		par, err := TrackParallel(pair, p, Options{KeepMotion: true}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !par.Flow.Equal(seq.Flow) || !par.Err.Equal(seq.Err) {
			t.Fatalf("TrackParallel(workers=%d) differs from TrackSequential", workers)
		}
		for i := range par.Motion {
			if !par.Motion[i].Equal(seq.Motion[i]) {
				t.Fatalf("TrackParallel(workers=%d): motion parameter %d differs", workers, i)
			}
		}

		m := maspar.MustNew(maspar.ScaledConfig(4, 4))
		mas, err := TrackMasPar(m, pair, p, Options{HostWorkers: workers}, maspar.RasterReadout)
		if err != nil {
			t.Fatal(err)
		}
		if !mas.Flow.Equal(seq.Flow) || !mas.Err.Equal(seq.Err) {
			t.Fatalf("TrackMasPar(HostWorkers=%d) differs from TrackSequential", workers)
		}
	}
}
