package core

import (
	"math"

	"sma/internal/grid"
	"sma/internal/la"
)

// This file retains the naive per-hypothesis kernel — the direct
// transcription of the paper's cost model, which re-accumulates and
// re-eliminates the full 6×6 normal equations for every hypothesis — as
// the measured baseline for the optimized kernel in track.go. The two are
// bit-identical by construction (the optimized kernel only hoists
// hypothesis-invariant arithmetic and stops residual sums that provably
// cannot win); the conformance tests assert it, and the benchmark
// trajectory (eval.TrackThroughputExperiment → BENCH_track.json) measures
// the speedup against this path. Building with `-tags smaref` routes the
// whole tracker through it.
//
// The reference stays deliberately scalar: one hypothesis per pass, no
// batching, no lane scratch. The batch kernel (batch.go) is pinned to
// this path's bits at every batch width by the equivalence wall in
// kernel_equiv_test.go — only Options.Reassoc is allowed to diverge, and
// only within the tolerance bound documented in docs/PERFORMANCE.md §6.3.

// scoreReference evaluates ε(x, y; x+hx, y+hy) by rebuilding and
// eliminating the full normal equations for this single hypothesis.
func (t *tracker) scoreReference(x, y, hx, hy int) (eps float64, theta la.Vec6) {
	p := t.prep.P
	rx := p.TemplateRX()
	ry := p.TemplateRY()
	n := (2*rx + 1) * (2*ry + 1)
	buf := t.buf[:n*bufStride]

	g0 := t.prep.G0
	g1 := t.prep.G1
	var a la.Mat6
	var b la.Vec6
	k := 0
	for dy := -ry; dy <= ry; dy++ {
		for dx := -rx; dx <= rx; dx++ {
			px := x + dx
			py := y + dy
			qx := x + hx + dx
			qy := y + hy + dy
			if t.sm != nil && px >= 0 && px < t.prep.W && py >= 0 && py < t.prep.H {
				ddx, ddy := t.sm.Delta(px, py, hx, hy)
				qx += ddx
				qy += ddy
			}
			zx := float64(g0.Zx.At(px, py))
			zy := float64(g0.Zy.At(px, py))
			scale := math.Sqrt(1 + zx*zx + zy*zy)
			ni, nj, nk := g1.NormalAt(qx, qy)
			rhs0 := scale*ni + zx // |n0|·ni′ − (−zx)
			rhs1 := scale*nj + zy
			rhs2 := scale*nk - 1
			w0 := 1 / float64(g0.E.At(px, py))
			w1 := 1 / float64(g0.G.At(px, py))
			accumulateA(&a, zx, zy, w0, w1)
			accumulateB(&b, zx, zy, rhs0, rhs1, rhs2, w0, w1)
			buf[k+bufZx] = zx
			buf[k+bufZy] = zy
			buf[k+bufScale] = scale
			buf[k+bufW0] = w0
			buf[k+bufW1] = w1
			buf[k+bufR0] = rhs0
			buf[k+bufR1] = rhs1
			buf[k+bufR2] = rhs2
			k += bufStride
		}
	}
	symmetrize(&a)
	theta = solveMotion(&a, &b)
	if t.opt.Robust {
		theta = robustRefine(buf, theta, t.opt.HuberK)
	}
	eps = residualSum(buf, &theta)
	return eps, theta
}

// trackPixelFromReference is trackPixelFrom on the naive kernel: the same
// search order and tie-breaking, with every hypothesis fully evaluated.
func (t *tracker) trackPixelFromReference(x, y, bx, by int) (hx, hy int, eps float64, theta la.Vec6) {
	p := t.prep.P
	srx := p.SearchRX()
	sry := p.SearchRY()
	hx, hy = bx, by
	eps, theta = t.scoreReference(x, y, bx, by)
	for dy := -sry; dy <= sry; dy++ {
		for dx := -srx; dx <= srx; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			e, th := t.scoreReference(x, y, bx+dx, by+dy)
			if e < eps {
				eps = e
				hx, hy = bx+dx, by+dy
				theta = th
			}
		}
	}
	if t.sm != nil {
		dx, dy := t.sm.Delta(x, y, hx, hy)
		hx += dx
		hy += dy
	}
	return hx, hy, eps, theta
}

// TrackPreparedReference runs the hypothesis search with the retained
// naive kernel — TrackPrepared's bit-identical but unhoisted twin. It
// exists for the benchmark trajectory and the optimized-vs-reference
// equivalence tests; production callers should use TrackPrepared.
func TrackPreparedReference(prep *Prepared, sm *SemiMap, opt Options) *Result {
	w, h := prep.W, prep.H
	res := &Result{
		Flow: grid.NewVectorField(w, h),
		Err:  grid.New(w, h),
	}
	if opt.KeepMotion {
		res.Motion = make([]*grid.Grid, 6)
		for i := range res.Motion {
			res.Motion[i] = grid.New(w, h)
		}
	}
	t := newTracker(prep, sm, opt)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			hx, hy, eps, theta := t.trackPixelFromReference(x, y, 0, 0)
			res.Flow.Set(x, y, float32(hx), float32(hy))
			res.Err.Set(x, y, float32(eps))
			if opt.KeepMotion {
				for i := range res.Motion {
					res.Motion[i].Set(x, y, float32(theta[i]))
				}
			}
		}
	}
	return res
}
