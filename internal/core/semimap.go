package core

import "sma/internal/grid"

// SemiMap is the precomputed semi-fluid template mapping (paper eq. 9 and
// §4.1): for every image pixel p and every hypothesis offset h in the
// search area, the small displacement δ(p, h) that best re-matches the
// intensity-surface discriminant patch around p at time t against patches
// around p+h+δ at time t+1.
//
// Because the template neighborhoods of adjacent tracked pixels overlap,
// the mapping for (template pixel, hypothesis offset) is shared across all
// tracked pixels — the paper's key precomputation: "it is more efficient
// to pre-compute the template mapping for all pixels ... a template
// mapping is computed for each pixel (xs, ys) in the (2·Nzs+1)×(2·Nzs+1)
// neighborhood".
type SemiMap struct {
	W, H   int
	RX, RY int // search radii (hypothesis window) per axis
	NSS    int
	// DX/DY store δ per (pixel, hypothesis): index = (y·W + x)·hyps + hIdx.
	DX, DY []int8
}

// hyps returns the hypothesis count per pixel.
func (s *SemiMap) hyps() int { return (2*s.RX + 1) * (2*s.RY + 1) }

// hypIndex linearizes a hypothesis offset (hx, hy) ∈ [−RX, RX]×[−RY, RY].
func (s *SemiMap) hypIndex(hx, hy int) int {
	return (hy+s.RY)*(2*s.RX+1) + (hx + s.RX)
}

// Delta returns the semi-fluid adjustment δ for pixel (x, y) under
// hypothesis offset (hx, hy). Offsets outside the precomputed search
// window (possible under prior-guided search) return δ = 0.
func (s *SemiMap) Delta(x, y, hx, hy int) (dx, dy int) {
	if hx < -s.RX || hx > s.RX || hy < -s.RY || hy > s.RY {
		return 0, 0
	}
	i := (y*s.W+x)*s.hyps() + s.hypIndex(hx, hy)
	return int(s.DX[i]), int(s.DY[i])
}

// BuildSemiMap precomputes the semi-fluid template mapping for every pixel
// and hypothesis. For NSS = 0 (continuous model) it returns nil: Fsemi
// degenerates to Fcont ("when Nss = 0 then Fsemi reduces to the mapping
// Fcont").
//
// Matching minimizes fsemi(p; q) = Σ over the (2·NST+1)² patch of
// (D′(q+s) − D(p+s))² — the discriminant-change measure of eqs. 10–11 —
// over q = p+h+δ, |δ|∞ ≤ NSS. δ = (0, 0) is evaluated first and ties are
// broken in its favor (then scan order), so featureless regions keep the
// continuous mapping and results are deterministic.
//
// When extra multispectral channels are prepared (paper §6: "using
// multispectral information"), the discriminant differences are summed
// across all channels.
func BuildSemiMap(prep *Prepared) *SemiMap {
	p := prep.P
	if !p.SemiFluid() {
		return nil
	}
	w, h := prep.W, prep.H
	rx := p.SearchRX()
	ry := p.SearchRY()
	hyps := (2*rx + 1) * (2*ry + 1)
	sm := &SemiMap{W: w, H: h, RX: rx, RY: ry, NSS: p.NSS,
		DX: make([]int8, w*h*hyps), DY: make([]int8, w*h*hyps)}
	type chanPair struct{ d0, d1 *grid.Grid }
	channels := []chanPair{{prep.D0, prep.D1}}
	for _, c := range prep.Extra {
		channels = append(channels, chanPair{c.D0, c.D1})
	}
	nst := p.NST
	nss := p.NSS
	idx := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			for hy := -ry; hy <= ry; hy++ {
				for hx := -rx; hx <= rx; hx++ {
					score := func(dx, dy int) float64 {
						var s float64
						qx := x + hx + dx
						qy := y + hy + dy
						for _, ch := range channels {
							for sy := -nst; sy <= nst; sy++ {
								for sx := -nst; sx <= nst; sx++ {
									d := float64(ch.d1.At(qx+sx, qy+sy) - ch.d0.At(x+sx, y+sy))
									s += d * d
								}
							}
						}
						return s
					}
					bestDX, bestDY := 0, 0
					best := score(0, 0)
					for dy := -nss; dy <= nss; dy++ {
						for dx := -nss; dx <= nss; dx++ {
							if dx == 0 && dy == 0 {
								continue
							}
							if s := score(dx, dy); s < best {
								best = s
								bestDX, bestDY = dx, dy
							}
						}
					}
					sm.DX[idx] = int8(bestDX)
					sm.DY[idx] = int8(bestDY)
					idx++
				}
			}
		}
	}
	return sm
}
