package core

import (
	"sma/internal/grid"
	"sma/internal/la"
)

// TrackSequential runs the SMA algorithm exactly as the paper's
// "sequential (un-optimized) version ... used to form a baseline for
// comparing the correctness of the parallel algorithm results": prepare
// geometry, precompute the semi-fluid template mapping, then run the full
// hypothesis search pixel by pixel in raster order.
func TrackSequential(pair Pair, p Params, opt Options) (*Result, error) {
	prep, err := Prepare(pair, p)
	if err != nil {
		return nil, err
	}
	sm := BuildSemiMap(prep)
	return TrackPrepared(prep, sm, opt), nil
}

// TrackPrepared runs the hypothesis search on already-prepared geometry,
// letting callers stage (and time) preparation separately.
func TrackPrepared(prep *Prepared, sm *SemiMap, opt Options) *Result {
	w, h := prep.W, prep.H
	res := &Result{
		Flow: grid.NewVectorField(w, h),
		Err:  grid.New(w, h),
	}
	if opt.KeepMotion {
		res.Motion = make([]*grid.Grid, 6)
		for i := range res.Motion {
			res.Motion[i] = grid.New(w, h)
		}
	}
	t := newTracker(prep, sm, opt)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			hx, hy, eps, theta := t.trackPixel(x, y)
			res.Flow.Set(x, y, float32(hx), float32(hy))
			res.Err.Set(x, y, float32(eps))
			if opt.KeepMotion {
				for i := range res.Motion {
					res.Motion[i].Set(x, y, float32(theta[i]))
				}
			}
		}
	}
	return res
}

// TrackPixels tracks only the listed pixels (the paper's comparison mode:
// "only 32 pixels corresponding to the manually tracked wind barbs were
// compared"), returning a sparse displacement list aligned with pts.
func TrackPixels(prep *Prepared, sm *SemiMap, opt Options, pts []grid.Point) []la.Vec6 {
	t := newTracker(prep, sm, opt)
	out := make([]la.Vec6, len(pts))
	for i, pt := range pts {
		hx, hy, eps, theta := t.trackPixel(pt.X, pt.Y)
		out[i] = la.Vec6{float64(hx), float64(hy), eps, theta[0], theta[1], theta[2]}
	}
	return out
}

// OpCounts is the analytic per-pixel operation inventory of one tracking
// timestep — the quantity both the MasPar cost accounting and the
// sequential SGI projection are built from. Counts are per tracked pixel.
type OpCounts struct {
	FitPasses     int   // full-image surface-fit passes
	SurfaceFlops  int64 // per pixel per fit pass: accumulation work
	SurfaceGauss  int64 // 6×6 eliminations per pixel per fit pass (1)
	GeomFlops     int64 // normals/E/G/D per pixel per fit pass
	SemiMapFlops  int64 // semi-fluid mapping per pixel (all hypotheses)
	HypFlops      int64 // hypothesis matching per pixel (all hypotheses)
	HypGauss      int64 // eliminations per pixel (= Hypotheses())
	TemplateFetch int64 // neighborhood values read per pixel in matching
}

// CountOps derives the operation inventory from the parameters. The
// per-site constants model the optimized MPL kernels the paper describes:
// the motion accumulation exploits the reduction to (ni′²+nj′²) and nk′
// (§4.1), budgeted at 120 flops per template pixel plus 60 in the ε
// evaluation; each semi-fluid discriminant comparison (including its
// plural address arithmetic) is budgeted at 24 flops; the surface fit
// accumulates 12 flops per window pixel. These constants, together with
// the machine's published sustained rates, reproduce the magnitude and —
// more importantly — the ratios of the paper's Tables 2 and 4 (see
// EXPERIMENTS.md for the calibration notes).
func CountOps(p Params, fitPasses int) OpCounts {
	fitWin := int64(2*p.NS+1) * int64(2*p.NS+1)
	hyps := int64(p.Hypotheses())
	tw := int64(p.TemplatePixels())
	oc := OpCounts{
		FitPasses:     fitPasses,
		SurfaceFlops:  12 * fitWin,
		SurfaceGauss:  1,
		GeomFlops:     20,
		HypFlops:      hyps * tw * (120 + 60),
		HypGauss:      hyps,
		TemplateFetch: hyps * tw,
	}
	if p.SemiFluid() {
		ss := int64(2*p.NSS+1) * int64(2*p.NSS+1)
		st := int64(2*p.NST+1) * int64(2*p.NST+1)
		oc.SemiMapFlops = hyps * ss * st * 24
	}
	return oc
}

// ScoreOnce evaluates a single zero-offset correspondence hypothesis at
// (x, y) with the continuous mapping — the microbenchmark kernel behind
// the paper's Figure 4 (per-correspondence time vs z-template size).
func ScoreOnce(prep *Prepared, x, y int) float64 {
	t := newTracker(prep, nil, Options{})
	eps, _ := t.score(x, y, 0, 0)
	return eps
}
