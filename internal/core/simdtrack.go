package core

import (
	"fmt"
	"math"

	"sma/internal/grid"
	"sma/internal/la"
	"sma/internal/maspar"
)

// TrackSIMDContinuous executes continuous-model SMA tracking as a pure
// SIMD data path on the simulated MasPar: the surfaces are fitted on the
// machine (maspar.SIMDSurfaceFit), the per-pixel geometry fields are
// brought into each PE exclusively through neighborhood gathers over the
// X-net mesh, and the hypothesis search runs per memory layer in lockstep
// using only that gathered data — no access to host-side image state.
//
// This is the deepest-fidelity execution mode: where TrackMasPar charges
// the machine ledger and then computes functionally on host arrays,
// TrackSIMDContinuous moves every operand through the simulated machine.
// Because the mesh is toroidal while the host tracker clamps at image
// borders, results are guaranteed identical to TrackSequential only for
// pixels whose fit+template+search footprint stays inside the image
// (distance > NS + NZT + NZS + NS from the border); the equivalence test
// asserts exact agreement there.
func TrackSIMDContinuous(m *maspar.Machine, pair Pair, p Params, scheme maspar.FetchScheme) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.SemiFluid() {
		return nil, fmt.Errorf("core: TrackSIMDContinuous supports the continuous model only")
	}
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	w, h := pair.Z0.W, pair.Z0.H
	mp, err := maspar.NewHierarchical(m, w, h)
	if err != nil {
		return nil, err
	}

	// Stage 1+2 on the machine: distribute surfaces and fit.
	z0, err := maspar.Distribute(m, mp, pair.Z0)
	if err != nil {
		return nil, err
	}
	z1, err := maspar.Distribute(m, mp, pair.Z1)
	if err != nil {
		return nil, err
	}
	g0, err := maspar.SIMDSurfaceFit(m, z0, p.NS, scheme)
	if err != nil {
		return nil, err
	}
	g1, err := maspar.SIMDSurfaceFit(m, z1, p.NS, scheme)
	if err != nil {
		return nil, err
	}

	// Stage 4 data: gather the before-geometry across the template radius
	// and the after-normals across template+search.
	rT := p.TemplateRX()
	if ry := p.TemplateRY(); ry > rT {
		rT = ry
	}
	rQ := rT + p.SearchRX()
	if r := rT + p.SearchRY(); r > rQ {
		rQ = r
	}
	gather := func(img *maspar.Image, r int) *maspar.Neighborhoods {
		if scheme == maspar.SnakeReadout {
			return maspar.GatherSnake(img, r)
		}
		return maspar.GatherRaster(img, r)
	}
	zxN := gather(g0.Zx, rT)
	zyN := gather(g0.Zy, rT)
	eN := gather(g0.E, rT)
	gN := gather(g0.G, rT)
	niN := gather(g1.Ni, rQ)
	njN := gather(g1.Nj, rQ)
	nkN := gather(g1.Nk, rQ)

	// Lockstep hypothesis search per layer using gathered data only.
	res := &Result{Flow: grid.NewVectorField(w, h), Err: grid.New(w, h)}
	nproc := m.Cfg.NProc()
	oc := CountOps(p, 2)
	trx := p.TemplateRX()
	try := p.TemplateRY()
	srx := p.SearchRX()
	sry := p.SearchRY()
	nbuf := make([]float64, (2*trx+1)*(2*try+1)*bufStride)
	lrhs := make([]float64, (2*trx+1)*(2*try+1)*laneRHSStride)
	for l := 0; l < mp.Layers(); l++ {
		for pe := 0; pe < nproc; pe++ {
			x, y := mp.Invert(pe, l)
			if x >= w || y >= h {
				continue
			}
			bestE := math.Inf(1)
			bestHX, bestHY := 0, 0
			// Hypothesis-invariant pass: the gathered before-geometry and
			// the normal-equation matrix depend only on (x, y), so cache
			// the template invariants, accumulate A and factor it once —
			// the same hoisting the host tracker's preparePixel performs.
			var a la.Mat6
			k := 0
			for dy := -try; dy <= try; dy++ {
				for dx := -trx; dx <= trx; dx++ {
					zx := float64(zxN.At(x, y, dx, dy))
					zy := float64(zyN.At(x, y, dx, dy))
					scale := math.Sqrt(1 + zx*zx + zy*zy)
					w0 := 1 / float64(eN.At(x, y, dx, dy))
					w1 := 1 / float64(gN.At(x, y, dx, dy))
					accumulateA(&a, zx, zy, w0, w1)
					nbuf[k+bufZx] = zx
					nbuf[k+bufZy] = zy
					nbuf[k+bufScale] = scale
					nbuf[k+bufW0] = w0
					nbuf[k+bufW1] = w1
					k += bufStride
				}
			}
			symmetrize(&a)
			var mf motionFactor
			mf.factorMotion(&a)
			score := func(hx, hy int, bound float64) (float64, bool) {
				var b la.Vec6
				k := 0
				for dy := -try; dy <= try; dy++ {
					for dx := -trx; dx <= trx; dx++ {
						zx := nbuf[k+bufZx]
						zy := nbuf[k+bufZy]
						scale := nbuf[k+bufScale]
						ni := float64(niN.At(x, y, dx+hx, dy+hy))
						nj := float64(njN.At(x, y, dx+hx, dy+hy))
						nk := float64(nkN.At(x, y, dx+hx, dy+hy))
						rhs0 := scale*ni + zx
						rhs1 := scale*nj + zy
						rhs2 := scale*nk - 1
						accumulateB(&b, zx, zy, rhs0, rhs1, rhs2, nbuf[k+bufW0], nbuf[k+bufW1])
						nbuf[k+bufR0] = rhs0
						nbuf[k+bufR1] = rhs1
						nbuf[k+bufR2] = rhs2
						k += bufStride
					}
				}
				theta := mf.solveFactored(&b)
				return residualSumBounded(nbuf[:k], &theta, bound)
			}
			// Batched lockstep sweep: like scoreHypLanes, the gathered
			// template invariants are loaded once per pixel and feed up to
			// la.BatchLanes hypotheses' b accumulations; lanes fold into
			// the incumbent in order, so the result bits match the scalar
			// sweep exactly.
			scoreLanes := func(lhx, lhy []int, bhx, bhy int, beps float64) (int, int, float64) {
				L := len(lhx)
				var bb la.Vec6Lanes
				k, r := 0, 0
				for dy := -try; dy <= try; dy++ {
					for dx := -trx; dx <= trx; dx++ {
						zx := nbuf[k+bufZx]
						zy := nbuf[k+bufZy]
						scale := nbuf[k+bufScale]
						w0 := nbuf[k+bufW0]
						w1 := nbuf[k+bufW1]
						for l := 0; l < L; l++ {
							ni := float64(niN.At(x, y, dx+lhx[l], dy+lhy[l]))
							nj := float64(njN.At(x, y, dx+lhx[l], dy+lhy[l]))
							nk := float64(nkN.At(x, y, dx+lhx[l], dy+lhy[l]))
							rhs0 := scale*ni + zx
							rhs1 := scale*nj + zy
							rhs2 := scale*nk - 1
							bb[2][l] += w0 * zy * rhs0
							bb[3][l] += w0 * -zx * rhs0
							bb[4][l] += w0 * -rhs0
							bb[0][l] += w1 * -zy * rhs1
							bb[1][l] += w1 * zx * rhs1
							bb[5][l] += w1 * -rhs1
							bb[0][l] += rhs2
							bb[3][l] += rhs2
							lrhs[r+l] = rhs0
							lrhs[r+la.BatchLanes+l] = rhs1
							lrhs[r+2*la.BatchLanes+l] = rhs2
						}
						k += bufStride
						r += laneRHSStride
					}
				}
				thetas := mf.solveFactoredLanes(&bb, L)
				for l := 0; l < L; l++ {
					theta := thetas.Vec(l)
					if e, pruned := residualSumBoundedLane(nbuf[:k], lrhs, l, &theta, beps); !pruned && e < beps {
						beps = e
						bhx, bhy = lhx[l], lhy[l]
					}
				}
				return bhx, bhy, beps
			}
			bestE, _ = score(0, 0, math.Inf(1))
			var lhx, lhy [la.BatchLanes]int
			nb := 0
			for hy := -sry; hy <= sry; hy++ {
				for hx := -srx; hx <= srx; hx++ {
					if hx == 0 && hy == 0 {
						continue
					}
					lhx[nb], lhy[nb] = hx, hy
					nb++
					if nb == la.BatchLanes {
						bestHX, bestHY, bestE = scoreLanes(lhx[:nb], lhy[:nb], bestHX, bestHY, bestE)
						nb = 0
					}
				}
			}
			if nb > 0 {
				bestHX, bestHY, bestE = scoreLanes(lhx[:nb], lhy[:nb], bestHX, bestHY, bestE)
			}
			res.Flow.Set(x, y, float32(bestHX), float32(bestHY))
			res.Err.Set(x, y, float32(bestE))
		}
		// SIMD instruction charges for this layer's hypothesis sweep.
		m.ChargeFlops(oc.HypFlops)
		for g := int64(0); g < oc.HypGauss; g++ {
			m.ChargeGauss6()
		}
	}
	return res, nil
}
