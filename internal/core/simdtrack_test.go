package core

import (
	"testing"

	"sma/internal/maspar"
	"sma/internal/synth"
)

func TestTrackSIMDContinuousMatchesSequentialInterior(t *testing.T) {
	s := synth.Hurricane(32, 32, 111)
	pair := Monocular(s.Frame(0), s.Frame(1))
	p := contParams() // NS=2, NZS=2, NZT=3
	seq, err := TrackSequential(pair, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := maspar.MustNew(maspar.ScaledConfig(8, 8))
	simd, err := TrackSIMDContinuous(m, pair, p, maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	// Interior margin: fit + template + search + fit = 2+3+2+2 = 9.
	const margin = 9
	for y := margin; y < 32-margin; y++ {
		for x := margin; x < 32-margin; x++ {
			su, sv := seq.Flow.At(x, y)
			pu, pv := simd.Flow.At(x, y)
			if su != pu || sv != pv {
				t.Fatalf("SIMD flow(%d,%d) = (%v,%v), sequential (%v,%v)",
					x, y, pu, pv, su, sv)
			}
		}
	}
}

func TestTrackSIMDContinuousChargesMachine(t *testing.T) {
	s := synth.Thunderstorm(16, 16, 113)
	pair := Monocular(s.Frame(0), s.Frame(1))
	m := maspar.MustNew(maspar.ScaledConfig(4, 4))
	if _, err := TrackSIMDContinuous(m, pair, contParams(), maspar.RasterReadout); err != nil {
		t.Fatal(err)
	}
	if m.Cost.XNetShifts == 0 {
		t.Fatal("no mesh communication charged")
	}
	// 2 fit passes × 16 layers + 25 hypotheses × 16 layers of eliminations.
	want := int64(2*16 + 25*16)
	if m.Cost.GaussianElims != want {
		t.Fatalf("GaussianElims = %d, want %d", m.Cost.GaussianElims, want)
	}
}

func TestTrackSIMDContinuousRejectsSemiFluid(t *testing.T) {
	s := synth.Thunderstorm(16, 16, 115)
	pair := Monocular(s.Frame(0), s.Frame(1))
	m := maspar.MustNew(maspar.ScaledConfig(4, 4))
	if _, err := TrackSIMDContinuous(m, pair, testParams(), maspar.RasterReadout); err == nil {
		t.Fatal("semi-fluid accepted by the SIMD data path")
	}
}

func TestTrackSIMDSchemesAgree(t *testing.T) {
	s := synth.Hurricane(24, 24, 117)
	pair := Monocular(s.Frame(0), s.Frame(1))
	m1 := maspar.MustNew(maspar.ScaledConfig(8, 8))
	m2 := maspar.MustNew(maspar.ScaledConfig(8, 8))
	a, err := TrackSIMDContinuous(m1, pair, contParams(), maspar.RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrackSIMDContinuous(m2, pair, contParams(), maspar.SnakeReadout)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Flow.Equal(b.Flow) {
		t.Fatal("read-out scheme changed SIMD tracking results")
	}
}
