package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
)

// Pixel-tile work partitioning for the parallel tracking driver. The
// image is cut into fixed-size rectangular tiles which workers claim
// through a single atomic work-stealing index — a claimed tile is
// processed row by row, so context cancellation keeps the old row
// granularity: after cancel every worker finishes at most the row it is
// on. Tiles replace the per-row channel fan-out because a channel
// rendezvous per row cost more than a short row's work at small sizes
// (the size-64 regression in BENCH_track.json), while an atomic add per
// tile amortizes scheduling over tileW×tileH pixels and square-ish tiles
// keep the normals a pixel's search touches resident in cache across the
// tile's rows (model in docs/PERFORMANCE.md §7).

const (
	// tileL2Budget is the per-core cache footprint a tile's working set
	// should stay under — half a typical 1 MiB L2, leaving room for the
	// tracker scratch and the semi-fluid map.
	tileL2Budget = 512 << 10
	// tileBytesPerPixel: the hypothesis search reads the three float32
	// normal components of frame 2 per visited pixel.
	tileBytesPerPixel = 12
	// tileMinSide keeps per-tile scheduling overhead negligible even on
	// tiny inputs.
	tileMinSide = 8
	// tileBalanceFactor: keep at least this many tiles per worker so the
	// work-stealing index can even out per-tile cost variance (border
	// tiles take the slow normal path; early-exit rates differ by scene).
	tileBalanceFactor = 4
)

// chooseTileSize picks the tile side from the cache model in
// docs/PERFORMANCE.md §7: scoring a pixel touches the three normal
// fields in a halo of template+search+semi-fluid reach around it, so a
// side-s tile's working set is tileBytesPerPixel·(s+2·halo)² bytes.
// The cache bound solves that against tileL2Budget; the balance bound
// caps the side so at least tileBalanceFactor·workers tiles exist. The
// choice is pure scheduling — any side produces bit-identical results.
func chooseTileSize(p Params, w, h, workers int) int {
	halo := p.TemplateRX() + p.SearchRX() + p.NSS
	side := int(math.Sqrt(float64(tileL2Budget)/tileBytesPerPixel)) - 2*halo
	if workers > 0 {
		perTile := float64(w) * float64(h) / float64(tileBalanceFactor*workers)
		if bal := int(math.Ceil(math.Sqrt(perTile))); bal < side {
			side = bal
		}
	}
	if side < tileMinSide {
		side = tileMinSide
	}
	// Degenerate-grid guard (coarse pyramid levels are as small as 8×8):
	// when the minimum side would leave fewer tiles than workers, shrink
	// it — down to single-pixel tiles on the tiniest grids — so every
	// worker can claim at least one valid tile. The halo term above can
	// drive the cache bound negative on such grids; this bound, not the
	// cache model, is what keeps the tiling sane there.
	tilesFor := func(s int) int {
		return ((w + s - 1) / s) * ((h + s - 1) / s)
	}
	if workers > 1 {
		for side > 1 && tilesFor(side) < workers && tilesFor(side) < w*h {
			side--
		}
	}
	return side
}

// tileRect is a half-open pixel rectangle [X0,X1)×[Y0,Y1).
type tileRect struct {
	X0, Y0, X1, Y1 int
}

// tileGrid partitions a W×H image into TW×TH tiles in row-major order;
// edge tiles at the right/bottom are clipped to the image.
type tileGrid struct {
	W, H, TW, TH, NX, NY int
}

func newTileGrid(w, h, tw, th int) tileGrid {
	if tw < 1 {
		tw = 1
	}
	if th < 1 {
		th = 1
	}
	g := tileGrid{W: w, H: h, TW: tw, TH: th}
	g.NX = (w + tw - 1) / tw
	g.NY = (h + th - 1) / th
	return g
}

func (g tileGrid) tiles() int { return g.NX * g.NY }

func (g tileGrid) tile(i int) tileRect {
	tx, ty := i%g.NX, i/g.NX
	r := tileRect{X0: tx * g.TW, Y0: ty * g.TH}
	r.X1 = r.X0 + g.TW
	if r.X1 > g.W {
		r.X1 = g.W
	}
	r.Y1 = r.Y0 + g.TH
	if r.Y1 > g.H {
		r.Y1 = g.H
	}
	return r
}

// forEachTileRow runs the grid's tiles across workers goroutines. Each
// goroutine obtains its own row visitor from newWorker (per-worker
// scratch lives in that closure), then claims tiles off a shared atomic
// index and walks each claimed tile row by row. ctx is polled without
// blocking before every row, so after cancellation each worker finishes
// at most its current row and no further rows start; all goroutines are
// joined before return. Returns ctx.Err() — nil on a completed run.
func forEachTileRow(ctx context.Context, g tileGrid, workers int, newWorker func() func(t tileRect, y int)) error {
	done := ctx.Done()
	n := int64(g.tiles())
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			visit := newWorker()
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= n {
					return
				}
				t := g.tile(int(i))
				for y := t.Y0; y < t.Y1; y++ {
					select {
					case <-done:
						return
					default:
					}
					visit(t, y)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
