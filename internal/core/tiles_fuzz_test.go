package core

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// FuzzTileScheduling drives forEachTileRow through randomized image
// shapes, tile shapes, worker counts, and cancellation points —
// mirroring FuzzPipelineScheduling in internal/stream. Whatever the
// schedule:
//   - without cancellation every pixel is visited exactly once and the
//     call returns nil (so positional result assembly is trivially
//     in-order: each pixel's cell is written by exactly one worker);
//   - with cancellation no pixel is ever visited twice, at most
//     `workers` extra rows run after the cancellation point (each
//     worker finishes only the row it was on), and the call reports
//     context.Canceled;
//   - the row counter agrees with the per-pixel cover counts;
//   - all workers are joined (no goroutine leaks).
func FuzzTileScheduling(f *testing.F) {
	f.Add(uint8(16), uint8(16), uint8(4), uint8(4), uint8(2), uint16(65535))
	f.Add(uint8(22), uint8(22), uint8(5), uint8(3), uint8(3), uint16(7))
	f.Add(uint8(1), uint8(40), uint8(0), uint8(0), uint8(8), uint16(0))
	f.Add(uint8(40), uint8(1), uint8(64), uint8(64), uint8(1), uint16(3))
	f.Add(uint8(9), uint8(9), uint8(1), uint8(1), uint8(5), uint16(65535))
	f.Fuzz(func(t *testing.T, w8, h8, tw8, th8, wk8 uint8, cancelAt uint16) {
		w := int(w8)%40 + 1
		h := int(h8)%40 + 1
		tw := int(tw8) % 45 // 0 clamps to 1 in newTileGrid
		th := int(th8) % 45
		workers := int(wk8)%8 + 1
		g := newTileGrid(w, h, tw, th)
		totalRows := 0
		for i := 0; i < g.tiles(); i++ {
			r := g.tile(i)
			totalRows += r.Y1 - r.Y0
		}
		// cancelAt ≥ totalRows means the cancel never fires.
		threshold := int64(cancelAt)

		before := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cover := make([]int32, w*h)
		var rows int64
		err := forEachTileRow(ctx, g, workers, func() func(tile tileRect, y int) {
			return func(tile tileRect, y int) {
				if atomic.AddInt64(&rows, 1) == threshold {
					cancel()
				}
				for x := tile.X0; x < tile.X1; x++ {
					atomic.AddInt32(&cover[y*w+x], 1)
				}
			}
		})

		cancelled := threshold > 0 && threshold <= int64(totalRows)
		if cancelled {
			if err != context.Canceled {
				t.Fatalf("cancelled at row %d: err = %v, want context.Canceled", threshold, err)
			}
			// Each worker finishes at most the row it had already started
			// when the cancel landed.
			if n := atomic.LoadInt64(&rows); n > threshold+int64(workers) {
				t.Fatalf("%d rows ran with cancel at %d and %d workers (bound %d)",
					n, threshold, workers, threshold+int64(workers))
			}
		} else if err != nil {
			t.Fatalf("uncancelled run returned %v", err)
		}

		// Exactly-once per pixel on completed runs; never-twice always.
		var visitedPixels int64
		for i, n := range cover {
			if n > 1 {
				t.Fatalf("pixel (%d,%d) visited %d times", i%w, i/w, n)
			}
			if !cancelled && n != 1 {
				t.Fatalf("pixel (%d,%d) visited %d times on a completed run", i%w, i/w, n)
			}
			visitedPixels += int64(n)
		}

		// Counter consistency: tile rows are all-or-nothing, and the row
		// counter equals the number of covered rows (every increment is
		// followed by that row's full cover before the visitor returns).
		var rowPixels, coveredRows int64
		for i := 0; i < g.tiles(); i++ {
			r := g.tile(i)
			for y := r.Y0; y < r.Y1; y++ {
				n := cover[y*w+r.X0]
				for x := r.X0; x < r.X1; x++ {
					if cover[y*w+x] != n {
						t.Fatalf("tile row y=%d of tile %d partially visited", y, i)
					}
				}
				rowPixels += int64(n) * int64(r.X1-r.X0)
				coveredRows += int64(n)
			}
		}
		if rowPixels != visitedPixels {
			t.Fatalf("cover totals inconsistent: %d by rows, %d by pixels", rowPixels, visitedPixels)
		}
		if n := atomic.LoadInt64(&rows); n != coveredRows {
			t.Fatalf("row counter %d disagrees with %d covered rows", n, coveredRows)
		}

		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if now := runtime.NumGoroutine(); now > before {
			t.Fatalf("goroutines leaked: %d before, %d after", before, now)
		}
	})
}
