package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sma/internal/synth"
)

// TestTileGridPartition checks the tile grid is an exact partition for
// awkward shapes: every pixel belongs to exactly one tile, tiles are
// clipped at the right/bottom edges, and row-major tile order matches
// row-major (ty, tx) order.
func TestTileGridPartition(t *testing.T) {
	shapes := []struct{ w, h, tw, th int }{
		{1, 1, 1, 1}, {7, 5, 3, 2}, {64, 64, 16, 16}, {64, 64, 17, 9},
		{3, 11, 8, 8}, {22, 22, 5, 3}, {10, 1, 4, 4}, {1, 10, 4, 4},
		{9, 9, 0, -2}, // degenerate sizes clamp to 1
	}
	for _, s := range shapes {
		t.Run(fmt.Sprintf("%dx%d/%dx%d", s.w, s.h, s.tw, s.th), func(t *testing.T) {
			g := newTileGrid(s.w, s.h, s.tw, s.th)
			seen := make([]int, s.w*s.h)
			prevY0, prevX0 := -1, -1
			for i := 0; i < g.tiles(); i++ {
				r := g.tile(i)
				if r.X0 >= r.X1 || r.Y0 >= r.Y1 {
					t.Fatalf("tile %d is empty: %+v", i, r)
				}
				if r.X1 > s.w || r.Y1 > s.h {
					t.Fatalf("tile %d exceeds image: %+v", i, r)
				}
				if r.Y0 < prevY0 || (r.Y0 == prevY0 && r.X0 <= prevX0) {
					t.Fatalf("tile %d out of row-major order: %+v", i, r)
				}
				if r.Y0 > prevY0 {
					prevX0 = -1
				}
				prevY0, prevX0 = r.Y0, r.X0
				for y := r.Y0; y < r.Y1; y++ {
					for x := r.X0; x < r.X1; x++ {
						seen[y*s.w+x]++
					}
				}
			}
			for i, n := range seen {
				if n != 1 {
					t.Fatalf("pixel (%d,%d) covered %d times", i%s.w, i/s.w, n)
				}
			}
		})
	}
}

// TestChooseTileSize pins the cache model's shape: the side shrinks as
// the halo (template+search+semi-fluid reach) grows, shrinks as workers
// multiply (balance clamp), and never drops below the floor.
func TestChooseTileSize(t *testing.T) {
	big := Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 1}
	small := Params{NS: 1, NZS: 1, NZT: 1}
	if a, b := chooseTileSize(small, 4096, 4096, 1), chooseTileSize(big, 4096, 4096, 1); a <= b {
		t.Fatalf("larger halo should shrink the tile: small-halo %d, big-halo %d", a, b)
	}
	if a, b := chooseTileSize(small, 256, 256, 1), chooseTileSize(small, 256, 256, 64); a <= b {
		t.Fatalf("more workers should shrink the tile for balance: 1w %d, 64w %d", a, b)
	}
	if got := chooseTileSize(big, 256, 256, 1); got < tileMinSide {
		t.Fatalf("serial run should keep the floor %d, got %d", tileMinSide, got)
	}
	// Degenerate sizing (coarse pyramid levels): tiny grids must still
	// yield at least min(workers, pixels) tiles so no worker idles, even
	// when the halo term exceeds the grid — down to 1-pixel tiles.
	for _, c := range []struct{ w, h, workers int }{
		{8, 8, 2}, {8, 8, 4}, {8, 8, 64}, {4, 4, 64}, {16, 8, 4},
	} {
		side := chooseTileSize(big, c.w, c.h, c.workers)
		if side < 1 {
			t.Fatalf("%dx%d workers=%d: side %d underflows", c.w, c.h, c.workers, side)
		}
		g := newTileGrid(c.w, c.h, side, side)
		want := c.workers
		if px := c.w * c.h; px < want {
			want = px
		}
		if g.tiles() < want {
			t.Fatalf("%dx%d workers=%d side=%d: only %d tiles, want ≥ %d",
				c.w, c.h, c.workers, side, g.tiles(), want)
		}
	}
	// Balance bound: on a large image the chosen side leaves at least
	// tileBalanceFactor tiles per worker.
	for _, workers := range []int{1, 2, 4, 8, 16} {
		side := chooseTileSize(small, 1024, 1024, workers)
		g := newTileGrid(1024, 1024, side, side)
		if g.tiles() < tileBalanceFactor*workers {
			t.Fatalf("workers=%d side=%d: only %d tiles, want ≥ %d",
				workers, side, g.tiles(), tileBalanceFactor*workers)
		}
	}
}

// TestForEachTileRowCancellation cancels mid-run and asserts the row
// granularity contract: visited rows are whole (never a partial row —
// guaranteed structurally since the visitor is per-row), no new rows
// start after every worker has observed the cancel, the call returns
// ctx.Err(), and no goroutines leak.
func TestForEachTileRowCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	g := newTileGrid(64, 64, 8, 8)
	ctx, cancel := context.WithCancel(context.Background())
	var rows int64
	release := make(chan struct{})
	var once sync.Once
	err := forEachTileRow(ctx, g, 4, func() func(tile tileRect, y int) {
		return func(tile tileRect, y int) {
			atomic.AddInt64(&rows, 1)
			once.Do(func() {
				cancel()
				close(release)
			})
			<-release
		}
	})
	if err != context.Canceled {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	// Each of the 4 workers finishes at most the row it was on when the
	// cancel landed — the bound the serving deadline relies on.
	if n := atomic.LoadInt64(&rows); n > 4 {
		t.Fatalf("%d rows ran after cancellation, want ≤ workers (4)", n)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}

// TestTrackParallelCtxCancelled pins the driver-level behavior: a
// pre-cancelled context returns (nil, ctx.Err()) without tracking.
func TestTrackParallelCtxCancelled(t *testing.T) {
	s := synth.Hurricane(14, 14, 5)
	prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), contParams())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := TrackPreparedParallelCtx(ctx, prep, nil, Options{}, 2)
	if err != context.Canceled || res != nil {
		t.Fatalf("pre-cancelled run: res=%v err=%v, want (nil, context.Canceled)", res, err)
	}
}
