package core

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sma/internal/synth"
)

// Tolerance-mode coverage (Options.Reassoc): the one deliberate
// departure from bit-exactness. These tests quantify how far the
// reassociated ε sum may drift from the reference on the Figure 5/6
// scenes and pin bit-exact mode as the default everywhere SMF1 output
// is promised. The analytical bound is docs/PERFORMANCE.md §6.3: the
// 4-way reassociation perturbs the float64 ε by O(n·2⁻⁵³) relative
// before float32 storage rounds it, so stored ε may differ by at most a
// couple of float32 ULPs and the argmin can flip only between
// hypotheses whose ε values are within that sliver of each other.

// ulps32 is the distance in float32 representation steps between two
// same-sign finite values.
func ulps32(a, b float32) int32 {
	ia, ib := int32(math.Float32bits(a)), int32(math.Float32bits(b))
	if ia < 0 {
		ia = math.MinInt32 - ia
	}
	if ib < 0 {
		ib = math.MinInt32 - ib
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return d
}

// TestReassocToleranceBounds runs Reassoc mode against the bit-exact
// reference on the two wind-barb scenes (the paper's Figures 5 and 6)
// in both models and asserts the documented tolerance:
//   - stored ε within maxEpsULP float32 ULPs wherever the argmin agrees;
//   - argmin flips (near-ties only) on at most maxFlipFrac of pixels;
//   - flow RMSE against the reference below maxFlowRMSE;
//   - θ bit-identical wherever the argmin agrees (only ε is
//     reassociated, never the normal-equation solve).
func TestReassocToleranceBounds(t *testing.T) {
	const (
		maxEpsULP   = 4
		maxFlipFrac = 0.01
		maxFlowRMSE = 0.5 // a flipped near-tie moves flow by ≥ 1 px; ≤1% flips keeps RMSE ≤ √0.01·maxstep
	)
	scenes := []struct {
		name  string
		frame func(w, h int, seed int64) *synth.Scene
	}{
		{"hurricane", synth.Hurricane},       // Figure 5 fixture
		{"thunderstorm", synth.Thunderstorm}, // Figure 6 fixture
	}
	for _, sc := range scenes {
		for _, semi := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/semi=%v", sc.name, semi), func(t *testing.T) {
				p := contParams()
				if semi {
					p = testParams()
				}
				s := sc.frame(24, 24, 56)
				prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), p)
				if err != nil {
					t.Fatal(err)
				}
				sm := BuildSemiMap(prep)
				ref := TrackPreparedReference(prep, sm, Options{KeepMotion: true})
				got := TrackPrepared(prep, sm, Options{KeepMotion: true, Reassoc: true})

				flips := 0
				for y := 0; y < prep.H; y++ {
					for x := 0; x < prep.W; x++ {
						gu, gv := got.Flow.At(x, y)
						ru, rv := ref.Flow.At(x, y)
						if gu != ru || gv != rv {
							flips++
							continue
						}
						if d := ulps32(got.Err.At(x, y), ref.Err.At(x, y)); d > maxEpsULP {
							t.Errorf("(%d,%d): ε %v vs reference %v — %d float32 ULPs (bound %d)",
								x, y, got.Err.At(x, y), ref.Err.At(x, y), d, maxEpsULP)
						}
						for i := range ref.Motion {
							if math.Float32bits(got.Motion[i].At(x, y)) != math.Float32bits(ref.Motion[i].At(x, y)) {
								t.Errorf("(%d,%d): θ[%d] differs with unflipped argmin", x, y, i)
							}
						}
					}
				}
				n := prep.W * prep.H
				if frac := float64(flips) / float64(n); frac > maxFlipFrac {
					t.Errorf("argmin flipped on %d/%d pixels (%.3f%%), bound %.0f%%",
						flips, n, 100*frac, 100*maxFlipFrac)
				}
				if rmse := got.Flow.RMSE(ref.Flow); rmse > maxFlowRMSE {
					t.Errorf("flow RMSE %v vs reference exceeds %v", rmse, maxFlowRMSE)
				}
			})
		}
	}
}

// TestReassocMatchesAcrossBatchWidths pins the two Reassoc code paths to
// each other: the scalar reassociated sum (residualSumBoundedReassoc)
// and the lane-scratch one (residualSumBoundedLaneReassoc) use the same
// reassociation pattern, so Reassoc output is identical at every batch
// width — tolerance mode trades bits against the reference, never
// against itself.
func TestReassocMatchesAcrossBatchWidths(t *testing.T) {
	s := synth.Thunderstorm(20, 20, 19)
	prep, err := Prepare(Monocular(s.Frame(0), s.Frame(1)), testParams())
	if err != nil {
		t.Fatal(err)
	}
	sm := BuildSemiMap(prep)
	base := TrackPrepared(prep, sm, Options{Reassoc: true, BatchHyps: 1, KeepMotion: true})
	for _, bw := range []int{2, 4, 8} {
		got := TrackPrepared(prep, sm, Options{Reassoc: true, BatchHyps: bw, KeepMotion: true})
		if !got.Flow.Equal(base.Flow) || !got.Err.Equal(base.Err) {
			t.Fatalf("Reassoc output at batch width %d differs from width 1", bw)
		}
		for i := range base.Motion {
			if !got.Motion[i].Equal(base.Motion[i]) {
				t.Fatalf("Reassoc θ[%d] at batch width %d differs from width 1", i, bw)
			}
		}
	}
}

// TestBitExactIsTheDefault locks the promise that every surface which
// emits or verifies SMF1 output runs the bit-exact kernel: the
// zero-value Options must select exact mode, and no production code
// outside internal/core may mention Reassoc at all — the server
// handlers, smaload's -verify, the stream pipeline, and the golden
// suite all construct Options without it, and this scan fails the
// moment one opts in.
func TestBitExactIsTheDefault(t *testing.T) {
	if (Options{}).Reassoc {
		t.Fatal("zero-value Options selects tolerance mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			if path == filepath.Join(root, "internal", "core") {
				return filepath.SkipDir // the kernel itself defines the mode
			}
			if path == filepath.Join(root, "internal", "analysis") {
				// smavet registers the Reassoc kernel function *names*
				// (allocation-free gate); it never constructs Options.
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if strings.Contains(string(src), "Reassoc") {
			t.Errorf("%s references Reassoc: tolerance mode must stay opt-in per call site, not a default", path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
