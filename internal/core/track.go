package core

import (
	"math"

	"sma/internal/la"
)

// Options controls a tracking run.
type Options struct {
	// KeepMotion retains the six fitted motion parameters per pixel in
	// Result.Motion.
	KeepMotion bool
	// Robust enables the robust-estimation extension (paper §6 future
	// work): one Huber re-weighted refinement of the motion-parameter
	// solve per hypothesis.
	Robust bool
	// HuberK is the Huber threshold as a multiple of the RMS residual
	// (default 1.5 when Robust is set).
	HuberK float64
	// HostWorkers splits TrackMasPar's functional per-layer PE sweep
	// across goroutines on the host (0 or 1 = serial). Results are
	// independent of the worker count.
	HostWorkers int
}

// tracker scores correspondence hypotheses for single pixels.
//
// Reconstruction of eqs. (3)–(5): with surface slopes (zx, zy) at a
// template pixel, the unnormalized normal is n0 = (−zx, −zy, 1) and, to
// first order in the affine parameters θ = (ai, bi, aj, bj, ak, bk) of
// eq. (6), the deformed normal is N(θ) = n0 + L·θ with
//
//	L = ⎡ 0   0   zy  −zx  −1   0 ⎤
//	    ⎢−zy  zx   0   0    0  −1 ⎥
//	    ⎣ 1   0    0   1    0   0 ⎦
//
// The residual against the observed after-motion unit normal n′ is
// r(θ) = |n0|·n′ − N(θ); ε1 and ε2 are its first two components weighted
// by the first-fundamental-form coefficients (1/E, 1/G; the third
// component has unit weight). Minimizing Σ w·r² over θ is linear least
// squares — "another system of linear equations ... solved using
// Gaussian-elimination" — and the minimized sum is the hypothesis error ε.
type tracker struct {
	prep *Prepared
	sm   *SemiMap
	opt  Options

	// buf caches per-template-pixel quantities between the accumulation
	// pass and the ε pass: zx, zy, rhs0..2, w0, w1 (7 values per pixel).
	// It is sized once at construction so the per-pixel kernel never
	// allocates.
	buf []float64
}

const bufStride = 7

// newTracker builds a tracker with its scratch buffer pre-sized for the
// template window, keeping score/trackPixel allocation-free.
func newTracker(prep *Prepared, sm *SemiMap, opt Options) *tracker {
	p := prep.P
	n := (2*p.TemplateRX() + 1) * (2*p.TemplateRY() + 1)
	return &tracker{prep: prep, sm: sm, opt: opt, buf: make([]float64, n*bufStride)}
}

// score evaluates ε(x, y; x+hx, y+hy) and the fitted motion parameters.
func (t *tracker) score(x, y, hx, hy int) (eps float64, theta la.Vec6) {
	p := t.prep.P
	rx := p.TemplateRX()
	ry := p.TemplateRY()
	n := (2*rx + 1) * (2*ry + 1)
	buf := t.buf[:n*bufStride]

	g0 := t.prep.G0
	g1 := t.prep.G1
	var a la.Mat6
	var b la.Vec6
	k := 0
	for dy := -ry; dy <= ry; dy++ {
		for dx := -rx; dx <= rx; dx++ {
			px := x + dx
			py := y + dy
			qx := x + hx + dx
			qy := y + hy + dy
			if t.sm != nil && px >= 0 && px < t.prep.W && py >= 0 && py < t.prep.H {
				ddx, ddy := t.sm.Delta(px, py, hx, hy)
				qx += ddx
				qy += ddy
			}
			zx := float64(g0.Zx.At(px, py))
			zy := float64(g0.Zy.At(px, py))
			scale := math.Sqrt(1 + zx*zx + zy*zy)
			ni, nj, nk := g1.NormalAt(qx, qy)
			rhs0 := scale*ni + zx // |n0|·ni′ − (−zx)
			rhs1 := scale*nj + zy
			rhs2 := scale*nk - 1
			w0 := 1 / float64(g0.E.At(px, py))
			w1 := 1 / float64(g0.G.At(px, py))
			accumulateSMA(&a, &b, zx, zy, rhs0, rhs1, rhs2, w0, w1)
			buf[k] = zx
			buf[k+1] = zy
			buf[k+2] = rhs0
			buf[k+3] = rhs1
			buf[k+4] = rhs2
			buf[k+5] = w0
			buf[k+6] = w1
			k += bufStride
		}
	}
	symmetrize(&a)
	theta = solveMotion(&a, &b)
	if t.opt.Robust {
		theta = robustRefine(buf, theta, t.opt.HuberK)
	}
	eps = residualSum(buf, &theta)
	return eps, theta
}

// accumulateSMA adds one template pixel's three weighted residual rows to
// the normal equations, exploiting the sparsity of L (rows touch
// parameters {2,3,4}, {0,1,5} and {0,3} only). Only the upper triangle of
// A is maintained; symmetrize completes it after the loop.
func accumulateSMA(a *la.Mat6, b *la.Vec6, zx, zy, rhs0, rhs1, rhs2, w0, w1 float64) {
	// Row 0: (0, 0, zy, −zx, −1, 0), weight w0.
	a[2][2] += w0 * zy * zy
	a[2][3] += w0 * zy * -zx
	a[2][4] += w0 * zy * -1
	a[3][3] += w0 * zx * zx
	a[3][4] += w0 * zx // (−zx)(−1)
	a[4][4] += w0
	b[2] += w0 * zy * rhs0
	b[3] += w0 * -zx * rhs0
	b[4] += w0 * -rhs0
	// Row 1: (−zy, zx, 0, 0, 0, −1), weight w1.
	a[0][0] += w1 * zy * zy
	a[0][1] += w1 * -zy * zx
	a[0][5] += w1 * zy // (−zy)(−1)
	a[1][1] += w1 * zx * zx
	a[1][5] += w1 * -zx
	a[5][5] += w1
	b[0] += w1 * -zy * rhs1
	b[1] += w1 * zx * rhs1
	b[5] += w1 * -rhs1
	// Row 2: (1, 0, 0, 1, 0, 0), weight 1.
	a[0][0]++
	a[0][3]++
	a[3][3]++
	b[0] += rhs2
	b[3] += rhs2
}

// symmetrize mirrors the maintained upper triangle into the lower one.
func symmetrize(a *la.Mat6) {
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			a[j][i] = a[i][j]
		}
	}
}

// rowResiduals returns the three weighted residual terms of one buffered
// template pixel under parameters θ.
func rowResiduals(buf []float64, k int, th *la.Vec6) (r0w, r1w, r2w float64) {
	zx := buf[k]
	zy := buf[k+1]
	l0 := zy*th[2] - zx*th[3] - th[4]
	l1 := -zy*th[0] + zx*th[1] - th[5]
	l2 := th[0] + th[3]
	r0 := buf[k+2] - l0
	r1 := buf[k+3] - l1
	r2 := buf[k+4] - l2
	return buf[k+5] * r0 * r0, buf[k+6] * r1 * r1, r2 * r2
}

// residualSum evaluates ε = Σ w·(rhs − L·θ)² over the buffered template.
func residualSum(buf []float64, th *la.Vec6) float64 {
	var eps float64
	for k := 0; k < len(buf); k += bufStride {
		r0, r1, r2 := rowResiduals(buf, k, th)
		eps += r0 + r1 + r2
	}
	return eps
}

// robustRefine performs one Huber re-weighted least-squares step on the
// buffered observations (paper §6's robust-estimation future work).
func robustRefine(buf []float64, theta la.Vec6, huberK float64) la.Vec6 {
	k := huberK
	if k <= 0 {
		k = 1.5
	}
	var sum float64
	n := 0
	for i := 0; i < len(buf); i += bufStride {
		r0, r1, r2 := rowResiduals(buf, i, &theta)
		sum += r0 + r1 + r2
		n += 3
	}
	// A near-zero residual sum means the plain fit already explains the
	// data to numerical precision; reweighting by ratios of rounding noise
	// would only destabilize it.
	if n == 0 || sum/float64(n) < 1e-12 {
		return theta
	}
	thresh2 := k * k * sum / float64(n) // (k·RMS)² threshold on weighted r²
	var a la.Mat6
	var b la.Vec6
	for i := 0; i < len(buf); i += bufStride {
		zx := buf[i]
		zy := buf[i+1]
		w0 := buf[i+5]
		w1 := buf[i+6]
		r0, r1, r2 := rowResiduals(buf, i, &theta)
		if r0 > thresh2 {
			w0 *= math.Sqrt(thresh2 / r0)
		}
		if r1 > thresh2 {
			w1 *= math.Sqrt(thresh2 / r1)
		}
		w2 := 1.0
		if r2 > thresh2 {
			w2 = math.Sqrt(thresh2 / r2)
		}
		rows := [3]la.Vec6{
			{0, 0, zy, -zx, -1, 0},
			{-zy, zx, 0, 0, 0, -1},
			{1, 0, 0, 1, 0, 0},
		}
		rhs := [3]float64{buf[i+2], buf[i+3], buf[i+4]}
		ws := [3]float64{w0, w1, w2}
		for c := 0; c < 3; c++ {
			la.AccumulateNormal(&a, &b, &rows[c], rhs[c], ws[c])
		}
	}
	return solveMotion(&a, &b)
}

// solveMotion solves the accumulated normal equations, falling back to a
// ridge-regularized solve (then θ = 0) when degenerate geometry — e.g. a
// perfectly flat featureless patch — leaves the system singular.
func solveMotion(a *la.Mat6, b *la.Vec6) la.Vec6 {
	ac := *a
	bc := *b
	if x, ok := la.Solve6(&ac, &bc); ok {
		return x
	}
	var tr float64
	for i := 0; i < 6; i++ {
		tr += a[i][i]
	}
	ridge := tr/6*1e-8 + 1e-9
	ac = *a
	bc = *b
	for i := 0; i < 6; i++ {
		ac[i][i] += ridge
	}
	if x, ok := la.Solve6(&ac, &bc); ok {
		return x
	}
	return la.Vec6{}
}

// trackPixel runs the full hypothesis search for one pixel. The zero
// hypothesis is evaluated first and ties break in its favor, then scan
// order — the same deterministic rule on every driver.
//
// Under the semi-fluid model the reported correspondence is the winning
// hypothesis plus the tracked pixel's own semi-fluid adjustment,
// h + δ(x, y, h): Fsemi (eq. 9) maps every template pixel individually,
// and the tracked pixel's after-motion location is where its own
// discriminant patch re-matched. (Without this, any hypothesis within
// ±NSS of the truth scores a near-identical ε — the per-pixel freedom
// absorbs the offset — and the argmin would be ambiguous.)
func (t *tracker) trackPixel(x, y int) (hx, hy int, eps float64, theta la.Vec6) {
	return t.trackPixelFrom(x, y, 0, 0)
}

// trackPixelFrom searches the hypothesis window centered at offset
// (bx, by) instead of zero — the prior-guided search the hierarchical
// (coarse-to-fine) extension uses at finer pyramid levels.
func (t *tracker) trackPixelFrom(x, y, bx, by int) (hx, hy int, eps float64, theta la.Vec6) {
	p := t.prep.P
	srx := p.SearchRX()
	sry := p.SearchRY()
	hx, hy = bx, by
	eps, theta = t.score(x, y, bx, by)
	for dy := -sry; dy <= sry; dy++ {
		for dx := -srx; dx <= srx; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			e, th := t.score(x, y, bx+dx, by+dy)
			if e < eps {
				eps = e
				hx, hy = bx+dx, by+dy
				theta = th
			}
		}
	}
	if t.sm != nil {
		dx, dy := t.sm.Delta(x, y, hx, hy)
		hx += dx
		hy += dy
	}
	return hx, hy, eps, theta
}
