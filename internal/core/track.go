package core

import (
	"math"

	"sma/internal/la"
)

// Options controls a tracking run.
type Options struct {
	// KeepMotion retains the six fitted motion parameters per pixel in
	// Result.Motion.
	KeepMotion bool
	// Robust enables the robust-estimation extension (paper §6 future
	// work): one Huber re-weighted refinement of the motion-parameter
	// solve per hypothesis.
	Robust bool
	// HuberK is the Huber threshold as a multiple of the RMS residual
	// (default 1.5 when Robust is set).
	HuberK float64
	// HostWorkers splits TrackMasPar's functional per-layer PE sweep
	// across goroutines on the host (0 or 1 = serial). Results are
	// independent of the worker count.
	HostWorkers int
	// BatchHyps is the multi-hypothesis batch width: the number of
	// correspondence hypotheses scored per pass over the cached template
	// invariants (docs/PERFORMANCE.md §6). 0 selects the default width
	// (la.BatchLanes); 1 disables batching; larger values are clamped to
	// la.BatchLanes. Every width is bit-identical to the reference
	// kernel — the batch only reorders memory traffic, never arithmetic.
	BatchHyps int
	// Reassoc enables the tolerance-checked fast accumulation: the ε
	// residual sum uses 4-way reassociated partial accumulators instead
	// of the reference kernel's strictly sequential sum. NOT bit-exact —
	// ε can differ by a few ULPs and near-tied argmins can flip; the
	// quantified error bound and the tests that enforce it are in
	// docs/PERFORMANCE.md §6.3. Off (bit-exact) is the default
	// everywhere, including every SMF1-producing path.
	Reassoc bool
	// TileW/TileH override the pixel-tile size of the parallel driver
	// (0 = the cache-model default of chooseTileSize). Tiling is pure
	// scheduling: results are bit-identical at every tile shape.
	TileW, TileH int
	// Pyramid enables the coarse-to-fine multiresolution hypothesis
	// search in the parallel driver (pyramid.go). The zero value keeps
	// the exhaustive — and bit-exact — search, like every other default.
	// Continuous model only; requires geometry prepared with
	// PreparePyramid / PrepareFramePyramid.
	Pyramid PyramidOptions
}

// tracker scores correspondence hypotheses for single pixels.
//
// Reconstruction of eqs. (3)–(5): with surface slopes (zx, zy) at a
// template pixel, the unnormalized normal is n0 = (−zx, −zy, 1) and, to
// first order in the affine parameters θ = (ai, bi, aj, bj, ak, bk) of
// eq. (6), the deformed normal is N(θ) = n0 + L·θ with
//
//	L = ⎡ 0   0   zy  −zx  −1   0 ⎤
//	    ⎢−zy  zx   0   0    0  −1 ⎥
//	    ⎣ 1   0    0   1    0   0 ⎦
//
// The residual against the observed after-motion unit normal n′ is
// r(θ) = |n0|·n′ − N(θ); ε1 and ε2 are its first two components weighted
// by the first-fundamental-form coefficients (1/E, 1/G; the third
// component has unit weight). Minimizing Σ w·r² over θ is linear least
// squares — "another system of linear equations ... solved using
// Gaussian-elimination" — and the minimized sum is the hypothesis error ε.
//
// Cost structure of the search: L (and hence the normal-equation matrix A)
// depends only on the template pixels of the tracked pixel, not on the
// hypothesis offset — only the right-hand side b does, through the
// after-motion normals at q = p + h (+ δ). The optimized kernel therefore
// runs one A-pass per tracked pixel (preparePixel: cache {zx, zy, |n0|,
// 1/E, 1/G} per template pixel, accumulate A, factor it once) and one
// b-pass per hypothesis (scoreHyp: accumulate b, forward/back-substitute
// on the stored factorization, sum residuals with an early exit against
// the best ε so far). Every step replays the reference kernel's arithmetic
// sequence, so results are bit-identical to it (see reference.go and the
// golden conformance suite).
type tracker struct {
	prep *Prepared
	sm   *SemiMap
	opt  Options

	// buf caches per-template-pixel quantities (bufStride values per
	// pixel): the hypothesis-invariant slots are written once per tracked
	// pixel by preparePixel, the rhs slots once per hypothesis by the
	// b-pass. It is sized once at construction so the per-pixel kernel
	// never allocates.
	buf []float64

	// mf is the factored normal-equation matrix of the current pixel.
	mf motionFactor

	// nlanes is the effective multi-hypothesis batch width (1 = scalar
	// search loop, >1 = scoreHypLanes batches). Fixed at construction.
	nlanes int

	// laneRHS is the per-lane right-hand-side scratch of the batch
	// kernel, in structure-of-arrays form: pixel k, residual row c, lane
	// l lives at [(k*3+c)*la.BatchLanes + l], so each row's lane stripe
	// is contiguous. nil when nlanes == 1.
	laneRHS []float64

	// noEarlyExit disables the ε early exit (test hook: the argmin must be
	// bit-identical with the exit on and off).
	noEarlyExit bool
}

// buf slot layout. The first five slots are hypothesis-invariant; the
// three rhs slots are rewritten by each hypothesis's b-pass.
const (
	bufZx    = 0 // surface slope ∂z/∂x at the template pixel
	bufZy    = 1 // surface slope ∂z/∂y
	bufScale = 2 // |n0| = √(1 + zx² + zy²)
	bufW0    = 3 // 1/E residual weight
	bufW1    = 4 // 1/G residual weight
	bufR0    = 5 // rhs of residual row 0
	bufR1    = 6 // rhs of residual row 1
	bufR2    = 7 // rhs of residual row 2

	bufStride = 8
)

// newTracker builds a tracker with its scratch buffers pre-sized for the
// template window and batch width, keeping score/trackPixel
// allocation-free.
func newTracker(prep *Prepared, sm *SemiMap, opt Options) *tracker {
	p := prep.P
	n := (2*p.TemplateRX() + 1) * (2*p.TemplateRY() + 1)
	t := &tracker{prep: prep, sm: sm, opt: opt,
		buf: make([]float64, n*bufStride), nlanes: effectiveBatch(opt)}
	if t.nlanes > 1 {
		t.laneRHS = make([]float64, n*3*la.BatchLanes)
	}
	return t
}

// effectiveBatch resolves Options.BatchHyps to the batch width the
// tracker will run: 0 means the default full width, anything below 1
// disables batching, anything above la.BatchLanes is clamped to it.
func effectiveBatch(opt Options) int {
	b := opt.BatchHyps
	if b == 0 {
		b = la.BatchLanes
	}
	if b < 1 {
		b = 1
	}
	if b > la.BatchLanes {
		b = la.BatchLanes
	}
	return b
}

// score evaluates ε(x, y; x+hx, y+hy) and the fitted motion parameters.
// Standalone single-hypothesis entry point; the search loop calls
// preparePixel once and scoreHyp per hypothesis instead.
func (t *tracker) score(x, y, hx, hy int) (eps float64, theta la.Vec6) {
	if useReferenceKernel {
		return t.scoreReference(x, y, hx, hy)
	}
	t.preparePixel(x, y)
	eps, theta, _ = t.scoreHyp(x, y, hx, hy, math.Inf(1))
	return eps, theta
}

// preparePixel runs the hypothesis-invariant half of the kernel for
// tracked pixel (x, y): it caches the template-pixel geometry in buf,
// accumulates the normal-equation matrix A, and factors it (with the same
// ridge fallback solveMotion applies) so every hypothesis of the ensuing
// search solves by substitution only.
func (t *tracker) preparePixel(x, y int) {
	p := t.prep.P
	rx := p.TemplateRX()
	ry := p.TemplateRY()
	n := (2*rx + 1) * (2*ry + 1)
	buf := t.buf[:n*bufStride]

	g0 := t.prep.G0
	var a la.Mat6
	k := 0
	for dy := -ry; dy <= ry; dy++ {
		for dx := -rx; dx <= rx; dx++ {
			px := x + dx
			py := y + dy
			zx := float64(g0.Zx.At(px, py))
			zy := float64(g0.Zy.At(px, py))
			scale := math.Sqrt(1 + zx*zx + zy*zy)
			w0 := 1 / float64(g0.E.At(px, py))
			w1 := 1 / float64(g0.G.At(px, py))
			accumulateA(&a, zx, zy, w0, w1)
			buf[k+bufZx] = zx
			buf[k+bufZy] = zy
			buf[k+bufScale] = scale
			buf[k+bufW0] = w0
			buf[k+bufW1] = w1
			k += bufStride
		}
	}
	symmetrize(&a)
	t.mf.factorMotion(&a)
}

// scoreHyp runs the per-hypothesis half of the kernel: accumulate the
// right-hand side b over the cached template, substitute on the factored
// A, optionally Huber-refine, and sum the residuals. preparePixel(x, y)
// must have run for the same pixel.
//
// bound is the best ε found so far: because every residual term is a
// non-negative weighted square, a prefix of the sum reaching bound proves
// the full ε cannot beat it, so the evaluation stops early (pruned =
// true). Pruning is exact for the strict ε < bound acceptance test — a
// pruned hypothesis can never be the argmin — and the winning hypothesis
// is never pruned, so its returned ε is always the full sum.
func (t *tracker) scoreHyp(x, y, hx, hy int, bound float64) (eps float64, theta la.Vec6, pruned bool) {
	p := t.prep.P
	rx := p.TemplateRX()
	ry := p.TemplateRY()
	n := (2*rx + 1) * (2*ry + 1)
	buf := t.buf[:n*bufStride]

	g1 := t.prep.G1
	var b la.Vec6

	// Hoist the per-hypothesis half of the semi-fluid lookup: the
	// hypothesis index and window test depend only on (hx, hy), so the
	// inner loop reduces to a single slice index per template pixel. An
	// out-of-window offset (possible under prior-guided search) keeps
	// smDX nil, matching Delta's δ = 0 early return.
	var smDX, smDY []int8
	var smW, smStride, smHIdx, margin int
	if t.sm != nil && hx >= -t.sm.RX && hx <= t.sm.RX && hy >= -t.sm.RY && hy <= t.sm.RY {
		smDX, smDY = t.sm.DX, t.sm.DY
		smW = t.sm.W
		smStride = t.sm.hyps()
		smHIdx = t.sm.hypIndex(hx, hy)
		margin = t.sm.NSS
	}

	// Interior fast path: when the template window (for the semi-map
	// lookup) and the displaced window plus the largest possible δ (for
	// the after-normal lookup) both stay inside their grids, every access
	// below is in bounds, so the border clamping in Grid.At is a no-op
	// and direct Data indexing returns bit-identical values.
	gw, gh := g1.Ni.W, g1.Ni.H
	k := 0
	if x-rx >= 0 && x+rx < t.prep.W && y-ry >= 0 && y+ry < t.prep.H &&
		x+hx-rx-margin >= 0 && x+hx+rx+margin < gw &&
		y+hy-ry-margin >= 0 && y+hy+ry+margin < gh {
		niD, njD, nkD := g1.Ni.Data, g1.Nj.Data, g1.Nk.Data
		for dy := -ry; dy <= ry; dy++ {
			py := y + dy
			for dx := -rx; dx <= rx; dx++ {
				px := x + dx
				qx := px + hx
				qy := py + hy
				if smDX != nil {
					i := (py*smW+px)*smStride + smHIdx
					qx += int(smDX[i])
					qy += int(smDY[i])
				}
				qi := qy*gw + qx
				zx := buf[k+bufZx]
				zy := buf[k+bufZy]
				scale := buf[k+bufScale]
				rhs0 := scale*float64(niD[qi]) + zx
				rhs1 := scale*float64(njD[qi]) + zy
				rhs2 := scale*float64(nkD[qi]) - 1
				accumulateB(&b, zx, zy, rhs0, rhs1, rhs2, buf[k+bufW0], buf[k+bufW1])
				buf[k+bufR0] = rhs0
				buf[k+bufR1] = rhs1
				buf[k+bufR2] = rhs2
				k += bufStride
			}
		}
	} else {
		for dy := -ry; dy <= ry; dy++ {
			for dx := -rx; dx <= rx; dx++ {
				px := x + dx
				py := y + dy
				qx := x + hx + dx
				qy := y + hy + dy
				if smDX != nil && px >= 0 && px < t.prep.W && py >= 0 && py < t.prep.H {
					i := (py*smW+px)*smStride + smHIdx
					qx += int(smDX[i])
					qy += int(smDY[i])
				}
				zx := buf[k+bufZx]
				zy := buf[k+bufZy]
				scale := buf[k+bufScale]
				ni, nj, nk := g1.NormalAt(qx, qy)
				rhs0 := scale*ni + zx // |n0|·ni′ − (−zx)
				rhs1 := scale*nj + zy
				rhs2 := scale*nk - 1
				accumulateB(&b, zx, zy, rhs0, rhs1, rhs2, buf[k+bufW0], buf[k+bufW1])
				buf[k+bufR0] = rhs0
				buf[k+bufR1] = rhs1
				buf[k+bufR2] = rhs2
				k += bufStride
			}
		}
	}
	theta = t.mf.solveFactored(&b)
	if t.opt.Robust {
		theta = robustRefine(buf, theta, t.opt.HuberK)
	}
	if t.noEarlyExit {
		bound = math.Inf(1)
	}
	if t.opt.Reassoc {
		eps, pruned = residualSumBoundedReassoc(buf, &theta, bound)
	} else {
		eps, pruned = residualSumBounded(buf, &theta, bound)
	}
	return eps, theta, pruned
}

// accumulateA adds one template pixel's contribution to the
// normal-equation matrix, exploiting the sparsity of L (rows touch
// parameters {2,3,4}, {0,1,5} and {0,3} only). Only the upper triangle of
// A is maintained; symmetrize completes it after the loop. A depends only
// on template-pixel geometry, never on the hypothesis.
func accumulateA(a *la.Mat6, zx, zy, w0, w1 float64) {
	// Row 0: (0, 0, zy, −zx, −1, 0), weight w0.
	a[2][2] += w0 * zy * zy
	a[2][3] += w0 * zy * -zx
	a[2][4] += w0 * zy * -1
	a[3][3] += w0 * zx * zx
	a[3][4] += w0 * zx // (−zx)(−1)
	a[4][4] += w0
	// Row 1: (−zy, zx, 0, 0, 0, −1), weight w1.
	a[0][0] += w1 * zy * zy
	a[0][1] += w1 * -zy * zx
	a[0][5] += w1 * zy // (−zy)(−1)
	a[1][1] += w1 * zx * zx
	a[1][5] += w1 * -zx
	a[5][5] += w1
	// Row 2: (1, 0, 0, 1, 0, 0), weight 1.
	a[0][0]++
	a[0][3]++
	a[3][3]++
}

// accumulateB adds one template pixel's contribution to the
// normal-equation right-hand side — the hypothesis-dependent half of the
// accumulation.
func accumulateB(b *la.Vec6, zx, zy, rhs0, rhs1, rhs2, w0, w1 float64) {
	// Row 0: (0, 0, zy, −zx, −1, 0), weight w0.
	b[2] += w0 * zy * rhs0
	b[3] += w0 * -zx * rhs0
	b[4] += w0 * -rhs0
	// Row 1: (−zy, zx, 0, 0, 0, −1), weight w1.
	b[0] += w1 * -zy * rhs1
	b[1] += w1 * zx * rhs1
	b[5] += w1 * -rhs1
	// Row 2: (1, 0, 0, 1, 0, 0), weight 1.
	b[0] += rhs2
	b[3] += rhs2
}

// symmetrize mirrors the maintained upper triangle into the lower one.
func symmetrize(a *la.Mat6) {
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			a[j][i] = a[i][j]
		}
	}
}

// rowResiduals returns the three weighted residual terms of one buffered
// template pixel under parameters θ.
func rowResiduals(buf []float64, k int, th *la.Vec6) (r0w, r1w, r2w float64) {
	zx := buf[k+bufZx]
	zy := buf[k+bufZy]
	l0 := zy*th[2] - zx*th[3] - th[4]
	l1 := -zy*th[0] + zx*th[1] - th[5]
	l2 := th[0] + th[3]
	r0 := buf[k+bufR0] - l0
	r1 := buf[k+bufR1] - l1
	r2 := buf[k+bufR2] - l2
	return buf[k+bufW0] * r0 * r0, buf[k+bufW1] * r1 * r1, r2 * r2
}

// residualSum evaluates ε = Σ w·(rhs − L·θ)² over the buffered template.
func residualSum(buf []float64, th *la.Vec6) float64 {
	var eps float64
	for k := 0; k < len(buf); k += bufStride {
		r0, r1, r2 := rowResiduals(buf, k, th)
		eps += r0 + r1 + r2
	}
	return eps
}

// residualSumBounded is residualSum with an exact early exit: every term
// is a non-negative weighted square, so the moment the running prefix
// reaches bound the full sum is provably ≥ bound and the hypothesis
// cannot win the strict ε < bound comparison. The prefix accumulates in
// the same order as residualSum, so an unpruned result is bit-identical
// to the full sum.
func residualSumBounded(buf []float64, th *la.Vec6, bound float64) (eps float64, pruned bool) {
	for k := 0; k < len(buf); k += bufStride {
		r0, r1, r2 := rowResiduals(buf, k, th)
		eps += r0 + r1 + r2
		if eps >= bound {
			return eps, true
		}
	}
	return eps, false
}

// residualSumBoundedReassoc is the tolerance-checked variant of
// residualSumBounded (Options.Reassoc): four partial accumulators take
// template pixels round-robin and are combined as ((s0+s1)+s2)+s3 —
// the reassociation a SIMD horizontal reduction performs. Every term is
// still a non-negative weighted square, so any combined prefix is a
// lower bound on the full sum and pruning stays sound; but the addition
// order differs from the reference kernel, so ε agrees only to the
// reassociation error bound (docs/PERFORMANCE.md §6.3), not bitwise.
// The bound check runs once per 4-pixel block.
func residualSumBoundedReassoc(buf []float64, th *la.Vec6, bound float64) (eps float64, pruned bool) {
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4*bufStride <= len(buf); k += 4 * bufStride {
		r0, r1, r2 := rowResiduals(buf, k, th)
		s0 += r0 + r1 + r2
		r0, r1, r2 = rowResiduals(buf, k+bufStride, th)
		s1 += r0 + r1 + r2
		r0, r1, r2 = rowResiduals(buf, k+2*bufStride, th)
		s2 += r0 + r1 + r2
		r0, r1, r2 = rowResiduals(buf, k+3*bufStride, th)
		s3 += r0 + r1 + r2
		if eps = ((s0 + s1) + s2) + s3; eps >= bound {
			return eps, true
		}
	}
	for ; k < len(buf); k += bufStride {
		r0, r1, r2 := rowResiduals(buf, k, th)
		s0 += r0 + r1 + r2
	}
	return ((s0 + s1) + s2) + s3, false
}

// robustRefine performs one Huber re-weighted least-squares step on the
// buffered observations (paper §6's robust-estimation future work).
func robustRefine(buf []float64, theta la.Vec6, huberK float64) la.Vec6 {
	k := huberK
	if k <= 0 {
		k = 1.5
	}
	var sum float64
	n := 0
	for i := 0; i < len(buf); i += bufStride {
		r0, r1, r2 := rowResiduals(buf, i, &theta)
		sum += r0 + r1 + r2
		n += 3
	}
	// A near-zero residual sum means the plain fit already explains the
	// data to numerical precision; reweighting by ratios of rounding noise
	// would only destabilize it.
	if n == 0 || sum/float64(n) < 1e-12 {
		return theta
	}
	thresh2 := k * k * sum / float64(n) // (k·RMS)² threshold on weighted r²
	var a la.Mat6
	var b la.Vec6
	for i := 0; i < len(buf); i += bufStride {
		zx := buf[i+bufZx]
		zy := buf[i+bufZy]
		w0 := buf[i+bufW0]
		w1 := buf[i+bufW1]
		r0, r1, r2 := rowResiduals(buf, i, &theta)
		if r0 > thresh2 {
			w0 *= math.Sqrt(thresh2 / r0)
		}
		if r1 > thresh2 {
			w1 *= math.Sqrt(thresh2 / r1)
		}
		w2 := 1.0
		if r2 > thresh2 {
			w2 = math.Sqrt(thresh2 / r2)
		}
		rows := [3]la.Vec6{
			{0, 0, zy, -zx, -1, 0},
			{-zy, zx, 0, 0, 0, -1},
			{1, 0, 0, 1, 0, 0},
		}
		rhs := [3]float64{buf[i+bufR0], buf[i+bufR1], buf[i+bufR2]}
		ws := [3]float64{w0, w1, w2}
		for c := 0; c < 3; c++ {
			la.AccumulateNormal(&a, &b, &rows[c], rhs[c], ws[c])
		}
	}
	return solveMotion(&a, &b)
}

// solveMotion solves the accumulated normal equations, falling back to a
// ridge-regularized solve (then θ = 0) when degenerate geometry — e.g. a
// perfectly flat featureless patch — leaves the system singular. The
// Huber refinement uses it directly (its reweighted matrix varies per
// hypothesis); the search loop uses the factored equivalent motionFactor.
func solveMotion(a *la.Mat6, b *la.Vec6) la.Vec6 {
	ac := *a
	bc := *b
	if x, ok := la.Solve6(&ac, &bc); ok {
		return x
	}
	var tr float64
	for i := 0; i < 6; i++ {
		tr += a[i][i]
	}
	ridge := tr/6*1e-8 + 1e-9
	ac = *a
	bc = *b
	for i := 0; i < 6; i++ {
		ac[i][i] += ridge
	}
	if x, ok := la.Solve6(&ac, &bc); ok {
		return x
	}
	return la.Vec6{}
}

// motionFactor is the factored form of solveMotion: factorMotion
// eliminates the normal-equation matrix (and, mirroring solveMotion's
// fallback, its ridge-regularized variant when A is singular) once;
// solveFactored then reproduces solveMotion(A, b) bit-for-bit for any
// right-hand side. Pivot choices depend only on A, so sharing one
// factorization across all hypotheses of a pixel changes no arithmetic.
type motionFactor struct {
	fac     la.Factored6
	ridge   la.Factored6
	ok      bool // fac is valid
	ridgeOK bool // ridge is valid (only consulted when !ok)
}

// factorMotion factors A, falling back to the ridge-regularized matrix
// exactly as solveMotion does. The ridge amount depends only on A's
// trace, so it too is hypothesis-invariant.
func (mf *motionFactor) factorMotion(a *la.Mat6) {
	if mf.fac, mf.ok = la.Factor6(a); mf.ok {
		return
	}
	var tr float64
	for i := 0; i < 6; i++ {
		tr += a[i][i]
	}
	ridge := tr/6*1e-8 + 1e-9
	ac := *a
	for i := 0; i < 6; i++ {
		ac[i][i] += ridge
	}
	mf.ridge, mf.ridgeOK = la.Factor6(&ac)
}

// solveFactored solves for one right-hand side against the stored
// factorization(s). b is clobbered.
func (mf *motionFactor) solveFactored(b *la.Vec6) la.Vec6 {
	if mf.ok {
		return la.SolveFactored6(&mf.fac, b)
	}
	if mf.ridgeOK {
		return la.SolveFactored6(&mf.ridge, b)
	}
	return la.Vec6{}
}

// trackPixel runs the full hypothesis search for one pixel. The zero
// hypothesis is evaluated first and ties break in its favor, then scan
// order — the same deterministic rule on every driver.
//
// Under the semi-fluid model the reported correspondence is the winning
// hypothesis plus the tracked pixel's own semi-fluid adjustment,
// h + δ(x, y, h): Fsemi (eq. 9) maps every template pixel individually,
// and the tracked pixel's after-motion location is where its own
// discriminant patch re-matched. (Without this, any hypothesis within
// ±NSS of the truth scores a near-identical ε — the per-pixel freedom
// absorbs the offset — and the argmin would be ambiguous.)
func (t *tracker) trackPixel(x, y int) (hx, hy int, eps float64, theta la.Vec6) {
	return t.trackPixelFrom(x, y, 0, 0)
}

// trackPixelFrom searches the hypothesis window centered at offset
// (bx, by) instead of zero — the prior-guided search the hierarchical
// (coarse-to-fine) extension uses at finer pyramid levels.
//
// The hypothesis-invariant work (template geometry, matrix accumulation
// and factorization) runs once here; each hypothesis then costs one
// b-pass, one substitution and one (early-exiting) residual sum.
func (t *tracker) trackPixelFrom(x, y, bx, by int) (hx, hy int, eps float64, theta la.Vec6) {
	if useReferenceKernel {
		return t.trackPixelFromReference(x, y, bx, by)
	}
	if t.nlanes > 1 {
		return t.trackPixelBatchFrom(x, y, bx, by)
	}
	p := t.prep.P
	srx := p.SearchRX()
	sry := p.SearchRY()
	t.preparePixel(x, y)
	hx, hy = bx, by
	eps, theta, _ = t.scoreHyp(x, y, bx, by, math.Inf(1))
	for dy := -sry; dy <= sry; dy++ {
		for dx := -srx; dx <= srx; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			e, th, pruned := t.scoreHyp(x, y, bx+dx, by+dy, eps)
			if !pruned && e < eps {
				eps = e
				hx, hy = bx+dx, by+dy
				theta = th
			}
		}
	}
	if t.sm != nil {
		dx, dy := t.sm.Delta(x, y, hx, hy)
		hx += dx
		hy += dy
	}
	return hx, hy, eps, theta
}
