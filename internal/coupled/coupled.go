// Package coupled implements the coupled stereo-and-motion analysis the
// paper's §6 (and its reference [10], Kambhamettu, Palaniappan & Hasler
// 1995) proposes: cross-validating the stereo surface maps against the
// estimated motion field and repairing inconsistent surface estimates,
// then re-tracking on the repaired surfaces.
package coupled

import (
	"fmt"
	"math"

	"sma/internal/core"
	"sma/internal/grid"
)

// Consistency measures, per pixel, how well the surface maps agree with
// the motion field: |z1(x+u, y+v) − z0(x, y)|. For correctly tracked,
// correctly reconstructed cloud decks the advected height is nearly
// conserved over one frame interval; large values flag stereo dropouts or
// motion errors.
func Consistency(flow *grid.VectorField, z0, z1 *grid.Grid) (*grid.Grid, error) {
	w, h := flow.Bounds()
	if z0.W != w || z0.H != h || z1.W != w || z1.H != h {
		return nil, fmt.Errorf("coupled: surface sizes do not match the flow")
	}
	out := grid.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u, v := flow.At(x, y)
			after := z1.Bilinear(float64(x)+float64(u), float64(y)+float64(v))
			out.Set(x, y, float32(math.Abs(float64(after-z0.AtUnchecked(x, y)))))
		}
	}
	return out, nil
}

// RepairConfig controls the motion-guided surface repair.
type RepairConfig struct {
	// Thresh is the disagreement (in height units) beyond which a stereo
	// sample is replaced by the motion-predicted height.
	Thresh float32
	// MaxEps, when positive, excludes flow samples whose tracking
	// residual exceeds it from the robust local flow estimate (tracking
	// near a corrupted surface region is itself unreliable).
	MaxEps float32
	// Window is the radius of the robust (median) local-flow window; it
	// should exceed the radius of the corrupted regions being repaired.
	Window int
	// Margin excludes targets within this many pixels of the image
	// border, where edge clamping makes advected heights unreliable.
	Margin int
}

// Repair replaces z1 samples that disagree with the motion-predicted
// surface. For every target pixel q a robust local flow (componentwise
// median over a window, restricted to confident samples) is formed from
// the surrounding motion field; the predicted height is the z0 value at
// the backward-advected position q − d. Where the stereo estimate
// deviates from the prediction by more than Thresh it is replaced —
// motion filling stereo dropouts, the coupling of the paper's §6.
//
// Using the *robust neighborhood* flow rather than the pixel's own flow
// is what makes this safe: tracking directly on a corrupted region is
// wrong exactly where repair is needed, while the surrounding flow is
// intact.
func Repair(flow *grid.VectorField, eps *grid.Grid, z0, z1 *grid.Grid, cfg RepairConfig) (*grid.Grid, int, error) {
	w, h := flow.Bounds()
	if z0.W != w || z0.H != h || z1.W != w || z1.H != h {
		return nil, 0, fmt.Errorf("coupled: surface sizes do not match the flow")
	}
	if eps != nil && (eps.W != w || eps.H != h) {
		return nil, 0, fmt.Errorf("coupled: ε field size does not match the flow")
	}
	m := cfg.Margin
	if m < 0 || 2*m >= w || 2*m >= h {
		return nil, 0, fmt.Errorf("coupled: margin %d out of range for %dx%d", m, w, h)
	}
	r := cfg.Window
	if r < 1 {
		return nil, 0, fmt.Errorf("coupled: window radius %d must be positive", r)
	}
	out := z1.Clone()
	repaired := 0
	var us, vs []float32
	for y := m; y < h-m; y++ {
		for x := m; x < w-m; x++ {
			us = us[:0]
			vs = vs[:0]
			for dy := -r; dy <= r; dy++ {
				for dx := -r; dx <= r; dx++ {
					px, py := x+dx, y+dy
					if px < 0 || px >= w || py < 0 || py >= h {
						continue
					}
					if eps != nil && cfg.MaxEps > 0 && eps.AtUnchecked(px, py) > cfg.MaxEps {
						continue
					}
					u, v := flow.At(px, py)
					us = append(us, u)
					vs = append(vs, v)
				}
			}
			if len(us) < (r+1)*(r+1) {
				continue // not enough confident flow to form a prediction
			}
			du := float64(median(us))
			dv := float64(median(vs))
			pred := z0.Bilinear(float64(x)-du, float64(y)-dv)
			if d := out.AtUnchecked(x, y) - pred; d > cfg.Thresh || d < -cfg.Thresh {
				out.Set(x, y, pred)
				repaired++
			}
		}
	}
	return out, repaired, nil
}

// median returns the middle value (lower of two for even counts) by
// in-place insertion sort — windows are small.
func median(v []float32) float32 {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
	return v[len(v)/2]
}

// epsQuantile returns the q-quantile (0..1) of a residual field via a
// 1024-bin histogram — confident pixels sit below it.
func epsQuantile(eps *grid.Grid, q float64) float32 {
	min, max := eps.MinMax()
	if max <= min {
		return max
	}
	const bins = 1024
	var hist [bins]int
	scale := float64(bins-1) / float64(max-min)
	for _, v := range eps.Data {
		hist[int(float64(v-min)*scale)]++
	}
	target := int(q * float64(len(eps.Data)))
	acc := 0
	for b, c := range hist {
		acc += c
		if acc >= target {
			edge := float32(float64(b) / scale)
			return min + edge
		}
	}
	return max
}

// Result is one coupled stereo–motion iteration's outcome.
type Result struct {
	Flow     *grid.VectorField
	Z1       *grid.Grid // repaired surface at t+1
	Repaired int        // samples replaced in the final repair pass
}

// Track runs the coupled loop: track on the given surfaces, repair z1
// where the motion contradicts it, and re-track on the repaired surface.
// iters counts repair/re-track rounds (1 = a single coupling pass).
func Track(pair core.Pair, p core.Params, opt core.Options, thresh float32, iters int) (*Result, error) {
	if iters < 1 {
		return nil, fmt.Errorf("coupled: need at least one iteration")
	}
	res, err := core.TrackSequential(pair, p, opt)
	if err != nil {
		return nil, err
	}
	z1 := pair.Z1
	totalRepaired := 0
	cfg := RepairConfig{
		Thresh: thresh,
		// Exclude the least confident quarter of flow samples from the
		// robust local flow — tracking over a corrupted region is
		// unreliable, and the median handles the remainder.
		MaxEps: epsQuantile(res.Err, 0.75),
		// The robust window must out-vote a corrupted region roughly the
		// size of the matching footprint.
		Window: 2*(p.TemplateRX()+p.SearchRX()) + 1,
		// Stay clear of edge-clamping artifacts.
		Margin: p.TemplateRX() + p.SearchRX(),
	}
	for i := 0; i < iters; i++ {
		rz, n, err := Repair(res.Flow, res.Err, pair.Z0, z1, cfg)
		if err != nil {
			return nil, err
		}
		totalRepaired = n
		if n == 0 {
			break
		}
		z1 = rz
		repairedPair := pair
		repairedPair.Z1 = z1
		res, err = core.TrackSequential(repairedPair, p, opt)
		if err != nil {
			return nil, err
		}
		cfg.MaxEps = epsQuantile(res.Err, 0.98)
	}
	return &Result{Flow: res.Flow, Z1: z1, Repaired: totalRepaired}, nil
}
