package coupled

import (
	"testing"

	"sma/internal/core"
	"sma/internal/grid"
	"sma/internal/synth"
)

// corruptedStereoPair builds a translation scene whose z1 surface has a
// stereo-dropout region (a block of wrong heights).
func corruptedStereoPair(w, h int, seed int64) (pair core.Pair, z1Clean *grid.Grid) {
	s := &synth.Scene{W: w, H: h, Flow: synth.Uniform{U: 2, V: 0},
		Tex: synth.Hurricane(w, h, seed).Tex}
	i0 := s.Frame(0)
	i1 := s.Frame(1)
	height := func(img *grid.Grid) *grid.Grid {
		z := img.GaussianBlur(2)
		z.Apply(func(v float32) float32 { return v * 0.05 })
		return z
	}
	z0 := height(i0)
	z1Clean = height(i1)
	z1 := z1Clean.Clone()
	for y := 12; y < 18; y++ {
		for x := 12; x < 18; x++ {
			z1.Set(x, y, 0) // dropout
		}
	}
	return core.Pair{I0: i0, I1: i1, Z0: z0, Z1: z1}, z1Clean
}

func TestConsistencyFlagsDropout(t *testing.T) {
	pair, _ := corruptedStereoPair(40, 40, 3)
	truth := grid.NewVectorField(40, 40)
	truth.U.Fill(2)
	cons, err := Consistency(truth, pair.Z0, pair.Z1)
	if err != nil {
		t.Fatal(err)
	}
	// The dropout pre-image (shifted by −2 in x) must score high,
	// far pixels low. Pixel (13,15) maps into the dropout.
	if v := cons.At(13, 15); v < 1 {
		t.Fatalf("dropout consistency %v, want large", v)
	}
	if v := cons.At(30, 30); v > 0.5 {
		t.Fatalf("clean-region consistency %v, want small", v)
	}
}

func TestConsistencyValidation(t *testing.T) {
	f := grid.NewVectorField(8, 8)
	if _, err := Consistency(f, grid.New(8, 8), grid.New(7, 8)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestRepairReducesSurfaceError(t *testing.T) {
	pair, z1Clean := corruptedStereoPair(40, 40, 5)
	truth := grid.NewVectorField(40, 40)
	truth.U.Fill(2)
	before := pair.Z1.RMSDiff(z1Clean)
	repaired, n, err := Repair(truth, nil, pair.Z0, pair.Z1, RepairConfig{Thresh: 0.5, Margin: 5, Window: 6})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing repaired")
	}
	after := repaired.RMSDiff(z1Clean)
	if after >= before {
		t.Fatalf("repair did not reduce surface error: %v → %v", before, after)
	}
}

func TestCoupledTrackImprovesOverPlain(t *testing.T) {
	pair, z1Clean := corruptedStereoPair(40, 40, 7)
	p := core.Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 0}
	res, err := Track(pair, p, core.Options{}, 0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Z1.RMSDiff(z1Clean) >= pair.Z1.RMSDiff(z1Clean) {
		t.Fatal("coupling did not improve the surface")
	}
	// The flow must remain overwhelmingly correct.
	good, tot := 0, 0
	for y := 8; y < 32; y++ {
		for x := 8; x < 32; x++ {
			tot++
			if u, v := res.Flow.At(x, y); u == 2 && v == 0 {
				good++
			}
		}
	}
	if good*10 < tot*8 {
		t.Fatalf("coupled flow correct on only %d/%d", good, tot)
	}
}

func TestTrackValidation(t *testing.T) {
	pair, _ := corruptedStereoPair(24, 24, 9)
	p := core.Params{NS: 2, NZS: 2, NZT: 3}
	if _, err := Track(pair, p, core.Options{}, 0.5, 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestRepairNoopOnConsistentSurfaces(t *testing.T) {
	s := &synth.Scene{W: 32, H: 32, Flow: synth.Uniform{U: 1, V: 0},
		Tex: synth.Hurricane(32, 32, 11).Tex}
	height := func(img *grid.Grid) *grid.Grid {
		z := img.GaussianBlur(2)
		z.Apply(func(v float32) float32 { return v * 0.05 })
		return z
	}
	z0 := height(s.Frame(0))
	z1 := height(s.Frame(1))
	truth := grid.NewVectorField(32, 32)
	truth.U.Fill(1)
	repaired, n, err := Repair(truth, nil, z0, z1, RepairConfig{Thresh: 2.0, Margin: 5, Window: 6})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("repaired %d samples of a consistent pair", n)
	}
	if !repaired.Equal(z1) {
		t.Fatal("no-op repair changed the surface")
	}
}
