package eval

import (
	"math"

	"sma/internal/core"
	"sma/internal/flow"
	"sma/internal/grid"
	"sma/internal/synth"
)

// BaselineRow scores one motion estimator on the multi-layer scene.
type BaselineRow struct {
	Name     string
	RMSE     float64 // interior, px, vs per-layer ground truth
	AAE      float64 // mean angular error, degrees (Barron et al. metric)
	ExactPct float64 // % of interior pixels with the exact integer motion
}

// BaselineComparison runs the estimator line-up the paper's introduction
// situates SMA against — the continuous model, Horn–Schunck global
// optical flow (reference [2]'s algorithm) and rigid block matching —
// on the two-layer cloud scene that motivates the semi-fluid model.
// Layer motions are integers so "exact correspondence" is well defined.
func BaselineComparison(size int, seed int64) ([]BaselineRow, error) {
	ml := synth.NewMultiLayer(size, size, seed)
	ml.Upper.Flow = synth.Uniform{U: 2, V: 0}
	ml.Lower.Flow = synth.Uniform{U: -1, V: -1}
	f0 := ml.Frame(0)
	f1 := ml.Frame(1)
	truth := ml.Truth(0, 1)
	pair := core.Monocular(f0, f1)

	semiP := core.ScaledParams()
	contP := semiP
	contP.NSS = 0
	semi, err := core.TrackSequential(pair, semiP, core.Options{})
	if err != nil {
		return nil, err
	}
	cont, err := core.TrackSequential(pair, contP, core.Options{})
	if err != nil {
		return nil, err
	}
	hs, err := flow.HornSchunck(f0, f1, flow.DefaultHSConfig())
	if err != nil {
		return nil, err
	}
	bm, err := flow.BlockMatch(f0, f1, flow.DefaultBMConfig())
	if err != nil {
		return nil, err
	}

	margin := size / 8
	in := size - 2*margin
	crop := func(f *grid.VectorField) *grid.VectorField {
		return &grid.VectorField{
			U: f.U.Crop(margin, margin, in, in),
			V: f.V.Crop(margin, margin, in, in),
		}
	}
	truthIn := crop(truth)
	score := func(name string, f *grid.VectorField) BaselineRow {
		var s float64
		n, exact := 0, 0
		for y := margin; y < size-margin; y++ {
			for x := margin; x < size-margin; x++ {
				u, v := f.At(x, y)
				tu, tv := truth.At(x, y)
				du := float64(u - tu)
				dv := float64(v - tv)
				s += du*du + dv*dv
				if du == 0 && dv == 0 {
					exact++
				}
				n++
			}
		}
		return BaselineRow{
			Name:     name,
			RMSE:     math.Sqrt(s / float64(n)),
			AAE:      crop(f).AngularError(truthIn),
			ExactPct: 100 * float64(exact) / float64(n),
		}
	}
	return []BaselineRow{
		score("SMA semi-fluid", semi.Flow),
		score("SMA semi-fluid + median", semi.Flow.Median3()),
		score("SMA continuous", cont.Flow),
		score("Horn-Schunck [2]", hs),
		score("block matching (rigid)", bm),
	}, nil
}
