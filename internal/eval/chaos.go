package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"sma/internal/core"
	"sma/internal/fault"
	"sma/internal/grid"
	"sma/internal/stream"
	"sma/internal/synth"
)

// FaultTolerance is one robustness trajectory point: the same N-frame
// sequence tracked clean and under a seeded fault schedule, with the
// degraded-mode counters checked against the plan's exact expectation
// and every surviving pair checked bit-identical to the clean run.
type FaultTolerance struct {
	Name           string  `json:"name"`
	Size           int     `json:"size"`
	Frames         int     `json:"frames"`
	Seed           int64   `json:"seed"`
	FailFrames     int     `json:"fail_frames"`
	FlakyFrames    int     `json:"flaky_frames"`
	DamageFrames   int     `json:"damage_frames"`
	Retries        int64   `json:"retries"`
	FramesSkipped  int64   `json:"frames_skipped"`
	PairsSkipped   int64   `json:"pairs_skipped"`
	Gaps           int64   `json:"gaps"`
	SurvivingPairs int     `json:"surviving_pairs"`
	CleanSec       float64 `json:"clean_sec"`
	DegradedSec    float64 `json:"degraded_sec"`
	OverheadPct    float64 `json:"overhead_pct"`
	CountersExact  bool    `json:"counters_exact"`
	BitIdentical   bool    `json:"bit_identical"`
}

// FaultToleranceExperiment runs the degraded-mode pipeline through a
// seeded fault schedule over a synthetic hurricane sequence and verifies
// the robustness contract end to end. It errors if any counter deviates
// from the plan's expectation or any surviving pair differs from the
// undamaged run.
func FaultToleranceExperiment(size, frames int, seed int64) (FaultTolerance, error) {
	cfg := fault.RandomConfig{FailFrames: 1, FlakyFrames: 1, DamageFrames: 2}
	out := FaultTolerance{
		Name: "fault_tolerance", Size: size, Frames: frames, Seed: seed,
		FailFrames: cfg.FailFrames, FlakyFrames: cfg.FlakyFrames, DamageFrames: cfg.DamageFrames,
	}
	if frames < 6 {
		return out, fmt.Errorf("eval: need at least 6 frames for a meaningful schedule, got %d", frames)
	}
	scene := synth.Hurricane(size, size, seed)
	seq := make([]*grid.Grid, frames)
	for i := range seq {
		seq[i] = scene.Frame(float64(i))
	}
	p := core.ScaledParams()

	t0 := time.Now()
	clean := make([]*core.Result, frames-1)
	for i := 0; i+1 < frames; i++ {
		res, err := core.TrackSequential(core.Monocular(seq[i], seq[i+1]), p, core.Options{})
		if err != nil {
			return out, err
		}
		clean[i] = res
	}
	out.CleanSec = time.Since(t0).Seconds()

	plan := fault.RandomPlan(seed, frames, cfg)
	e := plan.Expect(frames)
	out.SurvivingPairs = len(e.SurvivingPairs)

	streamCfg := stream.Config{
		Params: p,
		Retry:  stream.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Skip:   stream.SkipPolicy{MaxSkips: -1},
		Gate:   &core.QualityGate{MaxBadFrac: 0, MaxDeadLineFrac: 1},
	}
	got := make(map[int]*core.Result)
	t1 := time.Now()
	st, err := stream.Stream(fault.WrapSource(stream.Grids(seq), plan), streamCfg,
		func(pair int, res *core.Result) error {
			got[pair] = res
			return nil
		})
	if err != nil {
		return out, fmt.Errorf("eval: degraded run failed: %w", err)
	}
	out.DegradedSec = time.Since(t1).Seconds()
	if out.CleanSec > 0 {
		out.OverheadPct = (out.DegradedSec/out.CleanSec - 1) * 100
	}

	out.Retries, out.FramesSkipped, out.PairsSkipped, out.Gaps =
		st.Retries, st.FramesSkipped, st.PairsSkipped, st.Gaps
	out.CountersExact = st.Retries == e.Retries && st.FramesSkipped == e.FramesSkipped &&
		st.PairsSkipped == e.PairsSkipped && st.Gaps == e.Gaps &&
		st.PairsTracked == int64(len(e.SurvivingPairs))
	if !out.CountersExact {
		return out, fmt.Errorf("eval: degraded counters %+v deviate from expectation %+v", st, e)
	}

	out.BitIdentical = true
	for _, pair := range e.SurvivingPairs {
		res, ok := got[pair]
		if !ok {
			out.BitIdentical = false
			return out, fmt.Errorf("eval: surviving pair %d was not emitted", pair)
		}
		if !res.Flow.Equal(clean[pair].Flow) || !res.Err.Equal(clean[pair].Err) {
			out.BitIdentical = false
			return out, fmt.Errorf("eval: surviving pair %d differs from the undamaged run", pair)
		}
	}
	return out, nil
}

// WriteJSON writes the trajectory point as indented JSON, the
// BENCH_chaos.json format CI archives.
func (r FaultTolerance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
