package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sma/internal/cluster"
	"sma/internal/core"
	"sma/internal/server"
)

// ClusterScaling is the BENCH_cluster.json trajectory point: the
// distributed job plane driven up a worker-count ladder, every rung's
// merged result verified byte-identical to the offline sequential
// tracker. This is the repo's analog of the paper's processor-count
// scaling runs, one level up: whole nodes instead of PEs.
type ClusterScaling struct {
	Name       string        `json:"name"` // "cluster_scaling"
	Mode       string        `json:"mode"` // "inprocess" | "process"
	Size       int           `json:"size"`
	Frames     int           `json:"frames"`
	ShardPairs int           `json:"shard_pairs"`
	Jobs       int           `json:"jobs_per_rung"`
	Cores      int           `json:"cores"` // NumCPU of the driving host
	Rungs      []ClusterRung `json:"rungs"`
	// SpeedupAtMax is job throughput at the widest rung over the 1-worker
	// rung (1.0 when the ladder has a single rung).
	SpeedupAtMax float64 `json:"speedup_at_max"`
	// BitIdentical: every rung's merged SMP1 stream matched the offline
	// tracker's, byte for byte.
	BitIdentical bool `json:"bit_identical"`
}

// ClusterRung is one worker count's measurement.
type ClusterRung struct {
	Workers         int     `json:"workers"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	JobsPerSec      float64 `json:"jobs_per_sec"`
	PairsPerSec     float64 `json:"pairs_per_sec"`
	JobP50Sec       float64 `json:"job_p50_sec"`
	JobMaxSec       float64 `json:"job_max_sec"`
	DispatchRetries int64   `json:"dispatch_retries"`
}

// ClusterScalingOptions sizes the experiment.
type ClusterScalingOptions struct {
	Size       int   // frame edge (default 48)
	Frames     int   // frames per job (default 33 → 32 pairs)
	ShardPairs int   // pairs per shard (default 4 → 8 shards)
	Jobs       int   // jobs per rung (default 3)
	Workers    []int // ladder (default 1,2,4)
	Seed       int64 // scene seed (default 7)
	// Bin, when set, runs each worker as a real smaserve process
	// (`Bin -worker`) pinned to GOMAXPROCS=1 — the honest multi-node
	// measurement. Empty runs workers in-process with RowWorkers=1.
	Bin string
}

func (o ClusterScalingOptions) withDefaults() ClusterScalingOptions {
	if o.Size <= 0 {
		o.Size = 48
	}
	if o.Frames < 2 {
		o.Frames = 33
	}
	if o.ShardPairs <= 0 {
		o.ShardPairs = 4
	}
	if o.Jobs <= 0 {
		o.Jobs = 3
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4}
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	return o
}

// ClusterScalingExperiment measures distributed job throughput up a
// worker ladder. Each rung stands up N workers (in-process handlers, or
// real smaserve processes when opt.Bin is set) and one coordinator, runs
// opt.Jobs identical multi-frame jobs, and checks the merged result of
// each rung byte-identical to the offline sequential tracker — scaling
// must never buy a different answer.
func ClusterScalingExperiment(ctx context.Context, opt ClusterScalingOptions) (ClusterScaling, error) {
	opt = opt.withDefaults()
	out := ClusterScaling{
		Name:       "cluster_scaling",
		Mode:       "inprocess",
		Size:       opt.Size,
		Frames:     opt.Frames,
		ShardPairs: opt.ShardPairs,
		Jobs:       opt.Jobs,
		Cores:      runtime.NumCPU(),
	}
	if opt.Bin != "" {
		out.Mode = "process"
	}

	want, err := offlineReferenceStream(opt)
	if err != nil {
		return out, fmt.Errorf("eval: offline reference: %w", err)
	}

	identical := true
	for _, w := range opt.Workers {
		rung, rungBytes, err := runClusterRung(ctx, opt, w)
		if err != nil {
			return out, fmt.Errorf("eval: %d-worker rung: %w", w, err)
		}
		if !bytes.Equal(rungBytes, want) {
			identical = false
		}
		out.Rungs = append(out.Rungs, rung)
	}
	out.BitIdentical = identical
	if n := len(out.Rungs); n > 1 && out.Rungs[0].JobsPerSec > 0 {
		out.SpeedupAtMax = out.Rungs[n-1].JobsPerSec / out.Rungs[0].JobsPerSec
	} else {
		out.SpeedupAtMax = 1
	}
	if !identical {
		return out, fmt.Errorf("eval: a cluster rung's merged result differs from the offline tracker")
	}
	return out, nil
}

// runClusterRung measures one worker count and returns the last job's
// merged result bytes for the bit-identity check.
func runClusterRung(ctx context.Context, opt ClusterScalingOptions, workers int) (ClusterRung, []byte, error) {
	rung := ClusterRung{Workers: workers}

	var urls []string
	var stop func()
	var err error
	if opt.Bin != "" {
		urls, stop, err = startWorkerProcesses(ctx, opt.Bin, workers)
	} else {
		urls, stop, err = startWorkerHandlers(workers)
	}
	if err != nil {
		return rung, nil, err
	}
	defer stop()

	co, err := cluster.New(cluster.Config{
		Workers:    urls,
		ShardPairs: opt.ShardPairs,
		Logf:       func(string, ...any) {},
	})
	if err != nil {
		return rung, nil, err
	}
	coCtx, coCancel := context.WithCancel(ctx)
	defer coCancel()
	co.Start(coCtx)
	ts := httptest.NewServer(co.Handler())
	defer func() {
		ts.Close()
		sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 30*time.Second)
		defer cancel()
		co.Shutdown(sctx) //smavet:allow errdiscard -- teardown of a drained coordinator
	}()

	req, err := json.Marshal(cluster.JobRequest{JobRequest: server.JobRequest{
		Synthetic: &server.SyntheticRef{Scene: "hurricane", Size: opt.Size, Seed: opt.Seed, Frames: opt.Frames},
	}})
	if err != nil {
		return rung, nil, err
	}

	var (
		jobSecs []float64
		lastID  string
	)
	start := time.Now()
	for j := 0; j < opt.Jobs; j++ {
		t0 := time.Now()
		view, err := runClusterJobHTTP(ctx, ts.URL, req)
		if err != nil {
			return rung, nil, fmt.Errorf("job %d: %w", j, err)
		}
		if view.Status != server.JobDone {
			return rung, nil, fmt.Errorf("job %d finished %q: %s", j, view.Status, view.Error)
		}
		if view.Stats.PairsTracked != int64(opt.Frames-1) {
			return rung, nil, fmt.Errorf("job %d tracked %d pairs, want %d", j, view.Stats.PairsTracked, opt.Frames-1)
		}
		jobSecs = append(jobSecs, time.Since(t0).Seconds())
		rung.DispatchRetries += view.Cluster.DispatchRetries
		lastID = view.ID
	}
	rung.ElapsedSec = time.Since(start).Seconds()
	if rung.ElapsedSec > 0 {
		rung.JobsPerSec = float64(opt.Jobs) / rung.ElapsedSec
		rung.PairsPerSec = float64(opt.Jobs*(opt.Frames-1)) / rung.ElapsedSec
	}
	sort.Float64s(jobSecs)
	rung.JobP50Sec = jobSecs[len(jobSecs)/2]
	rung.JobMaxSec = jobSecs[len(jobSecs)-1]

	resp, err := http.Get(ts.URL + "/v1/jobs/" + lastID + "/result")
	if err != nil {
		return rung, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return rung, nil, fmt.Errorf("result stream: HTTP %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	return rung, data, err
}

// startWorkerHandlers runs n in-process workers, each pinned to one row
// worker so rungs measure distribution, not hidden intra-node fan-out.
func startWorkerHandlers(n int) ([]string, func(), error) {
	var servers []*httptest.Server
	var urls []string
	for i := 0; i < n; i++ {
		wk := cluster.NewWorker(cluster.WorkerConfig{
			Concurrency: 2,
			RowWorkers:  1,
			Logf:        func(string, ...any) {},
		})
		mux := http.NewServeMux()
		mux.Handle("POST "+cluster.ShardPath, wk)
		mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ready")
		})
		ts := httptest.NewServer(mux)
		servers = append(servers, ts)
		urls = append(urls, ts.URL)
	}
	return urls, func() {
		for _, ts := range servers {
			ts.Close()
		}
	}, nil
}

// startWorkerProcesses spawns n real `smaserve -worker` processes with
// GOMAXPROCS=1 and waits for each to publish its port.
func startWorkerProcesses(ctx context.Context, bin string, n int) ([]string, func(), error) {
	dir, err := os.MkdirTemp("", "smacluster")
	if err != nil {
		return nil, nil, err
	}
	var cmds []*exec.Cmd
	stop := func() {
		for _, cmd := range cmds {
			if cmd.Process != nil {
				cmd.Process.Signal(syscall.SIGTERM) //smavet:allow errdiscard -- best-effort teardown
				cmd.Wait()                          //smavet:allow errdiscard -- exit status irrelevant at teardown
			}
		}
		os.RemoveAll(dir) //smavet:allow errdiscard -- temp-dir teardown
	}
	var urls []string
	for i := 0; i < n; i++ {
		pf := filepath.Join(dir, fmt.Sprintf("worker%d.port", i))
		cmd := exec.CommandContext(ctx, bin,
			"-worker", "-addr", "127.0.0.1:0", "-port-file", pf,
			"-row-workers", "1", "-workers", "2")
		cmd.Env = append(os.Environ(), "GOMAXPROCS=1")
		if err := cmd.Start(); err != nil {
			stop()
			return nil, nil, fmt.Errorf("starting worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
		port, err := awaitPortFile(ctx, pf)
		if err != nil {
			stop()
			return nil, nil, fmt.Errorf("worker %d never published a port: %w", i, err)
		}
		urls = append(urls, "http://127.0.0.1:"+strconv.Itoa(port))
	}
	return urls, stop, nil
}

// awaitPortFile polls for a smaserve -port-file write.
func awaitPortFile(ctx context.Context, path string) (int, error) {
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(path); err == nil {
			if port, err := strconv.Atoi(strings.TrimSpace(string(data))); err == nil && port > 0 {
				return port, nil
			}
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("timed out waiting for %s", path)
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// runClusterJobHTTP submits one job and polls it to a terminal status.
func runClusterJobHTTP(ctx context.Context, base string, body []byte) (cluster.JobView, error) {
	var view cluster.JobView
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return view, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return view, err
	}
	if err := decodeEvalBody(resp, http.StatusAccepted, &view); err != nil {
		return view, err
	}
	for {
		greq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+view.ID, nil)
		if err != nil {
			return view, err
		}
		resp, err := http.DefaultClient.Do(greq)
		if err != nil {
			return view, err
		}
		if err := decodeEvalBody(resp, http.StatusOK, &view); err != nil {
			return view, err
		}
		switch view.Status {
		case server.JobDone, server.JobFailed, server.JobCancelled:
			return view, nil
		}
		select {
		case <-time.After(25 * time.Millisecond):
		case <-ctx.Done():
			return view, ctx.Err()
		}
	}
}

func decodeEvalBody(resp *http.Response, wantCode int, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //smavet:allow errdiscard -- error-path diagnostics only
		return fmt.Errorf("HTTP %d (want %d): %s", resp.StatusCode, wantCode, bytes.TrimSpace(b))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// offlineReferenceStream renders the job's expected merged SMP1 stream
// straight from the sequential tracker — the ground truth every rung
// must reproduce byte for byte.
func offlineReferenceStream(opt ClusterScalingOptions) ([]byte, error) {
	return offlineStream(server.SyntheticRef{Scene: "hurricane", Size: opt.Size, Seed: opt.Seed, Frames: opt.Frames})
}

// offlineStream renders the sequential tracker's merged SMP1 stream for
// a synthetic reference — shared by the scaling and recovery oracles.
func offlineStream(ref server.SyntheticRef) ([]byte, error) {
	scene, err := ref.SceneOf()
	if err != nil {
		return nil, err
	}
	params := core.ScaledParams()
	fields := make([][]byte, ref.Frames-1)
	for p := 0; p < ref.Frames-1; p++ {
		res, err := core.TrackSequential(core.Monocular(
			scene.Frame(float64(p)), scene.Frame(float64(p+1))), params, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("pair %d: %w", p, err)
		}
		var buf bytes.Buffer
		if err := server.NewMotionField("", res).WriteBinary(&buf); err != nil {
			return nil, err
		}
		fields[p] = buf.Bytes()
	}
	var out bytes.Buffer
	if err := server.WritePairStream(&out, fields, nil); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// WriteJSON writes the trajectory point as indented JSON.
func (r ClusterScaling) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
