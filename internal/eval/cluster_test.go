package eval

import (
	"context"
	"testing"
	"time"
)

// TestClusterScalingExperiment runs a tiny in-process ladder and checks
// the invariants BENCH_cluster.json consumers rely on: one rung per
// worker count, positive throughput, and bit-identity to the offline
// tracker.
func TestClusterScalingExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("spins multi-node clusters")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	r, err := ClusterScalingExperiment(ctx, ClusterScalingOptions{
		Size:    24,
		Frames:  5,
		Jobs:    1,
		Workers: []int{1, 2},
		Seed:    3,
	})
	if err != nil {
		t.Fatalf("ClusterScalingExperiment: %v", err)
	}
	if !r.BitIdentical {
		t.Fatal("cluster rungs not bit-identical to the offline tracker")
	}
	if len(r.Rungs) != 2 {
		t.Fatalf("%d rungs, want 2", len(r.Rungs))
	}
	for _, rung := range r.Rungs {
		if rung.JobsPerSec <= 0 || rung.PairsPerSec <= 0 {
			t.Fatalf("rung %d reports no throughput: %+v", rung.Workers, rung)
		}
		if rung.DispatchRetries != 0 {
			t.Fatalf("clean rung %d saw %d dispatch retries", rung.Workers, rung.DispatchRetries)
		}
	}
	if r.SpeedupAtMax <= 0 {
		t.Fatalf("speedup %v", r.SpeedupAtMax)
	}
}
