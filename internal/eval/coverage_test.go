package eval

import (
	"strings"
	"testing"

	"sma/internal/grid"
)

func TestQuiverStepLargerThanField(t *testing.T) {
	f := grid.NewVectorField(4, 4)
	f.U.Fill(2)
	q := Quiver(f, 100)
	// One sample row at most; never panics, never empty.
	if q == "" {
		t.Fatal("oversized step produced empty quiver")
	}
}

func TestQuiverStepZeroClamped(t *testing.T) {
	f := grid.NewVectorField(3, 3)
	q := Quiver(f, 0)
	if strings.Count(q, "\n") != 3 {
		t.Fatalf("step-0 quiver has %d rows, want 3 (clamped to 1)", strings.Count(q, "\n"))
	}
}

func TestTable2DeterministicAcrossCalls(t *testing.T) {
	a, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if a.ModeledTotal != b.ModeledTotal || a.SpeedupModel != b.SpeedupModel {
		t.Fatal("Table 2 model not deterministic")
	}
}

func TestSegmentationAblationDefaultBudgets(t *testing.T) {
	rows := SegmentationAblation(nil)
	if len(rows) != 4 {
		t.Fatalf("default budgets produced %d rows", len(rows))
	}
	if rows[len(rows)-1].Err == "" {
		t.Fatal("smallest default budget should be infeasible")
	}
}

func TestWindBarbBarbCount(t *testing.T) {
	// Even at a small size the experiment must find its 32 tracers.
	r, err := WindBarbExperiment(48, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Barbs) != 32 {
		t.Fatalf("%d barbs at size 48", len(r.Barbs))
	}
}

func TestFigure4DefaultWindows(t *testing.T) {
	pts, err := Figure4([]int{11})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Window != 11 {
		t.Fatalf("explicit window list mishandled: %+v", pts)
	}
}
