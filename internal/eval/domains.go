package eval

import (
	"fmt"
	"math"

	"sma/internal/core"
	"sma/internal/grid"
	"sma/internal/synth"
)

// DomainResult scores the tracker on one of the paper's other application
// domains ("deformable motion tracking of non-rigid biological objects
// and remotely sensed objects such as ... polar sea ice, or ocean
// currents").
type DomainResult struct {
	Name     string
	RMSE     float64 // interior, px, vs ground truth
	ExactPct float64
}

// EddiesExperiment tracks the ocean-eddy scene (counter-rotating vortices
// in a zonal current) with the continuous model.
func EddiesExperiment(size int, seed int64) (*DomainResult, error) {
	s := synth.Eddies(size, size, seed)
	p := core.Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 0}
	res, err := core.TrackSequential(core.Monocular(s.Frame(0), s.Frame(1)), p, core.Options{})
	if err != nil {
		return nil, err
	}
	truth := s.Truth(1)
	return scoreDomain("ocean eddies", res.Flow, truth, size), nil
}

// FissionExperiment tracks the dividing-cell sequence with the semi-fluid
// model: topology-changing biological motion, the "fission and fusion in
// biological microorganisms" the paper's introduction motivates. Pixels on
// the two daughter bodies must follow their respective separation motion.
func FissionExperiment(size int, seed int64) (*DomainResult, error) {
	imgs, truths := synth.FissionFrames(size, size, 8, seed)
	p := core.ScaledParams()
	// Track a late pair, where the daughters are clearly separated and
	// the waist has pinched off.
	res, err := core.TrackSequential(core.Monocular(imgs[6], imgs[7]), p, core.Options{})
	if err != nil {
		return nil, err
	}
	truth := truths[6]
	// Score on the bright daughter-cell bodies away from the pinching
	// waist: the central strip mixes both motions (plus the fading waist)
	// and is genuinely ambiguous — the biological claim is about tracking
	// the separating bodies.
	bright := imgs[6]
	cx := size / 2
	strip := size / 10
	var s float64
	n, exact := 0, 0
	margin := size / 8
	for y := margin; y < size-margin; y++ {
		for x := margin; x < size-margin; x++ {
			if bright.AtUnchecked(x, y) < 120 {
				continue
			}
			if x > cx-strip && x < cx+strip {
				continue
			}
			u, v := res.Flow.At(x, y)
			tu, tv := truth.At(x, y)
			du := float64(u) - float64(tu)
			dv := float64(v) - float64(tv)
			s += du*du + dv*dv
			if math.Abs(du) <= 0.5 && math.Abs(dv) <= 0.5 {
				exact++
			}
			n++
		}
	}
	if n == 0 {
		return &DomainResult{Name: "cell fission"}, nil
	}
	return &DomainResult{
		Name:     "cell fission",
		RMSE:     math.Sqrt(s / float64(n)),
		ExactPct: 100 * float64(exact) / float64(n),
	}, nil
}

func scoreDomain(name string, f, truth *grid.VectorField, size int) *DomainResult {
	margin := size / 8
	var s float64
	n, exact := 0, 0
	for y := margin; y < size-margin; y++ {
		for x := margin; x < size-margin; x++ {
			u, v := f.At(x, y)
			tu, tv := truth.At(x, y)
			du := float64(u - tu)
			dv := float64(v - tv)
			s += du*du + dv*dv
			if math.Abs(du) <= 0.5 && math.Abs(dv) <= 0.5 {
				exact++
			}
			n++
		}
	}
	return &DomainResult{
		Name:     name,
		RMSE:     math.Sqrt(s / float64(n)),
		ExactPct: 100 * float64(exact) / float64(n),
	}
}

// IceFloesExperiment tracks the polar sea-ice scene (rigid floes with
// independent drift and rotation over water) with the semi-fluid model,
// scoring only floe pixels (bright) — water has no texture to track.
func IceFloesExperiment(size int, seed int64) (*DomainResult, error) {
	f0, f1, truth := synth.IceFloes(size, size, seed)
	p := core.ScaledParams()
	res, err := core.TrackSequential(core.Monocular(f0, f1), p, core.Options{})
	if err != nil {
		return nil, err
	}
	margin := size / 8
	var s float64
	n, exact := 0, 0
	for y := margin; y < size-margin; y++ {
		for x := margin; x < size-margin; x++ {
			if f0.AtUnchecked(x, y) < 120 {
				continue // water
			}
			u, v := res.Flow.At(x, y)
			tu, tv := truth.At(x, y)
			du := float64(u - tu)
			dv := float64(v - tv)
			s += du*du + dv*dv
			if math.Abs(du) <= 0.5 && math.Abs(dv) <= 0.5 {
				exact++
			}
			n++
		}
	}
	if n == 0 {
		return &DomainResult{Name: "sea-ice floes"}, nil
	}
	return &DomainResult{
		Name:     "sea-ice floes",
		RMSE:     math.Sqrt(s / float64(n)),
		ExactPct: 100 * float64(exact) / float64(n),
	}, nil
}

// PlumeRobustness measures accuracy degradation under increasing
// appearance change: the aerosol-plume sequence tracked at several
// diffusion rates. Robustness to imperfect brightness constancy is what
// separates feature-structure matching (normals, discriminants) from raw
// intensity matching.
func PlumeRobustness(size int, seed int64, rates []float64) ([]DomainResult, error) {
	if len(rates) == 0 {
		rates = []float64{0, 0.6, 1.2}
	}
	p := core.ScaledParams()
	var out []DomainResult
	for _, rate := range rates {
		imgs, truths := synth.PlumeFrames(size, size, 2, seed, rate)
		res, err := core.TrackSequential(core.Monocular(imgs[0], imgs[1]), p, core.Options{})
		if err != nil {
			return nil, err
		}
		truth := truths[0]
		// Score on plume pixels (bright ridge).
		margin := size / 8
		var s float64
		n, exact := 0, 0
		for y := margin; y < size-margin; y++ {
			for x := margin; x < size-margin; x++ {
				if imgs[0].AtUnchecked(x, y) < 80 {
					continue
				}
				u, v := res.Flow.At(x, y)
				tu, tv := truth.At(x, y)
				du := float64(u - tu)
				dv := float64(v - tv)
				s += du*du + dv*dv
				if math.Abs(du) <= 0.5 && math.Abs(dv) <= 0.5 {
					exact++
				}
				n++
			}
		}
		r := DomainResult{Name: fmt.Sprintf("plume diffusion=%.1f", rate)}
		if n > 0 {
			r.RMSE = math.Sqrt(s / float64(n))
			r.ExactPct = 100 * float64(exact) / float64(n)
		}
		out = append(out, r)
	}
	return out, nil
}
