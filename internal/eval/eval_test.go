package eval

import (
	"strings"
	"testing"
	"time"

	"sma/internal/grid"
)

func TestTable1MatchesPaperWindows(t *testing.T) {
	rows := Table1()
	want := map[string]string{
		"Surface-fitting":     "5 x 5",
		"z-Search area":       "13 x 13",
		"z-Template":          "121 x 121",
		"Semi-fluid template": "5 x 5",
	}
	if len(rows) != len(want) {
		t.Fatalf("Table 1 has %d rows, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		if want[r.Name] != r.Window {
			t.Errorf("%s window %q, want %q", r.Name, r.Window, want[r.Name])
		}
	}
}

func TestTable3MatchesPaperWindows(t *testing.T) {
	rows := Table3()
	want := map[string]string{
		"Search Area":   "15 x 15",
		"Template":      "15 x 15",
		"Surface-patch": "5 x 5",
	}
	for _, r := range rows {
		if want[r.Name] != r.Window {
			t.Errorf("%s window %q, want %q", r.Name, r.Window, want[r.Name])
		}
	}
}

func TestTable2ReproducesShape(t *testing.T) {
	tb, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	// Hypothesis matching dominates; semi-fluid mapping next; surface fit
	// and geometric variables negligible — Table 2's structure.
	var fit, geom, semi, hyp time.Duration
	for _, r := range tb.Rows {
		switch r.Subroutine {
		case "Surface fit":
			fit = r.Modeled
		case "Compute geometric variables":
			geom = r.Modeled
		case "Semi-fluid mapping":
			semi = r.Modeled
		case "Hypothesis matching":
			hyp = r.Modeled
		}
	}
	if !(hyp > 100*semi && semi > 10*fit && fit > geom) {
		t.Fatalf("stage ordering broken: fit=%v geom=%v semi=%v hyp=%v", fit, geom, semi, hyp)
	}
	// Total within 2× of the paper's 9.298 h.
	ratio := float64(tb.ModeledTotal) / float64(tb.PaperTotal)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("modeled total %v vs paper %v (ratio %.2f)", tb.ModeledTotal, tb.PaperTotal, ratio)
	}
	// Sequential projection within 30% of 397.34 days.
	sr := float64(tb.SeqModeled) / float64(tb.SeqPaper)
	if sr < 0.7 || sr > 1.3 {
		t.Fatalf("modeled sequential %v vs paper %v (ratio %.2f)", tb.SeqModeled, tb.SeqPaper, sr)
	}
	// Speedup of the right magnitude (paper: 1025, "over three orders").
	if tb.SpeedupModel < 700 || tb.SpeedupModel > 1600 {
		t.Fatalf("modeled speedup %.0f not within [700,1600] around paper's 1025", tb.SpeedupModel)
	}
	// Frederic ran unsegmented (Z = 2·Nzs+1 = 13).
	if tb.Plan.Segments != 1 || tb.Plan.Z != 13 {
		t.Fatalf("plan %+v, want unsegmented Z=13", tb.Plan)
	}
}

func TestTable4ReproducesShape(t *testing.T) {
	tb, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(tb.ModeledTotal) / float64(tb.PaperTotal)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("modeled total %v vs paper %v (ratio %.2f)", tb.ModeledTotal, tb.PaperTotal, ratio)
	}
	sr := float64(tb.SeqModeled) / float64(tb.SeqPaper)
	if sr < 0.6 || sr > 1.6 {
		t.Fatalf("modeled sequential %v vs paper %v (ratio %.2f)", tb.SeqModeled, tb.SeqPaper, sr)
	}
	// The continuous-model gain is far below the semi-fluid gain
	// (193 vs 1025 in the paper) because the heavily optimized semi-fluid
	// mapping stage is absent.
	t2, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if tb.SpeedupModel >= t2.SpeedupModel/2 {
		t.Fatalf("continuous speedup %.0f not well below semi-fluid %.0f",
			tb.SpeedupModel, t2.SpeedupModel)
	}
}

func TestLuisThroughput(t *testing.T) {
	l, err := Luis()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ≈6 min per pair, speedup over 150.
	if l.PerPairModel > 3*l.PerPairPaper || l.PerPairModel < l.PerPairPaper/4 {
		t.Fatalf("per-pair modeled %v vs paper %v", l.PerPairModel, l.PerPairPaper)
	}
	if l.SpeedupModel < 150 {
		t.Fatalf("Luis modeled speedup %.0f below the paper's >150 claim", l.SpeedupModel)
	}
}

func TestFigure4MonotoneSuperlinear(t *testing.T) {
	pts, err := Figure4([]int{11, 31, 51})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Modeled <= pts[i-1].Modeled {
			t.Fatalf("modeled series not increasing: %v", pts)
		}
		if pts[i].Measured <= pts[i-1].Measured {
			t.Fatalf("measured series not increasing: %v", pts)
		}
	}
	// Superlinear in window edge: going 11→51 multiplies area by ~21.5;
	// time must grow at least ~area/2 on both series.
	if float64(pts[2].Measured) < 8*float64(pts[0].Measured) {
		t.Fatalf("measured growth too shallow: %v → %v", pts[0].Measured, pts[2].Measured)
	}
}

func TestFigure4RejectsEvenWindows(t *testing.T) {
	if _, err := Figure4([]int{10}); err == nil {
		t.Fatal("even window accepted")
	}
}

func TestWindBarbExperimentMeetsPaperAccuracy(t *testing.T) {
	res, err := WindBarbExperiment(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Barbs) != 32 {
		t.Fatalf("%d barbs, want 32 (the paper's count)", len(res.Barbs))
	}
	// "root-mean-squared error of less than one pixel with respect to the
	// manual estimates".
	if res.RMSE >= 1.0 {
		t.Fatalf("barb RMSE %.3f px, want < 1", res.RMSE)
	}
	// "The parallel algorithm obtained the same result as the sequential
	// implementation."
	if !res.ParallelEqual {
		t.Fatal("parallel and sequential results differ")
	}
	if res.StereoRMSE > 1.0 {
		t.Fatalf("ASA disparity RMSE %.3f px too large", res.StereoRMSE)
	}
}

func TestFigure6TracksThunderstorm(t *testing.T) {
	steps, err := Figure6(48, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("got %d steps", len(steps))
	}
	for _, s := range steps {
		if s.RMSE >= 1.2 {
			t.Fatalf("step %d RMSE %.3f px", s.T, s.RMSE)
		}
		if !strings.Contains(s.Quiver, "\n") {
			t.Fatalf("step %d has no quiver rendering", s.T)
		}
	}
}

func TestQuiverGlyphs(t *testing.T) {
	f := grid.NewVectorField(8, 8)
	f.U.Fill(2) // uniform eastward flow
	q := Quiver(f, 4)
	if !strings.Contains(q, "→") {
		t.Fatalf("eastward flow rendered as %q", q)
	}
	f2 := grid.NewVectorField(8, 8)
	f2.V.Fill(2) // southward (screen-down) flow
	if q2 := Quiver(f2, 4); !strings.Contains(q2, "↓") {
		t.Fatalf("southward flow rendered as %q", q2)
	}
	zero := grid.NewVectorField(8, 8)
	if qz := Quiver(zero, 4); !strings.Contains(qz, "·") {
		t.Fatalf("zero flow rendered as %q", qz)
	}
}

func TestReadoutAblationOrdering(t *testing.T) {
	rows, err := ReadoutAblation(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	paper := byName["hierarchical + raster (paper's choice)"]
	for name, r := range byName {
		if name == paper.Name {
			continue
		}
		if paper.Time >= r.Time {
			t.Fatalf("paper's choice (%v) not faster than %s (%v)", paper.Time, name, r.Time)
		}
	}
	// §4.2's argument quantified: mesh transfers beat the router by an
	// order of magnitude for neighborhood traffic.
	router := byName["hierarchical + global router (rejected)"]
	if router.Time < 10*paper.Time {
		t.Fatalf("router fetch %v not ≥10× the mesh fetch %v", router.Time, paper.Time)
	}
}

func TestSegmentationAblation(t *testing.T) {
	rows := SegmentationAblation([]int{64 * 1024, 8 * 1024, 2 * 1024})
	if rows[0].Segments != 1 {
		t.Fatalf("64 KB row segmented: %+v", rows[0])
	}
	if rows[1].Err != "" {
		t.Fatalf("8 KB row errored: %v", rows[1].Err)
	}
	if rows[1].Segments <= rows[0].Segments {
		t.Fatalf("8 KB not more segmented than 64 KB: %+v vs %+v", rows[1], rows[0])
	}
	if rows[1].Total <= rows[0].Total {
		t.Fatalf("segmented run not slower: %v vs %v", rows[1].Total, rows[0].Total)
	}
	if rows[2].Err == "" {
		t.Fatal("2 KB budget should be infeasible")
	}
}

func TestTimingTableFormat(t *testing.T) {
	tb, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	s := tb.Format()
	for _, want := range []string{"Subroutine", "Hypothesis matching", "Speedup", "193"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, s)
		}
	}
}
