package eval

import (
	"fmt"
	"math"
	"strings"
	"time"

	"sma/internal/core"
	"sma/internal/grid"
	"sma/internal/maspar"
	"sma/internal/model"
	"sma/internal/stereo"
	"sma/internal/synth"
)

// Fig4Point is one sample of Figure 4: the time to compute a single pixel
// correspondence (one hypothesis evaluation) as a function of z-template
// size, both modeled for the paper's SGI and measured on the host.
type Fig4Point struct {
	Window   int // template edge length (11 … 131)
	Modeled  time.Duration
	Measured time.Duration
}

// Figure4 sweeps the z-template sizes of the paper's Figure 4 (11×11 to
// 131×131). The measured series times this implementation's hypothesis
// evaluation on the host; the modeled series projects the paper's SGI
// R8000/90, including the cache-induced nonlinearity the paper notes.
func Figure4(windows []int) ([]Fig4Point, error) {
	if len(windows) == 0 {
		windows = []int{11, 31, 51, 71, 91, 111, 131}
	}
	sgi := model.DefaultSGI()
	var out []Fig4Point
	for _, wsize := range windows {
		if wsize%2 == 0 || wsize < 3 {
			return nil, fmt.Errorf("eval: template window %d must be odd and >= 3", wsize)
		}
		nzt := wsize / 2
		p := core.FredericParams()
		p.NZT = nzt
		oc := core.CountOps(p, 2)
		modeled := time.Duration(float64(sgi.PixelTime(oc)) / float64(p.Hypotheses()))

		// Measure one hypothesis evaluation on a just-large-enough scene.
		size := wsize + 16
		s := synth.Hurricane(size, size, 7)
		prep, err := core.Prepare(core.Monocular(s.Frame(0), s.Frame(1)), p)
		if err != nil {
			return nil, err
		}
		reps := 3
		if wsize <= 51 {
			reps = 10
		}
		start := time.Now()
		for i := 0; i < reps; i++ {
			core.ScoreOnce(prep, size/2, size/2)
		}
		measured := time.Since(start) / time.Duration(reps)
		out = append(out, Fig4Point{Window: wsize, Modeled: modeled, Measured: measured})
	}
	return out, nil
}

// BarbResult is the Hurricane Frederic accuracy experiment of §5.1: the
// full stereo pipeline tracked densely, compared at sparse tracer pixels
// against the reference motion (the paper's 32 manual wind barbs; here the
// synthetic scene's exact ground truth), with the parallel/sequential
// equivalence check the paper reports.
type BarbResult struct {
	Size          int
	Barbs         []grid.Point
	RMSE          float64 // pixels, at the barb points (paper: < 1)
	DenseRMSE     float64 // pixels, all interior pixels
	ParallelEqual bool    // parallel result identical to sequential
	StereoRMSE    float64 // ASA disparity error, pixels
}

// WindBarbExperiment runs the Frederic-style pipeline at a scaled size:
// synthesize a hurricane stereo sequence with known height field, recover
// surfaces with the ASA matcher, track with the semi-fluid model on both
// drivers, and score against ground truth at 32 high-contrast tracers.
func WindBarbExperiment(size int, seed int64) (*BarbResult, error) {
	scene := synth.Hurricane(size, size, seed)
	i0 := scene.Frame(0)
	i1 := scene.Frame(1)
	truth := scene.Truth(1)

	// Stereo: synthesize right views from a known height field (smooth
	// cloud-top relief with a few pixels of disparity, as the GOES
	// geometry produces), then recover the surfaces with ASA as the
	// paper's pipeline does.
	height := func(img *grid.Grid) *grid.Grid {
		z := img.GaussianBlur(3)
		z.Apply(func(v float32) float32 { return v * 0.02 })
		return z
	}
	z0true := height(i0)
	z1true := height(i1)
	r0 := synth.StereoPair(i0, z0true)
	r1 := synth.StereoPair(i1, z1true)
	scfg := stereo.DefaultConfig()
	d0, err := stereo.Estimate(i0, r0, scfg)
	if err != nil {
		return nil, err
	}
	d1, err := stereo.Estimate(i1, r1, scfg)
	if err != nil {
		return nil, err
	}
	pair := core.Pair{I0: i0, I1: i1, Z0: d0, Z1: d1}

	p := core.ScaledParams()
	p.NZS = 3 // cover the scene's ~2.3 px/frame peak winds
	seq, err := core.TrackSequential(pair, p, core.Options{})
	if err != nil {
		return nil, err
	}
	m, err := maspar.New(maspar.ScaledConfig(8, 8))
	if err != nil {
		return nil, err
	}
	par, err := core.TrackMasPar(m, pair, p, core.Options{}, maspar.RasterReadout)
	if err != nil {
		return nil, err
	}

	margin := size / 8
	barbs := synth.Barbs(i0, 32, margin, 4)
	in := size - 2*margin
	res := &BarbResult{
		Size:          size,
		Barbs:         barbs,
		RMSE:          seq.Flow.RMSEAt(truth, barbs),
		ParallelEqual: par.Flow.Equal(seq.Flow) && par.Err.Equal(seq.Err),
		StereoRMSE: d0.Crop(margin, margin, in, in).
			RMSDiff(z0true.Crop(margin, margin, in, in)),
	}
	// Dense interior RMSE.
	var s float64
	n := 0
	for y := margin; y < size-margin; y++ {
		for x := margin; x < size-margin; x++ {
			u, v := seq.Flow.At(x, y)
			tu, tv := truth.At(x, y)
			du := float64(u - tu)
			dv := float64(v - tv)
			s += du*du + dv*dv
			n++
		}
	}
	res.DenseRMSE = math.Sqrt(s / float64(n))
	return res, nil
}

// Fig6Step is one timestep of the Figure 6 reproduction.
type Fig6Step struct {
	T      int
	RMSE   float64 // vs ground truth, interior pixels
	MeanU  float64
	MeanV  float64
	Quiver string // ASCII rendering of the subsampled motion field
}

// Figure6 reproduces the GOES-9 Florida thunderstorm tracking: a rapid-
// scan convective scene tracked with the continuous model over several
// timesteps, rendered as subsampled flow fields (the paper's Figure 6
// shows four of 48 timesteps as wind-vector imagery).
func Figure6(size, steps int, seed int64) ([]Fig6Step, error) {
	scene := synth.Thunderstorm(size, size, seed)
	p := core.GOES9Params()
	// Scale the windows to the scene (paper scale is 512; tests use less).
	if size < 256 {
		p = core.Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 0}
	}
	var out []Fig6Step
	for t := 0; t < steps; t++ {
		f0 := scene.Frame(float64(t))
		f1 := scene.Frame(float64(t + 1))
		res, err := core.TrackSequential(core.Monocular(f0, f1), p, core.Options{})
		if err != nil {
			return nil, err
		}
		truth := scene.Truth(1) // steady flow: same for every t
		margin := size / 8
		var s, su, sv float64
		n := 0
		for y := margin; y < size-margin; y++ {
			for x := margin; x < size-margin; x++ {
				u, v := res.Flow.At(x, y)
				tu, tv := truth.At(x, y)
				du := float64(u - tu)
				dv := float64(v - tv)
				s += du*du + dv*dv
				su += float64(u)
				sv += float64(v)
				n++
			}
		}
		out = append(out, Fig6Step{
			T:      t,
			RMSE:   math.Sqrt(s / float64(n)),
			MeanU:  su / float64(n),
			MeanV:  sv / float64(n),
			Quiver: Quiver(res.Flow, size/16),
		})
	}
	return out, nil
}

// Quiver renders a displacement field as ASCII arrows sampled every
// `step` pixels — the text analog of the paper's wind-vector imagery.
func Quiver(f *grid.VectorField, step int) string {
	if step < 1 {
		step = 1
	}
	w, h := f.Bounds()
	// Always emit at least one sample row/column.
	if step > w {
		step = w
	}
	if step > h {
		step = h
	}
	glyphs := []rune{'→', '↗', '↑', '↖', '←', '↙', '↓', '↘'}
	var b strings.Builder
	for y := step / 2; y < h; y += step {
		for x := step / 2; x < w; x += step {
			u, v := f.At(x, y)
			mag := math.Hypot(float64(u), float64(v))
			if mag < 0.5 {
				b.WriteRune('·')
				continue
			}
			// Screen y grows downward; flip v for compass angles.
			ang := math.Atan2(-float64(v), float64(u))
			oct := int(math.Round(ang/(math.Pi/4)+8)) % 8
			b.WriteRune(glyphs[oct])
		}
		b.WriteRune('\n')
	}
	return b.String()
}

// AblationRow compares one design alternative's modeled communication cost.
type AblationRow struct {
	Name string
	XNet int64
	Mem  int64
	Time time.Duration
}

// ReadoutAblation models one full-template neighborhood fetch at paper
// scale under the four §3.2/§4.2 design alternatives: {hierarchical,
// cut-and-stack} × {snake, raster}. The paper's choices — hierarchical
// folding and raster read-out — must come out cheapest.
func ReadoutAblation(r int) ([]AblationRow, error) {
	cfg := maspar.DefaultConfig()
	m, err := maspar.New(cfg)
	if err != nil {
		return nil, err
	}
	hier, err := maspar.NewHierarchical(m, 512, 512)
	if err != nil {
		return nil, err
	}
	cut, err := maspar.NewCutStack(m, 512, 512)
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, alt := range []struct {
		name string
		mp   maspar.Mapping
		s    maspar.FetchScheme
	}{
		{"hierarchical + raster (paper's choice)", hier, maspar.RasterReadout},
		{"hierarchical + snake", hier, maspar.SnakeReadout},
		{"cut-and-stack + raster", cut, maspar.RasterReadout},
		{"cut-and-stack + snake", cut, maspar.SnakeReadout},
	} {
		c, err := maspar.FetchCost(alt.mp, r, alt.s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name: alt.name,
			XNet: c.XNetShifts,
			Mem:  c.MemDirect,
			Time: cfg.Time(c),
		})
	}
	// The rejected alternative: global-router transfers for neighborhood
	// traffic (§4.2's explicit design argument).
	rc := maspar.RouterFetchCost(hier, r)
	rows = append(rows, AblationRow{
		Name: "hierarchical + global router (rejected)",
		XNet: rc.RouterSends, // reported in the comm column
		Mem:  rc.MemDirect,
		Time: cfg.Time(rc),
	})
	return rows, nil
}

// SegmentationRow records the modeled effect of shrinking PE memory on
// the Frederic run: smaller memory → more segments → more re-fetching.
type SegmentationRow struct {
	MemPerPE int
	Segments int
	Total    time.Duration
	Err      string
}

// SegmentationAblation models the Frederic configuration under shrinking
// PE memory budgets (§4.3's motivation).
func SegmentationAblation(budgets []int) []SegmentationRow {
	if len(budgets) == 0 {
		budgets = []int{64 * 1024, 32 * 1024, 8 * 1024, 2 * 1024}
	}
	var rows []SegmentationRow
	for _, b := range budgets {
		cfg := maspar.DefaultConfig()
		cfg.MemPerPE = b
		m, err := maspar.New(cfg)
		if err != nil {
			rows = append(rows, SegmentationRow{MemPerPE: b, Err: err.Error()})
			continue
		}
		st, plan, err := core.ModelRun(m, 512, 512, core.FredericParams(), 4, maspar.RasterReadout)
		row := SegmentationRow{MemPerPE: b}
		if err != nil {
			row.Err = err.Error()
		} else {
			row.Segments = plan.Segments
			row.Total = st.Total()
		}
		rows = append(rows, row)
	}
	return rows
}

// SweepPoint is one sample of the template-size accuracy/cost sweep: the
// accuracy counterpart to Figure 4's pure-cost curve.
type SweepPoint struct {
	Window   int
	RMSE     float64       // barb RMSE vs truth
	PerPixel time.Duration // modeled SGI time per pixel (all hypotheses)
}

// TemplateAccuracySweep measures how tracking accuracy and modeled cost
// vary with z-template size on a hurricane scene — the trade-off implicit
// in the paper's choice of a 121×121 Frederic template.
func TemplateAccuracySweep(size int, seed int64, radii []int) ([]SweepPoint, error) {
	if len(radii) == 0 {
		radii = []int{1, 2, 4, 6}
	}
	scene := synth.Hurricane(size, size, seed)
	f0 := scene.Frame(0)
	f1 := scene.Frame(1)
	truth := scene.Truth(1)
	barbs := synth.Barbs(f0, 32, size/8, 4)
	sgi := model.DefaultSGI()
	var out []SweepPoint
	for _, r := range radii {
		p := core.Params{NS: 2, NZS: 3, NZT: r}
		res, err := core.TrackSequential(core.Monocular(f0, f1), p, core.Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			Window:   2*r + 1,
			RMSE:     res.Flow.RMSEAt(truth, barbs),
			PerPixel: sgi.PixelTime(core.CountOps(p, 2)),
		})
	}
	return out, nil
}
