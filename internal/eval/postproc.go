package eval

import (
	"sma/internal/classify"
	"sma/internal/core"
	"sma/internal/grid"
	"sma/internal/postproc"
	"sma/internal/synth"
)

// PostprocRow scores one motion-field post-processing variant (§6's
// "improving the accuracy of the estimated motion field by using robust
// estimation, relaxation labeling or regularization, and post processing
// ... by using cloud classification").
type PostprocRow struct {
	Name string
	RMSE float64 // interior, vs ground truth
}

// PostprocExperiment tracks a hurricane scene with the continuous model
// and compares the raw field against the implemented post-processing
// options: 3×3 median, relaxation labeling, confidence-weighted
// regularization and the Huber-robust solve.
func PostprocExperiment(size int, seed int64) ([]PostprocRow, error) {
	scene := synth.Hurricane(size, size, seed)
	i0 := scene.Frame(0)
	i1 := scene.Frame(1)
	truth := scene.Truth(1)
	p := core.Params{NS: 2, NZS: 3, NZT: 3, NST: 2, NSS: 0}
	pair := core.Monocular(i0, i1)

	res, err := core.TrackSequential(pair, p, core.Options{})
	if err != nil {
		return nil, err
	}
	robust, err := core.TrackSequential(pair, p, core.Options{Robust: true})
	if err != nil {
		return nil, err
	}
	relaxed, err := postproc.Relax(res.Flow, i0, i1, postproc.DefaultRelaxConfig())
	if err != nil {
		return nil, err
	}
	smoothed, err := postproc.ConfidenceSmooth(res.Flow, res.Err, 1)
	if err != nil {
		return nil, err
	}

	margin := size / 8
	score := func(f *grid.VectorField) float64 {
		var pts []grid.Point
		for y := margin; y < size-margin; y++ {
			for x := margin; x < size-margin; x++ {
				pts = append(pts, grid.Point{X: x, Y: y})
			}
		}
		return f.RMSEAt(truth, pts)
	}
	return []PostprocRow{
		{"raw", score(res.Flow)},
		{"median 3x3", score(res.Flow.Median3())},
		{"relaxation labeling", score(relaxed)},
		{"confidence smoothing", score(smoothed)},
		{"robust solve", score(robust.Flow)},
	}, nil
}

// MaskedQuiver tracks one pair of a thunderstorm scene and renders the
// flow only over classified cloudy pixels — Figure 6's presentation
// convention ("we show the results ... over cloudy regions").
func MaskedQuiver(size int, seed int64, step int) (string, error) {
	scene := synth.Thunderstorm(size, size, seed)
	f0 := scene.Frame(0)
	f1 := scene.Frame(1)
	p := core.Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 0}
	res, err := core.TrackSequential(core.Monocular(f0, f1), p, core.Options{})
	if err != nil {
		return "", err
	}
	mask := classify.CloudMask(f0)
	return Quiver(classify.MaskFlow(res.Flow, mask), step), nil
}
