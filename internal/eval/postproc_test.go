package eval

import (
	"strings"
	"testing"
)

func TestPostprocExperimentRowsAndSanity(t *testing.T) {
	rows, err := PostprocExperiment(48, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		if r.RMSE < 0 || r.RMSE > 2 {
			t.Fatalf("%s RMSE %v out of plausible range", r.Name, r.RMSE)
		}
		byName[r.Name] = r.RMSE
	}
	// Post-processing must not substantially worsen an already decent
	// field (small tolerance for the smoothing bias at motion gradients).
	raw := byName["raw"]
	for _, name := range []string{"median 3x3", "relaxation labeling", "confidence smoothing"} {
		if byName[name] > raw*1.25 {
			t.Fatalf("%s RMSE %v much worse than raw %v", name, byName[name], raw)
		}
	}
}

func TestMaskedQuiverHasClearRegions(t *testing.T) {
	q, err := MaskedQuiver(48, 9, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q, "·") {
		t.Fatal("masked quiver shows no clear-sky pixels")
	}
	hasArrow := false
	for _, r := range "→↗↑↖←↙↓↘" {
		if strings.ContainsRune(q, r) {
			hasArrow = true
			break
		}
	}
	if !hasArrow {
		t.Fatal("masked quiver shows no motion over clouds")
	}
}

func TestLuisIncludesIO(t *testing.T) {
	l, err := Luis()
	if err != nil {
		t.Fatal(err)
	}
	if l.SequenceIO <= 0 {
		t.Fatal("no modeled MPDA I/O")
	}
	// I/O must be negligible next to compute (the paper streams 490
	// frames through the MPDA precisely because it keeps up).
	if float64(l.SequenceIO) > 0.01*float64(l.TotalModel) {
		t.Fatalf("I/O %v suspiciously large vs compute %v", l.SequenceIO, l.TotalModel)
	}
}

func TestBaselineComparisonOrdering(t *testing.T) {
	rows, err := BaselineComparison(56, 11)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	semi := byName["SMA semi-fluid"]
	cont := byName["SMA continuous"]
	hs := byName["Horn-Schunck [2]"]
	// SMA recovers exact per-layer correspondences where the smoothed
	// baseline cannot ("usual optical flow methods" impose the global
	// continuity the scene violates).
	if semi.ExactPct <= hs.ExactPct {
		t.Fatalf("semi-fluid exact %.1f%% not above Horn-Schunck %.1f%%", semi.ExactPct, hs.ExactPct)
	}
	if semi.ExactPct <= cont.ExactPct {
		t.Fatalf("semi-fluid exact %.1f%% not above continuous %.1f%%", semi.ExactPct, cont.ExactPct)
	}
	if semi.ExactPct < 30 {
		t.Fatalf("semi-fluid exact fraction %.1f%% implausibly low", semi.ExactPct)
	}
}

func TestEddiesExperiment(t *testing.T) {
	r, err := EddiesExperiment(64, 13)
	if err != nil {
		t.Fatal(err)
	}
	if r.RMSE >= 1.0 {
		t.Fatalf("eddies RMSE %.3f px, want < 1 (paper's accuracy regime)", r.RMSE)
	}
	if r.ExactPct < 50 {
		t.Fatalf("eddies exact fraction %.1f%% too low", r.ExactPct)
	}
}

func TestFissionExperiment(t *testing.T) {
	r, err := FissionExperiment(64, 17)
	if err != nil {
		t.Fatal(err)
	}
	if r.RMSE >= 1.2 {
		t.Fatalf("fission RMSE %.3f px on cell bodies", r.RMSE)
	}
	if r.ExactPct < 40 {
		t.Fatalf("fission exact fraction %.1f%%", r.ExactPct)
	}
}

func TestIceFloesExperiment(t *testing.T) {
	r, err := IceFloesExperiment(64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.RMSE >= 1.0 {
		t.Fatalf("sea-ice RMSE %.3f px on floes", r.RMSE)
	}
	if r.ExactPct < 55 {
		t.Fatalf("sea-ice exact fraction %.1f%%", r.ExactPct)
	}
}

func TestTemplateAccuracySweep(t *testing.T) {
	pts, err := TemplateAccuracySweep(56, 5, []int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	// Cost grows with the window, and the trade-off the paper's 121×121
	// choice reflects appears: tiny templates are noisy, larger ones reach
	// the sub-pixel regime.
	for i, p := range pts {
		if i > 0 && p.PerPixel <= pts[i-1].PerPixel {
			t.Fatal("modeled cost not increasing with template size")
		}
	}
	if pts[len(pts)-1].RMSE >= 1.0 {
		t.Fatalf("largest window RMSE %.3f px, want sub-pixel", pts[len(pts)-1].RMSE)
	}
	if pts[len(pts)-1].RMSE > pts[0].RMSE {
		t.Fatalf("accuracy did not improve with template size: %.3f → %.3f",
			pts[0].RMSE, pts[len(pts)-1].RMSE)
	}
}

func TestWriteReport(t *testing.T) {
	var buf strings.Builder
	if err := WriteReport(&buf, 56, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 2", "Hypothesis matching", "Speedup", "wind-barb",
		"Baseline comparison", "Application domains", "ablations",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}

func TestPlumeRobustness(t *testing.T) {
	rows, err := PlumeRobustness(56, 7, []float64{0, 1.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Crisp tracking is sub-pixel; diffusion degrades but does not destroy
	// it (the tracker matches structure, not raw brightness).
	if rows[0].RMSE >= 0.9 {
		t.Fatalf("crisp plume RMSE %.3f px", rows[0].RMSE)
	}
	if rows[1].RMSE < rows[0].RMSE {
		t.Fatalf("diffusion improved accuracy?! %.3f vs %.3f", rows[1].RMSE, rows[0].RMSE)
	}
	if rows[1].RMSE > 2.0 {
		t.Fatalf("diffused plume RMSE %.3f px — tracker collapsed", rows[1].RMSE)
	}
}
