package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"sma/internal/core"
	"sma/internal/grid"
	"sma/internal/synth"
)

// PyramidPoint is one NZS sample of the coarse-to-fine trajectory: the
// same prepared continuous-model pair tracked exhaustively and through
// the pyramid driver, timed without preparation, with the accuracy of
// the accelerated field scored against the exhaustive one.
type PyramidPoint struct {
	NZS    int `json:"nzs"`
	Levels int `json:"levels"`
	// ExhaustiveHyp is the (2·NZS+1)² per-pixel hypothesis count the flat
	// sweep evaluates; HypPerPixel is what the pyramid actually spent.
	ExhaustiveHyp int     `json:"exhaustive_hyp_per_pixel"`
	HypPerPixel   float64 `json:"hyp_per_pixel"`
	ExhaustiveSec float64 `json:"exhaustive_sec"`
	PyramidSec    float64 `json:"pyramid_sec"`
	// PixelsPerSec rates the two drivers on the identical pair.
	PixelsPerSecExhaustive float64 `json:"pixels_per_sec_exhaustive"`
	PixelsPerSecPyramid    float64 `json:"pixels_per_sec_pyramid"`
	Speedup                float64 `json:"speedup"`
	// RMSE is measured at the scene's wind-barb tracer pixels against the
	// exhaustive field (grid units); Agreement is the fraction of all
	// pixels whose argmin displacement matches exactly.
	RMSE         float64 `json:"rmse"`
	Agreement    float64 `json:"argmin_agreement"`
	FallbackFrac float64 `json:"fallback_frac"`
}

// PyramidResult is the BENCH_pyramid.json trajectory: the NZS sweep plus
// the two conformance checks the smoke gate reads — full-radius
// bit-identity and the Figure 5/6 fixture accuracy.
type PyramidResult struct {
	Name    string         `json:"name"`
	Size    int            `json:"size"`
	Workers int            `json:"workers"`
	Seed    int64          `json:"seed"`
	Points  []PyramidPoint `json:"points"`
	// BitIdentical certifies that a refinement radius covering the whole
	// search window reproduces the exhaustive argmin bit for bit; the
	// experiment errors if it does not.
	BitIdentical bool `json:"bit_identical"`
	// Fig5RMSE / Fig6RMSE score the pyramid against the exhaustive search
	// at the wind-barb tracers of the two accuracy fixtures (hurricane
	// and thunderstorm scenes), in grid units.
	Fig5RMSE float64 `json:"fig5_rmse"`
	Fig6RMSE float64 `json:"fig6_rmse"`
	// SpeedupAtNZS10 / RMSEAtNZS10 lift the gated sample out of the sweep
	// for the smoke script.
	SpeedupAtNZS10 float64 `json:"speedup_at_nzs10"`
	RMSEAtNZS10    float64 `json:"rmse_at_nzs10"`
	GoMaxProcs     int     `json:"gomaxprocs"`
}

// pyramidLevelsFor picks the level count the cost model suggests for a
// search radius: enough halvings that the coarsest window is ~±2, never
// fewer than two levels (one level is just the exhaustive sweep).
func pyramidLevelsFor(nzs int) int {
	l := 1
	for r := nzs; r > 2; r = (r + 1) / 2 {
		l++
	}
	if l < 2 {
		l = 2
	}
	return l
}

// PyramidExperiment measures the coarse-to-fine hypothesis search
// against the exhaustive sweep on a size×size continuous-model hurricane
// pair across NZS ∈ {2, 5, 10, 20}. The returned point doubles as a
// conformance check: it errors if a full-covering refinement radius is
// not bit-identical to the exhaustive search.
func PyramidExperiment(ctx context.Context, size, workers int, seed int64) (PyramidResult, error) {
	out := PyramidResult{Name: "pyramid", Size: size, Seed: seed}
	if size < 32 {
		return out, fmt.Errorf("eval: size %d too small for a multi-level pyramid", size)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out.Workers = workers
	out.GoMaxProcs = runtime.GOMAXPROCS(0)

	scene := synth.Hurricane(size, size, seed)
	pair := core.Monocular(scene.Frame(0), scene.Frame(1))
	pixels := int64(size) * int64(size)

	for _, nzs := range []int{2, 5, 10, 20} {
		p := core.Params{NS: 2, NZS: nzs, NZT: 3, NST: 2, NSS: 0}
		levels := pyramidLevelsFor(nzs)
		prep, err := core.PreparePyramid(pair, p, levels)
		if err != nil {
			return out, fmt.Errorf("eval: nzs %d: %w", nzs, err)
		}

		t0 := time.Now()
		exh, err := core.TrackPreparedParallelCtx(ctx, prep, nil, core.Options{}, workers)
		if err != nil {
			return out, err
		}
		exhSec := time.Since(t0).Seconds()

		opt := core.Options{Pyramid: core.PyramidOptions{Levels: levels}}
		t1 := time.Now()
		pyr, st, err := core.TrackPyramidPreparedCtx(ctx, prep, opt, workers)
		if err != nil {
			return out, err
		}
		pyrSec := time.Since(t1).Seconds()

		pt := PyramidPoint{
			NZS:           nzs,
			Levels:        st.Levels,
			ExhaustiveHyp: p.Hypotheses(),
			HypPerPixel:   st.HypPerPixel,
			ExhaustiveSec: exhSec,
			PyramidSec:    pyrSec,
			FallbackFrac:  st.FallbackFrac,
		}
		if exhSec > 0 {
			pt.PixelsPerSecExhaustive = float64(pixels) / exhSec
		}
		if pyrSec > 0 {
			pt.PixelsPerSecPyramid = float64(pixels) / pyrSec
			pt.Speedup = exhSec / pyrSec
		}
		pt.RMSE = pyr.Flow.RMSEAt(exh.Flow, synth.Barbs(pair.I0, 32, nzs+4, 4))
		pt.Agreement = flowAgreement(pyr.Flow, exh.Flow)
		if nzs == 10 {
			out.SpeedupAtNZS10 = pt.Speedup
			out.RMSEAtNZS10 = pt.RMSE
		}
		out.Points = append(out.Points, pt)

		// Full-covering refinement must reproduce the exhaustive argmin
		// bit for bit — the contract the fast path is allowed to relax
		// only when the radius is actually narrower than the window.
		if nzs == 5 {
			full := core.Options{Pyramid: core.PyramidOptions{
				Levels:       levels,
				RefineRadius: 2 * p.SearchRX(),
			}}
			fres, _, err := core.TrackPyramidPreparedCtx(ctx, prep, full, workers)
			if err != nil {
				return out, err
			}
			out.BitIdentical = fres.Flow.Equal(exh.Flow) && fres.Err.Equal(exh.Err)
			if !out.BitIdentical {
				return out, fmt.Errorf("eval: full-radius pyramid is not bit-identical to the exhaustive search")
			}
		}
	}

	// Figure 5/6 fixture accuracy: the hurricane and thunderstorm scenes
	// the accuracy experiments score, pyramid vs exhaustive at the barbs.
	fig5, err := pyramidFixtureRMSE(ctx, synth.Hurricane(64, 64, 7), 3, workers)
	if err != nil {
		return out, fmt.Errorf("eval: fig5 fixture: %w", err)
	}
	out.Fig5RMSE = fig5
	fig6, err := pyramidFixtureRMSE(ctx, synth.Thunderstorm(64, 64, 11), 2, workers)
	if err != nil {
		return out, fmt.Errorf("eval: fig6 fixture: %w", err)
	}
	out.Fig6RMSE = fig6
	return out, nil
}

// pyramidFixtureRMSE tracks one fixture scene with the default pyramid
// and the exhaustive sweep and returns the barb-point RMSE between them.
func pyramidFixtureRMSE(ctx context.Context, scene *synth.Scene, nzs, workers int) (float64, error) {
	pair := core.Monocular(scene.Frame(0), scene.Frame(1))
	p := core.Params{NS: 2, NZS: nzs, NZT: 3, NST: 2, NSS: 0}
	prep, err := core.PreparePyramid(pair, p, 3)
	if err != nil {
		return math.NaN(), err
	}
	exh, err := core.TrackPreparedParallelCtx(ctx, prep, nil, core.Options{}, workers)
	if err != nil {
		return math.NaN(), err
	}
	pyr, _, err := core.TrackPyramidPreparedCtx(ctx, prep, core.Options{
		Pyramid: core.PyramidOptions{Levels: 3},
	}, workers)
	if err != nil {
		return math.NaN(), err
	}
	return pyr.Flow.RMSEAt(exh.Flow, synth.Barbs(pair.I0, 32, 8, 4)), nil
}

// flowAgreement is the fraction of pixels whose displacement matches
// exactly between the two fields.
func flowAgreement(a, b *grid.VectorField) float64 {
	n := len(a.U.Data)
	if n == 0 || n != len(b.U.Data) {
		return 0
	}
	same := 0
	for i := range a.U.Data {
		if a.U.Data[i] == b.U.Data[i] && a.V.Data[i] == b.V.Data[i] {
			same++
		}
	}
	return float64(same) / float64(n)
}

// WriteJSON writes the trajectory as indented JSON, the
// BENCH_pyramid.json format CI archives.
func (r PyramidResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
