package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sma/internal/cluster"
	"sma/internal/fault"
	"sma/internal/server"
)

// Recovery is the BENCH_recovery.json trajectory point: a real
// coordinator process killed (SIGKILL-equivalent, exit 137) mid-job by a
// deterministic crash point, restarted over the same -data-dir, and held
// to the durability contract — the journal resumes the job, only the
// unfinished shards re-dispatch, and the final merged SMP1 stream is
// byte-identical to an uninterrupted single-node run.
type Recovery struct {
	Name             string `json:"name"` // "recovery"
	Size             int    `json:"size"`
	Frames           int    `json:"frames"`
	Workers          int    `json:"workers"`
	ShardPairs       int    `json:"shard_pairs"`
	Shards           int    `json:"shards"`
	CrashAfterShards int    `json:"crash_after_shards"`
	// CoordinatorExit is the crashed process's exit code (137 = the
	// deterministic SMA_CRASH kill).
	CoordinatorExit int `json:"coordinator_exit"`
	// ShardsRestored is how many shards the restarted coordinator served
	// from checkpoints instead of re-dispatching.
	ShardsRestored int64 `json:"shards_restored"`
	Resumed        bool  `json:"resumed"`
	PairsVerified  int   `json:"pairs_verified"`
	BitIdentical   bool  `json:"bit_identical"`
	// CrashPhaseSec covers submit → process death; ResumeSec covers
	// restart → job done.
	CrashPhaseSec float64  `json:"crash_phase_sec"`
	ResumeSec     float64  `json:"resume_sec"`
	Violations    []string `json:"violations,omitempty"`
}

// RecoveryOptions sizes the drill. Bin is required: the crash is a real
// process exit, so the coordinator must run out of process.
type RecoveryOptions struct {
	Bin        string // smaserve binary (required)
	Size       int    // frame edge (default 32)
	Frames     int    // frames per job (default 13 → 12 pairs)
	Workers    int    // worker processes (default 2)
	ShardPairs int    // pairs per shard (default 2 → 6 shards)
	Seed       int64  // scene seed (default 7)
	// CrashAfterShards kills the coordinator after this many durable
	// shard checkpoints via SMA_CRASH=cluster.shard:n (default 2).
	CrashAfterShards int
}

func (o RecoveryOptions) withDefaults() RecoveryOptions {
	if o.Size <= 0 {
		o.Size = 32
	}
	if o.Frames < 4 {
		o.Frames = 13
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.ShardPairs <= 0 {
		o.ShardPairs = 2
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	if o.CrashAfterShards <= 0 {
		o.CrashAfterShards = 2
	}
	return o
}

// RecoveryExperiment runs the SIGKILL-coordinator recovery drill.
// Returns an error only for harness failures; contract violations land
// in Violations.
func RecoveryExperiment(ctx context.Context, opt RecoveryOptions) (Recovery, error) {
	opt = opt.withDefaults()
	out := Recovery{
		Name: "recovery", Size: opt.Size, Frames: opt.Frames,
		Workers: opt.Workers, ShardPairs: opt.ShardPairs,
		CrashAfterShards: opt.CrashAfterShards, CoordinatorExit: -1,
	}
	out.Shards = (opt.Frames - 1 + opt.ShardPairs - 1) / opt.ShardPairs
	if opt.Bin == "" {
		return out, fmt.Errorf("eval: the recovery drill needs a smaserve binary (Bin)")
	}
	if out.Shards <= opt.CrashAfterShards {
		return out, fmt.Errorf("eval: %d shards cannot outlive a crash after %d; raise Frames or lower ShardPairs",
			out.Shards, opt.CrashAfterShards)
	}
	violate := func(format string, args ...any) {
		out.Violations = append(out.Violations, fmt.Sprintf(format, args...))
	}

	urls, stopWorkers, err := startWorkerProcesses(ctx, opt.Bin, opt.Workers)
	if err != nil {
		return out, err
	}
	defer stopWorkers()
	dataDir, err := os.MkdirTemp("", "smarecovery")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dataDir) //smavet:allow errdiscard -- temp-dir teardown

	// Phase 1: a coordinator armed to exit 137 right after its n-th
	// durable shard checkpoint.
	crash := fmt.Sprintf("cluster.shard:%d", opt.CrashAfterShards)
	cmd, url, err := startCoordinatorProcess(ctx, opt.Bin, urls, dataDir, opt.ShardPairs, crash)
	if err != nil {
		return out, err
	}
	ref := server.SyntheticRef{Scene: "hurricane", Size: opt.Size, Seed: opt.Seed, Frames: opt.Frames}
	body, err := clusterJobBody(ref)
	if err != nil {
		killProcess(cmd)
		return out, err
	}
	t0 := time.Now()
	id, err := submitClusterJob(ctx, url, body)
	if err != nil {
		killProcess(cmd)
		return out, fmt.Errorf("eval: submitting the crash-phase job: %w", err)
	}
	out.CoordinatorExit = awaitExit(cmd)
	out.CrashPhaseSec = time.Since(t0).Seconds()
	if out.CoordinatorExit != 137 {
		violate("coordinator exited %d, want the crash point's 137", out.CoordinatorExit)
	}

	// Phase 2: same data dir, no crash env — recovery must finish the job.
	cmd, url, err = startCoordinatorProcess(ctx, opt.Bin, urls, dataDir, opt.ShardPairs, "")
	if err != nil {
		return out, err
	}
	defer killProcess(cmd)
	t1 := time.Now()
	view, err := pollClusterJob(ctx, url, id)
	if err != nil {
		return out, fmt.Errorf("eval: polling the resumed job: %w", err)
	}
	out.ResumeSec = time.Since(t1).Seconds()
	out.ShardsRestored = view.Cluster.ShardsRestored
	out.Resumed = view.Recovered == "resumed"
	if view.Status != server.JobDone {
		violate("resumed job finished %s: %s", view.Status, view.Error)
	}
	if !out.Resumed {
		violate("job view reports recovered=%q, want \"resumed\"", view.Recovered)
	}
	if out.ShardsRestored < 1 {
		violate("no shard served from checkpoints; the crash landed after %d durable checkpoints", opt.CrashAfterShards)
	}
	if out.ShardsRestored >= int64(out.Shards) {
		violate("all %d shards restored; the crash should have left work to re-dispatch", out.Shards)
	}
	if view.Stats.PairsTracked != int64(opt.Frames-1) {
		violate("resumed job tracked %d pairs, want %d", view.Stats.PairsTracked, opt.Frames-1)
	}

	got, err := fetchClusterResult(ctx, url, id)
	if err != nil {
		return out, fmt.Errorf("eval: fetching the resumed result: %w", err)
	}
	want, err := offlineStream(ref)
	if err != nil {
		return out, fmt.Errorf("eval: offline reference: %w", err)
	}
	out.BitIdentical = bytes.Equal(got, want)
	if !out.BitIdentical {
		violate("resumed result (%d bytes) differs from the uninterrupted single-node stream (%d bytes)", len(got), len(want))
	} else {
		out.PairsVerified = opt.Frames - 1
	}
	return out, nil
}

// startCoordinatorProcess spawns `bin -coordinator` over the workers
// with the durable plane rooted at dataDir; crashSpec, when non-empty,
// arms the deterministic crash point via the SMA_CRASH env var.
func startCoordinatorProcess(ctx context.Context, bin string, urls []string, dataDir string, shardPairs int, crashSpec string) (*exec.Cmd, string, error) {
	pf := filepath.Join(dataDir, "coordinator.port")
	os.Remove(pf) //smavet:allow errdiscard -- clearing a stale port file
	cmd := exec.CommandContext(ctx, bin,
		"-coordinator", "-worker-urls", strings.Join(urls, ","),
		"-addr", "127.0.0.1:0", "-port-file", pf,
		"-shard-pairs", strconv.Itoa(shardPairs),
		"-data-dir", dataDir,
		"-health-interval", "100ms")
	cmd.Env = os.Environ()
	if crashSpec != "" {
		cmd.Env = append(cmd.Env, fault.CrashEnv+"="+crashSpec)
	}
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("eval: starting coordinator: %w", err)
	}
	port, err := awaitPortFile(ctx, pf)
	if err != nil {
		killProcess(cmd)
		return nil, "", fmt.Errorf("eval: coordinator never published a port: %w", err)
	}
	return cmd, "http://127.0.0.1:" + strconv.Itoa(port), nil
}

// awaitExit joins the process and returns its exit code.
func awaitExit(cmd *exec.Cmd) int {
	err := cmd.Wait()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// killProcess tears a spawned process down hard and reaps it.
func killProcess(cmd *exec.Cmd) {
	if cmd.Process != nil {
		cmd.Process.Signal(syscall.SIGKILL) //smavet:allow errdiscard -- best-effort teardown
		cmd.Wait()                          //smavet:allow errdiscard -- exit status irrelevant at teardown
	}
}

// clusterJobBody marshals a plain cluster job for the given reference.
func clusterJobBody(ref server.SyntheticRef) ([]byte, error) {
	req := cluster.JobRequest{}
	req.Synthetic = &ref
	return json.Marshal(req)
}

// submitClusterJob POSTs a job and returns its id without polling.
func submitClusterJob(ctx context.Context, base string, body []byte) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	var view cluster.JobView
	if err := decodeEvalBody(resp, http.StatusAccepted, &view); err != nil {
		return "", err
	}
	return view.ID, nil
}

// pollClusterJob polls one job id to a terminal status.
func pollClusterJob(ctx context.Context, base, id string) (cluster.JobView, error) {
	var view cluster.JobView
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id, nil)
		if err != nil {
			return view, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return view, err
		}
		if err := decodeEvalBody(resp, http.StatusOK, &view); err != nil {
			return view, err
		}
		switch view.Status {
		case server.JobDone, server.JobFailed, server.JobCancelled:
			return view, nil
		}
		select {
		case <-time.After(25 * time.Millisecond):
		case <-ctx.Done():
			return view, ctx.Err()
		}
	}
}

// fetchClusterResult downloads a finished job's merged SMP1 stream.
func fetchClusterResult(ctx context.Context, base, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //smavet:allow errdiscard -- error-path diagnostics only
		return nil, fmt.Errorf("result stream: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(b))
	}
	return io.ReadAll(resp.Body)
}

// WriteJSON writes the trajectory point as indented JSON.
func (r Recovery) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
