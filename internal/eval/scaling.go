package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"sma/internal/core"
	"sma/internal/synth"
)

// ScalingPoint is one worker count of the scaling study.
type ScalingPoint struct {
	Workers      int     `json:"workers"`
	Size         int     `json:"size"`
	Pixels       int64   `json:"pixels"`
	Sec          float64 `json:"sec"`
	PixelsPerSec float64 `json:"pixels_per_sec"`
	// Speedup is T(1 worker)/T(w workers) over this series' own
	// workers=1 point; Efficiency normalizes it per worker (strong
	// series) or reports T1/Tw directly (weak series, where perfect
	// scaling holds the time constant as work grows with workers).
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// Scaling is the BENCH_scaling.json trajectory point: the tile-scheduled
// parallel driver measured both ways the paper's PE-array analysis is
// usually read — strong scaling (the size×size hurricane pair is fixed
// while workers grow) and weak scaling (pixels grow proportionally to
// workers, size·√w per side, so per-worker work is constant).
type Scaling struct {
	Name     string `json:"name"`
	BaseSize int    `json:"base_size"`
	Workers  []int  `json:"worker_counts"`
	// GoMaxProcs is the cores available to this run. On a host with
	// fewer cores than workers the upper strong-scaling points measure
	// oversubscription, not scaling; scripts/scaling_smoke.sh gates the
	// parallel-beats-serial criterion only when GoMaxProcs ≥ 4.
	GoMaxProcs     int     `json:"gomaxprocs"`
	Hypotheses     int     `json:"hypotheses_per_pixel"`
	ReferenceSec   float64 `json:"reference_sec"`
	SerialSec      float64 `json:"serial_sec"`
	SpeedupVsRef   float64 `json:"speedup_vs_reference"`
	BestStrongSec  float64 `json:"best_strong_sec"`
	BestStrongWkrs int     `json:"best_strong_workers"`
	// ParallelBeatsSerial reports the acceptance criterion this study
	// exists to watch: some strong point at workers ≥ 4 under the serial
	// optimized time.
	ParallelBeatsSerial bool           `json:"parallel_beats_serial"`
	Strong              []ScalingPoint `json:"strong"`
	Weak                []ScalingPoint `json:"weak"`
	BitIdentical        bool           `json:"bit_identical"`
}

// ScalingExperiment runs the scaling study on semi-fluid hurricane pairs
// at ScaledParams. baseSize is the strong-scaling input side (and the
// weak-scaling per-worker work unit); workers is the ladder of worker
// counts (nil → {1, 2, 4, 8}). Like TrackThroughputExperiment the run
// doubles as a conformance check: every parallel result on the base pair
// must be bit-identical to the serial optimized kernel.
func ScalingExperiment(baseSize int, workers []int, seed int64) (Scaling, error) {
	out := Scaling{Name: "scaling", BaseSize: baseSize}
	if baseSize < 8 {
		return out, fmt.Errorf("eval: size %d too small for the template+search footprint", baseSize)
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	out.Workers = workers
	out.GoMaxProcs = runtime.GOMAXPROCS(0)

	p := core.ScaledParams()
	out.Hypotheses = p.Hypotheses()

	scene := synth.Hurricane(baseSize, baseSize, seed)
	prep, err := core.Prepare(core.Monocular(scene.Frame(0), scene.Frame(1)), p)
	if err != nil {
		return out, err
	}
	sm := core.BuildSemiMap(prep)
	pixels := int64(baseSize) * int64(baseSize)

	t0 := time.Now()
	ref := core.TrackPreparedReference(prep, sm, core.Options{})
	out.ReferenceSec = time.Since(t0).Seconds()

	t1 := time.Now()
	serial := core.TrackPrepared(prep, sm, core.Options{})
	out.SerialSec = time.Since(t1).Seconds()
	if out.SerialSec > 0 {
		out.SpeedupVsRef = out.ReferenceSec / out.SerialSec
	}
	out.BitIdentical = serial.Flow.Equal(ref.Flow) && serial.Err.Equal(ref.Err)

	// Strong scaling: the same prepared pair, growing worker counts.
	out.BestStrongSec = math.Inf(1)
	for _, w := range workers {
		t2 := time.Now()
		res := core.TrackPreparedParallel(prep, sm, core.Options{}, w)
		sec := time.Since(t2).Seconds()
		pt := ScalingPoint{Workers: w, Size: baseSize, Pixels: pixels, Sec: sec}
		if sec > 0 {
			pt.PixelsPerSec = float64(pixels) / sec
		}
		out.Strong = append(out.Strong, pt)
		out.BitIdentical = out.BitIdentical && res.Flow.Equal(ref.Flow) && res.Err.Equal(ref.Err)
		if sec < out.BestStrongSec {
			out.BestStrongSec = sec
			out.BestStrongWkrs = w
		}
		if w >= 4 && sec < out.SerialSec {
			out.ParallelBeatsSerial = true
		}
	}
	fillScaling(out.Strong, true)

	// Weak scaling: per-worker work held at baseSize² pixels, so the
	// input side grows as baseSize·√w (pixel count ∝ workers).
	for _, w := range workers {
		size := int(math.Round(float64(baseSize) * math.Sqrt(float64(w))))
		ws := synth.Hurricane(size, size, seed+int64(w))
		wprep, err := core.Prepare(core.Monocular(ws.Frame(0), ws.Frame(1)), p)
		if err != nil {
			return out, err
		}
		wsm := core.BuildSemiMap(wprep)
		t3 := time.Now()
		core.TrackPreparedParallel(wprep, wsm, core.Options{}, w)
		sec := time.Since(t3).Seconds()
		pt := ScalingPoint{Workers: w, Size: size, Pixels: int64(size) * int64(size), Sec: sec}
		if sec > 0 {
			pt.PixelsPerSec = float64(pt.Pixels) / sec
		}
		out.Weak = append(out.Weak, pt)
	}
	fillScaling(out.Weak, false)

	if !out.BitIdentical {
		return out, fmt.Errorf("eval: parallel driver is not bit-identical to the reference kernel")
	}
	return out, nil
}

// fillScaling derives speedup/efficiency for a series from its own
// workers=1 point (the first point whose Workers == 1; if the ladder
// lacks one, the smallest worker count anchors and efficiency is
// relative to it).
func fillScaling(pts []ScalingPoint, strong bool) {
	if len(pts) == 0 {
		return
	}
	t1 := pts[0].Sec
	for _, pt := range pts {
		if pt.Workers == 1 {
			t1 = pt.Sec
			break
		}
	}
	for i := range pts {
		if pts[i].Sec <= 0 || t1 <= 0 {
			continue
		}
		pts[i].Speedup = t1 / pts[i].Sec
		if strong {
			pts[i].Efficiency = pts[i].Speedup / float64(pts[i].Workers)
		} else {
			// Weak scaling: ideal is constant time, so efficiency is
			// T1/Tw directly.
			pts[i].Efficiency = t1 / pts[i].Sec
		}
	}
}

// WriteJSON writes the study as indented JSON, the BENCH_scaling.json
// format CI archives.
func (s Scaling) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
