package eval

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestScalingExperimentShape runs a tiny scaling study and checks the
// structural invariants the smoke gate parses for: one strong and one
// weak point per worker count, weak sizes growing ∝ √workers, positive
// timings, anchored speedups, bit-identity, and the JSON field names
// scripts/scaling_smoke.sh greps.
func TestScalingExperimentShape(t *testing.T) {
	r, err := ScalingExperiment(16, []int{1, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Strong) != 2 || len(r.Weak) != 2 {
		t.Fatalf("want 2 strong + 2 weak points, got %d + %d", len(r.Strong), len(r.Weak))
	}
	if !r.BitIdentical {
		t.Fatal("parallel driver not bit-identical to reference")
	}
	for i, pt := range r.Strong {
		if pt.Sec <= 0 || pt.Pixels != 256 || pt.Size != 16 {
			t.Fatalf("strong[%d] malformed: %+v", i, pt)
		}
	}
	if r.Weak[0].Size != 16 || r.Weak[1].Size != 23 { // round(16·√2)
		t.Fatalf("weak sizes %d, %d; want 16, 23", r.Weak[0].Size, r.Weak[1].Size)
	}
	if r.Strong[0].Speedup != 1 || r.Strong[0].Efficiency != 1 {
		t.Fatalf("workers=1 strong point must anchor at speedup 1, got %+v", r.Strong[0])
	}
	if r.GoMaxProcs < 1 {
		t.Fatalf("gomaxprocs %d", r.GoMaxProcs)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"gomaxprocs", "serial_sec", "parallel_beats_serial",
		"best_strong_sec", "strong", "weak", "bit_identical",
	} {
		if _, ok := decoded[key]; !ok {
			t.Fatalf("JSON missing %q (scaling_smoke.sh parses it):\n%s", key, buf.String())
		}
	}
	if !strings.Contains(buf.String(), `"name": "scaling"`) {
		t.Fatalf("unexpected name field:\n%s", buf.String())
	}
}

// TestScalingExperimentRejectsTinyInput mirrors the throughput
// experiment's guard: the template+search footprint needs room.
func TestScalingExperimentRejectsTinyInput(t *testing.T) {
	if _, err := ScalingExperiment(4, nil, 1); err == nil {
		t.Fatal("size 4 should be rejected")
	}
}
