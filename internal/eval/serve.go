package eval

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"time"

	"sma/internal/server"
)

// ServeThroughput is one trajectory point of the HTTP serving layer: an
// in-process smaserve instance driven by the load generator at a fixed
// concurrency, with every response verified bit-identical to the offline
// sequential tracker. This is the BENCH_serve.json format CI archives.
type ServeThroughput struct {
	Name         string  `json:"name"`
	Size         int     `json:"size"`
	Requests     int     `json:"requests"`
	Concurrency  int     `json:"concurrency"`
	Workers      int     `json:"workers"`
	Errors       int     `json:"errors"`
	Retries      int     `json:"retries"`  // backpressure responses retried after Retry-After
	Rejected     int     `json:"rejected"` // requests given up on while still pushed back
	Mismatches   int     `json:"mismatches"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	ReqPerSec    float64 `json:"requests_per_sec"`
	P50Ms        float64 `json:"p50_ms"`
	P90Ms        float64 `json:"p90_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
	BitIdentical bool    `json:"bit_identical"`
}

// ServeThroughputExperiment stands up a server on a loopback listener,
// drives it with the load generator, and reports the latency
// distribution. It errors if any request fails or any motion field is not
// bit-identical to a local sequential track of the same uploaded bytes.
// The load run is bounded by ctx (and a 10-minute safety cap).
func ServeThroughputExperiment(ctx context.Context, size, requests, concurrency, workers int, seed int64) (ServeThroughput, error) {
	out := ServeThroughput{Name: "serve_throughput", Size: size, Requests: requests, Concurrency: concurrency}
	srv := server.New(server.Config{Workers: workers})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		// Teardown must drain even when the driving ctx is already
		// cancelled, so only the timeout binds here.
		sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 30*time.Second)
		defer cancel()
		srv.Shutdown(sctx) //smavet:allow errdiscard -- teardown of a drained test server
	}()

	ctx, cancel := context.WithTimeout(ctx, 10*time.Minute)
	defer cancel()
	res, err := server.RunLoad(ctx, server.LoadOptions{
		URL:         ts.URL,
		Requests:    requests,
		Concurrency: concurrency,
		Size:        size,
		Seed:        seed,
		Verify:      true,
	})
	if err != nil {
		return out, err
	}
	out.Concurrency = res.Concurrency
	out.Requests = res.Requests
	out.Workers = workers
	out.Errors = res.Errors
	out.Retries = res.Retries
	out.Rejected = res.Rejected
	out.Mismatches = res.Mismatches
	out.ElapsedSec = res.ElapsedSec
	out.ReqPerSec = res.Throughput
	out.P50Ms = res.P50Ms
	out.P90Ms = res.P90Ms
	out.P99Ms = res.P99Ms
	out.MaxMs = res.MaxMs
	out.BitIdentical = res.Mismatches == 0
	if res.Errors > 0 {
		return out, fmt.Errorf("eval: %d/%d serve requests errored: %v", res.Errors, requests, res.ErrorSample)
	}
	if res.Mismatches > 0 {
		return out, fmt.Errorf("eval: %d served motion fields differ from the sequential tracker", res.Mismatches)
	}
	return out, nil
}

// WriteJSON writes the trajectory point as indented JSON.
func (r ServeThroughput) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
