package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"sma/internal/core"
	"sma/internal/grid"
	"sma/internal/stream"
	"sma/internal/synth"
)

// StreamThroughput is one frames/sec trajectory point of the streaming
// multi-frame pipeline: the same N-frame hurricane sequence tracked
// pairwise (the paper's one-pair-at-a-time mode, every frame fitted
// twice) and through internal/stream (each frame fitted once, pairs
// tracked concurrently), with bit-equality verified between the two.
type StreamThroughput struct {
	Name         string  `json:"name"`
	Size         int     `json:"size"`
	Frames       int     `json:"frames"`
	Workers      int     `json:"workers"`
	CacheSize    int     `json:"cache_size"`
	FitsComputed int64   `json:"fits_computed"`
	FitsReused   int64   `json:"fits_reused"`
	PairsTracked int64   `json:"pairs_tracked"`
	PairwiseSec  float64 `json:"pairwise_sec"`
	StreamSec    float64 `json:"stream_sec"`
	FramesPerSec float64 `json:"frames_per_sec"`
	PairsPerSec  float64 `json:"pairs_per_sec"`
	Speedup      float64 `json:"speedup_vs_pairwise"`
	BitIdentical bool    `json:"bit_identical"`
}

// StreamThroughputExperiment measures the streaming pipeline against the
// pairwise sequential baseline on a synthetic hurricane sequence. The
// returned point doubles as a conformance check: it errors if the
// streamed motion fields are not bit-identical to the baseline.
func StreamThroughputExperiment(size, frames, workers int, seed int64) (StreamThroughput, error) {
	out := StreamThroughput{Name: "stream_throughput", Size: size, Frames: frames}
	if frames < 2 {
		return out, fmt.Errorf("eval: need at least 2 frames, got %d", frames)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out.Workers = workers
	out.CacheSize = stream.DefaultCacheSize

	scene := synth.Hurricane(size, size, seed)
	seq := make([]*grid.Grid, frames)
	for i := range seq {
		seq[i] = scene.Frame(float64(i))
	}
	p := core.ScaledParams()

	t0 := time.Now()
	baseline := make([]*core.Result, frames-1)
	for i := 0; i+1 < frames; i++ {
		res, err := core.TrackSequential(core.Monocular(seq[i], seq[i+1]), p, core.Options{})
		if err != nil {
			return out, err
		}
		baseline[i] = res
	}
	out.PairwiseSec = time.Since(t0).Seconds()

	t1 := time.Now()
	results, st, err := stream.Run(stream.Grids(seq), stream.Config{Params: p, Workers: workers})
	if err != nil {
		return out, err
	}
	out.StreamSec = time.Since(t1).Seconds()

	out.FitsComputed = st.FitsComputed
	out.FitsReused = st.FitsReused
	out.PairsTracked = st.PairsTracked
	if out.StreamSec > 0 {
		out.FramesPerSec = float64(frames) / out.StreamSec
		out.PairsPerSec = float64(frames-1) / out.StreamSec
	}
	if out.StreamSec > 0 {
		out.Speedup = out.PairwiseSec / out.StreamSec
	}
	out.BitIdentical = true
	for i := range baseline {
		if !results[i].Flow.Equal(baseline[i].Flow) || !results[i].Err.Equal(baseline[i].Err) {
			out.BitIdentical = false
			return out, fmt.Errorf("eval: streamed pair %d is not bit-identical to the pairwise baseline", i)
		}
	}
	return out, nil
}

// WriteJSON writes the trajectory point as indented JSON, the
// BENCH_stream.json format CI archives.
func (r StreamThroughput) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
