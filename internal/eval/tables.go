// Package eval is the experiment harness: it regenerates every table and
// figure of the paper's evaluation section (Tables 1–4, Figures 3, 4 and
// 6, and the Hurricane Luis run of §5) from this repository's
// implementations, pairing each modeled or measured quantity with the
// number the paper reports so the reproduction can be audited row by row.
package eval

import (
	"fmt"
	"time"

	"sma/internal/core"
	"sma/internal/maspar"
	"sma/internal/model"
)

// WindowRow is one line of the neighborhood-size tables (1 and 3).
type WindowRow struct {
	Name     string
	Variable string
	Window   string
}

// Table1 returns the Hurricane Frederic neighborhood configuration
// exactly as Table 1 prints it.
func Table1() []WindowRow {
	p := core.FredericParams()
	return []WindowRow{
		{"Surface-fitting", fmt.Sprintf("Ns = %d", p.NS), win(p.NS)},
		{"z-Search area", fmt.Sprintf("Nzs = %d", p.NZS), win(p.NZS)},
		{"z-Template", fmt.Sprintf("NzT = %d", p.NZT), win(p.NZT)},
		{"Semi-fluid template", fmt.Sprintf("NsT = %d", p.NST), win(p.NST)},
	}
}

// Table3 returns the GOES-9 configuration of Table 3.
func Table3() []WindowRow {
	p := core.GOES9Params()
	return []WindowRow{
		{"Search Area", fmt.Sprintf("Nzs = %d", p.NZS), win(p.NZS)},
		{"Template", fmt.Sprintf("NzT = %d", p.NZT), win(p.NZT)},
		{"Surface-patch", fmt.Sprintf("Ns = %d", p.NS), win(p.NS)},
	}
}

func win(r int) string { return fmt.Sprintf("%d x %d", 2*r+1, 2*r+1) }

// TimingRow pairs one subroutine's modeled MP-2 time with the paper's
// measured figure.
type TimingRow struct {
	Subroutine string
	Modeled    time.Duration
	Paper      time.Duration
}

// TimingTable is a reproduced Table 2 or Table 4.
type TimingTable struct {
	Name           string
	Rows           []TimingRow
	ModeledTotal   time.Duration
	PaperTotal     time.Duration
	SeqModeled     time.Duration // modeled SGI sequential time
	SeqPaper       time.Duration
	SpeedupModel   float64
	SpeedupPaper   float64
	Plan           maspar.SegmentPlan
	ImageW, ImageH int
}

// Table2 reproduces the Hurricane Frederic timing breakdown: a full-scale
// (512×512, 16,384-PE) model run of the semi-fluid configuration against
// the SGI sequential projection. Paper values: surface fit 2.503 s,
// geometric variables 0.037 s, semi-fluid mapping 66.86 s, hypothesis
// matching 33403.16 s, total 9.298 h; sequential 397.34 days; speedup 1025.
func Table2() (*TimingTable, error) {
	return timingTable("Table 2 — Hurricane Frederic (semi-fluid, stereo)",
		core.FredericParams(), 4, paperTable2, time.Duration(397.34*24*float64(time.Hour)), 1025)
}

// Table4 reproduces the GOES-9 Florida thunderstorm breakdown (continuous
// model, monocular). Paper values: surface fit + geometric variables
// 2.461 s, hypothesis matching 768.76 s, total 771.22 s (12.854 min);
// sequential 41.357 h; run-time gain 193.
func Table4() (*TimingTable, error) {
	return timingTable("Table 4 — GOES-9 Florida thunderstorm (continuous, monocular)",
		core.GOES9Params(), 2, paperTable4, time.Duration(41.357*float64(time.Hour)), 193)
}

var paperTable2 = []TimingRow{
	{Subroutine: "Surface fit", Paper: fsec(2.503216)},
	{Subroutine: "Compute geometric variables", Paper: fsec(0.037088)},
	{Subroutine: "Semi-fluid mapping", Paper: fsec(66.85848)},
	{Subroutine: "Hypothesis matching", Paper: fsec(33403.162992)},
}

var paperTable4 = []TimingRow{
	{Subroutine: "Surface fit & compute geometric variables", Paper: fsec(2.4609)},
	{Subroutine: "Hypothesis matching", Paper: fsec(768.7578)},
}

func fsec(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

func timingTable(name string, p core.Params, passes int, paperRows []TimingRow, seqPaper time.Duration, speedupPaper float64) (*TimingTable, error) {
	const w, h = 512, 512
	m, err := maspar.New(maspar.DefaultConfig())
	if err != nil {
		return nil, err
	}
	st, plan, err := core.ModelRun(m, w, h, p, passes, maspar.RasterReadout)
	if err != nil {
		return nil, err
	}
	t := &TimingTable{
		Name:         name,
		PaperTotal:   0,
		SeqPaper:     seqPaper,
		SpeedupPaper: speedupPaper,
		Plan:         plan,
		ImageW:       w,
		ImageH:       h,
	}
	if len(paperRows) == 4 {
		t.Rows = []TimingRow{
			{Subroutine: paperRows[0].Subroutine, Modeled: st.SurfaceFit, Paper: paperRows[0].Paper},
			{Subroutine: paperRows[1].Subroutine, Modeled: st.GeomVars, Paper: paperRows[1].Paper},
			{Subroutine: paperRows[2].Subroutine, Modeled: st.SemiMap, Paper: paperRows[2].Paper},
			{Subroutine: paperRows[3].Subroutine, Modeled: st.HypMatch, Paper: paperRows[3].Paper},
		}
	} else {
		t.Rows = []TimingRow{
			{Subroutine: paperRows[0].Subroutine, Modeled: st.SurfaceFit + st.GeomVars, Paper: paperRows[0].Paper},
			{Subroutine: paperRows[1].Subroutine, Modeled: st.HypMatch, Paper: paperRows[1].Paper},
		}
	}
	for _, r := range t.Rows {
		t.PaperTotal += r.Paper
	}
	t.ModeledTotal = st.Total()
	sgi := model.DefaultSGI()
	t.SeqModeled = sgi.ImageTime(core.CountOps(p, passes), w, h)
	t.SpeedupModel = model.Speedup(t.SeqModeled, t.ModeledTotal)
	return t, nil
}

// Format renders the table as aligned text for the smabench tool.
func (t *TimingTable) Format() string {
	out := t.Name + "\n"
	out += fmt.Sprintf("  %-45s %15s %15s\n", "Subroutine", "modeled", "paper")
	for _, r := range t.Rows {
		out += fmt.Sprintf("  %-45s %15s %15s\n", r.Subroutine, round(r.Modeled), round(r.Paper))
	}
	out += fmt.Sprintf("  %-45s %15s %15s\n", "Total", round(t.ModeledTotal), round(t.PaperTotal))
	out += fmt.Sprintf("  %-45s %15s %15s\n", "Sequential (projected)", round(t.SeqModeled), round(t.SeqPaper))
	out += fmt.Sprintf("  %-45s %15.0f %15.0f\n", "Speedup", t.SpeedupModel, t.SpeedupPaper)
	return out
}

func round(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.2fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.2fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	}
}

// LuisResult reproduces the §5 Hurricane Luis throughput claim: 490 frames
// of rapid-scan data at ≈6 min per pair on the MP-2 with a speedup above
// 150 over the sequential version, streamed through the MasPar Parallel
// Disk Array ("the high throughput of MPDA was exploited in running the
// SMA algorithm on a dense sequence of 490 frames").
type LuisResult struct {
	Frames       int
	PerPairModel time.Duration
	PerPairPaper time.Duration
	TotalModel   time.Duration
	SequenceIO   time.Duration // modeled MPDA traffic for the whole run
	SpeedupModel float64
	SpeedupPaper float64 // paper: "over 150"
}

// Luis models the 490-frame Hurricane Luis processing run.
func Luis() (*LuisResult, error) {
	p := core.LuisParams()
	m, err := maspar.New(maspar.DefaultConfig())
	if err != nil {
		return nil, err
	}
	st, _, err := core.ModelRun(m, 512, 512, p, 2, maspar.RasterReadout)
	if err != nil {
		return nil, err
	}
	sgi := model.DefaultSGI()
	seq := sgi.ImageTime(core.CountOps(p, 2), 512, 512)
	const frames = 490
	io, err := maspar.DefaultMPDA().SequenceIOTime(frames, 512, 512, 1)
	if err != nil {
		return nil, err
	}
	return &LuisResult{
		Frames:       frames,
		PerPairModel: st.Total(),
		PerPairPaper: 6 * time.Minute,
		TotalModel:   time.Duration(frames-1) * st.Total(),
		SequenceIO:   io,
		SpeedupModel: model.Speedup(seq, st.Total()),
		SpeedupPaper: 150,
	}, nil
}
