package eval

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"sma/internal/core"
	"sma/internal/synth"
)

// TrackThroughput is one tracking-kernel trajectory point: the same
// prepared hurricane pair tracked with the retained naive kernel (rebuild
// and re-eliminate the 6×6 normal equations for every hypothesis, sum
// every residual to the end) and with the hoisted kernel of track.go
// (factor A once per pixel, cache the template invariants, early-exit the
// ε sum against the incumbent best). The two are bit-identical — the
// point errors otherwise — so the speedup is pure kernel restructuring.
type TrackThroughput struct {
	Name           string  `json:"name"`
	Size           int     `json:"size"`
	Workers        int     `json:"workers"`
	Hypotheses     int     `json:"hypotheses_per_pixel"`
	TemplatePixels int     `json:"template_pixels"`
	PixelsTracked  int64   `json:"pixels_tracked"`
	ReferenceSec   float64 `json:"reference_sec"`
	OptimizedSec   float64 `json:"optimized_sec"`
	ParallelSec    float64 `json:"parallel_sec"`
	// PixelsPerSec rates the serial optimized kernel; the reference and
	// parallel figures bracket it from below and above.
	PixelsPerSec         float64 `json:"pixels_per_sec"`
	PixelsPerSecRef      float64 `json:"pixels_per_sec_reference"`
	PixelsPerSecParallel float64 `json:"pixels_per_sec_parallel"`
	NsPerHypothesis      float64 `json:"ns_per_hypothesis"`
	NsPerHypothesisRef   float64 `json:"ns_per_hypothesis_reference"`
	SpeedupVsReference   float64 `json:"speedup_vs_reference"`
	SpeedupParallel      float64 `json:"speedup_parallel_vs_reference"`
	// GoMaxProcs records the cores actually available to the run: on a
	// single-core host the parallel figures cannot beat serial no matter
	// how the scheduler behaves, so the smoke gates condition on it.
	GoMaxProcs int `json:"gomaxprocs"`
	// ParallelEfficiency is per-worker efficiency of the parallel driver
	// against the serial optimized kernel: (optimized_sec / parallel_sec)
	// / workers. 1.0 is perfect scaling; the row fan-out this PR replaced
	// sat well below 1 even at workers=1 (pure scheduling overhead).
	ParallelEfficiency float64 `json:"parallel_efficiency"`
	BitIdentical       bool    `json:"bit_identical"`
}

// TrackThroughputExperiment measures the hoisted tracking kernel against
// the naive reference on a size×size semi-fluid hurricane pair at
// ScaledParams. The returned point doubles as a conformance check: it
// errors if the optimized motion fields are not bit-identical to the
// reference kernel's.
func TrackThroughputExperiment(size, workers int, seed int64) (TrackThroughput, error) {
	out := TrackThroughput{Name: "track_throughput", Size: size}
	if size < 8 {
		return out, fmt.Errorf("eval: size %d too small for the template+search footprint", size)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out.Workers = workers
	out.GoMaxProcs = runtime.GOMAXPROCS(0)

	p := core.ScaledParams()
	out.Hypotheses = p.Hypotheses()
	out.TemplatePixels = (2*p.TemplateRX() + 1) * (2*p.TemplateRY() + 1)

	scene := synth.Hurricane(size, size, seed)
	prep, err := core.Prepare(core.Monocular(scene.Frame(0), scene.Frame(1)), p)
	if err != nil {
		return out, err
	}
	sm := core.BuildSemiMap(prep)
	pixels := int64(size) * int64(size)
	out.PixelsTracked = pixels
	hyps := float64(pixels) * float64(out.Hypotheses)

	t0 := time.Now()
	ref := core.TrackPreparedReference(prep, sm, core.Options{})
	out.ReferenceSec = time.Since(t0).Seconds()

	t1 := time.Now()
	opt := core.TrackPrepared(prep, sm, core.Options{})
	out.OptimizedSec = time.Since(t1).Seconds()

	t2 := time.Now()
	par := core.TrackPreparedParallel(prep, sm, core.Options{}, workers)
	out.ParallelSec = time.Since(t2).Seconds()

	if out.OptimizedSec > 0 {
		out.PixelsPerSec = float64(pixels) / out.OptimizedSec
		out.NsPerHypothesis = out.OptimizedSec * 1e9 / hyps
	}
	if out.ReferenceSec > 0 {
		out.PixelsPerSecRef = float64(pixels) / out.ReferenceSec
		out.NsPerHypothesisRef = out.ReferenceSec * 1e9 / hyps
	}
	if out.ParallelSec > 0 {
		out.PixelsPerSecParallel = float64(pixels) / out.ParallelSec
	}
	if out.OptimizedSec > 0 {
		out.SpeedupVsReference = out.ReferenceSec / out.OptimizedSec
	}
	if out.ParallelSec > 0 {
		out.SpeedupParallel = out.ReferenceSec / out.ParallelSec
		out.ParallelEfficiency = out.OptimizedSec / out.ParallelSec / float64(workers)
	}

	out.BitIdentical = opt.Flow.Equal(ref.Flow) && opt.Err.Equal(ref.Err) &&
		par.Flow.Equal(ref.Flow) && par.Err.Equal(ref.Err)
	if !out.BitIdentical {
		return out, fmt.Errorf("eval: optimized kernel is not bit-identical to the reference kernel")
	}
	return out, nil
}

// WriteJSON writes the trajectory point as indented JSON, the
// BENCH_track.json format CI archives.
func (r TrackThroughput) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
