package fault

import (
	"fmt"
	"math/rand"
	"sort"
)

// Node-level fault plans extend the package's exact-accounting contract
// to the cluster: where Plan schedules what goes wrong with frames,
// ClusterPlan schedules what goes wrong with worker nodes and shard
// dispatches. The coordinator consults the plan at deterministic points
// (shard k, dispatch attempt a, node w), so the same plan replayed over
// the same shard count produces identical reassignment and retry
// counters — Expect simulates the coordinator's own placement algorithm
// and is the single source of truth chaos drills assert against.
//
// Two fault shapes keep the accounting timing-independent:
//
//   - DeadNodes are dead on arrival: every dispatch to them fails
//     immediately, whenever it happens. (A mid-run kill would make the
//     set of affected shards depend on dispatch timing; the chaos
//     harness covers that case with bounded, not exact, assertions.)
//   - Flaky shards fail transiently by shard index, not by node or
//     wall-clock, so the retry count is exact regardless of which node
//     the shard lands on or how dispatches interleave.
type ClusterPlan struct {
	// Seed labels the plan (and feeds RandomClusterPlan).
	Seed int64
	// DeadNodes are worker indices that refuse every dispatch.
	DeadNodes []int
	// Flaky schedules transient dispatch failures per shard.
	Flaky []ShardFlake
}

// ShardFlake makes shard Shard's dispatch fail transiently Attempts
// times (simulating a connection cut mid-stream) before succeeding on
// whatever node holds it.
type ShardFlake struct {
	Shard    int
	Attempts int
}

// NewClusterPlan builds an explicit plan.
func NewClusterPlan(seed int64, deadNodes []int, flaky ...ShardFlake) *ClusterPlan {
	return &ClusterPlan{Seed: seed, DeadNodes: deadNodes, Flaky: flaky}
}

// RandomClusterConfig sizes RandomClusterPlan.
type RandomClusterConfig struct {
	DeadNodes   int // nodes dead on arrival (capped at nodes-1: someone must survive)
	FlakyShards int // shards whose dispatch flakes once
}

// RandomClusterPlan draws a node/shard schedule deterministically from
// the seed: which nodes are dead and which shards flake is fixed by
// (seed, shards, nodes, cfg).
func RandomClusterPlan(seed int64, shards, nodes int, cfg RandomClusterConfig) *ClusterPlan {
	rng := rand.New(rand.NewSource(seed))
	dead := cfg.DeadNodes
	if dead >= nodes {
		dead = nodes - 1
	}
	if dead < 0 {
		dead = 0
	}
	p := &ClusterPlan{Seed: seed}
	for _, w := range rng.Perm(nodes)[:dead] {
		p.DeadNodes = append(p.DeadNodes, w)
	}
	sort.Ints(p.DeadNodes)
	flaky := cfg.FlakyShards
	if flaky > shards {
		flaky = shards
	}
	var shardPerm []int
	if flaky > 0 {
		shardPerm = rng.Perm(shards)[:flaky]
		sort.Ints(shardPerm)
	}
	for _, s := range shardPerm {
		p.Flaky = append(p.Flaky, ShardFlake{Shard: s, Attempts: 1})
	}
	return p
}

// NodeDead reports whether the plan kills node w.
func (p *ClusterPlan) NodeDead(w int) bool {
	if p == nil {
		return false
	}
	for _, d := range p.DeadNodes {
		if d == w {
			return true
		}
	}
	return false
}

// FlakeAttempts returns how many transient failures shard s must absorb.
func (p *ClusterPlan) FlakeAttempts(s int) int {
	if p == nil {
		return 0
	}
	for _, f := range p.Flaky {
		if f.Shard == s {
			return f.Attempts
		}
	}
	return 0
}

// Validate rejects plans no coordinator run could complete or account.
func (p *ClusterPlan) Validate(nodes int) error {
	alive := nodes
	for _, d := range p.DeadNodes {
		if d < 0 || d >= nodes {
			return fmt.Errorf("fault: dead node %d out of range [0,%d)", d, nodes)
		}
		alive--
	}
	if alive <= 0 {
		return fmt.Errorf("fault: plan kills all %d nodes; nothing left to complete the job", nodes)
	}
	for _, f := range p.Flaky {
		if f.Shard < 0 {
			return fmt.Errorf("fault: flaky shard %d out of range", f.Shard)
		}
		if f.Attempts < 0 {
			return fmt.Errorf("fault: flaky shard %d has negative attempts", f.Shard)
		}
	}
	return nil
}

// ClusterExpectation predicts the coordinator counters a run over this
// plan must report exactly.
type ClusterExpectation struct {
	// DispatchRetries counts failed dispatch attempts of any kind: hops
	// over dead nodes plus transient shard flakes.
	DispatchRetries int64
	// Reassigned counts shards that completed on a different node than
	// their affinity placement (shard k on node k mod W).
	Reassigned int64
	// NodesLost counts distinct dead nodes that at least one shard
	// placement touched.
	NodesLost int64
	// Placement is the node each shard finally completes on.
	Placement []int
}

// Expect simulates the coordinator's placement algorithm — affinity
// placement shard k → node k mod nodes, cyclic walk to the next alive
// node on a dead dispatch, same-node retry on a transient flake — for a
// job of `shards` shards over `nodes` workers.
func (p *ClusterPlan) Expect(shards, nodes int) ClusterExpectation {
	var e ClusterExpectation
	lost := make(map[int]bool)
	for k := 0; k < shards; k++ {
		home := k % nodes
		node := home
		for hop := 0; hop < nodes; hop++ {
			if p.NodeDead(node) {
				e.DispatchRetries++
				lost[node] = true
				node = (node + 1) % nodes
				continue
			}
			break
		}
		e.DispatchRetries += int64(p.FlakeAttempts(k))
		if node != home {
			e.Reassigned++
		}
		e.Placement = append(e.Placement, node)
	}
	e.NodesLost = int64(len(lost))
	return e
}
