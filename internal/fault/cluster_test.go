package fault

import (
	"reflect"
	"testing"
)

func TestClusterExpectCleanPlan(t *testing.T) {
	p := NewClusterPlan(1, nil)
	e := p.Expect(6, 4)
	if e.DispatchRetries != 0 || e.Reassigned != 0 || e.NodesLost != 0 {
		t.Fatalf("clean plan expects %+v, want zeros", e)
	}
	// Affinity placement: shard k on node k mod 4.
	if want := []int{0, 1, 2, 3, 0, 1}; !reflect.DeepEqual(e.Placement, want) {
		t.Fatalf("placement %v, want %v", e.Placement, want)
	}
}

func TestClusterExpectDeadNode(t *testing.T) {
	p := NewClusterPlan(1, []int{1})
	e := p.Expect(6, 3)
	// Shards 1 and 4 are homed on dead node 1 and walk to node 2: one
	// dead hop and one reassignment each.
	if e.DispatchRetries != 2 || e.Reassigned != 2 || e.NodesLost != 1 {
		t.Fatalf("dead-node expectation %+v, want 2 retries, 2 reassigned, 1 lost", e)
	}
	if want := []int{0, 2, 2, 0, 2, 2}; !reflect.DeepEqual(e.Placement, want) {
		t.Fatalf("placement %v, want %v", e.Placement, want)
	}
}

func TestClusterExpectAdjacentDeadNodes(t *testing.T) {
	p := NewClusterPlan(1, []int{0, 1})
	e := p.Expect(4, 3)
	// Shard 0: hops 0→1→2 (2 retries); shard 1: hop 1→2 (1); shard 2:
	// home alive; shard 3: hops 0→1→2 (2). Total 5 retries, 3 reassigned.
	if e.DispatchRetries != 5 || e.Reassigned != 3 || e.NodesLost != 2 {
		t.Fatalf("adjacent-dead expectation %+v, want 5 retries, 3 reassigned, 2 lost", e)
	}
	if want := []int{2, 2, 2, 2}; !reflect.DeepEqual(e.Placement, want) {
		t.Fatalf("placement %v, want %v", e.Placement, want)
	}
}

func TestClusterExpectFlakes(t *testing.T) {
	p := NewClusterPlan(1, nil, ShardFlake{Shard: 2, Attempts: 2}, ShardFlake{Shard: 0, Attempts: 1})
	e := p.Expect(4, 2)
	if e.DispatchRetries != 3 || e.Reassigned != 0 || e.NodesLost != 0 {
		t.Fatalf("flaky expectation %+v, want 3 retries only", e)
	}
}

func TestClusterPlanValidate(t *testing.T) {
	if err := NewClusterPlan(1, []int{0, 1}).Validate(2); err == nil {
		t.Fatal("plan killing every node validated")
	}
	if err := NewClusterPlan(1, []int{5}).Validate(2); err == nil {
		t.Fatal("out-of-range dead node validated")
	}
	if err := NewClusterPlan(1, []int{1}, ShardFlake{Shard: 0, Attempts: 1}).Validate(2); err != nil {
		t.Fatalf("sound plan rejected: %v", err)
	}
}

func TestRandomClusterPlanDeterministic(t *testing.T) {
	a := RandomClusterPlan(7, 8, 4, RandomClusterConfig{DeadNodes: 1, FlakyShards: 2})
	b := RandomClusterPlan(7, 8, 4, RandomClusterConfig{DeadNodes: 1, FlakyShards: 2})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed drew different plans: %+v vs %+v", a, b)
	}
	if len(a.DeadNodes) != 1 || len(a.Flaky) != 2 {
		t.Fatalf("plan %+v does not honor the configured counts", a)
	}
	if err := a.Validate(4); err != nil {
		t.Fatalf("random plan invalid: %v", err)
	}
	// A survivor is always left even when the config over-asks.
	over := RandomClusterPlan(7, 4, 3, RandomClusterConfig{DeadNodes: 5})
	if len(over.DeadNodes) != 2 {
		t.Fatalf("over-asked plan kills %d of 3 nodes, want 2", len(over.DeadNodes))
	}
	if err := over.Validate(3); err != nil {
		t.Fatalf("capped plan invalid: %v", err)
	}
}
