package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
)

// CrashEnv selects a deterministic crash point: "<point>:<n>" kills the
// process (exit 137, mirroring SIGKILL) the n-th time Crash(point) is
// reached. The recovery drills use it to die at an exact checkpoint —
// "after the 3rd pair was journaled", "after the 2nd shard merged" —
// so CI exercises mid-job death without the timing races of an external
// kill -9.
const CrashEnv = "SMA_CRASH"

var crashMu sync.Mutex
var crashHits = map[string]int{}

// Crash terminates the process when the CrashEnv variable names this
// point and its hit count has been reached. A no-op otherwise (including
// on a malformed spec), so crash points are free to leave in production
// paths.
func Crash(point string) {
	spec := os.Getenv(CrashEnv)
	if spec == "" {
		return
	}
	name, countStr, ok := strings.Cut(spec, ":")
	if !ok || name != point {
		return
	}
	n, err := strconv.Atoi(countStr)
	if err != nil || n <= 0 {
		return
	}
	crashMu.Lock()
	crashHits[point]++
	hit := crashHits[point]
	crashMu.Unlock()
	if hit == n {
		fmt.Fprintf(os.Stderr, "fault: crash point %q hit %d; dying\n", point, n)
		// A SIGKILL-faithful death is the entire contract here: no
		// deferred cleanup, no flushes, exit code 137 like the kernel's
		// OOM/KILL path, so recovery drills exercise the same torn state
		// a real kill -9 leaves behind.
		os.Exit(137) //smavet:allow panicfree -- deterministic crash-point injection must die, not return
	}
}
