// Package fault is the deterministic fault-injection layer of the SMA
// pipeline's robustness story: it wraps any stream.Source (and any
// io.Reader) with a seeded schedule of the failures real satellite feeds
// carry — transient and persistent I/O errors, NaN/dead-scanline pixel
// damage, per-frame latency — so the degraded-mode machinery in
// internal/stream and internal/server can be driven through reproducible
// chaos and asserted against exact expectations. Same seed, same
// schedule, same counters, every run; see docs/ROBUSTNESS.md.
package fault

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"sma/internal/core"
	"sma/internal/stream"
)

// Kind classifies one injected fault.
type Kind int

const (
	// IOError makes Next fail without delivering the frame — the
	// truncated file, unreadable disk block, or dropped connection case.
	// Attempts > 0 makes it transient (a retry clears it).
	IOError Kind = iota
	// Damage delivers the frame with injected pixel damage: NaN samples
	// (calibration glitches) and dead scanlines (dropped detector
	// sweeps). A strict core.QualityGate rejects such frames.
	Damage
	// Slow delivers the frame intact after the configured latency — the
	// stalled-feed case that exercises timeouts, not correctness.
	Slow
)

func (k Kind) String() string {
	switch k {
	case IOError:
		return "io-error"
	case Damage:
		return "damage"
	case Slow:
		return "slow"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ErrInjected is the root of every error this package injects; transient
// entries additionally wrap stream.ErrTransient so the default retry
// classifier re-reads them.
var ErrInjected = errors.New("fault: injected failure")

// FrameFault schedules one fault against one frame index.
type FrameFault struct {
	Frame int  // frame index the fault fires on
	Kind  Kind // what goes wrong

	// Attempts makes an IOError transient: Next fails that many times,
	// then delivers the frame. <= 0 means the failure is persistent.
	Attempts int
	// BadPixels / DeadLines size the injected Damage (defaults: 3 NaN
	// samples, 1 dead scanline — enough to trip a strict gate).
	BadPixels int
	DeadLines int
	// Latency delays delivery (any kind; the whole point of Slow).
	Latency time.Duration
}

// Plan is a deterministic fault schedule over a frame sequence.
type Plan struct {
	seed   int64
	faults map[int]FrameFault
}

// NewPlan builds a schedule from explicit faults. Later faults on the
// same frame replace earlier ones. seed feeds the damage placement so
// two plans with equal seeds damage identical pixels.
func NewPlan(seed int64, faults ...FrameFault) *Plan {
	p := &Plan{seed: seed, faults: make(map[int]FrameFault, len(faults))}
	for _, f := range faults {
		p.faults[f.Frame] = f
	}
	return p
}

// RandomConfig sizes RandomPlan's seeded schedule.
type RandomConfig struct {
	FailFrames   int           // persistent I/O failures
	FlakyFrames  int           // transient I/O failures (one retry clears)
	DamageFrames int           // NaN/dead-line damaged frames
	Latency      time.Duration // applied to every faulted frame
}

// RandomPlan draws a schedule over n frames from the seed: which frames
// fail, flake, or arrive damaged is deterministic in (seed, n, cfg).
// Each frame carries at most one fault; the configured counts are
// honored exactly as long as they fit in n frames.
func RandomPlan(seed int64, n int, cfg RandomConfig) *Plan {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	total := cfg.FailFrames + cfg.FlakyFrames + cfg.DamageFrames
	if total > n {
		total = n
	}
	var faults []FrameFault
	for i := 0; i < total; i++ {
		ff := FrameFault{Frame: perm[i], Latency: cfg.Latency}
		switch {
		case i < cfg.FailFrames:
			ff.Kind = IOError
		case i < cfg.FailFrames+cfg.FlakyFrames:
			ff.Kind = IOError
			ff.Attempts = 1
		default:
			ff.Kind = Damage
		}
		faults = append(faults, ff)
	}
	return NewPlan(seed, faults...)
}

// Faults returns the schedule sorted by frame index.
func (p *Plan) Faults() []FrameFault {
	out := make([]FrameFault, 0, len(p.faults))
	for _, f := range p.faults {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Frame < out[j].Frame })
	return out
}

// Expectation predicts the degraded-mode counters a streaming run over
// this plan must report, assuming a strict quality gate, an unlimited
// skip budget, and a retry budget covering every transient fault — the
// configuration the chaos harness and conformance tests run. This is the
// single source of truth the invariants are asserted against.
type Expectation struct {
	Retries        int64
	FramesSkipped  int64
	PairsSkipped   int64
	Gaps           int64
	SkippedFrames  []int // sorted frame indices that cannot survive
	SurvivingPairs []int // sorted pair indices that must be bit-identical
}

// Expect computes the expectation for an n-frame sequence.
func (p *Plan) Expect(n int) Expectation {
	var e Expectation
	dead := make(map[int]bool)
	for _, f := range p.faults {
		if f.Frame < 0 || f.Frame >= n {
			continue
		}
		switch f.Kind {
		case IOError:
			if f.Attempts > 0 {
				e.Retries += int64(f.Attempts)
			} else {
				dead[f.Frame] = true
			}
		case Damage:
			dead[f.Frame] = true
		}
	}
	inGap := false
	for i := 0; i < n; i++ {
		if dead[i] {
			e.SkippedFrames = append(e.SkippedFrames, i)
			e.FramesSkipped++
			if !inGap {
				e.Gaps++
				inGap = true
			}
		} else {
			inGap = false
		}
	}
	for i := 0; i+1 < n; i++ {
		if dead[i] || dead[i+1] {
			e.PairsSkipped++
		} else {
			e.SurvivingPairs = append(e.SurvivingPairs, i)
		}
	}
	return e
}

// Source wraps src with the plan's fault schedule. It implements
// stream.Skipper, so a stream.SkipPolicy can step past persistent
// failures; skips are forwarded to the underlying source when it is a
// Skipper too.
type Source struct {
	src      stream.Source
	plan     *Plan
	idx      int
	attempts map[int]int
	sleep    func(time.Duration)
}

// WrapSource builds the faulted source.
func WrapSource(src stream.Source, plan *Plan) *Source {
	return &Source{src: src, plan: plan, attempts: make(map[int]int), sleep: time.Sleep}
}

// Next applies the schedule: fail, delay or damage the frame the cursor
// addresses, otherwise pass it through. Like every well-behaved Source,
// a failing Next does not advance the cursor.
func (s *Source) Next() (core.Frame, error) {
	ff, ok := s.plan.faults[s.idx]
	if ok && ff.Latency > 0 {
		s.sleep(ff.Latency)
	}
	if ok && ff.Kind == IOError {
		s.attempts[s.idx]++
		if ff.Attempts <= 0 {
			return core.Frame{}, fmt.Errorf("%w: persistent I/O error", ErrInjected)
		}
		if s.attempts[s.idx] <= ff.Attempts {
			return core.Frame{}, fmt.Errorf("%w: %w", ErrInjected, stream.ErrTransient)
		}
	}
	f, err := s.src.Next()
	if err != nil {
		return f, err
	}
	if ok && ff.Kind == Damage {
		f = damageFrame(f, ff, s.plan.seed, s.idx)
	}
	s.idx++
	return f, nil
}

// SkipFrame steps the cursor past a persistently failing frame. The
// pipeline only skips after a failed Next, and a failed Next never
// consumed the underlying frame (neither an injected I/O error, which
// fails before delegating, nor an underlying failure, which by the
// Source contract did not advance) — so the skip is always forwarded.
func (s *Source) SkipFrame() {
	if sk, ok := s.src.(stream.Skipper); ok {
		sk.SkipFrame()
	}
	s.idx++
}

// damageFrame clones the frame's intensity image and injects the fault's
// NaN samples and dead scanlines at seed-deterministic positions. The
// monocular I==Z aliasing is preserved so the damaged frame is shaped
// like its clean counterpart.
func damageFrame(f core.Frame, ff FrameFault, seed int64, idx int) core.Frame {
	bad := ff.BadPixels
	deadLines := ff.DeadLines
	if bad <= 0 && deadLines <= 0 {
		bad, deadLines = 3, 1
	}
	img := f.I.Clone()
	n := len(img.Data)
	for j := 0; j < bad && n > 0; j++ {
		pos := int((seed + int64(idx)*7919 + int64(j)*104729) % int64(n))
		if pos < 0 {
			pos += n
		}
		img.Data[pos] = float32(math.NaN())
	}
	for j := 0; j < deadLines && img.H > 0; j++ {
		y := int((seed + int64(idx)*31 + int64(j)*1009) % int64(img.H))
		if y < 0 {
			y += img.H
		}
		row := img.Row(y)
		for x := range row {
			row[x] = 0
		}
	}
	out := core.Frame{I: img, Extra: f.Extra}
	if f.Z == f.I || f.Z == nil {
		out.Z = img
	} else {
		out.Z = f.Z
	}
	return out
}
