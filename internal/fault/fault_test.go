package fault

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
	"time"

	"sma/internal/core"
	"sma/internal/grid"
	"sma/internal/stream"
	"sma/internal/synth"
)

func testFrames(n, size int) []*grid.Grid {
	scene := synth.Hurricane(size, size, 7)
	frames := make([]*grid.Grid, n)
	for i := range frames {
		frames[i] = scene.Frame(float64(i))
	}
	return frames
}

func drain(t *testing.T, src stream.Source) (good []int, errs map[int]error) {
	t.Helper()
	errs = make(map[int]error)
	idx := 0
	for {
		_, err := src.Next()
		if err == io.EOF {
			return good, errs
		}
		if err != nil {
			errs[idx] = err
			if sk, ok := src.(stream.Skipper); ok {
				sk.SkipFrame()
			} else {
				t.Fatal("faulted source lost Skipper")
			}
		} else {
			good = append(good, idx)
		}
		idx++
	}
}

func TestSourcePersistentIOError(t *testing.T) {
	frames := testFrames(5, 8)
	plan := NewPlan(1, FrameFault{Frame: 2, Kind: IOError})
	src := WrapSource(stream.Grids(frames), plan)
	good, errs := drain(t, src)
	if want := []int{0, 1, 3, 4}; len(good) != 4 || good[2] != 3 {
		t.Fatalf("delivered frames %v, want %v", good, want)
	}
	err := errs[2]
	if !errors.Is(err, ErrInjected) {
		t.Errorf("frame 2 error %v does not wrap ErrInjected", err)
	}
	if stream.Transient(err) {
		t.Errorf("persistent fault classified transient: %v", err)
	}
}

func TestSourceTransientClearsOnRetry(t *testing.T) {
	frames := testFrames(3, 8)
	plan := NewPlan(1, FrameFault{Frame: 1, Kind: IOError, Attempts: 2})
	src := WrapSource(stream.Grids(frames), plan)
	if _, err := src.Next(); err != nil {
		t.Fatalf("frame 0: %v", err)
	}
	for attempt := 1; attempt <= 2; attempt++ {
		_, err := src.Next()
		if err == nil {
			t.Fatalf("attempt %d delivered; want transient failure", attempt)
		}
		if !stream.Transient(err) {
			t.Fatalf("attempt %d error %v is not transient", attempt, err)
		}
	}
	f, err := src.Next()
	if err != nil {
		t.Fatalf("attempt 3 still failing: %v", err)
	}
	if !f.I.Equal(frames[1]) {
		t.Error("recovered frame differs from the clean one")
	}
}

func TestSourceDamageIsDeterministicAndIsolated(t *testing.T) {
	frames := testFrames(3, 16)
	mk := func() *Source {
		return WrapSource(stream.Grids(frames),
			NewPlan(42, FrameFault{Frame: 1, Kind: Damage, BadPixels: 4, DeadLines: 2}))
	}
	s1, s2 := mk(), mk()
	var d1, d2 core.Frame
	for i := 0; i < 2; i++ {
		f1, err1 := s1.Next()
		f2, err2 := s2.Next()
		if err1 != nil || err2 != nil {
			t.Fatalf("frame %d: %v / %v", i, err1, err2)
		}
		d1, d2 = f1, f2
	}
	// NaN compares unequal to itself, so compare raw bit patterns.
	for i := range d1.I.Data {
		if math.Float32bits(d1.I.Data[i]) != math.Float32bits(d2.I.Data[i]) {
			t.Fatalf("same seed produced different damage at sample %d", i)
		}
	}
	r := grid.ScanDamage(d1.I)
	if r.BadPixels == 0 || r.DeadLines == 0 {
		t.Errorf("damage not injected: %+v", r)
	}
	if d1.Z != d1.I {
		t.Error("monocular aliasing lost on damaged frame")
	}
	if grid.ScanDamage(frames[1]).Damaged() {
		t.Error("damage mutated the shared clean frame")
	}
}

func TestRandomPlanDeterministicAndSized(t *testing.T) {
	cfg := RandomConfig{FailFrames: 2, FlakyFrames: 1, DamageFrames: 2, Latency: time.Millisecond}
	p1 := RandomPlan(9, 20, cfg)
	p2 := RandomPlan(9, 20, cfg)
	f1, f2 := p1.Faults(), p2.Faults()
	if len(f1) != 5 {
		t.Fatalf("plan has %d faults, want 5", len(f1))
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("same seed diverged: %+v vs %+v", f1[i], f2[i])
		}
	}
	if p3 := RandomPlan(10, 20, cfg); len(p3.Faults()) == 5 {
		same := true
		for i, f := range p3.Faults() {
			if f != f1[i] {
				same = false
			}
		}
		if same {
			t.Error("different seeds produced identical plans")
		}
	}
}

func TestExpect(t *testing.T) {
	plan := NewPlan(1,
		FrameFault{Frame: 2, Kind: IOError},
		FrameFault{Frame: 3, Kind: IOError, Attempts: 2},
		FrameFault{Frame: 5, Kind: Damage},
		FrameFault{Frame: 6, Kind: Damage},
	)
	e := plan.Expect(10)
	if e.Retries != 2 {
		t.Errorf("Retries = %d, want 2", e.Retries)
	}
	if e.FramesSkipped != 3 {
		t.Errorf("FramesSkipped = %d, want 3 (frames 2, 5, 6)", e.FramesSkipped)
	}
	if e.Gaps != 2 {
		t.Errorf("Gaps = %d, want 2 ({2} and {5,6})", e.Gaps)
	}
	// Pairs touching frames 2, 5 or 6: pairs 1,2,4,5,6 — five skipped.
	if e.PairsSkipped != 5 {
		t.Errorf("PairsSkipped = %d, want 5", e.PairsSkipped)
	}
	if want := []int{0, 3, 7, 8}; len(e.SurvivingPairs) != len(want) {
		t.Errorf("SurvivingPairs = %v, want %v", e.SurvivingPairs, want)
	} else {
		for i, p := range want {
			if e.SurvivingPairs[i] != p {
				t.Errorf("SurvivingPairs = %v, want %v", e.SurvivingPairs, want)
				break
			}
		}
	}
}

func TestWrapReaderTruncates(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 100)
	r := WrapReader(bytes.NewReader(data), ReaderFault{Offset: 40})
	got, err := io.ReadAll(r)
	if len(got) != 40 {
		t.Errorf("read %d bytes before the fault, want 40", len(got))
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) || !errors.Is(err, ErrInjected) {
		t.Errorf("fault error = %v, want ErrInjected wrapping io.ErrUnexpectedEOF", err)
	}
}

func TestWrapReaderCustomError(t *testing.T) {
	boom := errors.New("disk on fire")
	r := WrapReader(bytes.NewReader(make([]byte, 10)), ReaderFault{Offset: 4, Err: boom})
	buf := make([]byte, 8)
	n, err := io.ReadFull(r, buf)
	if n != 4 || !errors.Is(err, boom) {
		t.Errorf("ReadFull = (%d, %v), want (4, %v)", n, err, boom)
	}
}
