package fault

import (
	"fmt"
	"io"
)

// ReaderFault schedules one byte-level fault: after Offset bytes have
// been delivered, every further Read returns Err (nil Err injects
// io.ErrUnexpectedEOF — a truncated file). This is the knife for the
// format readers (grid.ReadPGM, ingest.ReadArea): it turns "the feed
// died mid-frame" into a reproducible unit test.
type ReaderFault struct {
	Offset int64
	Err    error
}

// Reader wraps r with a byte-offset fault schedule.
type Reader struct {
	r     io.Reader
	fault ReaderFault
	off   int64
}

// WrapReader returns r truncated/failed at the fault's offset.
func WrapReader(r io.Reader, f ReaderFault) *Reader {
	if f.Err == nil {
		f.Err = fmt.Errorf("%w: %w", ErrInjected, io.ErrUnexpectedEOF)
	}
	return &Reader{r: r, fault: f}
}

func (t *Reader) Read(p []byte) (int, error) {
	remain := t.fault.Offset - t.off
	if remain <= 0 {
		return 0, t.fault.Err
	}
	if int64(len(p)) > remain {
		p = p[:remain]
	}
	n, err := t.r.Read(p)
	t.off += int64(n)
	return n, err
}
