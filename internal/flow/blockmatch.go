package flow

import (
	"fmt"

	"sma/internal/grid"
)

// BMConfig parameterizes block-matching flow estimation.
type BMConfig struct {
	// TemplateRadius: (2r+1)² correlation template.
	TemplateRadius int
	// SearchRadius: displacement search is (2r+1)² candidates.
	SearchRadius int
	// Subpixel enables separable parabolic refinement of the best match.
	Subpixel bool
}

// DefaultBMConfig matches the SMA tracker's typical window scale.
func DefaultBMConfig() BMConfig { return BMConfig{TemplateRadius: 3, SearchRadius: 4, Subpixel: true} }

// BlockMatch estimates per-pixel displacement from img1 to img2 by rigid
// template correlation: for every pixel the (2r+1)² template is compared
// (SSD) against all candidate positions in the search window. This is the
// "rigid motion" comparator: it assumes each local patch translates
// without deformation.
func BlockMatch(img1, img2 *grid.Grid, cfg BMConfig) (*grid.VectorField, error) {
	if img1.W != img2.W || img1.H != img2.H {
		return nil, fmt.Errorf("flow: image sizes differ: %dx%d vs %dx%d", img1.W, img1.H, img2.W, img2.H)
	}
	if cfg.TemplateRadius < 1 || cfg.SearchRadius < 1 {
		return nil, fmt.Errorf("flow: radii must be positive: %+v", cfg)
	}
	w, h := img1.W, img1.H
	out := grid.NewVectorField(w, h)
	nt := cfg.TemplateRadius
	ns := cfg.SearchRadius
	side := 2*ns + 1
	scores := make([]float64, side*side)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			bestK := -1
			best := 1e30
			k := 0
			for dv := -ns; dv <= ns; dv++ {
				for du := -ns; du <= ns; du++ {
					var s float64
					for ty := -nt; ty <= nt; ty++ {
						for tx := -nt; tx <= nt; tx++ {
							d := float64(img1.At(x+tx, y+ty) - img2.At(x+du+tx, y+dv+ty))
							s += d * d
						}
					}
					scores[k] = s
					if s < best {
						best = s
						bestK = k
					}
					k++
				}
			}
			du := bestK%side - ns
			dv := bestK/side - ns
			fu, fv := float64(du), float64(dv)
			if cfg.Subpixel {
				if du > -ns && du < ns {
					fu += parabolic(scores[bestK-1], scores[bestK], scores[bestK+1])
				}
				if dv > -ns && dv < ns {
					fv += parabolic(scores[bestK-side], scores[bestK], scores[bestK+side])
				}
			}
			out.Set(x, y, float32(fu), float32(fv))
		}
	}
	return out, nil
}

// parabolic returns the sub-sample offset of a parabola's extremum through
// three equally spaced scores, clamped to ±0.5.
func parabolic(sm, s0, sp float64) float64 {
	den := sm - 2*s0 + sp
	if den <= 1e-12 {
		return 0
	}
	off := 0.5 * (sm - sp) / den
	if off > 0.5 {
		off = 0.5
	} else if off < -0.5 {
		off = -0.5
	}
	return off
}
