package flow

import (
	"math"
	"testing"

	"sma/internal/grid"
	"sma/internal/synth"
)

// translatePair renders a scene frame and its uniformly translated copy.
func translatePair(w, h int, seed int64, u, v float64) (*grid.Grid, *grid.Grid) {
	s := &synth.Scene{W: w, H: h, Flow: synth.Uniform{U: u, V: v},
		Tex: synth.Hurricane(w, h, seed).Tex}
	return s.Frame(0), s.Frame(1)
}

func TestHornSchunckSizeMismatch(t *testing.T) {
	if _, err := HornSchunck(grid.New(4, 4), grid.New(5, 4), DefaultHSConfig()); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestHornSchunckBadIterations(t *testing.T) {
	cfg := DefaultHSConfig()
	cfg.Iterations = 0
	if _, err := HornSchunck(grid.New(4, 4), grid.New(4, 4), cfg); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestHornSchunckSubpixelTranslation(t *testing.T) {
	a, b := translatePair(64, 64, 41, 0.5, -0.3)
	f, err := HornSchunck(a, b, DefaultHSConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Horn–Schunck handles sub-pixel motion well in the interior.
	var su, sv float64
	n := 0
	for y := 12; y < 52; y++ {
		for x := 12; x < 52; x++ {
			u, v := f.At(x, y)
			su += float64(u)
			sv += float64(v)
			n++
		}
	}
	su /= float64(n)
	sv /= float64(n)
	if math.Abs(su-0.5) > 0.2 || math.Abs(sv+0.3) > 0.2 {
		t.Fatalf("mean flow (%v,%v), want (0.5,-0.3)", su, sv)
	}
}

func TestHornSchunckZeroMotion(t *testing.T) {
	a, _ := translatePair(32, 32, 43, 0, 0)
	f, err := HornSchunck(a, a.Clone(), DefaultHSConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m := f.MeanMagnitude(); m > 1e-3 {
		t.Fatalf("zero-motion mean magnitude %v", m)
	}
}

func TestHornSchunckSmoothness(t *testing.T) {
	// Larger alpha must produce a smoother (lower-variance) field.
	a, b := translatePair(48, 48, 47, 1, 0)
	rough, err := HornSchunck(a, b, HSConfig{Alpha: 1, Iterations: 60, PreSmooth: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := HornSchunck(a, b, HSConfig{Alpha: 30, Iterations: 60, PreSmooth: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	varU := func(f *grid.VectorField) float64 {
		m := f.U.Mean()
		var s float64
		for _, v := range f.U.Data {
			d := float64(v) - m
			s += d * d
		}
		return s / float64(len(f.U.Data))
	}
	if varU(smooth) >= varU(rough) {
		t.Fatalf("alpha=30 variance %v not below alpha=1 variance %v", varU(smooth), varU(rough))
	}
}

func TestBlockMatchIntegerTranslation(t *testing.T) {
	a, b := translatePair(64, 64, 53, 2, -1)
	f, err := BlockMatch(a, b, DefaultBMConfig())
	if err != nil {
		t.Fatal(err)
	}
	truth := grid.NewVectorField(64, 64)
	truth.U.Fill(2)
	truth.V.Fill(-1)
	// Compare interior.
	var bad int
	for y := 10; y < 54; y++ {
		for x := 10; x < 54; x++ {
			u, v := f.At(x, y)
			if math.Abs(float64(u)-2) > 0.5 || math.Abs(float64(v)+1) > 0.5 {
				bad++
			}
		}
	}
	if frac := float64(bad) / (44.0 * 44.0); frac > 0.05 {
		t.Fatalf("%.1f%% of interior pixels mismatched", frac*100)
	}
}

func TestBlockMatchSubpixel(t *testing.T) {
	a, b := translatePair(64, 64, 59, 1.5, 0.5)
	cfg := DefaultBMConfig()
	f, err := BlockMatch(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var su, sv float64
	n := 0
	for y := 12; y < 52; y++ {
		for x := 12; x < 52; x++ {
			u, v := f.At(x, y)
			su += float64(u)
			sv += float64(v)
			n++
		}
	}
	su /= float64(n)
	sv /= float64(n)
	if math.Abs(su-1.5) > 0.25 || math.Abs(sv-0.5) > 0.25 {
		t.Fatalf("mean flow (%v,%v), want (1.5,0.5)", su, sv)
	}
}

func TestBlockMatchConfigValidation(t *testing.T) {
	a := grid.New(8, 8)
	if _, err := BlockMatch(a, a, BMConfig{TemplateRadius: 0, SearchRadius: 2}); err == nil {
		t.Fatal("zero template radius accepted")
	}
	if _, err := BlockMatch(a, grid.New(9, 8), DefaultBMConfig()); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestHornSchunckOversmoothsMultiLayer(t *testing.T) {
	// The motivating failure: a two-layer scene with opposing layer
	// motions. Global smoothness drags estimates toward a compromise, so
	// Horn–Schunck's error against the per-layer truth must be
	// substantially worse than on an equally textured single-layer scene.
	ml := synth.NewMultiLayer(64, 64, 61)
	a := ml.Frame(0)
	b := ml.Frame(1)
	truth := ml.Truth(0, 1)
	f, err := HornSchunck(a, b, DefaultHSConfig())
	if err != nil {
		t.Fatal(err)
	}
	mlErr := f.RMSE(truth)

	sa, sb := translatePair(64, 64, 61, 1.8, 0.2)
	sf, err := HornSchunck(sa, sb, DefaultHSConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := grid.NewVectorField(64, 64)
	st.U.Fill(1.8)
	st.V.Fill(0.2)
	singleErr := sf.RMSE(st)
	if mlErr < 1.5*singleErr {
		t.Fatalf("multilayer HS error %v not clearly worse than single-layer %v", mlErr, singleErr)
	}
}
