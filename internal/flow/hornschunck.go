// Package flow provides the standard optical-flow baselines the semi-fluid
// motion model is motivated against: the Horn–Schunck global-smoothness
// method (whose MasPar MP-2 implementation is the paper's reference [2])
// and a rigid block-matching correlation tracker. Both assume kinds of
// coherence — global smoothness and local rigidity respectively — that
// multi-layer and fluid cloud motion violates, which the eval experiments
// demonstrate against the SMA tracker.
package flow

import (
	"fmt"

	"sma/internal/grid"
)

// HSConfig parameterizes Horn–Schunck estimation.
type HSConfig struct {
	// Alpha is the smoothness weight (larger = smoother fields).
	Alpha float64
	// Iterations of the Jacobi relaxation.
	Iterations int
	// PreSmooth optionally Gaussian-smooths inputs (σ; 0 disables).
	PreSmooth float64
}

// DefaultHSConfig returns the classic parameterization.
func DefaultHSConfig() HSConfig { return HSConfig{Alpha: 10, Iterations: 100, PreSmooth: 0.8} }

// HornSchunck estimates the dense optical flow carrying img1 to img2 by
// minimizing the brightness-constancy residual plus α²·(flow smoothness),
// via Jacobi iterations of the Euler–Lagrange equations.
func HornSchunck(img1, img2 *grid.Grid, cfg HSConfig) (*grid.VectorField, error) {
	if img1.W != img2.W || img1.H != img2.H {
		return nil, fmt.Errorf("flow: image sizes differ: %dx%d vs %dx%d", img1.W, img1.H, img2.W, img2.H)
	}
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("flow: need at least one iteration")
	}
	a := img1
	b := img2
	if cfg.PreSmooth > 0 {
		a = img1.GaussianBlur(cfg.PreSmooth)
		b = img2.GaussianBlur(cfg.PreSmooth)
	}
	w, h := a.W, a.H
	// Horn–Schunck derivative estimates averaged over the two frames.
	ex := grid.New(w, h)
	ey := grid.New(w, h)
	et := grid.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			ex.Data[i] = (a.At(x+1, y) - a.At(x-1, y) + b.At(x+1, y) - b.At(x-1, y)) / 4
			ey.Data[i] = (a.At(x, y+1) - a.At(x, y-1) + b.At(x, y+1) - b.At(x, y-1)) / 4
			et.Data[i] = b.AtUnchecked(x, y) - a.AtUnchecked(x, y)
		}
	}
	u := grid.New(w, h)
	v := grid.New(w, h)
	alpha2 := float32(cfg.Alpha * cfg.Alpha)
	for it := 0; it < cfg.Iterations; it++ {
		nu := grid.New(w, h)
		nv := grid.New(w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				i := y*w + x
				// 4-neighbor local flow averages.
				ub := (u.At(x-1, y) + u.At(x+1, y) + u.At(x, y-1) + u.At(x, y+1)) / 4
				vb := (v.At(x-1, y) + v.At(x+1, y) + v.At(x, y-1) + v.At(x, y+1)) / 4
				fx := ex.Data[i]
				fy := ey.Data[i]
				ft := et.Data[i]
				num := fx*ub + fy*vb + ft
				den := alpha2 + fx*fx + fy*fy
				nu.Data[i] = ub - fx*num/den
				nv.Data[i] = vb - fy*num/den
			}
		}
		u, v = nu, nv
	}
	return &grid.VectorField{U: u, V: v}, nil
}
