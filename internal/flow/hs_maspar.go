package flow

import (
	"fmt"

	"sma/internal/grid"
	"sma/internal/maspar"
)

// HornSchunckMasPar runs Horn–Schunck as a genuine SIMD kernel on the
// simulated MasPar MP-2 — the algorithm of the paper's reference [2]
// ("Parallel motion computing on the MasPar MP-2", Branca et al., IPPS
// 1995). Every arithmetic step is a plural instruction issued through the
// ACU and every neighbor access is an X-net shift, so the machine ledger
// records the kernel's true instruction and communication counts.
//
// The image must match the PE array exactly (one pixel per PE); array
// edges are toroidal, as the X-net is, so compare against the host
// implementation on interior pixels.
func HornSchunckMasPar(m *maspar.Machine, img1, img2 *grid.Grid, cfg HSConfig) (*grid.VectorField, error) {
	if img1.W != img2.W || img1.H != img2.H {
		return nil, fmt.Errorf("flow: image sizes differ: %dx%d vs %dx%d", img1.W, img1.H, img2.W, img2.H)
	}
	if img1.W != m.Cfg.NXProc || img1.H != m.Cfg.NYProc {
		return nil, fmt.Errorf("flow: image %dx%d must match the %dx%d PE array (one pixel per PE)",
			img1.W, img1.H, m.Cfg.NXProc, m.Cfg.NYProc)
	}
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("flow: need at least one iteration")
	}
	a := img1
	b := img2
	if cfg.PreSmooth > 0 {
		a = img1.GaussianBlur(cfg.PreSmooth)
		b = img2.GaussianBlur(cfg.PreSmooth)
	}
	acu := maspar.NewACU(m)
	load := func(g *grid.Grid) *maspar.Plural {
		p := maspar.NewPlural(m)
		copy(p.V, g.Data) // one pixel per PE: row-major == PE-major
		m.ChargeMem(1)
		return p
	}
	pa := load(a)
	pb := load(b)

	// Derivatives via X-net shifts: ex = (E(a)−W(a)+E(b)−W(b))/4, etc.
	tmp := maspar.NewPlural(m)
	diffAxis := func(src *maspar.Plural, plus, minus maspar.Direction) *maspar.Plural {
		out := maspar.NewPlural(m)
		acu.ShiftInto(out, src, plus)
		acu.ShiftInto(tmp, src, minus)
		acu.Sub(out, out, tmp)
		return out
	}
	ex := diffAxis(pa, maspar.East, maspar.West)
	exb := diffAxis(pb, maspar.East, maspar.West)
	acu.Add(ex, ex, exb)
	acu.MulScalar(ex, ex, 0.25)
	ey := diffAxis(pa, maspar.South, maspar.North)
	eyb := diffAxis(pb, maspar.South, maspar.North)
	acu.Add(ey, ey, eyb)
	acu.MulScalar(ey, ey, 0.25)
	et := maspar.NewPlural(m)
	acu.Sub(et, pb, pa)

	// den = α² + ex² + ey² (loop-invariant).
	den := maspar.NewPlural(m)
	acu.Mul(den, ex, ex)
	acu.Mul(tmp, ey, ey)
	acu.Add(den, den, tmp)
	acu.AddScalar(den, den, float32(cfg.Alpha*cfg.Alpha))

	u := maspar.NewPlural(m)
	v := maspar.NewPlural(m)
	ub := maspar.NewPlural(m)
	vb := maspar.NewPlural(m)
	num := maspar.NewPlural(m)
	avg4 := func(dst, src *maspar.Plural) {
		acu.ShiftInto(dst, src, maspar.West)
		acu.ShiftInto(tmp, src, maspar.East)
		acu.Add(dst, dst, tmp)
		acu.ShiftInto(tmp, src, maspar.North)
		acu.Add(dst, dst, tmp)
		acu.ShiftInto(tmp, src, maspar.South)
		acu.Add(dst, dst, tmp)
		acu.MulScalar(dst, dst, 0.25)
	}
	for it := 0; it < cfg.Iterations; it++ {
		avg4(ub, u)
		avg4(vb, v)
		// num = (ex·ubar + ey·vbar + et) / den
		acu.Mul(num, ex, ub)
		acu.Mul(tmp, ey, vb)
		acu.Add(num, num, tmp)
		acu.Add(num, num, et)
		acu.Div(num, num, den)
		// u = ubar − ex·num ; v = vbar − ey·num
		acu.Mul(tmp, ex, num)
		acu.Sub(u, ub, tmp)
		acu.Mul(tmp, ey, num)
		acu.Sub(v, vb, tmp)
	}

	out := grid.NewVectorField(img1.W, img1.H)
	copy(out.U.Data, u.V)
	copy(out.V.Data, v.V)
	m.ChargeMem(2)
	return out, nil
}
