package flow

import (
	"math"
	"testing"

	"sma/internal/grid"
	"sma/internal/maspar"
	"sma/internal/synth"
)

func TestHornSchunckMasParMatchesHostInterior(t *testing.T) {
	a, b := translatePair(32, 32, 67, 0.8, -0.4)
	// Boundary conditions differ (toroidal X-net vs clamped host), and
	// each Jacobi iteration propagates boundary influence one pixel
	// inward — so keep iterations below the comparison margin, where the
	// two implementations must then agree to float precision.
	cfg := DefaultHSConfig()
	cfg.Iterations = 8
	host, err := HornSchunck(a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := maspar.MustNew(maspar.ScaledConfig(32, 32))
	simd, err := HornSchunckMasPar(m, a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var maxd float64
	for y := 10; y < 22; y++ {
		for x := 10; x < 22; x++ {
			hu, hv := host.At(x, y)
			su, sv := simd.At(x, y)
			d := math.Max(math.Abs(float64(hu-su)), math.Abs(float64(hv-sv)))
			if d > maxd {
				maxd = d
			}
		}
	}
	if maxd > 1e-4 {
		t.Fatalf("SIMD/host interior disagreement %v px", maxd)
	}
}

func TestHornSchunckMasParRecoversTranslation(t *testing.T) {
	a, b := translatePair(32, 32, 71, 0.5, 0.3)
	m := maspar.MustNew(maspar.ScaledConfig(32, 32))
	f, err := HornSchunckMasPar(m, a, b, DefaultHSConfig())
	if err != nil {
		t.Fatal(err)
	}
	var su, sv float64
	n := 0
	for y := 8; y < 24; y++ {
		for x := 8; x < 24; x++ {
			u, v := f.At(x, y)
			su += float64(u)
			sv += float64(v)
			n++
		}
	}
	su /= float64(n)
	sv /= float64(n)
	if math.Abs(su-0.5) > 0.2 || math.Abs(sv-0.3) > 0.2 {
		t.Fatalf("mean SIMD flow (%v,%v), want (0.5,0.3)", su, sv)
	}
}

func TestHornSchunckMasParChargesCommunication(t *testing.T) {
	a, b := translatePair(16, 16, 73, 1, 0)
	m := maspar.MustNew(maspar.ScaledConfig(16, 16))
	cfg := DefaultHSConfig()
	cfg.Iterations = 10
	if _, err := HornSchunckMasPar(m, a, b, cfg); err != nil {
		t.Fatal(err)
	}
	// 8 shifts per iteration (two 4-neighbor averages) plus 8 for the
	// derivative stencils.
	wantShifts := int64(10*8 + 8)
	if m.Cost.XNetShifts != wantShifts {
		t.Fatalf("XNetShifts = %d, want %d", m.Cost.XNetShifts, wantShifts)
	}
	if m.Cost.PluralFlops == 0 {
		t.Fatal("no plural instructions charged")
	}
}

func TestHornSchunckMasParValidation(t *testing.T) {
	m := maspar.MustNew(maspar.ScaledConfig(8, 8))
	g := grid.New(16, 16) // does not match the 8×8 PE array
	if _, err := HornSchunckMasPar(m, g, g, DefaultHSConfig()); err == nil {
		t.Fatal("mismatched image/PE-array size accepted")
	}
	h := grid.New(8, 8)
	cfg := DefaultHSConfig()
	cfg.Iterations = 0
	if _, err := HornSchunckMasPar(m, h, h, cfg); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestHornSchunckMasParZeroMotion(t *testing.T) {
	s := synth.Hurricane(16, 16, 77)
	a := s.Frame(0)
	m := maspar.MustNew(maspar.ScaledConfig(16, 16))
	f, err := HornSchunckMasPar(m, a, a.Clone(), DefaultHSConfig())
	if err != nil {
		t.Fatal(err)
	}
	if mag := f.MeanMagnitude(); mag > 1e-3 {
		t.Fatalf("zero motion produced mean magnitude %v", mag)
	}
}
