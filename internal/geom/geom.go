// Package geom models the geostationary satellite and sensor geometry the
// paper's stereo pipeline relies on (§2.1: "the estimated disparity or
// depth maps can be transformed into surface maps z(t) of cloud-top
// heights ... using satellite and sensor geometry information"): parallax
// height retrieval for a two-satellite stereo pair and the growth of the
// pixel ground footprint away from nadir (§5.1: "pixels in the center of
// the image span approximately 1 sq-km whereas pixels near the borders
// span approximately 4 sq-km due to the larger field-of-view").
package geom

import (
	"fmt"
	"math"
)

// Physical constants (km).
const (
	EarthRadiusKm = 6378.0
	GeoAltitudeKm = 35786.0
)

// Stereo describes a two-satellite geostationary stereo configuration for
// an equatorial target: the GOES-6/GOES-7 Hurricane Frederic setup
// "subtended an angle of about 135° with respect to the center of the
// Earth", i.e. satellite longitudes ±67.5° from the target.
type Stereo struct {
	// SatLonEast and SatLonWest are the satellite longitudes in degrees.
	SatLonEast, SatLonWest float64
	// TargetLon is the target's longitude in degrees.
	TargetLon float64
	// KmPerPixel is the image ground sampling at the target.
	KmPerPixel float64
}

// Frederic returns the GOES-6/GOES-7 configuration of §5.1: a 135°
// subtended angle and 1 km sampling at image center.
func Frederic() Stereo {
	return Stereo{SatLonEast: 67.5, SatLonWest: -67.5, TargetLon: 0, KmPerPixel: 1}
}

// TanZenith returns tan of the viewing zenith angle at the target for a
// satellite at the given longitude (degrees). For a target at geocentric
// angle Δ from the sub-satellite point,
//
//	tan θ = (R+H)·sinΔ / ((R+H)·cosΔ − R).
func (s Stereo) TanZenith(satLon float64) (float64, error) {
	delta := math.Abs(satLon-s.TargetLon) * math.Pi / 180
	rs := EarthRadiusKm + GeoAltitudeKm
	den := rs*math.Cos(delta) - EarthRadiusKm
	if den <= 0 {
		return 0, fmt.Errorf("geom: target beyond the horizon of satellite at %.1f°", satLon)
	}
	return rs * math.Sin(delta) / den, nil
}

// DisparityPerKm returns the stereo disparity, in pixels, produced by one
// kilometer of cloud-top height: each satellite displaces the cloud's
// apparent position by h·tanθ away from its own sub-satellite point, and
// for a target between the satellites the two displacements are opposed,
// so they add in the disparity.
func (s Stereo) DisparityPerKm() (float64, error) {
	if s.KmPerPixel <= 0 {
		return 0, fmt.Errorf("geom: KmPerPixel must be positive")
	}
	te, err := s.TanZenith(s.SatLonEast)
	if err != nil {
		return 0, err
	}
	tw, err := s.TanZenith(s.SatLonWest)
	if err != nil {
		return 0, err
	}
	return (te + tw) / s.KmPerPixel, nil
}

// HeightFromDisparity converts a measured disparity (pixels) to cloud-top
// height (km).
func (s Stereo) HeightFromDisparity(dPx float64) (float64, error) {
	dpk, err := s.DisparityPerKm()
	if err != nil {
		return 0, err
	}
	return dPx / dpk, nil
}

// DisparityFromHeight converts a cloud-top height (km) to the disparity
// (pixels) the stereo pair observes.
func (s Stereo) DisparityFromHeight(hKm float64) (float64, error) {
	dpk, err := s.DisparityPerKm()
	if err != nil {
		return 0, err
	}
	return hKm * dpk, nil
}

// FootprintKm returns the along-scan ground footprint of a pixel viewing
// a point at geocentric angle deltaDeg from the sub-satellite point. The
// scan step subtends a constant angle at the satellite, so the footprint
// is the slant range over the nadir altitude, divided by the cosine of
// the viewing zenith angle (foreshortening):
//
//	footprint = nadirKm · (|PS| / H) / cos θ.
func FootprintKm(nadirKm, deltaDeg float64) (float64, error) {
	if nadirKm <= 0 {
		return 0, fmt.Errorf("geom: nadir footprint must be positive")
	}
	delta := math.Abs(deltaDeg) * math.Pi / 180
	rs := EarthRadiusKm + GeoAltitudeKm
	den := rs*math.Cos(delta) - EarthRadiusKm
	if den <= 0 {
		return 0, fmt.Errorf("geom: point beyond the horizon (Δ = %.1f°)", deltaDeg)
	}
	slant := math.Sqrt(EarthRadiusKm*EarthRadiusKm + rs*rs - 2*EarthRadiusKm*rs*math.Cos(delta))
	tanTheta := rs * math.Sin(delta) / den
	cosTheta := 1 / math.Sqrt(1+tanTheta*tanTheta)
	return nadirKm * (slant / GeoAltitudeKm) / cosTheta, nil
}
