package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTanZenithNadir(t *testing.T) {
	s := Stereo{SatLonEast: 0, SatLonWest: 0, TargetLon: 0, KmPerPixel: 1}
	tz, err := s.TanZenith(0)
	if err != nil {
		t.Fatal(err)
	}
	if tz != 0 {
		t.Fatalf("nadir tan zenith = %v, want 0", tz)
	}
}

func TestTanZenithMonotone(t *testing.T) {
	s := Frederic()
	prev := -1.0
	for d := 5.0; d <= 80; d += 5 {
		s2 := s
		s2.SatLonEast = d
		tz, err := s2.TanZenith(d)
		if err != nil {
			t.Fatalf("Δ=%v: %v", d, err)
		}
		if tz <= prev {
			t.Fatalf("tan zenith not increasing at Δ=%v", d)
		}
		prev = tz
	}
}

func TestTanZenithBeyondHorizon(t *testing.T) {
	s := Frederic()
	if _, err := s.TanZenith(89); err == nil {
		t.Fatal("beyond-horizon geometry accepted")
	}
}

func TestFredericDisparityRoundTrip(t *testing.T) {
	s := Frederic()
	d, err := s.DisparityFromHeight(12) // a tall convective top
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("disparity %v, want positive", d)
	}
	h, err := s.HeightFromDisparity(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-12) > 1e-9 {
		t.Fatalf("round trip height %v, want 12", h)
	}
}

func TestFredericBaselineIsStrong(t *testing.T) {
	// The 135° baseline was chosen for height sensitivity: each km of
	// cloud height should produce well over a pixel of disparity at 1 km
	// sampling (tan 67.5°-ish viewing angles on both sides).
	s := Frederic()
	dpk, err := s.DisparityPerKm()
	if err != nil {
		t.Fatal(err)
	}
	if dpk < 2 {
		t.Fatalf("disparity per km = %v px, expected a strong baseline (> 2)", dpk)
	}
	// And a narrow baseline is much weaker.
	narrow := Stereo{SatLonEast: 10, SatLonWest: -10, KmPerPixel: 1}
	ndpk, err := narrow.DisparityPerKm()
	if err != nil {
		t.Fatal(err)
	}
	if ndpk >= dpk/3 {
		t.Fatalf("20° baseline %v px/km not clearly below 135° baseline %v", ndpk, dpk)
	}
}

func TestDisparityPerKmValidation(t *testing.T) {
	s := Frederic()
	s.KmPerPixel = 0
	if _, err := s.DisparityPerKm(); err == nil {
		t.Fatal("zero sampling accepted")
	}
}

func TestFootprintPaperNumbers(t *testing.T) {
	// §5.1: ≈1 km at image center, ≈4 km near the borders. A 512-px
	// region roughly centered on the storm spans tens of degrees; the
	// border pixels sit at large geocentric angles. Check 1 km at nadir
	// and ≈4× growth by Δ ≈ 60°.
	f0, err := FootprintKm(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f0-1) > 1e-9 {
		t.Fatalf("nadir footprint %v, want 1", f0)
	}
	f65, err := FootprintKm(1, 65)
	if err != nil {
		t.Fatal(err)
	}
	if f65 < 3.2 || f65 > 6 {
		t.Fatalf("footprint at Δ=65° is %.2f km, want ≈4", f65)
	}
	// Monotone growth toward the limb.
	prev := 0.0
	for d := 0.0; d <= 70; d += 10 {
		f, err := FootprintKm(1, d)
		if err != nil {
			t.Fatal(err)
		}
		if f <= prev {
			t.Fatalf("footprint not growing at Δ=%v", d)
		}
		prev = f
	}
}

func TestFootprintValidation(t *testing.T) {
	if _, err := FootprintKm(0, 10); err == nil {
		t.Fatal("zero nadir footprint accepted")
	}
	if _, err := FootprintKm(1, 88); err == nil {
		t.Fatal("beyond-horizon footprint accepted")
	}
}

// Property: height↔disparity is a linear bijection for any valid geometry.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(hRaw uint8, baseRaw uint8) bool {
		h := float64(hRaw%20) + 0.5
		base := 10 + float64(baseRaw%60) // 10..70° per side
		s := Stereo{SatLonEast: base, SatLonWest: -base, KmPerPixel: 1}
		d, err := s.DisparityFromHeight(h)
		if err != nil {
			return false
		}
		back, err := s.HeightFromDisparity(d)
		if err != nil {
			return false
		}
		return math.Abs(back-h) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
