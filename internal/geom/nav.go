package geom

import (
	"fmt"
	"math"
)

// Nav is a geostationary imaging navigation model: the transform between
// sensor scan angles and geographic coordinates that McIDAS "nav blocks"
// encode and that real cloud-wind production needs to map pixel
// displacements onto the Earth. The satellite sits over SatLon on the
// equator at the geostationary radius; the sensor's optical axis points
// at the sub-satellite point.
type Nav struct {
	SatLon float64 // sub-satellite longitude, degrees
}

// sat returns the satellite position in an Earth-centered frame whose
// x-axis points at the sub-satellite point and z-axis at the north pole.
func (n Nav) satRadius() float64 { return EarthRadiusKm + GeoAltitudeKm }

// ToScanAngles converts geographic coordinates (geocentric degrees) to
// sensor scan angles (alpha: east-west, beta: north-south, radians).
// It fails for points on the far side of the Earth.
func (n Nav) ToScanAngles(latDeg, lonDeg float64) (alpha, beta float64, err error) {
	phi := latDeg * math.Pi / 180
	dlam := (lonDeg - n.SatLon) * math.Pi / 180
	px := EarthRadiusKm * math.Cos(phi) * math.Cos(dlam)
	py := EarthRadiusKm * math.Cos(phi) * math.Sin(dlam)
	pz := EarthRadiusKm * math.Sin(phi)
	// Visibility: the point must face the satellite (P·(S−P) > 0 with S
	// on the +x axis reduces to px > R²/rs).
	if px <= EarthRadiusKm*EarthRadiusKm/n.satRadius() {
		return 0, 0, fmt.Errorf("geom: point (%.2f, %.2f) not visible from %.1f°",
			latDeg, lonDeg, n.SatLon)
	}
	vx := px - n.satRadius()
	vy := py
	vz := pz
	alpha = math.Atan2(vy, -vx)
	beta = math.Asin(vz / math.Sqrt(vx*vx+vy*vy+vz*vz))
	return alpha, beta, nil
}

// ToLatLon converts sensor scan angles back to geographic coordinates.
// It fails with a "space look" error when the ray misses the Earth.
func (n Nav) ToLatLon(alpha, beta float64) (latDeg, lonDeg float64, err error) {
	// Ray from the satellite: d = (−cosβ·cosα, cosβ·sinα, sinβ).
	dx := -math.Cos(beta) * math.Cos(alpha)
	dy := math.Cos(beta) * math.Sin(alpha)
	dz := math.Sin(beta)
	rs := n.satRadius()
	// |S + t·d|² = R² with S = (rs, 0, 0).
	bHalf := rs * dx
	c := rs*rs - EarthRadiusKm*EarthRadiusKm
	disc := bHalf*bHalf - c
	if disc < 0 {
		return 0, 0, fmt.Errorf("geom: space look (α=%.4f, β=%.4f misses the Earth)", alpha, beta)
	}
	t := -bHalf - math.Sqrt(disc) // near-side intersection
	if t <= 0 {
		return 0, 0, fmt.Errorf("geom: ray does not reach the Earth")
	}
	px := rs + t*dx
	py := t * dy
	pz := t * dz
	latDeg = math.Asin(pz/EarthRadiusKm) * 180 / math.Pi
	lonDeg = n.SatLon + math.Atan2(py, px)*180/math.Pi
	return latDeg, lonDeg, nil
}

// GroundDistanceKm returns the great-circle distance between two
// geographic points — used to convert tracked pixel displacements into
// ground distances for wind speeds.
func GroundDistanceKm(lat1, lon1, lat2, lon2 float64) float64 {
	p1 := lat1 * math.Pi / 180
	p2 := lat2 * math.Pi / 180
	dl := (lon2 - lon1) * math.Pi / 180
	// Haversine.
	s := math.Sin((p2 - p1) / 2)
	t := math.Sin(dl / 2)
	h := s*s + math.Cos(p1)*math.Cos(p2)*t*t
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// EarthEdgeAngle returns the scan angle (radians) at which the Earth's
// limb appears: asin(R / (R+H)) ≈ 8.7° for the geostationary orbit.
func EarthEdgeAngle() float64 {
	return math.Asin(EarthRadiusKm / (EarthRadiusKm + GeoAltitudeKm))
}
