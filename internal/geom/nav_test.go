package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNavNadir(t *testing.T) {
	n := Nav{SatLon: -75}
	a, b, err := n.ToScanAngles(0, -75)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a) > 1e-12 || math.Abs(b) > 1e-12 {
		t.Fatalf("nadir scan angles (%v, %v), want (0, 0)", a, b)
	}
	lat, lon, err := n.ToLatLon(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lat) > 1e-9 || math.Abs(lon+75) > 1e-9 {
		t.Fatalf("nadir inverse (%v, %v), want (0, -75)", lat, lon)
	}
}

func TestNavRoundTrip(t *testing.T) {
	n := Nav{SatLon: 0}
	for _, pt := range [][2]float64{{25, 10}, {-30, -20}, {0, 40}, {55, 5}, {10, -50}} {
		a, b, err := n.ToScanAngles(pt[0], pt[1])
		if err != nil {
			t.Fatalf("point %v: %v", pt, err)
		}
		lat, lon, err := n.ToLatLon(a, b)
		if err != nil {
			t.Fatalf("point %v inverse: %v", pt, err)
		}
		if math.Abs(lat-pt[0]) > 1e-6 || math.Abs(lon-pt[1]) > 1e-6 {
			t.Fatalf("round trip %v → (%v, %v)", pt, lat, lon)
		}
	}
}

func TestNavFarSideRejected(t *testing.T) {
	n := Nav{SatLon: 0}
	if _, _, err := n.ToScanAngles(0, 180); err == nil {
		t.Fatal("antipode accepted")
	}
	if _, _, err := n.ToScanAngles(0, 100); err == nil {
		t.Fatal("beyond-limb longitude accepted")
	}
}

func TestNavSpaceLook(t *testing.T) {
	n := Nav{SatLon: 0}
	edge := EarthEdgeAngle()
	if _, _, err := n.ToLatLon(edge*1.05, 0); err == nil {
		t.Fatal("space look accepted")
	}
	if _, _, err := n.ToLatLon(edge*0.95, 0); err != nil {
		t.Fatalf("near-limb look rejected: %v", err)
	}
}

func TestEarthEdgeAngle(t *testing.T) {
	deg := EarthEdgeAngle() * 180 / math.Pi
	if deg < 8.5 || deg > 9.0 {
		t.Fatalf("earth edge at %v°, want ≈8.7°", deg)
	}
}

func TestGroundDistance(t *testing.T) {
	// One degree of longitude at the equator ≈ 111.3 km.
	d := GroundDistanceKm(0, 0, 0, 1)
	if d < 110 || d < 0 || d > 112.5 {
		t.Fatalf("1° equatorial distance %v km", d)
	}
	if GroundDistanceKm(12, 34, 12, 34) != 0 {
		t.Fatal("zero distance broken")
	}
	// Symmetry.
	if math.Abs(GroundDistanceKm(10, 20, 30, 40)-GroundDistanceKm(30, 40, 10, 20)) > 1e-9 {
		t.Fatal("distance not symmetric")
	}
}

// Property: round trip holds across the visible disk.
func TestPropertyNavRoundTrip(t *testing.T) {
	n := Nav{SatLon: -100}
	f := func(latRaw, lonRaw int16) bool {
		lat := float64(latRaw%60) * 0.9
		lon := -100 + float64(lonRaw%60)*0.9
		a, b, err := n.ToScanAngles(lat, lon)
		if err != nil {
			return true // outside the guaranteed-visible cone; fine
		}
		rlat, rlon, err := n.ToLatLon(a, b)
		if err != nil {
			return false
		}
		return math.Abs(rlat-lat) < 1e-6 && math.Abs(rlon-lon) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
