package grid

import "math"

// DamageReport counts the pixel-level damage patterns real satellite
// feeds carry: non-finite samples (NaN/Inf from calibration glitches or
// deliberate missing-data markers) and dead scanlines (rows left constant
// by a dropped or stuck detector sweep). It is the raw material of
// core.QualityGate's accept/reject decision.
type DamageReport struct {
	Pixels    int // total samples scanned
	BadPixels int // NaN or ±Inf samples
	Lines     int // total rows scanned
	DeadLines int // rows whose finite samples are all identical (W >= 2)
}

// BadFrac is the fraction of non-finite samples.
func (r DamageReport) BadFrac() float64 {
	if r.Pixels == 0 {
		return 0
	}
	return float64(r.BadPixels) / float64(r.Pixels)
}

// DeadLineFrac is the fraction of dead rows.
func (r DamageReport) DeadLineFrac() float64 {
	if r.Lines == 0 {
		return 0
	}
	return float64(r.DeadLines) / float64(r.Lines)
}

// Damaged reports whether any damage was found at all.
func (r DamageReport) Damaged() bool { return r.BadPixels > 0 || r.DeadLines > 0 }

// ScanDamage scans the grid for non-finite samples and dead scanlines.
// A row counts as dead only when it is at least two samples wide, fully
// finite, and every sample equals the first — the signature of a dropped
// or repeated detector sweep rather than smooth imagery.
func ScanDamage(g *Grid) DamageReport {
	r := DamageReport{Pixels: g.W * g.H, Lines: g.H}
	for y := 0; y < g.H; y++ {
		row := g.Row(y)
		bad := 0
		dead := len(row) >= 2
		for _, v := range row {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				bad++
				dead = false
			} else if v != row[0] {
				dead = false
			}
		}
		r.BadPixels += bad
		if dead && bad == 0 {
			r.DeadLines++
		}
	}
	return r
}
