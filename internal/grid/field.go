package grid

import "math"

// VectorField is a dense 2-D displacement field (U, V) in pixels, the
// output format of every motion estimator in this repository: the SMA
// tracker, the Horn–Schunck baseline and block matching.
type VectorField struct {
	U, V *Grid
}

// NewVectorField returns a zero displacement field of the given size.
func NewVectorField(w, h int) *VectorField {
	return &VectorField{U: New(w, h), V: New(w, h)}
}

// Bounds reports the field dimensions.
func (f *VectorField) Bounds() (w, h int) { return f.U.W, f.U.H }

// At returns the displacement at (x, y).
func (f *VectorField) At(x, y int) (u, v float32) {
	return f.U.At(x, y), f.V.At(x, y)
}

// Set stores displacement (u, v) at (x, y).
func (f *VectorField) Set(x, y int, u, v float32) {
	f.U.Set(x, y, u)
	f.V.Set(x, y, v)
}

// Clone returns a deep copy of the field.
func (f *VectorField) Clone() *VectorField {
	return &VectorField{U: f.U.Clone(), V: f.V.Clone()}
}

// RMSE returns the root-mean-square endpoint error against a reference
// field: sqrt(mean(|f - ref|²)) in pixels.
func (f *VectorField) RMSE(ref *VectorField) float64 {
	var s float64
	n := len(f.U.Data)
	for i := 0; i < n; i++ {
		du := float64(f.U.Data[i] - ref.U.Data[i])
		dv := float64(f.V.Data[i] - ref.V.Data[i])
		s += du*du + dv*dv
	}
	return math.Sqrt(s / float64(n))
}

// RMSEAt returns the RMS endpoint error over a sparse set of sample points,
// the comparison mode the paper uses against 32 manually tracked wind barbs.
func (f *VectorField) RMSEAt(ref *VectorField, pts []Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	var s float64
	for _, p := range pts {
		u, v := f.At(p.X, p.Y)
		ru, rv := ref.At(p.X, p.Y)
		du := float64(u - ru)
		dv := float64(v - rv)
		s += du*du + dv*dv
	}
	return math.Sqrt(s / float64(len(pts)))
}

// MeanMagnitude returns the mean displacement magnitude in pixels.
func (f *VectorField) MeanMagnitude() float64 {
	var s float64
	n := len(f.U.Data)
	for i := 0; i < n; i++ {
		u := float64(f.U.Data[i])
		v := float64(f.V.Data[i])
		s += math.Hypot(u, v)
	}
	return s / float64(n)
}

// Equal reports whether two fields are sample-for-sample identical — used to
// check that the parallel (MasPar) implementation obtains exactly the same
// result as the sequential baseline, as the paper reports.
func (f *VectorField) Equal(o *VectorField) bool {
	return f.U.Equal(o.U) && f.V.Equal(o.V)
}

// Median3 returns the field with each component median-filtered 3×3
// (motion-field post-processing; paper §6 future work).
func (f *VectorField) Median3() *VectorField {
	return &VectorField{U: f.U.Median3(), V: f.V.Median3()}
}

// Point is an integer pixel coordinate.
type Point struct{ X, Y int }

// Warp resamples src by the field: out(x,y) = src(x+u, y+v) with bilinear
// interpolation. With a forward motion field (t→t+1 displacements) this
// pulls the t+1 image back into the t frame for verification.
func (f *VectorField) Warp(src *Grid) *Grid {
	w, h := f.Bounds()
	out := New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u, v := f.At(x, y)
			out.Data[y*w+x] = src.Bilinear(float64(x)+float64(u), float64(y)+float64(v))
		}
	}
	return out
}

// Scale multiplies every displacement by s (in place) and returns f.
func (f *VectorField) Scale(s float32) *VectorField {
	for i := range f.U.Data {
		f.U.Data[i] *= s
		f.V.Data[i] *= s
	}
	return f
}

// AngularError returns the mean angular error (degrees) between f and a
// reference field — the standard optical-flow accuracy metric of the
// era (Barron, Fleet & Beauchamp 1994): the angle between the
// space-time direction vectors (u, v, 1) of estimate and truth.
func (f *VectorField) AngularError(ref *VectorField) float64 {
	var sum float64
	n := len(f.U.Data)
	for i := 0; i < n; i++ {
		u1 := float64(f.U.Data[i])
		v1 := float64(f.V.Data[i])
		u2 := float64(ref.U.Data[i])
		v2 := float64(ref.V.Data[i])
		dot := u1*u2 + v1*v2 + 1
		m1 := math.Sqrt(u1*u1 + v1*v1 + 1)
		m2 := math.Sqrt(u2*u2 + v2*v2 + 1)
		c := dot / (m1 * m2)
		if c > 1 {
			c = 1
		} else if c < -1 {
			c = -1
		}
		sum += math.Acos(c)
	}
	return sum / float64(n) * 180 / math.Pi
}
