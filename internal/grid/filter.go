package grid

import "math"

// Convolve1DX convolves g with the 1-D kernel k along x (edge-clamped).
// The kernel is centered: k has odd length and k[len(k)/2] multiplies the
// pixel itself.
func (g *Grid) Convolve1DX(k []float32) *Grid {
	r := len(k) / 2
	out := New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var s float32
			for i, kv := range k {
				s += kv * g.At(x+i-r, y)
			}
			out.Data[y*g.W+x] = s
		}
	}
	return out
}

// Convolve1DY convolves g with the 1-D kernel k along y (edge-clamped).
func (g *Grid) Convolve1DY(k []float32) *Grid {
	r := len(k) / 2
	out := New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			var s float32
			for i, kv := range k {
				s += kv * g.At(x, y+i-r)
			}
			out.Data[y*g.W+x] = s
		}
	}
	return out
}

// GaussianKernel returns a normalized 1-D Gaussian kernel with the given
// standard deviation, truncated at ±3σ (minimum radius 1).
func GaussianKernel(sigma float64) []float32 {
	if sigma <= 0 {
		return []float32{1}
	}
	r := int(math.Ceil(3 * sigma))
	if r < 1 {
		r = 1
	}
	k := make([]float32, 2*r+1)
	var sum float64
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		k[i+r] = float32(v)
		sum += v
	}
	for i := range k {
		k[i] = float32(float64(k[i]) / sum)
	}
	return k
}

// GaussianBlur returns g smoothed by a separable Gaussian of the given σ.
func (g *Grid) GaussianBlur(sigma float64) *Grid {
	k := GaussianKernel(sigma)
	return g.Convolve1DX(k).Convolve1DY(k)
}

// BoxBlur returns g smoothed by an (2r+1)×(2r+1) box filter.
func (g *Grid) BoxBlur(r int) *Grid {
	if r <= 0 {
		return g.Clone()
	}
	k := make([]float32, 2*r+1)
	for i := range k {
		k[i] = 1 / float32(len(k))
	}
	return g.Convolve1DX(k).Convolve1DY(k)
}

// Median3 returns g filtered with a 3×3 median — the motion-field
// post-processing extension mentioned in the paper's future work.
func (g *Grid) Median3() *Grid {
	out := New(g.W, g.H)
	var win [9]float32
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			i := 0
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					win[i] = g.At(x+dx, y+dy)
					i++
				}
			}
			out.Data[y*g.W+x] = median9(win)
		}
	}
	return out
}

// median9 returns the median of 9 values via insertion sort on a copy.
func median9(w [9]float32) float32 {
	for i := 1; i < 9; i++ {
		v := w[i]
		j := i - 1
		for j >= 0 && w[j] > v {
			w[j+1] = w[j]
			j--
		}
		w[j+1] = v
	}
	return w[4]
}
