package grid

import (
	"bytes"
	"fmt"
	"testing"
)

// validPGM renders a deterministic w×h image through WritePGM — a
// genuine 8-bit corpus entry, not a hand-typed approximation.
func validPGM(w, h int) []byte {
	g := New(w, h)
	for i := range g.Data {
		g.Data[i] = float32(i % 251)
	}
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// validPGM16 hand-assembles a 16-bit (maxval 65535) P5 document, which
// WritePGM never emits.
func validPGM16(w, h int) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "P5\n%d %d\n65535\n", w, h)
	for i := 0; i < w*h; i++ {
		v := uint16(i * 257)
		buf.WriteByte(byte(v >> 8))
		buf.WriteByte(byte(v))
	}
	return buf.Bytes()
}

// FuzzReadPGM exercises the PGM parser against malformed input: it must
// return an error or a well-formed grid, never panic or allocate absurdly.
func FuzzReadPGM(f *testing.F) {
	// Seed with valid and near-valid documents.
	f.Add([]byte("P5\n2 2\n255\nabcd"))
	f.Add([]byte("P2\n2 2\n255\n0 1 2 3"))
	f.Add([]byte("P5\n2 2\n65535\naabbccdd"))
	f.Add([]byte("P5\n# comment\n2 2\n255\nabcd"))
	f.Add([]byte("P7\n2 2\n255\nabcd"))
	f.Add([]byte("P5\n999999 999999\n255\n"))
	// Genuine 8- and 16-bit corpora plus their truncations, so the fuzzer
	// starts from the shapes the incremental row decoder actually walks.
	full8 := validPGM(7, 5)
	full16 := validPGM16(6, 4)
	f.Add(full8)
	f.Add(full16)
	f.Add(full8[:len(full8)-3])                // body cut mid-row
	f.Add(full16[:len(full16)-1])              // body cut mid-sample
	f.Add([]byte("P5\n4096 4096\n255\nshort")) // header claims far more than the input holds
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadPGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g.W <= 0 || g.H <= 0 || len(g.Data) != g.W*g.H {
			t.Fatalf("parser returned malformed grid %dx%d len %d", g.W, g.H, len(g.Data))
		}
	})
}
