package grid

import (
	"bytes"
	"testing"
)

// FuzzReadPGM exercises the PGM parser against malformed input: it must
// return an error or a well-formed grid, never panic or allocate absurdly.
func FuzzReadPGM(f *testing.F) {
	// Seed with valid and near-valid documents.
	f.Add([]byte("P5\n2 2\n255\nabcd"))
	f.Add([]byte("P2\n2 2\n255\n0 1 2 3"))
	f.Add([]byte("P5\n2 2\n65535\naabbccdd"))
	f.Add([]byte("P5\n# comment\n2 2\n255\nabcd"))
	f.Add([]byte("P7\n2 2\n255\nabcd"))
	f.Add([]byte("P5\n999999 999999\n255\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadPGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if g.W <= 0 || g.H <= 0 || len(g.Data) != g.W*g.H {
			t.Fatalf("parser returned malformed grid %dx%d len %d", g.W, g.H, len(g.Data))
		}
	})
}
