// Package grid provides the dense 2-D raster type underlying all imagery in
// the SMA reproduction: satellite intensity images, stereo disparity maps,
// cloud-top height surfaces and per-pixel scalar fields such as the
// intensity-surface discriminant.
//
// A Grid stores float32 samples in row-major order. Out-of-bounds reads are
// served by edge clamping (the convention the paper's neighborhood operators
// need near image borders); writes are always bounds-checked.
package grid

import (
	"fmt"
	"math"
)

// Grid is a dense W×H raster of float32 samples in row-major order.
// The zero value is an empty grid; use New or FromSlice to construct one.
type Grid struct {
	W, H int
	Data []float32
}

// New returns a zero-filled grid of the given dimensions.
// It panics if either dimension is non-positive.
func New(w, h int) *Grid {
	if w <= 0 || h <= 0 {
		//smavet:allow panicfree -- constructor invariant: non-positive dims are a programmer error, like a bad make() size
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", w, h))
	}
	return &Grid{W: w, H: h, Data: make([]float32, w*h)}
}

// FromSlice wraps an existing row-major sample slice in a Grid.
// The slice is used directly (not copied); len(data) must equal w*h.
func FromSlice(w, h int, data []float32) *Grid {
	if len(data) != w*h {
		//smavet:allow panicfree -- constructor invariant: length mismatch is a programmer error, like a slice bounds fault
		panic(fmt.Sprintf("grid: FromSlice length %d != %d*%d", len(data), w, h))
	}
	return &Grid{W: w, H: h, Data: data}
}

// Clone returns a deep copy of g.
func (g *Grid) Clone() *Grid {
	out := New(g.W, g.H)
	copy(out.Data, g.Data)
	return out
}

// Bounds reports the grid dimensions.
func (g *Grid) Bounds() (w, h int) { return g.W, g.H }

// In reports whether (x, y) lies inside the grid.
func (g *Grid) In(x, y int) bool {
	return x >= 0 && x < g.W && y >= 0 && y < g.H
}

// At returns the sample at (x, y) with edge clamping: coordinates outside
// the grid are clamped to the nearest border pixel.
func (g *Grid) At(x, y int) float32 {
	if x < 0 {
		x = 0
	} else if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.H {
		y = g.H - 1
	}
	return g.Data[y*g.W+x]
}

// AtUnchecked returns the sample at (x, y) without bounds handling.
// The caller must guarantee 0 <= x < W and 0 <= y < H.
func (g *Grid) AtUnchecked(x, y int) float32 { return g.Data[y*g.W+x] }

// Set stores v at (x, y). Writes outside the grid are ignored.
func (g *Grid) Set(x, y int, v float32) {
	if !g.In(x, y) {
		return
	}
	g.Data[y*g.W+x] = v
}

// Row returns the y-th row as a subslice of the backing store.
func (g *Grid) Row(y int) []float32 {
	if y < 0 || y >= g.H {
		//smavet:allow panicfree -- hot-path bounds assertion, equivalent to the slice index fault it prevents
		panic(fmt.Sprintf("grid: row %d out of range [0,%d)", y, g.H))
	}
	return g.Data[y*g.W : (y+1)*g.W]
}

// Fill sets every sample to v.
func (g *Grid) Fill(v float32) {
	for i := range g.Data {
		g.Data[i] = v
	}
}

// Apply replaces every sample s with f(s).
func (g *Grid) Apply(f func(float32) float32) {
	for i, v := range g.Data {
		g.Data[i] = f(v)
	}
}

// ApplyXY replaces every sample with f(x, y, s).
func (g *Grid) ApplyXY(f func(x, y int, v float32) float32) {
	i := 0
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			g.Data[i] = f(x, y, g.Data[i])
			i++
		}
	}
}

// AddScaled accumulates g += s*o elementwise. Grids must match in size.
func (g *Grid) AddScaled(o *Grid, s float32) {
	g.mustMatch(o)
	for i := range g.Data {
		g.Data[i] += s * o.Data[i]
	}
}

// Sub returns a new grid g - o.
func (g *Grid) Sub(o *Grid) *Grid {
	g.mustMatch(o)
	out := New(g.W, g.H)
	for i := range g.Data {
		out.Data[i] = g.Data[i] - o.Data[i]
	}
	return out
}

func (g *Grid) mustMatch(o *Grid) {
	if g.W != o.W || g.H != o.H {
		panic(fmt.Sprintf("grid: size mismatch %dx%d vs %dx%d", g.W, g.H, o.W, o.H))
	}
}

// MinMax returns the smallest and largest sample values.
// For an all-NaN grid it returns (+Inf, -Inf)-like extremes untouched by NaNs.
func (g *Grid) MinMax() (min, max float32) {
	min = float32(math.Inf(1))
	max = float32(math.Inf(-1))
	for _, v := range g.Data {
		if math.IsNaN(float64(v)) {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Normalize linearly rescales samples to [lo, hi]. A constant grid maps to lo.
func (g *Grid) Normalize(lo, hi float32) {
	min, max := g.MinMax()
	span := max - min
	if span == 0 {
		g.Fill(lo)
		return
	}
	scale := (hi - lo) / span
	for i, v := range g.Data {
		g.Data[i] = lo + (v-min)*scale
	}
}

// Mean returns the arithmetic mean of all samples.
func (g *Grid) Mean() float64 {
	var s float64
	for _, v := range g.Data {
		s += float64(v)
	}
	return s / float64(len(g.Data))
}

// RMSDiff returns the root-mean-square difference between g and o.
func (g *Grid) RMSDiff(o *Grid) float64 {
	g.mustMatch(o)
	var s float64
	for i := range g.Data {
		d := float64(g.Data[i] - o.Data[i])
		s += d * d
	}
	return math.Sqrt(s / float64(len(g.Data)))
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func (g *Grid) MaxAbsDiff(o *Grid) float64 {
	g.mustMatch(o)
	var m float64
	for i := range g.Data {
		d := math.Abs(float64(g.Data[i] - o.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// Bilinear samples the grid at fractional coordinates with bilinear
// interpolation; coordinates outside the grid are edge-clamped.
func (g *Grid) Bilinear(x, y float64) float32 {
	if x < 0 {
		x = 0
	} else if x > float64(g.W-1) {
		x = float64(g.W - 1)
	}
	if y < 0 {
		y = 0
	} else if y > float64(g.H-1) {
		y = float64(g.H - 1)
	}
	x0 := int(x)
	y0 := int(y)
	x1 := x0 + 1
	y1 := y0 + 1
	if x1 >= g.W {
		x1 = g.W - 1
	}
	if y1 >= g.H {
		y1 = g.H - 1
	}
	fx := float32(x - float64(x0))
	fy := float32(y - float64(y0))
	v00 := g.Data[y0*g.W+x0]
	v10 := g.Data[y0*g.W+x1]
	v01 := g.Data[y1*g.W+x0]
	v11 := g.Data[y1*g.W+x1]
	top := v00 + fx*(v10-v00)
	bot := v01 + fx*(v11-v01)
	return top + fy*(bot-top)
}

// Gradient returns central-difference partial derivatives (∂/∂x, ∂/∂y)
// of the grid, edge-clamped at the borders.
func (g *Grid) Gradient() (gx, gy *Grid) {
	gx = New(g.W, g.H)
	gy = New(g.W, g.H)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			gx.Data[y*g.W+x] = (g.At(x+1, y) - g.At(x-1, y)) / 2
			gy.Data[y*g.W+x] = (g.At(x, y+1) - g.At(x, y-1)) / 2
		}
	}
	return gx, gy
}

// Crop returns a copy of the w×h sub-rectangle anchored at (x0, y0).
// Pixels sampled outside g are edge-clamped.
func (g *Grid) Crop(x0, y0, w, h int) *Grid {
	out := New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Data[y*w+x] = g.At(x0+x, y0+y)
		}
	}
	return out
}

// Equal reports whether the grids have identical dimensions and samples.
func (g *Grid) Equal(o *Grid) bool {
	if g.W != o.W || g.H != o.H {
		return false
	}
	for i := range g.Data {
		if g.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}
