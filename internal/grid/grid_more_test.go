package grid

import (
	"bytes"
	"math"
	"testing"
)

func TestConvolve1DDirectionality(t *testing.T) {
	// An asymmetric kernel applied along x must not mix rows, and along y
	// must not mix columns.
	g := New(5, 5)
	g.Set(2, 2, 1)
	k := []float32{0, 0, 1} // picks the +1 neighbor (k[r+1])
	cx := g.Convolve1DX(k)
	if cx.At(1, 2) != 1 {
		t.Fatalf("x-convolution misplaced the impulse: %v", cx.Data)
	}
	if cx.At(2, 1) != 0 || cx.At(2, 3) != 0 {
		t.Fatal("x-convolution leaked across rows")
	}
	cy := g.Convolve1DY(k)
	if cy.At(2, 1) != 1 {
		t.Fatalf("y-convolution misplaced the impulse")
	}
}

func TestConvolveEdgeClamping(t *testing.T) {
	g := New(3, 1)
	copy(g.Data, []float32{1, 2, 3})
	k := []float32{0.5, 0, 0.5} // average of the two neighbors
	c := g.Convolve1DX(k)
	// At x=0 the left neighbor clamps to itself: (1+2)/2 = 1.5.
	if c.At(0, 0) != 1.5 {
		t.Fatalf("edge value %v, want 1.5", c.At(0, 0))
	}
}

func TestApplyXYVisitsRowMajor(t *testing.T) {
	g := New(3, 2)
	i := 0
	g.ApplyXY(func(x, y int, _ float32) float32 {
		want := [][2]int{{0, 0}, {1, 0}, {2, 0}, {0, 1}, {1, 1}, {2, 1}}[i]
		if x != want[0] || y != want[1] {
			t.Fatalf("visit %d at (%d,%d), want %v", i, x, y, want)
		}
		i++
		return 0
	})
	if i != 6 {
		t.Fatalf("visited %d pixels", i)
	}
}

func TestCropEntirelyOutsideClamps(t *testing.T) {
	g := New(4, 4)
	g.Set(3, 3, 9)
	c := g.Crop(10, 10, 2, 2)
	for _, v := range c.Data {
		if v != 9 {
			t.Fatalf("far crop value %v, want clamped 9", v)
		}
	}
}

func TestAddScaled(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	a.Fill(1)
	b.Fill(3)
	a.AddScaled(b, 2)
	for _, v := range a.Data {
		if v != 7 {
			t.Fatalf("AddScaled value %v, want 7", v)
		}
	}
}

func TestSubAndMismatchPanic(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	b.Fill(5)
	d := a.Sub(b)
	if d.Data[0] != -5 {
		t.Fatalf("Sub value %v", d.Data[0])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	a.Sub(New(3, 2))
}

func TestMeanOfKnownValues(t *testing.T) {
	g := New(2, 2)
	copy(g.Data, []float32{1, 2, 3, 4})
	if m := g.Mean(); math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestVectorFieldMeanMagnitude(t *testing.T) {
	f := NewVectorField(2, 2)
	f.U.Fill(3)
	f.V.Fill(4)
	if m := f.MeanMagnitude(); math.Abs(m-5) > 1e-9 {
		t.Fatalf("MeanMagnitude = %v", m)
	}
}

func TestVectorFieldMedian3(t *testing.T) {
	f := NewVectorField(5, 5)
	f.U.Fill(1)
	f.Set(2, 2, 50, 0)
	m := f.Median3()
	if u, _ := m.At(2, 2); u != 1 {
		t.Fatalf("median did not remove impulse: %v", u)
	}
	if u, _ := f.At(2, 2); u != 50 {
		t.Fatal("Median3 mutated its input")
	}
}

func TestPGM16BitRoundTrip(t *testing.T) {
	// Write a synthetic 16-bit P5 body and parse it.
	var buf bytes.Buffer
	buf.WriteString("P5\n2 2\n65535\n")
	for _, v := range []uint16{0, 256, 1000, 65535} {
		buf.WriteByte(byte(v >> 8))
		buf.WriteByte(byte(v))
	}
	g, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 256, 1000, 65535}
	for i, w := range want {
		if g.Data[i] != w {
			t.Fatalf("16-bit sample %d = %v, want %v", i, g.Data[i], w)
		}
	}
}

func TestReadPGMRejectsBadHeader(t *testing.T) {
	for _, src := range []string{
		"P5\n0 4\n255\n",   // zero width
		"P5\n4 4\n70000\n", // maxval too large
		"P5\n4 x\n255\n",   // non-numeric
		"P2\n1 1\n255\nzz", // bad ASCII sample
	} {
		if _, err := ReadPGM(bytes.NewBufferString(src)); err == nil {
			t.Errorf("header %q accepted", src)
		}
	}
}

func TestDownsample2OddDimensions(t *testing.T) {
	g := New(9, 7)
	d := g.Downsample2()
	if d.W != 4 || d.H != 3 {
		t.Fatalf("downsampled to %dx%d", d.W, d.H)
	}
}

func TestGaussianKernelZeroSigma(t *testing.T) {
	k := GaussianKernel(0)
	if len(k) != 1 || k[0] != 1 {
		t.Fatalf("σ=0 kernel %v, want identity", k)
	}
}

func TestBoxBlurZeroRadiusClones(t *testing.T) {
	g := New(3, 3)
	g.Fill(2)
	b := g.BoxBlur(0)
	if !b.Equal(g) {
		t.Fatal("r=0 box blur changed values")
	}
	b.Set(0, 0, 9)
	if g.At(0, 0) == 9 {
		t.Fatal("r=0 box blur aliased the input")
	}
}

func TestAngularErrorIdenticalIsZero(t *testing.T) {
	f := NewVectorField(4, 4)
	f.U.Fill(2)
	f.V.Fill(-1)
	if ae := f.AngularError(f.Clone()); ae > 1e-9 {
		t.Fatalf("self angular error %v", ae)
	}
}

func TestAngularErrorKnownAngle(t *testing.T) {
	// (1,0,1) vs (0,1,1): cos = 1/2 → 60°.
	a := NewVectorField(2, 2)
	b := NewVectorField(2, 2)
	a.U.Fill(1)
	b.V.Fill(1)
	if ae := a.AngularError(b); math.Abs(ae-60) > 1e-6 {
		t.Fatalf("angular error %v, want 60", ae)
	}
}

func TestAngularErrorPenalizesMagnitude(t *testing.T) {
	// The space-time formulation penalizes magnitude errors too: (2,0)
	// vs (1,0) has a nonzero angle.
	a := NewVectorField(2, 2)
	b := NewVectorField(2, 2)
	a.U.Fill(2)
	b.U.Fill(1)
	if ae := a.AngularError(b); ae < 5 {
		t.Fatalf("magnitude mismatch angular error %v too small", ae)
	}
}
