package grid

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	g := New(7, 3)
	if g.W != 7 || g.H != 3 {
		t.Fatalf("dims = %dx%d, want 7x3", g.W, g.H)
	}
	for i, v := range g.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromSliceWrapsWithoutCopy(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	g := FromSlice(3, 2, d)
	g.Set(0, 0, 42)
	if d[0] != 42 {
		t.Fatal("FromSlice copied the slice; want aliasing")
	}
}

func TestFromSlicePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	FromSlice(2, 2, make([]float32, 3))
}

func TestAtEdgeClamping(t *testing.T) {
	g := New(3, 3)
	g.Set(0, 0, 1)
	g.Set(2, 2, 9)
	cases := []struct {
		x, y int
		want float32
	}{
		{-5, -5, 1}, {-1, 0, 1}, {0, -1, 1},
		{5, 5, 9}, {3, 2, 9}, {2, 3, 9},
	}
	for _, c := range cases {
		if got := g.At(c.x, c.y); got != c.want {
			t.Errorf("At(%d,%d) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestSetIgnoresOutOfBounds(t *testing.T) {
	g := New(2, 2)
	g.Set(-1, 0, 5)
	g.Set(0, 2, 5)
	for i, v := range g.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v after OOB writes, want 0", i, v)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(4, 4)
	g.Fill(3)
	c := g.Clone()
	c.Set(1, 1, 99)
	if g.At(1, 1) != 3 {
		t.Fatal("Clone shares backing store")
	}
}

func TestRow(t *testing.T) {
	g := New(3, 2)
	g.Set(1, 1, 7)
	if got := g.Row(1)[1]; got != 7 {
		t.Fatalf("Row(1)[1] = %v, want 7", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Row(2) on height-2 grid did not panic")
		}
	}()
	g.Row(2)
}

func TestMinMaxNormalize(t *testing.T) {
	g := New(2, 2)
	copy(g.Data, []float32{-1, 0, 3, 2})
	min, max := g.MinMax()
	if min != -1 || max != 3 {
		t.Fatalf("MinMax = %v,%v want -1,3", min, max)
	}
	g.Normalize(0, 1)
	min, max = g.MinMax()
	if min != 0 || max != 1 {
		t.Fatalf("after Normalize MinMax = %v,%v want 0,1", min, max)
	}
}

func TestNormalizeConstantGrid(t *testing.T) {
	g := New(2, 2)
	g.Fill(5)
	g.Normalize(0, 1)
	for _, v := range g.Data {
		if v != 0 {
			t.Fatalf("constant grid normalized to %v, want 0", v)
		}
	}
}

func TestBilinearInterpolatesExactly(t *testing.T) {
	g := New(2, 2)
	copy(g.Data, []float32{0, 1, 2, 3})
	cases := []struct {
		x, y float64
		want float32
	}{
		{0, 0, 0}, {1, 0, 1}, {0, 1, 2}, {1, 1, 3},
		{0.5, 0, 0.5}, {0, 0.5, 1}, {0.5, 0.5, 1.5},
	}
	for _, c := range cases {
		if got := g.Bilinear(c.x, c.y); math.Abs(float64(got-c.want)) > 1e-6 {
			t.Errorf("Bilinear(%v,%v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestBilinearClampsOutside(t *testing.T) {
	g := New(2, 2)
	copy(g.Data, []float32{0, 1, 2, 3})
	if got := g.Bilinear(-3, -3); got != 0 {
		t.Errorf("Bilinear(-3,-3) = %v, want 0", got)
	}
	if got := g.Bilinear(10, 10); got != 3 {
		t.Errorf("Bilinear(10,10) = %v, want 3", got)
	}
}

func TestGradientOfLinearRamp(t *testing.T) {
	g := New(8, 8)
	g.ApplyXY(func(x, y int, _ float32) float32 { return float32(2*x + 3*y) })
	gx, gy := g.Gradient()
	// Interior pixels see the exact slope; borders are one-sided halves.
	for y := 1; y < 7; y++ {
		for x := 1; x < 7; x++ {
			if v := gx.At(x, y); math.Abs(float64(v-2)) > 1e-6 {
				t.Fatalf("gx(%d,%d) = %v, want 2", x, y, v)
			}
			if v := gy.At(x, y); math.Abs(float64(v-3)) > 1e-6 {
				t.Fatalf("gy(%d,%d) = %v, want 3", x, y, v)
			}
		}
	}
}

func TestCrop(t *testing.T) {
	g := New(4, 4)
	g.ApplyXY(func(x, y int, _ float32) float32 { return float32(y*4 + x) })
	c := g.Crop(1, 1, 2, 2)
	want := []float32{5, 6, 9, 10}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("Crop Data[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestRMSDiffAndMaxAbsDiff(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	b.Fill(2)
	if got := a.RMSDiff(b); math.Abs(got-2) > 1e-9 {
		t.Fatalf("RMSDiff = %v, want 2", got)
	}
	if got := a.MaxAbsDiff(b); got != 2 {
		t.Fatalf("MaxAbsDiff = %v, want 2", got)
	}
}

func TestGaussianKernelNormalized(t *testing.T) {
	for _, sigma := range []float64{0.5, 1, 2.5} {
		k := GaussianKernel(sigma)
		if len(k)%2 == 0 {
			t.Fatalf("σ=%v: even kernel length %d", sigma, len(k))
		}
		var sum float64
		for _, v := range k {
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("σ=%v: kernel sum %v, want 1", sigma, sum)
		}
	}
}

func TestGaussianBlurPreservesConstant(t *testing.T) {
	g := New(9, 9)
	g.Fill(7)
	b := g.GaussianBlur(1.5)
	if d := g.MaxAbsDiff(b); d > 1e-4 {
		t.Fatalf("blur changed constant grid by %v", d)
	}
}

func TestBoxBlurReducesVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := New(32, 32)
	for i := range g.Data {
		g.Data[i] = rng.Float32()
	}
	b := g.BoxBlur(2)
	varOf := func(x *Grid) float64 {
		m := x.Mean()
		var s float64
		for _, v := range x.Data {
			d := float64(v) - m
			s += d * d
		}
		return s / float64(len(x.Data))
	}
	if varOf(b) >= varOf(g) {
		t.Fatal("box blur did not reduce variance of noise")
	}
}

func TestMedian3RemovesImpulse(t *testing.T) {
	g := New(5, 5)
	g.Fill(1)
	g.Set(2, 2, 100)
	m := g.Median3()
	if v := m.At(2, 2); v != 1 {
		t.Fatalf("median at impulse = %v, want 1", v)
	}
}

func TestPyramidLevelsAndSizes(t *testing.T) {
	g := New(64, 64)
	p := NewPyramid(g, 4)
	if len(p.Levels) != 4 {
		t.Fatalf("levels = %d, want 4", len(p.Levels))
	}
	for i, l := range p.Levels {
		want := 64 >> i
		if l.W != want || l.H != want {
			t.Fatalf("level %d is %dx%d, want %dx%d", i, l.W, l.H, want, want)
		}
	}
}

func TestPyramidStopsWhenTooSmall(t *testing.T) {
	g := New(16, 16)
	p := NewPyramid(g, 10)
	last := p.Levels[len(p.Levels)-1]
	if last.W < 4 || last.H < 4 {
		t.Fatalf("pyramid descended to %dx%d", last.W, last.H)
	}
}

func TestUpsample2ScalesValues(t *testing.T) {
	g := New(2, 2)
	g.Fill(3)
	u := g.Upsample2(4, 4, 2)
	for _, v := range u.Data {
		if v != 6 {
			t.Fatalf("upsampled value %v, want 6", v)
		}
	}
}

func TestPGMRoundTrip(t *testing.T) {
	g := New(13, 7)
	g.ApplyXY(func(x, y int, _ float32) float32 { return float32((x*31 + y*7) % 256) })
	var buf bytesBuffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != 13 || back.H != 7 {
		t.Fatalf("round trip dims %dx%d", back.W, back.H)
	}
	// WritePGM normalizes to 0..255; compare after normalizing both.
	gn := g.Clone()
	gn.Normalize(0, 255)
	if d := gn.MaxAbsDiff(back); d > 1.0 {
		t.Fatalf("round trip max diff %v > 1 grey level", d)
	}
}

func TestReadPGMASCIIWithComments(t *testing.T) {
	src := "P2\n# a comment\n3 2\n# another\n255\n0 10 20\n30 40 50\n"
	g, err := ReadPGM(stringReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.W != 3 || g.H != 2 || g.At(2, 1) != 50 {
		t.Fatalf("parsed %dx%d, At(2,1)=%v", g.W, g.H, g.At(2, 1))
	}
}

func TestReadPGMRejectsBadMagic(t *testing.T) {
	if _, err := ReadPGM(stringReader("P7\n1 1\n255\nx")); err == nil {
		t.Fatal("accepted bad magic")
	}
}

func TestReadPGMRejectsTruncatedBody(t *testing.T) {
	if _, err := ReadPGM(stringReader("P5\n4 4\n255\nab")); err == nil {
		t.Fatal("accepted truncated body")
	}
}

func TestVectorFieldRMSE(t *testing.T) {
	f := NewVectorField(4, 4)
	r := NewVectorField(4, 4)
	f.U.Fill(3)
	f.V.Fill(4)
	if got := f.RMSE(r); math.Abs(got-5) > 1e-6 {
		t.Fatalf("RMSE = %v, want 5", got)
	}
}

func TestVectorFieldRMSEAtSparsePoints(t *testing.T) {
	f := NewVectorField(8, 8)
	r := NewVectorField(8, 8)
	f.Set(2, 2, 1, 0)
	pts := []Point{{2, 2}}
	if got := f.RMSEAt(r, pts); math.Abs(got-1) > 1e-6 {
		t.Fatalf("RMSEAt = %v, want 1", got)
	}
	if got := f.RMSEAt(r, nil); got != 0 {
		t.Fatalf("RMSEAt(nil pts) = %v, want 0", got)
	}
}

func TestVectorFieldWarpRecoversTranslation(t *testing.T) {
	// img2 is img1 shifted by (+2, +1); the true forward field (u,v)=(2,1)
	// must pull img2 back onto img1.
	img1 := New(32, 32)
	img1.ApplyXY(func(x, y int, _ float32) float32 {
		return float32(math.Sin(float64(x)*0.4) * math.Cos(float64(y)*0.3))
	})
	img2 := New(32, 32)
	img2.ApplyXY(func(x, y int, _ float32) float32 {
		return img1.Bilinear(float64(x-2), float64(y-1))
	})
	f := NewVectorField(32, 32)
	f.U.Fill(2)
	f.V.Fill(1)
	back := f.Warp(img2)
	// Interior must match; borders are clamped.
	crop1 := img1.Crop(4, 4, 24, 24)
	cropB := back.Crop(4, 4, 24, 24)
	if d := crop1.MaxAbsDiff(cropB); d > 1e-4 {
		t.Fatalf("warp-back max diff %v", d)
	}
}

func TestVectorFieldEqualAndClone(t *testing.T) {
	f := NewVectorField(3, 3)
	g := f.Clone()
	if !f.Equal(g) {
		t.Fatal("clone not equal")
	}
	g.Set(1, 1, 1, 0)
	if f.Equal(g) {
		t.Fatal("mutated clone still equal")
	}
}

func TestVectorFieldScale(t *testing.T) {
	f := NewVectorField(2, 2)
	f.U.Fill(1)
	f.V.Fill(-2)
	f.Scale(3)
	if u, v := f.At(0, 0); u != 3 || v != -6 {
		t.Fatalf("scaled to (%v,%v), want (3,-6)", u, v)
	}
}

// Property: Bilinear at integer coordinates equals At for any grid contents.
func TestPropertyBilinearMatchesAtOnLattice(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(5, 4)
		for i := range g.Data {
			g.Data[i] = rng.Float32()*200 - 100
		}
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				if math.Abs(float64(g.Bilinear(float64(x), float64(y))-g.At(x, y))) > 1e-5 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hierarchical crop/At clamping agrees with manual clamping.
func TestPropertyAtClampEquivalence(t *testing.T) {
	g := New(6, 5)
	for i := range g.Data {
		g.Data[i] = float32(i)
	}
	f := func(x, y int8) bool {
		xi, yi := int(x), int(y)
		cx, cy := xi, yi
		if cx < 0 {
			cx = 0
		}
		if cx > 5 {
			cx = 5
		}
		if cy < 0 {
			cy = 0
		}
		if cy > 4 {
			cy = 4
		}
		return g.At(xi, yi) == g.AtUnchecked(cx, cy)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: median filter output values always come from the input's range.
func TestPropertyMedianWithinRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(7, 7)
		for i := range g.Data {
			g.Data[i] = rng.Float32()*10 - 5
		}
		lo, hi := g.MinMax()
		m := g.Median3()
		mlo, mhi := m.MinMax()
		return mlo >= lo && mhi <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Helpers ------------------------------------------------------------------

type bytesBuffer = bytes.Buffer

func stringReader(s string) io.Reader { return strings.NewReader(s) }
