package grid

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WritePGM writes the grid as a binary (P5) PGM image to w, linearly
// rescaling samples to the 0–255 range. This is the interchange format used
// by the cmd/ tools for synthetic GOES-like imagery.
func (g *Grid) WritePGM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	min, max := g.MinMax()
	span := max - min
	if span == 0 {
		span = 1
	}
	row := make([]byte, g.W)
	for y := 0; y < g.H; y++ {
		src := g.Row(y)
		for x, v := range src {
			p := (v - min) / span * 255
			if p < 0 {
				p = 0
			} else if p > 255 {
				p = 255
			}
			row[x] = byte(p + 0.5)
		}
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePGMFile writes the grid to path as a binary PGM image.
func (g *Grid) WritePGMFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WritePGM(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPGM parses a binary (P5) or ASCII (P2) PGM image into a grid with
// samples in [0, maxval] preserved as float32.
func ReadPGM(r io.Reader) (*Grid, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, err
	}
	if magic != "P5" && magic != "P2" {
		return nil, fmt.Errorf("grid: unsupported PGM magic %q", magic)
	}
	dims := [3]int{}
	for i := range dims {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("grid: bad PGM header token %q: %w", tok, err)
		}
		dims[i] = v
	}
	w, h, maxval := dims[0], dims[1], dims[2]
	if w <= 0 || h <= 0 || maxval <= 0 || maxval > 65535 {
		return nil, fmt.Errorf("grid: bad PGM header %dx%d max %d", w, h, maxval)
	}
	// Refuse implausible dimensions before allocating: a corrupt header
	// must not commit gigabytes (found by FuzzReadPGM).
	const maxPixels = 1 << 26
	if w > maxPixels/h {
		return nil, fmt.Errorf("grid: PGM dimensions %dx%d exceed the %d-pixel limit", w, h, maxPixels)
	}
	bytesPerSample := 1
	if maxval >= 256 {
		bytesPerSample = 2
	}
	// The header is untrusted input (PGM bytes arrive over HTTP in
	// smaserve uploads): before allocating W×H storage, cap the claimed
	// body size against what the input can actually supply. Bytes already
	// buffered by br count as available.
	if magic == "P5" {
		need := int64(w) * int64(h) * int64(bytesPerSample)
		if rem, known := remainingInput(r); known && need > rem+int64(br.Buffered()) {
			return nil, fmt.Errorf("grid: PGM header claims %dx%d×%d = %d body bytes but only %d remain in the input",
				w, h, bytesPerSample, need, rem+int64(br.Buffered()))
		}
	}
	// Decode row by row into storage that grows with the data actually
	// read: even when the input size is unknowable (a pure stream), a
	// corrupt header fails at its first short row having allocated at most
	// ~2× the bytes that really arrived, never the claimed total.
	initCap := w * h
	if initCap > 1<<20 {
		initCap = 1 << 20
	}
	data := make([]float32, 0, initCap)
	if magic == "P2" {
		for i := 0; i < w*h; i++ {
			tok, err := pgmToken(br)
			if err != nil {
				return nil, err
			}
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("grid: bad PGM sample %q: %w", tok, err)
			}
			data = append(data, float32(v))
		}
		return FromSlice(w, h, data), nil
	}
	// P5: one byte per sample for maxval < 256, two (big-endian) otherwise.
	buf := make([]byte, bytesPerSample*w)
	for y := 0; y < h; y++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("grid: short PGM body at row %d: %w", y, err)
		}
		if bytesPerSample == 1 {
			for _, b := range buf {
				data = append(data, float32(b))
			}
		} else {
			for x := 0; x < w; x++ {
				data = append(data, float32(uint16(buf[2*x])<<8|uint16(buf[2*x+1])))
			}
		}
	}
	return FromSlice(w, h, data), nil
}

// remainingInput reports how many bytes r can still supply, when that is
// knowable without consuming it: readers with a Len method (bytes.Reader,
// bytes.Buffer, strings.Reader) and seekable readers (os.File).
func remainingInput(r io.Reader) (int64, bool) {
	switch v := r.(type) {
	case interface{ Len() int }:
		return int64(v.Len()), true
	case io.Seeker:
		pos, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return 0, false
		}
		end, err := v.Seek(0, io.SeekEnd)
		if err != nil {
			return 0, false
		}
		if _, err := v.Seek(pos, io.SeekStart); err != nil {
			return 0, false
		}
		return end - pos, true
	}
	return 0, false
}

// ReadPGMFile reads a PGM image from path.
func ReadPGMFile(path string) (*Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPGM(f)
}

// pgmToken returns the next whitespace-delimited header token, skipping
// '#' comments per the PNM specification.
func pgmToken(br *bufio.Reader) (string, error) {
	tok := make([]byte, 0, 8)
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", fmt.Errorf("grid: PGM header: %w", err)
		}
		switch {
		case b == '#':
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}
