package grid

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestReadPGMRoundTrip(t *testing.T) {
	g := New(9, 7)
	for i := range g.Data {
		g.Data[i] = float32(i % 256)
	}
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.W != g.W || got.H != g.H {
		t.Fatalf("round-trip dims %dx%d, want %dx%d", got.W, got.H, g.W, g.H)
	}
}

func TestReadPGM16Bit(t *testing.T) {
	body := []byte("P5\n2 2\n65535\n")
	for _, v := range []uint16{0, 1, 256, 65535} {
		body = append(body, byte(v>>8), byte(v))
	}
	g, err := ReadPGM(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 1, 256, 65535}
	for i, v := range want {
		if g.Data[i] != v {
			t.Errorf("sample %d = %v, want %v", i, g.Data[i], v)
		}
	}
}

// TestReadPGMRefusesOverclaimedBody: when the input's size is knowable,
// a header claiming more body bytes than exist must fail before the
// pixel storage is allocated.
func TestReadPGMRefusesOverclaimedBody(t *testing.T) {
	doc := "P5\n4096 4096\n255\ntiny body"
	_, err := ReadPGM(strings.NewReader(doc))
	if err == nil {
		t.Fatal("oversized claim accepted")
	}
	if !strings.Contains(err.Error(), "remain in the input") {
		t.Errorf("error %v is not the allocation-cap rejection", err)
	}
}

// TestReadPGMTruncatedStream: with an unknowable input size the decode
// proceeds incrementally and fails at the first short row with an
// io.ErrUnexpectedEOF — the classification the stream retry policy
// treats as transient.
func TestReadPGMTruncatedStream(t *testing.T) {
	g := New(8, 8)
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// io.MultiReader hides Len/Seek, so remainingInput cannot see the size.
	trunc := io.MultiReader(bytes.NewReader(full[:len(full)-10]))
	_, err := ReadPGM(trunc)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated stream error = %v, want io.ErrUnexpectedEOF", err)
	}
	if !strings.Contains(err.Error(), "row") {
		t.Errorf("error %v does not name the failing row", err)
	}
}
