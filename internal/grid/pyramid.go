package grid

// Pyramid is a coarse-to-fine multiresolution image pyramid as used by the
// Automatic Stereo Analysis substrate: Levels[0] is the full-resolution
// image and each subsequent level halves both dimensions (minimum 4 pixels).
type Pyramid struct {
	Levels []*Grid
}

// NewPyramid builds an n-level pyramid from g. Each coarser level is a
// Gaussian-smoothed (σ=1) 2× decimation of the previous one. Fewer levels
// are produced if the image becomes too small (< 8 pixels on a side).
func NewPyramid(g *Grid, n int) *Pyramid {
	p := &Pyramid{Levels: []*Grid{g}}
	cur := g
	for len(p.Levels) < n && cur.W >= 8 && cur.H >= 8 {
		cur = cur.Downsample2()
		p.Levels = append(p.Levels, cur)
	}
	return p
}

// Downsample2 returns g smoothed and decimated by a factor of two.
func (g *Grid) Downsample2() *Grid {
	s := g.GaussianBlur(1)
	w := g.W / 2
	h := g.H / 2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Data[y*w+x] = s.At(2*x, 2*y)
		}
	}
	return out
}

// DownsampleBox2 returns g decimated by a factor of two with a 2×2 box
// filter: each output pixel is the mean of the four source pixels it
// covers. Unlike Downsample2 it applies no Gaussian smoothing, so the
// result is a pure block average — the deterministic, separable reduction
// the coarse-to-fine tracker uses for both image and height surfaces.
// Accumulation is in float64; the mean narrows to float32 only at the
// store. Odd trailing rows/columns are dropped, matching Downsample2's
// floor(w/2)×floor(h/2) convention.
func (g *Grid) DownsampleBox2() *Grid {
	w := g.W / 2
	h := g.H / 2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := New(w, h)
	if g.W == 1 || g.H == 1 {
		// Degenerate strip: fall back to nearest-sample decimation.
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				out.Data[y*w+x] = g.At(2*x, 2*y)
			}
		}
		return out
	}
	for y := 0; y < h; y++ {
		r0 := g.Data[2*y*g.W:]
		r1 := g.Data[(2*y+1)*g.W:]
		for x := 0; x < w; x++ {
			sx := 2 * x
			s := (float64(r0[sx]) + float64(r0[sx+1]) +
				float64(r1[sx]) + float64(r1[sx+1])) * 0.25
			out.Data[y*w+x] = float32(s)
		}
	}
	return out
}

// Upsample2 returns g bilinearly enlarged to w×h (typically twice the size).
// Values are scaled by `scale`, which callers use to double disparity
// estimates when promoting them to the next finer pyramid level.
func (g *Grid) Upsample2(w, h int, scale float32) *Grid {
	out := New(w, h)
	sx := float64(g.W) / float64(w)
	sy := float64(g.H) / float64(h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.Data[y*w+x] = scale * g.Bilinear(float64(x)*sx, float64(y)*sy)
		}
	}
	return out
}
