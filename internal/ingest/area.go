// Package ingest reads and writes a simplified McIDAS AREA format — the
// file format GOES imagery of the paper's era was distributed and
// ingested in (the GOES-9 datasets were "acquired ... using the real time
// ingest system" at NASA/GSFC, which produced McIDAS AREA files). The
// subset implemented here covers single-band visible/IR images with a
// 64-word area directory and 1- or 2-byte data elements.
//
// Like real McIDAS, the reader detects the file's byte order from the
// version word of the directory (word 2 must read as 4).
package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"sma/internal/grid"
)

// ErrTruncated marks an AREA document that ended before the bytes its
// directory promised — the signature of a file still being ingested or a
// feed that dropped mid-frame. Callers can errors.Is for it to decide
// between retrying (the file may finish arriving) and rejecting.
var ErrTruncated = errors.New("ingest: truncated input")

// Directory is the subset of the 64-word AREA directory this codec uses.
// Word numbering follows the McIDAS convention (1-based).
type Directory struct {
	SensorID  int32 // word 3: sensor source number
	Date      int32 // word 4: YYDDD
	Time      int32 // word 5: HHMMSS
	Lines     int32 // word 9
	Elements  int32 // word 10
	ByteDepth int32 // word 11: bytes per element (1 or 2)
}

const (
	dirWords    = 64
	versionWord = 4 // AREA version number stored in word 2
)

// Validate checks the directory for encodability.
func (d Directory) Validate() error {
	if d.Lines <= 0 || d.Elements <= 0 {
		return fmt.Errorf("ingest: bad dimensions %dx%d", d.Elements, d.Lines)
	}
	if d.ByteDepth != 1 && d.ByteDepth != 2 {
		return fmt.Errorf("ingest: unsupported byte depth %d", d.ByteDepth)
	}
	return nil
}

// WriteArea encodes g under the directory (d.Lines/d.Elements are set
// from the grid). Sample values are linearly scaled to the full range of
// the chosen byte depth, as the GVAR→AREA calibration step does.
func WriteArea(w io.Writer, d Directory, g *grid.Grid) error {
	d.Lines = int32(g.H)
	d.Elements = int32(g.W)
	if d.ByteDepth == 0 {
		d.ByteDepth = 1
	}
	if err := d.Validate(); err != nil {
		return err
	}
	var words [dirWords]int32
	words[0] = 0 // status
	words[1] = versionWord
	words[2] = d.SensorID
	words[3] = d.Date
	words[4] = d.Time
	words[8] = d.Lines
	words[9] = d.Elements
	words[10] = d.ByteDepth
	words[33] = dirWords * 4 // data offset: directly after the directory
	if err := binary.Write(w, binary.LittleEndian, words[:]); err != nil {
		return err
	}
	min, max := g.MinMax()
	span := max - min
	if span == 0 {
		span = 1
	}
	full := float32(int32(1)<<(8*d.ByteDepth) - 1)
	buf := make([]byte, int(d.ByteDepth)*g.W)
	for y := 0; y < g.H; y++ {
		row := g.Row(y)
		k := 0
		for _, v := range row {
			q := int32((v - min) / span * full)
			if d.ByteDepth == 1 {
				buf[k] = byte(q)
				k++
			} else {
				binary.LittleEndian.PutUint16(buf[k:], uint16(q))
				k += 2
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadArea decodes an AREA file, detecting byte order from the version
// word. The returned grid holds raw counts (0..255 or 0..65535).
func ReadArea(r io.Reader) (Directory, *grid.Grid, error) {
	raw := make([]byte, dirWords*4)
	if _, err := io.ReadFull(r, raw); err != nil {
		return Directory{}, nil, fmt.Errorf("%w: short directory: %w", ErrTruncated, err)
	}
	var order binary.ByteOrder = binary.LittleEndian
	if int32(binary.LittleEndian.Uint32(raw[4:8])) != versionWord {
		if int32(binary.BigEndian.Uint32(raw[4:8])) != versionWord {
			return Directory{}, nil, fmt.Errorf("ingest: not an AREA file (version word %d/%d)",
				int32(binary.LittleEndian.Uint32(raw[4:8])), int32(binary.BigEndian.Uint32(raw[4:8])))
		}
		order = binary.BigEndian
	}
	word := func(i int) int32 { return int32(order.Uint32(raw[4*(i-1) : 4*i])) }
	d := Directory{
		SensorID:  word(3),
		Date:      word(4),
		Time:      word(5),
		Lines:     word(9),
		Elements:  word(10),
		ByteDepth: word(11),
	}
	if err := d.Validate(); err != nil {
		return d, nil, err
	}
	if d.Lines > 1<<15 || d.Elements > 1<<15 {
		return d, nil, fmt.Errorf("ingest: implausible dimensions %dx%d", d.Elements, d.Lines)
	}
	offset := word(34)
	if offset < dirWords*4 {
		return d, nil, fmt.Errorf("ingest: data offset %d inside the directory", offset)
	}
	skip := int64(offset) - dirWords*4
	// The directory is untrusted input (AREA bytes arrive over HTTP in
	// smaserve uploads): before allocating Lines×Elements storage, cap the
	// claimed data size against what the input can actually supply.
	need := int64(d.Lines) * int64(d.Elements) * int64(d.ByteDepth)
	if rem, known := remainingInput(r); known && skip+need > rem {
		return d, nil, fmt.Errorf("ingest: directory claims %dx%d×%d = %d data bytes but only %d remain in the input",
			d.Elements, d.Lines, d.ByteDepth, need, rem)
	}
	// Skip any nav/cal blocks between the directory and the data.
	if skip > 0 {
		if _, err := io.CopyN(io.Discard, r, skip); err != nil {
			return d, nil, fmt.Errorf("%w: nav block: %w", ErrTruncated, err)
		}
	}
	// Decode row by row into storage that grows with the data actually
	// read: even when the input size is unknowable (a pure stream), a
	// corrupt directory fails at its first short row having allocated at
	// most ~2× the bytes that really arrived, never the claimed total.
	pixels := int(d.Lines) * int(d.Elements)
	initCap := pixels
	if initCap > 1<<20 {
		initCap = 1 << 20
	}
	data := make([]float32, 0, initCap)
	buf := make([]byte, int(d.ByteDepth)*int(d.Elements))
	for y := 0; y < int(d.Lines); y++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return d, nil, fmt.Errorf("%w: data at line %d: %w", ErrTruncated, y, err)
		}
		if d.ByteDepth == 1 {
			for _, b := range buf {
				data = append(data, float32(b))
			}
		} else {
			for x := 0; x < int(d.Elements); x++ {
				data = append(data, float32(order.Uint16(buf[2*x:])))
			}
		}
	}
	return d, grid.FromSlice(int(d.Elements), int(d.Lines), data), nil
}

// remainingInput reports how many bytes r can still supply, when that is
// knowable without consuming it: readers with a Len method (bytes.Reader,
// bytes.Buffer, strings.Reader) and seekable readers (os.File).
func remainingInput(r io.Reader) (int64, bool) {
	switch v := r.(type) {
	case interface{ Len() int }:
		return int64(v.Len()), true
	case io.Seeker:
		pos, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return 0, false
		}
		end, err := v.Seek(0, io.SeekEnd)
		if err != nil {
			return 0, false
		}
		if _, err := v.Seek(pos, io.SeekStart); err != nil {
			return 0, false
		}
		return end - pos, true
	}
	return 0, false
}

// WriteAreaFile writes g to path as an AREA file.
func WriteAreaFile(path string, d Directory, g *grid.Grid) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteArea(f, d, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadAreaFile reads an AREA file from path.
func ReadAreaFile(path string) (Directory, *grid.Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return Directory{}, nil, err
	}
	defer f.Close()
	return ReadArea(f)
}
