package ingest

import (
	"bytes"
	"encoding/binary"
	"io"
	"runtime"
	"strings"
	"testing"

	"sma/internal/grid"
	"sma/internal/synth"
)

func TestAreaRoundTrip8Bit(t *testing.T) {
	g := synth.Hurricane(32, 24, 3).Frame(0)
	var buf bytes.Buffer
	dir := Directory{SensorID: 70, Date: 79255, Time: 170000, ByteDepth: 1}
	if err := WriteArea(&buf, dir, g); err != nil {
		t.Fatal(err)
	}
	back, bg, err := ReadArea(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.SensorID != 70 || back.Date != 79255 || back.Time != 170000 {
		t.Fatalf("directory metadata lost: %+v", back)
	}
	if bg.W != 32 || bg.H != 24 {
		t.Fatalf("dims %dx%d", bg.W, bg.H)
	}
	// Quantization to 8 bits: after normalizing both, within one count.
	gn := g.Clone()
	gn.Normalize(0, 255)
	if d := gn.MaxAbsDiff(bg); d > 1.0 {
		t.Fatalf("8-bit round trip max diff %v counts", d)
	}
}

func TestAreaRoundTrip16Bit(t *testing.T) {
	g := synth.Thunderstorm(16, 16, 5).Frame(0)
	var buf bytes.Buffer
	if err := WriteArea(&buf, Directory{ByteDepth: 2}, g); err != nil {
		t.Fatal(err)
	}
	_, bg, err := ReadArea(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gn := g.Clone()
	gn.Normalize(0, 65535)
	if d := gn.MaxAbsDiff(bg); d > 1.0 {
		t.Fatalf("16-bit round trip max diff %v counts", d)
	}
}

func TestAreaBigEndianDetection(t *testing.T) {
	// Write a little-endian file, then byte-swap every directory word and
	// 16-bit sample to emulate a big-endian producer.
	g := grid.New(4, 3)
	g.ApplyXY(func(x, y int, _ float32) float32 { return float32(x + 10*y) })
	var buf bytes.Buffer
	if err := WriteArea(&buf, Directory{ByteDepth: 2}, g); err != nil {
		t.Fatal(err)
	}
	le := buf.Bytes()
	be := make([]byte, len(le))
	for i := 0; i < 64*4; i += 4 { // directory words
		be[i], be[i+1], be[i+2], be[i+3] = le[i+3], le[i+2], le[i+1], le[i]
	}
	for i := 64 * 4; i < len(le); i += 2 { // 16-bit samples
		be[i], be[i+1] = le[i+1], le[i]
	}
	_, bg, err := ReadArea(bytes.NewReader(be))
	if err != nil {
		t.Fatal(err)
	}
	_, lg, err := ReadArea(bytes.NewReader(le))
	if err != nil {
		t.Fatal(err)
	}
	if !bg.Equal(lg) {
		t.Fatal("big-endian decode differs from little-endian")
	}
}

func TestAreaRejectsGarbage(t *testing.T) {
	if _, _, err := ReadArea(bytes.NewReader(make([]byte, 10))); err == nil {
		t.Fatal("short file accepted")
	}
	junk := make([]byte, 64*4)
	for i := range junk {
		junk[i] = 0xAB
	}
	if _, _, err := ReadArea(bytes.NewReader(junk)); err == nil {
		t.Fatal("garbage version word accepted")
	}
}

func TestAreaRejectsTruncatedData(t *testing.T) {
	g := grid.New(8, 8)
	var buf bytes.Buffer
	if err := WriteArea(&buf, Directory{ByteDepth: 1}, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-20]
	if _, _, err := ReadArea(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated data accepted")
	}
}

// opaqueReader hides the size of the underlying input (no Len, no Seek),
// forcing ReadArea onto its incremental-allocation path.
type opaqueReader struct{ r io.Reader }

func (o opaqueReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func TestAreaCorruptDirectoryCapsAllocation(t *testing.T) {
	// A directory claiming 32768×32768×2 bytes (2 GiB) on a tiny input
	// must fail before committing storage for the claimed size.
	var words [64]int32
	words[1] = 4
	words[8] = 1 << 15 // lines
	words[9] = 1 << 15 // elements
	words[10] = 2
	words[33] = 64 * 4
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, words[:]); err != nil {
		t.Fatal(err)
	}
	buf.Write(make([]byte, 64)) // a sliver of "data"
	raw := buf.Bytes()

	// Sized reader: rejected up front by the remaining-input cap.
	if _, _, err := ReadArea(bytes.NewReader(raw)); err == nil {
		t.Fatal("huge directory on sized reader accepted")
	} else if !strings.Contains(err.Error(), "remain in the input") {
		t.Fatalf("want remaining-input cap error, got: %v", err)
	}

	// Opaque stream: rejected at the first short row, with allocations
	// bounded by the bytes actually supplied rather than the claimed size.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, _, err := ReadArea(opaqueReader{bytes.NewReader(raw)}); err == nil {
		t.Fatal("huge directory on opaque reader accepted")
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
		t.Fatalf("decoding a corrupt directory allocated %d bytes", grew)
	}
}

func TestAreaOpaqueReaderStillDecodes(t *testing.T) {
	g := synth.Hurricane(16, 12, 9).Frame(0)
	var buf bytes.Buffer
	if err := WriteArea(&buf, Directory{ByteDepth: 1}, g); err != nil {
		t.Fatal(err)
	}
	sized, sg, err := ReadArea(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	opaque, og, err := ReadArea(opaqueReader{bytes.NewReader(buf.Bytes())})
	if err != nil {
		t.Fatal(err)
	}
	if sized != opaque || !sg.Equal(og) {
		t.Fatal("opaque-reader decode differs from sized-reader decode")
	}
}

func TestAreaValidate(t *testing.T) {
	if err := (Directory{Lines: 4, Elements: 4, ByteDepth: 3}).Validate(); err == nil {
		t.Fatal("byte depth 3 accepted")
	}
	if err := (Directory{Lines: 0, Elements: 4, ByteDepth: 1}).Validate(); err == nil {
		t.Fatal("zero lines accepted")
	}
}

func TestAreaNavBlockSkip(t *testing.T) {
	// Hand-build a file with a nav block between directory and data.
	g := grid.New(2, 2)
	copy(g.Data, []float32{0, 85, 170, 255})
	var words [64]int32
	words[1] = 4
	words[8] = 2
	words[9] = 2
	words[10] = 1
	words[33] = 64*4 + 128 // 128-byte nav block
	var buf bytes.Buffer
	if err := binary.Write(&buf, binary.LittleEndian, words[:]); err != nil {
		t.Fatal(err)
	}
	buf.Write(make([]byte, 128))       // nav block
	buf.Write([]byte{0, 85, 170, 255}) // data
	_, bg, err := ReadArea(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 85, 170, 255}
	for i, w := range want {
		if bg.Data[i] != w {
			t.Fatalf("sample %d = %v, want %v", i, bg.Data[i], w)
		}
	}
}

func TestAreaFileRoundTrip(t *testing.T) {
	g := synth.ShearScene(16, 16, 7).Frame(0)
	path := t.TempDir() + "/test.area"
	if err := WriteAreaFile(path, Directory{SensorID: 180}, g); err != nil {
		t.Fatal(err)
	}
	d, bg, err := ReadAreaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.SensorID != 180 || bg.W != 16 {
		t.Fatalf("file round trip: %+v %dx%d", d, bg.W, bg.H)
	}
}
