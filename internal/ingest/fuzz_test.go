package ingest

import (
	"bytes"
	"testing"

	"sma/internal/grid"
)

// areaCorpus builds a valid round-trip AREA file for seeding the fuzzer.
func areaCorpus(f *testing.F, w, h int, depth int32) []byte {
	f.Helper()
	g := grid.New(w, h)
	g.ApplyXY(func(x, y int, _ float32) float32 { return float32(x + 7*y) })
	var buf bytes.Buffer
	if err := WriteArea(&buf, Directory{SensorID: 1, Date: 79255, Time: 170000, ByteDepth: depth}, g); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// byteSwapped emulates a big-endian producer: every directory word and
// (for depth-2 files) every 16-bit sample byte-reversed.
func byteSwapped(le []byte, depth int) []byte {
	be := make([]byte, len(le))
	for i := 0; i+4 <= 64*4 && i+4 <= len(le); i += 4 {
		be[i], be[i+1], be[i+2], be[i+3] = le[i+3], le[i+2], le[i+1], le[i]
	}
	for i := 64 * 4; i < len(le); i++ {
		be[i] = le[i]
	}
	if depth == 2 {
		for i := 64 * 4; i+2 <= len(le); i += 2 {
			be[i], be[i+1] = le[i+1], le[i]
		}
	}
	return be
}

// FuzzReadArea exercises the AREA decoder against malformed input: it
// must return an error or a consistent grid, never panic and never
// allocate storage for dimensions the input cannot back (the guard that
// matters once AREA bytes arrive over HTTP in smaserve uploads).
func FuzzReadArea(f *testing.F) {
	// Valid round-trip corpora: 8- and 16-bit, little- and big-endian,
	// plus truncation and an all-zero directory.
	le8 := areaCorpus(f, 3, 2, 1)
	le16 := areaCorpus(f, 5, 4, 2)
	f.Add(le8)
	f.Add(le16)
	f.Add(byteSwapped(le8, 1))
	f.Add(byteSwapped(le16, 2))
	f.Add(le8[:100])
	f.Add(le16[:64*4+3])
	f.Add(make([]byte, 64*4))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, bg, err := ReadArea(bytes.NewReader(data))
		if err != nil {
			return
		}
		if bg == nil || bg.W != int(d.Elements) || bg.H != int(d.Lines) {
			t.Fatalf("decoder returned inconsistent result: %+v vs %v", d, bg)
		}
		// Accepted inputs must round-trip: re-encode and re-decode to the
		// same geometry with every sample surviving the quantization
		// (counts in, counts out).
		var buf bytes.Buffer
		if err := WriteArea(&buf, Directory{ByteDepth: d.ByteDepth}, bg); err != nil {
			t.Fatalf("re-encode of accepted input failed: %v", err)
		}
		d2, bg2, err := ReadArea(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of re-encoded input failed: %v", err)
		}
		if d2.Lines != d.Lines || d2.Elements != d.Elements {
			t.Fatalf("round trip changed geometry: %dx%d vs %dx%d",
				d.Elements, d.Lines, d2.Elements, d2.Lines)
		}
		if bg2.W != bg.W || bg2.H != bg.H {
			t.Fatalf("round trip changed grid size")
		}
	})
}
