package ingest

import (
	"bytes"
	"testing"

	"sma/internal/grid"
)

// FuzzReadArea exercises the AREA decoder against malformed input: it
// must return an error or a consistent grid, never panic.
func FuzzReadArea(f *testing.F) {
	// Seed with a valid little-endian file.
	g := grid.New(3, 2)
	g.ApplyXY(func(x, y int, _ float32) float32 { return float32(x + y) })
	var buf bytes.Buffer
	if err := WriteArea(&buf, Directory{SensorID: 1, ByteDepth: 1}, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:100])
	f.Add(make([]byte, 64*4))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, bg, err := ReadArea(bytes.NewReader(data))
		if err != nil {
			return
		}
		if bg == nil || bg.W != int(d.Elements) || bg.H != int(d.Lines) {
			t.Fatalf("decoder returned inconsistent result: %+v vs %v", d, bg)
		}
	})
}
