package ingest

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"sma/internal/fault"
	"sma/internal/grid"
	"sma/internal/stream"
)

// TestAreaTruncationClassified cuts a valid AREA document at byte
// offsets in every section (directory, data) with the fault injector and
// checks each failure wraps ErrTruncated — and stays retry-classifiable,
// since a truncated read is exactly the "file still arriving" case the
// stream retry policy exists for.
func TestAreaTruncationClassified(t *testing.T) {
	g := grid.New(6, 5)
	for i := range g.Data {
		g.Data[i] = float32(i)
	}
	var buf bytes.Buffer
	if err := WriteArea(&buf, Directory{SensorID: 70, ByteDepth: 1}, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, off := range []int64{10, dirWords*4 - 1, dirWords*4 + 7, int64(len(full)) - 1} {
		// io.MultiReader hides the size, forcing the incremental path.
		r := fault.WrapReader(io.MultiReader(bytes.NewReader(full)), fault.ReaderFault{Offset: off})
		_, _, err := ReadArea(r)
		if err == nil {
			t.Fatalf("offset %d: truncated document accepted", off)
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("offset %d: error %v does not wrap ErrTruncated", off, err)
		}
		if !stream.Transient(err) {
			t.Errorf("offset %d: error %v not classified transient", off, err)
		}
	}
	// The untruncated document still decodes.
	if _, _, err := ReadArea(bytes.NewReader(full)); err != nil {
		t.Fatalf("clean document: %v", err)
	}
}
