package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay feeds arbitrary bytes to a segment file and replays
// it. Properties, whatever the input:
//
//   - Replay never panics and never returns an error (damage is repaired,
//     not surfaced — errors are reserved for I/O failures and fn aborts);
//   - every delivered payload carried a valid checksum, so the recovered
//     prefix is made of records that were genuinely written;
//   - after the repair the journal accepts appends, and a second replay
//     sees exactly the recovered prefix plus the new record.
func FuzzJournalReplay(f *testing.F) {
	valid := append(segmentHeader[:],
		append(encodeRecord([]byte("alpha")), encodeRecord([]byte("beta"))...)...)

	f.Add([]byte{})                           // empty file
	f.Add(segmentHeader[:])                   // header only
	f.Add(valid)                              // two clean records
	f.Add(valid[:len(valid)-3])               // torn tail
	f.Add(valid[:11])                         // torn first frame
	f.Add(append(valid, make([]byte, 64)...)) // zero-filled tail
	flipped := append([]byte(nil), valid...)
	flipped[len(segmentHeader)+8+2] ^= 0x80 // bit flip in first payload
	f.Add(flipped)
	lenbomb := append([]byte(nil), valid...)
	lenbomb[len(segmentHeader)] = 0xFF // frame length pointing past EOF
	f.Add(lenbomb)
	f.Add(bytes.Repeat([]byte{0xFF}, 300)) // garbage, no header

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), data, 0o644); err != nil {
			t.Fatalf("seed segment: %v", err)
		}
		j, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		var recovered [][]byte
		if _, err := j.Replay(func(p []byte) error {
			recovered = append(recovered, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("Replay errored on arbitrary input: %v", err)
		}
		if err := j.Append([]byte("post-damage")); err != nil {
			t.Fatalf("Append after repair: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		j2, err := Open(dir, Options{Sync: SyncNone})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer j2.Close()
		var second [][]byte
		st, err := j2.Replay(func(p []byte) error {
			second = append(second, append([]byte(nil), p...))
			return nil
		})
		if err != nil {
			t.Fatalf("second Replay: %v", err)
		}
		if st.Corrupt || st.TruncatedBytes != 0 || st.DroppedSegments != 0 {
			t.Fatalf("repaired journal still reports damage: %+v", st)
		}
		if len(second) != len(recovered)+1 {
			t.Fatalf("second replay saw %d records, want recovered prefix %d + 1", len(second), len(recovered))
		}
		for i := range recovered {
			if !bytes.Equal(second[i], recovered[i]) {
				t.Fatalf("record %d changed across repair: %q vs %q", i, second[i], recovered[i])
			}
		}
		if string(second[len(second)-1]) != "post-damage" {
			t.Fatalf("appended record lost: %q", second[len(second)-1])
		}
	})
}
