// Package journal is the durability substrate of the smaserve job plane:
// an append-only, CRC-framed write-ahead log over numbered segment files.
// Job specs, per-pair/per-shard completion checkpoints, and terminal
// statuses are appended as opaque payloads; after a crash the journal is
// replayed in order to rebuild the job plane's state, and a torn tail
// (the record the process died inside) is truncated away so the log is
// append-clean again.
//
// The format is deliberately minimal. Each segment file starts with an
// 8-byte header ("SMAWAL1\n"); each record is
//
//	[u32 payloadLen LE][u32 crc32c(payload) LE][payload]
//
// A zero length or an impossible length reads as a torn tail (a zeroed
// or half-written record), a checksum mismatch as corruption; both end
// replay at the last valid record. Replay never guesses past damage:
// records after a bad one — including later whole segments — are
// dropped, because their ordering can no longer be trusted. This is the
// classic WAL contract: the recovered state is exactly some prefix of
// what was acknowledged, and with SyncAlways (the default) that prefix
// includes every acknowledged append. See docs/ROBUSTNESS.md.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// segment header: identifies the file and pins the format version.
var segmentHeader = [8]byte{'S', 'M', 'A', 'W', 'A', 'L', '1', '\n'}

// maxPayload bounds one record (16 MiB). Journal records are small JSON
// events; anything larger is a parse gone off the rails, not data.
const maxPayload = 16 << 20

// castagnoli is the CRC-32C table (the polynomial storage systems use;
// hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Sync is the fsync policy applied to appends.
type Sync int

const (
	// SyncAlways fsyncs the segment after every append: an acknowledged
	// record survives power loss. This is the default and what the
	// recovery guarantees assume.
	SyncAlways Sync = iota
	// SyncNone leaves flushing to the OS: faster, but a crash may lose
	// the most recent acknowledged records (never corrupt older ones).
	SyncNone
)

// Options configure a journal. Zero values take the documented defaults.
type Options struct {
	// Sync is the append fsync policy (default SyncAlways).
	Sync Sync
	// MaxSegmentBytes rotates the active segment beyond this size
	// (default 8 MiB). Smaller segments bound the blast radius of tail
	// corruption and make compaction cheaper.
	MaxSegmentBytes int64
	// Logf receives replay repair notices (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 8 << 20
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// ReplayStats describes what Replay found and repaired.
type ReplayStats struct {
	// Segments scanned (including ones dropped after a corruption point).
	Segments int
	// Records successfully decoded and delivered.
	Records int
	// TruncatedBytes dropped from the damaged segment's tail.
	TruncatedBytes int64
	// DroppedSegments removed entirely because they followed damage.
	DroppedSegments int
	// Corrupt is true when a checksum mismatch was seen — real damage,
	// not just the half-written record of an interrupted append.
	Corrupt bool
}

// Journal is an append-only segmented write-ahead log. Safe for
// concurrent Append from multiple goroutines; Replay must complete
// before the first Append.
type Journal struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File
	seq      int
	size     int64
	replayed bool
	closed   bool
}

// Open prepares a journal in dir, creating it if needed. Call Replay to
// recover existing records before appending.
func Open(dir string, opt Options) (*Journal, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{dir: dir, opt: opt}, nil
}

// segPath names segment seq.
func (j *Journal) segPath(seq int) string {
	return filepath.Join(j.dir, fmt.Sprintf("wal-%08d.seg", seq))
}

// segments lists existing segment sequence numbers in ascending order.
func (j *Journal) segments() ([]int, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"))
		if err != nil || n <= 0 {
			continue
		}
		seqs = append(seqs, n)
	}
	sort.Ints(seqs)
	return seqs, nil
}

// Replay scans every segment in order, delivering each valid payload to
// fn. Damage ends the scan: the damaged segment is truncated to its
// valid prefix and any later segments are deleted, so subsequent appends
// extend exactly the state fn observed. A non-nil error from fn aborts
// the replay (no repair is performed) and is returned unwrapped.
func (j *Journal) Replay(fn func(payload []byte) error) (ReplayStats, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var st ReplayStats
	if j.closed {
		return st, errors.New("journal: closed")
	}
	if j.replayed {
		return st, errors.New("journal: Replay after Append")
	}
	seqs, err := j.segments()
	if err != nil {
		return st, err
	}
	damagedAt := -1 // index into seqs where damage stopped the scan
	for i, seq := range seqs {
		st.Segments++
		res, err := j.replaySegment(seq, fn, &st)
		if err != nil {
			return st, err
		}
		if !res {
			damagedAt = i
			break
		}
	}
	if damagedAt >= 0 {
		for _, seq := range seqs[damagedAt+1:] {
			st.Segments++
			st.DroppedSegments++
			if err := os.Remove(j.segPath(seq)); err != nil {
				return st, fmt.Errorf("journal: dropping segment %d: %w", seq, err)
			}
			j.opt.Logf("journal: dropped segment %d (follows damage)", seq)
		}
		seqs = seqs[:damagedAt+1]
	}
	// Open the append position: the last surviving segment, or a fresh
	// first segment.
	if len(seqs) == 0 {
		if err := j.openSegmentLocked(1); err != nil {
			return st, err
		}
	} else {
		seq := seqs[len(seqs)-1]
		f, err := os.OpenFile(j.segPath(seq), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return st, fmt.Errorf("journal: %w", err)
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return st, fmt.Errorf("journal: %w", err)
		}
		if info.Size() < int64(len(segmentHeader)) {
			// Repair truncated into (or through) the header; the file can
			// no longer be appended to. Replace it with a fresh segment.
			f.Close()
			if err := os.Remove(j.segPath(seq)); err != nil {
				return st, fmt.Errorf("journal: %w", err)
			}
			if err := j.openSegmentLocked(seq); err != nil {
				return st, err
			}
		} else {
			j.f, j.seq, j.size = f, seq, info.Size()
		}
	}
	j.replayed = true
	return st, nil
}

// replaySegment scans one segment. It returns false when damage ended
// the scan (after truncating the file to its valid prefix); a false
// return means later segments must be dropped.
func (j *Journal) replaySegment(seq int, fn func([]byte) error, st *ReplayStats) (ok bool, err error) {
	path := j.segPath(seq)
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return false, fmt.Errorf("journal: %w", err)
	}
	fileSize := info.Size()

	truncateTo := func(n int64, why string, corrupt bool) (bool, error) {
		if corrupt {
			st.Corrupt = true
		}
		st.TruncatedBytes += fileSize - n
		j.opt.Logf("journal: segment %d: %s at offset %d; truncating %d bytes", seq, why, n, fileSize-n)
		if err := os.Truncate(path, n); err != nil {
			return false, fmt.Errorf("journal: truncating segment %d: %w", seq, err)
		}
		return false, nil
	}

	var hdr [8]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || hdr != segmentHeader {
		// No valid header: nothing in this file is trustworthy.
		return truncateTo(0, "bad segment header", err == nil)
	}
	r := &countingReader{r: f, n: 8}
	var frame [8]byte
	for {
		recStart := r.n
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			if errors.Is(err, io.EOF) && r.n == recStart {
				return true, nil // clean segment boundary
			}
			return truncateTo(recStart, "torn record frame", false)
		}
		n := binary.LittleEndian.Uint32(frame[0:])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if n == 0 || n > maxPayload || int64(n) > fileSize-r.n {
			// A zeroed or half-written frame, or a length pointing past the
			// end of the file — the torn tail of an interrupted append.
			return truncateTo(recStart, "torn record length", false)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return truncateTo(recStart, "torn record payload", false)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return truncateTo(recStart, "checksum mismatch", true)
		}
		st.Records++
		if err := fn(payload); err != nil {
			return false, err
		}
	}
}

// countingReader tracks the byte offset so truncation points are exact.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// openSegmentLocked creates segment seq with its header and makes it the
// append target. Caller holds j.mu.
func (j *Journal) openSegmentLocked(seq int) error {
	f, err := os.OpenFile(j.segPath(seq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := f.Write(segmentHeader[:]); err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if j.opt.Sync == SyncAlways {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("journal: %w", err)
		}
		j.syncDir()
	}
	if j.f != nil {
		j.f.Sync() //smavet:allow errdiscard -- the retiring segment was synced per append; this is belt and braces
		j.f.Close()
	}
	j.f, j.seq, j.size = f, seq, int64(len(segmentHeader))
	return nil
}

// syncDir fsyncs the journal directory so renames and creates are
// durable. Best effort: some filesystems refuse directory fsync.
func (j *Journal) syncDir() {
	d, err := os.Open(j.dir)
	if err != nil {
		return
	}
	d.Sync() //smavet:allow errdiscard -- directory fsync is advisory on some filesystems
	d.Close()
}

// Append writes one record and, under SyncAlways, fsyncs before
// returning: once Append returns nil the record survives a crash.
func (j *Journal) Append(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("journal: empty payload")
	}
	if len(payload) > maxPayload {
		return fmt.Errorf("journal: payload %d exceeds cap %d", len(payload), maxPayload)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if j.f == nil {
		// Appending without a Replay: start fresh (new data dir).
		if err := j.openSegmentLocked(1); err != nil {
			return err
		}
		j.replayed = true
	}
	if j.size >= j.opt.MaxSegmentBytes {
		if err := j.openSegmentLocked(j.seq + 1); err != nil {
			return err
		}
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	// One write call per piece; a crash between them is exactly the torn
	// tail Replay truncates.
	if _, err := j.f.Write(frame[:]); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Write(payload); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.size += int64(8 + len(payload))
	if j.opt.Sync == SyncAlways {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	return nil
}

// Sync forces the active segment to disk (useful under SyncNone before
// acknowledging a batch).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.f == nil {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Compact atomically replaces the whole journal with the given live
// payloads: they are written to a fresh segment (tmp file + rename), and
// every older segment is removed. Recovery calls this after replay so
// the log holds one record set per live job instead of the full history.
func (j *Journal) Compact(live [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	newSeq := j.seq + 1
	if j.f == nil {
		newSeq = 1
	}
	path := j.segPath(newSeq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	size := int64(len(segmentHeader))
	write := func() error {
		if _, err := f.Write(segmentHeader[:]); err != nil {
			return err
		}
		var frame [8]byte
		for _, payload := range live {
			if len(payload) == 0 || len(payload) > maxPayload {
				return fmt.Errorf("bad payload size %d", len(payload))
			}
			binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
			binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
			if _, err := f.Write(frame[:]); err != nil {
				return err
			}
			if _, err := f.Write(payload); err != nil {
				return err
			}
			size += int64(8 + len(payload))
		}
		return f.Sync()
	}
	if err := write(); err != nil {
		f.Close()
		os.Remove(tmp) //smavet:allow errdiscard -- tmp cleanup on the error path
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //smavet:allow errdiscard -- tmp cleanup on the error path
		return fmt.Errorf("journal: compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp) //smavet:allow errdiscard -- tmp cleanup on the error path
		return fmt.Errorf("journal: compact: %w", err)
	}
	j.syncDir()
	// The new segment is durable; retire everything older.
	oldSeqs, err := j.segments()
	if err != nil {
		return err
	}
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	for _, seq := range oldSeqs {
		if seq >= newSeq {
			continue
		}
		if err := os.Remove(j.segPath(seq)); err != nil {
			return fmt.Errorf("journal: compact: removing segment %d: %w", seq, err)
		}
	}
	j.syncDir()
	f, err = os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	j.f, j.seq, j.size = f, newSeq, size
	j.replayed = true
	return nil
}

// Close fsyncs and closes the active segment. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	if err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}
