package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// replayAll opens dir and collects every payload plus the repair stats.
func replayAll(t *testing.T, dir string) ([][]byte, ReplayStats, *Journal) {
	t.Helper()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var got [][]byte
	st, err := j.Replay(func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, st, j
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := [][]byte{[]byte("one"), []byte("two"), bytes.Repeat([]byte{0xAB}, 1000)}
	for _, p := range want {
		if err := j.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	got, st, j2 := replayAll(t, dir)
	defer j2.Close()
	if st.Records != len(want) || st.Corrupt || st.TruncatedBytes != 0 {
		t.Fatalf("stats = %+v, want %d clean records", st, len(want))
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// The journal stays appendable after replay.
	if err := j2.Append([]byte("post-replay")); err != nil {
		t.Fatalf("Append after Replay: %v", err)
	}
}

func TestJournalRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{MaxSegmentBytes: 64})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) < 2 {
		t.Fatalf("expected rotation into multiple segments, got %v (err %v)", segs, err)
	}
	got, st, j2 := replayAll(t, dir)
	defer j2.Close()
	if len(got) != n || st.Records != n {
		t.Fatalf("replayed %d records across %d segments, want %d", len(got), st.Segments, n)
	}
	for i := range got {
		if want := fmt.Sprintf("record-%02d", i); string(got[i]) != want {
			t.Fatalf("record %d = %q, want %q (ordering across segments)", i, got[i], want)
		}
	}
}

// TestJournalTornTail: chopping bytes off the last record must replay the
// records before it, truncate the tail, and leave the log appendable.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := filepath.Join(dir, "wal-00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	for cut := 1; cut < 8+5; cut++ { // through the frame and into the payload
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, "wal-00000001.seg"), data[:len(data)-cut], 0o644); err != nil {
			t.Fatalf("write torn copy: %v", err)
		}
		got, st, j2 := replayAll(t, dir2)
		if len(got) != 2 {
			t.Fatalf("cut %d: replayed %d records, want the 2 before the torn tail", cut, len(got))
		}
		if st.Corrupt {
			t.Fatalf("cut %d: torn tail misreported as corruption", cut)
		}
		if st.TruncatedBytes == 0 {
			t.Fatalf("cut %d: no truncation reported", cut)
		}
		// The repaired log accepts appends and replays them next time.
		if err := j2.Append([]byte("after-repair")); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		j2.Close()
		got2, _, j3 := replayAll(t, dir2)
		j3.Close()
		if len(got2) != 3 || string(got2[2]) != "after-repair" {
			t.Fatalf("cut %d: post-repair replay got %d records", cut, len(got2))
		}
	}
}

// TestJournalBitFlip: corrupting a payload byte must drop that record and
// everything after it, and flag the damage as corruption.
func TestJournalBitFlip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := filepath.Join(dir, "wal-00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	// Flip a byte inside the second record's payload: header(8) +
	// rec0(8+5) + frame(8) puts us inside rec1.
	data[8+13+8+2] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatalf("write corrupted copy: %v", err)
	}
	got, st, j2 := replayAll(t, dir)
	defer j2.Close()
	if len(got) != 1 || string(got[0]) != "rec-0" {
		t.Fatalf("replayed %d records after bit flip, want just rec-0", len(got))
	}
	if !st.Corrupt {
		t.Fatal("checksum mismatch not reported as corruption")
	}
}

// TestJournalDamageDropsLaterSegments: a corrupt middle segment ends the
// trusted prefix; later segments must be removed, not replayed.
func TestJournalDamageDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{MaxSegmentBytes: 32})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 8; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Corrupt the second segment's first payload byte.
	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[8+8] ^= 0x01
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}

	got, st, j2 := replayAll(t, dir)
	defer j2.Close()
	if len(got) != 2 || string(got[1]) != "record-01" {
		t.Fatalf("survivors = %q, want segment 1's two records", got)
	}
	if !st.Corrupt || st.DroppedSegments == 0 {
		t.Fatalf("stats = %+v, want corruption with dropped segments", st)
	}
	remaining, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(remaining) != 2 {
		t.Fatalf("%d segments remain, want 2 (valid head + truncated damage)", len(remaining))
	}
}

func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{MaxSegmentBytes: 48})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append([]byte(fmt.Sprintf("dead-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	live := [][]byte{[]byte("live-a"), []byte("live-b")}
	if err := j.Compact(live); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Post-compact appends extend the compacted state.
	if err := j.Append([]byte("live-c")); err != nil {
		t.Fatalf("Append after Compact: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("%d segments after compaction, want 1", len(segs))
	}
	got, st, j2 := replayAll(t, dir)
	defer j2.Close()
	want := []string{"live-a", "live-b", "live-c"}
	if len(got) != len(want) || st.Corrupt {
		t.Fatalf("replayed %d records (stats %+v), want %d", len(got), st, len(want))
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestJournalEmptyAndOversizePayloads: the append-side guards.
func TestJournalPayloadBounds(t *testing.T) {
	j, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer j.Close()
	if err := j.Append(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if err := j.Append(make([]byte, maxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

// TestJournalZeroFilledTail: a tail of zero bytes (preallocated blocks
// after power loss) reads as a torn tail, not as records.
func TestJournalZeroFilledTail(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := j.Append([]byte("solid")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seg := filepath.Join(dir, "wal-00000001.seg")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Write(make([]byte, 4096)); err != nil {
		t.Fatalf("pad: %v", err)
	}
	f.Close()
	got, st, j2 := replayAll(t, dir)
	defer j2.Close()
	if len(got) != 1 || string(got[0]) != "solid" {
		t.Fatalf("replayed %d records, want the one before the zero tail", len(got))
	}
	if st.Corrupt {
		t.Fatal("zero-filled tail misreported as corruption")
	}
	if st.TruncatedBytes != 4096 {
		t.Fatalf("truncated %d bytes, want 4096", st.TruncatedBytes)
	}
}

// encodeRecord builds one valid wire record, for the fuzz seed corpus.
func encodeRecord(payload []byte) []byte {
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.Checksum(payload, castagnoli))
	return append(frame[:], payload...)
}
