// Package la provides the small dense linear-algebra kernels the SMA
// algorithm is built on. The paper solves two kinds of systems, both by
// Gaussian elimination:
//
//   - 6×6 normal equations from least-squares quadratic surface fitting
//     (one per pixel per image: "over one million separate
//     Gaussian-eliminations" for a 512×512 sequence pair), and
//   - 6×6 normal equations for the six local affine motion parameters
//     {ai, bi, aj, bj, ak, bk} (one per correspondence hypothesis:
//     "13×13 = 169 Gaussian-eliminations per pixel").
//
// Because the 6×6 case is the hot path, Solve6 is provided as an
// allocation-free fixed-size kernel alongside the general Matrix routines.
// The motion solve additionally factors: its matrix is identical for every
// hypothesis at a tracked pixel, so Factor6 runs the elimination once and
// SolveFactored6 replays it per right-hand side, bit-identically to Solve6.
package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when elimination encounters a pivot too close to
// zero for a reliable solution.
var ErrSingular = errors.New("la: singular matrix")

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		//smavet:allow panicfree -- constructor invariant: non-positive shape is a programmer error, like a bad make() size
		panic(fmt.Sprintf("la: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set stores v at element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		//smavet:allow panicfree -- shape assertion on a math kernel, equivalent to the index fault it prevents
		panic(fmt.Sprintf("la: MulVec dim %d != %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m·o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.Cols != o.Rows {
		//smavet:allow panicfree -- shape assertion on a math kernel, equivalent to the index fault it prevents
		panic(fmt.Sprintf("la: Mul inner dims %d != %d", m.Cols, o.Rows))
	}
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.Cols; j++ {
				out.Data[i*out.Cols+j] += a * o.At(k, j)
			}
		}
	}
	return out
}

// Solve solves the square system A·x = b by Gaussian elimination with
// partial pivoting, the method named throughout the paper. A and b are
// left unmodified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("la: Solve on non-square %dx%d matrix", a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("la: Solve rhs dim %d != %d", len(b), a.Rows)
	}
	n := a.Rows
	// Augmented working copy.
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot: largest |value| in this column at or below the diagonal.
		p := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, p = v, r
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if p != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[p*n+j] = m.Data[p*n+j], m.Data[col*n+j]
			}
			x[col], x[p] = x[p], x[col]
		}
		pivot := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / pivot
			if f == 0 {
				continue
			}
			m.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				m.Data[r*n+j] -= f * m.Data[col*n+j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min‖A·x − b‖₂ via the normal equations AᵀA·x = Aᵀb,
// the formulation the paper uses for surface fitting (a 6×6 system for the
// quadratic patch coefficients).
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("la: LeastSquares rhs dim %d != %d", len(b), a.Rows)
	}
	at := a.Transpose()
	ata := at.Mul(a)
	atb := at.MulVec(b)
	return Solve(ata, atb)
}

// Mat6 is a fixed-size 6×6 system used on the SMA hot paths; Solve6 runs
// Gaussian elimination with partial pivoting without heap allocation.
type Mat6 [6][6]float64

// Vec6 is the companion fixed-size vector type.
type Vec6 [6]float64

// Solve6 solves A·x = b in place (A and b are clobbered) and returns x.
// ok is false when the system is singular to working precision.
func Solve6(a *Mat6, b *Vec6) (x Vec6, ok bool) {
	for col := 0; col < 6; col++ {
		p := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < 6; r++ {
			if v := math.Abs(a[r][col]); v > best {
				best, p = v, r
			}
		}
		if best < 1e-12 {
			return x, false
		}
		if p != col {
			a[col], a[p] = a[p], a[col]
			b[col], b[p] = b[p], b[col]
		}
		pivot := a[col][col]
		for r := col + 1; r < 6; r++ {
			f := a[r][col] / pivot
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for j := col + 1; j < 6; j++ {
				a[r][j] -= f * a[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	for i := 5; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < 6; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x, true
}

// Factored6 is the partial-pivot LU factorization of a Mat6, produced by
// Factor6. LU holds U in its upper triangle (diagonal included) and the
// elimination multipliers in its strict lower triangle; Piv[col] records
// the row swapped into position col before that column was eliminated.
//
// The factorization exists so the SMA hypothesis search can eliminate the
// normal-equation matrix once per tracked pixel and re-solve it for every
// hypothesis right-hand side: the pivot choices and multipliers depend
// only on A, so SolveFactored6 replays exactly the row swaps and
// b[r] -= f·b[col] updates that Solve6 would perform — the solution is
// bit-identical to Solve6 on the same (A, b).
type Factored6 struct {
	LU  Mat6
	Piv [6]int8
}

// Factor6 eliminates A with partial pivoting and returns its factorization.
// A is left unmodified. ok is false exactly when Solve6 would report the
// system singular (pivot magnitude below the same 1e-12 threshold).
func Factor6(a *Mat6) (f Factored6, ok bool) {
	lu := *a
	for col := 0; col < 6; col++ {
		p := col
		best := math.Abs(lu[col][col])
		for r := col + 1; r < 6; r++ {
			if v := math.Abs(lu[r][col]); v > best {
				best, p = v, r
			}
		}
		if best < 1e-12 {
			return f, false
		}
		f.Piv[col] = int8(p)
		if p != col {
			lu[col], lu[p] = lu[p], lu[col]
		}
		pivot := lu[col][col]
		for r := col + 1; r < 6; r++ {
			m := lu[r][col] / pivot
			lu[r][col] = m // stored multiplier (Solve6 writes 0 here)
			if m == 0 {
				continue
			}
			for j := col + 1; j < 6; j++ {
				lu[r][j] -= m * lu[col][j]
			}
		}
	}
	f.LU = lu
	return f, true
}

// SolveFactored6 solves A·x = b using a factorization from Factor6. b is
// clobbered, like Solve6's. The result is bit-identical to Solve6(A, b):
// row swaps carry earlier multipliers along with their rows, so LU's
// strict lower triangle holds, per final row position, exactly the
// multipliers elimination applied to the row that ended there. Applying
// the recorded swaps first (exact) and then substituting column by column
// performs the same subtractions on the same values as Solve6's
// interleaved elimination — within a column the updates only read the
// fixed pivot entry, so their order cannot change any bit.
func SolveFactored6(f *Factored6, b *Vec6) (x Vec6) {
	for col := 0; col < 6; col++ {
		if p := int(f.Piv[col]); p != col {
			b[col], b[p] = b[p], b[col]
		}
	}
	for col := 0; col < 6; col++ {
		for r := col + 1; r < 6; r++ {
			m := f.LU[r][col]
			if m == 0 {
				continue
			}
			b[r] -= m * b[col]
		}
	}
	for i := 5; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < 6; j++ {
			s -= f.LU[i][j] * x[j]
		}
		x[i] = s / f.LU[i][i]
	}
	return x
}

// BatchLanes is the lane width of the batched substitution kernel: the
// SMA batch tracker scores up to BatchLanes correspondence hypotheses per
// pass over its cached template invariants, accumulating one right-hand
// side per lane in structure-of-arrays form so the per-component inner
// loops run over a contiguous [BatchLanes]float64 stripe.
const BatchLanes = 8

// Vec6Lanes is a structure-of-arrays bundle of up to BatchLanes
// right-hand sides (or solutions): component i of lane l lives at [i][l].
// Lane stripes are contiguous, so lane-inner loops are stride-1 — the
// layout a vectorizing compiler wants and the one that amortizes each
// LU-element load across every lane of a batch.
type Vec6Lanes [6][BatchLanes]float64

// Vec returns lane l as a plain Vec6.
func (v *Vec6Lanes) Vec(l int) Vec6 {
	return Vec6{v[0][l], v[1][l], v[2][l], v[3][l], v[4][l], v[5][l]}
}

// SolveFactored6Lanes solves A·x = b for the first n lanes of bs against
// one factorization from Factor6, returning the solutions lane-aligned.
// bs is clobbered, like SolveFactored6's b. Lanes are fully independent:
// every lane undergoes exactly the row swaps, forward updates and back
// substitutions SolveFactored6 would apply to it alone — the multipliers
// and pivots depend only on A — so each returned lane is bit-identical
// to SolveFactored6(f, lane). Batching only amortizes the factorization
// loads (each LU element is read once per batch instead of once per
// hypothesis) and exposes stride-1 lane loops.
func SolveFactored6Lanes(f *Factored6, bs *Vec6Lanes, n int) (xs Vec6Lanes) {
	for col := 0; col < 6; col++ {
		if p := int(f.Piv[col]); p != col {
			for l := 0; l < n; l++ {
				bs[col][l], bs[p][l] = bs[p][l], bs[col][l]
			}
		}
	}
	for col := 0; col < 6; col++ {
		for r := col + 1; r < 6; r++ {
			m := f.LU[r][col]
			if m == 0 {
				continue
			}
			for l := 0; l < n; l++ {
				bs[r][l] -= m * bs[col][l]
			}
		}
	}
	for i := 5; i >= 0; i-- {
		d := f.LU[i][i]
		for l := 0; l < n; l++ {
			s := bs[i][l]
			for j := i + 1; j < 6; j++ {
				s -= f.LU[i][j] * xs[j][l]
			}
			xs[i][l] = s / d
		}
	}
	return xs
}

// AccumulateNormal adds the rank-1 least-squares contribution of one
// observation row to the normal equations: A += w·rowᵀrow, b += w·rhs·row.
// This is how both surface fitting and the motion-parameter solve build
// their 6×6 systems incrementally per neighborhood pixel.
func AccumulateNormal(a *Mat6, b *Vec6, row *Vec6, rhs, w float64) {
	for i := 0; i < 6; i++ {
		ri := w * row[i]
		if ri == 0 {
			continue
		}
		for j := 0; j < 6; j++ {
			a[i][j] += ri * row[j]
		}
		b[i] += ri * rhs
	}
}

// Cholesky6 solves A·x = b for a symmetric positive-definite 6×6 system
// by Cholesky factorization — the numerically natural method for the
// normal equations both SMA solves produce. About half the flops of
// Gaussian elimination; the paper's implementation used elimination, so
// the trackers default to Solve6, with Cholesky6 available as a drop-in
// (see BenchmarkSolvers). ok is false if A is not positive definite to
// working precision.
func Cholesky6(a *Mat6, b *Vec6) (x Vec6, ok bool) {
	// Factor A = L·Lᵀ in place (lower triangle).
	var l Mat6
	for j := 0; j < 6; j++ {
		d := a[j][j]
		for k := 0; k < j; k++ {
			d -= l[j][k] * l[j][k]
		}
		if d <= 1e-14 {
			return x, false
		}
		l[j][j] = math.Sqrt(d)
		for i := j + 1; i < 6; i++ {
			s := a[i][j]
			for k := 0; k < j; k++ {
				s -= l[i][k] * l[j][k]
			}
			l[i][j] = s / l[j][j]
		}
	}
	// Forward substitution L·y = b.
	var y Vec6
	for i := 0; i < 6; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l[i][k] * y[k]
		}
		y[i] = s / l[i][i]
	}
	// Back substitution Lᵀ·x = y.
	for i := 5; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < 6; k++ {
			s -= l[k][i] * x[k]
		}
		x[i] = s / l[i][i]
	}
	return x, true
}
