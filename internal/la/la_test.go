package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	a := NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 1)
	}
	b := []float64{4, 5, 6}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], b[i])
		}
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10  ->  x = 1, y = 3
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v, want [1 3]", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("singular system did not error")
	}
}

func TestSolveLeavesInputsUntouched(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 3)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	orig := a.Clone()
	b := []float64{1, 2}
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != orig.Data[i] {
			t.Fatal("Solve modified A")
		}
	}
	if b[0] != 1 || b[1] != 2 {
		t.Fatal("Solve modified b")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Fatal("non-square matrix accepted")
	}
	sq := NewMatrix(2, 2)
	if _, err := Solve(sq, []float64{1}); err == nil {
		t.Fatal("wrong rhs length accepted")
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// Fit y = 2 + 3x through exact samples; residual must vanish.
	a := NewMatrix(4, 2)
	b := make([]float64, 4)
	for i := 0; i < 4; i++ {
		x := float64(i)
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 2 + 3*x
	}
	c, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c[0]-2) > 1e-10 || math.Abs(c[1]-3) > 1e-10 {
		t.Fatalf("coeffs = %v, want [2 3]", c)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Noise-free quadratic through 9 points recovered exactly.
	a := NewMatrix(9, 3)
	b := make([]float64, 9)
	i := 0
	for x := -1.0; x <= 1.0; x += 0.25 {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		a.Set(i, 2, x*x)
		b[i] = 0.5 - 1.5*x + 2.25*x*x
		i++
	}
	c, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, -1.5, 2.25}
	for k := range want {
		if math.Abs(c[k]-want[k]) > 1e-9 {
			t.Fatalf("c[%d] = %v, want %v", k, c[k], want[k])
		}
	}
}

func TestMatrixMulTransposeAgainstHand(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	at := a.Transpose()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 {
		t.Fatalf("transpose wrong: %+v", at)
	}
	p := a.Mul(at) // 2x2: [[14, 32], [32, 77]]
	want := []float64{14, 32, 32, 77}
	for i, v := range want {
		if p.Data[i] != v {
			t.Fatalf("Mul Data[%d] = %v, want %v", i, p.Data[i], v)
		}
	}
}

func TestMulVecDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec dim mismatch did not panic")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1})
}

func TestSolve6Known(t *testing.T) {
	// Diagonal-dominant system with known solution x = (1..6).
	var a Mat6
	var b Vec6
	want := Vec6{1, 2, 3, 4, 5, 6}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			a[i][j] = rng.Float64() - 0.5
		}
		a[i][i] += 10
	}
	for i := 0; i < 6; i++ {
		var s float64
		for j := 0; j < 6; j++ {
			s += a[i][j] * want[j]
		}
		b[i] = s
	}
	x, ok := Solve6(&a, &b)
	if !ok {
		t.Fatal("Solve6 reported singular")
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolve6Singular(t *testing.T) {
	var a Mat6 // all zeros
	var b Vec6
	if _, ok := Solve6(&a, &b); ok {
		t.Fatal("Solve6 accepted an all-zero matrix")
	}
}

func TestSolve6MatchesGeneralSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		var a6 Mat6
		var b6 Vec6
		am := NewMatrix(6, 6)
		bm := make([]float64, 6)
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				v := rng.NormFloat64()
				a6[i][j] = v
				am.Set(i, j, v)
			}
			a6[i][i] += 4
			am.Set(i, i, am.At(i, i)+4)
			b6[i] = rng.NormFloat64()
			bm[i] = b6[i]
		}
		x6, ok := Solve6(&a6, &b6)
		if !ok {
			t.Fatalf("trial %d: Solve6 singular", trial)
		}
		xm, err := Solve(am, bm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < 6; i++ {
			if math.Abs(x6[i]-xm[i]) > 1e-9 {
				t.Fatalf("trial %d: x6[%d]=%v xm=%v", trial, i, x6[i], xm[i])
			}
		}
	}
}

func TestAccumulateNormalBuildsNormalEquations(t *testing.T) {
	// Accumulating rows must equal explicit AᵀA / Aᵀb construction.
	rows := [][6]float64{
		{1, 2, 3, 4, 5, 6},
		{0.5, -1, 2, 0, 1, -2},
		{3, 0, 0, 1, 1, 1},
	}
	rhs := []float64{2, -1, 0.5}
	var a Mat6
	var b Vec6
	for k, r := range rows {
		rv := Vec6(r)
		AccumulateNormal(&a, &b, &rv, rhs[k], 1)
	}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			var want float64
			for k := range rows {
				want += rows[k][i] * rows[k][j]
			}
			if math.Abs(a[i][j]-want) > 1e-12 {
				t.Fatalf("a[%d][%d] = %v, want %v", i, j, a[i][j], want)
			}
		}
		var wantB float64
		for k := range rows {
			wantB += rows[k][i] * rhs[k]
		}
		if math.Abs(b[i]-wantB) > 1e-12 {
			t.Fatalf("b[%d] = %v, want %v", i, b[i], wantB)
		}
	}
}

func TestAccumulateNormalWeighting(t *testing.T) {
	var a1, a2 Mat6
	var b1, b2 Vec6
	row := Vec6{1, 1, 1, 1, 1, 1}
	AccumulateNormal(&a1, &b1, &row, 2, 3)
	AccumulateNormal(&a2, &b2, &row, 2, 1)
	AccumulateNormal(&a2, &b2, &row, 2, 1)
	AccumulateNormal(&a2, &b2, &row, 2, 1)
	for i := 0; i < 6; i++ {
		if math.Abs(b1[i]-b2[i]) > 1e-12 {
			t.Fatalf("weighted accumulation mismatch at b[%d]: %v vs %v", i, b1[i], b2[i])
		}
		for j := 0; j < 6; j++ {
			if math.Abs(a1[i][j]-a2[i][j]) > 1e-12 {
				t.Fatalf("weighted accumulation mismatch at a[%d][%d]", i, j)
			}
		}
	}
}

// Property: for random well-conditioned systems, A·Solve(A,b) ≈ b.
func TestPropertySolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		a := NewMatrix(n, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
			b[i] = rng.NormFloat64() * 10
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		r := a.MulVec(x)
		for i := range r {
			if math.Abs(r[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: least-squares residual is orthogonal to the column space
// (Aᵀ(b − A·x) ≈ 0).
func TestPropertyLeastSquaresOrthogonality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 8 + rng.Intn(8)
		cols := 2 + rng.Intn(4)
		a := NewMatrix(rows, cols)
		b := make([]float64, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient random draw; skip
		}
		ax := a.MulVec(x)
		res := make([]float64, rows)
		for i := range res {
			res[i] = b[i] - ax[i]
		}
		proj := a.Transpose().MulVec(res)
		for _, v := range proj {
			if math.Abs(v) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolve6(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var a Mat6
	var v Vec6
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			a[i][j] = rng.NormFloat64()
		}
		a[i][i] += 8
		v[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		aa := a
		bb := v
		if _, ok := Solve6(&aa, &bb); !ok {
			b.Fatal("singular")
		}
	}
}

func TestCholesky6MatchesSolve6OnSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 50; trial++ {
		// Build SPD A = MᵀM + I.
		var m Mat6
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				m[i][j] = rng.NormFloat64()
			}
		}
		var a Mat6
		for i := 0; i < 6; i++ {
			for j := 0; j < 6; j++ {
				for k := 0; k < 6; k++ {
					a[i][j] += m[k][i] * m[k][j]
				}
			}
			a[i][i]++
		}
		var b Vec6
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		ac := a
		bc := b
		xc, ok := Cholesky6(&ac, &bc)
		if !ok {
			t.Fatalf("trial %d: SPD matrix rejected", trial)
		}
		ag := a
		bg := b
		xg, ok := Solve6(&ag, &bg)
		if !ok {
			t.Fatalf("trial %d: Solve6 failed", trial)
		}
		for i := 0; i < 6; i++ {
			if math.Abs(xc[i]-xg[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] %v vs %v", trial, i, xc[i], xg[i])
			}
		}
	}
}

func TestCholesky6RejectsIndefinite(t *testing.T) {
	var a Mat6
	for i := range a {
		a[i][i] = 1
	}
	a[3][3] = -1 // indefinite
	var b Vec6
	if _, ok := Cholesky6(&a, &b); ok {
		t.Fatal("indefinite matrix accepted")
	}
}

func BenchmarkSolvers(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var m Mat6
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			m[i][j] = rng.NormFloat64()
		}
	}
	var a Mat6
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			for k := 0; k < 6; k++ {
				a[i][j] += m[k][i] * m[k][j]
			}
		}
		a[i][i]++
	}
	var v Vec6
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	b.Run("gauss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			aa, bb := a, v
			if _, ok := Solve6(&aa, &bb); !ok {
				b.Fatal("singular")
			}
		}
	})
	b.Run("cholesky", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			aa, bb := a, v
			if _, ok := Cholesky6(&aa, &bb); !ok {
				b.Fatal("not SPD")
			}
		}
	})
}

// Property: Factor6 + SolveFactored6 is bit-identical to Solve6 — not
// merely close: the factored path replays the exact elimination arithmetic
// of Solve6, so the tracker can hoist the factorization out of the
// hypothesis loop without perturbing a single ULP of the motion estimate.
func TestPropertyFactoredSolveBitIdentical(t *testing.T) {
	check := func(t *testing.T, a *Mat6, v *Vec6) {
		t.Helper()
		aa, bb := *a, *v
		want, wantOK := Solve6(&aa, &bb)
		fa := *a
		f, ok := Factor6(&fa)
		if ok != wantOK {
			t.Fatalf("Factor6 ok = %v, Solve6 ok = %v", ok, wantOK)
		}
		if !ok {
			return
		}
		fb := *v
		got := SolveFactored6(&f, &fb)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("x[%d]: factored %v (bits %x) != direct %v (bits %x)",
					i, got[i], math.Float64bits(got[i]),
					want[i], math.Float64bits(want[i]))
			}
		}
	}

	t.Run("random", func(t *testing.T) {
		for seed := int64(0); seed < 200; seed++ {
			rng := rand.New(rand.NewSource(seed))
			var a Mat6
			var v Vec6
			for i := 0; i < 6; i++ {
				for j := 0; j < 6; j++ {
					a[i][j] = rng.NormFloat64()
				}
				v[i] = rng.NormFloat64() * 10
			}
			check(t, &a, &v)
		}
	})
	t.Run("pivoting-required", func(t *testing.T) {
		// Tiny leading diagonal entries force row swaps at every column.
		for seed := int64(0); seed < 100; seed++ {
			rng := rand.New(rand.NewSource(1000 + seed))
			var a Mat6
			var v Vec6
			for i := 0; i < 6; i++ {
				for j := 0; j < 6; j++ {
					a[i][j] = rng.NormFloat64()
				}
				a[i][i] *= 1e-14
				v[i] = rng.NormFloat64()
			}
			check(t, &a, &v)
		}
	})
	t.Run("near-singular", func(t *testing.T) {
		// Nearly dependent rows: both paths must agree on acceptance and,
		// when accepted, on the bits of the (wild) solution.
		for seed := int64(0); seed < 100; seed++ {
			rng := rand.New(rand.NewSource(2000 + seed))
			var a Mat6
			var v Vec6
			for i := 0; i < 6; i++ {
				for j := 0; j < 6; j++ {
					a[i][j] = rng.NormFloat64()
				}
				v[i] = rng.NormFloat64()
			}
			for j := 0; j < 6; j++ { // row 5 ≈ row 0 + row 1
				a[5][j] = a[0][j] + a[1][j] + rng.NormFloat64()*1e-13
			}
			check(t, &a, &v)
		}
	})
	t.Run("singular", func(t *testing.T) {
		var a Mat6 // rank 1
		for j := 0; j < 6; j++ {
			a[0][j] = float64(j + 1)
			a[3][j] = 2 * float64(j+1)
		}
		var v Vec6
		check(t, &a, &v)
	})
	t.Run("normal-equations", func(t *testing.T) {
		// The shape the tracker actually produces: AᵀWA accumulations.
		for seed := int64(0); seed < 100; seed++ {
			rng := rand.New(rand.NewSource(3000 + seed))
			var a Mat6
			var v Vec6
			for k := 0; k < 12; k++ {
				var row Vec6
				for j := range row {
					row[j] = rng.NormFloat64()
				}
				AccumulateNormal(&a, &v, &row, rng.NormFloat64(), 1+rng.Float64())
			}
			for i := 1; i < 6; i++ {
				for j := 0; j < i; j++ {
					a[i][j] = a[j][i]
				}
			}
			check(t, &a, &v)
		}
	})
}

// Reusing a factorization across many right-hand sides must leave the
// factorization itself untouched.
func TestSolveFactored6ReusableAcrossRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a Mat6
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			a[i][j] = rng.NormFloat64()
		}
		a[i][i] += 4
	}
	f, ok := Factor6(&a)
	if !ok {
		t.Fatal("Factor6 failed")
	}
	saved := f
	for trial := 0; trial < 50; trial++ {
		var v Vec6
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		aa, bb := a, v
		want, _ := Solve6(&aa, &bb)
		fb := v
		got := SolveFactored6(&f, &fb)
		if got != want {
			t.Fatalf("trial %d: factored %v != direct %v", trial, got, want)
		}
		if f != saved {
			t.Fatalf("trial %d: SolveFactored6 mutated the factorization", trial)
		}
	}
}

func BenchmarkFactoredSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	var a Mat6
	var v Vec6
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			a[i][j] = rng.NormFloat64()
		}
		a[i][i] += 8
		v[i] = rng.NormFloat64()
	}
	b.Run("factor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			aa := a
			if _, ok := Factor6(&aa); !ok {
				b.Fatal("singular")
			}
		}
	})
	f, _ := Factor6(&a)
	b.Run("solve-factored", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bb := v
			_ = SolveFactored6(&f, &bb)
		}
	})
	b.Run("solve-direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			aa, bb := a, v
			if _, ok := Solve6(&aa, &bb); !ok {
				b.Fatal("singular")
			}
		}
	})
}
