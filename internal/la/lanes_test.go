package la

import (
	"math"
	"math/rand"
	"testing"
)

// TestSolveFactored6LanesBitIdentical pins the batched substitution to the
// scalar one: for random factorable systems and random lane bundles, every
// lane of SolveFactored6Lanes must bit-equal SolveFactored6 on that lane's
// right-hand side alone, at every batch width 1..BatchLanes.
func TestSolveFactored6LanesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		var a Mat6
		// Normal-equation-shaped systems: AᵀA + a small diagonal, so most
		// trials factor; the occasional singular draw is skipped below.
		var rows [8]Vec6
		for r := range rows {
			for j := range rows[r] {
				rows[r][j] = rng.NormFloat64()
			}
		}
		var b0 Vec6
		for _, row := range rows {
			AccumulateNormal(&a, &b0, &row, rng.NormFloat64(), math.Abs(rng.NormFloat64())+1e-3)
		}
		f, ok := Factor6(&a)
		if !ok {
			continue
		}
		var bs Vec6Lanes
		for i := 0; i < 6; i++ {
			for l := 0; l < BatchLanes; l++ {
				bs[i][l] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			}
		}
		for n := 1; n <= BatchLanes; n++ {
			work := bs
			xs := SolveFactored6Lanes(&f, &work, n)
			for l := 0; l < n; l++ {
				var bl Vec6
				for i := 0; i < 6; i++ {
					bl[i] = bs[i][l]
				}
				want := SolveFactored6(&f, &bl)
				got := xs.Vec(l)
				for i := 0; i < 6; i++ {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("trial %d, width %d, lane %d, x[%d]: batched %v != scalar %v",
							trial, n, l, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSolveFactored6LanesLeavesTail asserts lanes beyond n are untouched
// outputs (zero) and that a width-n solve ignores their right-hand sides.
func TestSolveFactored6LanesLeavesTail(t *testing.T) {
	var a Mat6
	for k := 0; k < 9; k++ {
		row := Vec6{1, float64(k), float64(k * k), 1.5, -0.25 * float64(k), 2}
		var b Vec6
		AccumulateNormal(&a, &b, &row, float64(k), 1)
	}
	f, ok := Factor6(&a)
	if !ok {
		t.Skip("fixture system unexpectedly singular")
	}
	var bs Vec6Lanes
	for i := 0; i < 6; i++ {
		for l := 0; l < BatchLanes; l++ {
			bs[i][l] = float64(i + 10*l)
		}
	}
	poisoned := bs
	for i := 0; i < 6; i++ {
		for l := 3; l < BatchLanes; l++ {
			poisoned[i][l] = math.NaN()
		}
	}
	clean := bs
	xsClean := SolveFactored6Lanes(&f, &clean, 3)
	xsPois := SolveFactored6Lanes(&f, &poisoned, 3)
	for i := 0; i < 6; i++ {
		for l := 0; l < 3; l++ {
			if math.Float64bits(xsClean[i][l]) != math.Float64bits(xsPois[i][l]) {
				t.Fatalf("lane %d contaminated by tail lanes beyond the batch width", l)
			}
		}
		for l := 3; l < BatchLanes; l++ {
			if xsClean[i][l] != 0 {
				t.Fatalf("unsolved lane %d has nonzero output %v", l, xsClean[i][l])
			}
		}
	}
}
