package maspar

import (
	"errors"
	"fmt"
)

// ACU models the Array Control Unit's execution semantics: a single
// instruction stream broadcast to every PE, with data-dependent control
// flow realized through an activity-mask stack ("plural if" in MPL).
// Masked-off PEs sit out an instruction but the instruction still takes a
// full issue slot — the SIMD branch-serialization cost: an if/else
// construct costs the sum of both branches for every PE.
type ACU struct {
	M     *Machine
	stack [][]bool
}

// NewACU returns an ACU for the machine with all PEs active.
func NewACU(m *Machine) *ACU {
	all := make([]bool, m.Cfg.NProc())
	for i := range all {
		all[i] = true
	}
	return &ACU{M: m, stack: [][]bool{all}}
}

// Active returns the current activity mask (do not mutate).
func (a *ACU) Active() []bool { return a.stack[len(a.stack)-1] }

// ActiveCount reports how many PEs are currently enabled.
func (a *ACU) ActiveCount() int {
	n := 0
	for _, v := range a.Active() {
		if v {
			n++
		}
	}
	return n
}

// If pushes a refined activity mask: PEs stay active only where they are
// currently active and pred holds. One plural compare instruction is
// charged.
func (a *ACU) If(pred *Plural, test func(v float32) bool) {
	cur := a.Active()
	next := make([]bool, len(cur))
	for pe, act := range cur {
		next[pe] = act && test(pred.V[pe])
	}
	a.stack = append(a.stack, next)
	a.M.ChargeFlops(1)
}

// Else complements the innermost mask against its parent. No instruction
// is charged: the ACU just flips the stored activity bits. An error is
// returned when no plural if block is open.
func (a *ACU) Else() error {
	if len(a.stack) < 2 {
		return errors.New("maspar: Else without If")
	}
	parent := a.stack[len(a.stack)-2]
	cur := a.stack[len(a.stack)-1]
	next := make([]bool, len(cur))
	for pe := range cur {
		next[pe] = parent[pe] && !cur[pe]
	}
	a.stack[len(a.stack)-1] = next
	return nil
}

// EndIf pops the innermost activity mask. An error is returned when no
// plural if block is open.
func (a *ACU) EndIf() error {
	if len(a.stack) < 2 {
		return errors.New("maspar: EndIf without If")
	}
	a.stack = a.stack[:len(a.stack)-1]
	return nil
}

// binaryOp applies f where active; one plural flop instruction regardless
// of how many PEs participate (SIMD time is per instruction, not per
// active PE).
func (a *ACU) binaryOp(dst, x, y *Plural, f func(x, y float32) float32) {
	mask := a.Active()
	for pe, act := range mask {
		if act {
			dst.V[pe] = f(x.V[pe], y.V[pe])
		}
	}
	a.M.ChargeFlops(1)
}

// Add sets dst = x + y on active PEs.
func (a *ACU) Add(dst, x, y *Plural) {
	a.binaryOp(dst, x, y, func(p, q float32) float32 { return p + q })
}

// Sub sets dst = x − y on active PEs.
func (a *ACU) Sub(dst, x, y *Plural) {
	a.binaryOp(dst, x, y, func(p, q float32) float32 { return p - q })
}

// Mul sets dst = x · y on active PEs.
func (a *ACU) Mul(dst, x, y *Plural) {
	a.binaryOp(dst, x, y, func(p, q float32) float32 { return p * q })
}

// SetScalar broadcasts an immediate to dst on active PEs only (the masked
// form of Plural.Broadcast).
func (a *ACU) SetScalar(dst *Plural, s float32) {
	mask := a.Active()
	for pe, act := range mask {
		if act {
			dst.V[pe] = s
		}
	}
	a.M.ChargeMem(1)
	a.M.Cost.ScalarOps++
}

// Div sets dst = x / y on active PEs.
func (a *ACU) Div(dst, x, y *Plural) {
	a.binaryOp(dst, x, y, func(p, q float32) float32 { return p / q })
}

// AddScalar sets dst = x + s on active PEs (one broadcast + add).
func (a *ACU) AddScalar(dst, x *Plural, s float32) {
	mask := a.Active()
	for pe, act := range mask {
		if act {
			dst.V[pe] = x.V[pe] + s
		}
	}
	a.M.ChargeFlops(1)
	a.M.Cost.ScalarOps++
}

// MulScalar sets dst = x · s on active PEs (one broadcast + multiply).
func (a *ACU) MulScalar(dst, x *Plural, s float32) {
	mask := a.Active()
	for pe, act := range mask {
		if act {
			dst.V[pe] = x.V[pe] * s
		}
	}
	a.M.ChargeFlops(1)
	a.M.Cost.ScalarOps++
}

// Move copies src to dst on active PEs (one plural register move).
func (a *ACU) Move(dst, src *Plural) {
	mask := a.Active()
	for pe, act := range mask {
		if act {
			dst.V[pe] = src.V[pe]
		}
	}
	a.M.ChargeMem(1)
}

// ShiftInto writes the d-neighbor's src value into dst on active PEs —
// the masked form of XNetShift (the transfer happens on all PEs; masked
// PEs simply discard the incoming register).
func (a *ACU) ShiftInto(dst, src *Plural, d Direction) {
	sh := src.XNetShift(d) // charges the X-net instruction
	mask := a.Active()
	for pe, act := range mask {
		if act {
			dst.V[pe] = sh.V[pe]
		}
	}
	a.M.ChargeMem(1)
}

// Stencil4 computes the 4-neighbor Laplacian of src into dst under the
// current mask — a representative masked SIMD kernel used by tests and
// the Horn–Schunck analog on this machine: dst = N+S+E+W − 4·src.
func (a *ACU) Stencil4(dst, src *Plural) {
	tmp := NewPlural(a.M)
	acc := NewPlural(a.M)
	a.Move(acc, src)
	a.MulScalar(acc, acc, -4)
	for _, d := range []Direction{North, South, East, West} {
		a.ShiftInto(tmp, src, d)
		a.Add(acc, acc, tmp)
	}
	a.Move(dst, acc)
}

// Depth reports the activity-mask nesting depth (1 = no plural if open).
func (a *ACU) Depth() int { return len(a.stack) }

// String implements fmt.Stringer for debugging.
func (a *ACU) String() string {
	return fmt.Sprintf("ACU{depth=%d, active=%d/%d}", a.Depth(), a.ActiveCount(), a.M.Cfg.NProc())
}
