package maspar

import (
	"testing"
	"time"
)

func TestACUAllActiveInitially(t *testing.T) {
	m := testMachine(4, 4)
	a := NewACU(m)
	if a.ActiveCount() != 16 || a.Depth() != 1 {
		t.Fatalf("initial state %v", a)
	}
}

func TestACUMaskedArithmetic(t *testing.T) {
	m := testMachine(2, 2)
	a := NewACU(m)
	x := NewPlural(m)
	y := NewPlural(m)
	dst := NewPlural(m)
	copy(x.V, []float32{1, 2, 3, 4})
	copy(y.V, []float32{10, 10, 10, 10})
	// Activate only PEs with x > 2.
	a.If(x, func(v float32) bool { return v > 2 })
	if a.ActiveCount() != 2 {
		t.Fatalf("active = %d, want 2", a.ActiveCount())
	}
	a.Add(dst, x, y)
	want := []float32{0, 0, 13, 14}
	for pe, w := range want {
		if dst.V[pe] != w {
			t.Fatalf("dst[%d] = %v, want %v (masked PEs must stay 0)", pe, dst.V[pe], w)
		}
	}
	a.EndIf()
	if a.ActiveCount() != 4 {
		t.Fatal("EndIf did not restore the mask")
	}
}

func TestACUElseComplementsWithinParent(t *testing.T) {
	m := testMachine(2, 2)
	a := NewACU(m)
	x := NewPlural(m)
	copy(x.V, []float32{1, 2, 3, 4})
	// Outer region: x >= 2 (PEs 1, 2, 3).
	a.If(x, func(v float32) bool { return v >= 2 })
	// Inner: x >= 3 (PEs 2, 3); else-branch must be {1} only — PE 0 is
	// outside the parent region and must stay inactive.
	a.If(x, func(v float32) bool { return v >= 3 })
	a.Else()
	if a.ActiveCount() != 1 || !a.Active()[1] {
		t.Fatalf("else mask wrong: %v", a.Active())
	}
	a.EndIf()
	a.EndIf()
}

func TestACUIfElseCostsBothBranches(t *testing.T) {
	// SIMD branch serialization: an if/else where each branch issues one
	// add must charge two add instructions (plus the compare).
	m := testMachine(2, 2)
	a := NewACU(m)
	x := NewPlural(m)
	dst := NewPlural(m)
	m.ResetCost()
	a.If(x, func(v float32) bool { return v > 0 })
	a.Add(dst, x, x)
	a.Else()
	a.Add(dst, x, x)
	a.EndIf()
	if m.Cost.PluralFlops != 3 { // 1 compare + 2 adds
		t.Fatalf("PluralFlops = %d, want 3 (both branches issue)", m.Cost.PluralFlops)
	}
}

func TestACUStencil4Laplacian(t *testing.T) {
	m := testMachine(4, 4)
	a := NewACU(m)
	src := NewPlural(m)
	dst := NewPlural(m)
	// A delta at PE (1,1): Laplacian = −4 at the delta, +1 at neighbors.
	src.V[1*4+1] = 1
	a.Stencil4(dst, src)
	if dst.V[1*4+1] != -4 {
		t.Fatalf("center = %v, want -4", dst.V[1*4+1])
	}
	for _, pe := range []int{0*4 + 1, 2*4 + 1, 1*4 + 0, 1*4 + 2} {
		if dst.V[pe] != 1 {
			t.Fatalf("neighbor %d = %v, want 1", pe, dst.V[pe])
		}
	}
	if dst.V[0] != 0 {
		t.Fatalf("corner = %v, want 0", dst.V[0])
	}
}

func TestACURejectsUnmatchedElse(t *testing.T) {
	m := testMachine(2, 2)
	a := NewACU(m)
	if err := a.Else(); err == nil {
		t.Fatal("Else without If accepted")
	}
	if err := a.EndIf(); err == nil {
		t.Fatal("EndIf without If accepted")
	}
}

func TestMPDATransferTime(t *testing.T) {
	d := DefaultMPDA()
	// 30 MB at 30 MB/s = 1 s.
	if got := d.TransferTime(30e6); got < 990*time.Millisecond || got > 1010*time.Millisecond {
		t.Fatalf("TransferTime(30MB) = %v, want ≈1s", got)
	}
	if d.TransferTime(-5) != 0 {
		t.Fatal("negative bytes should cost nothing")
	}
}

func TestMPDASequenceIOLuisScale(t *testing.T) {
	// The 490-frame GOES-9 run: reading 490 single-byte 512×512 frames and
	// writing 489 float32 U/V pairs is minutes, not hours — I/O does not
	// dominate the 49-hour compute.
	d := DefaultMPDA()
	io, err := d.SequenceIOTime(490, 512, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	if io < 10*time.Second || io > 10*time.Minute {
		t.Fatalf("sequence I/O %v out of plausible range", io)
	}
	if _, err := d.SequenceIOTime(1, 512, 512, 1); err == nil {
		t.Fatal("single-frame sequence accepted")
	}
}
