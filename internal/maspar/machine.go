// Package maspar is a functional simulator and analytic cost model of the
// MasPar MP-2 massively parallel SIMD computer the paper targets: a
// nyproc×nxproc array of Processor Elements (PEs) under a single Array
// Control Unit, an 8-way toroidal X-net nearest-neighbor mesh, a global
// (multistage crossbar) router, and a fixed per-PE data memory.
//
// The simulator plays two roles:
//
//  1. Functional: plural (per-PE) data, real X-net shifts, router
//     permutations, the paper's 2-D hierarchical data folding, and both
//     neighborhood read-out schemes (snake and raster-scan) move actual
//     data, so SIMD kernels can be executed and verified bit-for-bit
//     against sequential code.
//  2. Analytic: every operation is charged to a Cost ledger; Config turns
//     the ledger into modeled MP-2 seconds using the machine parameters
//     the paper publishes (12.5 MHz clock, 23.0 GB/s aggregate X-net,
//     1.3 GB/s router, 22.4/10.6 GB/s direct/indirect memory, 2.4 GFlops
//     sustained double precision).
package maspar

import (
	"fmt"
	"sort"
	"time"
)

// Config describes an MP-2 configuration. The zero value is not valid; use
// DefaultConfig (the NASA Goddard machine of the paper) or fill all fields.
type Config struct {
	NYProc, NXProc int // PE array dimensions (Goddard: 128×128)
	MemPerPE       int // bytes of PE data memory (Goddard: 64 KB)

	ClockHz        float64 // PE clock (12.5 MHz → 80 ns cycle)
	SustainedFlops float64 // aggregate sustained flop/s: 60% of the 6.3
	// GFlops single-precision peak per the paper ([5]); the double-
	// precision figure is 2.4e9

	XNetBW        float64 // aggregate X-net bandwidth, bytes/s (23.0e9)
	RouterBW      float64 // aggregate router bandwidth, bytes/s (1.3e9)
	MemDirectBW   float64 // aggregate direct plural memory bandwidth (22.4e9)
	MemIndirectBW float64 // aggregate indirect plural memory bandwidth (10.6e9)
}

// DefaultConfig returns the maximally configured NASA Goddard MP-2 the
// paper used: 16,384 PEs in a 128×128 mesh with 64 KB per PE.
func DefaultConfig() Config {
	return Config{
		NYProc:         128,
		NXProc:         128,
		MemPerPE:       64 * 1024,
		ClockHz:        12.5e6,
		SustainedFlops: 0.60 * 6.3e9,
		XNetBW:         23.0e9,
		RouterBW:       1.3e9,
		MemDirectBW:    22.4e9,
		MemIndirectBW:  10.6e9,
	}
}

// ScaledConfig returns a reduced PE array with otherwise Goddard-like
// per-PE characteristics, for tests and scaled experiments. Aggregate
// bandwidths and flop rates scale with the PE count so per-PE behavior is
// preserved.
func ScaledConfig(nyproc, nxproc int) Config {
	c := DefaultConfig()
	f := float64(nyproc*nxproc) / float64(c.NYProc*c.NXProc)
	c.NYProc, c.NXProc = nyproc, nxproc
	c.SustainedFlops *= f
	c.XNetBW *= f
	c.RouterBW *= f
	c.MemDirectBW *= f
	c.MemIndirectBW *= f
	return c
}

// NProc returns the total PE count.
func (c Config) NProc() int { return c.NYProc * c.NXProc }

// Cost is the operation ledger of a simulated run. All counts are
// per-instruction: an entry of 1 means one SIMD instruction issued to the
// whole PE array (the SIMD execution model means time does not depend on
// how many PEs are active — masked-off PEs still spend the cycle).
type Cost struct {
	PluralFlops   int64 // plural floating-point instructions
	MemDirect     int64 // direct plural 32-bit loads/stores
	MemIndirect   int64 // indirect (pointer) plural 32-bit loads/stores
	XNetShifts    int64 // 32-bit register-to-register nearest-neighbor moves
	RouterSends   int64 // 32-bit global-router sends
	ScalarOps     int64 // ACU front-end operations
	GaussianElims int64 // informational: 6×6 eliminations issued (flops included above)
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.PluralFlops += o.PluralFlops
	c.MemDirect += o.MemDirect
	c.MemIndirect += o.MemIndirect
	c.XNetShifts += o.XNetShifts
	c.RouterSends += o.RouterSends
	c.ScalarOps += o.ScalarOps
	c.GaussianElims += o.GaussianElims
}

// Gauss6Flops is the flop count of one 6×6 Gaussian elimination with back
// substitution (2n³/3 forward + n² backward, n = 6).
const Gauss6Flops = 180

// Machine is a simulated MP-2 instance: a Config, a cost ledger and a
// per-PE memory allocator.
type Machine struct {
	Cfg   Config
	Cost  Cost
	alloc map[string]int // named per-PE allocations, bytes
	used  int
}

// New returns a Machine for the given configuration. An error is returned
// when the PE array dimensions are not positive.
func New(cfg Config) (*Machine, error) {
	if cfg.NYProc <= 0 || cfg.NXProc <= 0 {
		return nil, fmt.Errorf("maspar: invalid PE array %dx%d", cfg.NYProc, cfg.NXProc)
	}
	return &Machine{Cfg: cfg, alloc: make(map[string]int)}, nil
}

// MustNew is the panicking variant of New for configurations known to be
// valid at the call site (DefaultConfig, ScaledConfig with literal
// dimensions) — tests, examples and benchmark setup.
func MustNew(cfg Config) *Machine {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Alloc reserves bytesPerPE of PE memory under a name, returning an error
// when the 64 KB-per-PE budget would be exceeded — the constraint that
// drives the paper's template-mapping segmentation scheme.
func (m *Machine) Alloc(name string, bytesPerPE int) error {
	if bytesPerPE < 0 {
		return fmt.Errorf("maspar: negative allocation %q", name)
	}
	if old, ok := m.alloc[name]; ok {
		m.used -= old
	}
	if m.used+bytesPerPE > m.Cfg.MemPerPE {
		m.used += m.alloc[name] // restore
		return fmt.Errorf("maspar: allocating %q (%d B/PE) exceeds PE memory: %d + %d > %d",
			name, bytesPerPE, m.used, bytesPerPE, m.Cfg.MemPerPE)
	}
	m.alloc[name] = bytesPerPE
	m.used += bytesPerPE
	return nil
}

// Free releases a named allocation. Freeing an unknown name is a no-op.
func (m *Machine) Free(name string) {
	if b, ok := m.alloc[name]; ok {
		m.used -= b
		delete(m.alloc, name)
	}
}

// MemUsed reports the currently allocated bytes per PE.
func (m *Machine) MemUsed() int { return m.used }

// ResetCost clears the cost ledger.
func (m *Machine) ResetCost() { m.Cost = Cost{} }

// Time converts a cost ledger into modeled MP-2 wall time under this
// machine's configuration.
func (c Config) Time(cost Cost) time.Duration {
	n := float64(c.NProc())
	secs := float64(cost.PluralFlops) * n / c.SustainedFlops
	secs += float64(cost.MemDirect) * 4 * n / c.MemDirectBW
	secs += float64(cost.MemIndirect) * 4 * n / c.MemIndirectBW
	secs += float64(cost.XNetShifts) * 4 * n / c.XNetBW
	secs += float64(cost.RouterSends) * 4 * n / c.RouterBW
	secs += float64(cost.ScalarOps) / c.ClockHz
	return time.Duration(secs * float64(time.Second))
}

// Time applies the machine's configuration to its own ledger.
func (m *Machine) Time() time.Duration { return m.Cfg.Time(m.Cost) }

// ChargeFlops records n plural floating-point instructions.
func (m *Machine) ChargeFlops(n int64) { m.Cost.PluralFlops += n }

// ChargeMem records n direct plural memory operations.
func (m *Machine) ChargeMem(n int64) { m.Cost.MemDirect += n }

// ChargeMemIndirect records n indirect plural memory operations.
func (m *Machine) ChargeMemIndirect(n int64) { m.Cost.MemIndirect += n }

// ChargeXNet records n 32-bit X-net shifts.
func (m *Machine) ChargeXNet(n int64) { m.Cost.XNetShifts += n }

// ChargeRouter records n 32-bit router sends.
func (m *Machine) ChargeRouter(n int64) { m.Cost.RouterSends += n }

// ChargeGauss6 records one 6×6 Gaussian elimination: its flops plus the
// informational elimination counter the paper reports ("169
// Gaussian-eliminations per pixel").
func (m *Machine) ChargeGauss6() {
	m.Cost.PluralFlops += Gauss6Flops
	m.Cost.GaussianElims++
}

// Breakdown reports each resource's share of the modeled run time for a
// ledger — flops vs memory vs X-net vs router — the occupancy view behind
// the paper's design arguments (compute-bound hypothesis matching, mesh
// traffic kept off the router).
func (c Config) Breakdown(cost Cost) map[string]float64 {
	n := float64(c.NProc())
	parts := map[string]float64{
		"flops":  float64(cost.PluralFlops) * n / c.SustainedFlops,
		"mem":    float64(cost.MemDirect)*4*n/c.MemDirectBW + float64(cost.MemIndirect)*4*n/c.MemIndirectBW,
		"xnet":   float64(cost.XNetShifts) * 4 * n / c.XNetBW,
		"router": float64(cost.RouterSends) * 4 * n / c.RouterBW,
		"acu":    float64(cost.ScalarOps) / c.ClockHz,
	}
	// Sum in sorted key order: float addition is order-dependent in the
	// last ulp, and the shares must not vary with map iteration order.
	keys := make([]string, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += parts[k]
	}
	if total == 0 {
		return map[string]float64{}
	}
	for k, v := range parts {
		parts[k] = v / total
	}
	return parts
}

// String renders a ledger compactly.
func (c Cost) String() string {
	return fmt.Sprintf("flops=%d mem=%d/%d xnet=%d router=%d acu=%d gauss=%d",
		c.PluralFlops, c.MemDirect, c.MemIndirect, c.XNetShifts, c.RouterSends,
		c.ScalarOps, c.GaussianElims)
}
