package maspar

import (
	"testing"
	"time"
)

func TestDistributeRejectsSizeMismatch(t *testing.T) {
	m := testMachine(4, 4)
	mp := mustHier(m, 16, 16)
	if _, err := Distribute(m, mp, randGrid(8, 8, 1)); err == nil {
		t.Fatal("mismatched Distribute accepted")
	}
}

func TestNewRejectsBadPEArray(t *testing.T) {
	if _, err := New(Config{NYProc: 0, NXProc: 4}); err == nil {
		t.Fatal("New with zero PEs accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with zero PEs did not panic")
		}
	}()
	MustNew(Config{NYProc: 0, NXProc: 4})
}

func TestHierarchicalNonDividingDims(t *testing.T) {
	// 18×10 on 4×4 PEs: xvr = 5, yvr = 3; padded slots must not corrupt
	// the round trip.
	m := testMachine(4, 4)
	g := randGrid(18, 10, 7)
	mp := mustHier(m, 18, 10)
	if mp.XVR != 5 || mp.YVR != 3 {
		t.Fatalf("xvr=%d yvr=%d, want 5, 3", mp.XVR, mp.YVR)
	}
	img := mustDistribute(m, mp, g)
	if !img.Collect().Equal(g) {
		t.Fatal("non-dividing dims round trip failed")
	}
}

func TestCutStackNonDividingDims(t *testing.T) {
	m := testMachine(4, 4)
	g := randGrid(10, 6, 9)
	mp := mustCut(m, 10, 6)
	img := mustDistribute(m, mp, g)
	if !img.Collect().Equal(g) {
		t.Fatal("cut-stack non-dividing round trip failed")
	}
}

func TestAllocNegativeRejected(t *testing.T) {
	m := testMachine(2, 2)
	if err := m.Alloc("bad", -1); err == nil {
		t.Fatal("negative allocation accepted")
	}
}

func TestFreeUnknownIsNoop(t *testing.T) {
	m := testMachine(2, 2)
	m.Free("never-allocated")
	if m.MemUsed() != 0 {
		t.Fatal("Free of unknown name changed accounting")
	}
}

func TestResetCost(t *testing.T) {
	m := testMachine(2, 2)
	m.ChargeFlops(10)
	m.ChargeXNet(3)
	m.ResetCost()
	if m.Cost != (Cost{}) {
		t.Fatalf("ResetCost left %+v", m.Cost)
	}
}

func TestMachineTimeUsesOwnLedger(t *testing.T) {
	m := testMachine(2, 2)
	if m.Time() != 0 {
		t.Fatal("fresh machine has nonzero time")
	}
	m.ChargeFlops(1000)
	if m.Time() <= 0 {
		t.Fatal("charged machine has zero time")
	}
}

func TestScaledConfigTimeScale(t *testing.T) {
	// Per-PE behavior preserved: the same per-instruction cost on a small
	// machine as on the full one.
	full := DefaultConfig()
	small := ScaledConfig(8, 8)
	tFull := full.Time(Cost{PluralFlops: 100})
	tSmall := small.Time(Cost{PluralFlops: 100})
	diff := tFull - tSmall
	if diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("per-instruction time differs: %v vs %v", tFull, tSmall)
	}
}

func TestMemIndirectCharging(t *testing.T) {
	m := testMachine(2, 2)
	m.ChargeMemIndirect(100)
	direct := m.Cfg.Time(Cost{MemDirect: 100})
	indirect := m.Time()
	// Indirect plural memory is slower (10.6 vs 22.4 GB/s).
	if indirect <= direct {
		t.Fatalf("indirect %v not slower than direct %v", indirect, direct)
	}
}

func TestSnakeFetchCostMonotoneInRadius(t *testing.T) {
	m := MustNew(DefaultConfig())
	mp := mustHier(m, 512, 512)
	prev := Cost{}
	for r := 1; r <= 16; r *= 2 {
		c := SnakeFetchCost(mp, r)
		if c.XNetShifts <= prev.XNetShifts || c.MemDirect <= prev.MemDirect {
			t.Fatalf("snake cost not monotone at r=%d", r)
		}
		prev = c
	}
}

func TestRouterFetchCostScalesWithWindow(t *testing.T) {
	m := MustNew(DefaultConfig())
	mp := mustHier(m, 512, 512)
	c1 := RouterFetchCost(mp, 1)
	c2 := RouterFetchCost(mp, 2)
	if c2.RouterSends != c1.RouterSends*25/9 {
		t.Fatalf("router sends %d vs %d: want (2r+1)² scaling", c1.RouterSends, c2.RouterSends)
	}
}

func TestPluralClone(t *testing.T) {
	m := testMachine(2, 2)
	p := NewPlural(m)
	p.V[0] = 7
	q := p.Clone()
	q.V[0] = 9
	if p.V[0] != 7 {
		t.Fatal("Clone aliased the register")
	}
}

func TestPEIndex(t *testing.T) {
	m := testMachine(4, 8) // 4 rows (nyproc), 8 cols (nxproc)
	x, y := PEIndex(m, 8*2+5)
	if x != 5 || y != 2 {
		t.Fatalf("PEIndex = (%d,%d), want (5,2)", x, y)
	}
}

func TestDirectionStringAll(t *testing.T) {
	want := []string{"N", "NE", "E", "SE", "S", "SW", "W", "NW"}
	for d := North; d <= NorthWest; d++ {
		if d.String() != want[d] {
			t.Fatalf("Direction(%d).String() = %q", int(d), d.String())
		}
	}
	if Direction(42).String() == "N" {
		t.Fatal("invalid direction aliased a real one")
	}
}

func TestBreakdownSharesSumToOne(t *testing.T) {
	cfg := DefaultConfig()
	cost := Cost{PluralFlops: 1000, MemDirect: 500, XNetShifts: 200, RouterSends: 10, ScalarOps: 5}
	b := cfg.Breakdown(cost)
	var sum float64
	for _, v := range b {
		if v < 0 || v > 1 {
			t.Fatalf("share out of range: %v", b)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("shares sum to %v", sum)
	}
	if cfg.Breakdown(Cost{}) == nil {
		t.Fatal("empty ledger breakdown should be an empty map, not nil-dereference")
	}
}

func TestBreakdownComputeBoundFrederic(t *testing.T) {
	// The paper's Frederic run is overwhelmingly compute-bound: flops
	// must dominate the modeled breakdown.
	m := MustNew(DefaultConfig())
	mp := mustHier(m, 512, 512)
	_ = mp
	// The per-layer hypothesis-matching ledger: the full flop volume
	// against the six field fetches ModelRun charges.
	m.ChargeFlops(169 * 14641 * 180)
	for i := 0; i < 6; i++ {
		m.Cost.Add(mustFetchCost(mustHier(m, 512, 512), 60, RasterReadout))
	}
	b := m.Cfg.Breakdown(m.Cost)
	if b["flops"] < 0.9 {
		t.Fatalf("flops share %v, want > 0.9 (compute-bound)", b["flops"])
	}
}

func TestCostString(t *testing.T) {
	s := Cost{PluralFlops: 7, GaussianElims: 2}.String()
	if !containsAll(s, "flops=7", "gauss=2") {
		t.Fatalf("Cost.String() = %q", s)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
