package maspar

import (
	"fmt"

	"sma/internal/grid"
)

// Mapping is a data folding of an M×N pixel image onto the PE array: every
// pixel is assigned a (PE, memory-layer) slot. The paper compares the 2-D
// hierarchical mapping (chosen) against cut-and-stack (rejected) — the
// difference is how many X-net mesh transfers a neighborhood fetch needs.
type Mapping interface {
	// Place returns the PE index and memory layer of pixel (x, y).
	Place(x, y int) (pe, mem int)
	// Invert returns the pixel stored at (pe, mem).
	Invert(pe, mem int) (x, y int)
	// Layers returns the number of memory layers (pixels per PE).
	Layers() int
	// PESpanX returns how many PE columns a ±r pixel x-neighborhood spans
	// beyond the home PE (the mesh-transfer radius in PE units).
	PESpanX(r int) int
	// PESpanY is the y-direction analog.
	PESpanY(r int) int
	// Dims returns the image dimensions (N columns, M rows).
	Dims() (w, h int)
	// ShiftCost returns the per-instruction cost of shifting the
	// distributed image by one pixel in direction d: X-net transfers for
	// the pixels that cross PE boundaries and memory moves for the
	// intra-PE shuffle.
	ShiftCost(d Direction) (xnet, mem int64)
	// RasterCost returns the communication cost of one raster-scan
	// neighborhood fetch of radius r under this mapping.
	RasterCost(r int) Cost
}

// Hierarchical is the 2-D hierarchical data mapping of the paper (Fig. 2
// and eq. 12–13): each PE stores a contiguous xvr×yvr block of pixels, so
// spatially neighboring pixels live on the same or neighboring PEs.
type Hierarchical struct {
	W, H           int // image dims: W = N columns, H = M rows
	NXProc, NYProc int
	XVR, YVR       int // pixels per PE in x and y: xvr = ceil(N/nxproc)
}

// NewHierarchical builds the hierarchical mapping for an image of w×h
// pixels on the machine's PE array (paper eq. 12: yvr = ⌈M/nyproc⌉,
// xvr = ⌈N/nxproc⌉). An error is returned for non-positive image
// dimensions.
func NewHierarchical(m *Machine, w, h int) (*Hierarchical, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("maspar: invalid image %dx%d", w, h)
	}
	return &Hierarchical{
		W: w, H: h,
		NXProc: m.Cfg.NXProc, NYProc: m.Cfg.NYProc,
		XVR: (w + m.Cfg.NXProc - 1) / m.Cfg.NXProc,
		YVR: (h + m.Cfg.NYProc - 1) / m.Cfg.NYProc,
	}, nil
}

// Place implements eq. (12): iyproc = y div yvr, ixproc = x div xvr,
// mem = (x mod xvr) + xvr·(y mod yvr).
func (h *Hierarchical) Place(x, y int) (pe, mem int) {
	iyproc := y / h.YVR
	ixproc := x / h.XVR
	mem = (x % h.XVR) + h.XVR*(y%h.YVR)
	return iyproc*h.NXProc + ixproc, mem
}

// Invert implements eq. (13): x = ixproc·xvr + (mem mod xvr),
// y = iyproc·yvr + (mem div xvr).
func (h *Hierarchical) Invert(pe, mem int) (x, y int) {
	iyproc := pe / h.NXProc
	ixproc := pe % h.NXProc
	x = ixproc*h.XVR + mem%h.XVR
	y = iyproc*h.YVR + mem/h.XVR
	return x, y
}

// Layers implements Mapping.
func (h *Hierarchical) Layers() int { return h.XVR * h.YVR }

// PESpanX implements Mapping: a ±r pixel span crosses at most
// ⌈r/xvr⌉ PE columns in each direction.
func (h *Hierarchical) PESpanX(r int) int { return (r + h.XVR - 1) / h.XVR }

// PESpanY implements Mapping.
func (h *Hierarchical) PESpanY(r int) int { return (r + h.YVR - 1) / h.YVR }

// Dims implements Mapping.
func (h *Hierarchical) Dims() (w, hh int) { return h.W, h.H }

// ShiftCost implements Mapping: every resident pixel moves one memory
// slot; the boundary column (yvr pixels) and/or row (xvr pixels) cross via
// X-net.
func (h *Hierarchical) ShiftCost(d Direction) (xnet, mem int64) {
	dx, dy := d.Delta()
	mem = int64(h.Layers())
	if dx != 0 {
		xnet += int64(h.YVR)
	}
	if dy != 0 {
		xnet += int64(h.XVR)
	}
	return xnet, mem
}

// RasterCost implements Mapping: for every source memory layer, the
// (generally non-square) PE bounding box is traversed in raster order —
// one X-net shift instruction per box position — and each PE stores the
// values its resident target pixels need.
func (h *Hierarchical) RasterCost(r int) Cost {
	var c Cost
	side := int64(2*r + 1)
	// Per source layer (sx, sy): PE box extents depend on the intra-PE
	// position of the source pixel.
	for sy := 0; sy < h.YVR; sy++ {
		bh := boxExtent(sy, r, h.YVR)
		for sx := 0; sx < h.XVR; sx++ {
			bw := boxExtent(sx, r, h.XVR)
			c.XNetShifts += bw * bh
		}
	}
	// One store per needed value per resident target pixel.
	c.MemDirect += int64(h.Layers()) * side * side
	return c
}

// CutStack is the cut-and-stack data mapping the paper rejects: pixel
// (x, y) goes to PE (x mod nxproc, y mod nyproc), so the image is cut into
// nxproc×nyproc-sized tiles stacked in PE memory. A ±r pixel neighborhood
// then spans r whole PE columns — xvr times more mesh transfers than the
// hierarchical mapping.
type CutStack struct {
	W, H           int
	NXProc, NYProc int
	TilesX         int // number of tiles across: ceil(W/nxproc)
	TilesY         int
}

// NewCutStack builds the cut-and-stack mapping. An error is returned for
// non-positive image dimensions.
func NewCutStack(m *Machine, w, h int) (*CutStack, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("maspar: invalid image %dx%d", w, h)
	}
	return &CutStack{
		W: w, H: h,
		NXProc: m.Cfg.NXProc, NYProc: m.Cfg.NYProc,
		TilesX: (w + m.Cfg.NXProc - 1) / m.Cfg.NXProc,
		TilesY: (h + m.Cfg.NYProc - 1) / m.Cfg.NYProc,
	}, nil
}

// Place implements Mapping.
func (c *CutStack) Place(x, y int) (pe, mem int) {
	pe = (y%c.NYProc)*c.NXProc + (x % c.NXProc)
	mem = (y/c.NYProc)*c.TilesX + x/c.NXProc
	return pe, mem
}

// Invert implements Mapping.
func (c *CutStack) Invert(pe, mem int) (x, y int) {
	x = (mem%c.TilesX)*c.NXProc + pe%c.NXProc
	y = (mem/c.TilesX)*c.NYProc + pe/c.NXProc
	return x, y
}

// Layers implements Mapping.
func (c *CutStack) Layers() int { return c.TilesX * c.TilesY }

// PESpanX implements Mapping: under cut-and-stack every pixel step is a PE
// step, capped at the mesh width.
func (c *CutStack) PESpanX(r int) int {
	if r > c.NXProc {
		return c.NXProc
	}
	return r
}

// PESpanY implements Mapping.
func (c *CutStack) PESpanY(r int) int {
	if r > c.NYProc {
		return c.NYProc
	}
	return r
}

// Dims implements Mapping.
func (c *CutStack) Dims() (w, h int) { return c.W, c.H }

// ShiftCost implements Mapping: under cut-and-stack every pixel step is a
// PE step, so all resident pixels cross a PE boundary on every shift.
func (c *CutStack) ShiftCost(d Direction) (xnet, mem int64) {
	mem = int64(c.Layers())
	xnet = int64(c.Layers())
	return xnet, mem
}

// RasterCost implements Mapping: every source layer's box spans the full
// pixel radius in PEs.
func (c *CutStack) RasterCost(r int) Cost {
	var cost Cost
	side := int64(2*r + 1)
	bw := int64(2*c.PESpanX(r) + 1)
	bh := int64(2*c.PESpanY(r) + 1)
	cost.XNetShifts += int64(c.Layers()) * bw * bh
	cost.MemDirect += int64(c.Layers()) * side * side
	return cost
}

// Image is an image distributed over PE memory under a Mapping: layer ℓ of
// Data holds, for every PE, the pixel stored at memory layer ℓ. Slots
// beyond the image border (when dimensions do not divide evenly) hold 0.
type Image struct {
	M    *Machine
	Map  Mapping
	Data [][]float32 // [mem][pe]
}

// Distribute loads g onto the machine under the mapping, charging one
// direct plural memory store per layer (the parallel disk array feeds all
// PEs concurrently; per-instruction cost is what SIMD time depends on).
// An error is returned when the image does not match the mapping's
// dimensions.
func Distribute(m *Machine, mp Mapping, g *grid.Grid) (*Image, error) {
	w, h := mp.Dims()
	if g.W != w || g.H != h {
		return nil, fmt.Errorf("maspar: image %dx%d does not match mapping %dx%d", g.W, g.H, w, h)
	}
	img := &Image{M: m, Map: mp, Data: make([][]float32, mp.Layers())}
	nproc := m.Cfg.NProc()
	for l := range img.Data {
		img.Data[l] = make([]float32, nproc)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pe, mem := mp.Place(x, y)
			img.Data[mem][pe] = g.AtUnchecked(x, y)
		}
	}
	m.ChargeMem(int64(mp.Layers()))
	return img, nil
}

// Collect gathers the distributed image back into a grid.
func (img *Image) Collect() *grid.Grid {
	w, h := img.Map.Dims()
	g := grid.New(w, h)
	for mem, layer := range img.Data {
		for pe, v := range layer {
			x, y := img.Map.Invert(pe, mem)
			if x < w && y < h {
				g.Set(x, y, v)
			}
		}
	}
	img.M.ChargeMem(int64(img.Map.Layers()))
	return g
}

// At returns the distributed pixel (x, y) — a test/debug accessor that
// bypasses cost accounting.
func (img *Image) At(x, y int) float32 {
	pe, mem := img.Map.Place(x, y)
	return img.Data[mem][pe]
}
