package maspar

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sma/internal/grid"
)

func testMachine(ny, nx int) *Machine { return MustNew(ScaledConfig(ny, nx)) }

func randGrid(w, h int, seed int64) *grid.Grid {
	rng := rand.New(rand.NewSource(seed))
	g := grid.New(w, h)
	for i := range g.Data {
		g.Data[i] = rng.Float32() * 100
	}
	return g
}

// --- Config and cost model -------------------------------------------------

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.NProc() != 16384 {
		t.Fatalf("NProc = %d, want 16384", c.NProc())
	}
	if c.MemPerPE != 64*1024 {
		t.Fatalf("MemPerPE = %d, want 64 KB", c.MemPerPE)
	}
	// The paper: X-net bandwidth is 18 times higher than router.
	if ratio := c.XNetBW / c.RouterBW; ratio < 17 || ratio > 19 {
		t.Fatalf("XNet/Router bandwidth ratio = %v, want ≈18", ratio)
	}
}

func TestScaledConfigPreservesPerPERates(t *testing.T) {
	full := DefaultConfig()
	small := ScaledConfig(8, 8)
	perPEFull := full.SustainedFlops / float64(full.NProc())
	perPESmall := small.SustainedFlops / float64(small.NProc())
	if diff := perPEFull - perPESmall; diff > 1 || diff < -1 {
		t.Fatalf("per-PE flop rate changed: %v vs %v", perPEFull, perPESmall)
	}
}

func TestTimeModelUnitCosts(t *testing.T) {
	c := DefaultConfig()
	// One plural flop instruction = nproc flops at the sustained rate.
	d := c.Time(Cost{PluralFlops: 1})
	want := time.Duration(float64(c.NProc()) / c.SustainedFlops * float64(time.Second))
	if d < want-time.Nanosecond || d > want+time.Nanosecond {
		t.Fatalf("flop instruction time %v, want %v", d, want)
	}
	// Router sends are 18x slower than X-net shifts (32-bit each).
	dx := c.Time(Cost{XNetShifts: 100})
	dr := c.Time(Cost{RouterSends: 100})
	ratio := float64(dr) / float64(dx)
	if ratio < 17 || ratio > 19 {
		t.Fatalf("router/xnet time ratio = %v, want ≈18", ratio)
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{PluralFlops: 1, XNetShifts: 2, GaussianElims: 3}
	a.Add(Cost{PluralFlops: 10, MemDirect: 5, GaussianElims: 1})
	if a.PluralFlops != 11 || a.MemDirect != 5 || a.XNetShifts != 2 || a.GaussianElims != 4 {
		t.Fatalf("Add result %+v", a)
	}
}

func TestChargeGauss6(t *testing.T) {
	m := testMachine(4, 4)
	m.ChargeGauss6()
	if m.Cost.GaussianElims != 1 || m.Cost.PluralFlops != Gauss6Flops {
		t.Fatalf("ledger %+v", m.Cost)
	}
}

// --- Memory allocator ------------------------------------------------------

func TestAllocBudget(t *testing.T) {
	m := testMachine(4, 4)
	if err := m.Alloc("images", 60*1024); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc("mappings", 8*1024); err == nil {
		t.Fatal("allocation over 64 KB/PE accepted")
	}
	if err := m.Alloc("mappings", 4*1024); err != nil {
		t.Fatal(err)
	}
	if m.MemUsed() != 64*1024 {
		t.Fatalf("MemUsed = %d", m.MemUsed())
	}
	m.Free("mappings")
	if m.MemUsed() != 60*1024 {
		t.Fatalf("MemUsed after free = %d", m.MemUsed())
	}
}

func TestAllocReplaceSameName(t *testing.T) {
	m := testMachine(2, 2)
	if err := m.Alloc("a", 1000); err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc("a", 2000); err != nil {
		t.Fatal(err)
	}
	if m.MemUsed() != 2000 {
		t.Fatalf("MemUsed = %d, want 2000 (replacement, not sum)", m.MemUsed())
	}
}

// --- Hierarchical mapping (Fig. 2, eq. 12–13) -------------------------------

func TestHierarchicalPaperExample(t *testing.T) {
	// 512×512 image on 128×128 PEs -> 16 pixels per PE (paper §3.2).
	m := MustNew(DefaultConfig())
	h := mustHier(m, 512, 512)
	if h.XVR != 4 || h.YVR != 4 || h.Layers() != 16 {
		t.Fatalf("xvr=%d yvr=%d layers=%d, want 4,4,16", h.XVR, h.YVR, h.Layers())
	}
}

func TestHierarchicalRoundTrip(t *testing.T) {
	m := testMachine(4, 8)
	h := mustHier(m, 32, 16)
	seen := make(map[[2]int]bool)
	for y := 0; y < 16; y++ {
		for x := 0; x < 32; x++ {
			pe, mem := h.Place(x, y)
			if pe < 0 || pe >= 32 || mem < 0 || mem >= h.Layers() {
				t.Fatalf("Place(%d,%d) = (%d,%d) out of range", x, y, pe, mem)
			}
			if seen[[2]int{pe, mem}] {
				t.Fatalf("slot collision at (%d,%d)", pe, mem)
			}
			seen[[2]int{pe, mem}] = true
			bx, by := h.Invert(pe, mem)
			if bx != x || by != y {
				t.Fatalf("Invert(Place(%d,%d)) = (%d,%d)", x, y, bx, by)
			}
		}
	}
}

func TestHierarchicalNeighborsStayClose(t *testing.T) {
	// The defining property: pixel neighbors are on the same or adjacent PEs.
	m := testMachine(8, 8)
	h := mustHier(m, 32, 32) // xvr = yvr = 4
	for y := 0; y < 31; y++ {
		for x := 0; x < 31; x++ {
			pe1, _ := h.Place(x, y)
			pe2, _ := h.Place(x+1, y)
			px1, py1 := pe1%8, pe1/8
			px2, py2 := pe2%8, pe2/8
			if abs(px1-px2) > 1 || abs(py1-py2) > 1 {
				t.Fatalf("x-neighbors of (%d,%d) are on distant PEs", x, y)
			}
		}
	}
}

func TestHierarchicalPESpan(t *testing.T) {
	m := MustNew(DefaultConfig())
	h := mustHier(m, 512, 512) // xvr = 4
	cases := []struct{ r, want int }{{1, 1}, {4, 1}, {5, 2}, {60, 15}}
	for _, c := range cases {
		if got := h.PESpanX(c.r); got != c.want {
			t.Errorf("PESpanX(%d) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestCutStackRoundTripAndSpan(t *testing.T) {
	m := testMachine(4, 4)
	c := mustCut(m, 16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			pe, mem := c.Place(x, y)
			bx, by := c.Invert(pe, mem)
			if bx != x || by != y {
				t.Fatalf("cut-stack Invert(Place(%d,%d)) = (%d,%d)", x, y, bx, by)
			}
		}
	}
	if got := c.PESpanX(3); got != 3 {
		t.Fatalf("cut-stack PESpanX(3) = %d, want 3 (every pixel step is a PE step)", got)
	}
}

func TestDistributeCollectRoundTrip(t *testing.T) {
	m := testMachine(4, 4)
	g := randGrid(16, 16, 1)
	for _, mp := range []Mapping{mustHier(m, 16, 16), mustCut(m, 16, 16)} {
		img := mustDistribute(m, mp, g)
		back := img.Collect()
		if !g.Equal(back) {
			t.Fatalf("%T round trip failed", mp)
		}
	}
}

// Property: Place is a bijection for random image sizes (padded slots unused).
func TestPropertyHierarchicalBijection(t *testing.T) {
	f := func(wRaw, hRaw uint8) bool {
		w := int(wRaw%32) + 4
		h := int(hRaw%32) + 4
		m := testMachine(4, 4)
		hm := mustHier(m, w, h)
		seen := make(map[int]bool)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				pe, mem := hm.Place(x, y)
				key := pe*hm.Layers()*2 + mem
				if seen[key] {
					return false
				}
				seen[key] = true
				bx, by := hm.Invert(pe, mem)
				if bx != x || by != y {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// --- X-net topology (Fig. 1) -------------------------------------------------

func TestXNetShiftDirections(t *testing.T) {
	m := testMachine(4, 4)
	p := NewPlural(m)
	for i := range p.V {
		p.V[i] = float32(i)
	}
	// Shifting East: PE (x,y) receives from (x+1,y), toroidal.
	e := p.XNetShift(East)
	for py := 0; py < 4; py++ {
		for px := 0; px < 4; px++ {
			want := float32(py*4 + (px+1)%4)
			if got := e.V[py*4+px]; got != want {
				t.Fatalf("East shift at (%d,%d) = %v, want %v", px, py, got, want)
			}
		}
	}
	// A full cycle of 4 shifts in one direction returns the original.
	c := p
	for i := 0; i < 4; i++ {
		c = c.XNetShift(South)
	}
	for i := range p.V {
		if c.V[i] != p.V[i] {
			t.Fatal("4 South shifts on a 4-row torus did not return to start")
		}
	}
}

func TestXNetDiagonalEqualsTwoOrthogonal(t *testing.T) {
	m := testMachine(4, 4)
	p := NewPlural(m)
	for i := range p.V {
		p.V[i] = float32(i * i)
	}
	d := p.XNetShift(SouthEast)
	o := p.XNetShift(South).XNetShift(East)
	for i := range d.V {
		if d.V[i] != o.V[i] {
			t.Fatal("SE shift != South then East")
		}
	}
	// But the 8-way X-net does the diagonal in ONE shift instruction.
	m.ResetCost()
	p.XNetShift(SouthEast)
	if m.Cost.XNetShifts != 1 {
		t.Fatalf("diagonal shift cost %d instructions, want 1", m.Cost.XNetShifts)
	}
}

func TestXNetShiftChargesCost(t *testing.T) {
	m := testMachine(4, 4)
	p := NewPlural(m)
	m.ResetCost()
	p.XNetShift(North)
	p.XNetShift(West)
	if m.Cost.XNetShifts != 2 {
		t.Fatalf("XNetShifts = %d, want 2", m.Cost.XNetShifts)
	}
}

func TestDirectionDeltaAll8(t *testing.T) {
	seen := make(map[[2]int]bool)
	for d := North; d <= NorthWest; d++ {
		dx, dy := d.Delta()
		if dx == 0 && dy == 0 {
			t.Fatalf("direction %v has zero delta", d)
		}
		seen[[2]int{dx, dy}] = true
	}
	if len(seen) != 8 {
		t.Fatalf("got %d distinct neighbor deltas, want 8", len(seen))
	}
}

func TestRouterPermute(t *testing.T) {
	m := testMachine(2, 2)
	p := NewPlural(m)
	copy(p.V, []float32{10, 20, 30, 40})
	out, err := p.RouterPermute([]int{3, 2, 1, 0}) // reverse
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{40, 30, 20, 10}
	for i, v := range want {
		if out.V[i] != v {
			t.Fatalf("permute out[%d] = %v, want %v", i, out.V[i], v)
		}
	}
	if m.Cost.RouterSends != 1 {
		t.Fatalf("RouterSends = %d, want 1", m.Cost.RouterSends)
	}
}

func TestRouterPermuteRejectsNonPermutation(t *testing.T) {
	m := testMachine(2, 2)
	p := NewPlural(m)
	if _, err := p.RouterPermute([]int{0, 0, 1, 2}); err == nil {
		t.Fatal("duplicate destination accepted")
	}
	if _, err := p.RouterPermute([]int{0, 1, 2}); err == nil {
		t.Fatal("short permutation accepted")
	}
	if _, err := p.RouterPermute([]int{0, 1, 2, 9}); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestReduceAdd(t *testing.T) {
	m := testMachine(4, 4)
	p := NewPlural(m)
	for i := range p.V {
		p.V[i] = 1
	}
	if s := p.ReduceAdd(); s != 16 {
		t.Fatalf("ReduceAdd = %v, want 16", s)
	}
	if m.Cost.XNetShifts == 0 {
		t.Fatal("reduce charged no communication")
	}
}

func TestReduceMax(t *testing.T) {
	m := testMachine(2, 2)
	p := NewPlural(m)
	copy(p.V, []float32{-5, 3, 2, -7})
	if v := p.ReduceMax(); v != 3 {
		t.Fatalf("ReduceMax = %v, want 3", v)
	}
}

func TestBroadcast(t *testing.T) {
	m := testMachine(2, 2)
	p := NewPlural(m)
	p.Broadcast(7)
	for _, v := range p.V {
		if v != 7 {
			t.Fatalf("broadcast value %v", v)
		}
	}
}

// --- Neighborhood read-out (Fig. 3, §4.2) ------------------------------------

func TestShiftPixelMovesImage(t *testing.T) {
	m := testMachine(4, 4)
	g := randGrid(16, 16, 3)
	img := mustDistribute(m, mustHier(m, 16, 16), g)
	sh := img.ShiftPixel(East) // out(x,y) = in(x+1,y)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			want := g.AtUnchecked((x+1)%16, y)
			if got := sh.At(x, y); got != want {
				t.Fatalf("ShiftPixel East at (%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestShiftPixelCostHierarchicalVsCutStack(t *testing.T) {
	mH := testMachine(4, 4)
	mC := testMachine(4, 4)
	g := randGrid(16, 16, 4)
	imgH := mustDistribute(mH, mustHier(mH, 16, 16), g)
	imgC := mustDistribute(mC, mustCut(mC, 16, 16), g)
	mH.ResetCost()
	mC.ResetCost()
	imgH.ShiftPixel(East)
	imgC.ShiftPixel(East)
	// Hierarchical: only the boundary column (yvr=4 pixels) crosses PEs.
	// Cut-and-stack: all 16 resident pixels cross.
	if mH.Cost.XNetShifts != 4 {
		t.Fatalf("hierarchical shift xnet = %d, want 4", mH.Cost.XNetShifts)
	}
	if mC.Cost.XNetShifts != 16 {
		t.Fatalf("cut-stack shift xnet = %d, want 16", mC.Cost.XNetShifts)
	}
}

func TestSnakePathCoversBoxExactlyOnce(t *testing.T) {
	for _, r := range []int{1, 2, 3} {
		path := snakePath(r)
		du, dv := 0, 0
		visited := make(map[[2]int]int)
		visited[[2]int{0, 0}]++
		for _, d := range path {
			dx, dy := d.Delta()
			du += dx
			dv += dy
			visited[[2]int{du, dv}]++
		}
		side := 2*r + 1
		// Every offset in the box is visited at least once...
		for y := -r; y <= r; y++ {
			for x := -r; x <= r; x++ {
				if visited[[2]int{x, y}] == 0 {
					t.Fatalf("r=%d: offset (%d,%d) never visited", r, x, y)
				}
			}
		}
		// ...and the walk never leaves the box.
		if len(visited) != side*side {
			t.Fatalf("r=%d: visited %d offsets, want %d", r, len(visited), side*side)
		}
	}
}

func TestGatherSnakeMatchesDirectGather(t *testing.T) {
	m := testMachine(4, 4)
	g := randGrid(16, 16, 5)
	img := mustDistribute(m, mustHier(m, 16, 16), g)
	r := 2
	nb := GatherSnake(img, r)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			for dv := -r; dv <= r; dv++ {
				for du := -r; du <= r; du++ {
					want := g.AtUnchecked(((x+du)%16+16)%16, ((y+dv)%16+16)%16)
					if got := nb.At(x, y, du, dv); got != want {
						t.Fatalf("snake nb(%d,%d,%d,%d) = %v, want %v", x, y, du, dv, got, want)
					}
				}
			}
		}
	}
}

func TestGatherRasterMatchesSnake(t *testing.T) {
	m1 := testMachine(4, 4)
	m2 := testMachine(4, 4)
	g := randGrid(16, 16, 6)
	r := 2
	snake := GatherSnake(mustDistribute(m1, mustHier(m1, 16, 16), g), r)
	raster := GatherRaster(mustDistribute(m2, mustHier(m2, 16, 16), g), r)
	for i := range snake.Vals {
		for k := range snake.Vals[i] {
			if snake.Vals[i][k] != raster.Vals[i][k] {
				t.Fatalf("schemes disagree at pixel %d offset %d", i, k)
			}
		}
	}
}

func TestSnakeFetchCostMatchesActualCharges(t *testing.T) {
	m := testMachine(4, 4)
	g := randGrid(16, 16, 7)
	mp := mustHier(m, 16, 16)
	img := mustDistribute(m, mp, g)
	for _, r := range []int{1, 2, 3} {
		m.ResetCost()
		GatherSnake(img, r)
		want := SnakeFetchCost(mp, r)
		if m.Cost.XNetShifts != want.XNetShifts || m.Cost.MemDirect != want.MemDirect {
			t.Fatalf("r=%d: actual (xnet=%d mem=%d) vs formula (xnet=%d mem=%d)",
				r, m.Cost.XNetShifts, m.Cost.MemDirect, want.XNetShifts, want.MemDirect)
		}
	}
}

func TestRasterFasterThanSnakeAtPaperScale(t *testing.T) {
	// The paper's §4.2 finding: the raster-scan bounding-box read-out beats
	// the snake read-out. Check with Frederic-scale parameters (121×121
	// template on a 512×512 image, 128×128 PEs).
	cfg := DefaultConfig()
	m := MustNew(cfg)
	mp := mustHier(m, 512, 512)
	r := 60
	snake := cfg.Time(SnakeFetchCost(mp, r))
	raster := cfg.Time(RasterFetchCost(mp, r))
	if raster >= snake {
		t.Fatalf("raster %v not faster than snake %v", raster, snake)
	}
}

func TestHierarchicalFetchCheaperThanCutStack(t *testing.T) {
	// The §3.2 design choice: 2-D hierarchical folding minimizes mesh
	// transfers versus cut-and-stack.
	cfg := DefaultConfig()
	m := MustNew(cfg)
	h := mustHier(m, 512, 512)
	c := mustCut(m, 512, 512)
	for _, scheme := range []FetchScheme{SnakeReadout, RasterReadout} {
		th := mustFetchCost(h, 12, scheme).XNetShifts
		tc := mustFetchCost(c, 12, scheme).XNetShifts
		if th >= tc {
			t.Fatalf("%v: hierarchical xnet %d not below cut-stack %d", scheme, th, tc)
		}
	}
}

func TestBoxExtentProperties(t *testing.T) {
	// Extent must cover exactly the PE offsets holding in-range pixels.
	for vr := 1; vr <= 5; vr++ {
		for s := 0; s < vr; s++ {
			for r := 0; r <= 9; r++ {
				want := make(map[int]bool)
				// target intra-PE positions t in [0,vr); offsets δ in [-r,r]:
				// source pixel at PE offset floor((t+δ-s)/vr) relative... the
				// source at intra-position s on PE q is needed by target t on
				// PE p iff q·vr+s ∈ [p·vr+t−r, p·vr+t+r].
				for tpos := 0; tpos < vr; tpos++ {
					for d := -r; d <= r; d++ {
						// pixel tpos+d has absolute position; its PE offset:
						off := floorDiv(tpos+d-s, vr)
						if (tpos+d-s)-off*vr == 0 {
							want[off] = true
						}
					}
				}
				got := boxExtent(s, r, vr)
				lo := floorDiv(0-r-s, vr)
				hi := floorDiv(vr-1+r-s, vr)
				if int(got) != hi-lo+1 {
					t.Fatalf("internal inconsistency")
				}
				// All wanted offsets lie within [lo, hi].
				for o := range want {
					if o < lo || o > hi {
						t.Fatalf("vr=%d s=%d r=%d: needed offset %d outside [%d,%d]",
							vr, s, r, o, lo, hi)
					}
				}
			}
		}
	}
}

// --- Segmentation (§4.3) -----------------------------------------------------

func TestPlanSegmentsPaperInfeasibleExample(t *testing.T) {
	// Paper: "storing just two floating point numbers for each precomputed
	// template mapping for a 23×23 search area with 16 pixel elements per
	// PE would require 67.7 KB per PE" — infeasible without segmentation,
	// feasible with it.
	m := MustNew(DefaultConfig())
	p := SegmentParams{NZS: 11, NZT: 60, NS: 2, Layers: 16, FloatSize: 4}
	whole := p.MappingBytesPerRow() * (2*p.NZS + 1)
	if whole < 64*1024 {
		t.Fatalf("unsegmented store %d B/PE should exceed 64 KB", whole)
	}
	plan, err := PlanSegments(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Segments < 2 {
		t.Fatalf("plan %+v: paper-scale case must need segmentation", plan)
	}
	if plan.BytesPE > 64*1024 {
		t.Fatalf("plan %+v exceeds PE memory", plan)
	}
}

func TestPlanSegmentsFrederic(t *testing.T) {
	// Frederic run (Table 2 note): "the template mapping data was not
	// segmented during this run, i.e. Z = 2·Nzs + 1" — a 13×13 search fits.
	m := MustNew(DefaultConfig())
	p := SegmentParams{NZS: 6, NZT: 60, NS: 2, Layers: 16, FloatSize: 4}
	plan, err := PlanSegments(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Segments != 1 || plan.Z != 13 {
		t.Fatalf("Frederic plan %+v, want single segment with Z=13", plan)
	}
}

func TestPlanSegmentsErrorWhenNothingFits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemPerPE = 1024
	m := MustNew(cfg)
	p := SegmentParams{NZS: 11, NZT: 60, NS: 2, Layers: 16, FloatSize: 4}
	if _, err := PlanSegments(m, p); err == nil {
		t.Fatal("impossible plan accepted")
	}
}

func TestPlanSegmentsRespectsExistingAllocations(t *testing.T) {
	m := MustNew(DefaultConfig())
	p := SegmentParams{NZS: 6, NZT: 60, NS: 2, Layers: 16, FloatSize: 4}
	base, err := PlanSegments(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Alloc("extra", 52*1024); err != nil {
		t.Fatal(err)
	}
	squeezed, err := PlanSegments(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if squeezed.Z >= base.Z {
		t.Fatalf("Z did not shrink under memory pressure: %d vs %d", squeezed.Z, base.Z)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// mustHier, mustCut, mustDistribute and mustFetchCost unwrap the library's
// error returns for test fixtures whose inputs are valid by construction.
func mustHier(m *Machine, w, h int) *Hierarchical {
	mp, err := NewHierarchical(m, w, h)
	if err != nil {
		panic(err)
	}
	return mp
}

func mustCut(m *Machine, w, h int) *CutStack {
	mp, err := NewCutStack(m, w, h)
	if err != nil {
		panic(err)
	}
	return mp
}

func mustDistribute(m *Machine, mp Mapping, g *grid.Grid) *Image {
	img, err := Distribute(m, mp, g)
	if err != nil {
		panic(err)
	}
	return img
}

func mustFetchCost(mp Mapping, r int, s FetchScheme) Cost {
	c, err := FetchCost(mp, r, s)
	if err != nil {
		panic(err)
	}
	return c
}
