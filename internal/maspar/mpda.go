package maspar

import (
	"fmt"
	"time"
)

// MPDA models the MasPar Parallel Disk Array of §3.1: "two RAID-3 8-way
// striped MasPar Parallel Disk Arrays that deliver a sustained performance
// of over 30 MB/s across a 200 MB/s MPIOC channel". Its throughput was
// what made running the SMA algorithm over the dense 490-frame GOES-9
// sequence practical.
type MPDA struct {
	SustainedBW float64 // bytes/s (30 MB/s per the paper)
	ChannelBW   float64 // MPIOC channel ceiling, bytes/s (200 MB/s)
}

// DefaultMPDA returns the Goddard configuration.
func DefaultMPDA() MPDA {
	return MPDA{SustainedBW: 30e6, ChannelBW: 200e6}
}

// TransferTime returns the modeled time to stream n bytes through the
// array (sustained rate, capped by the channel — the sustained figure
// already sits far below the channel so the cap is a sanity bound).
func (d MPDA) TransferTime(n int64) time.Duration {
	if n < 0 {
		return 0
	}
	bw := d.SustainedBW
	if bw > d.ChannelBW {
		bw = d.ChannelBW
	}
	return time.Duration(float64(n) / bw * float64(time.Second))
}

// FrameBytes returns the storage footprint of one w×h image with the
// given bytes per sample.
func FrameBytes(w, h, sampleBytes int) int64 { return int64(w) * int64(h) * int64(sampleBytes) }

// SequenceIOTime models the disk traffic of tracking a T-frame sequence:
// every frame is read once and a U/V motion-field pair is written per
// tracked frame pair.
func (d MPDA) SequenceIOTime(frames, w, h, sampleBytes int) (time.Duration, error) {
	if frames < 2 {
		return 0, fmt.Errorf("maspar: sequence needs at least 2 frames, got %d", frames)
	}
	read := int64(frames) * FrameBytes(w, h, sampleBytes)
	write := int64(frames-1) * 2 * FrameBytes(w, h, 4) // float32 U and V
	return d.TransferTime(read + write), nil
}
