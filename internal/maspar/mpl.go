package maspar

import (
	"fmt"
	"strconv"
	"strings"
)

// MPL is a miniature interpreter for a subset of the MasPar Programming
// Language's data-parallel core — the language the paper's implementation
// was written in ([1]: "MasPar MP-2 Parallel Application Language (MPL)
// User Guide"). Programs operate on named plural registers under the
// ACU's activity-mask semantics, so kernels written as text execute on
// the simulated machine with full cost accounting.
//
// Grammar (one instruction per line; '#' starts a comment):
//
//	set   dst <imm>          broadcast an immediate to all active PEs
//	move  dst src            plural register copy
//	add   dst a b            dst = a + b     (plural)
//	sub   dst a b            dst = a − b
//	mul   dst a b            dst = a · b
//	div   dst a b            dst = a / b
//	adds  dst a <imm>        dst = a + imm
//	muls  dst a <imm>        dst = a · imm
//	xnet  dst src <dir>      dst = src value of the <dir> neighbor
//	                         (dir ∈ n ne e se s sw w nw)
//	if    reg <op> <imm>     push activity mask (op ∈ lt le gt ge eq ne)
//	else                     complement the innermost mask
//	endif                    pop the innermost mask
//
// Registers are created on first write. Reading an unwritten register is
// an error, as is unbalanced if/endif nesting.
type MPL struct {
	m    *Machine
	acu  *ACU
	regs map[string]*Plural
}

// NewMPL returns an interpreter bound to the machine.
func NewMPL(m *Machine) *MPL {
	return &MPL{m: m, acu: NewACU(m), regs: make(map[string]*Plural)}
}

// Reg returns a named register, creating it zero-filled if absent.
func (p *MPL) Reg(name string) *Plural {
	r, ok := p.regs[name]
	if !ok {
		r = NewPlural(p.m)
		p.regs[name] = r
	}
	return r
}

// SetReg installs externally prepared plural data under a name (e.g. an
// image layer loaded from the MPDA).
func (p *MPL) SetReg(name string, v *Plural) { p.regs[name] = v }

// Run executes an MPL program. On error the machine state reflects the
// instructions executed so far (as on the real machine).
func (p *MPL) Run(src string) error {
	lines := strings.Split(src, "\n")
	depth0 := p.acu.Depth()
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := p.exec(fields); err != nil {
			return fmt.Errorf("maspar: mpl line %d (%q): %w", ln+1, strings.TrimSpace(raw), err)
		}
	}
	if p.acu.Depth() != depth0 {
		return fmt.Errorf("maspar: mpl program left %d unclosed if block(s)", p.acu.Depth()-depth0)
	}
	return nil
}

func (p *MPL) exec(f []string) error {
	op := f[0]
	argc := map[string]int{
		"set": 2, "move": 2, "add": 3, "sub": 3, "mul": 3, "div": 3,
		"adds": 3, "muls": 3, "xnet": 3, "if": 3, "else": 0, "endif": 0,
	}
	want, ok := argc[op]
	if !ok {
		return fmt.Errorf("unknown op %q", op)
	}
	if len(f)-1 != want {
		return fmt.Errorf("op %q takes %d operands, got %d", op, want, len(f)-1)
	}
	src := func(name string) (*Plural, error) {
		r, ok := p.regs[name]
		if !ok {
			return nil, fmt.Errorf("read of unwritten register %q", name)
		}
		return r, nil
	}
	switch op {
	case "set":
		imm, err := strconv.ParseFloat(f[2], 32)
		if err != nil {
			return fmt.Errorf("bad immediate %q", f[2])
		}
		p.acu.SetScalar(p.Reg(f[1]), float32(imm))
	case "move":
		s, err := src(f[2])
		if err != nil {
			return err
		}
		p.acu.Move(p.Reg(f[1]), s)
	case "add", "sub", "mul", "div":
		a, err := src(f[2])
		if err != nil {
			return err
		}
		b, err := src(f[3])
		if err != nil {
			return err
		}
		dst := p.Reg(f[1])
		switch op {
		case "add":
			p.acu.Add(dst, a, b)
		case "sub":
			p.acu.Sub(dst, a, b)
		case "mul":
			p.acu.Mul(dst, a, b)
		case "div":
			p.acu.Div(dst, a, b)
		}
	case "adds", "muls":
		a, err := src(f[2])
		if err != nil {
			return err
		}
		imm, err := strconv.ParseFloat(f[3], 32)
		if err != nil {
			return fmt.Errorf("bad immediate %q", f[3])
		}
		if op == "adds" {
			p.acu.AddScalar(p.Reg(f[1]), a, float32(imm))
		} else {
			p.acu.MulScalar(p.Reg(f[1]), a, float32(imm))
		}
	case "xnet":
		s, err := src(f[2])
		if err != nil {
			return err
		}
		d, err := parseDir(f[3])
		if err != nil {
			return err
		}
		p.acu.ShiftInto(p.Reg(f[1]), s, d)
	case "if":
		r, err := src(f[1])
		if err != nil {
			return err
		}
		cmp, err := parseCmp(f[2])
		if err != nil {
			return err
		}
		imm, err := strconv.ParseFloat(f[3], 32)
		if err != nil {
			return fmt.Errorf("bad immediate %q", f[3])
		}
		iv := float32(imm)
		p.acu.If(r, func(v float32) bool { return cmp(v, iv) })
	case "else":
		if err := p.acu.Else(); err != nil {
			return fmt.Errorf("else without if")
		}
	case "endif":
		if err := p.acu.EndIf(); err != nil {
			return fmt.Errorf("endif without if")
		}
	}
	return nil
}

func parseDir(s string) (Direction, error) {
	dirs := map[string]Direction{
		"n": North, "ne": NorthEast, "e": East, "se": SouthEast,
		"s": South, "sw": SouthWest, "w": West, "nw": NorthWest,
	}
	d, ok := dirs[s]
	if !ok {
		return 0, fmt.Errorf("bad direction %q", s)
	}
	return d, nil
}

func parseCmp(s string) (func(a, b float32) bool, error) {
	switch s {
	case "lt":
		return func(a, b float32) bool { return a < b }, nil
	case "le":
		return func(a, b float32) bool { return a <= b }, nil
	case "gt":
		return func(a, b float32) bool { return a > b }, nil
	case "ge":
		return func(a, b float32) bool { return a >= b }, nil
	case "eq":
		return func(a, b float32) bool { return a == b }, nil
	case "ne":
		return func(a, b float32) bool { return a != b }, nil
	}
	return nil, fmt.Errorf("bad comparison %q", s)
}
