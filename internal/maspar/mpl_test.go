package maspar

import (
	"strings"
	"testing"
)

func TestMPLArithmetic(t *testing.T) {
	m := testMachine(2, 2)
	p := NewMPL(m)
	err := p.Run(`
		# simple arithmetic over all PEs
		set a 3
		set b 4
		add c a b
		muls c c 2
		adds c c -1
	`)
	if err != nil {
		t.Fatal(err)
	}
	for pe, v := range p.Reg("c").V {
		if v != 13 { // (3+4)*2 - 1
			t.Fatalf("c[%d] = %v, want 13", pe, v)
		}
	}
}

func TestMPLLaplacianMatchesACUStencil(t *testing.T) {
	m1 := testMachine(4, 4)
	m2 := testMachine(4, 4)
	src1 := NewPlural(m1)
	src2 := NewPlural(m2)
	for i := range src1.V {
		src1.V[i] = float32(i * i % 7)
		src2.V[i] = src1.V[i]
	}
	// Reference: the built-in kernel.
	ref := NewPlural(m1)
	NewACU(m1).Stencil4(ref, src1)
	// Same kernel written as MPL text.
	p := NewMPL(m2)
	p.SetReg("src", src2)
	err := p.Run(`
		move acc src
		muls acc acc -4
		xnet t src n
		add acc acc t
		xnet t src s
		add acc acc t
		xnet t src e
		add acc acc t
		xnet t src w
		add acc acc t
	`)
	if err != nil {
		t.Fatal(err)
	}
	for pe := range ref.V {
		if ref.V[pe] != p.Reg("acc").V[pe] {
			t.Fatalf("MPL Laplacian differs at PE %d: %v vs %v", pe, p.Reg("acc").V[pe], ref.V[pe])
		}
	}
}

func TestMPLPluralIf(t *testing.T) {
	m := testMachine(2, 2)
	p := NewMPL(m)
	x := NewPlural(m)
	copy(x.V, []float32{1, 2, 3, 4})
	p.SetReg("x", x)
	err := p.Run(`
		set y 0
		if x gt 2
			set y 100
		else
			set y -100
		endif
	`)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{-100, -100, 100, 100}
	for pe, w := range want {
		if p.Reg("y").V[pe] != w {
			t.Fatalf("y[%d] = %v, want %v", pe, p.Reg("y").V[pe], w)
		}
	}
}

func TestMPLChargesCosts(t *testing.T) {
	m := testMachine(2, 2)
	p := NewMPL(m)
	m.ResetCost()
	if err := p.Run("set a 1\nset b 2\nadd c a b\nxnet d c e"); err != nil {
		t.Fatal(err)
	}
	if m.Cost.PluralFlops == 0 || m.Cost.XNetShifts != 1 {
		t.Fatalf("ledger %+v", m.Cost)
	}
}

func TestMPLErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"bogus a b", "unknown op"},
		{"add c a", "takes 3 operands"},
		{"add c a b", "unwritten register"},
		{"set a x", "bad immediate"},
		{"set a 1\nxnet b a q", "bad direction"},
		{"set a 1\nif a zz 0\nendif", "bad comparison"},
		{"else", "else without if"},
		{"endif", "endif without if"},
		{"set a 1\nif a gt 0", "unclosed if"},
	}
	for _, c := range cases {
		m := testMachine(2, 2)
		err := NewMPL(m).Run(c.src)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("program %q: error %v, want fragment %q", c.src, err, c.frag)
		}
	}
}

func TestMPLCommentsAndBlankLines(t *testing.T) {
	m := testMachine(2, 2)
	p := NewMPL(m)
	if err := p.Run("\n  # only comments\n\nset a 5 # trailing\n"); err != nil {
		t.Fatal(err)
	}
	if p.Reg("a").V[0] != 5 {
		t.Fatal("comment handling broke execution")
	}
}
