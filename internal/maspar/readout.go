package maspar

import "fmt"

// FetchScheme selects how a square pixel neighborhood is read out of the
// mesh — the two alternatives the paper evaluates in §4.2.
type FetchScheme int

const (
	// SnakeReadout is the "ordered memory-queued mesh transfer using snake
	// read-out" (Fig. 3): the whole data image is shifted one pixel at a
	// time along a serpentine path covering the neighborhood; every step
	// is one X-net mesh shift plus mem-sequential shifts within each PE.
	SnakeReadout FetchScheme = iota
	// RasterReadout is the "unordered variable PE window mesh transfer
	// using raster scan read-out": data is read one memory layer at a
	// time through a per-layer PE bounding box. The paper found this
	// faster and used it in the final implementation.
	RasterReadout
)

// String implements fmt.Stringer.
func (s FetchScheme) String() string {
	switch s {
	case SnakeReadout:
		return "snake"
	case RasterReadout:
		return "raster"
	}
	return fmt.Sprintf("FetchScheme(%d)", int(s))
}

// snakePath returns the shift sequence that walks the data image through
// all (2r+1)² neighborhood offsets: first to the (−r, −r) corner, then
// serpentine rows (Fig. 3). Offsets are visited so that after the k-th
// shift every pixel slot holds the neighborhood value at the k-th path
// position.
func snakePath(r int) []Direction {
	var path []Direction
	for i := 0; i < r; i++ {
		path = append(path, NorthWest) // toward (−r, −r): du−1, dv−1
	}
	east := true
	side := 2 * r
	for row := 0; row <= 2*r; row++ {
		for i := 0; i < side; i++ {
			if east {
				path = append(path, East)
			} else {
				path = append(path, West)
			}
		}
		if row < 2*r {
			path = append(path, South)
			east = !east
		}
	}
	return path
}

// ShiftPixel returns the image shifted one pixel in direction d:
// out(x, y) = in(x+dx, y+dy), toroidal in image coordinates. Real data is
// moved and the mapping-dependent cost is charged.
func (img *Image) ShiftPixel(d Direction) *Image {
	w, h := img.Map.Dims()
	dx, dy := d.Delta()
	out := &Image{M: img.M, Map: img.Map, Data: make([][]float32, len(img.Data))}
	for l := range out.Data {
		out.Data[l] = make([]float32, len(img.Data[l]))
	}
	for y := 0; y < h; y++ {
		sy := y + dy
		switch {
		case sy < 0:
			sy += h
		case sy >= h:
			sy -= h
		}
		for x := 0; x < w; x++ {
			sx := x + dx
			switch {
			case sx < 0:
				sx += w
			case sx >= w:
				sx -= w
			}
			dpe, dmem := img.Map.Place(x, y)
			spe, smem := img.Map.Place(sx, sy)
			out.Data[dmem][dpe] = img.Data[smem][spe]
		}
	}
	xnet, mem := img.Map.ShiftCost(d)
	img.M.ChargeXNet(xnet)
	img.M.ChargeMem(mem)
	return out
}

// Neighborhoods holds, for every image pixel, its (2r+1)² toroidal
// neighborhood in row-major offset order (dv slow, du fast).
type Neighborhoods struct {
	R    int
	W, H int
	Vals [][]float32 // [y*W+x][(dv+r)*(2r+1)+(du+r)]
}

// At returns the neighborhood value of pixel (x, y) at offset (du, dv).
func (n *Neighborhoods) At(x, y, du, dv int) float32 {
	side := 2*n.R + 1
	return n.Vals[y*n.W+x][(dv+n.R)*side+(du+n.R)]
}

// GatherSnake collects every pixel's neighborhood by physically walking
// the image along the snake path: (2r+1)²−1+r shift instructions, with one
// store per resident pixel at every visited offset. This is the
// reference-fidelity (and slower) scheme.
func GatherSnake(img *Image, r int) *Neighborhoods {
	w, h := img.Map.Dims()
	side := 2*r + 1
	out := &Neighborhoods{R: r, W: w, H: h, Vals: make([][]float32, w*h)}
	for i := range out.Vals {
		out.Vals[i] = make([]float32, side*side)
	}
	// Track the current offset while walking; start at (0, 0).
	du, dv := 0, 0
	cur := img
	store := func() {
		if du < -r || du > r || dv < -r || dv > r {
			return
		}
		k := (dv+r)*side + (du + r)
		for mem := range cur.Data {
			for pe, v := range cur.Data[mem] {
				x, y := img.Map.Invert(pe, mem)
				if x < w && y < h {
					out.Vals[y*w+x][k] = v
				}
			}
		}
		img.M.ChargeMem(int64(img.Map.Layers())) // one store per resident pixel
	}
	store()
	for _, d := range snakePath(r) {
		cur = cur.ShiftPixel(d)
		ddx, ddy := d.Delta()
		du += ddx
		dv += ddy
		store()
	}
	return out
}

// GatherRaster collects the same neighborhoods using the unordered
// variable-PE-window raster-scan read-out: data values are produced by
// direct (functional) indexing while the cost ledger is charged what the
// per-layer bounding-box traversal costs on the real machine.
func GatherRaster(img *Image, r int) *Neighborhoods {
	w, h := img.Map.Dims()
	side := 2*r + 1
	out := &Neighborhoods{R: r, W: w, H: h, Vals: make([][]float32, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			vals := make([]float32, side*side)
			k := 0
			for dv := -r; dv <= r; dv++ {
				sy := ((y+dv)%h + h) % h
				for du := -r; du <= r; du++ {
					sx := ((x+du)%w + w) % w
					vals[k] = img.At(sx, sy)
					k++
				}
			}
			out.Vals[y*w+x] = vals
		}
	}
	img.M.Cost.Add(RasterFetchCost(img.Map, r))
	return out
}

// RasterFetchCost returns the communication cost of one raster-scan
// neighborhood fetch of radius r under the mapping — a thin wrapper over
// Mapping.RasterCost retained for the existing call sites.
func RasterFetchCost(mp Mapping, r int) Cost {
	return mp.RasterCost(r)
}

// boxExtent returns the number of PE offsets along one axis that hold
// pixels within ±r of any target intra-PE position, for a source pixel at
// intra-PE position s with vr pixels per PE.
func boxExtent(s, r, vr int) int64 {
	lo := floorDiv(0-r-s, vr)
	hi := floorDiv(vr-1+r-s, vr)
	return int64(hi - lo + 1)
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// SnakeFetchCost returns the cost GatherSnake charges, computed without
// moving data: the path's shift costs plus one store per resident pixel
// per visited offset.
func SnakeFetchCost(mp Mapping, r int) Cost {
	var c Cost
	path := snakePath(r)
	for _, d := range path {
		xnet, mem := mp.ShiftCost(d)
		c.XNetShifts += xnet
		c.MemDirect += mem
	}
	// One store instruction (covering all resident pixels) per visited
	// offset: the origin plus every path position, all of which lie within
	// the ±r box.
	visits := int64(len(path)) + 1
	c.MemDirect += visits * int64(mp.Layers())
	return c
}

// RouterFetchCost returns the cost of fetching the same neighborhoods
// through the global router instead of the X-net mesh: one plural router
// send per neighborhood offset per memory layer. The paper rejects this
// path — "since geometric parameters are only fetched from a neighborhood
// of PEs, using the mesh connections to transfer data will be faster than
// using the router" (the X-net has 18× the router's bandwidth) — and this
// function quantifies the gap for the ablation bench.
func RouterFetchCost(mp Mapping, r int) Cost {
	side := int64(2*r + 1)
	layers := int64(mp.Layers())
	return Cost{
		RouterSends: layers * side * side,
		MemDirect:   layers * side * side,
	}
}

// FetchCost returns the modeled cost of one neighborhood fetch of radius r
// under the given scheme — the quantity the §4.2 design comparison (and
// our ablation bench) is about. An error is returned for an unknown
// scheme.
func FetchCost(mp Mapping, r int, s FetchScheme) (Cost, error) {
	switch s {
	case SnakeReadout:
		return SnakeFetchCost(mp, r), nil
	case RasterReadout:
		return RasterFetchCost(mp, r), nil
	}
	return Cost{}, fmt.Errorf("maspar: unknown scheme %v", s)
}
