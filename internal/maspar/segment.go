package maspar

import "fmt"

// SegmentParams describes the SMA working set whose PE-memory footprint
// §4.3 of the paper budgets: the precomputed semi-fluid template mappings
// dominate, and when they do not fit they are segmented by rows of the
// search (hypothesis) neighborhood.
type SegmentParams struct {
	NZS       int // search radius: search area is (2·NZS+1)²
	NZT       int // z-template radius
	NS        int // surface-patch radius (paper sets NS = NsT)
	Layers    int // pixels per PE (xvr·yvr)
	FloatSize int // bytes per stored value (4 for float32/MPL float)
}

// BaseBytes returns the per-PE bytes of the resident (unsegmentable) data:
// the intensity and surface images at both timesteps with their fitted
// geometric variables (normals, E, G, discriminant — 15 plural image
// layers in our implementation), plus the per-pixel error accumulators for
// one search row.
func (p SegmentParams) BaseBytes() int {
	const residentImages = 15
	perPixel := residentImages * p.FloatSize
	// Error terms for (2·NZS+1) hypotheses of the row in flight.
	perPixel += (2*p.NZS + 1) * p.FloatSize
	return perPixel * p.Layers
}

// MappingBytesPerRow returns the per-PE bytes one row of precomputed
// template mappings occupies: (2·NZS+1) hypotheses × 2 floats — the paper
// notes the minimization depends on the after-motion normal only through
// (ni′²+nj′²) and nk′, so two values suffice — per resident pixel.
func (p SegmentParams) MappingBytesPerRow() int {
	return (2*p.NZS + 1) * 2 * p.FloatSize * p.Layers
}

// SegmentPlan is the outcome of fitting the template-mapping store into
// PE memory: the mappings for Z rows of the hypothesis neighborhood are
// computed, consumed and discarded per segment.
type SegmentPlan struct {
	Z        int // hypothesis rows per segment (paper's "2 rows" example)
	Segments int // ⌈(2·NZS+1)/Z⌉ passes over the template-mapping compute
	BytesPE  int // per-PE bytes of the largest working set
}

// PlanSegments computes the largest Z that fits the machine's PE memory.
// It returns an error when even a single hypothesis row does not fit —
// the hard wall the paper's 23×23-search example illustrates (67.7 KB/PE
// needed vs 64 KB available).
func PlanSegments(m *Machine, p SegmentParams) (SegmentPlan, error) {
	if p.Layers <= 0 || p.NZS < 0 {
		return SegmentPlan{}, fmt.Errorf("maspar: invalid segment params %+v", p)
	}
	avail := m.Cfg.MemPerPE - p.BaseBytes() - m.MemUsed()
	rowBytes := p.MappingBytesPerRow()
	if rowBytes <= 0 {
		return SegmentPlan{Z: 2*p.NZS + 1, Segments: 1, BytesPE: p.BaseBytes()}, nil
	}
	z := avail / rowBytes
	rows := 2*p.NZS + 1
	if z < 1 {
		return SegmentPlan{}, fmt.Errorf(
			"maspar: one hypothesis row of template mappings needs %d B/PE but only %d B/PE remain",
			rowBytes, avail)
	}
	if z > rows {
		z = rows
	}
	return SegmentPlan{
		Z:        z,
		Segments: (rows + z - 1) / z,
		BytesPE:  p.BaseBytes() + z*rowBytes,
	}, nil
}
