package maspar

import (
	"fmt"
	"math"

	"sma/internal/la"
)

// GeometryImages holds the distributed per-pixel geometric variables the
// SIMD surface-fit kernel produces — the plural-memory layout of the
// paper's "Surface fit" and "Compute geometric variables" stages.
type GeometryImages struct {
	Ni, Nj, Nk *Image // unit normal components
	Zx, Zy     *Image // patch-center slopes
	E, G       *Image // first fundamental form
	D          *Image // second-order discriminant
}

// SIMDSurfaceFit executes quadratic surface fitting as a genuine SIMD
// kernel on the simulated machine: the image is fetched through the
// chosen neighborhood read-out scheme, then every memory layer is
// processed in lockstep — each PE accumulating its resident pixel's
// normal-equation right-hand side and running one 6×6 Gaussian
// elimination, exactly the paper's per-pixel work. All data movement and
// arithmetic is charged to the machine ledger.
//
// The results are bit-identical to the host fitter (surface.Fitter) for
// interior pixels; border pixels differ only in that the mesh is toroidal
// while the host clamps, so callers comparing against host output should
// restrict to pixels at least ns away from the border.
func SIMDSurfaceFit(m *Machine, img *Image, ns int, scheme FetchScheme) (*GeometryImages, error) {
	if ns < 1 {
		return nil, fmt.Errorf("maspar: fit radius %d, need >= 1", ns)
	}
	mp := img.Map
	w, h := mp.Dims()
	side := 2*ns + 1

	// Fixed design rows and normal matrix (window geometry only).
	var ata la.Mat6
	rows := make([]la.Vec6, 0, side*side)
	for dv := -ns; dv <= ns; dv++ {
		for du := -ns; du <= ns; du++ {
			u := float64(du)
			v := float64(dv)
			row := la.Vec6{1, u, v, u * u, u * v, v * v}
			rows = append(rows, row)
			for i := 0; i < 6; i++ {
				for j := 0; j < 6; j++ {
					ata[i][j] += row[i] * row[j]
				}
			}
		}
	}

	// Neighborhood fetch: one pass feeds all layers.
	var nb *Neighborhoods
	switch scheme {
	case SnakeReadout:
		nb = GatherSnake(img, ns)
	case RasterReadout:
		nb = GatherRaster(img, ns)
	default:
		return nil, fmt.Errorf("maspar: unknown scheme %v", scheme)
	}

	newImg := func() *Image {
		out := &Image{M: m, Map: mp, Data: make([][]float32, mp.Layers())}
		for l := range out.Data {
			out.Data[l] = make([]float32, m.Cfg.NProc())
		}
		return out
	}
	geo := &GeometryImages{
		Ni: newImg(), Nj: newImg(), Nk: newImg(),
		Zx: newImg(), Zy: newImg(), E: newImg(), G: newImg(), D: newImg(),
	}

	nproc := m.Cfg.NProc()
	for l := 0; l < mp.Layers(); l++ {
		// One lockstep pass over the PE array: accumulate + eliminate.
		for pe := 0; pe < nproc; pe++ {
			x, y := mp.Invert(pe, l)
			if x >= w || y >= h {
				continue
			}
			var b la.Vec6
			vals := nb.Vals[y*w+x]
			for k, row := range rows {
				z := float64(vals[k])
				for i := 0; i < 6; i++ {
					b[i] += row[i] * z
				}
			}
			a := ata
			c, ok := la.Solve6(&a, &b)
			if !ok {
				continue
			}
			zx := c[1]
			zy := c[2]
			n2 := 1 + zx*zx + zy*zy
			inv := 1 / math.Sqrt(n2)
			geo.Ni.Data[l][pe] = float32(-zx * inv)
			geo.Nj.Data[l][pe] = float32(-zy * inv)
			geo.Nk.Data[l][pe] = float32(inv)
			geo.Zx.Data[l][pe] = float32(zx)
			geo.Zy.Data[l][pe] = float32(zy)
			geo.E.Data[l][pe] = float32(1 + zx*zx)
			geo.G.Data[l][pe] = float32(1 + zy*zy)
			geo.D.Data[l][pe] = float32(4*c[3]*c[5] - c[4]*c[4])
		}
		// SIMD charges per layer: the accumulation (12 flops per window
		// value), one elimination, and the geometric variables.
		m.ChargeFlops(int64(12 * side * side))
		m.ChargeGauss6()
		m.ChargeFlops(20)
	}
	return geo, nil
}
