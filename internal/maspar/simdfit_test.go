package maspar

import (
	"math"
	"testing"
)

func TestSIMDSurfaceFitMatchesDirectFit(t *testing.T) {
	// The SIMD kernel must reproduce the quadratic fit exactly on interior
	// pixels (borders differ: toroidal mesh vs host clamping).
	m := testMachine(8, 8)
	g := randGrid(32, 32, 31)
	img := mustDistribute(m, mustHier(m, 32, 32), g)
	geo, err := SIMDSurfaceFit(m, img, 2, RasterReadout)
	if err != nil {
		t.Fatal(err)
	}
	zx := geo.Zx.Collect()
	nk := geo.Nk.Collect()
	// Reference: direct least squares at a few interior pixels.
	for _, pt := range [][2]int{{10, 10}, {16, 20}, {25, 7}} {
		x, y := pt[0], pt[1]
		// Accumulate the same normal equations by hand.
		var b [6]float64
		var a Mat6ForTest
		for dv := -2; dv <= 2; dv++ {
			for du := -2; du <= 2; du++ {
				u := float64(du)
				v := float64(dv)
				row := [6]float64{1, u, v, u * u, u * v, v * v}
				z := float64(g.AtUnchecked(x+du, y+dv))
				for i := 0; i < 6; i++ {
					b[i] += row[i] * z
					for j := 0; j < 6; j++ {
						a[i][j] += row[i] * row[j]
					}
				}
			}
		}
		c := solve6ForTest(a, b, t)
		wantZx := c[1]
		wantNk := 1 / math.Sqrt(1+c[1]*c[1]+c[2]*c[2])
		if got := float64(zx.At(x, y)); math.Abs(got-wantZx) > 1e-4 {
			t.Fatalf("Zx(%d,%d) = %v, want %v", x, y, got, wantZx)
		}
		if got := float64(nk.At(x, y)); math.Abs(got-wantNk) > 1e-5 {
			t.Fatalf("Nk(%d,%d) = %v, want %v", x, y, got, wantNk)
		}
	}
}

// Mat6ForTest mirrors la.Mat6 without importing it twice under an alias.
type Mat6ForTest = [6][6]float64

func solve6ForTest(a Mat6ForTest, b [6]float64, t *testing.T) [6]float64 {
	t.Helper()
	// Plain Gaussian elimination with partial pivoting.
	for col := 0; col < 6; col++ {
		p := col
		for r := col + 1; r < 6; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		if a[col][col] == 0 {
			t.Fatal("singular test system")
		}
		for r := col + 1; r < 6; r++ {
			f := a[r][col] / a[col][col]
			for j := col; j < 6; j++ {
				a[r][j] -= f * a[col][j]
			}
			b[r] -= f * b[col]
		}
	}
	var x [6]float64
	for i := 5; i >= 0; i-- {
		s := b[i]
		for j := i + 1; j < 6; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x
}

func TestSIMDSurfaceFitChargesPerLayer(t *testing.T) {
	m := testMachine(4, 4)
	g := randGrid(16, 16, 33)
	img := mustDistribute(m, mustHier(m, 16, 16), g)
	m.ResetCost()
	if _, err := SIMDSurfaceFit(m, img, 2, RasterReadout); err != nil {
		t.Fatal(err)
	}
	layers := int64(16) // 16×16 on 4×4 PEs
	if m.Cost.GaussianElims != layers {
		t.Fatalf("GaussianElims = %d, want %d (one per layer)", m.Cost.GaussianElims, layers)
	}
	if m.Cost.XNetShifts == 0 {
		t.Fatal("no neighborhood communication charged")
	}
}

func TestSIMDSurfaceFitFlatSurface(t *testing.T) {
	m := testMachine(4, 4)
	g := randGrid(16, 16, 35)
	g.Fill(7)
	img := mustDistribute(m, mustHier(m, 16, 16), g)
	geo, err := SIMDSurfaceFit(m, img, 1, SnakeReadout)
	if err != nil {
		t.Fatal(err)
	}
	nk := geo.Nk.Collect()
	d := geo.D.Collect()
	for i, v := range nk.Data {
		if math.Abs(float64(v)-1) > 1e-6 {
			t.Fatalf("flat Nk[%d] = %v", i, v)
		}
		if d.Data[i] != 0 {
			t.Fatalf("flat D[%d] = %v", i, d.Data[i])
		}
	}
}

func TestSIMDSurfaceFitValidation(t *testing.T) {
	m := testMachine(4, 4)
	img := mustDistribute(m, mustHier(m, 16, 16), randGrid(16, 16, 37))
	if _, err := SIMDSurfaceFit(m, img, 0, RasterReadout); err == nil {
		t.Fatal("zero radius accepted")
	}
	if _, err := SIMDSurfaceFit(m, img, 2, FetchScheme(99)); err == nil {
		t.Fatal("bad scheme accepted")
	}
}
