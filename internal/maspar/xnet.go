package maspar

import (
	"fmt"
	"math/bits"
)

// Direction identifies one of the eight X-net mesh neighbors (Fig. 1).
type Direction int

// The eight X-net directions. Shifting North means every PE receives the
// value held by its northern neighbor.
const (
	North Direction = iota
	NorthEast
	East
	SouthEast
	South
	SouthWest
	West
	NorthWest
)

// deltas holds the (dx, dy) PE-grid offset per Direction, in constant
// declaration order.
var deltas = [8][2]int{
	North:     {0, -1},
	NorthEast: {1, -1},
	East:      {1, 0},
	SouthEast: {1, 1},
	South:     {0, 1},
	SouthWest: {-1, 1},
	West:      {-1, 0},
	NorthWest: {-1, -1},
}

// Delta returns the (dx, dy) PE-grid offset of the neighbor in direction d
// with y growing southward (row-major PE indexing). A direction outside
// the eight constants is a programmer error and faults on the table index.
func (d Direction) Delta() (dx, dy int) {
	v := deltas[d]
	return v[0], v[1]
}

// String implements fmt.Stringer.
func (d Direction) String() string {
	names := [...]string{"N", "NE", "E", "SE", "S", "SW", "W", "NW"}
	if d < 0 || int(d) >= len(names) {
		return fmt.Sprintf("Direction(%d)", int(d))
	}
	return names[d]
}

// Plural is a plural 32-bit variable: one float32 register per PE.
type Plural struct {
	M *Machine
	V []float32
}

// NewPlural allocates a plural variable on m.
func NewPlural(m *Machine) *Plural {
	return &Plural{M: m, V: make([]float32, m.Cfg.NProc())}
}

// Clone copies the plural variable (one plural register move).
func (p *Plural) Clone() *Plural {
	q := NewPlural(p.M)
	copy(q.V, p.V)
	p.M.ChargeMem(1)
	return q
}

// XNetShift returns a new plural variable where every PE holds the value
// its neighbor in direction d held in src — one 32-bit register-to-register
// X-net transfer, toroidal at the array edges. This is the machine's
// fastest communication primitive (aggregate 23 GB/s, 18× the router).
func (p *Plural) XNetShift(d Direction) *Plural {
	m := p.M
	nx, ny := m.Cfg.NXProc, m.Cfg.NYProc
	dx, dy := d.Delta()
	out := NewPlural(m)
	for py := 0; py < ny; py++ {
		sy := py + dy
		switch {
		case sy < 0:
			sy += ny
		case sy >= ny:
			sy -= ny
		}
		dstRow := py * nx
		srcRow := sy * nx
		for px := 0; px < nx; px++ {
			sx := px + dx
			switch {
			case sx < 0:
				sx += nx
			case sx >= nx:
				sx -= nx
			}
			out.V[dstRow+px] = p.V[srcRow+sx]
		}
	}
	m.ChargeXNet(1)
	return out
}

// RouterPermute returns a new plural variable with out[dst[pe]] = p[pe]:
// an arbitrary permutation through the global crossbar router. One 32-bit
// router send — 18× slower than an X-net shift, which is why the SMA
// implementation avoids it for neighborhood traffic.
func (p *Plural) RouterPermute(dst []int) (*Plural, error) {
	m := p.M
	n := m.Cfg.NProc()
	if len(dst) != n {
		return nil, fmt.Errorf("maspar: permutation length %d != %d PEs", len(dst), n)
	}
	seen := make([]bool, n)
	out := NewPlural(m)
	for pe, d := range dst {
		if d < 0 || d >= n {
			return nil, fmt.Errorf("maspar: destination %d of PE %d out of range", d, pe)
		}
		if seen[d] {
			return nil, fmt.Errorf("maspar: destination %d receives twice (not a permutation)", d)
		}
		seen[d] = true
		out.V[d] = p.V[pe]
	}
	m.ChargeRouter(1)
	return out, nil
}

// ReduceAdd returns the global sum of the plural variable. The ACU reduce
// tree costs ⌈log₂ nproc⌉ X-net shift + add stages.
func (p *Plural) ReduceAdd() float64 {
	var s float64
	for _, v := range p.V {
		s += float64(v)
	}
	levels := int64(bits.Len(uint(p.M.Cfg.NProc() - 1)))
	p.M.ChargeXNet(levels)
	p.M.ChargeFlops(levels)
	return s
}

// ReduceMax returns the global maximum (same reduce-tree cost as ReduceAdd).
func (p *Plural) ReduceMax() float32 {
	mx := p.V[0]
	for _, v := range p.V[1:] {
		if v > mx {
			mx = v
		}
	}
	levels := int64(bits.Len(uint(p.M.Cfg.NProc() - 1)))
	p.M.ChargeXNet(levels)
	p.M.ChargeFlops(levels)
	return mx
}

// Broadcast sets every PE's value to v (one ACU broadcast instruction).
func (p *Plural) Broadcast(v float32) {
	for i := range p.V {
		p.V[i] = v
	}
	p.M.Cost.ScalarOps++
	p.M.ChargeMem(1)
}

// PEIndex returns (ixproc, iyproc) for a linear PE index, matching the
// predefined MPL plural variables of the same names.
func PEIndex(m *Machine, pe int) (ixproc, iyproc int) {
	return pe % m.Cfg.NXProc, pe / m.Cfg.NXProc
}
