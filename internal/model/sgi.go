// Package model provides the analytic timing model of the paper's
// sequential comparator — an SGI Onyx R8000/90 running the un-optimized
// sequential SMA implementation — and the speedup arithmetic that joins it
// with the simulated MasPar MP-2 stage times.
//
// Absolute 1996 wall-clock numbers cannot be measured today, so the model
// projects them from operation counts (core.CountOps) and two calibrated
// machine characteristics:
//
//   - BaseEfficiency: the fraction of the R8000's 360 Mflops peak the
//     un-optimized double-precision code sustains on small working sets.
//   - CacheKneeFlops: the per-pixel work level at which the effective rate
//     has halved. The paper observes this directly: Fig. 4's timing "can
//     be used to estimate ... a slight underestimate of 313 days compared
//     to 397 days, due to the nonlinear scalability factor in the timing
//     dependence on the z-Search window parameter" — sequential throughput
//     degrades as the per-pixel working set grows.
//
// With the defaults below the model reproduces the paper's three headline
// sequential projections within ~15% (397 days Frederic, 41.4 h GOES-9,
// and the >150× Luis speedup); see EXPERIMENTS.md.
package model

import (
	"time"

	"sma/internal/core"
	"sma/internal/maspar"
)

// SGI models the sequential machine of the paper's comparisons.
type SGI struct {
	PeakFlops      float64 // advertised peak (360 Mflops for the R8000/90)
	BaseEfficiency float64 // sustained fraction of peak for small kernels
	CacheKneeFlops float64 // per-pixel flops where the rate halves
}

// DefaultSGI returns the calibrated Onyx R8000/90 model.
func DefaultSGI() SGI {
	return SGI{PeakFlops: 360e6, BaseEfficiency: 0.044, CacheKneeFlops: 1.2e8}
}

// PerPixelFlops totals the per-pixel floating-point work of one tracking
// timestep under the given operation inventory.
func PerPixelFlops(oc core.OpCounts) float64 {
	perPass := oc.SurfaceFlops + oc.SurfaceGauss*maspar.Gauss6Flops + oc.GeomFlops
	return float64(int64(oc.FitPasses)*perPass +
		oc.SemiMapFlops +
		oc.HypFlops + oc.HypGauss*maspar.Gauss6Flops)
}

// EffectiveFlops returns the modeled sustained rate for a workload with
// the given per-pixel flop count.
func (s SGI) EffectiveFlops(perPixelFlops float64) float64 {
	return s.PeakFlops * s.BaseEfficiency / (1 + perPixelFlops/s.CacheKneeFlops)
}

// PixelTime returns the modeled sequential time to produce one pixel's
// motion correspondence — the quantity Fig. 4 plots against template size.
func (s SGI) PixelTime(oc core.OpCounts) time.Duration {
	f := PerPixelFlops(oc)
	return time.Duration(f / s.EffectiveFlops(f) * float64(time.Second))
}

// ImageTime returns the modeled sequential time for a full w×h image pair.
func (s SGI) ImageTime(oc core.OpCounts, w, h int) time.Duration {
	return time.Duration(float64(w*h) * float64(s.PixelTime(oc)))
}

// Speedup returns the sequential/parallel runtime ratio — the paper's
// headline metric (1025 for Frederic, 193 for GOES-9, >150 for Luis).
func Speedup(seq, par time.Duration) float64 {
	if par <= 0 {
		return 0
	}
	return float64(seq) / float64(par)
}
