package model

import (
	"testing"
	"time"

	"sma/internal/core"
)

func TestEffectiveFlopsDegradesWithWorkingSet(t *testing.T) {
	s := DefaultSGI()
	small := s.EffectiveFlops(1e6)
	large := s.EffectiveFlops(5e8)
	if large >= small {
		t.Fatalf("effective rate did not degrade: %v vs %v", small, large)
	}
	if small > s.PeakFlops {
		t.Fatalf("effective rate %v above peak %v", small, s.PeakFlops)
	}
}

func TestPixelTimeGrowsSuperlinearlyInTemplate(t *testing.T) {
	s := DefaultSGI()
	p1 := core.FredericParams()
	p1.NZT = 5 // 11×11
	p2 := core.FredericParams()
	p2.NZT = 60 // 121×121
	t1 := s.PixelTime(core.CountOps(p1, 2))
	t2 := s.PixelTime(core.CountOps(p2, 2))
	area := float64(121*121) / float64(11*11) // ≈121
	if float64(t2) < area*float64(t1) {
		t.Fatalf("growth %.1f× not superlinear in area %.1f×", float64(t2)/float64(t1), area)
	}
}

func TestImageTimeScalesWithPixels(t *testing.T) {
	s := DefaultSGI()
	oc := core.CountOps(core.GOES9Params(), 2)
	a := s.ImageTime(oc, 128, 128)
	b := s.ImageTime(oc, 256, 256)
	ratio := float64(b) / float64(a)
	if ratio < 3.99 || ratio > 4.01 {
		t.Fatalf("image-time ratio %v, want 4", ratio)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(100*time.Second, 1*time.Second); s != 100 {
		t.Fatalf("Speedup = %v", s)
	}
	if s := Speedup(time.Second, 0); s != 0 {
		t.Fatalf("Speedup with zero parallel time = %v", s)
	}
}

func TestPerPixelFlopsComposition(t *testing.T) {
	p := core.GOES9Params()
	oc := core.CountOps(p, 2)
	f := PerPixelFlops(oc)
	if f <= float64(oc.HypFlops) {
		t.Fatalf("per-pixel flops %v missing elimination/fit terms (hyp alone %v)", f, oc.HypFlops)
	}
	// Continuous model: no semi-map contribution.
	oc2 := oc
	oc2.SemiMapFlops = 1000
	if PerPixelFlops(oc2) != f+1000 {
		t.Fatal("semi-map flops not additive")
	}
}

func TestFredericProjectionNearPaper(t *testing.T) {
	// The calibration target: 397.34 days for the sequential Frederic run.
	s := DefaultSGI()
	seq := s.ImageTime(core.CountOps(core.FredericParams(), 4), 512, 512)
	days := seq.Hours() / 24
	if days < 300 || days > 500 {
		t.Fatalf("modeled sequential Frederic = %.1f days, want ≈397", days)
	}
}
