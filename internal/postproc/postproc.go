// Package postproc implements the motion-field post-processing the
// paper's §6 proposes as future work: relaxation labeling over the
// discrete correspondence labels and confidence-weighted regularization,
// alongside the simple median filtering grid.VectorField already offers.
package postproc

import (
	"fmt"
	"math"

	"sma/internal/grid"
)

// RelaxConfig parameterizes discrete relaxation labeling.
type RelaxConfig struct {
	// Iterations of label updating.
	Iterations int
	// Lambda weighs the data term (brightness-constancy residual)
	// against neighbor support.
	Lambda float64
}

// DefaultRelaxConfig returns a moderate smoothing setup.
func DefaultRelaxConfig() RelaxConfig { return RelaxConfig{Iterations: 3, Lambda: 0.02} }

// Relax performs discrete relaxation labeling on an integer motion field:
// every pixel reconsiders its label among the labels currently held by
// its 8-neighborhood (plus its own), choosing the one minimizing
//
//	λ · (I1(x+u, y+v) − I0(x, y))² − (neighbors voting for the label)
//
// — a data-consistency term plus contextual support, iterated to
// convergence or the configured bound. Labels never leave the set present
// in the neighborhood, so the search window's guarantees are preserved.
func Relax(flow *grid.VectorField, i0, i1 *grid.Grid, cfg RelaxConfig) (*grid.VectorField, error) {
	w, h := flow.Bounds()
	if i0.W != w || i0.H != h || i1.W != w || i1.H != h {
		return nil, fmt.Errorf("postproc: image sizes do not match the flow field")
	}
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("postproc: need at least one iteration")
	}
	cur := flow.Clone()
	for it := 0; it < cfg.Iterations; it++ {
		next := grid.NewVectorField(w, h)
		changed := false
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				type label struct{ u, v float32 }
				votes := make(map[label]int, 9)
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						u, v := cur.At(x+dx, y+dy)
						votes[label{u, v}]++
					}
				}
				ownU, ownV := cur.At(x, y)
				bestU, bestV := ownU, ownV
				bestCost := math.Inf(1)
				for l, support := range votes {
					d := float64(i1.Bilinear(float64(x)+float64(l.u), float64(y)+float64(l.v)) - i0.At(x, y))
					cost := cfg.Lambda*d*d - float64(support)
					// Deterministic tie-break: prefer the current label,
					// then smaller (u, v) lexicographically.
					if cost < bestCost || (cost == bestCost && lessLabel(l.u, l.v, bestU, bestV, ownU, ownV)) {
						bestCost = cost
						bestU, bestV = l.u, l.v
					}
				}
				if bestU != ownU || bestV != ownV {
					changed = true
				}
				next.Set(x, y, bestU, bestV)
			}
		}
		cur = next
		if !changed {
			break
		}
	}
	return cur, nil
}

// lessLabel orders candidate labels deterministically: the pixel's own
// label wins ties, then lexicographic (u, v).
func lessLabel(u, v, curU, curV, ownU, ownV float32) bool {
	if curU == ownU && curV == ownV {
		return false
	}
	if u == ownU && v == ownV {
		return true
	}
	if u != curU {
		return u < curU
	}
	return v < curV
}

// ConfidenceSmooth regularizes a motion field by confidence-weighted
// local averaging: each pixel's flow becomes the 3×3 average weighted by
// 1/(ε + ε₀), so low-residual (high-confidence) estimates dominate their
// uncertain neighbors — the "regularization" item of §6.
func ConfidenceSmooth(flow *grid.VectorField, eps *grid.Grid, radius int) (*grid.VectorField, error) {
	w, h := flow.Bounds()
	if eps.W != w || eps.H != h {
		return nil, fmt.Errorf("postproc: ε field size does not match the flow")
	}
	if radius < 1 {
		return nil, fmt.Errorf("postproc: radius must be positive")
	}
	// ε₀: a small fraction of the mean residual keeps weights finite.
	em := float32(eps.Mean())
	eps0 := em*0.01 + 1e-9
	out := grid.NewVectorField(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var su, sv, sw float64
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					u, v := flow.At(x+dx, y+dy)
					wt := 1 / float64(eps.At(x+dx, y+dy)+eps0)
					su += wt * float64(u)
					sv += wt * float64(v)
					sw += wt
				}
			}
			out.Set(x, y, float32(su/sw), float32(sv/sw))
		}
	}
	return out, nil
}

// VectorMedian filters the field with a true vector median: each pixel's
// displacement becomes the neighborhood vector minimizing the summed
// Euclidean distance to all (2r+1)² neighborhood vectors. Unlike the
// componentwise median it always outputs a vector that occurs in the
// neighborhood, so discrete correspondence labels are preserved.
func VectorMedian(flow *grid.VectorField, radius int) (*grid.VectorField, error) {
	if radius < 1 {
		return nil, fmt.Errorf("postproc: radius must be positive")
	}
	w, h := flow.Bounds()
	out := grid.NewVectorField(w, h)
	side := 2*radius + 1
	us := make([]float64, 0, side*side)
	vs := make([]float64, 0, side*side)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			us = us[:0]
			vs = vs[:0]
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					u, v := flow.At(x+dx, y+dy)
					us = append(us, float64(u))
					vs = append(vs, float64(v))
				}
			}
			bi := 0
			best := math.Inf(1)
			for i := range us {
				var s float64
				for j := range us {
					s += math.Hypot(us[i]-us[j], vs[i]-vs[j])
				}
				if s < best {
					best = s
					bi = i
				}
			}
			out.Set(x, y, float32(us[bi]), float32(vs[bi]))
		}
	}
	return out, nil
}
