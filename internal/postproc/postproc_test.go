package postproc

import (
	"testing"

	"sma/internal/grid"
	"sma/internal/synth"
)

// noisyUniformFlow builds a translation scene plus a flow field that is
// correct except for scattered impulse errors.
func noisyUniformFlow(w, h int, seed int64) (i0, i1 *grid.Grid, flow, truth *grid.VectorField) {
	s := &synth.Scene{W: w, H: h, Flow: synth.Uniform{U: 2, V: 1},
		Tex: synth.Hurricane(w, h, seed).Tex}
	i0 = s.Frame(0)
	i1 = s.Frame(1)
	truth = grid.NewVectorField(w, h)
	truth.U.Fill(2)
	truth.V.Fill(1)
	flow = truth.Clone()
	for k := 0; k < w*h/20; k++ { // 5% impulse corruption
		x := (k*37 + 11) % w
		y := (k*53 + 7) % h
		flow.Set(x, y, -2, -2)
	}
	return i0, i1, flow, truth
}

func TestRelaxRemovesImpulseErrors(t *testing.T) {
	i0, i1, flow, truth := noisyUniformFlow(48, 48, 3)
	before := flow.RMSE(truth)
	out, err := Relax(flow, i0, i1, DefaultRelaxConfig())
	if err != nil {
		t.Fatal(err)
	}
	after := out.RMSE(truth)
	if after >= before/2 {
		t.Fatalf("relaxation RMSE %v not well below %v", after, before)
	}
}

func TestRelaxPreservesCorrectField(t *testing.T) {
	i0, i1, _, truth := noisyUniformFlow(32, 32, 5)
	out, err := Relax(truth.Clone(), i0, i1, DefaultRelaxConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(truth) {
		t.Fatal("relaxation perturbed an already-correct uniform field")
	}
}

func TestRelaxValidation(t *testing.T) {
	f := grid.NewVectorField(8, 8)
	g := grid.New(8, 8)
	if _, err := Relax(f, g, grid.New(9, 8), DefaultRelaxConfig()); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := Relax(f, g, g, RelaxConfig{Iterations: 0}); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestRelaxDeterministic(t *testing.T) {
	i0, i1, flow, _ := noisyUniformFlow(24, 24, 7)
	a, err := Relax(flow.Clone(), i0, i1, DefaultRelaxConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Relax(flow.Clone(), i0, i1, DefaultRelaxConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("relaxation not deterministic")
	}
}

func TestConfidenceSmoothFollowsEps(t *testing.T) {
	// Two flow values; the corrupted pixel has huge ε, neighbors have
	// small ε — smoothing must pull it toward the confident neighbors.
	f := grid.NewVectorField(9, 9)
	f.U.Fill(1)
	f.Set(4, 4, 9, 0) // outlier
	eps := grid.New(9, 9)
	eps.Fill(0.001)
	eps.Set(4, 4, 100)
	out, err := ConfidenceSmooth(f, eps, 1)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := out.At(4, 4)
	if u > 1.5 {
		t.Fatalf("low-confidence outlier kept u=%v, want ≈1", u)
	}
	// High-confidence pixels barely move.
	if u2, _ := out.At(1, 1); u2 < 0.99 || u2 > 1.01 {
		t.Fatalf("confident pixel changed to %v", u2)
	}
}

func TestConfidenceSmoothValidation(t *testing.T) {
	f := grid.NewVectorField(8, 8)
	if _, err := ConfidenceSmooth(f, grid.New(7, 8), 1); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := ConfidenceSmooth(f, grid.New(8, 8), 0); err == nil {
		t.Fatal("zero radius accepted")
	}
}

func TestVectorMedianRemovesImpulse(t *testing.T) {
	f := grid.NewVectorField(9, 9)
	f.U.Fill(2)
	f.V.Fill(1)
	f.Set(4, 4, -3, -3)
	out, err := VectorMedian(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u, v := out.At(4, 4); u != 2 || v != 1 {
		t.Fatalf("impulse survived: (%v,%v)", u, v)
	}
}

func TestVectorMedianPreservesLabels(t *testing.T) {
	// Two-region field: every output vector must be one of the two input
	// labels — never a blend (the property the componentwise median loses
	// at diagonal boundaries).
	f := grid.NewVectorField(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			if x+y < 10 {
				f.Set(x, y, 2, 0)
			} else {
				f.Set(x, y, -1, 3)
			}
		}
	}
	out, err := VectorMedian(f, 1)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			u, v := out.At(x, y)
			if !((u == 2 && v == 0) || (u == -1 && v == 3)) {
				t.Fatalf("blended label (%v,%v) at (%d,%d)", u, v, x, y)
			}
		}
	}
}

func TestVectorMedianValidation(t *testing.T) {
	if _, err := VectorMedian(grid.NewVectorField(4, 4), 0); err == nil {
		t.Fatal("zero radius accepted")
	}
}
