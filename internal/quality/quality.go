// Package quality provides truth-free diagnostics of an estimated motion
// field — the checks an operational user (who has no ground truth, unlike
// our synthetic scenes) can run: brightness-constancy warp residuals,
// flow smoothness statistics and residual-confidence summaries.
package quality

import (
	"fmt"
	"math"
	"sort"

	"sma/internal/grid"
)

// Report summarizes the quality of a motion field for one image pair.
type Report struct {
	// WarpRMS is the RMS brightness residual |I1(x+d) − I0(x)| under the
	// flow, in grey levels — small if the motion explains the images.
	WarpRMS float64
	// BaselineRMS is the zero-motion RMS residual |I1(x) − I0(x)|; the
	// ratio WarpRMS/BaselineRMS measures how much of the frame change the
	// flow explains.
	BaselineRMS float64
	// Smoothness is the mean magnitude of the flow's spatial gradient
	// (px per px); fluid fields are rough, rigid fields smooth.
	Smoothness float64
	// EpsMedian and Eps90 summarize the tracker's per-pixel residual ε
	// distribution when available (zero otherwise).
	EpsMedian, Eps90 float64
}

// Assess computes the report. eps may be nil.
func Assess(flow *grid.VectorField, i0, i1 *grid.Grid, eps *grid.Grid) (*Report, error) {
	w, h := flow.Bounds()
	if i0.W != w || i0.H != h || i1.W != w || i1.H != h {
		return nil, fmt.Errorf("quality: image sizes do not match the flow")
	}
	r := &Report{}
	var sw, sb float64
	n := 0
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u, v := flow.At(x, y)
			warped := float64(i1.Bilinear(float64(x)+float64(u), float64(y)+float64(v)))
			base := float64(i1.AtUnchecked(x, y))
			orig := float64(i0.AtUnchecked(x, y))
			dw := warped - orig
			db := base - orig
			sw += dw * dw
			sb += db * db
			n++
		}
	}
	r.WarpRMS = math.Sqrt(sw / float64(n))
	r.BaselineRMS = math.Sqrt(sb / float64(n))

	var sg float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u0, v0 := flow.At(x, y)
			u1, v1 := flow.At(x+1, y)
			u2, v2 := flow.At(x, y+1)
			sg += math.Hypot(float64(u1-u0), float64(v1-v0))
			sg += math.Hypot(float64(u2-u0), float64(v2-v0))
		}
	}
	r.Smoothness = sg / float64(2*n)

	if eps != nil {
		if eps.W != w || eps.H != h {
			return nil, fmt.Errorf("quality: ε field size does not match the flow")
		}
		vals := make([]float64, len(eps.Data))
		for i, v := range eps.Data {
			vals[i] = float64(v)
		}
		sort.Float64s(vals)
		r.EpsMedian = vals[len(vals)/2]
		r.Eps90 = vals[len(vals)*9/10]
	}
	return r, nil
}

// ExplainedFraction reports how much of the frame-to-frame change the
// flow explains: 1 − (WarpRMS/BaselineRMS)², clamped to [0, 1].
func (r *Report) ExplainedFraction() float64 {
	if r.BaselineRMS == 0 {
		return 1
	}
	f := 1 - (r.WarpRMS/r.BaselineRMS)*(r.WarpRMS/r.BaselineRMS)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// String renders a one-line summary.
func (r *Report) String() string {
	return fmt.Sprintf("warpRMS=%.2f baseRMS=%.2f explained=%.0f%% smooth=%.3f epsMed=%.3g",
		r.WarpRMS, r.BaselineRMS, 100*r.ExplainedFraction(), r.Smoothness, r.EpsMedian)
}
