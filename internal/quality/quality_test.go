package quality

import (
	"strings"
	"testing"

	"sma/internal/core"
	"sma/internal/grid"
	"sma/internal/synth"
)

func TestAssessCorrectFlowExplainsChange(t *testing.T) {
	s := &synth.Scene{W: 48, H: 48, Flow: synth.Uniform{U: 2, V: 1},
		Tex: synth.Hurricane(48, 48, 3).Tex}
	i0 := s.Frame(0)
	i1 := s.Frame(1)
	truth := grid.NewVectorField(48, 48)
	truth.U.Fill(2)
	truth.V.Fill(1)
	r, err := Assess(truth, i0, i1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.WarpRMS >= r.BaselineRMS/3 {
		t.Fatalf("true flow warpRMS %v not well below baseline %v", r.WarpRMS, r.BaselineRMS)
	}
	if f := r.ExplainedFraction(); f < 0.85 {
		t.Fatalf("explained fraction %v too low for the true flow", f)
	}
}

func TestAssessZeroFlowExplainsNothing(t *testing.T) {
	s := &synth.Scene{W: 32, H: 32, Flow: synth.Uniform{U: 2, V: 0},
		Tex: synth.Hurricane(32, 32, 5).Tex}
	zero := grid.NewVectorField(32, 32)
	r, err := Assess(zero, s.Frame(0), s.Frame(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.WarpRMS != r.BaselineRMS {
		t.Fatalf("zero flow warpRMS %v != baseline %v", r.WarpRMS, r.BaselineRMS)
	}
	if r.ExplainedFraction() > 1e-9 {
		t.Fatalf("zero flow explains %v", r.ExplainedFraction())
	}
}

func TestAssessSmoothnessOrdering(t *testing.T) {
	smooth := grid.NewVectorField(16, 16)
	smooth.U.Fill(1)
	rough := grid.NewVectorField(16, 16)
	for i := range rough.U.Data {
		rough.U.Data[i] = float32(i % 3)
	}
	img := grid.New(16, 16)
	rs, err := Assess(smooth, img, img, nil)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Assess(rough, img, img, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Smoothness >= rr.Smoothness {
		t.Fatalf("uniform field smoothness %v not below rough %v", rs.Smoothness, rr.Smoothness)
	}
	if rs.Smoothness > 1e-9 {
		t.Fatalf("uniform field smoothness %v, want 0", rs.Smoothness)
	}
}

func TestAssessEpsQuantiles(t *testing.T) {
	s := synth.Thunderstorm(24, 24, 7)
	pair := core.Monocular(s.Frame(0), s.Frame(1))
	res, err := core.TrackSequential(pair, core.Params{NS: 2, NZS: 2, NZT: 3}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Assess(res.Flow, pair.I0, pair.I1, res.Err)
	if err != nil {
		t.Fatal(err)
	}
	if r.EpsMedian < 0 || r.Eps90 < r.EpsMedian {
		t.Fatalf("ε quantiles inconsistent: median %v p90 %v", r.EpsMedian, r.Eps90)
	}
	if !strings.Contains(r.String(), "explained=") {
		t.Fatalf("summary %q missing fields", r.String())
	}
}

func TestAssessValidation(t *testing.T) {
	f := grid.NewVectorField(8, 8)
	g := grid.New(8, 8)
	if _, err := Assess(f, g, grid.New(9, 8), nil); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := Assess(f, g, g, grid.New(4, 4)); err == nil {
		t.Fatal("mismatched eps accepted")
	}
}
