// Package sequence provides multi-frame orchestration on top of the
// per-pair SMA tracker: pairwise tracking of whole image sequences (the
// Hurricane Luis 490-frame processing mode), particle trajectories
// through the resulting flow fields, and conversion of pixel
// displacements to physical wind speeds — the "cloud motion vectors ...
// used to estimate the wind field" of the paper's abstract.
package sequence

import (
	"fmt"
	"math"

	"sma/internal/core"
	"sma/internal/grid"
	"sma/internal/stream"
)

// Track runs the tracker over every consecutive frame pair of a monocular
// sequence, returning len(frames)−1 flow fields. The run is driven by the
// streaming pipeline (internal/stream), so each frame's surface fits are
// computed once and shared by its two pairs; results are bit-identical to
// independent per-pair core.TrackSequential runs. workers > 1 tracks up
// to that many pairs concurrently, each additionally striped across the
// same number of row workers.
func Track(frames []*grid.Grid, p core.Params, opt core.Options, workers int) ([]*grid.VectorField, error) {
	flows, _, err := TrackStats(frames, p, opt, workers)
	return flows, err
}

// TrackStats is Track plus the streaming pipeline's work counters —
// fits computed vs. reused, pairs tracked — for throughput reporting.
func TrackStats(frames []*grid.Grid, p core.Params, opt core.Options, workers int) ([]*grid.VectorField, stream.Stats, error) {
	if len(frames) < 2 {
		return nil, stream.Stats{}, fmt.Errorf("sequence: need at least 2 frames, got %d", len(frames))
	}
	if workers < 1 {
		workers = 1
	}
	results, st, err := stream.Run(stream.Grids(frames), stream.Config{
		Params:     p,
		Options:    opt,
		Workers:    workers,
		RowWorkers: workers,
	})
	if err != nil {
		return nil, st, fmt.Errorf("sequence: %w", err)
	}
	flows := make([]*grid.VectorField, len(results))
	for i, r := range results {
		flows[i] = r.Flow
	}
	return flows, st, nil
}

// Pos is a sub-pixel particle position.
type Pos struct{ X, Y float64 }

// Trajectories advects seed points through consecutive flow fields: the
// tracer-following mode behind the paper's wind-barb visualizations. The
// returned paths have len(flows)+1 positions each (seed included);
// particles that leave the image are clamped at the border.
func Trajectories(flows []*grid.VectorField, seeds []grid.Point) [][]Pos {
	paths := make([][]Pos, len(seeds))
	for i, s := range seeds {
		path := make([]Pos, 0, len(flows)+1)
		cur := Pos{X: float64(s.X), Y: float64(s.Y)}
		path = append(path, cur)
		for _, f := range flows {
			u := f.U.Bilinear(cur.X, cur.Y)
			v := f.V.Bilinear(cur.X, cur.Y)
			cur = clampPos(Pos{X: cur.X + float64(u), Y: cur.Y + float64(v)}, f)
			path = append(path, cur)
		}
		paths[i] = path
	}
	return paths
}

func clampPos(p Pos, f *grid.VectorField) Pos {
	w, h := f.Bounds()
	p.X = math.Max(0, math.Min(float64(w-1), p.X))
	p.Y = math.Max(0, math.Min(float64(h-1), p.Y))
	return p
}

// Geometry converts pixel displacements into physical winds. The paper's
// Frederic pixels "span approximately 1 sq-km" at image center with
// ~7.5-minute frame intervals; the GOES-9 rapid scans are ~1 minute.
type Geometry struct {
	KmPerPixel   float64 // ground sample distance
	SecondsPerDt float64 // frame interval
}

// WindMS converts a displacement in pixels/frame to meters/second.
func (g Geometry) WindMS(du, dv float64) (speed, direction float64) {
	if g.SecondsPerDt <= 0 {
		return 0, 0
	}
	mx := du * g.KmPerPixel * 1000 / g.SecondsPerDt
	my := dv * g.KmPerPixel * 1000 / g.SecondsPerDt
	speed = math.Hypot(mx, my)
	// Meteorological convention: direction the wind blows FROM, degrees
	// clockwise from north; image y grows southward.
	direction = math.Mod(math.Atan2(-mx, my)/math.Pi*180+360, 360)
	return speed, direction
}

// WindField converts a whole flow field to speed (m/s) and direction
// (degrees) rasters.
func (g Geometry) WindField(f *grid.VectorField) (speed, direction *grid.Grid) {
	w, h := f.Bounds()
	speed = grid.New(w, h)
	direction = grid.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u, v := f.At(x, y)
			s, d := g.WindMS(float64(u), float64(v))
			speed.Set(x, y, float32(s))
			direction.Set(x, y, float32(d))
		}
	}
	return speed, direction
}

// TrackTemporal tracks a monocular sequence with temporal coherence: the
// first pair is tracked through a coarse-to-fine pyramid (wide effective
// reach), and each subsequent pair searches a small window centered on
// the previous pair's flow. For slowly varying winds this reaches large
// displacements at a fraction of the flat-search cost. Continuous model
// only.
func TrackTemporal(frames []*grid.Grid, p core.Params, levels int, opt core.Options) ([]*grid.VectorField, error) {
	if len(frames) < 2 {
		return nil, fmt.Errorf("sequence: need at least 2 frames, got %d", len(frames))
	}
	flows := make([]*grid.VectorField, len(frames)-1)
	first, err := core.TrackPyramid(core.Monocular(frames[0], frames[1]), p, levels, opt)
	if err != nil {
		return nil, fmt.Errorf("sequence: pair 0→1: %w", err)
	}
	flows[0] = first.Flow
	for i := 1; i+1 < len(frames); i++ {
		res, err := core.TrackGuided(core.Monocular(frames[i], frames[i+1]), p, flows[i-1], opt)
		if err != nil {
			return nil, fmt.Errorf("sequence: pair %d→%d: %w", i, i+1, err)
		}
		flows[i] = res.Flow
	}
	return flows, nil
}

// WindFieldVariable converts a flow field to wind speeds with a per-pixel
// ground sampling distance — the paper's Frederic imagery spans ≈1 sq-km
// pixels at image center but ≈4 sq-km near the borders, so honest winds
// need the local footprint (e.g. geom.FootprintKm at each pixel's
// geocentric angle).
func (g Geometry) WindFieldVariable(f *grid.VectorField, kmAt func(x, y int) float64) *grid.Grid {
	w, h := f.Bounds()
	speed := grid.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			u, v := f.At(x, y)
			local := Geometry{KmPerPixel: kmAt(x, y), SecondsPerDt: g.SecondsPerDt}
			s, _ := local.WindMS(float64(u), float64(v))
			speed.Set(x, y, float32(s))
		}
	}
	return speed
}
