package sequence

import (
	"math"
	"testing"

	"sma/internal/core"
	"sma/internal/geom"
	"sma/internal/grid"
	"sma/internal/synth"
)

func uniformFrames(w, h, n int, seed int64, u, v float64) []*grid.Grid {
	s := &synth.Scene{W: w, H: h, Flow: synth.Uniform{U: u, V: v},
		Tex: synth.Hurricane(w, h, seed).Tex}
	frames := make([]*grid.Grid, n)
	for i := range frames {
		frames[i] = s.Frame(float64(i))
	}
	return frames
}

func TestTrackSequencePairCount(t *testing.T) {
	frames := uniformFrames(24, 24, 4, 3, 1, 0)
	p := core.Params{NS: 2, NZS: 2, NZT: 3}
	flows, err := Track(frames, p, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 3 {
		t.Fatalf("got %d flows, want 3", len(flows))
	}
	for i, f := range flows {
		if u, v := f.At(12, 12); u != 1 || v != 0 {
			t.Fatalf("flow %d at center = (%v,%v), want (1,0)", i, u, v)
		}
	}
}

func TestTrackSequenceValidation(t *testing.T) {
	p := core.Params{NS: 2, NZS: 2, NZT: 3}
	if _, err := Track([]*grid.Grid{grid.New(8, 8)}, p, core.Options{}, 1); err == nil {
		t.Fatal("single-frame sequence accepted")
	}
}

func TestTrackSequenceParallelMatches(t *testing.T) {
	frames := uniformFrames(20, 20, 3, 5, 1, 1)
	p := core.Params{NS: 2, NZS: 2, NZT: 3}
	a, err := Track(frames, p, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Track(frames, p, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("flow %d differs between serial and parallel sequence drivers", i)
		}
	}
}

// TestTrackStatsCaching proves the sequence driver inherits the streaming
// pipeline's prepared-surface caching: N frames cost exactly N surface
// fits, with 2(N−1)−N cache reuses.
func TestTrackStatsCaching(t *testing.T) {
	const n = 5
	frames := uniformFrames(20, 20, n, 11, 1, 0)
	p := core.Params{NS: 2, NZS: 2, NZT: 3}
	flows, st, err := TrackStats(frames, p, core.Options{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != n-1 {
		t.Fatalf("got %d flows, want %d", len(flows), n-1)
	}
	if st.FitsComputed != n {
		t.Fatalf("FitsComputed = %d, want %d (one per frame)", st.FitsComputed, n)
	}
	if want := int64(2*(n-1) - n); st.FitsReused != want {
		t.Fatalf("FitsReused = %d, want %d", st.FitsReused, want)
	}
	if st.PairsTracked != n-1 {
		t.Fatalf("PairsTracked = %d, want %d", st.PairsTracked, n-1)
	}
}

// TestTrackMatchesPairwiseSequential pins the sequence driver to the
// pairwise baseline bit for bit, semi-fluid model included.
func TestTrackMatchesPairwiseSequential(t *testing.T) {
	frames := uniformFrames(18, 18, 4, 13, 1, 1)
	p := core.Params{NS: 2, NZS: 2, NZT: 3, NST: 2, NSS: 1}
	for _, workers := range []int{1, 4} {
		flows, err := Track(frames, p, core.Options{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range flows {
			want, err := core.TrackSequential(core.Monocular(frames[i], frames[i+1]), p, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !flows[i].Equal(want.Flow) {
				t.Fatalf("workers=%d: pair %d differs from pairwise TrackSequential", workers, i)
			}
		}
	}
}

// TestTrackSizeMismatchError checks assembly errors surface with pair
// context rather than corrupting the stream.
func TestTrackSizeMismatchError(t *testing.T) {
	frames := uniformFrames(16, 16, 3, 15, 1, 0)
	frames[2] = grid.New(8, 8)
	p := core.Params{NS: 2, NZS: 2, NZT: 3}
	if _, err := Track(frames, p, core.Options{}, 1); err == nil {
		t.Fatal("mismatched frame sizes accepted")
	}
}

func TestTrajectoriesThroughUniformFlow(t *testing.T) {
	flows := make([]*grid.VectorField, 3)
	for i := range flows {
		f := grid.NewVectorField(32, 32)
		f.U.Fill(2)
		f.V.Fill(-1)
		flows[i] = f
	}
	paths := Trajectories(flows, []grid.Point{{X: 5, Y: 20}})
	if len(paths) != 1 || len(paths[0]) != 4 {
		t.Fatalf("path shape %d×%d", len(paths), len(paths[0]))
	}
	end := paths[0][3]
	if math.Abs(end.X-11) > 1e-6 || math.Abs(end.Y-17) > 1e-6 {
		t.Fatalf("end = %+v, want (11, 17)", end)
	}
}

func TestTrajectoriesClampAtBorder(t *testing.T) {
	f := grid.NewVectorField(16, 16)
	f.U.Fill(10)
	paths := Trajectories([]*grid.VectorField{f, f, f}, []grid.Point{{X: 8, Y: 8}})
	for _, p := range paths[0] {
		if p.X > 15 || p.X < 0 || p.Y > 15 || p.Y < 0 {
			t.Fatalf("trajectory escaped the image: %+v", p)
		}
	}
}

func TestWindMSConversion(t *testing.T) {
	// 1 px/frame at 1 km/px over 100 s = 10 m/s.
	g := Geometry{KmPerPixel: 1, SecondsPerDt: 100}
	speed, dir := g.WindMS(1, 0)
	if math.Abs(speed-10) > 1e-9 {
		t.Fatalf("speed = %v, want 10", speed)
	}
	// Eastward motion = wind FROM the west = 270°.
	if math.Abs(dir-270) > 1e-9 {
		t.Fatalf("direction = %v, want 270", dir)
	}
	// Northward (screen-up: dv < 0) motion = wind FROM the south = 180°.
	_, dir = g.WindMS(0, -1)
	if math.Abs(dir-180) > 1e-9 {
		t.Fatalf("direction = %v, want 180", dir)
	}
}

func TestWindMSZeroInterval(t *testing.T) {
	g := Geometry{KmPerPixel: 1}
	if s, _ := g.WindMS(1, 1); s != 0 {
		t.Fatalf("zero interval produced speed %v", s)
	}
}

func TestWindField(t *testing.T) {
	f := grid.NewVectorField(4, 4)
	f.U.Fill(1)
	g := Geometry{KmPerPixel: 4, SecondsPerDt: 450} // Frederic-like
	speed, dir := g.WindField(f)
	// 1 px/frame · 4 km / 450 s ≈ 8.9 m/s from the west.
	if v := speed.At(2, 2); math.Abs(float64(v)-8.888) > 0.01 {
		t.Fatalf("speed = %v", v)
	}
	if d := dir.At(2, 2); math.Abs(float64(d)-270) > 1e-3 {
		t.Fatalf("direction = %v", d)
	}
}

func TestTrackTemporalReachesLargeMotion(t *testing.T) {
	// 4 px/frame motion with a ±1 search: hopeless flat, easy with the
	// pyramid start + temporal prior chain.
	frames := uniformFrames(48, 48, 4, 7, 4, 0)
	p := core.Params{NS: 2, NZS: 1, NZT: 3}
	flows, err := TrackTemporal(frames, p, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range flows {
		good, tot := 0, 0
		for y := 12; y < 36; y++ {
			for x := 12; x < 36; x++ {
				tot++
				if u, v := f.At(x, y); u == 4 && v == 0 {
					good++
				}
			}
		}
		if good*10 < tot*8 {
			t.Fatalf("pair %d: only %d/%d correct with temporal prior", i, good, tot)
		}
	}
	// Control: the same per-pair search without priors cannot reach 4 px.
	flat, err := Track(frames[:2], p, core.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if u, _ := flat[0].At(24, 24); u == 4 {
		t.Fatal("control flat search unexpectedly reached 4 px")
	}
}

func TestTrackTemporalValidation(t *testing.T) {
	p := core.Params{NS: 2, NZS: 1, NZT: 3}
	if _, err := TrackTemporal([]*grid.Grid{grid.New(8, 8)}, p, 2, core.Options{}); err == nil {
		t.Fatal("single frame accepted")
	}
	frames := uniformFrames(16, 16, 3, 9, 1, 0)
	semi := core.ScaledParams()
	if _, err := TrackTemporal(frames, semi, 2, core.Options{}); err == nil {
		t.Fatal("semi-fluid temporal tracking accepted (unsupported)")
	}
}

func TestWindFieldVariableFootprint(t *testing.T) {
	// Same pixel displacement at center vs border: the border's larger
	// footprint means a faster physical wind (the paper's 1 km vs 4 km).
	f := grid.NewVectorField(9, 9)
	f.U.Fill(1)
	g := Geometry{SecondsPerDt: 100}
	kmAt := func(x, y int) float64 {
		d, err := geom.FootprintKm(1, float64(x)*8) // 0°..64° across the row
		if err != nil {
			t.Fatalf("footprint: %v", err)
		}
		return d
	}
	speed := g.WindFieldVariable(f, kmAt)
	center := speed.At(0, 4)
	border := speed.At(8, 4)
	if border <= center*2 {
		t.Fatalf("border wind %v not well above center %v for equal pixel motion", border, center)
	}
}
