package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// ChaosOptions configures one chaos run against a live smaserve: a clean
// reference job followed by rounds of fault-injected jobs, each checked
// against the schedule's exact expectation.
type ChaosOptions struct {
	URL   string // server base URL, no trailing slash
	Scene string // synthetic scene name (default hurricane)
	Size  int    // frame edge in pixels (default 48)
	Seed  int64  // base seed; round r uses Seed+r (default 7)

	Frames int // sequence length per job (default 10)
	Rounds int // fault-injected jobs to run (default 3)

	// Per-round schedule sizing (defaults: 1 fail, 1 flaky, 1 damaged).
	FailFrames   int
	FlakyFrames  int
	DamageFrames int

	// PollInterval paces job-status polling (default 50ms).
	PollInterval time.Duration

	// GoroutineSlack is how many extra goroutines the server may hold
	// after the run before the leak check fails (default 8 — HTTP
	// keep-alive conns and sweepers, not a pipeline leak's dozens).
	GoroutineSlack int
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Scene == "" {
		o.Scene = "hurricane"
	}
	if o.Size <= 0 {
		o.Size = 48
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	if o.Frames <= 0 {
		o.Frames = 10
	}
	if o.Rounds <= 0 {
		o.Rounds = 3
	}
	if o.FailFrames == 0 && o.FlakyFrames == 0 && o.DamageFrames == 0 {
		o.FailFrames, o.FlakyFrames, o.DamageFrames = 1, 1, 1
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.GoroutineSlack <= 0 {
		o.GoroutineSlack = 8
	}
	return o
}

// ChaosResult is a chaos run's verdict: counts of what ran and every
// invariant violation found. An empty Violations list means the server
// upheld the degraded-mode contract.
type ChaosResult struct {
	Rounds           int      `json:"rounds"`
	Frames           int      `json:"frames"`
	PairsVerified    int      `json:"pairs_verified"`
	PairsSkipped     int64    `json:"pairs_skipped"`
	Retries          int64    `json:"retries"`
	GoroutinesBefore int      `json:"goroutines_before"`
	GoroutinesAfter  int      `json:"goroutines_after"`
	Violations       []string `json:"violations,omitempty"`
}

// RunChaos drives a live server through seeded fault schedules and
// asserts the degraded-mode invariants: jobs complete with per-pair
// statuses, counters match each plan's expectation exactly, surviving
// pairs are identical to an undamaged job, the server's degraded
// counters advance by exactly the injected amounts, and no goroutines
// leak. Assumes a quiet server (the counter-delta checks are not
// meaningful under concurrent foreign traffic). Returns an error only
// for harness failures; contract violations land in Violations.
func RunChaos(ctx context.Context, opt ChaosOptions) (ChaosResult, error) {
	opt = opt.withDefaults()
	var res ChaosResult
	res.Rounds = opt.Rounds
	res.Frames = opt.Frames
	violate := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}

	before, err := scrapeCounters(ctx, opt.URL)
	if err != nil {
		return res, fmt.Errorf("chaos: baseline metrics scrape: %w", err)
	}
	res.GoroutinesBefore = int(before["smaserve_goroutines"])

	ref := &SyntheticRef{Scene: opt.Scene, Size: opt.Size, Seed: opt.Seed, Frames: opt.Frames}
	clean, err := runChaosJob(ctx, opt, JobRequest{Synthetic: ref})
	if err != nil {
		return res, fmt.Errorf("chaos: clean reference job: %w", err)
	}
	if clean.Status != JobDone {
		return res, fmt.Errorf("chaos: clean job finished %q: %s", clean.Status, clean.Error)
	}
	if len(clean.Pairs) != opt.Frames-1 {
		return res, fmt.Errorf("chaos: clean job reports %d pairs, want %d", len(clean.Pairs), opt.Frames-1)
	}

	var wantRetries, wantFramesSkipped, wantPairsSkipped, wantGaps int64
	for round := 0; round < opt.Rounds; round++ {
		seed := opt.Seed + int64(round)
		spec := &FaultSpec{Seed: seed, FailFrames: opt.FailFrames,
			FlakyFrames: opt.FlakyFrames, DamageFrames: opt.DamageFrames}
		plan, err := spec.plan(opt.Frames)
		if err != nil {
			return res, fmt.Errorf("chaos: round %d spec: %w", round, err)
		}
		e := plan.Expect(opt.Frames)
		wantRetries += e.Retries
		wantFramesSkipped += e.FramesSkipped
		wantPairsSkipped += e.PairsSkipped
		wantGaps += e.Gaps

		view, err := runChaosJob(ctx, opt, JobRequest{Synthetic: ref, Fault: spec})
		if err != nil {
			return res, fmt.Errorf("chaos: round %d: %w", round, err)
		}
		wantStatus := JobDone
		if len(e.SurvivingPairs) == 0 {
			wantStatus = JobFailed
		}
		if view.Status != wantStatus {
			violate("round %d (seed %d): job finished %q, want %q (%s)", round, seed, view.Status, wantStatus, view.Error)
			continue
		}
		st := view.Stats
		if st.Retries != e.Retries || st.FramesSkipped != e.FramesSkipped ||
			st.PairsSkipped != e.PairsSkipped || st.Gaps != e.Gaps {
			violate("round %d (seed %d): stats %+v deviate from expectation %+v", round, seed, st, e)
		}
		if len(view.Pairs) != opt.Frames-1 {
			violate("round %d (seed %d): %d pairs reported, want %d", round, seed, len(view.Pairs), opt.Frames-1)
			continue
		}
		surviving := make(map[int]bool, len(e.SurvivingPairs))
		for _, p := range e.SurvivingPairs {
			surviving[p] = true
		}
		for i, p := range view.Pairs {
			if p.Pair != i {
				violate("round %d (seed %d): pair slot %d holds index %d", round, seed, i, p.Pair)
				continue
			}
			if surviving[i] {
				if p.Status != PairOK {
					violate("round %d (seed %d): pair %d status %q, want ok", round, seed, i, p.Status)
				} else if p.MeanMag != clean.Pairs[i].MeanMag {
					violate("round %d (seed %d): pair %d mean magnitude %v differs from clean %v",
						round, seed, i, p.MeanMag, clean.Pairs[i].MeanMag)
				} else {
					res.PairsVerified++
				}
			} else if p.Status != PairSkipped {
				violate("round %d (seed %d): pair %d status %q, want skipped", round, seed, i, p.Status)
			}
		}
		res.Retries += st.Retries
		res.PairsSkipped += st.PairsSkipped
	}

	after, err := scrapeCounters(ctx, opt.URL)
	if err != nil {
		return res, fmt.Errorf("chaos: final metrics scrape: %w", err)
	}
	res.GoroutinesAfter = int(after["smaserve_goroutines"])
	for name, want := range map[string]int64{
		"smaserve_frame_retries_total":  wantRetries,
		"smaserve_frames_skipped_total": wantFramesSkipped,
		"smaserve_pairs_skipped_total":  wantPairsSkipped,
		"smaserve_stream_gaps_total":    wantGaps,
		"smaserve_pairs_failed_total":   0,
	} {
		if got := after[name] - before[name]; got != want {
			violate("counter %s advanced by %d, want %d", name, got, want)
		}
	}
	// Goroutine leak canary: allow the count to settle, then require it
	// back near the baseline.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if res.GoroutinesAfter <= res.GoroutinesBefore+opt.GoroutineSlack {
			break
		}
		if time.Now().After(deadline) {
			violate("goroutines grew from %d to %d (slack %d): pipeline leak",
				res.GoroutinesBefore, res.GoroutinesAfter, opt.GoroutineSlack)
			break
		}
		select {
		case <-time.After(100 * time.Millisecond):
		case <-ctx.Done():
			return res, ctx.Err()
		}
		if after, err = scrapeCounters(ctx, opt.URL); err == nil {
			res.GoroutinesAfter = int(after["smaserve_goroutines"])
		}
	}
	return res, nil
}

// runChaosJob submits one job and polls it to a terminal status.
func runChaosJob(ctx context.Context, opt ChaosOptions, req JobRequest) (JobView, error) {
	var view JobView
	body, err := json.Marshal(req)
	if err != nil {
		return view, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, opt.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return view, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		return view, err
	}
	err = decodeJSONBody(resp, http.StatusAccepted, &view)
	if err != nil {
		return view, err
	}
	for {
		greq, err := http.NewRequestWithContext(ctx, http.MethodGet, opt.URL+"/v1/jobs/"+view.ID, nil)
		if err != nil {
			return view, err
		}
		resp, err := http.DefaultClient.Do(greq)
		if err != nil {
			return view, err
		}
		if err := decodeJSONBody(resp, http.StatusOK, &view); err != nil {
			return view, err
		}
		switch view.Status {
		case JobDone, JobFailed, JobCancelled:
			return view, nil
		}
		select {
		case <-time.After(opt.PollInterval):
		case <-ctx.Done():
			return view, ctx.Err()
		}
	}
}

func decodeJSONBody(resp *http.Response, wantCode int, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512)) //smavet:allow errdiscard -- error-path diagnostics only
		return fmt.Errorf("HTTP %d (want %d): %s", resp.StatusCode, wantCode, bytes.TrimSpace(b))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// scrapeCounters fetches /metrics and parses every single-value
// smaserve_* family into a name → value map (histograms and labeled
// families are skipped; the chaos checks only need the plain ones).
func scrapeCounters(ctx context.Context, url string) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics scrape: HTTP %d", resp.StatusCode)
	}
	out := make(map[string]int64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "smaserve_") || strings.ContainsRune(line, '{') {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if n, err := strconv.ParseFloat(strings.TrimSpace(val), 64); err == nil {
			out[name] = int64(n)
		}
	}
	return out, sc.Err()
}
