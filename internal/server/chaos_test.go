package server

import (
	"context"
	"testing"
	"time"
)

// TestRunChaosAgainstLiveServer exercises the full chaos harness against
// an in-process server: clean reference job, seeded fault rounds, exact
// counter deltas, surviving-pair identity, and the goroutine canary.
func TestRunChaosAgainstLiveServer(t *testing.T) {
	_, ts := testServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	res, err := RunChaos(ctx, ChaosOptions{
		URL:          ts.URL,
		Size:         32,
		Seed:         11,
		Frames:       8,
		Rounds:       3,
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.PairsVerified == 0 {
		t.Error("no surviving pairs were verified bit-identical")
	}
	if res.PairsSkipped == 0 {
		t.Error("fault rounds skipped no pairs — injection did not bite")
	}
}

// TestRunChaosAllDead forces every frame dead in each round and expects
// the harness to accept the resulting failed jobs as contract-conforming.
func TestRunChaosAllDead(t *testing.T) {
	_, ts := testServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	res, err := RunChaos(ctx, ChaosOptions{
		URL:          ts.URL,
		Size:         24,
		Seed:         3,
		Frames:       4,
		Rounds:       1,
		FailFrames:   4,
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.PairsVerified != 0 {
		t.Errorf("PairsVerified = %d, want 0 with every frame dead", res.PairsVerified)
	}
}
